// The driver half of a federated run: Cosmos::run_federated and its state
// (Cosmos::Fed). Each worker is a cosmos_noded process reached over one
// wire::FrameChannel; the channel's reader thread funnels every inbound
// frame into a small mutex-guarded inbox the driver thread waits on.
//
// Determinism argument, mirroring run(): routing happens on the driver in
// chunk/run order and assigns every execute a per-engine sequence number;
// each site applies an engine's executes strictly in seq order, so per-query
// result sequences are byte-identical to push() at any worker count —
// whether batches travel the star channels (peer_links=false, FIFO makes
// the seqs trivially in order) or worker-to-worker peer links
// (peer_links=true, the site's holdback/dedup re-establishes seq order).
// The per-chunk match barrier of run() is relaxed to a bounded window of
// in-flight chunks (max_inflight_chunks).
//
// Worker restart recovery (FederationOptions::recovery): the driver retains
// every registration frame plus a data log of routed executes since the
// last checkpoint. When a channel to worker i dies mid-run, the driver
// respawns cosmos_noded on the same endpoint, replays the registrations,
// re-hands-off each hosted engine's checkpointed state (kMigrateIn at the
// checkpoint's execute seq), replays the logged executes (site seq dedup
// absorbs what survivors already applied), re-sends whatever barrier was in
// flight, and resumes. Results the dead worker already delivered are
// discarded on re-emission (pending_discard), so the user-visible result
// sequence stays byte-identical to a crash-free run.
#include "cosmos/cosmos.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "fault/fault.h"
#include "journal/journal.h"
#include "node/spawn.h"
#include "obs/trace.h"
#include "wire/channel.h"
#include "wire/messages.h"
#include "wire/socket.h"

namespace cosmos::middleware {

struct Cosmos::Fed {
  Fed(Cosmos& system, const FederationOptions& opts)
      : sys(system),
        options(opts),
        trace(opts.trace_path),
        log_data(opts.recovery.enabled || opts.peer_links ||
                 !opts.faults.empty() || !opts.journal.dir.empty()) {
    trace.add_process_name(0, "driver");
    e2e = &reg.histogram("e2e_latency_ns");
  }

  ~Fed() {
    // Stop treating closes as faults, then tear the channels down (close
    // joins each channel's reader, so after this loop no callback can
    // touch the inbox state above).
    {
      std::lock_guard lock{mu};
      expect_close = true;
    }
    for (auto& w : workers) {
      if (w.channel) w.channel->close();
    }
  }
  Fed(const Fed&) = delete;
  Fed& operator=(const Fed&) = delete;

  Cosmos& sys;
  const FederationOptions& options;
  /// Declared before `workers` (members die in reverse order): the session
  /// destructor drains span rings and writes the merged Chrome trace file,
  /// and must run only after the channel reader threads have joined.
  obs::TraceSession trace;
  /// Driver-side registry; e2e points at its ingest-to-delivery histogram.
  obs::MetricsRegistry reg;
  obs::Histogram* e2e = nullptr;

  // --- inbox: reader threads write, the driver thread waits (guard: mu).
  std::mutex mu;
  std::condition_variable cv;
  std::string error;  ///< first unrecoverable fault; sticky, fails every wait
  std::set<std::size_t> hello_acks;  ///< workers whose (re)hello was acked
  /// flush seq -> the workers that acked it. Keyed per worker (not a bare
  /// count) so recovery can retract a dead worker's ack and demand a fresh
  /// one from its respawned successor.
  std::map<std::uint64_t, std::set<std::size_t>> flush_acks;
  std::unordered_map<std::uint64_t, wire::MatchResponseMsg> match_responses;
  /// One result event, tagged with the worker whose channel delivered it so
  /// recovery can purge a dead worker's undelivered tail (the replay
  /// re-emits it).
  struct InboxResult {
    wire::ResultEventMsg ev;
    std::size_t worker = 0;
  };
  std::vector<InboxResult> results_inbox;  ///< arrival order
  /// engine value -> (handoff, wire bytes). Last-wins per engine: a
  /// recovery re-request can produce a duplicate handoff, byte-identical
  /// because both were cut at the same flush + seq point.
  std::map<std::uint64_t, std::pair<wire::StateHandoffMsg, std::uint64_t>>
      handoffs;
  std::set<std::uint64_t> migrate_acks;  ///< acked engine values
  std::map<std::size_t, wire::TrafficReportMsg> traffic_reports;  ///< by worker
  std::vector<wire::StatsSampleMsg> samples_inbox;  ///< arrival order
  bool expect_close = false;  ///< set before kBye: closes are then orderly
  /// Recovery gate: armed once replicate() + the initial checkpoint are
  /// done (registration faults stay fatal). Guarded by mu because the
  /// reader-side mark_dead consults it.
  bool recovery_armed = false;
  std::vector<char> worker_dead;         ///< 1 while awaiting recovery
  std::deque<std::size_t> dead_pending;  ///< recovery queue, death order
  /// kPeerDown reports awaiting driver-thread handling (star fallback +
  /// replay of the entries the dead link may have swallowed).
  std::deque<wire::PeerDownMsg> peer_down_inbox;
  /// kSeqGap starvation reports awaiting a data-log replay.
  std::deque<wire::SeqGapMsg> seq_gap_inbox;

  // --- driver-thread-only state.
  std::unordered_map<std::string, std::size_t> worker_of_stream;
  std::unordered_map<NodeId, std::size_t> worker_of_engine;
  std::uint64_t next_job = 0;
  std::uint64_t next_flush_seq = 0;
  std::size_t next_migration = 0;
  std::size_t next_fault = 0;  ///< next FederationOptions::faults entry
  std::size_t chunk_index = 0;
  /// (owner, target) peer links declared dead: the pair's batches route
  /// through the driver (star) for the rest of the run. Never un-declared —
  /// star is always correct, and a respawn that re-opens the link merely
  /// leaves this pair conservatively driver-routed.
  std::set<std::pair<std::uint32_t, std::uint32_t>> peer_down_pairs;
  /// Whether routed executes are retained in data_log: recovery replay,
  /// peer-down fallback replay and kSeqGap replay all read it. Without
  /// recovery the log is never truncated by checkpoints (bounded by the
  /// run's trace, acceptable for fault-injection tests).
  const bool log_data;

  /// Per-engine execute sequence frontier: the next seq the driver will
  /// assign. The floor carried on watermarks/flushes to an engine's worker.
  std::unordered_map<std::uint64_t, std::uint64_t> next_exec_seq;
  /// Registration frames replayed verbatim to a respawned worker:
  /// topology, stream registrations, subscriptions, the peer table.
  /// Deployments are excluded — recovery re-deploys via kMigrateIn, which
  /// also restores state and the seq cut.
  std::vector<wire::Frame> reg_log;
  /// One routed execute since the last checkpoint. `owner` is the match
  /// owner that ships the batch in peer-link mode (SIZE_MAX on the star
  /// path, where the driver itself sent the frame): replay re-sends an
  /// entry when its current target OR its owner is the recovered worker —
  /// covering both a lost shipment and a lost route decision.
  struct DataLogEntry {
    std::size_t owner = SIZE_MAX;
    NodeId engine;
    std::uint64_t seq = 0;
    std::vector<std::uint32_t> rows;  ///< empty = all rows of `run`
    std::shared_ptr<const runtime::TupleBatch> run;
    std::uint64_t ingest_ns = 0;
  };
  std::vector<DataLogEntry> data_log;
  /// Retention accounting: entries ever appended vs the peak held at once
  /// (the boundedness proof in RunReport::federation).
  std::size_t data_log_appended = 0;
  std::size_t data_log_peak = 0;
  /// engine value -> the highest execute-seq floor every worker has acked
  /// (snapshot of the frontier at the last fleet-wide flush). Entries below
  /// it are applied everywhere, so peer-down / kSeqGap replay can never
  /// need them again — the in-memory data_log prunes below this floor
  /// (checkpoints own the truncation when worker recovery is enabled,
  /// because its replay needs the whole since-checkpoint window).
  std::unordered_map<std::uint64_t, std::uint64_t> acked_floor;
  /// engine value -> its state at the last checkpoint cut.
  struct EngineCheckpoint {
    std::vector<wire::UnitStateMsg> state;
    std::uint64_t exec_seq = 0;
  };
  std::unordered_map<std::uint64_t, EngineCheckpoint> ckpt;
  stream::Timestamp ckpt_clock_ms = 0;  ///< last checkpoint's stream time
  bool has_ckpt_clock = false;
  stream::Timestamp floor_clock_ms = 0;  ///< last retention floor advance
  bool has_floor_clock = false;

  /// Durable run journal (FederationOptions::journal): created by run() for
  /// a fresh journaled run, installed by resume_federated (continuing the
  /// segment chain) for a resumed one. Driver-thread only.
  std::unique_ptr<journal::Writer> jw;
  std::uint64_t next_ckpt_id = 0;
  /// Trace events consumed by dispatched chunks — the journal's resume cut.
  std::uint64_t events_consumed = 0;
  /// Set by resume_federated: the recovered journal state this run resumes
  /// from (null for a fresh run).
  const journal::RecoveredRun* resume_state = nullptr;
  /// Results delivered to user callbacks since the last checkpoint, per
  /// result stream; when a worker dies, the replay re-emits exactly these,
  /// so pending_discard skips that many re-deliveries per stream.
  std::unordered_map<std::string, std::size_t> delivered_since_ckpt;
  std::unordered_map<std::string, std::size_t> pending_discard;
  /// In-flight barriers a respawned worker must re-answer.
  struct OutstandingFlush {
    std::uint64_t seq = 0;
    std::set<std::size_t> waiting;
  };
  std::optional<OutstandingFlush> outstanding_flush;
  std::optional<std::pair<NodeId, std::size_t>> outstanding_ckpt_out;
  bool collecting_traffic = false;
  /// Scripted migrations quiesce the fleet outside the recovery protocol;
  /// a death inside the handshake is unrecoverable (documented limitation).
  bool scripted_migration_active = false;
  stream::Timestamp last_watermark = 0;
  bool has_watermark = false;
  std::uint64_t driver_execute_bytes = 0;

  /// One dispatched run awaiting (or exempt from) its match response.
  struct PendingRun {
    std::shared_ptr<const runtime::TupleBatch> run;
    std::uint64_t job = 0;
    std::size_t owner = 0;  ///< the stream owner the match request went to
    bool awaiting = false;  ///< false: zero subscriptions, nothing to match
  };
  struct PendingChunk {
    std::vector<PendingRun> runs;
    stream::Timestamp last_ts = 0;
    std::uint64_t ingest_ns = 0;  ///< Chunk::ingest_ns, echoed on executes
    std::uint64_t index = 0;      ///< chunk_index at dispatch
    /// Trace events consumed through this chunk — journaled on its
    /// chunk-routed marker so resume re-ingests from exactly here.
    std::uint64_t events_through = 0;
  };
  std::deque<PendingChunk> pending;

  RunReport report;

  /// Counter totals of channels retired by recovery, folded into the link
  /// stats at shutdown so a recovered worker's traffic is not lost.
  struct RetiredLink {
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t frames_dropped = 0;
  };
  std::vector<RetiredLink> retired;

  /// Daemons respawned by recovery. Declared before `workers` so the
  /// channels close (and their reader threads join) first; each process
  /// destructor then reaps its already-exited child with a bounded
  /// SIGTERM -> SIGKILL grace.
  std::vector<node::NodeProcess> respawned;
  /// worker index -> its latest entry in `respawned`. When a respawned
  /// incarnation dies too, recover() kills *and reaps* it before dialing
  /// the replacement — the reap is the barrier that the dying listener is
  /// fully gone (see node::NodeProcess::kill for the backlog race).
  std::unordered_map<std::size_t, std::size_t> respawn_of;
  /// The fleet a resumed run spawned for itself (resume_federated): the
  /// crashed driver's workers died with it (driver-death EOF), so resume
  /// owns fresh daemons on the journaled endpoints. Declared before
  /// `workers` for the same close-before-reap ordering as `respawned`.
  std::vector<node::NodeProcess> owned_fleet;

  // Declared last so channel destruction (which joins the reader threads)
  // precedes destruction of everything the reader callbacks capture.
  struct Worker {
    std::string endpoint;
    std::unique_ptr<wire::FrameChannel> channel;
  };
  std::vector<Worker> workers;

  // --- reader-side handlers -----------------------------------------------

  /// Unrecoverable protocol fault (decode error, kError frame): sticky.
  void fail(std::size_t i, const std::string& what) {
    {
      std::lock_guard lock{mu};
      if (error.empty()) {
        error = "worker " + std::to_string(i) + " (" + workers[i].endpoint +
                "): " + what;
      }
    }
    cv.notify_all();
  }

  /// Recovery-lifecycle trace to stderr, gated by COSMOS_FED_DEBUG — the
  /// first tool to reach for when a chaos run wedges or diverges.
  static void dbg(const std::string& msg) {
    if (std::getenv("COSMOS_FED_DEBUG") != nullptr) {
      std::fprintf(stderr, "[fed] %s\n", msg.c_str());
    }
  }

  /// A worker's channel died (or a send to it failed). With recovery armed
  /// the worker is queued for respawn; otherwise the session fails sticky.
  void mark_dead(std::size_t i, const std::string& what) {
    dbg("mark_dead " + std::to_string(i) + ": " + what);
    {
      std::lock_guard lock{mu};
      if (expect_close) return;
      if (recovery_armed) {
        if (worker_dead[i] == 0) {
          worker_dead[i] = 1;
          dead_pending.push_back(i);
        }
      } else if (error.empty()) {
        error = "worker " + std::to_string(i) + " (" + workers[i].endpoint +
                "): " + what;
      }
    }
    cv.notify_all();
  }

  void on_frame(std::size_t i, wire::Frame frame) {
    try {
      switch (frame.type) {
        case wire::FrameType::kHelloAck: {
          (void)wire::decode_hello_ack(frame);
          std::lock_guard lock{mu};
          hello_acks.insert(i);
          break;
        }
        case wire::FrameType::kMatchResponse: {
          auto m = wire::decode_match_response(frame);
          std::lock_guard lock{mu};
          match_responses.emplace(m.job, std::move(m));
          break;
        }
        case wire::FrameType::kResult: {
          auto m = wire::decode_result(frame);
          std::lock_guard lock{mu};
          for (auto& ev : m.events) {
            results_inbox.push_back({std::move(ev), i});
          }
          break;
        }
        case wire::FrameType::kFlushAck: {
          const auto m = wire::decode_flush_ack(frame);
          std::lock_guard lock{mu};
          flush_acks[m.seq].insert(i);
          break;
        }
        case wire::FrameType::kStateHandoff: {
          const std::uint64_t wire_bytes =
              frame.payload.size() + wire::kFrameHeaderBytes;
          auto m = wire::decode_state_handoff(frame);
          const std::uint64_t key = m.engine.value();
          std::lock_guard lock{mu};
          handoffs.insert_or_assign(key,
                                    std::pair{std::move(m), wire_bytes});
          break;
        }
        case wire::FrameType::kMigrateAck: {
          const auto m = wire::decode_migrate_ack(frame);
          std::lock_guard lock{mu};
          migrate_acks.insert(m.engine.value());
          break;
        }
        case wire::FrameType::kTrafficReport: {
          auto m = wire::decode_traffic_report(frame);
          std::lock_guard lock{mu};
          traffic_reports.insert_or_assign(i, std::move(m));
          break;
        }
        case wire::FrameType::kStatsSample: {
          auto m = wire::decode_stats_sample(frame);
          std::lock_guard lock{mu};
          samples_inbox.push_back(std::move(m));
          break;
        }
        case wire::FrameType::kHeartbeat:
          // A worker's idle-probe: receipt alone refreshed the channel
          // watchdog, and the worker's own deadline is fed by the driver's
          // data frames (or its idle-probes), so absorb silently.
          break;
        case wire::FrameType::kPeerDown: {
          auto m = wire::decode_peer_down(frame);
          std::lock_guard lock{mu};
          peer_down_inbox.push_back(std::move(m));
          break;
        }
        case wire::FrameType::kSeqGap: {
          auto m = wire::decode_seq_gap(frame);
          std::lock_guard lock{mu};
          seq_gap_inbox.push_back(std::move(m));
          break;
        }
        case wire::FrameType::kError:
          // The worker saw an unrecoverable transport fault (e.g. a frame
          // that failed to decode): with recovery armed that incarnation is
          // replaced like any other channel death; otherwise it stays a
          // session fault.
          mark_dead(i, wire::decode_error(frame).message);
          break;
        default:
          fail(i, std::string{"unexpected frame "} +
                      wire::to_string(frame.type));
          break;
      }
    } catch (const std::exception& e) {
      fail(i, e.what());
    }
    cv.notify_all();
  }

  void on_close(std::size_t i, const std::string& err) {
    mark_dead(i, err.empty() ? std::string{"disconnected mid-session"} : err);
  }

  // --- driver-side plumbing -----------------------------------------------

  /// Waits until `pred` holds. Dead workers queued in the meantime are
  /// recovered here, on the driver thread, with the lock released — so
  /// every wait in the protocol doubles as the recovery dispatch point and
  /// a dead peer can never hang the session (unrecoverable faults throw).
  /// kPeerDown / kSeqGap reports are dispatched the same way (star
  /// fallback, data-log replay). With `on_stall` set and a liveness
  /// deadline configured, the wait additionally times out every
  /// deadline_ms and invokes `on_stall` (lock released) to re-send the
  /// request it is waiting on — the catch-all for a live worker whose
  /// request a drop fault swallowed. Every protocol re-send is idempotent
  /// (seq dedup, emplace/insert_or_assign dedup, flush-ack sets), so a
  /// spurious stall costs only duplicate frames.
  template <typename Pred>
  void wait_for(std::unique_lock<std::mutex>& lock, Pred pred,
                const std::function<void()>& on_stall = {}) {
    while (true) {
      const auto woken = [&] {
        return !error.empty() || !dead_pending.empty() ||
               !peer_down_inbox.empty() || !seq_gap_inbox.empty() || pred();
      };
      if (on_stall && options.liveness.deadline_ms > 0) {
        if (!cv.wait_for(lock,
                         std::chrono::milliseconds(options.liveness.deadline_ms),
                         woken)) {
          lock.unlock();
          dbg("stalled wait: re-sending");
          on_stall();
          lock.lock();
          continue;
        }
      } else {
        cv.wait(lock, woken);
      }
      if (!error.empty()) {
        throw std::runtime_error{"Cosmos federation: " + error};
      }
      if (!dead_pending.empty()) {
        const std::size_t i = dead_pending.front();
        dead_pending.pop_front();
        lock.unlock();
        dbg("recover begin " + std::to_string(i));
        recover(i);
        dbg("recover end " + std::to_string(i));
        lock.lock();
        continue;
      }
      if (!peer_down_inbox.empty()) {
        const auto m = peer_down_inbox.front();
        peer_down_inbox.pop_front();
        lock.unlock();
        handle_peer_down(m);
        lock.lock();
        continue;
      }
      if (!seq_gap_inbox.empty()) {
        const auto m = seq_gap_inbox.front();
        seq_gap_inbox.pop_front();
        lock.unlock();
        handle_seq_gap(m);
        lock.lock();
        continue;
      }
      return;
    }
  }

  /// Re-sends every data-log entry matching `match` as a plain driver
  /// execute — the shared replay core of worker recovery, peer-link
  /// fallback and kSeqGap repair. Receiving sites drop seqs below their
  /// frontier, so over-replaying is safe. Runs on the driver thread with
  /// the inbox lock released.
  template <typename Match>
  void replay_entries(Match match) {
    for (const auto& entry : data_log) {
      if (!match(entry)) continue;
      const std::size_t tgt = worker_of_engine.at(entry.engine);
      wire::ExecuteMsg exec;
      exec.engine = entry.engine;
      exec.ingest_ns = entry.ingest_ns;
      exec.seq = entry.seq;
      exec.batch =
          entry.rows.empty() ? *entry.run : entry.run->select(entry.rows);
      auto frame = wire::encode_execute(exec);
      driver_execute_bytes += frame.payload.size() + wire::kFrameHeaderBytes;
      send_data(tgt, std::move(frame));
    }
  }

  /// A worker reported its outbound peer link dead (re-dials exhausted):
  /// route the pair through the driver from now on and replay the logged
  /// entries that link carried — anything the dead link swallowed is
  /// re-delivered, anything it did deliver is seq-deduped at the site.
  void handle_peer_down(const wire::PeerDownMsg& m) {
    if (!peer_down_pairs.insert({m.from_worker, m.to_worker}).second) {
      return;  // already fallen back; a re-report changes nothing
    }
    dbg("peer link " + std::to_string(m.from_worker) + "->" +
        std::to_string(m.to_worker) + " down (" + m.reason +
        "): falling back to star routing");
    obs::Tracer::instance().instant("peer_fallback", "driver", m.from_worker);
    ++report.federation.peer_fallbacks;
    replay_entries([&](const DataLogEntry& e) {
      return e.owner == m.from_worker &&
             worker_of_engine.at(e.engine) == m.to_worker;
    });
  }

  /// A site reported gate starvation: executes below its gated floors
  /// never arrived (lost on a lossy-but-live link). Replay everything at
  /// or above each starved engine's expected seq.
  void handle_seq_gap(const wire::SeqGapMsg& m) {
    dbg("seq gap from worker " + std::to_string(m.worker_index) + " (" +
        std::to_string(m.missing.size()) + " engines): replaying");
    obs::Tracer::instance().instant("seq_gap_replay", "driver",
                                    m.worker_index);
    ++report.federation.seq_gap_replays;
    replay_entries([&](const DataLogEntry& e) {
      for (const auto& floor : m.missing) {
        if (e.engine == floor.engine && e.seq >= floor.seq) return true;
      }
      return false;
    });
  }

  /// Recovery-internal wait: returns false when worker `i` died again
  /// mid-recovery (it is already re-queued; the caller abandons this
  /// attempt and the outer wait_for retries). Other workers' deaths stay
  /// queued until this recovery completes — no recursion.
  template <typename Pred>
  bool wait_recovery(std::unique_lock<std::mutex>& lock, std::size_t i,
                     Pred pred) {
    cv.wait(lock,
            [&] { return !error.empty() || worker_dead[i] != 0 || pred(); });
    if (!error.empty()) {
      throw std::runtime_error{"Cosmos federation: " + error};
    }
    return worker_dead[i] == 0;
  }

  /// Control-plane send: a failure here is a session fault (registration,
  /// migration and shutdown frames).
  void send(std::size_t w, wire::Frame frame) {
    workers[w].channel->send(std::move(frame));
  }

  /// Data-plane send: skipped while the target is dead (the data log / the
  /// outstanding-barrier state re-sends on recovery), and a send failure
  /// marks the worker dead instead of throwing. Never called with mu held —
  /// send can block on backpressure, and the reader threads that drain the
  /// peer need mu.
  bool send_data(std::size_t w, wire::Frame frame) {
    {
      std::lock_guard lock{mu};
      if (w < worker_dead.size() && worker_dead[w] != 0) return false;
    }
    try {
      workers[w].channel->send(std::move(frame));
      return true;
    } catch (const std::exception& e) {
      mark_dead(w, e.what());
      return false;
    }
  }

  void broadcast(const wire::Frame& frame) {
    for (std::size_t w = 0; w < workers.size(); ++w) send(w, frame);
  }

  /// Broadcast + retain for registration replay to respawned workers (and
  /// journal for replay to a restarted *driver*).
  void broadcast_logged(wire::Frame frame) {
    if (jw) jw->registration(frame);
    broadcast(frame);
    reg_log.push_back(std::move(frame));
  }

  /// Appends one routed execute to the in-memory data log, tracking the
  /// retention counters the boundedness test asserts on.
  void log_append(DataLogEntry&& entry) {
    data_log.push_back(std::move(entry));
    ++data_log_appended;
    data_log_peak = std::max(data_log_peak, data_log.size());
  }

  /// Called after a fleet-wide flush fully acked: every engine's frontier
  /// at that moment is now applied on every worker, so the floor advances
  /// and the data log prunes below it. Worker-restart recovery replays the
  /// whole since-checkpoint window, so with it enabled truncation stays
  /// checkpoint-owned.
  void note_all_acked_floors() {
    if (!log_data) return;
    for (const auto& [engine, seq] : next_exec_seq) acked_floor[engine] = seq;
    if (options.recovery.enabled) return;
    std::erase_if(data_log, [&](const DataLogEntry& e) {
      const auto it = acked_floor.find(e.engine.value());
      return it != acked_floor.end() && e.seq < it->second;
    });
  }

  std::int64_t link_delay(std::size_t i) const {
    return i < options.link_delay_ms.size() ? options.link_delay_ms[i] : 0;
  }

  wire::HelloMsg hello_for(std::size_t i) const {
    wire::HelloMsg hello;
    hello.worker_index = static_cast<std::uint32_t>(i);
    hello.shards = static_cast<std::uint32_t>(
        options.worker_shards == 0 ? 1 : options.worker_shards);
    hello.send_delay_ms = link_delay(i);
    hello.stats_sample_every_ms = options.stats_sample_every_ms;
    hello.trace = options.trace_path.empty() ? 0 : 1;
    hello.peer_links = options.peer_links ? 1 : 0;
    hello.heartbeat_every_ms = options.liveness.heartbeat_every_ms;
    hello.liveness_deadline_ms = options.liveness.deadline_ms;
    return hello;
  }

  wire::FrameChannel::Options channel_options(std::size_t i) const {
    wire::FrameChannel::Options copts;
    copts.send_queue_capacity = options.queue_capacity;
    copts.send_delay_ms = link_delay(i);
    copts.heartbeat_every_ms = options.liveness.heartbeat_every_ms;
    copts.liveness_deadline_ms = options.liveness.deadline_ms;
    return copts;
  }

  /// The seq frontier of every engine hosted at worker `w`, in engine
  /// order — the floors carried on that worker's watermarks and flushes.
  std::vector<wire::EngineFloor> floors_for(std::size_t w) const {
    std::vector<wire::EngineFloor> floors;
    for (const auto& [engine, hw] : worker_of_engine) {
      if (hw != w) continue;
      const auto it = next_exec_seq.find(engine.value());
      floors.push_back(
          {engine, it == next_exec_seq.end() ? 0 : it->second});
    }
    std::sort(floors.begin(), floors.end(),
              [](const wire::EngineFloor& a, const wire::EngineFloor& b) {
                return a.engine.value() < b.engine.value();
              });
    return floors;
  }

  void connect_all() {
    workers.reserve(options.workers.size());
    for (std::size_t i = 0; i < options.workers.size(); ++i) {
      Worker w;
      w.endpoint = options.workers[i];
      w.channel = std::make_unique<wire::FrameChannel>(
          wire::connect_to(wire::Endpoint::parse(w.endpoint)),
          channel_options(i));
      workers.push_back(std::move(w));
    }
    worker_dead.assign(workers.size(), 0);
    retired.resize(workers.size());
    for (std::size_t i = 0; i < workers.size(); ++i) {
      workers[i].channel->start_reader(
          [this, i](wire::Frame f) { on_frame(i, std::move(f)); },
          [this, i](const std::string& err) { on_close(i, err); });
    }
    for (std::size_t i = 0; i < workers.size(); ++i) {
      send(i, wire::encode_hello(hello_for(i)));
    }
    std::unique_lock lock{mu};
    wait_for(lock, [&] { return hello_acks.size() >= workers.size(); });
  }

  /// Ships everything a worker needs to be the driver's twin: the exact
  /// topology (same doubles -> same overlay tree), every source stream's
  /// advertisement, every p1 subscription under its driver-assigned id,
  /// and each unit's deployment to the worker that will host its engine.
  void replicate() {
    const auto& lat = sys.broker_.latency_matrix();
    wire::TopologyMsg topo;
    topo.participants = sys.broker_.participants();
    topo.members = lat.members();
    topo.dense = lat.dense();
    topo.use_index = true;
    broadcast_logged(wire::encode_topology(topo));

    // Result streams stay driver-side: workers host the engines that emit
    // them and ship the tuples back raw; p2 matching/delivery (and its
    // traffic accounting) happens on the driver's own broker.
    std::set<std::string> result_streams;
    for (const auto& [uid, unit] : sys.units_) {
      result_streams.insert(unit.result_stream);
    }

    for (auto* part : sys.broker_.partitions()) {
      if (result_streams.contains(part->stream())) continue;
      wire::RegisterStreamMsg reg_msg;
      reg_msg.stream = part->stream();
      reg_msg.publisher = part->publisher();
      reg_msg.schema = part->schema();
      broadcast_logged(wire::encode_register_stream(reg_msg));
      // Static stream ownership: the publisher node's index modulo the
      // worker count, the same deterministic spread run() uses for shards.
      worker_of_stream.emplace(part->stream(),
                               part->publisher().value() % workers.size());
    }

    for (const auto& [uid, unit] : sys.units_) {
      for (const auto sid : unit.p1_subs) {
        const auto* sub = sys.broker_.subscription(sid);
        if (sub == nullptr) {
          throw std::logic_error{"Cosmos: unit holds a dangling p1 sub"};
        }
        // Broadcast: only the stream's owner ever matches it, but having
        // the full subscription table everywhere means a migrated engine's
        // destination needs no extra registration traffic.
        broadcast_logged(wire::encode_subscribe({*sub}));
      }
    }

    if (options.peer_links) {
      wire::PeerTableMsg table;
      table.endpoints = options.workers;
      broadcast_logged(wire::encode_peer_table(table));
    }

    for (const auto& [uid, unit] : sys.units_) {
      const std::size_t host_worker = unit.host.value() % workers.size();
      worker_of_engine[unit.host] = host_worker;
      wire::DeployUnitMsg deploy;
      deploy.unit_id = unit.id;
      deploy.host = unit.host;
      deploy.result_stream = unit.result_stream;
      deploy.spec = unit.spec;
      send(host_worker, wire::encode_deploy_unit(deploy));
    }

    // Barrier: surfaces registration/deployment faults before any data
    // flows (per-channel FIFO already orders the frames themselves).
    flush_all();

    // Initial (empty-state) checkpoint, then arm recovery: from here on a
    // channel death is a respawn, not a session fault.
    for (const auto& [engine, hw] : worker_of_engine) {
      ckpt.emplace(engine.value(), EngineCheckpoint{});
    }
    if (jw) {
      // Seal segment 1 with the initial (zero-engine) commit: a crash
      // before the first periodic checkpoint is already resumable — every
      // engine restarts empty at seq 0, exactly the ckpt map above.
      journal::CheckpointCommit c;
      c.checkpoint_id = ++next_ckpt_id;
      c.engine_states = 0;
      jw->commit_checkpoint(c);
    }
    {
      std::lock_guard lock{mu};
      recovery_armed = options.recovery.enabled;
    }
  }

  /// replicate() for a resumed run (resume_state set): re-broadcast the
  /// journaled registrations, restore every engine at the journaled
  /// checkpoint cut (kMigrateIn doubles as the deployment, exactly as
  /// worker-restart recovery does), replay the journaled post-checkpoint
  /// executes (site seq dedup absorbs nothing here — the fleet is fresh —
  /// but peer-link batches replay through the star path like any recovery
  /// replay), arm result suppression from the journaled delivered floors,
  /// then open the continued journal segment and seal it with a fresh
  /// checkpoint. After that cut the run is a normal journaled run — and
  /// itself resumable. The journal writer is installed only after the
  /// replay quiesces: the continued segment must hold nothing but the
  /// preamble + the fresh cut before its commit (the recovery parser
  /// rejects pre-commit data records), and every replay-time delivery is
  /// covered by the fresh cut, not a delivered floor.
  void resume_replicate() {
    const journal::RecoveredRun& rec = *resume_state;

    for (const auto& frame : rec.registrations) broadcast_logged(frame);

    // Rebuild the routing tables exactly as replicate() derives them (both
    // are deterministic in sys), then let the journaled engine states
    // override the placement where a pre-crash migration moved an engine.
    std::set<std::string> result_streams;
    for (const auto& [uid, unit] : sys.units_) {
      result_streams.insert(unit.result_stream);
    }
    for (auto* part : sys.broker_.partitions()) {
      if (result_streams.contains(part->stream())) continue;
      worker_of_stream.emplace(part->stream(),
                               part->publisher().value() % workers.size());
    }
    for (const auto& [uid, unit] : sys.units_) {
      worker_of_engine[unit.host] = unit.host.value() % workers.size();
    }
    std::unordered_map<std::uint64_t, const journal::EngineState*> saved;
    for (const auto& es : rec.engines) {
      worker_of_engine[es.engine] = es.worker;
      saved.emplace(es.engine.value(), &es);
    }

    std::vector<std::pair<NodeId, std::size_t>> placement(
        worker_of_engine.begin(), worker_of_engine.end());
    std::sort(placement.begin(), placement.end(),
              [](const auto& a, const auto& b) {
                return a.first.value() < b.first.value();
              });
    for (const auto& [engine, hw] : placement) {
      wire::MigrateInMsg in;
      in.engine = engine;
      for (const auto& [uid, unit] : sys.units_) {
        if (unit.host != engine) continue;
        in.units.push_back(
            {unit.id, unit.host, unit.result_stream, unit.spec});
      }
      EngineCheckpoint ec;
      if (const auto sit = saved.find(engine.value()); sit != saved.end()) {
        in.state = sit->second->units;
        in.exec_seq = sit->second->exec_seq;
        ec.state = sit->second->units;
        ec.exec_seq = sit->second->exec_seq;
      }
      next_exec_seq[engine.value()] = in.exec_seq;
      ckpt.emplace(engine.value(), std::move(ec));
      send(hw, wire::encode_migrate_in(in));
      {
        std::unique_lock lock{mu};
        wait_for(lock,
                 [&] { return migrate_acks.contains(engine.value()); });
        migrate_acks.erase(engine.value());
      }
    }

    // Replay the journaled whole-chunk executes in route order as plain
    // driver sends, re-advancing each engine's seq frontier past them. The
    // batches also seed the in-memory data log: with worker recovery on,
    // the since-checkpoint window must be re-sendable until the fresh cut
    // below resets it.
    for (const auto& m : rec.executes) {
      auto& frontier = next_exec_seq[m.engine.value()];
      frontier = std::max(frontier, m.seq + 1);
      auto frame = wire::encode_execute(m);
      driver_execute_bytes += frame.payload.size() + wire::kFrameHeaderBytes;
      send_data(worker_of_engine.at(m.engine), std::move(frame));
      if (log_data) {
        log_append({SIZE_MAX, m.engine, m.seq, {},
                    std::make_shared<const runtime::TupleBatch>(m.batch),
                    m.ingest_ns});
      }
    }

    // Restore stream time after the replay (floors make the sites defer
    // pruning until every replayed execute applied), and arm suppression of
    // the re-emissions the crashed driver already delivered.
    if (rec.has_watermark) {
      last_watermark = rec.watermark;
      has_watermark = true;
      for (std::size_t w = 0; w < workers.size(); ++w) {
        send_data(w,
                  wire::encode_watermark({last_watermark, floors_for(w)}));
      }
    }
    for (const auto& d : rec.delivered) {
      pending_discard[d.stream] = static_cast<std::size_t>(d.count);
    }

    // Quiesce: flush acks follow each worker's replay results on its FIFO
    // channel, so after the barrier every re-emission has been suppressed
    // or delivered — the suppression floor is exactly consumed (delivered
    // records are journaled after their chunk's marker, so every counted
    // result's execute is in the replayed prefix).
    flush_all();
    drain_deliver();
    events_consumed = rec.resume_events;
    chunk_index = rec.resume_chunk;

    // Continue the segment chain and seal the resume with a fresh cut; from
    // here on the run journals normally.
    jw = journal::Writer::continue_at(options.journal.dir, rec.next_segment,
                                      journal_meta(), journal_options());
    for (const auto& f : reg_log) jw->registration(f);
    if (!checkpoint()) {
      // Unreachable: recovery is not armed during resume, so a worker
      // death inside the cut throws instead of bumping the recovery count.
      throw std::runtime_error{
          "Cosmos federation: resume checkpoint aborted"};
    }
    {
      std::lock_guard lock{mu};
      recovery_armed = options.recovery.enabled;
    }
  }

  void flush_targets(const std::set<std::size_t>& targets) {
    const std::uint64_t seq = next_flush_seq++;
    {
      std::lock_guard lock{mu};
      outstanding_flush = OutstandingFlush{seq, targets};
    }
    for (const auto w : targets) {
      send_data(w, wire::encode_flush({seq, floors_for(w)}));
    }
    std::unique_lock lock{mu};
    wait_for(
        lock,
        [&] {
          const auto it = flush_acks.find(seq);
          if (it == flush_acks.end()) return targets.empty();
          for (const auto w : targets) {
            if (!it->second.contains(w)) return false;
          }
          return true;
        },
        /*on_stall=*/[&] {
          // A drop fault may have swallowed the kFlush (or its ack);
          // re-send to whoever has not answered. Duplicate flushes re-ack
          // into the same per-worker set.
          std::set<std::size_t> missing;
          {
            std::lock_guard g{mu};
            const auto it = flush_acks.find(seq);
            for (const auto w : targets) {
              if (it == flush_acks.end() || !it->second.contains(w)) {
                missing.insert(w);
              }
            }
          }
          for (const auto w : missing) {
            send_data(w, wire::encode_flush({seq, floors_for(w)}));
          }
        });
    flush_acks.erase(seq);
    outstanding_flush.reset();
    if (targets.size() >= workers.size()) note_all_acked_floors();
  }

  void flush_worker(std::size_t w) { flush_targets({w}); }

  void flush_all() {
    std::set<std::size_t> all;
    for (std::size_t w = 0; w < workers.size(); ++w) all.insert(w);
    flush_targets(all);
  }

  /// p2 leg: result tuples the readers collected, delivered on the driver
  /// thread in arrival order (per engine that is emission order — one
  /// engine lives on one worker and executes in seq order). Re-emissions
  /// from a recovery replay are skipped through pending_discard without
  /// recounting, so each result reaches the user callback exactly once.
  void drain_deliver() {
    std::vector<InboxResult> batch;
    {
      std::lock_guard lock{mu};
      batch.swap(results_inbox);
    }
    if (batch.empty()) return;
    const double cpu0 = thread_cpu_seconds();
    const obs::Span span{"deliver", "driver", batch.size()};
    const std::uint64_t now = now_ns();
    // Partition out replay re-emissions first: what remains is exactly what
    // reaches the user callbacks, so with journaling on it can be written
    // as the delivered floor *before* any callback runs — a resumed driver
    // then suppresses re-deliveries it can no longer remember making.
    std::vector<const InboxResult*> deliver;
    deliver.reserve(batch.size());
    for (const auto& r : batch) {
      if (!pending_discard.empty()) {
        const auto dit = pending_discard.find(r.ev.stream);
        if (dit != pending_discard.end() && dit->second > 0) {
          --dit->second;
          continue;
        }
      }
      deliver.push_back(&r);
    }
    if (jw && !deliver.empty()) {
      std::map<std::string, std::uint64_t> counts;
      for (const auto* r : deliver) ++counts[r->ev.stream];
      std::vector<journal::DeliveredCount> floor;
      floor.reserve(counts.size());
      for (const auto& [stream, count] : counts) {
        floor.push_back({stream, count});
      }
      jw->delivered(floor);
    }
    for (const auto* r : deliver) {
      const auto& ev = r->ev;
      // Close the end-to-end measurement here: p2 delivery completes on
      // the driver thread, and worker/driver now_ns share a clock epoch
      // (same host, CLOCK_MONOTONIC), so ingest stamps compare directly.
      if (ev.ingest_ns != 0 && now > ev.ingest_ns) {
        e2e->record(now - ev.ingest_ns);
      }
      sys.deliver_result(ev.stream, ev.tuple);
      if (options.recovery.enabled) ++delivered_since_ckpt[ev.stream];
    }
    report.driver.deliver_cpu_seconds += thread_cpu_seconds() - cpu0;
  }

  // --- chunk pipeline ------------------------------------------------------

  void dispatch(runtime::Chunk&& chunk) {
    const double cpu0 = thread_cpu_seconds();
    const obs::Span span{"dispatch", "driver", chunk.runs.size()};
    PendingChunk pc;
    pc.last_ts = chunk.last_ts;
    pc.ingest_ns = chunk.ingest_ns;
    pc.index = chunk_index;
    events_consumed += chunk.tuples;
    pc.events_through = events_consumed;
    pc.runs.reserve(chunk.runs.size());
    for (runtime::TupleBatch& run : chunk.runs) {
      auto* part = sys.broker_.partition(run.stream());
      if (part == nullptr) {
        // Same contract as push(): publishing an unadvertised stream is a
        // caller error, not a silent drop.
        throw std::invalid_argument{
            "BrokerNetwork: publish to unadvertised " + run.stream()};
      }
      PendingRun pr;
      pr.run = std::make_shared<const runtime::TupleBatch>(std::move(run));
      // The driver's partition holds exactly the p1 subscriptions the
      // owner worker's does, so the skip-when-unsubscribed fast path can
      // be decided locally without a round trip.
      if (part->subscription_count() > 0) {
        const auto oit = worker_of_stream.find(pr.run->stream());
        if (oit == worker_of_stream.end()) {
          throw std::invalid_argument{
              "Cosmos: federated trace event on non-source stream " +
              pr.run->stream()};
        }
        pr.job = next_job++;
        pr.owner = oit->second;
        pr.awaiting = true;
        send_data(pr.owner, wire::encode_match_request({pr.job, *pr.run}));
      }
      pc.runs.push_back(std::move(pr));
    }
    pending.push_back(std::move(pc));
    ++report.chunks;
    report.driver.dispatch_cpu_seconds += thread_cpu_seconds() - cpu0;
  }

  /// Awaits the oldest in-flight chunk's match responses, routes them into
  /// per-engine executes, and sends each worker the chunk watermark with
  /// its current seq floors.
  void complete_front() {
    // The front chunk stays in `pending` across the wait: a recovery
    // dispatched from wait_for re-sends match requests by walking
    // `pending`, and popping first would hide exactly the runs whose
    // request died with the worker (the wait would then never finish).
    std::vector<wire::MatchResponseMsg> responses(pending.front().runs.size());
    {
      const TimePoint wait0 = Clock::now();
      const obs::Span span{"match_wait", "driver",
                           pending.front().runs.size()};
      std::unique_lock lock{mu};
      wait_for(
          lock,
          [&] {
            for (const auto& pr : pending.front().runs) {
              if (pr.awaiting && !match_responses.contains(pr.job)) {
                return false;
              }
            }
            return true;
          },
          /*on_stall=*/[&] {
            // Re-send every still-unanswered match request: a drop fault
            // can swallow the request (or the response) with the owner
            // alive. Duplicate responses are emplace-deduped.
            for (const auto& pr : pending.front().runs) {
              if (!pr.awaiting) continue;
              bool answered = false;
              {
                std::lock_guard g{mu};
                answered = match_responses.contains(pr.job);
              }
              if (!answered) {
                send_data(pr.owner,
                          wire::encode_match_request({pr.job, *pr.run}));
              }
            }
          });
      report.driver.match_wait_seconds += seconds_since(wait0);
      for (std::size_t i = 0; i < pending.front().runs.size(); ++i) {
        if (!pending.front().runs[i].awaiting) continue;
        auto node = match_responses.extract(pending.front().runs[i].job);
        responses[i] = std::move(node.mapped());
      }
    }
    PendingChunk chunk = std::move(pending.front());
    pending.pop_front();

    route_and_execute(chunk, responses);
    // The chunk-routed marker lands only after every execute of the chunk
    // is journaled: recovery replays whole-chunk prefixes and regenerates a
    // partial tail by deterministic re-routing (see journal::ChunkRouted).
    if (jw) {
      jw->chunk_routed({chunk.index, chunk.events_through, chunk.last_ts});
    }
    // Watermark after the chunk's executes: the per-engine floors make the
    // site defer pruning until every older execute (possibly still in
    // flight on a peer link) has been applied, so join-state pruning only
    // drops tuples no future arrival can pair with.
    for (std::size_t w = 0; w < workers.size(); ++w) {
      send_data(w, wire::encode_watermark({chunk.last_ts, floors_for(w)}));
    }
    last_watermark = chunk.last_ts;
    has_watermark = true;
  }

  /// The route stage of run(), frame-producing: union of matched rows per
  /// subscriber engine (a tuple reaches an engine once however many
  /// subscriptions matched), per-engine batches in run order, each stamped
  /// with its engine's next seq. Star path: the driver sends the kExecute
  /// itself. Peer-link path: the driver sends the match owner one compact
  /// kRouteDecision and the owner ships the retained batch's slices
  /// worker-to-worker. Either way the route is appended to the data log
  /// for recovery replay.
  void route_and_execute(const PendingChunk& chunk,
                         std::vector<wire::MatchResponseMsg>& responses) {
    const double route_cpu0 = thread_cpu_seconds();
    const obs::Span route_span{"route", "driver", chunk.runs.size()};
    std::map<NodeId, std::vector<char>> mask_of;
    for (std::size_t i = 0; i < chunk.runs.size(); ++i) {
      const PendingRun& pr = chunk.runs[i];
      const auto& run = *pr.run;
      mask_of.clear();
      for (auto& [sub_id, rows] : responses[i].deliveries) {
        const auto* sub = sys.broker_.subscription(sub_id);
        if (sub == nullptr) {
          throw wire::Error{
              "Cosmos federation: match response names unknown subscription"};
        }
        if (sys.p2_owner_.contains(sub_id)) continue;
        auto& mask =
            mask_of.try_emplace(sub->subscriber, run.size(), char{0})
                .first->second;
        for (const auto row : rows) {
          if (row >= mask.size()) {
            throw wire::Error{"Cosmos federation: matched row out of range"};
          }
          mask[row] = 1;
        }
      }
      wire::RouteDecisionMsg decision;
      decision.job = pr.job;
      decision.ingest_ns = chunk.ingest_ns;
      for (const auto& [node, mask] : mask_of) {
        const auto eit = sys.engines_.find(node);
        if (eit == sys.engines_.end() ||
            !eit->second->has_stream(run.stream())) {
          continue;
        }
        std::size_t matched_rows = 0;
        for (const char m : mask) matched_rows += m != 0;
        if (matched_rows == 0) continue;
        const std::uint64_t seq = next_exec_seq[node.value()]++;
        std::vector<std::uint32_t> rows;
        if (matched_rows < run.size()) {
          rows.reserve(matched_rows);
          for (std::uint32_t r = 0; r < mask.size(); ++r) {
            if (mask[r] != 0) rows.push_back(r);
          }
        }
        const std::size_t tgt = worker_of_engine.at(node);
        // A pair whose peer link fell back to star routing (kPeerDown)
        // gets its batches from the driver for the rest of the run.
        const bool peer_path =
            options.peer_links &&
            !peer_down_pairs.contains({static_cast<std::uint32_t>(pr.owner),
                                       static_cast<std::uint32_t>(tgt)});
        if (peer_path) {
          // Journal before the decision ships: once the owner slices and
          // sends worker-to-worker the driver never sees these bytes again.
          if (jw) {
            wire::ExecuteMsg exec;
            exec.engine = node;
            exec.ingest_ns = chunk.ingest_ns;
            exec.seq = seq;
            exec.batch = rows.empty() ? run : run.select(rows);
            jw->execute(exec);
          }
          decision.targets.push_back(
              {node, static_cast<std::uint32_t>(tgt), seq, rows});
          if (log_data) {
            log_append({pr.owner, node, seq, std::move(rows), pr.run,
                        chunk.ingest_ns});
          }
        } else {
          wire::ExecuteMsg exec;
          exec.engine = node;
          exec.ingest_ns = chunk.ingest_ns;
          exec.seq = seq;
          exec.batch = rows.empty() ? run : run.select(rows);
          if (jw) jw->execute(exec);
          auto frame = wire::encode_execute(exec);
          driver_execute_bytes +=
              frame.payload.size() + wire::kFrameHeaderBytes;
          send_data(tgt, std::move(frame));
          if (log_data) {
            log_append({SIZE_MAX, node, seq, std::move(rows), pr.run,
                        chunk.ingest_ns});
          }
        }
      }
      // Sent even with no targets: the owner frees the retained batch.
      if (options.peer_links && pr.awaiting) {
        send_data(pr.owner, wire::encode_route_decision(decision));
      }
    }
    report.driver.route_cpu_seconds += thread_cpu_seconds() - route_cpu0;
  }

  // --- worker restart recovery ---------------------------------------------

  /// Respawn + resume worker `i`: retire the dead channel, purge inbox
  /// state the dead incarnation owned, respawn cosmos_noded on the same
  /// endpoint, replay registrations, re-hand-off each hosted engine at its
  /// checkpoint cut, replay the data log (survivor sites drop the
  /// duplicates by seq), re-send the in-flight barrier, and arm result
  /// dedup for the streams the worker hosts. Runs on the driver thread,
  /// called from wait_for with the inbox lock released.
  void recover(std::size_t i) {
    if (scripted_migration_active) {
      throw std::runtime_error{
          "Cosmos federation: worker " + std::to_string(i) +
          " died during a scripted migration handshake — unrecoverable"};
    }
    ++report.federation.recoveries;
    if (report.federation.recoveries > options.recovery.max_recoveries) {
      throw std::runtime_error{
          "Cosmos federation: worker " + std::to_string(i) +
          " died; max_recoveries (" +
          std::to_string(options.recovery.max_recoveries) + ") exhausted"};
    }
    obs::Tracer::instance().instant("recover", "driver", i);

    // Retire the dead channel (close joins its reader thread, so no
    // callback can race what follows) and keep its traffic totals.
    Worker& w = workers[i];
    retired[i].bytes_sent += w.channel->bytes_sent();
    retired[i].bytes_received += w.channel->bytes_received();
    retired[i].frames_sent += w.channel->frames_sent();
    retired[i].frames_received += w.channel->frames_received();
    w.channel->close();
    retired[i].frames_dropped += w.channel->frames_dropped();

    // Purge what the dead incarnation owned. Its flush acks are retracted
    // (the respawn must re-answer after the replay) and its undelivered
    // results dropped (the replay re-emits them); results it already
    // delivered are handled by pending_discard below. Match responses stay:
    // matching is deterministic, a duplicate response is emplace-deduped.
    {
      std::lock_guard lock{mu};
      hello_acks.erase(i);
      for (auto& [seq, acks] : flush_acks) acks.erase(i);
      std::erase_if(results_inbox,
                    [&](const InboxResult& r) { return r.worker == i; });
      migrate_acks.clear();  // stale acks from an aborted earlier attempt
    }

    const std::string noded = options.recovery.noded_path.empty()
                                  ? node::default_noded_path()
                                  : options.recovery.noded_path;
    dbg("respawning " + std::to_string(i));
    // If this worker slot was already respawned once, kill *and reap* the
    // previous driver-owned incarnation before dialing a successor: a dying
    // listener's accept backlog can swallow the re-dial (the connect
    // succeeds against a process that will never serve), and the reap is
    // the only barrier that the endpoint is really free. The chaos tests
    // used to carry this waitpid themselves; it lives here now.
    if (const auto rit = respawn_of.find(i); rit != respawn_of.end()) {
      respawned[rit->second].kill();
    }
    // The respawn always gets a fresh, fault-free channel: injected fault
    // plans die with the incarnation they were installed on.
    auto& proc = respawned.emplace_back(node::spawn_noded(noded, w.endpoint));
    respawn_of[i] = respawned.size() - 1;
    if (options.on_respawn) options.on_respawn(i, proc.pid());

    w.channel = std::make_unique<wire::FrameChannel>(
        wire::connect_to(wire::Endpoint::parse(w.endpoint)),
        channel_options(i));
    {
      std::lock_guard lock{mu};
      worker_dead[i] = 0;
    }
    w.channel->start_reader(
        [this, i](wire::Frame f) { on_frame(i, std::move(f)); },
        [this, i](const std::string& err) { on_close(i, err); });

    try {
      w.channel->send(wire::encode_hello(hello_for(i)));
      for (const auto& f : reg_log) w.channel->send(f);
      {
        std::unique_lock lock{mu};
        if (!wait_recovery(lock, i,
                           [&] { return hello_acks.contains(i); })) {
          return;
        }
      }

      // Re-hand-off each hosted engine: units + checkpointed state + the
      // seq cut the site resumes ordering at. kMigrateIn doubles as the
      // deployment, which is why deploys are not in reg_log.
      std::vector<NodeId> hosted;
      for (const auto& [engine, hw] : worker_of_engine) {
        if (hw == i) hosted.push_back(engine);
      }
      std::sort(hosted.begin(), hosted.end(),
                [](const NodeId& a, const NodeId& b) {
                  return a.value() < b.value();
                });
      for (const auto engine : hosted) {
        wire::MigrateInMsg in;
        in.engine = engine;
        for (const auto& [uid, unit] : sys.units_) {
          if (unit.host != engine) continue;
          in.units.push_back(
              {unit.id, unit.host, unit.result_stream, unit.spec});
        }
        const auto cit = ckpt.find(engine.value());
        if (cit != ckpt.end()) {
          in.state = cit->second.state;
          in.exec_seq = cit->second.exec_seq;
        }
        w.channel->send(wire::encode_migrate_in(in));
        {
          std::unique_lock lock{mu};
          if (!wait_recovery(lock, i, [&] {
                return migrate_acks.contains(engine.value());
              })) {
            return;
          }
          migrate_acks.erase(engine.value());
        }
      }

      // Data-log replay, in route order, as plain driver executes (the one
      // place peer-link mode still sends batches from the driver). An
      // entry is replayed when its current target is the recovered worker
      // (a lost or half-applied delivery) or its owner is (a lost
      // kRouteDecision / unshipped slice). Survivor sites drop replayed
      // seqs below their frontier.
      replay_entries([&](const DataLogEntry& entry) {
        return worker_of_engine.at(entry.engine) == i || entry.owner == i;
      });

      // Re-send match requests this owner still owes an answer for. In
      // peer-link mode re-match even answered jobs: the retained batch
      // died with the worker, and a pending chunk's kRouteDecision will
      // need it (the duplicate response is emplace-deduped driver-side).
      for (const auto& pc : pending) {
        for (const auto& pr : pc.runs) {
          if (!pr.awaiting || pr.owner != i) continue;
          bool answered = false;
          {
            std::lock_guard lock{mu};
            answered = match_responses.contains(pr.job);
          }
          if (answered && !options.peer_links) continue;
          send_data(i, wire::encode_match_request({pr.job, *pr.run}));
        }
      }

      // Re-establish stream time, then whatever barrier was in flight —
      // all after the replay on the same FIFO channel, so floors are met
      // in order.
      bool resend_flush = false;
      std::uint64_t flush_seq = 0;
      std::optional<std::pair<NodeId, std::size_t>> ckpt_out;
      bool resend_traffic = false;
      {
        std::lock_guard lock{mu};
        if (outstanding_flush && outstanding_flush->waiting.contains(i)) {
          resend_flush = true;
          flush_seq = outstanding_flush->seq;
        }
        if (outstanding_ckpt_out && outstanding_ckpt_out->second == i &&
            !handoffs.contains(outstanding_ckpt_out->first.value())) {
          // Only when the handoff itself was lost: a handoff that arrived
          // before the death is valid (same flush + seq cut the replay
          // reconverges to), and re-requesting would leave a byte-identical
          // duplicate to go stale in the inbox.
          ckpt_out = outstanding_ckpt_out;
        }
        resend_traffic = collecting_traffic && !traffic_reports.contains(i);
      }
      if (has_watermark) {
        send_data(i, wire::encode_watermark({last_watermark, floors_for(i)}));
      }
      if (resend_flush) {
        send_data(i, wire::encode_flush({flush_seq, floors_for(i)}));
      }
      if (ckpt_out) {
        send_data(i, wire::encode_migrate_out({ckpt_out->first, 1}));
      }
      if (resend_traffic) {
        send_data(i, wire::encode_traffic_request());
      }

      // The replay re-executes everything since the checkpoint on this
      // worker, so its streams' results are re-emitted in full; skip
      // exactly the ones the user callback already saw.
      for (const auto& [uid, unit] : sys.units_) {
        if (worker_of_engine.at(unit.host) != i) continue;
        const auto dit = delivered_since_ckpt.find(unit.result_stream);
        pending_discard[unit.result_stream] =
            dit == delivered_since_ckpt.end() ? 0 : dit->second;
      }
    } catch (const std::exception& e) {
      // The respawn died mid-resume: queue it again (bounded by
      // max_recoveries) and let the outer wait retry.
      mark_dead(i, e.what());
    }
  }

  /// Periodic recovery checkpoint, taken between chunks: quiesce (drain
  /// window + flush + deliver), then pull every engine's state with a
  /// keep-mode kMigrateOut. On success the data log and delivery counts
  /// reset to the new cut. A recovery racing any of the waits aborts the
  /// attempt (the cut would straddle the replay); the next chunk retries.
  bool checkpoint() {
    const std::size_t recoveries0 = report.federation.recoveries;
    const obs::Span span{"checkpoint", "driver", ckpt.size()};
    while (!pending.empty()) complete_front();
    flush_all();
    drain_deliver();
    if (report.federation.recoveries != recoveries0) return false;

    std::vector<std::pair<NodeId, std::size_t>> placement(
        worker_of_engine.begin(), worker_of_engine.end());
    std::sort(placement.begin(), placement.end(),
              [](const auto& a, const auto& b) {
                return a.first.value() < b.first.value();
              });
    // From here on the cut is being journaled into a fresh pending segment;
    // an aborted attempt unlinks it and the previous segment stays live.
    if (jw) jw->begin_checkpoint();
    std::unordered_map<std::uint64_t, EngineCheckpoint> fresh;
    for (const auto& [engine, hw] : placement) {
      {
        std::lock_guard lock{mu};
        handoffs.erase(engine.value());  // stale duplicate from a re-request
        outstanding_ckpt_out = std::pair{engine, hw};
      }
      send_data(hw, wire::encode_migrate_out({engine, /*keep=*/1}));
      wire::StateHandoffMsg handed;
      {
        std::unique_lock lock{mu};
        wait_for(
            lock, [&] { return handoffs.contains(engine.value()); },
            /*on_stall=*/[&] {
              // Keep-mode kMigrateOut lost to a drop fault: re-request.
              // A duplicate handoff is byte-identical (same flush + seq
              // cut) and insert_or_assign-deduped.
              send_data(hw, wire::encode_migrate_out({engine, /*keep=*/1}));
            });
        auto node = handoffs.extract(engine.value());
        handed = std::move(node.mapped().first);
        outstanding_ckpt_out.reset();
      }
      if (report.federation.recoveries != recoveries0) {
        if (jw) jw->abort_checkpoint();
        return false;
      }
      EngineCheckpoint ec;
      ec.state = std::move(handed.units);
      const auto sit = next_exec_seq.find(engine.value());
      ec.exec_seq = sit == next_exec_seq.end() ? 0 : sit->second;
      if (jw) {
        jw->engine_state({engine, static_cast<std::uint32_t>(hw),
                          ec.exec_seq, ec.state});
      }
      fresh.emplace(engine.value(), std::move(ec));
    }
    if (jw) {
      journal::CheckpointCommit c;
      c.checkpoint_id = ++next_ckpt_id;
      c.events_consumed = events_consumed;
      c.chunk_index = chunk_index;
      c.watermark = last_watermark;
      c.has_watermark = has_watermark;
      c.engine_states = placement.size();
      jw->commit_checkpoint(c);
    }
    ckpt = std::move(fresh);
    data_log.clear();
    delivered_since_ckpt.clear();
    pending_discard.clear();
    return true;
  }

  /// Stream-time period between checkpoints: the tighter of the recovery
  /// and journal cadences (0 = neither wants periodic cuts, so only the
  /// initial checkpoint is taken).
  [[nodiscard]] stream::Timestamp checkpoint_period() const {
    stream::Timestamp period = 0;
    if (options.recovery.enabled && options.recovery.checkpoint_every_ms > 0) {
      period = options.recovery.checkpoint_every_ms;
    }
    if (jw && options.journal.checkpoint_every_ms > 0) {
      period = period == 0
                   ? options.journal.checkpoint_every_ms
                   : std::min(period, options.journal.checkpoint_every_ms);
    }
    return period;
  }

  void maybe_checkpoint(stream::Timestamp now) {
    const stream::Timestamp period = checkpoint_period();
    if (period <= 0) return;
    if (!has_ckpt_clock) {
      // Start the period clock at the trace's first chunk; the armed
      // initial checkpoint (empty state, seq 0) covers until then.
      ckpt_clock_ms = now;
      has_ckpt_clock = true;
      return;
    }
    if (now - ckpt_clock_ms < period) return;
    if (checkpoint()) ckpt_clock_ms = now;
  }

  /// Periodic retention-floor advance (FederationOptions::retention),
  /// between checkpoints: drain the window, flush the fleet — the full ack
  /// set advances acked_floor and prunes the data log — and deliver. No
  /// state is pulled, so it is much cheaper than a checkpoint.
  void maybe_floor(stream::Timestamp now) {
    if (options.retention.floor_every_ms <= 0) return;
    if (!has_floor_clock) {
      floor_clock_ms = now;
      has_floor_clock = true;
      return;
    }
    if (now - floor_clock_ms < options.retention.floor_every_ms) return;
    while (!pending.empty()) complete_front();
    flush_all();
    drain_deliver();
    floor_clock_ms = now;
  }

  // --- live migration ------------------------------------------------------

  void run_migrations_due(stream::Timestamp now) {
    while (next_migration < options.migrations.size() &&
           options.migrations[next_migration].at_ms <= now) {
      migrate(options.migrations[next_migration]);
      ++next_migration;
    }
  }

  // --- deterministic fault injection ---------------------------------------

  /// Installs FederationOptions::faults entries that have come due, at the
  /// same chunk-boundary cadence as scripted migrations: the plan (with
  /// fresh frame counters) replaces whatever fault the driver's channel to
  /// that worker carried. Registration traffic predates the first chunk,
  /// so even `after=0` schedules never corrupt the handshake.
  void run_faults_due(stream::Timestamp now) {
    while (next_fault < options.faults.size() &&
           options.faults[next_fault].at_ms <= now) {
      const auto& f = options.faults[next_fault];
      const std::size_t w = f.worker % workers.size();
      workers[w].channel->set_fault(
          std::make_shared<fault::LinkFault>(fault::FaultPlan::parse(f.plan)));
      dbg("fault installed on worker " + std::to_string(w) + ": " + f.plan);
      obs::Tracer::instance().instant("fault_injected", "driver", w);
      ++report.federation.faults_injected;
      ++next_fault;
    }
  }

  /// Drain -> serialize -> handoff: quiesce the source worker, pull the
  /// engine's serialized join state off it, and redeploy units + state on
  /// the destination at the current seq cut. In-flight window must be
  /// empty first — otherwise a pending chunk could still route executes to
  /// the source.
  void migrate(const FederationOptions::Migration& m) {
    const auto wit = worker_of_engine.find(m.engine);
    if (wit == worker_of_engine.end()) {
      throw std::invalid_argument{"Cosmos: migration of unknown engine " +
                                  std::to_string(m.engine.value())};
    }
    const std::size_t src = wit->second;
    const std::size_t dst = m.to_worker % workers.size();
    if (src == dst) return;

    const obs::Span span{"migrate", "driver", m.engine.value()};
    obs::Tracer::instance().instant("migration", "driver", m.engine.value());

    while (!pending.empty()) complete_front();
    flush_worker(src);
    drain_deliver();

    // A worker death inside the handshake below is unrecoverable (the
    // engine's state is mid-flight); recover() throws on this flag.
    scripted_migration_active = true;
    send(src, wire::encode_migrate_out({m.engine}));
    wire::StateHandoffMsg handed;
    std::uint64_t handed_bytes = 0;
    {
      std::unique_lock lock{mu};
      wait_for(lock, [&] { return handoffs.contains(m.engine.value()); });
      auto node = handoffs.extract(m.engine.value());
      handed = std::move(node.mapped().first);
      handed_bytes = node.mapped().second;
    }
    if (handed.engine != m.engine) {
      throw std::runtime_error{
          "Cosmos federation: state handoff for an unexpected engine"};
    }

    wire::MigrateInMsg in;
    in.engine = m.engine;
    for (const auto& [uid, unit] : sys.units_) {
      if (unit.host != m.engine) continue;
      in.units.push_back({unit.id, unit.host, unit.result_stream, unit.spec});
    }
    in.state = std::move(handed.units);
    // Resume seq ordering where the engine left off — without this the
    // destination site would reset to seq 0 and hold back every execute.
    const auto sit = next_exec_seq.find(m.engine.value());
    in.exec_seq = sit == next_exec_seq.end() ? 0 : sit->second;
    send(dst, wire::encode_migrate_in(in));
    {
      std::unique_lock lock{mu};
      wait_for(lock,
               [&] { return migrate_acks.contains(m.engine.value()); });
      migrate_acks.erase(m.engine.value());
    }
    scripted_migration_active = false;

    wit->second = dst;
    ++report.federation.migrations;
    report.federation.state_bytes_migrated += handed_bytes;
  }

  /// Folds every received kStatsSample into the report timeline (ordered
  /// by (now_ms, worker)) and hands worker spans to the trace session,
  /// re-homed under pid = worker index + 1.
  void harvest_samples() {
    std::vector<wire::StatsSampleMsg> batch;
    {
      std::lock_guard lock{mu};
      batch.swap(samples_inbox);
    }
    for (auto& s : batch) {
      WorkerSample sample;
      sample.worker = s.worker_index;
      sample.now_ms = s.now_ms;
      sample.metrics = std::move(s.metrics);
      report.federation.samples.push_back(std::move(sample));
      if (!s.spans.empty()) {
        const std::uint32_t pid = s.worker_index + 1;
        for (auto& span : s.spans) span.pid = pid;
        trace.add_process_name(pid,
                               "worker " + std::to_string(s.worker_index));
        trace.add_foreign(std::move(s.spans));
      }
    }
    std::stable_sort(report.federation.samples.begin(),
                     report.federation.samples.end(),
                     [](const WorkerSample& a, const WorkerSample& b) {
                       return a.now_ms != b.now_ms ? a.now_ms < b.now_ms
                                                   : a.worker < b.worker;
                     });
  }

  // --- durable journal plumbing --------------------------------------------

  /// The run-wide options snapshot journaled in every segment preamble:
  /// everything that shapes chunk cutting and routing, so a resumed run
  /// re-cuts and re-routes exactly as the crashed one did.
  [[nodiscard]] journal::Meta journal_meta() const {
    journal::Meta m;
    m.batch_size = options.batch_size;
    m.tick_ms = options.tick_ms;
    m.worker_shards = static_cast<std::uint32_t>(
        options.worker_shards == 0 ? 1 : options.worker_shards);
    m.peer_links = options.peer_links;
    m.endpoints = options.workers;
    return m;
  }

  [[nodiscard]] journal::Writer::Options journal_options() const {
    journal::Writer::Options o;
    switch (options.journal.fsync) {
      case FederationOptions::Journal::Fsync::kNever:
        o.fsync = journal::Fsync::kNever;
        break;
      case FederationOptions::Journal::Fsync::kCommit:
        o.fsync = journal::Fsync::kCommit;
        break;
      case FederationOptions::Journal::Fsync::kChunk:
        o.fsync = journal::Fsync::kChunk;
        break;
      case FederationOptions::Journal::Fsync::kEvery:
        o.fsync = journal::Fsync::kEvery;
        break;
    }
    return o;
  }

  // --- end of session ------------------------------------------------------

  /// Worker p1 matching shares + the driver's own p2 delivery share = the
  /// totals the in-process broker would have accounted. Also sums the
  /// fleet's peer-link traffic counters. A worker respawned late in the
  /// run reports only its post-respawn counters (documented under-count).
  void collect_traffic() {
    {
      std::lock_guard lock{mu};
      traffic_reports.clear();
      collecting_traffic = true;
    }
    for (std::size_t w = 0; w < workers.size(); ++w) {
      send_data(w, wire::encode_traffic_request());
    }
    pubsub::TrafficStats merged;
    std::uint64_t peer_frames = 0;
    std::uint64_t peer_bytes = 0;
    {
      std::unique_lock lock{mu};
      wait_for(
          lock, [&] { return traffic_reports.size() >= workers.size(); },
          /*on_stall=*/[&] {
            // Re-request from whoever has not reported (request or report
            // lost to a drop fault); reports insert_or_assign-dedup.
            std::set<std::size_t> missing;
            {
              std::lock_guard g{mu};
              for (std::size_t w = 0; w < workers.size(); ++w) {
                if (!traffic_reports.contains(w)) missing.insert(w);
              }
            }
            for (const auto w : missing) {
              send_data(w, wire::encode_traffic_request());
            }
          });
      for (const auto& [w, t] : traffic_reports) {
        merged.merge(t.traffic);
        peer_frames += t.peer_frames;
        peer_bytes += t.peer_bytes;
      }
      collecting_traffic = false;
    }
    merged.merge(sys.broker_.traffic());
    report.federation.matched_traffic = std::move(merged);
    report.federation.peer_frames = peer_frames;
    report.federation.peer_bytes = peer_bytes;
  }

  void shutdown() {
    {
      std::lock_guard lock{mu};
      expect_close = true;
    }
    for (std::size_t w = 0; w < workers.size(); ++w) {
      try {
        send(w, wire::encode_bye());
      } catch (const std::exception&) {
        // Channel already dead; its fault was or will be reported.
      }
      workers[w].channel->close();
    }
    for (std::size_t i = 0; i < workers.size(); ++i) {
      const auto& w = workers[i];
      WireLinkStats link;
      link.endpoint = w.endpoint;
      link.bytes_sent = retired[i].bytes_sent + w.channel->bytes_sent();
      link.bytes_received =
          retired[i].bytes_received + w.channel->bytes_received();
      link.frames_sent = retired[i].frames_sent + w.channel->frames_sent();
      link.frames_received =
          retired[i].frames_received + w.channel->frames_received();
      link.frames_dropped =
          retired[i].frames_dropped + w.channel->frames_dropped();
      link.error = w.channel->send_error();
      report.federation.links.push_back(std::move(link));
    }
  }

  RunReport run(const std::vector<runtime::TraceEvent>& events) {
    connect_all();
    if (resume_state != nullptr) {
      resume_replicate();
    } else {
      if (!options.journal.dir.empty()) {
        jw = journal::Writer::create(options.journal.dir, journal_meta(),
                                     journal_options());
      }
      replicate();
    }

    const std::size_t results_before = sys.results_delivered_;
    const std::size_t window =
        options.max_inflight_chunks == 0 ? 1 : options.max_inflight_chunks;
    const TimePoint ingest_start = Clock::now();
    const double driver_cpu_start = thread_cpu_seconds();

    runtime::Driver driver{
        {options.batch_size, options.tick_ms},
        [&](runtime::Chunk&& chunk) {
          run_migrations_due(chunk.first_ts);
          run_faults_due(chunk.first_ts);
          maybe_checkpoint(chunk.first_ts);
          maybe_floor(chunk.first_ts);
          dispatch(std::move(chunk));
          if (options.on_chunk) options.on_chunk(chunk_index);
          ++chunk_index;
          while (pending.size() >= window) complete_front();
          drain_deliver();  // keep the p2 inbox bounded in practice
        }};
    // A resumed run re-ingests the trace from the journal's resume cut:
    // chunk cutting is prefix-deterministic, so feeding events[skip:] cuts
    // exactly the chunks the crashed driver had not yet routed.
    const std::size_t skip =
        resume_state == nullptr
            ? 0
            : static_cast<std::size_t>(resume_state->resume_events);
    if (skip > events.size()) {
      throw std::invalid_argument{
          "Cosmos: resume journal consumed " + std::to_string(skip) +
          " trace events but the given trace holds only " +
          std::to_string(events.size())};
    }
    for (std::size_t k = skip; k < events.size(); ++k) {
      driver.push(events[k].stream, events[k].tuple);
    }
    driver.finish();

    while (!pending.empty()) complete_front();
    // Flush acks follow each worker's last results on its FIFO channel, so
    // after this barrier the inbox holds every result of the run.
    flush_all();
    drain_deliver();
    report.ingest_seconds = seconds_since(ingest_start);
    report.driver_cpu_seconds = thread_cpu_seconds() - driver_cpu_start;

    collect_traffic();
    // After the final flush barrier every worker's closing sample (sent
    // ahead of its flush ack on the FIFO channel) is already in the inbox.
    harvest_samples();
    shutdown();

    report.tuples = driver.tuples();
    report.results_delivered = sys.results_delivered_ - results_before;
    report.federation.workers = workers.size();
    report.federation.driver_execute_bytes = driver_execute_bytes;
    if (jw) {
      report.federation.journal_bytes = jw->bytes_written();
      report.federation.journal_fsyncs = jw->fsyncs();
    }
    report.federation.data_log_appended = data_log_appended;
    report.federation.data_log_peak_entries = data_log_peak;
    if (resume_state != nullptr) {
      report.federation.journal_rollbacks = resume_state->segments_rolled_back;
      report.federation.journal_torn_tail = resume_state->torn_tail;
      report.federation.journal_records_dropped =
          resume_state->records_dropped;
      report.federation.resume_skipped_events = skip;
    }
    report.e2e_latency = e2e->snapshot();
    report.metrics = reg.snapshot();
    return std::move(report);
  }
};

Cosmos::RunReport Cosmos::run_federated(
    const std::vector<runtime::TraceEvent>& events,
    const FederationOptions& options) {
  if (options.workers.empty()) {
    throw std::invalid_argument{"Cosmos: run_federated needs >= 1 worker"};
  }
  Fed fed{*this, options};
  return fed.run(events);
}

Cosmos::RunReport Cosmos::resume_federated(
    const std::vector<runtime::TraceEvent>& events,
    const FederationOptions& options) {
  if (options.journal.dir.empty()) {
    throw std::invalid_argument{
        "Cosmos: resume_federated needs options.journal.dir"};
  }
  const journal::RecoveredRun rec = journal::recover(options.journal.dir);

  // The journaled meta overrides every option that shapes chunk cutting and
  // routing: the resumed run must re-cut and re-route exactly as the
  // crashed one did. Scripted migrations and faults do not re-run — the
  // journal already reflects whatever they changed before the cut (a moved
  // engine's placement rides in its journaled state record).
  FederationOptions effective = options;
  effective.workers = rec.meta.endpoints;
  effective.batch_size = rec.meta.batch_size;
  effective.tick_ms = rec.meta.tick_ms;
  effective.worker_shards = rec.meta.worker_shards;
  effective.peer_links = rec.meta.peer_links;
  effective.migrations.clear();
  effective.faults.clear();
  if (effective.workers.empty()) {
    throw std::invalid_argument{
        "Cosmos: journal meta names no worker endpoints"};
  }

  Fed fed{*this, effective};
  fed.resume_state = &rec;
  // The crashed driver's workers died with it (driver-death EOF shuts the
  // daemons down), so resume spawns its own fresh fleet on the journaled
  // endpoints before dialing them.
  const std::string noded = effective.recovery.noded_path.empty()
                                ? node::default_noded_path()
                                : effective.recovery.noded_path;
  fed.owned_fleet.reserve(effective.workers.size());
  for (const auto& ep : effective.workers) {
    fed.owned_fleet.push_back(node::spawn_noded(noded, ep));
  }
  return fed.run(events);
}

}  // namespace cosmos::middleware
