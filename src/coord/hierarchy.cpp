#include "coord/hierarchy.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "coord/diffusion.h"

namespace cosmos::coord {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

/// A (possibly coarse) group of queries flowing through the hierarchy.
/// `parts` holds the one-level-finer constituents (empty for single
/// queries); `origin` is the tree node whose summary created the record
/// (the paper's vertex tag), the current processor's L0 node for queries.
struct HierarchicalDistributor::Record {
  graph::QueryVertex payload;
  std::vector<Record*> parts;
  std::uint32_t origin = UINT32_MAX;
};

HierarchicalDistributor::HierarchicalDistributor(
    const net::Deployment& deployment, const CoordinatorTree& tree,
    const query::SubstreamSpace& space, HierarchyParams params,
    std::uint64_t seed)
    : deployment_(&deployment),
      tree_(&tree),
      space_(&space),
      model_(space),
      params_(params),
      rng_(seed) {
  aggregates_.resize(tree.size());
  for (auto& a : aggregates_) a.interest = BitVector{space.size()};
}

HierarchicalDistributor::~HierarchicalDistributor() = default;
HierarchicalDistributor::HierarchicalDistributor(
    HierarchicalDistributor&&) noexcept = default;
HierarchicalDistributor& HierarchicalDistributor::operator=(
    HierarchicalDistributor&&) noexcept = default;

HierarchicalDistributor::Record* HierarchicalDistributor::make_query_record(
    const query::InterestProfile& p) {
  auto rec = std::make_unique<Record>();
  rec->payload = graph::to_query_vertex(p);
  Record* out = rec.get();
  arena_.push_back(std::move(rec));
  return out;
}

void HierarchicalDistributor::collect_queries(const Record* r,
                                              std::vector<QueryId>& out) const {
  if (r->parts.empty()) {
    out.insert(out.end(), r->payload.queries.begin(), r->payload.queries.end());
    return;
  }
  for (const Record* part : r->parts) collect_queries(part, out);
}

int HierarchicalDistributor::child_covering(std::uint32_t tree_node,
                                            std::uint32_t origin) const {
  if (origin == UINT32_MAX) return -1;
  std::uint32_t cur = origin;
  while (cur != UINT32_MAX && cur != tree_node) {
    const std::uint32_t parent = tree_->node(cur).parent;
    if (parent == tree_node) {
      const auto& children = tree_->node(tree_node).children;
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (children[i] == cur) return static_cast<int>(i);
      }
      return -1;
    }
    cur = parent;
  }
  return -1;
}

int HierarchicalDistributor::child_covering_node(std::uint32_t tree_node,
                                                 NodeId n) const {
  const std::uint32_t leaf = tree_->find_leaf(n);
  if (leaf == UINT32_MAX) return -1;
  if (leaf == tree_node) return -1;  // the node itself, not a child
  return child_covering(tree_node, leaf);
}

graph::NetworkGraph HierarchicalDistributor::make_network_graph(
    std::uint32_t tree_node, const graph::QueryGraph& qg) const {
  graph::NetworkGraph ng;
  const auto& tn = tree_->node(tree_node);
  // Children first: child index == network vertex index == clu value.
  for (const std::uint32_t child : tn.children) {
    const auto& cn = tree_->node(child);
    ng.add_vertex({"child@" + std::to_string(cn.site.value()), cn.capability,
                   /*assignable=*/true, cn.site});
  }
  // Anchors for n-vertices not covered by any child.
  for (graph::QueryGraph::VertexIndex i = 0; i < qg.size(); ++i) {
    const auto& v = qg.vertex(i);
    if (!v.is_n() || v.clu >= 0) continue;
    if (ng.find_by_node(v.node) != graph::NetworkGraph::kNone) continue;
    ng.add_vertex({"anchor@" + std::to_string(v.node.value()), 0.0,
                   /*assignable=*/false, v.node});
  }
  ng.finalize_vertices();
  const auto& lat = deployment_->latencies;
  for (graph::NetworkGraph::VertexIndex a = 0; a < ng.size(); ++a) {
    for (graph::NetworkGraph::VertexIndex b = a + 1; b < ng.size(); ++b) {
      ng.set_distance(a, b, lat.latency(ng.vertex(a).node, ng.vertex(b).node));
    }
  }
  return ng;
}

HierarchicalDistributor::Record* HierarchicalDistributor::build_summary(
    std::uint32_t tree_node, std::vector<Record*> fine_records,
    std::vector<Record*>* out_records) {
  // Summarize `fine_records` into at most vmax coarse records tagged with
  // this coordinator. Small inputs pass through unchanged.
  if (fine_records.size() <= params_.vmax) {
    *out_records = std::move(fine_records);
    return nullptr;
  }
  std::vector<graph::QueryVertex> items;
  items.reserve(fine_records.size());
  for (const Record* r : fine_records) items.push_back(r->payload);

  const std::function<int(NodeId)> clu_of = [this, tree_node](NodeId n) {
    return child_covering_node(tree_node, n);
  };
  graph::QueryGraph qg =
      graph::build_query_graph(items, model_, params_.build, &clu_of, rng_);
  const auto coarse = graph::coarsen(qg, params_.vmax, &model_, rng_);

  out_records->clear();
  for (graph::QueryGraph::VertexIndex c = 0; c < coarse.graph.size(); ++c) {
    const auto& cv = coarse.graph.vertex(c);
    if (cv.queries.empty()) continue;  // pure n-vertex, not a record
    auto rec = std::make_unique<Record>();
    rec->payload = cv;
    rec->payload.kind = graph::QVertexKind::kQuery;  // records carry no pin
    rec->payload.node = NodeId::invalid();
    rec->payload.clu = -1;
    rec->origin = tree_node;
    for (const auto fine_idx : coarse.members[c]) {
      if (fine_idx < fine_records.size()) {  // skip merged n-vertices
        rec->parts.push_back(fine_records[fine_idx]);
      }
    }
    out_records->push_back(rec.get());
    arena_.push_back(std::move(rec));
  }
  return nullptr;
}

DistributionTiming HierarchicalDistributor::distribute(
    std::span<const query::InterestProfile> profiles) {
  arena_.clear();
  placement_.clear();
  profiles_.clear();
  for (const auto& p : profiles) profiles_.emplace(p.query, p);

  DistributionTiming timing;
  std::vector<double> up_seconds(tree_->size(), 0.0);

  // Query records grouped by the leaf cluster of their proxy (queries enter
  // the system at their proxies, Section 3.4).
  std::vector<std::vector<Record*>> records_at(tree_->size());
  for (const auto& p : profiles) {
    const std::uint32_t leaf = tree_->leaf_of(p.proxy);
    records_at[leaf].push_back(make_query_record(p));
  }

  // Bottom-up summaries (run conceptually in parallel per subtree).
  std::vector<std::vector<Record*>> summary_of(tree_->size());
  const std::function<void(std::uint32_t)> summarize =
      [&](std::uint32_t tn_idx) {
        const auto& tn = tree_->node(tn_idx);
        std::vector<Record*> gathered = std::move(records_at[tn_idx]);
        double child_path = 0.0;
        for (const std::uint32_t child : tn.children) {
          summarize(child);
          child_path = std::max(child_path, up_seconds[child]);
          gathered.insert(gathered.end(), summary_of[child].begin(),
                          summary_of[child].end());
        }
        const auto start = Clock::now();
        build_summary(tn_idx, std::move(gathered), &summary_of[tn_idx]);
        const double own = seconds_since(start);
        timing.total_seconds += own;
        up_seconds[tn_idx] = child_path + own;
      };

  const std::uint32_t root = tree_->root();
  std::vector<Record*> root_items;
  {
    double up_path = 0.0;
    for (const std::uint32_t child : tree_->node(root).children) {
      summarize(child);
      up_path = std::max(up_path, up_seconds[child]);
      root_items.insert(root_items.end(), summary_of[child].begin(),
                        summary_of[child].end());
    }
    timing.response_seconds = up_path;
  }

  distribute_at(root, std::move(root_items), timing,
                timing.response_seconds);
  rebuild_aggregates();
  return timing;
}

void HierarchicalDistributor::distribute_at(std::uint32_t tree_node,
                                            std::vector<Record*> items,
                                            DistributionTiming& timing,
                                            double path_seconds) {
  const auto& tn = tree_->node(tree_node);
  if (tn.level == 0) {
    place_records(tree_node, items);
    timing.response_seconds = std::max(timing.response_seconds, path_seconds);
    return;
  }
  if (items.empty()) return;

  const auto start = Clock::now();

  std::vector<graph::QueryVertex> payloads;
  payloads.reserve(items.size());
  for (const Record* r : items) payloads.push_back(r->payload);
  const std::function<int(NodeId)> clu_of = [this, tree_node](NodeId n) {
    return child_covering_node(tree_node, n);
  };
  graph::QueryGraph qg = graph::build_query_graph(payloads, model_,
                                                  params_.build, &clu_of, rng_);
  graph::NetworkGraph ng = make_network_graph(tree_node, qg);

  // Map items to children: directly, or through one more coarsening level
  // when the working graph is large (the mapping runs on the coarse graph
  // and the assignment is pushed back to the items, Section 3.5).
  std::vector<graph::NetworkGraph::VertexIndex> item_target(items.size());
  if (items.size() > params_.vmax) {
    const auto coarse = graph::coarsen(qg, params_.vmax, &model_, rng_);
    const auto result =
        graph::map_query_graph(coarse.graph, ng, params_.mapping, rng_);
    for (std::size_t i = 0; i < items.size(); ++i) {
      item_target[i] = result.assignment[coarse.coarse_of[i]];
    }
  } else {
    const auto result = graph::map_query_graph(qg, ng, params_.mapping, rng_);
    for (std::size_t i = 0; i < items.size(); ++i) {
      item_target[i] = result.assignment[i];
    }
  }

  const double own = seconds_since(start);
  timing.total_seconds += own;

  // Uncoarsen one level and recurse per child.
  const std::size_t child_count = tn.children.size();
  std::vector<std::vector<Record*>> child_items(child_count);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto target = item_target[i];
    if (target >= child_count) {
      throw std::logic_error{"distribute_at: item mapped to anchor"};
    }
    if (items[i]->parts.empty()) {
      child_items[target].push_back(items[i]);
    } else {
      child_items[target].insert(child_items[target].end(),
                                 items[i]->parts.begin(),
                                 items[i]->parts.end());
    }
  }
  for (std::size_t c = 0; c < child_count; ++c) {
    distribute_at(tn.children[c], std::move(child_items[c]), timing,
                  path_seconds + own);
  }
}

void HierarchicalDistributor::place_records(std::uint32_t level0_node,
                                            const std::vector<Record*>& items) {
  const NodeId site = tree_->node(level0_node).site;
  std::vector<QueryId> queries;
  for (const Record* r : items) collect_queries(r, queries);
  for (const QueryId q : queries) placement_[q] = site;
}

void HierarchicalDistributor::place_at(
    const std::vector<std::pair<QueryId, NodeId>>& placement,
    std::span<const query::InterestProfile> profiles) {
  profiles_.clear();
  placement_.clear();
  for (const auto& p : profiles) profiles_.emplace(p.query, p);
  for (const auto& [q, node] : placement) {
    if (!profiles_.contains(q)) {
      throw std::invalid_argument{"place_at: unknown query"};
    }
    placement_[q] = node;
  }
  rebuild_aggregates();
}

void HierarchicalDistributor::rebuild_aggregates() {
  for (auto& a : aggregates_) {
    a.interest = BitVector{space_->size()};
    a.load = 0.0;
  }
  for (const auto& [q, node] : placement_) {
    const auto& p = profiles_.at(q);
    std::uint32_t cur = tree_->leaf_of(node);
    while (cur != UINT32_MAX) {
      aggregates_[cur].interest.merge(p.interest);
      aggregates_[cur].load += p.load;
      if (cur == tree_->root()) break;
      cur = tree_->node(cur).parent;
    }
  }
}

NodeId HierarchicalDistributor::insert_query(
    const query::InterestProfile& profile) {
  const auto sources = profile.rate_by_source(*space_);
  const auto& lat = deployment_->latencies;

  std::uint32_t cur = tree_->root();
  while (tree_->node(cur).level > 0) {
    const auto& tn = tree_->node(cur);
    const auto& children = tn.children;
    // Aggregate overlap with each child subtree (the new vertex's q-q edge
    // weights after coarsening to child granularity).
    std::vector<double> overlap(children.size());
    std::vector<double> load(children.size());
    double total_load = profile.load;
    double total_cap = 0.0;
    for (std::size_t j = 0; j < children.size(); ++j) {
      overlap[j] = profile.interest.weighted_intersection(
          aggregates_[children[j]].interest, space_->rates());
      load[j] = aggregates_[children[j]].load;
      total_load += load[j];
      total_cap += tree_->node(children[j]).capability;
    }

    std::size_t best = SIZE_MAX;
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_violating = SIZE_MAX;
    double best_violation = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < children.size(); ++i) {
      const NodeId site_i = tree_->node(children[i]).site;
      double delta = 0.0;
      for (const auto& [src, rate] : sources) {
        delta += rate * lat.latency(site_i, src);
      }
      if (profile.proxy.valid() && profile.output_rate > 0) {
        delta += profile.output_rate * lat.latency(site_i, profile.proxy);
      }
      for (std::size_t j = 0; j < children.size(); ++j) {
        if (j != i && overlap[j] > 0) {
          delta += overlap[j] *
                   lat.latency(site_i, tree_->node(children[j]).site);
        }
      }
      const double cap = (1.0 + params_.mapping.alpha) *
                         tree_->node(children[i]).capability * total_load /
                         total_cap;
      if (load[i] + profile.load <= cap) {
        if (delta < best_cost) {
          best_cost = delta;
          best = i;
        }
      } else {
        const double violation = load[i] + profile.load - cap;
        if (violation < best_violation) {
          best_violation = violation;
          best_violating = i;
        }
      }
    }
    cur = children[best != SIZE_MAX ? best : best_violating];
  }

  const NodeId site = tree_->node(cur).site;
  profiles_[profile.query] = profile;
  placement_[profile.query] = site;
  // Update aggregates along the leaf->root path.
  std::uint32_t up = cur;
  while (up != UINT32_MAX) {
    aggregates_[up].interest.merge(profile.interest);
    aggregates_[up].load += profile.load;
    if (up == tree_->root()) break;
    up = tree_->node(up).parent;
  }
  return site;
}

void HierarchicalDistributor::remove_query(QueryId q) {
  const auto it = placement_.find(q);
  if (it == placement_.end()) return;
  const auto& p = profiles_.at(q);
  std::uint32_t up = tree_->leaf_of(it->second);
  // Loads shrink exactly; interest unions stay conservative (a superset)
  // until the next rebuild, matching the paper's periodic statistics flow.
  while (up != UINT32_MAX) {
    aggregates_[up].load = std::max(0.0, aggregates_[up].load - p.load);
    if (up == tree_->root()) break;
    up = tree_->node(up).parent;
  }
  placement_.erase(it);
  profiles_.erase(q);
}

void HierarchicalDistributor::refresh_statistics() {
  for (auto& [q, p] : profiles_) query::refresh_load(p, *space_);
  rebuild_aggregates();
}

std::vector<double> HierarchicalDistributor::processor_loads() const {
  std::vector<double> loads(deployment_->processors.size(), 0.0);
  std::unordered_map<NodeId, std::size_t> index;
  for (std::size_t i = 0; i < deployment_->processors.size(); ++i) {
    index.emplace(deployment_->processors[i], i);
  }
  for (const auto& [q, node] : placement_) {
    loads[index.at(node)] += profiles_.at(q).load;
  }
  return loads;
}

AdaptationReport HierarchicalDistributor::adapt() {
  const auto before = placement_;
  arena_.clear();

  // Rebuild summaries bottom-up over the *current* placement.
  std::vector<std::vector<Record*>> records_at(tree_->size());
  for (const auto& [q, node] : placement_) {
    Record* rec = make_query_record(profiles_.at(q));
    rec->origin = tree_->leaf_of(node);
    records_at[rec->origin].push_back(rec);
  }
  std::vector<std::vector<Record*>> summary_of(tree_->size());
  const std::function<void(std::uint32_t)> summarize =
      [&](std::uint32_t tn_idx) {
        const auto& tn = tree_->node(tn_idx);
        std::vector<Record*> gathered = std::move(records_at[tn_idx]);
        for (const std::uint32_t child : tn.children) {
          summarize(child);
          gathered.insert(gathered.end(), summary_of[child].begin(),
                          summary_of[child].end());
        }
        build_summary(tn_idx, std::move(gathered), &summary_of[tn_idx]);
      };

  const std::uint32_t root = tree_->root();
  std::vector<Record*> root_items;
  for (const std::uint32_t child : tree_->node(root).children) {
    summarize(child);
    root_items.insert(root_items.end(), summary_of[child].begin(),
                      summary_of[child].end());
  }

  adapt_at(root, std::move(root_items));
  rebuild_aggregates();

  AdaptationReport report;
  for (const auto& [q, node] : placement_) {
    const auto it = before.find(q);
    if (it != before.end() && it->second != node) {
      ++report.migrated_queries;
      report.migrated_state += profiles_.at(q).state_size;
    }
  }
  return report;
}

void HierarchicalDistributor::adapt_at(std::uint32_t tree_node,
                                       std::vector<Record*> items) {
  const auto& tn = tree_->node(tree_node);
  if (tn.level == 0) {
    place_records(tree_node, items);
    return;
  }
  if (items.empty()) {
    // Still recurse so emptied subtrees clear out their members.
    for (const std::uint32_t child : tn.children) adapt_at(child, {});
    return;
  }

  std::vector<graph::QueryVertex> payloads;
  payloads.reserve(items.size());
  for (const Record* r : items) payloads.push_back(r->payload);
  const std::function<int(NodeId)> clu_of = [this, tree_node](NodeId n) {
    return child_covering_node(tree_node, n);
  };
  graph::QueryGraph qg = graph::build_query_graph(payloads, model_,
                                                  params_.build, &clu_of, rng_);
  graph::NetworkGraph ng = make_network_graph(tree_node, qg);
  const std::size_t child_count = tn.children.size();

  const std::vector<double> caps =
      graph::load_caps(qg, ng, params_.mapping.alpha);
  std::vector<double> load(ng.size(), 0.0);
  std::vector<graph::NetworkGraph::VertexIndex> assign(qg.size(),
                                                       graph::NetworkGraph::kNone);
  std::vector<char> dirty(items.size(), 0);
  std::vector<int> original(items.size(), -1);

  // Pin n-vertices; items keep their current child or are greedily placed
  // when they migrated in from another subtree.
  for (graph::QueryGraph::VertexIndex i = 0; i < qg.size(); ++i) {
    if (qg.vertex(i).is_n()) {
      assign[i] = graph::pinned_target(qg.vertex(i), ng);
    }
  }
  std::vector<std::size_t> incoming;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const int cc = child_covering(tree_node, items[i]->origin);
    if (cc >= 0) {
      assign[i] = static_cast<graph::NetworkGraph::VertexIndex>(cc);
      original[i] = cc;
      load[cc] += items[i]->payload.weight;
    } else {
      incoming.push_back(i);
    }
  }
  for (const std::size_t i : incoming) {
    const auto k = graph::place_one(qg, ng, assign,
                                    static_cast<graph::QueryGraph::VertexIndex>(i),
                                    load, caps);
    assign[i] = k;
    load[k] += items[i]->payload.weight;
    dirty[i] = 1;
  }

  // ---- Phase 1: load re-balancing via diffusion (Algorithm 3) ----
  {
    const double total_cap = ng.total_capability();
    const double total_load = qg.total_query_weight();
    std::vector<double> imbalance(child_count, 0.0);
    for (std::size_t c = 0; c < child_count; ++c) {
      const double target =
          total_cap > 0 ? ng.vertex(static_cast<graph::NetworkGraph::VertexIndex>(c))
                                  .capability *
                              total_load / total_cap
                        : 0.0;
      imbalance[c] = load[c] - target;
    }
    std::vector<DiffusionEdge> edges;
    for (std::size_t a = 0; a < child_count; ++a) {
      for (std::size_t b = a + 1; b < child_count; ++b) {
        edges.push_back({a, b, 1.0});
      }
    }
    auto flows = solve_diffusion(child_count, edges, imbalance);
    rng_.shuffle(flows);

    for (auto& flow : flows) {
      double remaining = flow.amount;
      while (remaining > 0) {
        // Candidate vertices on the overloaded side, ranked by benefit.
        double max_benefit = -std::numeric_limits<double>::infinity();
        std::vector<std::size_t> on_from;
        std::vector<double> benefit_of(items.size(), 0.0);
        for (std::size_t i = 0; i < items.size(); ++i) {
          if (assign[i] != flow.from) continue;
          const double b = graph::remap_gain(
              qg, ng, assign, static_cast<graph::QueryGraph::VertexIndex>(i),
              static_cast<graph::NetworkGraph::VertexIndex>(flow.to));
          on_from.push_back(i);
          benefit_of[i] = b;
          max_benefit = std::max(max_benefit, b);
        }
        if (on_from.empty()) break;
        const double window =
            std::abs(max_benefit) * params_.rebalance_x_percent / 100.0;
        std::vector<std::size_t> V;
        for (const std::size_t i : on_from) {
          if (benefit_of[i] >= max_benefit - window) V.push_back(i);
        }
        std::vector<std::size_t> Vd;
        for (const std::size_t i : V) {
          if (dirty[i]) Vd.push_back(i);
        }
        if (Vd.empty()) Vd = V;
        // Densest vertex whose weight the remaining flow mostly covers.
        std::size_t pick = SIZE_MAX;
        double best_density = -1.0;
        for (const std::size_t i : Vd) {
          const double w = items[i]->payload.weight;
          if (w <= 0 || remaining < params_.diffusion_fill * w) continue;
          const double density =
              w / std::max(1.0, items[i]->payload.state_size);
          if (density > best_density) {
            best_density = density;
            pick = i;
          }
        }
        if (pick == SIZE_MAX) break;
        const double w = items[pick]->payload.weight;
        load[flow.from] -= w;
        load[flow.to] += w;
        assign[pick] = static_cast<graph::NetworkGraph::VertexIndex>(flow.to);
        dirty[pick] = 1;
        remaining -= w;
      }
    }
  }

  // ---- Phase 2: distribution refinement ----
  {
    std::vector<std::size_t> order(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) order[i] = i;
    rng_.shuffle(order);
    for (const std::size_t i : order) {
      const double w = items[i]->payload.weight;
      const auto vi = static_cast<graph::QueryGraph::VertexIndex>(i);
      // (1) Move a displaced vertex home when that keeps load balance and
      //     does not worsen the WEC (undoes profitless migrations).
      if (original[i] >= 0 &&
          assign[i] != static_cast<std::uint32_t>(original[i])) {
        const auto home =
            static_cast<graph::NetworkGraph::VertexIndex>(original[i]);
        if (load[home] + w <= caps[home] &&
            graph::remap_gain(qg, ng, assign, vi, home) >= 0) {
          load[assign[i]] -= w;
          load[home] += w;
          assign[i] = home;
          dirty[i] = 0;
          continue;
        }
      }
      // (2) Move to a child that strictly reduces the WEC within load.
      graph::NetworkGraph::VertexIndex best = graph::NetworkGraph::kNone;
      double best_gain = 0.0;
      for (std::size_t c = 0; c < child_count; ++c) {
        const auto k = static_cast<graph::NetworkGraph::VertexIndex>(c);
        if (k == assign[i] || load[k] + w > caps[k]) continue;
        const double gain = graph::remap_gain(qg, ng, assign, vi, k);
        if (gain > best_gain) {
          best_gain = gain;
          best = k;
        }
      }
      if (best != graph::NetworkGraph::kNone) {
        load[assign[i]] -= w;
        load[best] += w;
        assign[i] = best;
        dirty[i] = 1;
      }
    }
  }

  // Recurse with one-level-finer items.
  std::vector<std::vector<Record*>> child_items(child_count);
  for (std::size_t i = 0; i < items.size(); ++i) {
    auto& bucket = child_items[assign[i]];
    if (items[i]->parts.empty()) {
      bucket.push_back(items[i]);
    } else {
      bucket.insert(bucket.end(), items[i]->parts.begin(),
                    items[i]->parts.end());
    }
  }
  for (std::size_t c = 0; c < child_count; ++c) {
    adapt_at(tn.children[c], std::move(child_items[c]));
  }
}

}  // namespace cosmos::coord
