#include "stream/engine.h"

#include <gtest/gtest.h>

#include "runtime/tuple_batch.h"

namespace cosmos::stream {
namespace {

Schema one_field() { return Schema{{{"v", ValueType::kInt}}}; }

TEST(Engine, RegisterAndSchema) {
  Engine e;
  e.register_stream("S", one_field());
  EXPECT_TRUE(e.has_stream("S"));
  EXPECT_FALSE(e.has_stream("T"));
  EXPECT_EQ(e.schema("S").size(), 1u);
  EXPECT_THROW(e.schema("T"), std::out_of_range);
  EXPECT_THROW(e.register_stream("S", one_field()), std::invalid_argument);
}

TEST(Engine, PublishReachesAllTaps) {
  Engine e;
  e.register_stream("S", one_field());
  int a = 0, b = 0;
  e.attach("S", [&](const Tuple&) { ++a; });
  e.attach("S", [&](const Tuple&) { ++b; });
  e.publish("S", Tuple{1, {Value{1}}});
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(e.published_count("S"), 1u);
}

TEST(Engine, DetachStopsDelivery) {
  Engine e;
  e.register_stream("S", one_field());
  int a = 0;
  const auto tap = e.attach("S", [&](const Tuple&) { ++a; });
  e.publish("S", Tuple{1, {Value{1}}});
  e.detach("S", tap);
  e.publish("S", Tuple{2, {Value{1}}});
  EXPECT_EQ(a, 1);
}

TEST(Engine, RejectsOutOfOrderTuples) {
  Engine e;
  e.register_stream("S", one_field());
  e.publish("S", Tuple{10, {Value{1}}});
  e.publish("S", Tuple{10, {Value{2}}});  // equal is fine
  EXPECT_THROW(e.publish("S", Tuple{9, {Value{3}}}), std::invalid_argument);
}

TEST(Engine, OrderingIsPerStream) {
  // Equal — or even regressing — timestamps across *different* streams must
  // not throw: each stream carries its own ordering constraint.
  Engine e;
  e.register_stream("S", one_field());
  e.register_stream("T", one_field());
  e.publish("S", Tuple{10, {Value{1}}});
  EXPECT_NO_THROW(e.publish("T", Tuple{10, {Value{2}}}));  // equal ts, other stream
  EXPECT_NO_THROW(e.publish("T", Tuple{10, {Value{3}}}));
  EXPECT_NO_THROW(e.publish("S", Tuple{10, {Value{4}}}));
  EXPECT_NO_THROW(e.publish("T", Tuple{12, {Value{5}}}));
  EXPECT_NO_THROW(e.publish("S", Tuple{11, {Value{6}}}));  // < T's 12: fine
}

TEST(Engine, OutOfOrderErrorNamesStreamAndBothTimestamps) {
  Engine e;
  e.register_stream("Station7", one_field());
  e.publish("Station7", Tuple{42, {Value{1}}});
  try {
    e.publish("Station7", Tuple{17, {Value{2}}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& ex) {
    const std::string msg = ex.what();
    EXPECT_NE(msg.find("Station7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("17"), std::string::npos) << msg;
    EXPECT_NE(msg.find("42"), std::string::npos) << msg;
  }
}

TEST(Engine, PublishBatchMatchesScalarPublish) {
  Engine scalar, batched;
  for (auto* e : {&scalar, &batched}) e->register_stream("S", one_field());
  std::vector<std::int64_t> scalar_seen, batch_seen;
  scalar.attach("S", [&](const Tuple& t) {
    scalar_seen.push_back(t.values.at(0).as_int());
  });
  batched.attach("S", [&](const Tuple& t) {
    batch_seen.push_back(t.values.at(0).as_int());
  });
  runtime::TupleBatch batch{"S"};
  for (std::int64_t i = 0; i < 10; ++i) {
    const Tuple t{i, {Value{i}}};
    scalar.publish("S", t);
    batch.push_back(t);
  }
  batched.publish_batch("S", batch);
  EXPECT_EQ(batch_seen, scalar_seen);
  EXPECT_EQ(batched.published_count("S"), scalar.published_count("S"));
}

TEST(Engine, PublishBatchEnforcesOrdering) {
  Engine e;
  e.register_stream("S", one_field());
  e.publish("S", Tuple{100, {Value{1}}});
  runtime::TupleBatch stale{"S"};
  stale.push_back(Tuple{99, {Value{2}}});
  EXPECT_THROW(e.publish_batch("S", stale), std::invalid_argument);
  runtime::TupleBatch scrambled{"S"};
  scrambled.push_back(Tuple{200, {Value{3}}});
  scrambled.push_back(Tuple{150, {Value{4}}});
  EXPECT_THROW(e.publish_batch("S", scrambled), std::invalid_argument);
  runtime::TupleBatch wrong_stream{"T"};
  wrong_stream.push_back(Tuple{300, {Value{5}}});
  EXPECT_THROW(e.publish_batch("S", wrong_stream), std::invalid_argument);
  EXPECT_EQ(e.published_count("S"), 1u);  // nothing partial got through
}

TEST(Engine, PublishBatchEmptyIsNoOp) {
  Engine e;
  e.register_stream("S", one_field());
  e.publish_batch("S", runtime::TupleBatch{"S"});
  EXPECT_EQ(e.published_count("S"), 0u);
  // Misrouting fails loudly even when the batch happens to be empty.
  EXPECT_THROW(e.publish_batch("S", runtime::TupleBatch{"T"}),
               std::invalid_argument);
  EXPECT_THROW(e.publish_batch("Unknown", runtime::TupleBatch{"Unknown"}),
               std::out_of_range);
}

TEST(Engine, BatchTapsReceiveWholeBatchesScalarTapsRows) {
  Engine e;
  e.register_stream("S", one_field());
  std::size_t batch_calls = 0;
  std::size_t batch_rows = 0;
  std::size_t batch_scalar_calls = 0;
  std::size_t scalar_only_rows = 0;
  e.attach(
      "S",
      [&](const runtime::TupleBatch& b) {
        ++batch_calls;
        batch_rows += b.size();
      },
      [&](const Tuple&) { ++batch_scalar_calls; });
  e.attach("S", [&](const Tuple&) { ++scalar_only_rows; });

  runtime::TupleBatch b{"S"};
  for (int i = 0; i < 4; ++i) b.push_back(Tuple{i, {Value{i}}});
  e.publish_batch("S", b);
  EXPECT_EQ(batch_calls, 1u);        // whole batch, once
  EXPECT_EQ(batch_rows, 4u);
  EXPECT_EQ(batch_scalar_calls, 0u); // batch leg used, not the scalar one
  EXPECT_EQ(scalar_only_rows, 4u);   // scalar-only tap saw each row

  // publish() drives the scalar leg of a dual tap.
  e.publish("S", Tuple{10, {Value{1}}});
  EXPECT_EQ(batch_calls, 1u);
  EXPECT_EQ(batch_scalar_calls, 1u);
  EXPECT_EQ(scalar_only_rows, 5u);

  EXPECT_THROW(e.attach("S", Engine::BatchTap{}, [](const Tuple&) {}),
               std::invalid_argument);
  EXPECT_THROW(e.attach("S", Engine::Tap{}), std::invalid_argument);
}

TEST(Engine, AllBatchTapsSkipMaterialization) {
  Engine e;
  e.register_stream("S", one_field());
  std::size_t rows = 0;
  const std::size_t id = e.attach(
      "S", [&](const runtime::TupleBatch& b) { rows += b.size(); },
      [](const Tuple&) {});
  runtime::TupleBatch b{"S"};
  b.push_back(Tuple{1, {Value{1}}});
  b.push_back(Tuple{2, {Value{2}}});
  e.publish_batch("S", b);
  EXPECT_EQ(rows, 2u);
  EXPECT_EQ(e.published_count("S"), 2u);
  e.detach("S", id);
  runtime::TupleBatch later{"S"};
  later.push_back(Tuple{3, {Value{3}}});
  later.push_back(Tuple{4, {Value{4}}});
  e.publish_batch("S", later);  // no taps left; counts still advance
  EXPECT_EQ(rows, 2u);
  EXPECT_EQ(e.published_count("S"), 4u);
}

TEST(Engine, TapsMayAttachDuringPublish) {
  Engine e;
  e.register_stream("S", one_field());
  int later = 0;
  e.attach("S", [&](const Tuple&) {
    // Simulates a query whose result consumer registers reactively.
    static bool attached = false;
    if (!attached) {
      attached = true;
      e.attach("S", [&](const Tuple&) { ++later; });
    }
  });
  e.publish("S", Tuple{1, {Value{1}}});
  EXPECT_EQ(later, 0);  // not delivered retroactively
  e.publish("S", Tuple{2, {Value{1}}});
  EXPECT_EQ(later, 1);
}

}  // namespace
}  // namespace cosmos::stream
