// Single-source shortest paths (Dijkstra) over a Topology.
#pragma once

#include <vector>

#include "common/ids.h"
#include "net/topology.h"

namespace cosmos::net {

struct ShortestPathTree {
  NodeId source;
  /// dist[i] = latency of the shortest path source -> i (ms);
  /// +infinity for unreachable nodes.
  std::vector<double> dist;
  /// pred[i] = previous hop on the shortest path, invalid for source and
  /// unreachable nodes.
  std::vector<NodeId> pred;

  /// Node sequence source -> target (inclusive); empty if unreachable.
  [[nodiscard]] std::vector<NodeId> path_to(NodeId target) const;
};

[[nodiscard]] ShortestPathTree dijkstra(const Topology& topo, NodeId source);

}  // namespace cosmos::net
