// Integration tests of the hierarchical distributor: initial distribution,
// online insertion, adaptation, statistics refresh.
#include "coord/hierarchy.h"

#include <gtest/gtest.h>

#include "sim/baselines.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "sim/workload.h"

namespace cosmos::coord {
namespace {

struct Fixture {
  net::Topology topo;
  net::Deployment deployment;
  std::unique_ptr<CoordinatorTree> tree;
  std::unique_ptr<sim::WorkloadGenerator> workload;

  explicit Fixture(std::uint64_t seed, std::size_t processors = 24,
                   std::size_t sources = 8, std::size_t k = 3) {
    Rng rng{seed};
    net::TransitStubParams tp;
    tp.transit_domains = 2;
    tp.transit_nodes_per_domain = 2;
    tp.stub_domains_per_transit = 2;
    tp.stub_nodes_per_domain = 16;
    topo = net::make_transit_stub(tp, rng);
    net::DeploymentParams dp;
    dp.num_sources = sources;
    dp.num_processors = processors;
    deployment = net::make_deployment(topo, dp, rng);
    tree = std::make_unique<CoordinatorTree>(deployment, k, rng);
    sim::WorkloadParams wp;
    wp.num_substreams = 400;
    wp.groups = 4;
    wp.interest_min = 10;
    wp.interest_max = 20;
    workload = std::make_unique<sim::WorkloadGenerator>(deployment, wp,
                                                        seed + 1);
  }

  HierarchicalDistributor make_distributor(std::uint64_t seed) {
    return HierarchicalDistributor{deployment, *tree, workload->space(),
                                   HierarchyParams{}, seed};
  }
};

TEST(Hierarchy, DistributePlacesEveryQueryOnAProcessor) {
  Fixture f{1};
  auto d = f.make_distributor(2);
  const auto profiles = f.workload->make_queries(200);
  d.distribute(profiles);
  EXPECT_EQ(d.placement().size(), 200u);
  for (const auto& [q, node] : d.placement()) {
    EXPECT_TRUE(f.deployment.is_processor(node)) << q.value();
  }
}

TEST(Hierarchy, DistributionRespectsLoadSlack) {
  Fixture f{3};
  auto d = f.make_distributor(4);
  const auto profiles = f.workload->make_queries(300);
  d.distribute(profiles);
  const auto loads = d.processor_loads();
  double total = 0;
  for (const auto l : loads) total += l;
  // No processor should be grossly overloaded: allow a factor-of-3 head
  // room over the fair share to account for group-level granularity.
  const double fair = total / static_cast<double>(loads.size());
  for (const auto l : loads) EXPECT_LE(l, 3.0 * fair + 1e-9);
}

TEST(Hierarchy, DistributionBeatsNaiveOnCommunicationCost) {
  Fixture f{5};
  auto d = f.make_distributor(6);
  const auto profiles = f.workload->make_queries(300);
  d.distribute(profiles);

  const sim::CostModel cost{f.topo, f.deployment};
  const auto hier =
      cost.pairwise_cost(d.placement(), d.profiles(), f.workload->space());

  const auto naive = sim::naive_placement(profiles);
  std::unordered_map<QueryId, query::InterestProfile> pmap;
  for (const auto& p : profiles) pmap.emplace(p.query, p);
  const auto naive_cost = cost.pairwise_cost(naive, pmap, f.workload->space());
  EXPECT_LT(hier.total(), naive_cost.total());
}

TEST(Hierarchy, TimingIsReported) {
  Fixture f{7};
  auto d = f.make_distributor(8);
  const auto t = d.distribute(f.workload->make_queries(100));
  EXPECT_GT(t.total_seconds, 0.0);
  EXPECT_GT(t.response_seconds, 0.0);
  EXPECT_LE(t.response_seconds, t.total_seconds + 1e-9);
}

TEST(Hierarchy, InsertQueryRoutesToProcessor) {
  Fixture f{9};
  auto d = f.make_distributor(10);
  d.distribute(f.workload->make_queries(100));
  const auto p = f.workload->make_query();
  const NodeId host = d.insert_query(p);
  EXPECT_TRUE(f.deployment.is_processor(host));
  EXPECT_EQ(d.placement().at(p.query), host);
  EXPECT_EQ(d.placement().size(), 101u);
}

TEST(Hierarchy, OnlineInsertionBeatsRandomOnCost) {
  Fixture f{11};
  const auto initial = f.workload->make_queries(150);
  const auto stream = f.workload->make_queries(150);

  auto online = f.make_distributor(12);
  online.distribute(initial);
  for (const auto& p : stream) online.insert_query(p);

  auto random = f.make_distributor(13);
  random.distribute(initial);
  Rng rrng{14};
  auto random_placement = random.placement();
  std::unordered_map<QueryId, query::InterestProfile> pmap = random.profiles();
  for (const auto& p : stream) {
    random_placement[p.query] = f.deployment.processors[rrng.next_below(
        f.deployment.processors.size())];
    pmap.emplace(p.query, p);
  }

  const sim::CostModel cost{f.topo, f.deployment};
  const auto online_cost = cost.pairwise_cost(
      online.placement(), online.profiles(), f.workload->space());
  const auto random_cost =
      cost.pairwise_cost(random_placement, pmap, f.workload->space());
  EXPECT_LT(online_cost.total(), random_cost.total());
}

TEST(Hierarchy, RemoveQueryDropsPlacement) {
  Fixture f{15};
  auto d = f.make_distributor(16);
  const auto profiles = f.workload->make_queries(50);
  d.distribute(profiles);
  d.remove_query(profiles[0].query);
  EXPECT_EQ(d.placement().size(), 49u);
  EXPECT_FALSE(d.placement().contains(profiles[0].query));
  d.remove_query(profiles[0].query);  // idempotent
  EXPECT_EQ(d.placement().size(), 49u);
}

TEST(Hierarchy, AdaptImprovesRandomInitialPlacement) {
  Fixture f{17};
  auto d = f.make_distributor(18);
  const auto profiles = f.workload->make_queries(300);

  // Inaccurate-statistics scenario: random initial placement (Fig 7).
  Rng rrng{19};
  std::vector<std::pair<QueryId, NodeId>> random;
  for (const auto& p : profiles) {
    random.emplace_back(p.query, f.deployment.processors[rrng.next_below(
                                     f.deployment.processors.size())]);
  }
  d.place_at(random, profiles);

  const sim::CostModel cost{f.topo, f.deployment};
  const double before =
      cost.pairwise_cost(d.placement(), d.profiles(), f.workload->space())
          .total();
  double after = before;
  for (int round = 0; round < 4; ++round) {
    d.adapt();
    after = cost.pairwise_cost(d.placement(), d.profiles(),
                               f.workload->space())
                .total();
  }
  EXPECT_LT(after, before);
  EXPECT_EQ(d.placement().size(), 300u);
}

TEST(Hierarchy, AdaptReportsMigrations) {
  Fixture f{21};
  auto d = f.make_distributor(22);
  const auto profiles = f.workload->make_queries(200);
  Rng rrng{23};
  std::vector<std::pair<QueryId, NodeId>> random;
  for (const auto& p : profiles) {
    random.emplace_back(p.query, f.deployment.processors[rrng.next_below(
                                     f.deployment.processors.size())]);
  }
  d.place_at(random, profiles);
  const auto report = d.adapt();
  EXPECT_GT(report.migrated_queries, 0u);
  EXPECT_GT(report.migrated_state, 0.0);
  EXPECT_LE(report.migrated_queries, 200u);
}

TEST(Hierarchy, AdaptConvergesOnStableWorkload) {
  // After distribution and a couple of adaptation rounds, further rounds
  // should migrate little.
  Fixture f{25};
  auto d = f.make_distributor(26);
  d.distribute(f.workload->make_queries(250));
  d.adapt();
  d.adapt();
  const auto report = d.adapt();
  EXPECT_LE(report.migrated_queries, 125u);  // < half keep moving
}

TEST(Hierarchy, RefreshStatisticsTracksRateChanges) {
  Fixture f{27};
  auto d = f.make_distributor(28);
  const auto profiles = f.workload->make_queries(100);
  d.distribute(profiles);
  double load_before = 0;
  for (const auto l : d.processor_loads()) load_before += l;
  f.workload->perturb_rates(100, 3.0);
  d.refresh_statistics();
  double load_after = 0;
  for (const auto l : d.processor_loads()) load_after += l;
  EXPECT_GT(load_after, load_before);
}

TEST(Hierarchy, AdaptRebalancesAfterRatePerturbation) {
  Fixture f{29};
  auto d = f.make_distributor(30);
  d.distribute(f.workload->make_queries(300));
  // Perturb and refresh: load imbalance appears.
  f.workload->perturb_rates(80, 6.0);
  d.refresh_statistics();
  const double stddev_before =
      sim::load_stddev(d.placement(), d.profiles(), f.deployment);
  d.adapt();
  const double stddev_after =
      sim::load_stddev(d.placement(), d.profiles(), f.deployment);
  EXPECT_LT(stddev_after, stddev_before);
}

TEST(Hierarchy, PlaceAtRejectsUnknownQuery) {
  Fixture f{31};
  auto d = f.make_distributor(32);
  const auto profiles = f.workload->make_queries(5);
  EXPECT_THROW(
      d.place_at({{QueryId{999}, f.deployment.processors[0]}}, profiles),
      std::invalid_argument);
}

}  // namespace
}  // namespace cosmos::coord
