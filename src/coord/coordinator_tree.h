// The hierarchical coordinator tree of Section 3.3.
//
// Coordinators are processors playing an extra logical role. At the bottom
// level every processor forms its own cluster; above that, nodes are grouped
// into latency-close clusters of size k..3k-1 whose median becomes the
// parent coordinator, repeated level by level until a single root remains
// (the scheme of Banerjee et al., adapted for offline construction).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "net/deployment.h"

namespace cosmos::coord {

struct TreeNode {
  /// Physical processor hosting this coordinator role (cluster median).
  NodeId site;
  int level = 0;  ///< 0 = processor (own cluster), increasing toward root
  std::uint32_t parent = UINT32_MAX;
  std::vector<std::uint32_t> children;   ///< tree-node indices (empty at L0)
  std::vector<NodeId> descendants;       ///< processors in this subtree
  double capability = 0.0;               ///< total capability of descendants
};

class CoordinatorTree {
 public:
  /// Builds the tree over `deployment.processors` with cluster parameter k.
  /// Throws std::invalid_argument for k < 2 or an empty processor set.
  CoordinatorTree(const net::Deployment& deployment, std::size_t k, Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const TreeNode& node(std::uint32_t i) const {
    return nodes_.at(i);
  }
  [[nodiscard]] std::uint32_t root() const noexcept { return root_; }
  [[nodiscard]] int height() const noexcept { return nodes_[root_].level; }
  [[nodiscard]] std::size_t cluster_k() const noexcept { return k_; }

  /// Leaf (level-0) tree-node index of a processor.
  [[nodiscard]] std::uint32_t leaf_of(NodeId processor) const;
  /// Like leaf_of but returns UINT32_MAX for non-processors.
  [[nodiscard]] std::uint32_t find_leaf(NodeId node) const noexcept;

  /// Tree-node indices at a given level.
  [[nodiscard]] std::vector<std::uint32_t> nodes_at_level(int level) const;

  /// True if `processor` is a descendant of tree node `i`.
  [[nodiscard]] bool covers(std::uint32_t i, NodeId processor) const;

 private:
  std::vector<TreeNode> nodes_;
  std::uint32_t root_ = UINT32_MAX;
  std::size_t k_ = 0;
  std::vector<std::pair<NodeId, std::uint32_t>> leaf_index_;
};

}  // namespace cosmos::coord
