// Synthetic workload generator reproducing the paper's simulation setup
// (Section 4.1): substreams randomly distributed over the sources with
// rates in [1,10] bytes/s; g = 20 user groups, each with its own random
// permutation of the substreams (distinct hot spots); each query requests
// 100..200 substreams drawn zipfian (theta = 0.8) through its group's
// permutation; query load proportional to its input rate.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "net/deployment.h"
#include "pubsub/subscription.h"
#include "query/interest.h"
#include "sim/sensor_trace.h"

namespace cosmos::sim {

struct WorkloadParams {
  std::size_t num_substreams = 20'000;
  double rate_min = 1.0;
  double rate_max = 10.0;
  std::size_t groups = 20;
  double zipf_theta = 0.8;
  std::size_t interest_min = 100;
  std::size_t interest_max = 200;
  /// Result rate as a fraction of input rate (selectivity band).
  double output_fraction_min = 0.02;
  double output_fraction_max = 0.1;
  /// How strongly a group's hot spot concentrates on a few preferred
  /// sources (0 = hot substreams scattered over all sources, 1 = perfectly
  /// source-ordered). The paper's scenario — user groups monitoring
  /// specific sensor deployments — corresponds to high affinity: a group's
  /// data interest is dominated by a handful of deployments.
  double source_affinity = 0.8;
  /// Operator state per byte/s of input (bytes; drives migration cost).
  double state_per_input_rate = 50.0;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const net::Deployment& deployment, WorkloadParams params,
                    std::uint64_t seed);

  [[nodiscard]] query::SubstreamSpace& space() noexcept { return space_; }
  [[nodiscard]] const query::SubstreamSpace& space() const noexcept {
    return space_;
  }

  /// Next query profile (ids are sequential).
  [[nodiscard]] query::InterestProfile make_query();
  [[nodiscard]] std::vector<query::InterestProfile> make_queries(
      std::size_t count);

  /// Scales the rates of `count` random substreams by `factor` (the Fig 10
  /// rate perturbations). Returns the affected substreams.
  std::vector<SubstreamId> perturb_rates(std::size_t count, double factor);

  /// Re-derives load/output estimates of existing profiles after a rate
  /// change (the queries' interests are unchanged).
  void refresh_profiles(std::vector<query::InterestProfile>& profiles) const;

  [[nodiscard]] const WorkloadParams& params() const noexcept {
    return params_;
  }

  /// User group each generated query was drawn from (indexed by query id).
  [[nodiscard]] const std::vector<std::size_t>& group_of() const noexcept {
    return group_of_;
  }

  // A second, executable face of the Fig 10 scenario lives below as free
  // functions (make_skewed_trace): the same skew + rate perturbation, but
  // producing an actual replayable station trace instead of abstract
  // substream rates.

 private:
  const net::Deployment* deployment_;
  WorkloadParams params_;
  Rng rng_;
  query::SubstreamSpace space_;
  ZipfDistribution zipf_;
  /// permutations_[g][rank] = substream index.
  std::vector<std::vector<std::uint32_t>> permutations_;
  std::uint32_t next_query_id_ = 0;
  std::vector<double> output_fraction_;   ///< per query id
  std::vector<std::size_t> group_of_;     ///< per query id
};

/// The Fig 10 rate-perturbation scenario as a replayable trace: station
/// event rates are Zipf-skewed (a few hot streams carry most tuples), and
/// at each perturbation event the rates of a random station subset are
/// scaled several-fold up ('I') or down ('D'), shifting the hot spot
/// mid-trace. Used by bench_adapt_skew and the adaptation tests; any
/// consumer of station streams (sensor_schema()) can replay it.
struct SkewedTraceParams {
  std::size_t stations = 16;
  std::size_t total_tuples = 40'000;
  std::int64_t duration_ms = 4 * 3'600'000;
  /// Zipf skew of per-station rates (0 = uniform). The mapping of rate
  /// rank to station index is shuffled per seed, so hot stations are not
  /// simply the lowest-numbered ones.
  double zipf_theta = 0.9;
  /// One char per perturbation event; events split the trace into
  /// pattern.size()+1 equal segments. 'I' multiplies the rates of
  /// `perturb_stations` random stations by `perturb_factor`, 'D' divides.
  /// Empty = stationary skew.
  std::string perturb_pattern = "ID";
  std::size_t perturb_stations = 2;
  double perturb_factor = 4.0;
};

/// Readings in global timestamp order. Deterministic for a given
/// (params, rng-state); ties in timestamp are broken by station index.
[[nodiscard]] std::vector<SensorReading> make_skewed_trace(
    const SkewedTraceParams& params, Rng& rng);

/// Massive-fanout pub/sub population: N subscribers with Zipf-distributed
/// constants and ranges over the station attributes (sensor_schema()) of
/// one stream — the workload shape the paper's "millions of users" north
/// star implies, where almost every subscription is selective and many
/// share hot constants. Drives bench_match_scale and the pubsub churn
/// differential test.
struct FanoutParams {
  std::size_t subscribers = 10'000;
  /// stationId constant domain; match the trace's station count so the
  /// per-sub match probability is subscribers-independent.
  std::size_t stations = 2'000;
  double zipf_theta = 0.9;  ///< skew of station / range-grid popularity
  /// Station-targeted subs: stationId == Zipf(station) AND a temperature
  /// threshold riding in the residual. (Selectivity knobs lean on
  /// temperature because make_skewed_trace draws it i.i.d. uniform in
  /// [-7, -3] — snowHeight is a random walk with an unstable tail.)
  double eq_fraction = 0.82;
  /// Pure range subs: a temperature band [c, c + band_width) with a
  /// Zipf-drawn grid center — merges into one stabbed interval.
  double range_fraction = 0.15;
  // The remainder is deliberately unindexable (top-level OR over two hot
  // stations, NOT, or a lenient filter on an attribute the stream lacks)
  // to keep the scan-list fallback populated.
  double band_width = 0.01;  ///< deg C; range-sub selectivity knob
  std::string stream = "S";
  /// Subscriber homes are NodeId{0}..NodeId{homes-1}; must all be overlay
  /// participants.
  std::size_t homes = 4;
};

/// Subscriptions with sequential ids starting at 0 (BrokerNetwork::
/// subscribe reassigns ids; direct BrokerPartition driving keeps them).
[[nodiscard]] std::vector<pubsub::Subscription> make_fanout_subscriptions(
    const FanoutParams& params, Rng& rng);

}  // namespace cosmos::sim
