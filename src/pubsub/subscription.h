// Content-based subscriptions (Section 2.1).
//
// A subscription carries the three parts the paper's p1/p2 subscriptions
// have: S — the streams of interest, P — the attributes to project (the
// broker network prunes the rest as early as possible), and F — a filter
// predicate evaluated against each message's tuple.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <string>

#include "common/ids.h"
#include "stream/predicate.h"
#include "stream/schema.h"

namespace cosmos::pubsub {

struct Subscription {
  SubscriptionId id;
  NodeId subscriber;
  /// Stream names of interest (the S part).
  std::set<std::string> streams;
  /// Attribute names to deliver; empty set means all (the P part).
  std::set<std::string> projection;
  /// Filter over the message tuple (the F part).
  stream::PredicatePtr filter = stream::Predicate::always_true();

  [[nodiscard]] bool wants_stream(const std::string& stream) const noexcept {
    return streams.contains(stream);
  }
  /// True if the tuple passes the filter (schema = message schema).
  [[nodiscard]] bool matches(const stream::Schema& schema,
                             const stream::Tuple& tuple) const;
};

/// A published message: a tuple on a named stream with a known schema.
struct Message {
  std::string stream;
  const stream::Schema* schema = nullptr;
  stream::Tuple tuple;
};

/// Serialized size in bytes of the tuple restricted to `attrs` (empty =
/// all): 8 bytes per numeric, string length for strings, plus a fixed
/// header. This drives the traffic accounting.
[[nodiscard]] double message_bytes(const Message& message,
                                   const std::set<std::string>& attrs);

/// True if subscription `a` covers `b`: any message matching `b` also
/// matches `a` (sound, not complete — used for routing-table compaction).
[[nodiscard]] bool covers(const Subscription& a, const Subscription& b);

}  // namespace cosmos::pubsub
