// The network graph NG = {Vn, En, Wn} of Section 3.1.2.
//
// Vertices are the entities a coordinator can assign load to — its child
// processors (leaf coordinators) or child clusters (internal coordinators) —
// plus *anchor* vertices: network locations referenced by the query graph
// (remote sources, remote proxies) that cannot receive load but whose
// distances contribute to the WEC. Vertex weight Wn(v) is CPU capability;
// edge weight Wn(e_kl) is transfer latency.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"

namespace cosmos::graph {

struct NetworkVertex {
  std::string label;
  /// Capability c_i (total capability of descendants for cluster vertices).
  double capability = 0.0;
  /// True for child vertices that may receive q-vertices; false for anchors.
  bool assignable = false;
  /// Physical node this vertex stands at (processor, or cluster median).
  NodeId node;
};

class NetworkGraph {
 public:
  using VertexIndex = std::uint32_t;
  static constexpr VertexIndex kNone = UINT32_MAX;

  /// Returns the new vertex's index.
  VertexIndex add_vertex(NetworkVertex v);

  [[nodiscard]] std::size_t size() const noexcept { return vertices_.size(); }
  [[nodiscard]] const NetworkVertex& vertex(VertexIndex i) const {
    return vertices_.at(i);
  }

  /// Symmetric latency between two vertices; distance(i,i) == 0.
  void set_distance(VertexIndex a, VertexIndex b, double latency);
  [[nodiscard]] double distance(VertexIndex a, VertexIndex b) const noexcept {
    return dist_[a * stride_ + b];
  }

  /// Sum of capabilities of assignable vertices (W_n^v in Eqn 3.1).
  [[nodiscard]] double total_capability() const noexcept;

  /// Index of the assignable vertex anchored at `node`, or kNone.
  [[nodiscard]] VertexIndex find_assignable(NodeId node) const noexcept;
  /// Index of any vertex anchored at `node`, or kNone.
  [[nodiscard]] VertexIndex find_by_node(NodeId node) const noexcept;

  /// Call once after the last add_vertex and before set_distance.
  void finalize_vertices();

 private:
  std::vector<NetworkVertex> vertices_;
  std::vector<double> dist_;
  std::size_t stride_ = 0;
  bool finalized_ = false;
};

}  // namespace cosmos::graph
