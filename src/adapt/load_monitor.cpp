#include "adapt/load_monitor.h"

#include <algorithm>
#include <stdexcept>

namespace cosmos::adapt {

LoadMonitor::LoadMonitor(double ewma_alpha) : alpha_(ewma_alpha) {
  if (ewma_alpha <= 0.0 || ewma_alpha > 1.0) {
    throw std::invalid_argument{"LoadMonitor: ewma_alpha must be in (0,1]"};
  }
}

void LoadMonitor::sample(
    const runtime::RuntimeStats& stats,
    const std::unordered_map<std::uint64_t, std::size_t>& shard_of,
    stream::Timestamp now_ms) {
  const bool first = samples_ == 0;
  const double interval_ms =
      first ? 0.0 : std::max<double>(1.0, static_cast<double>(now_ms - last_ms_));
  last_ms_ = now_ms;
  ++samples_;

  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(loads_.size());
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    index.emplace(loads_[i].engine, i);
  }

  for (const auto& es : stats.engines) {
    const auto pin = shard_of.find(es.engine);
    if (pin == shard_of.end()) continue;
    auto& prev = prev_[es.engine];
    const double d_tuples = static_cast<double>(es.tuples - prev.tuples);
    const double d_busy = 1e-9 * static_cast<double>(es.busy_ns - prev.busy_ns);
    prev = {es.tuples, es.busy_ns};
    if (first) {
      // Baseline only: cumulative counters at the first sample cover an
      // unknown interval, so they seed prev_ without entering the EWMA.
      continue;
    }
    const auto it = index.find(es.engine);
    if (it == index.end()) {
      EngineLoad load;
      load.engine = es.engine;
      load.shard = pin->second;
      load.cpu_seconds = d_busy;
      load.tuples = d_tuples;
      load.tuples_per_ms = d_tuples / interval_ms;
      loads_.push_back(load);
    } else {
      auto& load = loads_[it->second];
      load.shard = pin->second;
      load.cpu_seconds = alpha_ * d_busy + (1.0 - alpha_) * load.cpu_seconds;
      load.tuples = alpha_ * d_tuples + (1.0 - alpha_) * load.tuples;
      load.tuples_per_ms = alpha_ * (d_tuples / interval_ms) +
                           (1.0 - alpha_) * load.tuples_per_ms;
    }
  }
  std::sort(loads_.begin(), loads_.end(),
            [](const EngineLoad& a, const EngineLoad& b) {
              return a.engine < b.engine;
            });
}

std::vector<double> LoadMonitor::shard_loads(std::size_t shards) const {
  std::vector<double> out(shards, 0.0);
  for (const auto& load : loads_) {
    if (load.shard < shards) out[load.shard] += load.cpu_seconds;
  }
  return out;
}

double LoadMonitor::imbalance(const std::vector<double>& loads) {
  if (loads.empty()) return 0.0;
  double sum = 0.0;
  double mx = 0.0;
  for (const double l : loads) {
    sum += l;
    mx = std::max(mx, l);
  }
  if (sum <= 0.0) return 0.0;
  return mx / (sum / static_cast<double>(loads.size()));
}

}  // namespace cosmos::adapt
