#include "obs/histogram.h"

#include <algorithm>

namespace cosmos::obs {

void HistogramSnapshot::record(std::uint64_t v) {
  const auto idx = static_cast<std::uint16_t>(bucket_index(v));
  const auto it = std::lower_bound(
      buckets.begin(), buckets.end(), idx,
      [](const auto& b, std::uint16_t i) { return b.first < i; });
  if (it != buckets.end() && it->first == idx) {
    ++it->second;
  } else {
    buckets.insert(it, {idx, 1});
  }
  ++count;
  sum += v;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  // Merge the two sorted sparse arrays.
  std::vector<std::pair<std::uint16_t, std::uint64_t>> out;
  out.reserve(buckets.size() + other.buckets.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j >= other.buckets.size() ||
        (i < buckets.size() && buckets[i].first < other.buckets[j].first)) {
      out.push_back(buckets[i++]);
    } else if (i >= buckets.size() ||
               other.buckets[j].first < buckets[i].first) {
      out.push_back(other.buckets[j++]);
    } else {
      out.push_back({buckets[i].first,
                     buckets[i].second + other.buckets[j].second});
      ++i;
      ++j;
    }
  }
  buckets = std::move(out);
  count += other.count;
  sum += other.sum;
}

std::uint64_t HistogramSnapshot::percentile(double p) const noexcept {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the percentile in [1, count]; ceil so p=0 maps to the first
  // recorded value and p=100 to the last.
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(target);
  if (static_cast<double>(rank) < target || rank == 0) ++rank;
  std::uint64_t cum = 0;
  for (const auto& [idx, n] : buckets) {
    cum += n;
    if (cum >= rank) return bucket_mid(idx);
  }
  return bucket_mid(buckets.back().first);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    s.buckets.push_back({static_cast<std::uint16_t>(i), n});
    s.count += n;
  }
  // sum_ may be mid-update relative to the buckets when sampled live; both
  // are monotone so the snapshot is still a valid lower bound per cell.
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace cosmos::obs
