// Operator hot-path micro-bench: the per-tuple work PRs 1-3 left on the
// critical path, before and after compilation/batching.
//
// Three configurations:
//   filter-only — interpreted Predicate::eval (per-row Binding env +
//                 virtual dispatch + string field lookups, the pre-PR-4
//                 hot path) vs the compiled program, scalar and
//                 batch-at-a-time;
//   join-heavy  — WindowJoinOp hash-index probe vs the O(window) scanning
//                 probe at growing window sizes: the hash probe must win
//                 superlinearly as the window grows (its cost tracks
//                 matches, the scan's tracks window occupancy);
//   match-heavy — subscription matching: interpreted Subscription::matches
//                 vs compiled filters evaluated batch-at-a-time.
//
// Windows and row counts are fixed (not COSMOS_BENCH_SCALE-scaled): the
// gated metrics are same-machine time ratios, which only stay comparable
// against the committed baseline if every run shapes the work identically.
// Writes BENCH_operator_hotpath.json; scripts/check_bench.py gates the
// ratios against bench/baselines/.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pubsub/subscription.h"
#include "runtime/tuple_batch.h"
#include "stream/compiled_predicate.h"
#include "stream/operators.h"

using namespace cosmos;
using namespace cosmos::bench;
using namespace cosmos::stream;

namespace {

Schema sensor_like() {
  return Schema{{{"snowHeight", ValueType::kDouble},
                 {"temperature", ValueType::kDouble},
                 {"stationId", ValueType::kInt},
                 {"timestamp", ValueType::kInt}}};
}

Tuple sensor_tuple(Rng& rng, Timestamp ts) {
  return Tuple{ts,
               {Value{rng.next_double(0.0, 40.0)},
                Value{rng.next_double(-15.0, 15.0)},
                Value{rng.next_range(0, 19)}, Value{ts}}};
}

template <typename Fn>
double cpu_time(Fn&& fn) {
  const double t0 = thread_cpu_seconds();
  fn();
  return thread_cpu_seconds() - t0;
}

// ---------------------------------------------------------------- filter --

struct FilterResult {
  double interp_s = 0.0;
  double compiled_scalar_s = 0.0;
  double compiled_batch_s = 0.0;
  std::size_t passed = 0;
};

FilterResult bench_filter(std::size_t rows) {
  const Schema schema = sensor_like();
  const auto pred = Predicate::conj(
      {Predicate::cmp(FieldRef{"S", "snowHeight"}, CmpOp::kGt, Value{20.0}),
       Predicate::cmp(FieldRef{"S", "temperature"}, CmpOp::kLe, Value{5.0}),
       Predicate::cmp(FieldRef{"S", "stationId"}, CmpOp::kNe, Value{3})});

  Rng rng{7};
  std::vector<Tuple> tuples;
  runtime::TupleBatch batch{"S"};
  tuples.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    tuples.push_back(sensor_tuple(rng, static_cast<Timestamp>(i)));
    batch.push_back(tuples.back());
  }

  FilterResult out;
  // The pre-compilation hot path: per-row env + interpreted tree walk.
  std::size_t interp_passed = 0;
  out.interp_s = cpu_time([&] {
    for (const Tuple& t : tuples) {
      const std::vector<Binding> env{{"S", &schema, &t}};
      if (pred->eval(env)) ++interp_passed;
    }
  });

  const auto compiled =
      CompiledPredicate::compile(pred, {{"S", &schema, SIZE_MAX}});
  std::size_t scalar_passed = 0;
  out.compiled_scalar_s = cpu_time([&] {
    for (const Tuple& t : tuples) {
      if (compiled.eval(t)) ++scalar_passed;
    }
  });

  std::vector<std::uint32_t> sel;
  sel.reserve(rows);
  out.compiled_batch_s = cpu_time([&] {
    sel.clear();
    compiled.filter_batch(batch, nullptr, sel);
  });

  if (interp_passed != scalar_passed || interp_passed != sel.size()) {
    std::fprintf(stderr, "!! filter paths disagree: %zu/%zu/%zu\n",
                 interp_passed, scalar_passed, sel.size());
    std::exit(1);
  }
  out.passed = interp_passed;
  return out;
}

// ------------------------------------------------------------------ join --

struct JoinResult {
  double scan_s = 0.0;
  double hash_s = 0.0;
  std::size_t emitted = 0;
};

/// Alternating left/right arrivals, 1 tuple per ms per side, equi key over
/// `keys` distinct values plus a numeric residual; window spans window_ms
/// of stream time (≈ window_ms/2 tuples per side buffered).
JoinResult bench_join(std::int64_t window_ms, std::size_t arrivals,
                      std::uint64_t keys) {
  const Schema ls{{{"k", ValueType::kInt}, {"v", ValueType::kDouble}}};
  const Schema rs{{{"j", ValueType::kInt}, {"u", ValueType::kDouble}}};
  const auto pred = Predicate::conj(
      {Predicate::cmp(FieldRef{"L", "k"}, CmpOp::kEq, FieldRef{"R", "j"}),
       Predicate::cmp(FieldRef{"L", "v"}, CmpOp::kGt, FieldRef{"R", "u"})});

  struct Arrival {
    bool left;
    Tuple t;
  };
  Rng rng{11};
  std::vector<Arrival> trace;
  trace.reserve(arrivals);
  for (std::size_t i = 0; i < arrivals; ++i) {
    trace.push_back({i % 2 == 0,
                     Tuple{static_cast<Timestamp>(i),
                           {Value{static_cast<std::int64_t>(
                                rng.next_below(keys))},
                            Value{rng.next_double(-1.0, 1.0)}}}});
  }

  JoinResult out;
  for (const bool use_hash : {false, true}) {
    std::size_t emitted = 0;
    WindowJoinOp join{{"L", &ls, WindowSpec::range_millis(window_ms)},
                      {"R", &rs, WindowSpec::range_millis(window_ms)},
                      pred,
                      [&emitted](const Tuple&) { ++emitted; },
                      WindowJoinOp::Options{use_hash}};
    const double s = cpu_time([&] {
      for (const Arrival& a : trace) {
        if (a.left) {
          join.push_left(a.t);
        } else {
          join.push_right(a.t);
        }
      }
    });
    if (use_hash) {
      out.hash_s = s;
      if (emitted != out.emitted) {
        std::fprintf(stderr, "!! join paths disagree: %zu vs %zu\n", emitted,
                     out.emitted);
        std::exit(1);
      }
    } else {
      out.scan_s = s;
      out.emitted = emitted;
    }
  }
  return out;
}

// ----------------------------------------------------------------- match --

struct MatchResult {
  double interp_s = 0.0;
  double compiled_s = 0.0;
  std::size_t matches = 0;
};

MatchResult bench_match(std::size_t rows, std::size_t sub_count) {
  const Schema schema = sensor_like();
  Rng rng{13};
  std::vector<pubsub::Subscription> subs(sub_count);
  for (std::size_t s = 0; s < sub_count; ++s) {
    auto& sub = subs[s];
    sub.id = SubscriptionId{static_cast<SubscriptionId::value_type>(s)};
    sub.subscriber = NodeId{0};
    sub.streams = {"S"};
    switch (rng.next_below(4)) {
      case 0:
        sub.filter = Predicate::always_true();
        break;
      case 1:
        sub.filter = Predicate::cmp(FieldRef{"", "snowHeight"}, CmpOp::kGt,
                                    Value{rng.next_double(5.0, 35.0)});
        break;
      case 2:
        sub.filter = Predicate::conj(
            {Predicate::cmp(FieldRef{"", "snowHeight"}, CmpOp::kGt,
                            Value{rng.next_double(5.0, 35.0)}),
             Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kNe,
                            Value{static_cast<std::int64_t>(
                                rng.next_below(20))})});
        break;
      default:
        sub.filter = Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kLe,
                                    Value{rng.next_double(-5.0, 10.0)});
        break;
    }
  }

  runtime::TupleBatch batch{"S"};
  std::vector<Tuple> tuples;
  tuples.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    tuples.push_back(sensor_tuple(rng, static_cast<Timestamp>(i)));
    batch.push_back(tuples.back());
  }

  MatchResult out;
  std::size_t interp_matches = 0;
  out.interp_s = cpu_time([&] {
    for (const Tuple& t : tuples) {
      for (const auto& sub : subs) {
        if (sub.matches(schema, t)) ++interp_matches;
      }
    }
  });

  std::vector<CompiledPredicate> compiled;
  compiled.reserve(sub_count);
  for (const auto& sub : subs) {
    compiled.push_back(CompiledPredicate::compile_lenient(
        sub.filter, {{"", &schema, SIZE_MAX}}));
  }
  std::size_t compiled_matches = 0;
  std::vector<std::uint32_t> sel;
  out.compiled_s = cpu_time([&] {
    for (const auto& c : compiled) {
      sel.clear();
      c.filter_batch(batch, nullptr, sel);
      compiled_matches += sel.size();
    }
  });

  if (interp_matches != compiled_matches) {
    std::fprintf(stderr, "!! match paths disagree: %zu vs %zu\n",
                 interp_matches, compiled_matches);
    std::exit(1);
  }
  out.matches = interp_matches;
  return out;
}

}  // namespace

int main() {
  std::printf("# operator hotpath micro-bench (fixed size; gated metrics "
              "are same-run time ratios)\n");

  const FilterResult filter = bench_filter(200'000);
  const double filter_scalar_speedup = filter.interp_s / filter.compiled_scalar_s;
  const double filter_batch_speedup = filter.interp_s / filter.compiled_batch_s;
  std::printf("filter-only: rows=200000 passed=%zu interp=%.4fs "
              "compiled-scalar=%.4fs (%.1fx) compiled-batch=%.4fs (%.1fx)\n",
              filter.passed, filter.interp_s, filter.compiled_scalar_s,
              filter_scalar_speedup, filter.compiled_batch_s,
              filter_batch_speedup);

  const std::int64_t windows[] = {512, 2048, 8192};
  double speedups[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    const std::int64_t w = windows[i];
    const JoinResult j =
        bench_join(w, static_cast<std::size_t>(4 * w), /*keys=*/64);
    speedups[i] = j.scan_s / j.hash_s;
    std::printf("join-heavy: window=%lldms arrivals=%lld emitted=%zu "
                "scan=%.4fs hash=%.4fs (%.1fx)\n",
                static_cast<long long>(w), static_cast<long long>(4 * w),
                j.emitted, j.scan_s, j.hash_s, speedups[i]);
  }
  const double superlinearity = speedups[2] / speedups[0];
  std::printf("join-heavy: hash-vs-scan superlinearity (w=8192 over "
              "w=512): %.2fx\n",
              superlinearity);

  const MatchResult match = bench_match(20'000, 200);
  const double match_speedup = match.interp_s / match.compiled_s;
  std::printf("match-heavy: rows=20000 subs=200 matches=%zu interp=%.4fs "
              "compiled=%.4fs (%.1fx)\n",
              match.matches, match.interp_s, match.compiled_s, match_speedup);

  write_bench_json(
      "operator_hotpath",
      {{"filter_compiled_scalar_speedup", filter_scalar_speedup},
       {"filter_compiled_batch_speedup", filter_batch_speedup},
       {"join_hash_vs_scan_speedup_w512", speedups[0]},
       {"join_hash_vs_scan_speedup_w2048", speedups[1]},
       {"join_hash_vs_scan_speedup_w8192", speedups[2]},
       {"join_hash_superlinearity", superlinearity},
       {"match_compiled_speedup", match_speedup},
       {"paths_agree", 1.0}});
  return 0;
}
