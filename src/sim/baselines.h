// Query distribution baselines from Section 4.1: Naive (local proxy),
// Random, Greedy (Algorithm 2 without refinement) and Centralized
// (global graph, Algorithm 2 at a single node).
#pragma once

#include <span>
#include <unordered_map>

#include "common/rng.h"
#include "graph/edge_model.h"
#include "graph/mapping.h"
#include "net/deployment.h"
#include "query/interest.h"

namespace cosmos::sim {

using Placement = std::unordered_map<QueryId, NodeId>;

/// Every query runs at its proxy.
[[nodiscard]] Placement naive_placement(
    std::span<const query::InterestProfile> profiles);

/// Uniform random processor per query.
[[nodiscard]] Placement random_placement(
    std::span<const query::InterestProfile> profiles,
    const net::Deployment& deployment, Rng& rng);

struct CentralizedResult {
  Placement placement;
  double wec = 0.0;
  double seconds = 0.0;  ///< optimizer wall-clock time
};

/// Builds the global query/network graphs at one node and runs Algorithm 2.
/// With `refine == false` this is the paper's "Greedy" baseline.
[[nodiscard]] CentralizedResult centralized_placement(
    std::span<const query::InterestProfile> profiles,
    const net::Deployment& deployment, const query::SubstreamSpace& space,
    const graph::MappingParams& mapping,
    const graph::QueryGraphBuildParams& build, bool refine, Rng& rng);

}  // namespace cosmos::sim
