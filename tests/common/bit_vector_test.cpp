#include "common/bit_vector.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace cosmos {
namespace {

TEST(BitVector, StartsAllZero) {
  BitVector v{130};
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVector, SetTestReset) {
  BitVector v{100};
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(99);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(99));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.count(), 4u);
  v.reset(63);
  EXPECT_FALSE(v.test(63));
  EXPECT_EQ(v.count(), 3u);
}

TEST(BitVector, SetIsIdempotent) {
  BitVector v{10};
  v.set(3);
  v.set(3);
  EXPECT_EQ(v.count(), 1u);
}

TEST(BitVector, IntersectsAndCount) {
  BitVector a{200}, b{200};
  a.set(5);
  a.set(150);
  b.set(150);
  b.set(199);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_EQ(a.intersection_count(b), 1u);
  b.reset(150);
  EXPECT_FALSE(a.intersects(b));
  EXPECT_EQ(a.intersection_count(b), 0u);
}

TEST(BitVector, WeightedIntersection) {
  BitVector a{4}, b{4};
  const std::vector<double> w{1.0, 2.0, 4.0, 8.0};
  a.set(0);
  a.set(1);
  a.set(2);
  b.set(1);
  b.set(2);
  b.set(3);
  EXPECT_DOUBLE_EQ(a.weighted_intersection(b, w), 6.0);
  EXPECT_DOUBLE_EQ(a.weighted_count(w), 7.0);
  EXPECT_DOUBLE_EQ(b.weighted_count(w), 14.0);
}

TEST(BitVector, MergeIsUnion) {
  BitVector a{70}, b{70};
  a.set(1);
  a.set(65);
  b.set(2);
  b.set(65);
  a.merge(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(2));
  EXPECT_TRUE(a.test(65));
  EXPECT_EQ(a.count(), 3u);
}

TEST(BitVector, SetBitsAscending) {
  BitVector v{300};
  v.set(299);
  v.set(0);
  v.set(64);
  const auto bits = v.set_bits();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 0u);
  EXPECT_EQ(bits[1], 64u);
  EXPECT_EQ(bits[2], 299u);
}

TEST(BitVector, EqualityComparesContent) {
  BitVector a{50}, b{50};
  a.set(7);
  EXPECT_NE(a, b);
  b.set(7);
  EXPECT_EQ(a, b);
}

// Property sweep: weighted_intersection agrees with a naive reference for
// random vectors of various sizes.
class BitVectorProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorProperty, WeightedIntersectionMatchesReference) {
  const std::size_t bits = GetParam();
  Rng rng{bits * 7919 + 1};
  BitVector a{bits}, b{bits};
  std::vector<double> w(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.next_bool(0.3)) a.set(i);
    if (rng.next_bool(0.3)) b.set(i);
    w[i] = rng.next_double(0.0, 10.0);
  }
  double expected = 0.0;
  std::size_t expected_count = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    if (a.test(i) && b.test(i)) {
      expected += w[i];
      ++expected_count;
    }
  }
  EXPECT_NEAR(a.weighted_intersection(b, w), expected, 1e-9);
  EXPECT_EQ(a.intersection_count(b), expected_count);
  EXPECT_EQ(a.intersects(b), expected_count > 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorProperty,
                         ::testing::Values(1, 7, 63, 64, 65, 128, 1000, 20000));

}  // namespace
}  // namespace cosmos
