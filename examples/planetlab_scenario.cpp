// Wide-area federation scenario (the prototype study's setting): 30 nodes
// across continents, 5 data sources, hundreds of random monitoring
// queries distributed hierarchically; compares the resulting communication
// cost against naive proxy placement.
#include <cstdio>

#include "coord/hierarchy.h"
#include "sim/baselines.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "sim/workload.h"

using namespace cosmos;

int main() {
  Rng rng{2026};
  net::TransitStubParams tp;
  tp.transit_domains = 3;
  tp.transit_nodes_per_domain = 2;
  tp.stub_domains_per_transit = 3;
  tp.stub_nodes_per_domain = 30;
  const auto topo = net::make_transit_stub(tp, rng);
  net::DeploymentParams dp;
  dp.num_sources = 5;
  dp.num_processors = 30;
  const auto deployment = net::make_deployment(topo, dp, rng);

  coord::CoordinatorTree tree{deployment, /*k=*/3, rng};
  std::printf("coordinator tree: height %d over %zu processors\n",
              tree.height(), deployment.processors.size());

  sim::WorkloadParams wp;
  wp.num_substreams = 2000;
  wp.groups = 6;
  wp.interest_min = 10;
  wp.interest_max = 30;
  sim::WorkloadGenerator workload{deployment, wp, 7};
  const auto profiles = workload.make_queries(600);

  coord::HierarchicalDistributor dist{deployment, tree, workload.space(),
                                      coord::HierarchyParams{}, 9};
  const auto timing = dist.distribute(profiles);

  const sim::CostModel cost{topo, deployment};
  std::unordered_map<QueryId, query::InterestProfile> pmap;
  for (const auto& p : profiles) pmap.emplace(p.query, p);
  const double hier =
      cost.pairwise_cost(dist.placement(), pmap, workload.space()).total();
  const double naive =
      cost.pairwise_cost(sim::naive_placement(profiles), pmap,
                         workload.space())
          .total();

  std::printf("distributed %zu queries in %.3fs (critical path %.3fs)\n",
              profiles.size(), timing.total_seconds, timing.response_seconds);
  std::printf("weighted comm cost: COSMOS %.4e vs naive %.4e (%.1f%% saved)\n",
              hier, naive, 100.0 * (naive - hier) / naive);
  std::printf("load stddev: %.4f\n",
              sim::load_stddev(dist.placement(), pmap, deployment));
  return 0;
}
