#include "query/interest.h"

#include <map>
#include <stdexcept>

namespace cosmos::query {

SubstreamSpace::SubstreamSpace(std::vector<NodeId> origin,
                               std::vector<double> rate)
    : origin_(std::move(origin)), rate_(std::move(rate)) {
  if (origin_.size() != rate_.size()) {
    throw std::invalid_argument{"SubstreamSpace: size mismatch"};
  }
  for (const double r : rate_) {
    if (r < 0) throw std::invalid_argument{"SubstreamSpace: negative rate"};
  }
}

void SubstreamSpace::set_rate(SubstreamId s, double rate) {
  if (rate < 0) throw std::invalid_argument{"SubstreamSpace: negative rate"};
  rate_.at(s.value()) = rate;
}

std::vector<std::pair<NodeId, double>> InterestProfile::rate_by_source(
    const SubstreamSpace& space) const {
  std::map<NodeId, double> acc;
  for (const std::size_t bit : interest.set_bits()) {
    const SubstreamId s{static_cast<SubstreamId::value_type>(bit)};
    acc[space.origin(s)] += space.rate(s);
  }
  return {acc.begin(), acc.end()};
}

void refresh_load(InterestProfile& p, const SubstreamSpace& space) {
  p.load = kLoadPerByteRate * p.input_rate(space);
}

}  // namespace cosmos::query
