// Typed payloads of every federation frame, one struct + encode/decode
// pair per frame type. encode_* produces a complete Frame; decode_*
// validates the frame type, decodes the payload and rejects trailing bytes
// — the single source of truth for each payload's layout, shared by the
// driver (cosmos/federation.cpp) and the node side (node/site.cpp) so the
// two can never drift apart.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wire/codec.h"

namespace cosmos::wire {

/// Driver -> node, first frame of a session: the node's identity in the
/// federation plus its transport knobs (the emulated one-way link delay it
/// applies to its own outgoing frames, and its local runtime shard count).
struct HelloMsg {
  /// Explicit protocol echo: the frame header already refuses a version
  /// mismatch byte-for-byte, but echoing it here lets the node reject a
  /// mixed fleet with a descriptive kError instead of a codec throw.
  std::uint16_t protocol = kProtocolVersion;
  std::uint32_t worker_index = 0;
  std::uint32_t shards = 1;
  std::int64_t send_delay_ms = 0;
  /// Stream-time period between unsolicited kStatsSample frames the node
  /// emits (driven by watermarks); 0 disables periodic sampling.
  std::int64_t stats_sample_every_ms = 0;
  /// Non-zero: the node enables its span tracer and ships collected spans
  /// in its kStatsSample frames for driver-side timeline merging.
  std::uint8_t trace = 0;
  /// Non-zero: peer-link mode. The node retains match-request batches and
  /// ships kExecute slices worker-to-worker per kRouteDecision instead of
  /// receiving pre-routed batches from the driver.
  std::uint8_t peer_links = 0;
  /// Liveness knobs (v3). The driver's sender emits a kHeartbeat whenever
  /// the session channel has been send-idle this long; the node echoes each
  /// one, which is what proves its serve loop is still draining frames.
  /// 0 disables heartbeats.
  std::int64_t heartbeat_every_ms = 0;
  /// The node declares the driver dead (and exits) when nothing — data or
  /// heartbeat — arrived for this long; the driver applies the same bound
  /// to the node's frames. 0 disables the deadline.
  std::int64_t liveness_deadline_ms = 0;
};

struct HelloAckMsg {
  std::string info;  ///< free-form daemon identification (pid etc.)
};

/// Node list + latency matrix + broker options: everything a node needs to
/// rebuild the exact BrokerNetwork overlay the driver has, so worker-side
/// matching and traffic accounting are byte-identical to in-process runs.
struct TopologyMsg {
  std::vector<NodeId> participants;   ///< broker participants, in order
  std::vector<NodeId> members;        ///< latency-matrix members, in order
  std::vector<double> dense;          ///< row-major member-to-member ms
  bool use_index = true;              ///< subscription-index matching
};

struct RegisterStreamMsg {
  std::string stream;
  NodeId publisher;
  stream::Schema schema;
};

struct SubscribeMsg {
  pubsub::Subscription sub;  ///< installed under its existing id
};

/// One deployed execution unit: the node rebuilds the CompiledQuery from
/// (spec, result_stream) — plan construction is deterministic, so remote
/// and local plans are identical.
struct DeployUnitMsg {
  std::uint32_t unit_id = 0;
  NodeId host;
  std::string result_stream;
  query::QuerySpec spec;
};

struct MatchRequestMsg {
  std::uint64_t job = 0;  ///< driver-assigned sequence, echoed in the reply
  runtime::TupleBatch batch;
};

struct MatchResponseMsg {
  std::uint64_t job = 0;
  /// Matched ascending row indices per subscription, in the partition's
  /// first-match order (same order BrokerPartition::match_batch appends).
  std::vector<std::pair<SubscriptionId, std::vector<std::uint32_t>>>
      deliveries;
};

struct ExecuteMsg {
  NodeId engine;  ///< hosting node of the target engine
  runtime::TupleBatch batch;  ///< pre-routed rows, in engine input order
  /// Ingest stamp (common/clock.h now_ns) of the chunk these rows came
  /// from; echoed back on every result the batch produces so the driver
  /// can close the end-to-end latency measurement. 0 = not measured.
  std::uint64_t ingest_ns = 0;
  /// Driver-assigned per-engine sequence number (route order). The site
  /// applies an engine's executes strictly in seq order — holding back
  /// early arrivals and dropping duplicates — which is what keeps result
  /// byte-identity when executes arrive over multiple channels (peer links,
  /// recovery replay).
  std::uint64_t seq = 0;
};

struct ResultEventMsg {
  std::string stream;  ///< unit result stream
  stream::Tuple tuple;
  std::uint64_t ingest_ns = 0;  ///< see ExecuteMsg::ingest_ns
};

struct ResultMsg {
  std::vector<ResultEventMsg> events;  ///< in emission order per engine
};

/// Ordering floor: the frame carrying it must not take effect for `engine`
/// until that engine has applied every execute with seq < `seq`. Floors
/// are trivially met on a star channel (FIFO) but gate frames that can
/// overtake peer-shipped executes.
struct EngineFloor {
  NodeId engine;
  std::uint64_t seq = 0;
};

struct WatermarkMsg {
  stream::Timestamp watermark = 0;
  /// Floors for the engines hosted at the destination worker: pruning an
  /// engine's join state early (before older executes arrived over a peer
  /// link) could drop tuples a pending batch would still join with.
  std::vector<EngineFloor> floors;
};

struct FlushMsg {
  std::uint64_t seq = 0;
  /// Floors for the engines hosted at the destination worker: the ack must
  /// follow every result of every execute routed before the flush, even
  /// ones still in flight on peer links.
  std::vector<EngineFloor> floors;
};
struct FlushAckMsg {
  std::uint64_t seq = 0;
};

struct MigrateOutMsg {
  NodeId engine;
  /// Non-zero: checkpoint mode — serialize and hand off the engine's state
  /// but keep the units deployed and running (the driver uses this to take
  /// recovery checkpoints without disturbing the placement).
  std::uint8_t keep = 0;
};

/// One unit's serialized window-join state.
struct UnitStateMsg {
  std::uint32_t unit_id = 0;
  std::vector<stream::WindowJoinOp::State> joins;
};

struct StateHandoffMsg {
  NodeId engine;
  std::vector<UnitStateMsg> units;
};

struct MigrateInMsg {
  NodeId engine;
  std::vector<DeployUnitMsg> units;
  std::vector<UnitStateMsg> state;  ///< parallel to `units` by unit_id
  /// The engine's next expected execute seq at the state's cut point: the
  /// receiving site resumes seq ordering there, dropping any replayed
  /// duplicate below it and holding back anything above it.
  std::uint64_t exec_seq = 0;
};

struct MigrateAckMsg {
  NodeId engine;
};

struct TrafficReportMsg {
  pubsub::TrafficStats traffic;
  /// Frames/bytes this worker sent on its peer links (kPeerHello +
  /// kExecute shipping); the driver sums them across the fleet.
  std::uint64_t peer_frames = 0;
  std::uint64_t peer_bytes = 0;
};

struct ErrorMsg {
  std::string message;
};

/// Node -> driver, unsolicited: a snapshot of the node's local metrics and
/// (when tracing) the spans collected since the previous sample. The frame
/// carries its own format version so the payload can evolve without a
/// protocol-version bump; decode rejects versions it does not know.
struct StatsSampleMsg {
  static constexpr std::uint16_t kVersion = 1;
  std::uint16_t version = kVersion;
  std::uint32_t worker_index = 0;
  stream::Timestamp now_ms = 0;  ///< node's current stream-time watermark
  obs::MetricsSnapshot metrics;
  std::vector<obs::CollectedSpan> spans;
};

/// Driver -> node: the fleet's endpoint table, indexed by worker. Workers
/// dial each other lazily from it when peer-link mode is on. Carries its
/// own format version (same pattern as kStatsSample) so the table can grow
/// fields without a protocol bump.
struct PeerTableMsg {
  static constexpr std::uint16_t kVersion = 1;
  std::uint16_t version = kVersion;
  std::vector<std::string> endpoints;  ///< endpoints[i] = worker i
};

/// Driver -> owner worker (peer-link mode): how to slice + ship one match
/// job's retained batch. One decision per matched run, sent even when
/// `targets` is empty so the owner can free the retained batch.
struct RouteDecisionMsg {
  struct Target {
    NodeId engine;
    std::uint32_t worker = 0;   ///< destination worker index
    std::uint64_t seq = 0;      ///< driver-assigned per-engine execute seq
    /// Ascending row indices of the retained batch; empty = all rows.
    std::vector<std::uint32_t> rows;
  };
  std::uint64_t job = 0;        ///< the kMatchRequest job this routes
  std::uint64_t ingest_ns = 0;  ///< echoed onto every produced kExecute
  std::vector<Target> targets;
};

/// Worker -> worker, first frame of a peer link: identifies the dialing
/// worker and refuses mixed fleets explicitly.
struct PeerHelloMsg {
  std::uint16_t protocol = kProtocolVersion;
  std::uint32_t worker_index = 0;  ///< the dialing worker
};

/// Worker -> worker (v3): the accepting side's reply to kPeerHello. The
/// dialer refuses to ship on a link until the ack arrives — a listener
/// backlog happily accepts connections for a SIGSTOPped process, so a
/// successful connect() proves nothing about the peer actually serving.
struct PeerHelloAckMsg {
  std::uint32_t worker_index = 0;  ///< the accepting worker
};

/// Liveness keepalive (v3), valid in every direction. A side that receives
/// one on a request/serve channel echoes it back; a side that receives one
/// on a one-way link just refreshes its peer's last-heard clock.
/// `probe` distinguishes an originated beat (echo me) from its echo
/// (absorb me) so two symmetric endpoints cannot ping-pong forever.
struct HeartbeatMsg {
  std::uint8_t probe = 1;
};

/// Worker -> driver (v3): the worker's outbound peer link to `to_worker`
/// wedged (dial timeout, ack timeout, or send failure after the re-dial).
/// The driver falls back to star routing for that pair and replays the
/// executes the dead link may have swallowed.
struct PeerDownMsg {
  std::uint32_t from_worker = 0;
  std::uint32_t to_worker = 0;
  std::string reason;
};

/// Worker -> driver (v3): a gated watermark/flush has been waiting on
/// unmet execute-seq floors past the liveness deadline — executes were
/// lost on a live-but-lossy path. `missing` carries each starved engine's
/// next expected seq; the driver re-sends everything at or above it.
struct SeqGapMsg {
  std::uint32_t worker_index = 0;
  std::vector<EngineFloor> missing;  ///< seq = next expected (first missing)
};

[[nodiscard]] Frame encode_hello(const HelloMsg& m);
[[nodiscard]] HelloMsg decode_hello(const Frame& f);
[[nodiscard]] Frame encode_hello_ack(const HelloAckMsg& m);
[[nodiscard]] HelloAckMsg decode_hello_ack(const Frame& f);
[[nodiscard]] Frame encode_topology(const TopologyMsg& m);
[[nodiscard]] TopologyMsg decode_topology(const Frame& f);
[[nodiscard]] Frame encode_register_stream(const RegisterStreamMsg& m);
[[nodiscard]] RegisterStreamMsg decode_register_stream(const Frame& f);
[[nodiscard]] Frame encode_subscribe(const SubscribeMsg& m);
[[nodiscard]] SubscribeMsg decode_subscribe(const Frame& f);
[[nodiscard]] Frame encode_deploy_unit(const DeployUnitMsg& m);
[[nodiscard]] DeployUnitMsg decode_deploy_unit(const Frame& f);
[[nodiscard]] Frame encode_match_request(const MatchRequestMsg& m);
[[nodiscard]] MatchRequestMsg decode_match_request(const Frame& f);
[[nodiscard]] Frame encode_match_response(const MatchResponseMsg& m);
[[nodiscard]] MatchResponseMsg decode_match_response(const Frame& f);
[[nodiscard]] Frame encode_execute(const ExecuteMsg& m);
[[nodiscard]] ExecuteMsg decode_execute(const Frame& f);
[[nodiscard]] Frame encode_result(const ResultMsg& m);
[[nodiscard]] ResultMsg decode_result(const Frame& f);
[[nodiscard]] Frame encode_watermark(const WatermarkMsg& m);
[[nodiscard]] WatermarkMsg decode_watermark(const Frame& f);
[[nodiscard]] Frame encode_flush(const FlushMsg& m);
[[nodiscard]] FlushMsg decode_flush(const Frame& f);
[[nodiscard]] Frame encode_flush_ack(const FlushAckMsg& m);
[[nodiscard]] FlushAckMsg decode_flush_ack(const Frame& f);
[[nodiscard]] Frame encode_migrate_out(const MigrateOutMsg& m);
[[nodiscard]] MigrateOutMsg decode_migrate_out(const Frame& f);
[[nodiscard]] Frame encode_state_handoff(const StateHandoffMsg& m);
[[nodiscard]] StateHandoffMsg decode_state_handoff(const Frame& f);
[[nodiscard]] Frame encode_migrate_in(const MigrateInMsg& m);
[[nodiscard]] MigrateInMsg decode_migrate_in(const Frame& f);
[[nodiscard]] Frame encode_migrate_ack(const MigrateAckMsg& m);
[[nodiscard]] MigrateAckMsg decode_migrate_ack(const Frame& f);
[[nodiscard]] Frame encode_traffic_request();
[[nodiscard]] Frame encode_traffic_report(const TrafficReportMsg& m);
[[nodiscard]] TrafficReportMsg decode_traffic_report(const Frame& f);
[[nodiscard]] Frame encode_error(const ErrorMsg& m);
[[nodiscard]] ErrorMsg decode_error(const Frame& f);
[[nodiscard]] Frame encode_bye();
[[nodiscard]] Frame encode_stats_sample(const StatsSampleMsg& m);
[[nodiscard]] StatsSampleMsg decode_stats_sample(const Frame& f);
[[nodiscard]] Frame encode_peer_table(const PeerTableMsg& m);
[[nodiscard]] PeerTableMsg decode_peer_table(const Frame& f);
[[nodiscard]] Frame encode_route_decision(const RouteDecisionMsg& m);
[[nodiscard]] RouteDecisionMsg decode_route_decision(const Frame& f);
[[nodiscard]] Frame encode_peer_hello(const PeerHelloMsg& m);
[[nodiscard]] PeerHelloMsg decode_peer_hello(const Frame& f);
[[nodiscard]] Frame encode_peer_hello_ack(const PeerHelloAckMsg& m);
[[nodiscard]] PeerHelloAckMsg decode_peer_hello_ack(const Frame& f);
[[nodiscard]] Frame encode_heartbeat(const HeartbeatMsg& m);
[[nodiscard]] HeartbeatMsg decode_heartbeat(const Frame& f);
[[nodiscard]] Frame encode_peer_down(const PeerDownMsg& m);
[[nodiscard]] PeerDownMsg decode_peer_down(const Frame& f);
[[nodiscard]] Frame encode_seq_gap(const SeqGapMsg& m);
[[nodiscard]] SeqGapMsg decode_seq_gap(const Frame& f);

}  // namespace cosmos::wire
