#include "runtime/driver.h"

#include <gtest/gtest.h>

namespace cosmos::runtime {
namespace {

using stream::Tuple;
using stream::Value;

std::vector<TraceEvent> interleaved_trace() {
  // Three streams, globally ordered, with equal timestamps across streams.
  std::vector<TraceEvent> events;
  for (std::int64_t step = 0; step < 20; ++step) {
    for (const auto* s : {"A", "B", "C"}) {
      events.push_back({s, Tuple{step * 1000, {Value{step}}}});
    }
  }
  return events;
}

/// Flattens chunks back into a (stream, ts) sequence.
std::vector<std::pair<std::string, stream::Timestamp>> flatten(
    const std::vector<Chunk>& chunks) {
  std::vector<std::pair<std::string, stream::Timestamp>> out;
  for (const auto& c : chunks) {
    for (const auto& run : c.runs) {
      for (std::size_t i = 0; i < run.size(); ++i) {
        out.emplace_back(run.stream(), run.ts(i));
      }
    }
  }
  return out;
}

TEST(Driver, ChunksReplayTheTraceVerbatim) {
  const auto events = interleaved_trace();
  for (const std::size_t batch : {1, 7, 64, 1000}) {
    std::vector<Chunk> chunks;
    Driver::replay(events, {batch, /*tick_ms=*/0},
                   [&](Chunk&& c) { chunks.push_back(std::move(c)); });
    const auto flat = flatten(chunks);
    ASSERT_EQ(flat.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(flat[i].first, events[i].stream);
      EXPECT_EQ(flat[i].second, events[i].tuple.ts);
    }
  }
}

TEST(Driver, RunsAreMaximalSameStreamSegments) {
  std::vector<Chunk> chunks;
  Driver d{{100, 0}, [&](Chunk&& c) { chunks.push_back(std::move(c)); }};
  d.push("A", Tuple{0, {Value{1}}});
  d.push("A", Tuple{1, {Value{2}}});
  d.push("B", Tuple{1, {Value{3}}});
  d.push("A", Tuple{2, {Value{4}}});
  d.finish();
  ASSERT_EQ(chunks.size(), 1u);
  ASSERT_EQ(chunks[0].runs.size(), 3u);  // AA | B | A
  EXPECT_EQ(chunks[0].runs[0].size(), 2u);
  EXPECT_EQ(chunks[0].runs[1].stream(), "B");
  EXPECT_EQ(chunks[0].tuples, 4u);
}

TEST(Driver, FlushesAtBatchSize) {
  std::vector<Chunk> chunks;
  Driver d{{3, 0}, [&](Chunk&& c) { chunks.push_back(std::move(c)); }};
  for (std::int64_t i = 0; i < 7; ++i) d.push("A", Tuple{i, {Value{i}}});
  EXPECT_EQ(chunks.size(), 2u);  // two full chunks of 3
  d.finish();
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[2].tuples, 1u);
  EXPECT_EQ(d.tuples(), 7u);
  EXPECT_EQ(d.chunks(), 3u);
}

TEST(Driver, VirtualClockTickBoundsChunkSpan) {
  std::vector<Chunk> chunks;
  Driver d{{1000, /*tick_ms=*/500}, [&](Chunk&& c) {
             chunks.push_back(std::move(c));
           }};
  d.push("A", Tuple{0, {Value{1}}});
  d.push("A", Tuple{499, {Value{2}}});  // same tick
  d.push("A", Tuple{500, {Value{3}}});  // next tick: flush first chunk
  d.push("B", Tuple{900, {Value{4}}});
  d.finish();
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].tuples, 2u);
  EXPECT_EQ(chunks[0].first_ts, 0);
  EXPECT_EQ(chunks[0].last_ts, 499);
  EXPECT_EQ(chunks[1].first_ts, 500);
  EXPECT_EQ(chunks[1].last_ts, 900);
}

TEST(Driver, OutOfOrderTraceThrowsNamingStreamAndTimestamps) {
  Driver d{{100, 0}, [](Chunk&&) {}};
  d.push("A", Tuple{10, {Value{1}}});
  d.push("B", Tuple{10, {Value{1}}});  // equal ts across streams: fine
  try {
    d.push("B", Tuple{9, {Value{1}}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("B"), std::string::npos);
    EXPECT_NE(msg.find("9"), std::string::npos);
    EXPECT_NE(msg.find("10"), std::string::npos);
  }
}

TEST(Driver, EmptyTraceEmitsNothing) {
  std::size_t calls = 0;
  Driver d{{8, 1000}, [&](Chunk&&) { ++calls; }};
  d.finish();
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(d.chunks(), 0u);
}

}  // namespace
}  // namespace cosmos::runtime
