#include "sim/cost_model.h"

#include <algorithm>

namespace cosmos::sim {

CostModel::CostModel(const net::Topology& topo,
                     const net::Deployment& deployment)
    : topo_(&topo), deployment_(&deployment) {
  for (const NodeId s : deployment.sources) {
    spt_.emplace(s, net::dijkstra(topo, s));
  }
}

CostModel::Breakdown CostModel::pairwise_cost(
    const std::unordered_map<QueryId, NodeId>& placement,
    const std::unordered_map<QueryId, query::InterestProfile>& profiles,
    const query::SubstreamSpace& space) const {
  Breakdown out;
  std::vector<std::vector<NodeId>> subscribers(space.size());
  for (const auto& [qid, host] : placement) {
    const auto pit = profiles.find(qid);
    if (pit == profiles.end()) continue;
    for (const std::size_t bit : pit->second.interest.set_bits()) {
      subscribers[bit].push_back(host);
    }
    const NodeId proxy = pit->second.proxy;
    if (proxy.valid() && proxy != host && pit->second.output_rate > 0) {
      out.result_cost += pit->second.output_rate *
                         deployment_->latencies.latency(host, proxy);
    }
  }
  for (std::size_t s = 0; s < space.size(); ++s) {
    auto& subs = subscribers[s];
    if (subs.empty()) continue;
    std::sort(subs.begin(), subs.end());
    subs.erase(std::unique(subs.begin(), subs.end()), subs.end());
    const SubstreamId sid{static_cast<SubstreamId::value_type>(s)};
    const NodeId origin = space.origin(sid);
    for (const NodeId proc : subs) {
      out.source_cost +=
          space.rate(sid) * deployment_->latencies.latency(origin, proc);
    }
  }
  return out;
}

CostModel::Breakdown CostModel::communication_cost(
    const std::unordered_map<QueryId, NodeId>& placement,
    const std::unordered_map<QueryId, query::InterestProfile>& profiles,
    const query::SubstreamSpace& space) const {
  Breakdown out;

  // Subscriber processors per substream.
  std::vector<std::vector<NodeId>> subscribers(space.size());
  for (const auto& [qid, host] : placement) {
    const auto pit = profiles.find(qid);
    if (pit == profiles.end()) continue;
    for (const std::size_t bit : pit->second.interest.set_bits()) {
      subscribers[bit].push_back(host);
    }
    // Result unicast host -> proxy (free when local).
    const NodeId proxy = pit->second.proxy;
    if (proxy.valid() && proxy != host && pit->second.output_rate > 0) {
      out.result_cost += pit->second.output_rate *
                         deployment_->latencies.latency(host, proxy);
    }
  }

  // Shared multicast: union of SPT paths from the source to all subscriber
  // processors; each link carries the substream once.
  std::vector<std::uint32_t> visited_mark(topo_->node_count(), 0);
  std::uint32_t epoch = 0;
  for (std::size_t s = 0; s < space.size(); ++s) {
    auto& subs = subscribers[s];
    if (subs.empty()) continue;
    std::sort(subs.begin(), subs.end());
    subs.erase(std::unique(subs.begin(), subs.end()), subs.end());

    const SubstreamId sid{static_cast<SubstreamId::value_type>(s)};
    const NodeId origin = space.origin(sid);
    const auto& tree = spt_.at(origin);
    ++epoch;
    visited_mark[origin.value()] = epoch;
    double path_latency = 0.0;
    for (const NodeId sub : subs) {
      // Walk the predecessor chain until we hit an already-counted node.
      NodeId cur = sub;
      while (visited_mark[cur.value()] != epoch) {
        visited_mark[cur.value()] = epoch;
        const NodeId prev = tree.pred[cur.value()];
        if (!prev.valid()) break;  // unreachable or the origin itself
        // Link latency = dist difference along the tree.
        path_latency +=
            tree.dist[cur.value()] - tree.dist[prev.value()];
        cur = prev;
      }
    }
    out.source_cost += space.rate(sid) * path_latency;
  }
  return out;
}

}  // namespace cosmos::sim
