#include "runtime/driver.h"

#include <stdexcept>
#include <utility>

#include "common/clock.h"

namespace cosmos::runtime {

Driver::Driver(Options options, Sink sink)
    : options_(options), sink_(std::move(sink)) {
  if (!sink_) throw std::invalid_argument{"Driver: null sink"};
  if (options_.batch_size == 0) options_.batch_size = 1;
}

void Driver::push(const std::string& stream, const stream::Tuple& t) {
  if (t.ts < last_ts_) {
    throw std::invalid_argument{
        "Driver: out-of-order trace event on " + stream + ": ts " +
        std::to_string(t.ts) + " after global ts " + std::to_string(last_ts_)};
  }
  last_ts_ = t.ts;
  if (!open_.runs.empty() && options_.tick_ms > 0 &&
      t.ts - open_.first_ts >= options_.tick_ms) {
    flush();  // virtual-clock tick: the chunk may not span further
  }
  if (open_.runs.empty()) {
    open_.first_ts = t.ts;
    open_.ingest_ns = now_ns();
  }
  if (open_.runs.empty() || open_.runs.back().stream() != stream) {
    open_.runs.emplace_back(stream);
  }
  open_.runs.back().push_back(t);
  open_.last_ts = t.ts;
  ++open_.tuples;
  ++tuples_;
  if (open_.tuples >= options_.batch_size) flush();
}

void Driver::finish() { flush(); }

void Driver::flush() {
  if (open_.runs.empty()) return;
  ++chunks_;
  sink_(std::exchange(open_, Chunk{}));
}

void Driver::replay(const std::vector<TraceEvent>& events, Options options,
                    const Sink& sink) {
  Driver driver{options, sink};
  for (const auto& ev : events) driver.push(ev.stream, ev.tuple);
  driver.finish();
}

}  // namespace cosmos::runtime
