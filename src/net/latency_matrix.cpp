#include "net/latency_matrix.h"

#include <limits>
#include <stdexcept>

#include "net/shortest_paths.h"

namespace cosmos::net {

LatencyMatrix::LatencyMatrix(const Topology& topo,
                             const std::vector<NodeId>& members)
    : members_(members) {
  index_.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].value() >= topo.node_count()) {
      throw std::invalid_argument{"LatencyMatrix: member out of range"};
    }
    if (!index_.emplace(members_[i], i).second) {
      throw std::invalid_argument{"LatencyMatrix: duplicate member"};
    }
  }
  dist_.resize(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const auto tree = dijkstra(topo, members_[i]);
    dist_[i].resize(members_.size());
    for (std::size_t j = 0; j < members_.size(); ++j) {
      dist_[i][j] = tree.dist[members_[j].value()];
    }
  }
}

LatencyMatrix::LatencyMatrix(std::vector<NodeId> members,
                             const std::vector<double>& dense)
    : members_(std::move(members)) {
  if (dense.size() != members_.size() * members_.size()) {
    throw std::invalid_argument{"LatencyMatrix: dense block is not members^2"};
  }
  index_.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (!index_.emplace(members_[i], i).second) {
      throw std::invalid_argument{"LatencyMatrix: duplicate member"};
    }
  }
  dist_.resize(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    dist_[i].assign(dense.begin() + static_cast<std::ptrdiff_t>(
                                        i * members_.size()),
                    dense.begin() + static_cast<std::ptrdiff_t>(
                                        (i + 1) * members_.size()));
  }
}

std::vector<double> LatencyMatrix::dense() const {
  std::vector<double> out;
  out.reserve(members_.size() * members_.size());
  for (const auto& row : dist_) out.insert(out.end(), row.begin(), row.end());
  return out;
}

double LatencyMatrix::latency(NodeId a, NodeId b) const {
  const auto ia = index_.find(a);
  const auto ib = index_.find(b);
  if (ia == index_.end() || ib == index_.end()) {
    throw std::invalid_argument{"LatencyMatrix: not a member"};
  }
  return dist_[ia->second][ib->second];
}

NodeId LatencyMatrix::median(const std::vector<NodeId>& subset) const {
  if (subset.empty()) {
    throw std::invalid_argument{"LatencyMatrix::median: empty subset"};
  }
  NodeId best = NodeId::invalid();
  double best_total = std::numeric_limits<double>::infinity();
  for (const NodeId candidate : subset) {
    double total = 0.0;
    for (const NodeId other : subset) total += latency(candidate, other);
    if (total < best_total) {
      best_total = total;
      best = candidate;
    }
  }
  return best;
}

}  // namespace cosmos::net
