// Journal round-trip: everything the Writer appends must come back from
// recover() — meta, registrations, engine states, the commit cut, the
// whole-chunk execute prefix, summed delivered floors — and the segment
// lifecycle (roll on checkpoint, abort, pruning, continue_at) must behave
// as docs/durability.md describes. Corruption handling has its own suite
// (journal_corruption_test.cpp).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "journal/journal.h"
#include "wire/codec.h"
#include "wire/messages.h"

namespace cosmos::journal {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/cosmos_journal_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
};

Meta test_meta() {
  Meta m;
  m.batch_size = 16;
  m.tick_ms = 60'000;
  m.worker_shards = 2;
  m.peer_links = true;
  m.endpoints = {"unix:/tmp/w0.sock", "unix:/tmp/w1.sock"};
  return m;
}

runtime::TupleBatch small_batch(const std::string& stream,
                                stream::Timestamp ts) {
  runtime::TupleBatch batch{stream};
  stream::Tuple t;
  t.ts = ts;
  t.values.push_back(stream::Value{std::int64_t{42}});
  t.values.push_back(stream::Value{std::string{"abc"}});
  batch.push_back(std::move(t));
  return batch;
}

wire::ExecuteMsg make_exec(std::uint32_t engine, std::uint64_t seq,
                           stream::Timestamp ts) {
  wire::ExecuteMsg exec;
  exec.engine = NodeId{engine};
  exec.batch = small_batch("S" + std::to_string(engine), ts);
  exec.ingest_ns = 1'000 + seq;
  exec.seq = seq;
  return exec;
}

wire::Frame reg_frame(const std::string& stream) {
  wire::RegisterStreamMsg m;
  m.stream = stream;
  m.publisher = NodeId{1};
  return wire::encode_register_stream(m);
}

std::size_t segment_count(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".cjl") ++n;
  }
  return n;
}

TEST_F(JournalTest, FreshRunRoundTrips) {
  Writer::Options opts;
  {
    auto w = Writer::create(dir_, test_meta(), opts);
    w->registration(reg_frame("S3"));
    w->registration(reg_frame("S4"));
    // Initial (zero-engine) commit, then a post-commit tail: two whole
    // chunks of executes and one delivered floor.
    CheckpointCommit c;
    c.checkpoint_id = 1;
    w->commit_checkpoint(c);
    w->execute(make_exec(3, 0, 10));
    w->execute(make_exec(4, 0, 10));
    w->chunk_routed({0, 7, 120'000});
    w->execute(make_exec(3, 1, 20));
    w->chunk_routed({1, 13, 180'000});
    w->delivered({{"q.0", 4}, {"q.1", 1}});
    w->delivered({{"q.0", 2}});
    EXPECT_GT(w->bytes_written(), 0u);
    EXPECT_EQ(w->segment_seq(), 1u);
  }

  const auto rec = recover(dir_);
  EXPECT_EQ(rec.meta.batch_size, 16u);
  EXPECT_EQ(rec.meta.tick_ms, 60'000);
  EXPECT_EQ(rec.meta.worker_shards, 2u);
  EXPECT_TRUE(rec.meta.peer_links);
  ASSERT_EQ(rec.meta.endpoints.size(), 2u);
  EXPECT_EQ(rec.meta.endpoints[1], "unix:/tmp/w1.sock");

  ASSERT_EQ(rec.registrations.size(), 2u);
  EXPECT_EQ(rec.registrations[0].type, wire::FrameType::kRegisterStream);
  EXPECT_EQ(wire::decode_register_stream(rec.registrations[0]).stream, "S3");
  EXPECT_EQ(wire::decode_register_stream(rec.registrations[1]).stream, "S4");

  EXPECT_EQ(rec.checkpoint.checkpoint_id, 1u);
  EXPECT_TRUE(rec.engines.empty());

  ASSERT_EQ(rec.executes.size(), 3u);
  EXPECT_EQ(rec.executes[0].engine.value(), 3u);
  EXPECT_EQ(rec.executes[0].seq, 0u);
  EXPECT_EQ(rec.executes[2].seq, 1u);
  EXPECT_EQ(rec.executes[2].batch.size(), 1u);
  EXPECT_EQ(rec.executes[2].batch.ts(0), 20);

  // Delivered floors sum per stream, in stream order.
  ASSERT_EQ(rec.delivered.size(), 2u);
  EXPECT_EQ(rec.delivered[0].stream, "q.0");
  EXPECT_EQ(rec.delivered[0].count, 6u);
  EXPECT_EQ(rec.delivered[1].count, 1u);

  // Resume cut advanced through the last marker.
  EXPECT_EQ(rec.resume_events, 13u);
  EXPECT_EQ(rec.resume_chunk, 2u);
  EXPECT_TRUE(rec.has_watermark);
  EXPECT_EQ(rec.watermark, 180'000);
  EXPECT_FALSE(rec.torn_tail);
  EXPECT_EQ(rec.records_dropped, 0u);
  EXPECT_EQ(rec.segments_rolled_back, 0u);
  EXPECT_EQ(rec.next_segment, 2u);
}

TEST_F(JournalTest, PartialChunkExecutesAreDiscarded) {
  {
    auto w = Writer::create(dir_, test_meta(), Writer::Options{});
    w->commit_checkpoint({});
    w->execute(make_exec(3, 0, 10));
    w->chunk_routed({0, 5, 60'000});
    // Chunk 1's executes journaled, but the crash lands before its marker:
    // recovery must regenerate them by re-ingesting from event 5.
    w->execute(make_exec(3, 1, 20));
    w->execute(make_exec(4, 0, 20));
  }
  const auto rec = recover(dir_);
  ASSERT_EQ(rec.executes.size(), 1u);
  EXPECT_EQ(rec.executes[0].seq, 0u);
  EXPECT_EQ(rec.resume_events, 5u);
  EXPECT_EQ(rec.resume_chunk, 1u);
  EXPECT_EQ(rec.records_dropped, 2u);
}

TEST_F(JournalTest, CheckpointRollsASelfContainedSegment) {
  {
    auto w = Writer::create(dir_, test_meta(), Writer::Options{});
    w->registration(reg_frame("S3"));
    w->commit_checkpoint({});
    w->execute(make_exec(3, 0, 10));
    w->chunk_routed({0, 5, 60'000});

    // Periodic cut: rolls segment 2 with the cached registration replayed
    // into its preamble and one engine state.
    w->begin_checkpoint();
    EngineState es;
    es.engine = NodeId{3};
    es.worker = 1;
    es.exec_seq = 1;
    w->engine_state(es);
    CheckpointCommit c;
    c.checkpoint_id = 2;
    c.events_consumed = 5;
    c.chunk_index = 1;
    c.watermark = 60'000;
    c.has_watermark = true;
    c.engine_states = 1;
    w->commit_checkpoint(c);
    EXPECT_EQ(w->segment_seq(), 2u);
    w->execute(make_exec(3, 1, 70));
    w->chunk_routed({1, 9, 120'000});
  }

  const auto rec = recover(dir_);
  EXPECT_EQ(rec.checkpoint.checkpoint_id, 2u);
  ASSERT_EQ(rec.registrations.size(), 1u);  // replayed into the new preamble
  ASSERT_EQ(rec.engines.size(), 1u);
  EXPECT_EQ(rec.engines[0].engine.value(), 3u);
  EXPECT_EQ(rec.engines[0].worker, 1u);
  EXPECT_EQ(rec.engines[0].exec_seq, 1u);
  ASSERT_EQ(rec.executes.size(), 1u);  // only the new epoch's tail
  EXPECT_EQ(rec.executes[0].seq, 1u);
  EXPECT_EQ(rec.resume_events, 9u);
  EXPECT_EQ(rec.resume_chunk, 2u);
  EXPECT_EQ(rec.next_segment, 3u);
}

TEST_F(JournalTest, AbortedCheckpointFallsBackToActiveSegment) {
  {
    auto w = Writer::create(dir_, test_meta(), Writer::Options{});
    w->commit_checkpoint({});
    w->execute(make_exec(3, 0, 10));
    w->chunk_routed({0, 5, 60'000});
    w->begin_checkpoint();
    EngineState es;
    es.engine = NodeId{3};
    w->engine_state(es);
    w->abort_checkpoint();  // recovery raced the cut
    // Appends resume into segment 1.
    w->execute(make_exec(3, 1, 70));
    w->chunk_routed({1, 9, 120'000});
    EXPECT_EQ(w->segment_seq(), 1u);
  }
  EXPECT_EQ(segment_count(dir_), 1u);  // pending segment unlinked
  const auto rec = recover(dir_);
  EXPECT_EQ(rec.executes.size(), 2u);
  EXPECT_EQ(rec.resume_events, 9u);
}

TEST_F(JournalTest, RetentionPrunesOldSegments) {
  Writer::Options opts;
  opts.retain_segments = 2;
  {
    auto w = Writer::create(dir_, test_meta(), opts);
    w->commit_checkpoint({});
    for (std::uint64_t ck = 2; ck <= 5; ++ck) {
      w->execute(make_exec(3, ck - 2, 10));
      w->chunk_routed({ck - 2, 2 * (ck - 1), 60'000});
      w->begin_checkpoint();
      CheckpointCommit c;
      c.checkpoint_id = ck;
      c.events_consumed = 2 * (ck - 1);
      c.chunk_index = ck - 1;
      w->commit_checkpoint(c);
    }
    EXPECT_EQ(w->segment_seq(), 5u);
  }
  // Only the newest two segments survive; recovery reads the newest.
  EXPECT_EQ(segment_count(dir_), 2u);
  const auto rec = recover(dir_);
  EXPECT_EQ(rec.checkpoint.checkpoint_id, 5u);
  EXPECT_EQ(rec.next_segment, 6u);
}

TEST_F(JournalTest, CreateWipesAPreviousRunsSegments) {
  {
    auto w = Writer::create(dir_, test_meta(), Writer::Options{});
    w->commit_checkpoint({});
  }
  {
    auto w = Writer::create(dir_, test_meta(), Writer::Options{});
    CheckpointCommit c;
    c.checkpoint_id = 7;
    w->commit_checkpoint(c);
  }
  EXPECT_EQ(segment_count(dir_), 1u);
  EXPECT_EQ(recover(dir_).checkpoint.checkpoint_id, 7u);
}

TEST_F(JournalTest, ContinueAtExtendsTheChain) {
  {
    auto w = Writer::create(dir_, test_meta(), Writer::Options{});
    w->registration(reg_frame("S3"));
    w->commit_checkpoint({});
    w->execute(make_exec(3, 0, 10));
    w->chunk_routed({0, 5, 60'000});
  }
  const auto first = recover(dir_);
  EXPECT_EQ(first.next_segment, 2u);

  // The resumed run re-journals registrations, seals its resume cut, then
  // journals a fresh tail — like resume_replicate does.
  {
    auto w = Writer::continue_at(dir_, first.next_segment, test_meta(),
                                 Writer::Options{});
    for (const auto& f : first.registrations) w->registration(f);
    EngineState es;
    es.engine = NodeId{3};
    es.exec_seq = 1;
    w->engine_state(es);
    CheckpointCommit c;
    c.checkpoint_id = 2;
    c.events_consumed = 5;
    c.chunk_index = 1;
    c.engine_states = 1;
    w->commit_checkpoint(c);
    w->execute(make_exec(3, 1, 70));
    w->chunk_routed({1, 9, 120'000});
  }
  const auto rec = recover(dir_);
  EXPECT_EQ(rec.checkpoint.checkpoint_id, 2u);
  ASSERT_EQ(rec.engines.size(), 1u);
  EXPECT_EQ(rec.resume_events, 9u);
  EXPECT_EQ(rec.segments_rolled_back, 0u);
  EXPECT_EQ(rec.next_segment, 3u);
}

TEST_F(JournalTest, FsyncPolicyCounts) {
  auto count_with = [&](Fsync f) {
    std::filesystem::remove_all(dir_);
    Writer::Options opts;
    opts.fsync = f;
    auto w = Writer::create(dir_, test_meta(), opts);
    w->commit_checkpoint({});
    w->execute(make_exec(3, 0, 10));
    w->chunk_routed({0, 5, 60'000});
    return w->fsyncs();
  };
  const auto never = count_with(Fsync::kNever);
  const auto commit = count_with(Fsync::kCommit);
  const auto chunk = count_with(Fsync::kChunk);
  const auto every = count_with(Fsync::kEvery);
  EXPECT_EQ(never, 0u);
  EXPECT_GT(commit, never);
  EXPECT_GT(chunk, commit);
  EXPECT_GT(every, chunk);
}

}  // namespace
}  // namespace cosmos::journal
