#include "sim/sensor_trace.h"

#include <algorithm>
#include <cmath>

namespace cosmos::sim {

stream::Schema sensor_schema() {
  return stream::Schema{{{"snowHeight", stream::ValueType::kDouble},
                         {"temperature", stream::ValueType::kDouble},
                         {"stationId", stream::ValueType::kInt},
                         {"timestamp", stream::ValueType::kInt}}};
}

std::string station_stream_name(std::size_t station) {
  return "Station" + std::to_string(station + 1);
}

std::vector<SensorReading> make_sensor_trace(const SensorTraceParams& params,
                                             Rng& rng) {
  std::vector<SensorReading> out;
  out.reserve(params.stations * params.readings_per_station);
  std::vector<double> snow(params.stations);
  for (auto& s : snow) s = params.snow_base + rng.next_double(-5.0, 5.0);

  for (std::size_t step = 0; step < params.readings_per_station; ++step) {
    const stream::Timestamp ts =
        static_cast<stream::Timestamp>(step) * params.period_ms;
    for (std::size_t st = 0; st < params.stations; ++st) {
      // Bounded random walk keeps heights realistic.
      snow[st] = std::max(
          0.0, snow[st] + rng.next_double(-params.snow_drift,
                                          params.snow_drift));
      const double temp =
          params.temp_base + 3.0 * std::sin(0.05 * static_cast<double>(step)) +
          rng.next_double(-1.0, 1.0);
      stream::Tuple t;
      t.ts = ts;
      t.values = {stream::Value{snow[st]}, stream::Value{temp},
                  stream::Value{static_cast<std::int64_t>(st)},
                  stream::Value{static_cast<std::int64_t>(ts)}};
      out.push_back({st, std::move(t)});
    }
  }
  return out;
}

}  // namespace cosmos::sim
