#include "query/query_spec.h"

#include <stdexcept>
#include <unordered_set>

namespace cosmos::query {

const SourceRef* QuerySpec::source_by_alias(
    const std::string& alias) const noexcept {
  for (const auto& s : sources) {
    if (s.alias == alias) return &s;
  }
  return nullptr;
}

std::string QuerySpec::to_cql() const {
  std::string out = "SELECT ";
  if (select_all) {
    out += "*";
  } else {
    for (std::size_t i = 0; i < select.size(); ++i) {
      if (i != 0) out += ", ";
      out += select[i].to_string();
    }
  }
  out += " FROM ";
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (i != 0) out += ", ";
    out += sources[i].stream + " " + sources[i].window.to_string() + " " +
           sources[i].alias;
  }
  if (where != nullptr &&
      where->kind() != stream::Predicate::Kind::kTrue) {
    out += " WHERE " + where->to_string();
  }
  return out;
}

void validate(const QuerySpec& q) {
  if (q.sources.empty()) {
    throw std::invalid_argument{"QuerySpec: no sources"};
  }
  std::unordered_set<std::string> aliases;
  for (const auto& s : q.sources) {
    if (s.alias.empty()) {
      throw std::invalid_argument{"QuerySpec: empty alias"};
    }
    if (!aliases.insert(s.alias).second) {
      throw std::invalid_argument{"QuerySpec: duplicate alias " + s.alias};
    }
    if (s.window.kind == stream::WindowSpec::Kind::kRange &&
        s.window.range_ms <= 0) {
      throw std::invalid_argument{"QuerySpec: non-positive range window"};
    }
  }
  if (!q.select_all && q.select.empty()) {
    throw std::invalid_argument{"QuerySpec: empty select list"};
  }
  for (const auto& item : q.select) {
    if (!aliases.contains(item.alias)) {
      throw std::invalid_argument{"QuerySpec: select references unknown alias " +
                                  item.alias};
    }
  }
  if (q.where == nullptr) {
    throw std::invalid_argument{"QuerySpec: null predicate"};
  }
}

}  // namespace cosmos::query
