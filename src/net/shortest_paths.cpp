#include "net/shortest_paths.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace cosmos::net {

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  if (target.value() >= dist.size() ||
      dist[target.value()] == std::numeric_limits<double>::infinity()) {
    return {};
  }
  std::vector<NodeId> path;
  for (NodeId cur = target; cur.valid(); cur = pred[cur.value()]) {
    path.push_back(cur);
    if (cur == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree dijkstra(const Topology& topo, NodeId source) {
  const std::size_t n = topo.node_count();
  if (source.value() >= n) {
    throw std::invalid_argument{"dijkstra: source out of range"};
  }
  ShortestPathTree tree;
  tree.source = source;
  tree.dist.assign(n, std::numeric_limits<double>::infinity());
  tree.pred.assign(n, NodeId::invalid());

  using Entry = std::pair<double, NodeId::value_type>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  tree.dist[source.value()] = 0.0;
  heap.emplace(0.0, source.value());

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > tree.dist[u]) continue;  // stale entry
    for (const Edge& e : topo.neighbors(NodeId{u})) {
      const double nd = d + e.latency_ms;
      if (nd < tree.dist[e.to.value()]) {
        tree.dist[e.to.value()] = nd;
        tree.pred[e.to.value()] = NodeId{u};
        heap.emplace(nd, e.to.value());
      }
    }
  }
  return tree;
}

}  // namespace cosmos::net
