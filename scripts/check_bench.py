#!/usr/bin/env python3
"""Gate bench regressions against a committed baseline.

Usage:
    check_bench.py CURRENT.json BASELINE.json --metrics m1,m2 [--tolerance 0.2]
    check_bench.py CURRENT.json BASELINE.json --fallback PREV.json --metrics ...
    check_bench.py --self-test

Both files are the flat {"metric": number} JSON written by
bench::write_bench_json. For each named metric the current value must be at
least (1 - tolerance) x the baseline value (higher = better; gate on
ratio-style metrics such as speedups, which are stable across hardware,
rather than absolute tuples/s).

Histogram-percentile metrics — names containing `_p50_us`, `_p95_us`, or
`_p99_us` (the e2e latency percentiles the benches emit) — are
lower-is-better: the current value must be at most (1 + tolerance) x the
reference, a ceiling instead of a floor.

--fallback names the bench JSON uploaded by the *previous* CI run (same
runner fleet, hence comparable hardware). When a gated metric — or the
whole baseline file — is newly added and has no committed baseline entry
yet, the metric is gated against the fallback instead; if the fallback
lacks it too (first introduction), a clear "recording only" note is
printed and the gate passes instead of exiting 2. Hardware-dependent
absolutes (e.g. tuples per CPU-second) are gated exclusively this way: no
committed baseline entry, previous run as the reference.

Exit codes: 0 = all gated metrics pass, 1 = a metric regressed or (absent
--fallback) a metric key is missing from either file, 2 = a file is
unreadable or malformed. Every failure mode prints a one-line diagnosis —
never a bare traceback.
"""
import argparse
import json
import numbers
import sys


def load_metrics(path, role):
    """Reads a flat {"metric": number} JSON file; raises SystemExit(2) with
    a clear message on unreadable files, bad JSON, or non-numeric values."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        raise SystemExit(f"!! cannot read {role} file {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        raise SystemExit(f"!! {role} file {path} is not valid JSON: {e}")
    if not isinstance(data, dict):
        raise SystemExit(f"!! {role} file {path}: expected a flat JSON "
                         f"object of metrics, got {type(data).__name__}")
    for name, value in data.items():
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            raise SystemExit(f"!! {role} file {path}: metric {name!r} is "
                             f"not a number (got {value!r})")
    return data


#: Substrings marking a latency-percentile metric (lower is better).
LATENCY_MARKERS = ("_p50_us", "_p95_us", "_p99_us")


def is_latency_metric(name):
    return any(marker in name for marker in LATENCY_MARKERS)


def check(current, baseline, metrics, tolerance, fallback=None,
          strict_missing=True):
    """Returns the list of failure messages (empty = gate passes).

    `baseline` may be None (unreadable baseline file in fallback mode).
    `fallback` is the previous run's metrics (or None). With
    strict_missing=False (fallback mode), a metric absent from both
    references is reported as newly introduced and does not fail.
    """
    failures = []
    for name in metrics:
        name = name.strip()
        ref = None
        source = "baseline"
        if baseline is not None and name in baseline:
            ref = baseline[name]
        elif fallback is not None and name in fallback:
            ref = fallback[name]
            source = "previous-run artifact"
        if ref is None:
            if strict_missing:
                msg = (f"{name}: missing from baseline (typo in --metrics, "
                       f"or stale baseline?)")
                print(f"!! {msg}")
                failures.append(msg)
            elif name not in current:
                # Absent everywhere: a typo'd --metrics name or a metric
                # the bench stopped emitting must keep failing loudly even
                # in fallback mode.
                msg = (f"{name}: missing from current results AND every "
                       f"reference (typo in --metrics, or the bench no "
                       f"longer emits it?)")
                print(f"!! {msg}")
                failures.append(msg)
            else:
                print(f"?? {name}: newly introduced — no committed baseline "
                      f"and no previous-run artifact; recording only "
                      f"(current={current[name]:.4g})")
            continue
        if name not in current:
            msg = f"{name}: missing from current results"
            print(f"!! {msg}")
            failures.append(msg)
            continue
        if is_latency_metric(name):
            # Latency percentiles: lower is better, gate on a ceiling.
            ceiling = (1.0 + tolerance) * ref
            ok = current[name] <= ceiling
            print(f"{'ok' if ok else '!!'} {name}: "
                  f"current={current[name]:.4g} {source}={ref:.4g} "
                  f"ceiling={ceiling:.4g} (latency: lower is better)")
            if not ok:
                failures.append(f"{name}: {current[name]:.4g} > ceiling "
                                f"{ceiling:.4g} (vs {source})")
            continue
        floor = (1.0 - tolerance) * ref
        ok = current[name] >= floor
        print(f"{'ok' if ok else '!!'} {name}: current={current[name]:.4g} "
              f"{source}={ref:.4g} floor={floor:.4g}")
        if not ok:
            failures.append(f"{name}: {current[name]:.4g} < floor "
                            f"{floor:.4g} (vs {source})")
    return failures


def self_test():
    """Unit-style checks of the gate logic and every failure mode, run by
    CI so a broken gate script cannot silently pass benches."""
    import os
    import subprocess
    import tempfile

    script = os.path.abspath(__file__)

    def run(args):
        return subprocess.run([sys.executable, script, *args],
                              capture_output=True, text=True)

    failures = []
    cases = []

    def expect(label, proc, code, needle=""):
        cases.append(label)
        out = proc.stdout + proc.stderr
        if proc.returncode != code:
            failures.append(f"{label}: exit {proc.returncode}, want {code}\n"
                            f"{out}")
        elif needle and needle not in out:
            failures.append(f"{label}: output lacks {needle!r}\n{out}")
        else:
            print(f"ok {label}")

    with tempfile.TemporaryDirectory() as tmp:
        def write(name, content):
            path = os.path.join(tmp, name)
            with open(path, "w") as f:
                f.write(content)
            return path

        good = write("good.json", '{"speedup": 2.0, "identical": 1}')
        fast = write("fast.json", '{"speedup": 3.0, "identical": 1}')
        slow = write("slow.json", '{"speedup": 1.0, "identical": 1}')
        sparse = write("sparse.json", '{"identical": 1}')
        broken = write("broken.json", '{"speedup": ')
        listy = write("listy.json", '[1, 2]')
        texty = write("texty.json", '{"speedup": "fast"}')

        expect("pass within tolerance", run([good, fast, "--metrics",
                                             "speedup", "--tolerance",
                                             "0.5"]), 0, "ok speedup")
        expect("regression fails", run([slow, good, "--metrics", "speedup",
                                        "--tolerance", "0.2"]), 1,
               "!! speedup")
        expect("metric missing from baseline", run([good, sparse,
                                                    "--metrics", "speedup"]),
               1, "missing from baseline")
        expect("metric missing from current", run([sparse, good,
                                                   "--metrics", "speedup"]),
               1, "missing from current")
        expect("baseline file missing", run([good,
                                             os.path.join(tmp, "no.json"),
                                             "--metrics", "speedup"]), 2,
               "cannot read baseline")
        expect("malformed json", run([good, broken, "--metrics", "speedup"]),
               2, "not valid JSON")
        expect("non-object json", run([good, listy, "--metrics", "speedup"]),
               2, "expected a flat JSON object")
        expect("non-numeric metric", run([good, texty, "--metrics",
                                          "speedup"]), 2, "not a number")
        expect("multiple metrics", run([good, good, "--metrics",
                                        "speedup,identical"]), 0,
               "ok identical")

        # Latency-percentile keys (lower is better): a faster current run
        # passes, a slower one beyond the ceiling fails, and the ceiling
        # honors --tolerance.
        lat_ref = write("lat_ref.json",
                        '{"e2e_p50_us_run": 100.0, "e2e_p99_us_run": 400.0}')
        lat_fast = write("lat_fast.json",
                         '{"e2e_p50_us_run": 80.0, "e2e_p99_us_run": 300.0}')
        lat_slow = write("lat_slow.json",
                         '{"e2e_p50_us_run": 150.0, "e2e_p99_us_run": 390.0}')
        expect("latency improvement passes",
               run([lat_fast, lat_ref, "--metrics",
                    "e2e_p50_us_run,e2e_p99_us_run", "--tolerance", "0.2"]),
               0, "lower is better")
        expect("latency regression fails",
               run([lat_slow, lat_ref, "--metrics", "e2e_p50_us_run",
                    "--tolerance", "0.2"]), 1, "!! e2e_p50_us_run")
        expect("latency within tolerance passes",
               run([lat_slow, lat_ref, "--metrics", "e2e_p99_us_run",
                    "--tolerance", "0.2"]), 0, "ok e2e_p99_us_run")
        expect("latency key gates via fallback",
               run([lat_slow, sparse, "--fallback", lat_ref, "--metrics",
                    "e2e_p50_us_run", "--tolerance", "0.2"]), 1,
               "previous-run artifact")

        # --fallback: newly added metric keys gate against the previous
        # run's artifact; first introductions record instead of failing.
        prev = write("prev.json", '{"speedup": 2.0, "fresh_metric": 10.0}')
        cur2 = write("cur2.json",
                     '{"speedup": 2.0, "identical": 1, "fresh_metric": 9.0}')
        slow2 = write("slow2.json",
                      '{"speedup": 2.0, "identical": 1, "fresh_metric": 2.0}')
        expect("fallback gates newly added key",
               run([cur2, good, "--fallback", prev, "--metrics",
                    "speedup,fresh_metric", "--tolerance", "0.2"]), 0,
               "previous-run artifact=10")
        expect("fallback catches regression on new key",
               run([slow2, good, "--fallback", prev, "--metrics",
                    "fresh_metric", "--tolerance", "0.2"]), 1,
               "previous-run artifact")
        expect("first introduction records only",
               run([cur2, good, "--fallback",
                    os.path.join(tmp, "no-prev.json"), "--metrics",
                    "speedup,fresh_metric"]), 0, "newly introduced")
        expect("typo'd metric still fails in fallback mode",
               run([cur2, good, "--fallback",
                    os.path.join(tmp, "no-prev.json"), "--metrics",
                    "speedup,typo_metric"]), 1,
               "missing from current results AND every reference")
        expect("missing baseline file with fallback",
               run([cur2, os.path.join(tmp, "no-baseline.json"),
                    "--fallback", prev, "--metrics", "speedup"]), 0,
               "newly added bench")
        expect("missing baseline file without fallback still exits 2",
               run([cur2, os.path.join(tmp, "no-baseline.json"),
                    "--metrics", "speedup"]), 2, "cannot read baseline")

    if failures:
        print("\nself-test FAILED:")
        for f in failures:
            print(f" - {f}")
        return 1
    print(f"self-test passed ({len(cases)} cases)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", nargs="?")
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("--metrics",
                    help="comma-separated metric names to gate on")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional regression (default 0.20)")
    ap.add_argument("--fallback",
                    help="previous-run bench JSON consulted for metrics "
                         "absent from the committed baseline; missing or "
                         "unreadable fallback files are treated as empty")
    ap.add_argument("--self-test", action="store_true",
                    help="run the script's own unit tests and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.current or not args.baseline or not args.metrics:
        ap.error("CURRENT, BASELINE and --metrics are required "
                 "(or use --self-test)")

    current = load_metrics(args.current, "current")
    fallback = None
    if args.fallback:
        try:
            fallback = load_metrics(args.fallback, "fallback")
        except SystemExit as e:
            # The previous run may predate this bench or its artifact may
            # be gone; that must not break the gate.
            print(f"## no usable previous-run artifact ({e.code})")
    try:
        baseline = load_metrics(args.baseline, "baseline")
    except SystemExit:
        if args.fallback is None:
            raise  # legacy strict behavior: unreadable baseline exits 2
        print(f"## baseline {args.baseline} not found — newly added bench, "
              f"gating against the previous-run artifact only")
        baseline = None
    failures = check(current, baseline, args.metrics.split(","),
                     args.tolerance, fallback=fallback,
                     strict_missing=args.fallback is None)
    return 1 if failures else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SystemExit as e:
        # argparse exits 2 on usage errors; our load failures carry a
        # message string — print it and exit 2 so CI logs stay readable.
        if isinstance(e.code, str):
            print(e.code)
            sys.exit(2)
        raise
