// Randomized differential harness: the load-bearing invariant of the whole
// execution stack is that the runtime-backed Cosmos::run() delivers
// byte-identical per-query result sequences to the synchronous push() mode
// — at any shard count, any batch size, and with adaptation on or off.
// The seeded workloads come from tests/support/random_workload.h (shared
// with the multi-process federation differential); each is replayed
// through every configuration in the {1,4,8} shards x {1,64,1024} batch x
// {adapt off, adapt on} grid, diffing the full result logs against push().
//
// On failure the seed and configuration are printed; replay one seed with
//   COSMOS_DIFF_SEED=<seed> ./tests_integration_differential_test
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cosmos/cosmos.h"
#include "obs/trace.h"
#include "support/random_workload.h"

namespace cosmos::middleware {
namespace {

using testsupport::ResultLog;
using testsupport::build_system;
using testsupport::make_workload;

TEST(Differential, RunMatchesPushAcrossShardsBatchesAndAdaptation) {
  // COSMOS_DIFF_SEED replays a single failing workload; default sweeps 20.
  std::uint64_t only_seed = 0;
  if (const char* s = std::getenv("COSMOS_DIFF_SEED")) {
    only_seed = std::strtoull(s, nullptr, 10);
  }

  std::size_t total_results = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    if (only_seed != 0 && seed != only_seed) continue;
    const auto w = make_workload(seed);

    ResultLog push_log;
    {
      auto sys = build_system(w, push_log);
      for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
    }
    for (const auto& [q, lines] : push_log) total_results += lines.size();

    for (const std::size_t shards : {1, 4, 8}) {
      for (const std::size_t batch : {1, 64, 1024}) {
        for (const bool adapt_on : {false, true}) {
          ResultLog run_log;
          auto sys = build_system(w, run_log);
          Cosmos::RunOptions opts;
          opts.shards = shards;
          opts.batch_size = batch;
          opts.queue_capacity = 3;  // small: exercise backpressure
          opts.tick_ms = 20 * 60'000;
          opts.adapt.enabled = adapt_on;
          // Aggressive knobs so adaptation actually migrates mid-trace.
          opts.adapt.adapt_every_ms = 15 * 60'000;
          opts.adapt.imbalance_threshold = 1.01;
          opts.adapt.ewma_alpha = 1.0;
          opts.adapt.min_gain_seconds = 0.0;
          opts.adapt.max_moves_per_round = 8;
          const auto report = sys->run(w.events, opts);
          EXPECT_EQ(report.tuples, w.events.size());
          ASSERT_EQ(run_log, push_log)
              << "differential mismatch: seed=" << seed
              << " shards=" << shards << " batch=" << batch
              << " adapt=" << (adapt_on ? "on" : "off")
              << "  (replay: COSMOS_DIFF_SEED=" << seed << ")";
        }
      }
    }
  }
  // The sweep must exercise real result flow, not vacuous empty logs.
  EXPECT_GT(total_results, 0u);
}

TEST(Differential, TracingAndLatencyRecordingDoNotPerturbResults) {
  // Observability must be a pure observer: with span tracing and the e2e
  // latency histogram live, the result log stays byte-identical to push(),
  // and the run leaves behind a loadable Chrome trace plus a populated
  // latency histogram.
  const auto w = make_workload(3);

  ResultLog push_log;
  {
    auto sys = build_system(w, push_log);
    for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
  }

  const std::string trace_path = ::testing::TempDir() + "diff_trace_" +
                                 std::to_string(::getpid()) + ".json";
  ResultLog run_log;
  auto sys = build_system(w, run_log);
  Cosmos::RunOptions opts;
  opts.shards = 4;
  opts.batch_size = 64;
  opts.tick_ms = 20 * 60'000;
  opts.trace_path = trace_path;
  const auto report = sys->run(w.events, opts);

  EXPECT_EQ(run_log, push_log);
  EXPECT_GT(report.e2e_latency.count, 0u);
  EXPECT_GT(report.e2e_latency.percentile(50.0), 0u);
  ASSERT_NE(report.metrics.histogram("e2e_latency_ns"), nullptr);
  EXPECT_EQ(report.metrics.histogram("e2e_latency_ns")->count,
            report.e2e_latency.count);

  std::ifstream in{trace_path};
  ASSERT_TRUE(in.good()) << trace_path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::remove(trace_path.c_str());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Driver pipeline stages and shard work all have lanes in the trace.
  for (const char* name : {"\"match_wait\"", "\"route\"", "\"dispatch\"",
                           "\"deliver\"", "\"task\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  // Recording stopped with the run: the tracer is disabled again.
  EXPECT_FALSE(obs::Tracer::instance().enabled());
}

}  // namespace
}  // namespace cosmos::middleware
