#include "sim/metrics.h"

#include <cmath>

namespace cosmos::sim {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

std::vector<double> processor_loads(
    const std::unordered_map<QueryId, NodeId>& placement,
    const std::unordered_map<QueryId, query::InterestProfile>& profiles,
    const net::Deployment& deployment) {
  std::unordered_map<NodeId, std::size_t> index;
  for (std::size_t i = 0; i < deployment.processors.size(); ++i) {
    index.emplace(deployment.processors[i], i);
  }
  std::vector<double> loads(deployment.processors.size(), 0.0);
  for (const auto& [q, node] : placement) {
    const auto pit = profiles.find(q);
    const auto nit = index.find(node);
    if (pit != profiles.end() && nit != index.end()) {
      loads[nit->second] += pit->second.load;
    }
  }
  return loads;
}

double load_stddev(
    const std::unordered_map<QueryId, NodeId>& placement,
    const std::unordered_map<QueryId, query::InterestProfile>& profiles,
    const net::Deployment& deployment) {
  const auto loads = processor_loads(placement, profiles, deployment);
  return stddev(loads);
}

}  // namespace cosmos::sim
