// Runtime values carried by stream tuples.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace cosmos::stream {

enum class ValueType { kInt, kDouble, kString };

/// A dynamically-typed scalar. Numeric comparisons are cross-type
/// (int vs double compares numerically); strings only compare to strings.
class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  Value(std::int64_t v) : v_(v) {}          // NOLINT(google-explicit-constructor)
  Value(int v) : v_(std::int64_t{v}) {}     // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}                // NOLINT(google-explicit-constructor)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : v_(std::string{v}) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] ValueType type() const noexcept;
  [[nodiscard]] bool is_numeric() const noexcept {
    return type() != ValueType::kString;
  }

  /// Numeric view; throws std::logic_error for strings.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Three-way comparison; throws std::logic_error on string-vs-numeric.
  [[nodiscard]] int compare(const Value& other) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.compare(b) == 0;
  }

 private:
  std::variant<std::int64_t, double, std::string> v_;
};

}  // namespace cosmos::stream
