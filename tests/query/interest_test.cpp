#include "query/interest.h"

#include <gtest/gtest.h>

namespace cosmos::query {
namespace {

SubstreamSpace small_space() {
  // 4 substreams: two at node 1, two at node 2.
  return SubstreamSpace{{NodeId{1}, NodeId{1}, NodeId{2}, NodeId{2}},
                        {1.0, 2.0, 4.0, 8.0}};
}

TEST(SubstreamSpace, Accessors) {
  const auto s = small_space();
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.origin(SubstreamId{0}), NodeId{1});
  EXPECT_EQ(s.origin(SubstreamId{3}), NodeId{2});
  EXPECT_DOUBLE_EQ(s.rate(SubstreamId{1}), 2.0);
}

TEST(SubstreamSpace, RejectsMalformedInput) {
  EXPECT_THROW(SubstreamSpace({NodeId{1}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(SubstreamSpace({NodeId{1}}, {-1.0}), std::invalid_argument);
}

TEST(SubstreamSpace, SetRate) {
  auto s = small_space();
  s.set_rate(SubstreamId{0}, 10.0);
  EXPECT_DOUBLE_EQ(s.rate(SubstreamId{0}), 10.0);
  EXPECT_THROW(s.set_rate(SubstreamId{0}, -1.0), std::invalid_argument);
}

TEST(InterestProfile, InputRateSumsSelectedRates) {
  const auto s = small_space();
  InterestProfile p;
  p.interest = BitVector{4};
  p.interest.set(1);
  p.interest.set(3);
  EXPECT_DOUBLE_EQ(p.input_rate(s), 10.0);
}

TEST(InterestProfile, OverlapRate) {
  const auto s = small_space();
  InterestProfile a, b;
  a.interest = BitVector{4};
  b.interest = BitVector{4};
  a.interest.set(0);
  a.interest.set(2);
  b.interest.set(2);
  b.interest.set(3);
  EXPECT_DOUBLE_EQ(a.overlap_rate(b, s), 4.0);
  EXPECT_DOUBLE_EQ(b.overlap_rate(a, s), 4.0);  // symmetric
}

TEST(InterestProfile, RateBySourceGroupsByOrigin) {
  const auto s = small_space();
  InterestProfile p;
  p.interest = BitVector{4};
  p.interest.set(0);
  p.interest.set(1);
  p.interest.set(2);
  const auto by_source = p.rate_by_source(s);
  ASSERT_EQ(by_source.size(), 2u);
  EXPECT_EQ(by_source[0].first, NodeId{1});
  EXPECT_DOUBLE_EQ(by_source[0].second, 3.0);
  EXPECT_EQ(by_source[1].first, NodeId{2});
  EXPECT_DOUBLE_EQ(by_source[1].second, 4.0);
}

TEST(InterestProfile, RefreshLoadTracksRates) {
  auto s = small_space();
  InterestProfile p;
  p.interest = BitVector{4};
  p.interest.set(3);
  refresh_load(p, s);
  EXPECT_DOUBLE_EQ(p.load, kLoadPerByteRate * 8.0);
  s.set_rate(SubstreamId{3}, 16.0);
  refresh_load(p, s);
  EXPECT_DOUBLE_EQ(p.load, kLoadPerByteRate * 16.0);
}

}  // namespace
}  // namespace cosmos::query
