#include "coord/coordinator_tree.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cosmos::coord {
namespace {

/// Greedy latency clustering: repeatedly seed a cluster with a random
/// unclustered member and grab its k-1 nearest unclustered peers. A trailing
/// cluster smaller than k is folded into its nearest cluster (respecting the
/// 3k-1 bound, which holds because the remainder is < k).
std::vector<std::vector<std::uint32_t>> cluster_members(
    const std::vector<NodeId>& sites, const net::LatencyMatrix& lat,
    std::size_t k, Rng& rng) {
  const std::size_t n = sites.size();
  std::vector<std::uint32_t> pool(n);
  for (std::uint32_t i = 0; i < n; ++i) pool[i] = i;
  rng.shuffle(pool);

  std::vector<char> used(n, 0);
  std::vector<std::vector<std::uint32_t>> clusters;
  std::size_t remaining = n;
  for (const auto seed : pool) {
    if (used[seed]) continue;
    if (remaining < k && !clusters.empty()) break;  // fold leftovers below
    std::vector<std::uint32_t> cluster{seed};
    used[seed] = 1;
    --remaining;
    // k-1 nearest unclustered members.
    while (cluster.size() < k && remaining > 0) {
      std::uint32_t best = UINT32_MAX;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::uint32_t j = 0; j < n; ++j) {
        if (used[j]) continue;
        const double d = lat.latency(sites[seed], sites[j]);
        if (d < best_d) {
          best_d = d;
          best = j;
        }
      }
      cluster.push_back(best);
      used[best] = 1;
      --remaining;
    }
    clusters.push_back(std::move(cluster));
  }
  // Fold any leftover members into their nearest cluster.
  for (std::uint32_t j = 0; j < n; ++j) {
    if (used[j]) continue;
    std::size_t best_c = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (clusters[c].size() >= 3 * k - 1) continue;
      const double d = lat.latency(sites[clusters[c][0]], sites[j]);
      if (d < best_d) {
        best_d = d;
        best_c = c;
      }
    }
    clusters[best_c].push_back(j);
  }
  return clusters;
}

}  // namespace

CoordinatorTree::CoordinatorTree(const net::Deployment& deployment,
                                 std::size_t k, Rng& rng)
    : k_(k) {
  if (k < 2) throw std::invalid_argument{"CoordinatorTree: k must be >= 2"};
  const auto& processors = deployment.processors;
  if (processors.empty()) {
    throw std::invalid_argument{"CoordinatorTree: no processors"};
  }
  const auto& lat = deployment.latencies;

  // Level 0: each processor is its own cluster.
  std::vector<std::uint32_t> level_nodes;
  for (const NodeId p : processors) {
    TreeNode tn;
    tn.site = p;
    tn.level = 0;
    tn.descendants = {p};
    tn.capability = deployment.capability[p.value()];
    leaf_index_.emplace_back(p, static_cast<std::uint32_t>(nodes_.size()));
    level_nodes.push_back(static_cast<std::uint32_t>(nodes_.size()));
    nodes_.push_back(std::move(tn));
  }
  std::sort(leaf_index_.begin(), leaf_index_.end());

  int level = 0;
  while (level_nodes.size() > 1) {
    ++level;
    std::vector<NodeId> sites(level_nodes.size());
    for (std::size_t i = 0; i < level_nodes.size(); ++i) {
      sites[i] = nodes_[level_nodes[i]].site;
    }
    const auto clusters = cluster_members(sites, lat, k, rng);
    std::vector<std::uint32_t> next_level;
    for (const auto& cluster : clusters) {
      TreeNode tn;
      tn.level = level;
      for (const auto member : cluster) {
        tn.children.push_back(level_nodes[member]);
      }
      // Median site (Section 3.3): minimum total latency to cluster members.
      std::vector<NodeId> member_sites;
      member_sites.reserve(cluster.size());
      for (const auto member : cluster) member_sites.push_back(sites[member]);
      tn.site = lat.median(member_sites);
      for (const auto child : tn.children) {
        tn.capability += nodes_[child].capability;
        tn.descendants.insert(tn.descendants.end(),
                              nodes_[child].descendants.begin(),
                              nodes_[child].descendants.end());
      }
      const auto idx = static_cast<std::uint32_t>(nodes_.size());
      for (const auto child : tn.children) nodes_[child].parent = idx;
      next_level.push_back(idx);
      nodes_.push_back(std::move(tn));
    }
    level_nodes = std::move(next_level);
  }
  root_ = level_nodes.front();

  // Degenerate case: a single processor. Give it a root wrapper so that
  // height >= 1 and the distribution code paths are uniform.
  if (nodes_.size() == 1) {
    TreeNode tn;
    tn.site = nodes_[0].site;
    tn.level = 1;
    tn.children = {0};
    tn.descendants = nodes_[0].descendants;
    tn.capability = nodes_[0].capability;
    nodes_[0].parent = 1;
    nodes_.push_back(std::move(tn));
    root_ = 1;
  }
}

std::uint32_t CoordinatorTree::find_leaf(NodeId node) const noexcept {
  const auto it = std::lower_bound(
      leaf_index_.begin(), leaf_index_.end(),
      std::make_pair(node, std::uint32_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == leaf_index_.end() || it->first != node) return UINT32_MAX;
  return it->second;
}

std::uint32_t CoordinatorTree::leaf_of(NodeId processor) const {
  const auto it = std::lower_bound(
      leaf_index_.begin(), leaf_index_.end(),
      std::make_pair(processor, std::uint32_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == leaf_index_.end() || it->first != processor) {
    throw std::invalid_argument{"CoordinatorTree: not a processor"};
  }
  return it->second;
}

std::vector<std::uint32_t> CoordinatorTree::nodes_at_level(int level) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].level == level) out.push_back(i);
  }
  return out;
}

bool CoordinatorTree::covers(std::uint32_t i, NodeId processor) const {
  const auto& d = nodes_.at(i).descendants;
  return std::find(d.begin(), d.end(), processor) != d.end();
}

}  // namespace cosmos::coord
