// The node half of the federation: a frame-driven execution site hosting a
// slice of the system — a rebuilt broker overlay (for p1 subscription
// matching of the streams it owns), the engines + compiled query plans of
// the units deployed to it, and a local sharded runtime::Runtime executing
// them. One Site serves one driver session; tools/cosmos_noded wraps it in
// a process with a FrameChannel, and tests drive it in-process by handing
// it frames directly.
//
// Threading: handle() is single-caller (the serve thread). Broker
// partitions are only ever touched from handle() — match requests run
// inline there, preserving the single-owner partition discipline — while
// engine work (execute batches, watermarks) is dispatched into the
// runtime's shard queues, each engine pinned to one shard. Result tuples
// cross back via an MpscBuffer and are shipped as kResult frames at the
// end of the handle() call that observed them; a kFlush drains the runtime
// first, so every result precedes the ack on the (FIFO) channel.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/latency_matrix.h"
#include "pubsub/broker_network.h"
#include "query/plan.h"
#include "runtime/queues.h"
#include "runtime/runtime.h"
#include "stream/engine.h"
#include "wire/messages.h"

namespace cosmos::node {

class Site {
 public:
  struct Options {
    std::size_t shards = 1;
    std::size_t queue_capacity = 64;
  };

  explicit Site(Options options);
  ~Site();
  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  /// Handles one inbound frame, appending any frames to send back (in
  /// order) to `out`. Returns false when the session is over (kBye).
  /// Throws wire::Error on protocol violations and std::runtime_error when
  /// a shard worker faulted — the caller reports kError and ends the
  /// session either way.
  bool handle(const wire::Frame& frame, std::vector<wire::Frame>& out);

  /// Units currently deployed here (for tests).
  [[nodiscard]] std::size_t deployed_units() const noexcept {
    return units_.size();
  }
  [[nodiscard]] bool hosts_engine(NodeId node) const noexcept {
    return engines_.contains(node);
  }

 private:
  struct Unit {
    std::uint32_t id = 0;
    NodeId host;
    std::string result_stream;
    query::QuerySpec spec;
    std::unique_ptr<query::CompiledQuery> plan;
    std::size_t result_tap = 0;
  };

  void on_topology(const wire::TopologyMsg& m);
  void on_deploy(wire::DeployUnitMsg m);
  void on_match(const wire::MatchRequestMsg& m, std::vector<wire::Frame>& out);
  void on_execute(wire::ExecuteMsg m);
  void on_watermark(const wire::WatermarkMsg& m, std::vector<wire::Frame>& out);
  void on_migrate_out(const wire::MigrateOutMsg& m,
                      std::vector<wire::Frame>& out);
  void on_migrate_in(wire::MigrateInMsg m, std::vector<wire::Frame>& out);

  /// The engine hosted for `node`, creating + shard-pinning it on first use.
  stream::Engine& engine_at(NodeId node);
  pubsub::BrokerNetwork& broker();
  /// Drains the runtime and rethrows the first worker fault, if any.
  void sync_runtime();
  /// Ships everything in results_ as one kResult frame (if any).
  void ship_results(std::vector<wire::Frame>& out);
  /// Appends a kStatsSample frame (cumulative local runtime counters, plus
  /// collected spans when tracing); no-op unless the hello enabled either.
  void emit_stats_sample(std::vector<wire::Frame>& out);

  Options options_;
  wire::HelloMsg hello_;
  /// Owned copy of the driver's latency matrix; broker_ points into it.
  net::LatencyMatrix lat_;
  std::optional<pubsub::BrokerNetwork> broker_;
  std::map<NodeId, std::unique_ptr<stream::Engine>> engines_;
  std::map<std::uint32_t, Unit> units_;
  runtime::Runtime rt_;
  /// Engine-id (NodeId::value()) -> owning shard; assigned round-robin at
  /// engine creation.
  std::unordered_map<std::uint64_t, std::size_t> shard_of_;
  std::size_t next_shard_ = 0;
  runtime::MpscBuffer<wire::ResultEventMsg> results_;
  std::vector<wire::ResultEventMsg> result_scratch_;
  /// Latest watermark seen (the node's stream-time "now" for samples).
  stream::Timestamp watermark_ms_ = 0;
  /// Stream time of the last emitted kStatsSample; INT64_MIN = none yet.
  stream::Timestamp last_sample_ms_ = INT64_MIN;
};

}  // namespace cosmos::node
