// Table 2 — the Fig 5 worked example: WEC of three mapping schemes, and the
// scheme Algorithm 2 actually finds. See tests/graph/paper_example_test.cpp
// for the assertions; this bench prints the table.
#include <cstdio>

#include "graph/edge_model.h"
#include "graph/mapping.h"

using namespace cosmos;
using namespace cosmos::graph;

int main() {
  const NodeId s1{0}, s2{1}, n1{2}, n2{3};
  query::SubstreamSpace space{{s1, s1, s2, s2, s2}, {5, 5, 5, 5, 5}};
  std::vector<query::InterestProfile> profiles;
  const auto mk = [&](QueryId id, std::initializer_list<int> bits,
                      NodeId proxy) {
    query::InterestProfile p;
    p.query = id;
    p.proxy = proxy;
    p.interest = BitVector{5};
    for (const int b : bits) p.interest.set(static_cast<std::size_t>(b));
    p.output_rate = 1.0;
    p.load = 0.1;
    profiles.push_back(std::move(p));
  };
  mk(QueryId{1}, {0, 1}, n1);
  mk(QueryId{2}, {2, 3}, n1);
  mk(QueryId{3}, {0}, n2);
  mk(QueryId{4}, {4}, n2);

  EdgeModel model{space};
  std::vector<QueryVertex> items;
  for (const auto& p : profiles) items.push_back(to_query_vertex(p));
  Rng rng{1};
  QueryGraph qg = build_query_graph(items, model, {}, nullptr, rng);

  NetworkGraph ng;
  ng.add_vertex({"n1", 1.0, true, n1});
  ng.add_vertex({"n2", 1.0, true, n2});
  ng.add_vertex({"s1", 0.0, false, s1});
  ng.add_vertex({"s2", 0.0, false, s2});
  ng.finalize_vertices();
  ng.set_distance(2, 0, 2.0);
  ng.set_distance(0, 1, 5.0);
  ng.set_distance(1, 3, 2.0);
  ng.set_distance(2, 1, 7.0);
  ng.set_distance(0, 3, 7.0);
  ng.set_distance(2, 3, 9.0);
  for (QueryGraph::VertexIndex i = 0; i < qg.size(); ++i) {
    auto& v = qg.vertex(i);
    if (!v.is_n()) continue;
    const auto k = ng.find_by_node(v.node);
    v.clu = ng.vertex(k).assignable ? static_cast<int>(k) : -1;
  }

  const auto scheme = [&](std::initializer_list<int> targets) {
    std::vector<NetworkGraph::VertexIndex> a(qg.size());
    std::size_t qi = 0;
    for (QueryGraph::VertexIndex i = 0; i < qg.size(); ++i) {
      if (qg.vertex(i).is_n()) {
        a[i] = ng.find_by_node(qg.vertex(i).node);
      } else {
        a[i] = static_cast<NetworkGraph::VertexIndex>(*(targets.begin() + qi++));
      }
    }
    return a;
  };

  std::printf("# Table 2: mapping schemes for the Fig 5 example\n");
  std::printf("%-40s %-22s %8s\n", "scheme", "load", "WEC");
  std::printf("%-40s %-22s %8.0f\n", "1: Q1,Q2->n1; Q3,Q4->n2 (proxies)",
              "n1:0.2 n2:0.2", weighted_edge_cut(qg, ng, scheme({0, 0, 1, 1})));
  std::printf("%-40s %-22s %8.0f\n", "2: Q1,Q4->n1; Q2,Q3->n2 (no sharing)",
              "n1:0.2 n2:0.2", weighted_edge_cut(qg, ng, scheme({0, 1, 1, 0})));
  std::printf("%-40s %-22s %8.0f\n", "3: Q1,Q3->n1; Q2,Q4->n2 (sharing)",
              "n1:0.2 n2:0.2", weighted_edge_cut(qg, ng, scheme({0, 1, 0, 1})));
  Rng mrng{2};
  const auto found = map_query_graph(qg, ng, {}, mrng);
  std::printf("Algorithm 2 finds WEC = %.0f (scheme 3 co-location: %s)\n",
              found.wec,
              found.assignment[0] == found.assignment[2] ? "yes" : "no");
  return 0;
}
