// The COSMOS query-distribution middleware (Sections 3.4–3.8).
//
// A HierarchicalDistributor drives the coordinator tree:
//   * distribute()        — initial distribution: query-graph hierarchy
//                           construction (bottom-up coarsening, Algorithm 1)
//                           followed by top-down graph mapping (Algorithm 2),
//                           uncoarsening one level per tree level;
//   * insert_query()      — online insertion (Section 3.6): route the query
//                           root→leaf, choosing at each level the child that
//                           minimizes the WEC increase subject to load;
//   * adapt()             — adaptive redistribution round (Section 3.7):
//                           per-coordinator load re-balancing via Hu–Blake
//                           diffusion (Algorithm 3) followed by distribution
//                           refinement, top-down;
//   * refresh_statistics()— recompute loads/weights after substream-rate
//                           changes (Section 3.8).
//
// The distributor owns the ground-truth placement map (query -> processor)
// and per-coordinator aggregates used for fast online routing.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "coord/coordinator_tree.h"
#include "graph/coarsen.h"
#include "graph/edge_model.h"
#include "graph/mapping.h"
#include "net/deployment.h"
#include "query/interest.h"

namespace cosmos::coord {

struct HierarchyParams {
  /// Coarsening target per coordinator (Algorithm 1's vmax).
  std::size_t vmax = 64;
  graph::MappingParams mapping;
  graph::QueryGraphBuildParams build;
  /// Algorithm 3's x: consider vertices whose benefit is within x% of the
  /// largest benefit. The paper uses 10.
  double rebalance_x_percent = 10.0;
  /// Move a vertex only when the remaining flow covers this fraction of its
  /// weight (the paper's "m_ij is larger than 90% of its weight").
  double diffusion_fill = 0.9;
};

/// Wall-clock accounting of a distribution run, per the paper's Fig 6(b):
/// total time sums every coordinator's work; response time is the critical
/// path assuming sibling subtrees run in parallel.
struct DistributionTiming {
  double total_seconds = 0.0;
  double response_seconds = 0.0;
};

struct AdaptationReport {
  std::size_t migrated_queries = 0;
  double migrated_state = 0.0;  ///< bytes of operator state moved
};

class HierarchicalDistributor {
 public:
  HierarchicalDistributor(const net::Deployment& deployment,
                          const CoordinatorTree& tree,
                          const query::SubstreamSpace& space,
                          HierarchyParams params, std::uint64_t seed);
  ~HierarchicalDistributor();
  HierarchicalDistributor(HierarchicalDistributor&&) noexcept;
  HierarchicalDistributor& operator=(HierarchicalDistributor&&) noexcept;

  /// Bulk (re)distribution of a query population. Returns timing.
  DistributionTiming distribute(
      std::span<const query::InterestProfile> profiles);

  /// Registers queries at their proxies without optimization (the paper's
  /// "Naive"/random starting points for the adaptation experiments).
  void place_at(const std::vector<std::pair<QueryId, NodeId>>& placement,
                std::span<const query::InterestProfile> profiles);

  /// Online insertion; returns the chosen processor.
  NodeId insert_query(const query::InterestProfile& profile);

  void remove_query(QueryId q);

  /// Re-derives loads from current substream rates (statistics collection).
  void refresh_statistics();

  /// One adaptation round (load re-balance + refinement, root to leaves).
  AdaptationReport adapt();

  [[nodiscard]] const std::unordered_map<QueryId, NodeId>& placement()
      const noexcept {
    return placement_;
  }
  [[nodiscard]] const std::unordered_map<QueryId, query::InterestProfile>&
  profiles() const noexcept {
    return profiles_;
  }
  /// Load per processor (sum of hosted query loads), indexed like
  /// deployment.processors.
  [[nodiscard]] std::vector<double> processor_loads() const;

  [[nodiscard]] const CoordinatorTree& tree() const noexcept { return *tree_; }
  [[nodiscard]] const graph::EdgeModel& edge_model() const noexcept {
    return model_;
  }

 private:
  struct Record;
  struct Frame;

  Record* make_query_record(const query::InterestProfile& p);
  /// Bottom-up summary construction over the current placement (adapt) or
  /// a fresh population grouped by proxy (distribute).
  Record* build_summary(std::uint32_t tree_node,
                        std::vector<Record*> fine_records,
                        std::vector<Record*>* out_records);

  void distribute_at(std::uint32_t tree_node, std::vector<Record*> items,
                     DistributionTiming& timing, double path_seconds);
  void adapt_at(std::uint32_t tree_node, std::vector<Record*> items);
  void place_records(std::uint32_t level0_node,
                     const std::vector<Record*>& items);
  void collect_queries(const Record* r, std::vector<QueryId>& out) const;

  /// Child index of `tree_node` whose subtree contains `origin`, or -1.
  [[nodiscard]] int child_covering(std::uint32_t tree_node,
                                   std::uint32_t origin) const;
  [[nodiscard]] int child_covering_node(std::uint32_t tree_node,
                                        NodeId n) const;

  graph::NetworkGraph make_network_graph(
      std::uint32_t tree_node, const graph::QueryGraph& qg) const;

  void rebuild_aggregates();

  const net::Deployment* deployment_;
  const CoordinatorTree* tree_;
  const query::SubstreamSpace* space_;
  graph::EdgeModel model_;
  HierarchyParams params_;
  Rng rng_;

  std::unordered_map<QueryId, query::InterestProfile> profiles_;
  std::unordered_map<QueryId, NodeId> placement_;

  /// Per tree-node aggregates for online insertion.
  struct Aggregate {
    BitVector interest;
    double load = 0.0;
  };
  std::vector<Aggregate> aggregates_;

  /// Record arena for the current distribute()/adapt() run.
  std::vector<std::unique_ptr<Record>> arena_;
};

}  // namespace cosmos::coord
