#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <thread>
#include <vector>

namespace cosmos::obs {
namespace {

TEST(BucketIndex, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < kSubBuckets; ++v) {
    EXPECT_EQ(bucket_index(v), v);
    EXPECT_EQ(bucket_lower(v), v);
    EXPECT_EQ(bucket_mid(v), v);  // width-1 buckets report exactly
  }
}

TEST(BucketIndex, MonotoneAndInBounds) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100'000; ++v) {
    const std::size_t i = bucket_index(v);
    ASSERT_LT(i, kBucketCount);
    ASSERT_GE(i, prev) << "v=" << v;
    prev = i;
  }
  EXPECT_LT(bucket_index(UINT64_MAX), kBucketCount);
}

TEST(BucketIndex, LowerBoundIsTheInverse) {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t lo = bucket_lower(i);
    EXPECT_EQ(bucket_index(lo), i);
    if (lo > 0) EXPECT_LT(bucket_index(lo - 1), i);
  }
}

TEST(BucketIndex, RelativeErrorIsBounded) {
  // A value's reported midpoint is within ~6.7% (1/15) of the true value
  // for all octave buckets; exhaustive over a sweep of magnitudes.
  std::mt19937_64 rng{7};
  for (int trial = 0; trial < 20'000; ++trial) {
    const std::uint64_t v = rng() >> (rng() % 56);
    const std::uint64_t mid = bucket_mid(bucket_index(v));
    const double err =
        std::abs(static_cast<double>(mid) - static_cast<double>(v)) /
        std::max<double>(1.0, static_cast<double>(v));
    EXPECT_LE(err, 1.0 / 15.0) << "v=" << v << " mid=" << mid;
  }
}

TEST(HistogramSnapshot, RecordMergePercentile) {
  HistogramSnapshot a;
  for (std::uint64_t v = 1; v <= 100; ++v) a.record(v * 1000);
  EXPECT_EQ(a.count, 100u);
  EXPECT_EQ(a.sum, 1000u * (100 * 101) / 2);

  // Percentiles are bucket midpoints: within the documented ~6.7% band.
  const auto near = [](std::uint64_t got, std::uint64_t want) {
    const double err = std::abs(static_cast<double>(got) -
                                static_cast<double>(want)) /
                       static_cast<double>(want);
    EXPECT_LE(err, 1.0 / 15.0) << "got=" << got << " want=" << want;
  };
  near(a.percentile(50.0), 50'000);
  near(a.percentile(95.0), 95'000);
  near(a.percentile(99.0), 99'000);
  near(a.percentile(100.0), 100'000);

  HistogramSnapshot b;
  for (int i = 0; i < 900; ++i) b.record(10);
  b.merge(a);
  EXPECT_EQ(b.count, 1000u);
  EXPECT_EQ(b.percentile(50.0), 10u);  // the 900 exact-bucket values win
  near(b.percentile(99.0), 91'000);    // p99 of the merged distribution
}

TEST(HistogramSnapshot, EmptyIsZero) {
  const HistogramSnapshot h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(50.0), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, ConcurrentRecordersLoseNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) * 1'000'000 + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  std::uint16_t prev = 0;
  for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
    if (i > 0) EXPECT_GT(snap.buckets[i].first, prev);
    prev = snap.buckets[i].first;
    bucket_total += snap.buckets[i].second;
  }
  EXPECT_EQ(bucket_total, snap.count);
}

}  // namespace
}  // namespace cosmos::obs
