#include "node/site.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace cosmos::node {

using wire::Frame;
using wire::FrameType;

Site::Site(Options options)
    : options_(options),
      rt_({options.shards, options.queue_capacity}) {
  rt_.start();
}

Site::~Site() { rt_.stop(); }

pubsub::BrokerNetwork& Site::broker() {
  if (!broker_) {
    throw wire::Error{"node: frame before kTopology established the broker"};
  }
  return *broker_;
}

stream::Engine& Site::engine_at(NodeId node) {
  auto& slot = engines_[node];
  if (!slot) {
    slot = std::make_unique<stream::Engine>();
    shard_of_.emplace(node.value(), next_shard_++ % rt_.shards());
  }
  return *slot;
}

void Site::sync_runtime() {
  rt_.drain();
  if (const auto error = rt_.first_error()) {
    throw std::runtime_error{"node: shard execution failed: " + *error};
  }
}

void Site::ship_results(std::vector<Frame>& out) {
  results_.drain_into(result_scratch_);
  if (result_scratch_.empty()) return;
  wire::ResultMsg msg;
  msg.events = std::move(result_scratch_);
  out.push_back(wire::encode_result(msg));
  result_scratch_.clear();
}

bool Site::handle(const Frame& frame, std::vector<Frame>& out) {
  std::vector<PeerShip> ships;
  bool keep_going = true;
  {
    std::lock_guard lock{mu_};
    keep_going = handle_locked(frame, out, ships);
    // With an emit sink installed, frames leave while the mutex is held:
    // that serializes them against frames emitted from peer reader threads
    // (a flush ack finishing over there must not overtake results drained
    // here). Without one (in-process tests), the caller reads `out`.
    if (emit_) {
      for (auto& f : out) emit_(std::move(f));
      out.clear();
    }
  }
  // Peer shipments go out after the mutex is released: a ship can block on
  // the destination worker's backpressure, and that worker may be blocked
  // shipping to us — holding the site lock across the send would deadlock
  // the pair.
  for (auto& s : ships) {
    if (ship_) ship_(s.worker, std::move(s.frame));
  }
  return keep_going;
}

bool Site::handle_locked(const Frame& frame, std::vector<Frame>& out,
                         std::vector<PeerShip>& ships) {
  bool keep_going = true;
  switch (frame.type) {
    case FrameType::kHello: {
      hello_ = wire::decode_hello(frame);
      if (hello_.protocol != wire::kProtocolVersion) {
        throw wire::Error{"node: protocol version mismatch: driver speaks v" +
                          std::to_string(hello_.protocol) +
                          ", this worker speaks v" +
                          std::to_string(wire::kProtocolVersion) +
                          " — refusing a mixed fleet"};
      }
      if (hello_.trace != 0) {
        // Safe here: the shard workers exist but have never executed a
        // task (kHello is the first frame), so no recorder is active.
        obs::Tracer::instance().begin_session();
      }
      out.push_back(wire::encode_hello_ack(
          {"cosmos_noded worker " + std::to_string(hello_.worker_index)}));
      break;
    }
    case FrameType::kTopology:
      on_topology(wire::decode_topology(frame));
      break;
    case FrameType::kRegisterStream: {
      auto m = wire::decode_register_stream(frame);
      broker().advertise(m.stream, m.publisher, std::move(m.schema));
      break;
    }
    case FrameType::kSubscribe:
      broker().subscribe_as(wire::decode_subscribe(frame).sub);
      break;
    case FrameType::kDeployUnit:
      on_deploy(wire::decode_deploy_unit(frame));
      break;
    case FrameType::kPeerTable: {
      auto m = wire::decode_peer_table(frame);
      if (peer_table_cb_) peer_table_cb_(std::move(m));
      break;
    }
    case FrameType::kMatchRequest:
      on_match(wire::decode_match_request(frame), out);
      break;
    case FrameType::kRouteDecision:
      on_route_decision(wire::decode_route_decision(frame), out, ships);
      break;
    case FrameType::kExecute: {
      auto m = wire::decode_execute(frame);
      // The driver channel is strict: it only sends executes to the worker
      // it believes hosts the engine, so a miss is a placement bug (peer
      // links tolerate the transient miss instead — see
      // apply_peer_execute).
      if (!engines_.contains(m.engine)) {
        throw wire::Error{"node: execute for engine " +
                          std::to_string(m.engine.value()) +
                          " not hosted here"};
      }
      apply_execute(std::move(m), out);
      break;
    }
    case FrameType::kWatermark: {
      auto m = wire::decode_watermark(frame);
      if (gate_.empty() && floors_met(m.floors)) {
        apply_watermark(m, out);
      } else {
        gate_.push_back({Gated::Kind::kWatermark, std::move(m), {},
                         std::chrono::steady_clock::now()});
        check_gate_starvation(out);
      }
      break;
    }
    case FrameType::kFlush: {
      auto m = wire::decode_flush(frame);
      if (gate_.empty() && floors_met(m.floors)) {
        apply_flush(m, out);
      } else {
        gate_.push_back({Gated::Kind::kFlush, {}, std::move(m),
                         std::chrono::steady_clock::now()});
        check_gate_starvation(out);
      }
      break;
    }
    case FrameType::kHeartbeat: {
      const auto m = wire::decode_heartbeat(frame);
      // Echo probes: the reply proves this serve loop still drains frames,
      // not merely that the process holds the socket open. Echoes
      // (probe == 0) are absorbed, so two endpoints cannot ping-pong.
      if (m.probe != 0) out.push_back(wire::encode_heartbeat({0}));
      // Heartbeats flow exactly when the link is otherwise idle — the
      // right moment to notice a gate starved of its floors by a lossy
      // link and tell the driver which executes never arrived.
      check_gate_starvation(out);
      break;
    }
    case FrameType::kMigrateOut:
      on_migrate_out(wire::decode_migrate_out(frame), out);
      break;
    case FrameType::kMigrateIn:
      on_migrate_in(wire::decode_migrate_in(frame), out);
      break;
    case FrameType::kTrafficRequest: {
      wire::TrafficReportMsg report;
      if (broker_) report.traffic = broker_->traffic();
      if (peer_traffic_) {
        const auto [frames, bytes] = peer_traffic_();
        report.peer_frames = frames;
        report.peer_bytes = bytes;
      }
      out.push_back(wire::encode_traffic_report(report));
      break;
    }
    case FrameType::kBye:
      sync_runtime();
      ship_results(out);
      emit_stats_sample(out);
      keep_going = false;
      break;
    default:
      throw wire::Error{std::string{"node: unexpected frame "} +
                        wire::to_string(frame.type)};
  }
  // Results any shard produced meanwhile piggyback on whatever frame we
  // were handling (the driver drains them continuously).
  ship_results(out);
  return keep_going;
}

void Site::apply_peer_execute(wire::ExecuteMsg m) {
  std::lock_guard lock{mu_};
  if (!engines_.contains(m.engine)) {
    // A survivor's shipment can reach a respawned worker before the
    // driver's kMigrateIn re-creates the engine; hold it, on_migrate_in
    // re-applies.
    held_peer_execs_.push_back(std::move(m));
    return;
  }
  std::vector<Frame> out;
  apply_execute(std::move(m), out);
  ship_results(out);
  for (auto& f : out) {
    if (emit_) emit_(std::move(f));
  }
}

void Site::apply_execute(wire::ExecuteMsg m, std::vector<Frame>& out) {
  auto& st = exec_seq_[m.engine.value()];
  if (m.seq < st.expected) return;  // recovery replay duplicate
  if (m.seq > st.expected) {
    st.holdback.emplace(m.seq, std::move(m));  // early arrival; keep first
    return;
  }
  dispatch_execute(std::move(m));
  ++st.expected;
  for (auto next = st.holdback.find(st.expected);
       next != st.holdback.end(); next = st.holdback.find(st.expected)) {
    dispatch_execute(std::move(next->second));
    st.holdback.erase(next);
    ++st.expected;
  }
  pump_gate(out);
}

void Site::dispatch_execute(wire::ExecuteMsg m) {
  const auto it = engines_.find(m.engine);
  if (it == engines_.end()) {
    throw wire::Error{"node: execute for engine " +
                      std::to_string(m.engine.value()) + " not hosted here"};
  }
  runtime::Runtime::Task task;
  task.engine = it->second.get();
  task.engine_id = m.engine.value();
  task.runs.push_back(std::move(m.batch));
  task.ingest_ns = m.ingest_ns;
  rt_.dispatch(shard_of_.at(task.engine_id), std::move(task));
}

bool Site::floors_met(const std::vector<wire::EngineFloor>& floors) const {
  for (const auto& floor : floors) {
    const auto it = exec_seq_.find(floor.engine.value());
    // A floor for an engine not hosted here is a stale placement view
    // (the driver quiesces around migrations); only hosted engines gate.
    if (it == exec_seq_.end()) continue;
    if (it->second.expected < floor.seq) return false;
  }
  return true;
}

void Site::pump_gate(std::vector<Frame>& out) {
  // FIFO: a blocked front blocks everything behind it, preserving the
  // driver's watermark/flush order.
  while (!gate_.empty()) {
    const auto& front = gate_.front();
    const auto& floors = front.kind == Gated::Kind::kWatermark
                             ? front.wm.floors
                             : front.flush.floors;
    if (!floors_met(floors)) return;
    Gated op = std::move(gate_.front());
    gate_.pop_front();
    if (op.kind == Gated::Kind::kWatermark) {
      apply_watermark(op.wm, out);
    } else {
      apply_flush(op.flush, out);
    }
  }
}

void Site::check_gate_starvation(std::vector<Frame>& out) {
  if (gate_.empty() || hello_.liveness_deadline_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  const auto deadline =
      std::chrono::milliseconds(hello_.liveness_deadline_ms);
  const auto& front = gate_.front();
  if (now - front.since < deadline) return;
  if (last_gap_emit_.time_since_epoch().count() != 0 &&
      now - last_gap_emit_ < deadline) {
    return;
  }
  const auto& floors = front.kind == Gated::Kind::kWatermark
                           ? front.wm.floors
                           : front.flush.floors;
  wire::SeqGapMsg gap;
  gap.worker_index = hello_.worker_index;
  for (const auto& floor : floors) {
    const auto it = exec_seq_.find(floor.engine.value());
    if (it == exec_seq_.end()) continue;
    if (it->second.expected < floor.seq) {
      // Report the next seq still missing; the driver replays its data log
      // from there and seq dedup absorbs anything that did arrive.
      gap.missing.push_back({floor.engine, it->second.expected});
    }
  }
  if (gap.missing.empty()) return;
  last_gap_emit_ = now;
  out.push_back(wire::encode_seq_gap(gap));
}

void Site::apply_watermark(const wire::WatermarkMsg& m,
                           std::vector<Frame>& out) {
  watermark_ms_ = m.watermark;
  if (hello_.stats_sample_every_ms > 0 &&
      (last_sample_ms_ == INT64_MIN ||
       m.watermark - last_sample_ms_ >= hello_.stats_sample_every_ms)) {
    emit_stats_sample(out);
  }
  // Watermarks prune join state, which only a task on the owning shard may
  // touch (the serve thread must not race an executing engine). Dispatch
  // one pruning task per unit; shard FIFO orders it after every execute
  // applied before this watermark, and the floors guarantee every execute
  // routed before it has been applied.
  for (auto& [uid, unit] : units_) {
    runtime::Runtime::Task task;
    task.engine_id = unit.host.value();
    task.match = [plan = unit.plan.get(), wm = m.watermark] {
      plan->advance_watermark(wm);
    };
    rt_.dispatch(shard_of_.at(task.engine_id), std::move(task));
  }
}

void Site::apply_flush(const wire::FlushMsg& m, std::vector<Frame>& out) {
  sync_runtime();
  ship_results(out);
  // Final sample rides ahead of the ack on the FIFO channel, so the
  // driver holds every sample once its flush barrier completes.
  emit_stats_sample(out);
  out.push_back(wire::encode_flush_ack({m.seq}));
}

void Site::on_topology(const wire::TopologyMsg& m) {
  if (broker_) throw wire::Error{"node: duplicate kTopology"};
  lat_ = net::LatencyMatrix{m.members, m.dense};
  broker_.emplace(m.participants, lat_,
                  pubsub::BrokerNetwork::Options{m.use_index});
}

void Site::on_deploy(wire::DeployUnitMsg m) {
  if (units_.contains(m.unit_id)) {
    throw wire::Error{"node: duplicate unit id " + std::to_string(m.unit_id)};
  }
  Unit unit;
  unit.id = m.unit_id;
  unit.host = m.host;
  unit.result_stream = std::move(m.result_stream);
  unit.spec = std::move(m.spec);
  auto& engine = engine_at(unit.host);
  exec_seq_.try_emplace(unit.host.value());  // fresh engines expect seq 0
  for (const auto& src : unit.spec.sources) {
    if (!engine.has_stream(src.stream)) {
      engine.register_stream(src.stream, broker().schema(src.stream));
    }
  }
  // Same (spec, result_stream) pair the driver compiled: plan construction
  // is deterministic, so this plan is the driver's plan.
  unit.plan = std::make_unique<query::CompiledQuery>(engine, unit.spec,
                                                     unit.result_stream);
  unit.result_tap = engine.attach(
      unit.result_stream,
      [this, rs = unit.result_stream](const stream::Tuple& t) {
        // Fires on a shard worker; park the result for the serve thread.
        // The executing task's ingest stamp rides along so the driver can
        // close the end-to-end latency measurement on delivery.
        results_.push({rs, t, runtime::current_task_ingest_ns()});
      });
  units_.emplace(unit.id, std::move(unit));
}

void Site::on_match(wire::MatchRequestMsg m, std::vector<Frame>& out) {
  auto* part = broker().partition(m.batch.stream());
  if (part == nullptr) {
    throw wire::Error{"node: match request for unadvertised stream " +
                      m.batch.stream()};
  }
  // Inline on the serve thread: this Site's partitions are matched nowhere
  // else, so the single-owner discipline holds without locking, and the
  // partition's traffic accounting is exactly the in-process p1 share of
  // the streams this worker owns.
  std::vector<pubsub::BatchDelivery> deliveries;
  part->match_batch(m.batch, deliveries);
  wire::MatchResponseMsg resp;
  resp.job = m.job;
  resp.deliveries.reserve(deliveries.size());
  for (auto& d : deliveries) {
    resp.deliveries.emplace_back(d.sub->id, std::move(d.rows));
  }
  out.push_back(wire::encode_match_response(resp));
  if (hello_.peer_links != 0) {
    // Retain the batch: the driver's kRouteDecision slices it into
    // per-engine executes here instead of echoing the rows back over the
    // star. insert_or_assign absorbs a recovery re-request of the same job.
    retained_.insert_or_assign(m.job, std::move(m.batch));
  }
}

void Site::on_route_decision(wire::RouteDecisionMsg m, std::vector<Frame>& out,
                             std::vector<PeerShip>& ships) {
  const auto it = retained_.find(m.job);
  if (it == retained_.end()) {
    throw wire::Error{"node: route decision for unknown job " +
                      std::to_string(m.job)};
  }
  for (auto& t : m.targets) {
    wire::ExecuteMsg ex;
    ex.engine = t.engine;
    ex.ingest_ns = m.ingest_ns;
    ex.seq = t.seq;
    ex.batch = t.rows.empty() ? it->second : it->second.select(t.rows);
    if (t.worker == hello_.worker_index) {
      // Own-engine slice: same seq-ordered path a shipped one would take.
      apply_execute(std::move(ex), out);
    } else {
      ships.push_back({t.worker, wire::encode_execute(ex)});
    }
  }
  retained_.erase(it);
}

void Site::emit_stats_sample(std::vector<Frame>& out) {
  if (hello_.stats_sample_every_ms <= 0 && hello_.trace == 0) return;
  wire::StatsSampleMsg m;
  m.worker_index = hello_.worker_index;
  m.now_ms = watermark_ms_;
  // Cumulative since session start (the driver keeps the raw timeline;
  // consumers diff adjacent samples if they want rates).
  const runtime::RuntimeStats stats = rt_.stats();
  std::uint64_t tuples = 0, batches = 0, tasks = 0, match_tasks = 0;
  std::uint64_t busy_ns = 0, match_ns = 0, stall_ns = 0;
  std::size_t max_depth = 0;
  for (const auto& s : stats.shards) {
    tuples += s.tuples;
    batches += s.batches;
    tasks += s.tasks;
    match_tasks += s.match_tasks;
    busy_ns += s.busy_ns;
    match_ns += s.match_ns;
    stall_ns += s.stall_ns;
    max_depth = std::max(max_depth, s.max_queue_depth);
  }
  m.metrics.counters.emplace_back("node.units",
                                  static_cast<std::uint64_t>(units_.size()));
  m.metrics.counters.emplace_back("shard.batches", batches);
  m.metrics.counters.emplace_back("shard.busy_ns", busy_ns);
  m.metrics.counters.emplace_back("shard.match_ns", match_ns);
  m.metrics.counters.emplace_back("shard.match_tasks", match_tasks);
  m.metrics.counters.emplace_back("shard.stall_ns", stall_ns);
  m.metrics.counters.emplace_back("shard.tasks", tasks);
  m.metrics.counters.emplace_back("shard.tuples", tuples);
  m.metrics.gauges.emplace_back("shard.max_queue_depth",
                                static_cast<double>(max_depth));
  // MetricsSnapshot keeps its vectors name-sorted (merge/lookup rely on
  // it); keep that invariant even if names above are ever reordered.
  std::sort(m.metrics.counters.begin(), m.metrics.counters.end());
  if (hello_.trace != 0) {
    m.spans = obs::Tracer::instance().drain();
  }
  out.push_back(wire::encode_stats_sample(m));
  last_sample_ms_ = watermark_ms_;
}

void Site::on_migrate_out(const wire::MigrateOutMsg& m,
                          std::vector<Frame>& out) {
  const auto eit = engines_.find(m.engine);
  if (eit == engines_.end()) {
    throw wire::Error{"node: migrate-out of engine " +
                      std::to_string(m.engine.value()) + " not hosted here"};
  }
  // Quiesce: after the drain no task of this engine (or any other) is in
  // flight, so exporting join state (and, unless keeping, tearing the
  // plans down) is safe.
  sync_runtime();
  ship_results(out);
  wire::StateHandoffMsg handoff;
  handoff.engine = m.engine;
  for (auto& [uid, unit] : units_) {
    if (unit.host != m.engine) continue;
    handoff.units.push_back({unit.id, unit.plan->export_join_state()});
  }
  if (m.keep == 0) {
    // Tear down the units (plan destructors detach their engine taps), then
    // drop the engine itself: a later migrate-in of the same node must
    // start from a blank engine or stream re-registration would throw.
    for (const auto& u : handoff.units) units_.erase(u.unit_id);
    engines_.erase(eit);
    shard_of_.erase(m.engine.value());
    exec_seq_.erase(m.engine.value());
  }
  // keep != 0 is checkpoint mode: the state left, the placement did not.
  out.push_back(wire::encode_state_handoff(handoff));
}

void Site::on_migrate_in(wire::MigrateInMsg m, std::vector<Frame>& out) {
  for (auto& deploy : m.units) {
    if (deploy.host != m.engine) {
      throw wire::Error{"node: migrate-in unit hosted on a different node"};
    }
    on_deploy(std::move(deploy));
  }
  for (auto& state : m.state) {
    const auto it = units_.find(state.unit_id);
    if (it == units_.end()) {
      throw wire::Error{"node: migrate-in state for unknown unit " +
                        std::to_string(state.unit_id)};
    }
    it->second.plan->import_join_state(std::move(state.joins));
  }
  // Resume execute ordering at the handoff's cut point, then re-apply any
  // peer shipments that arrived for this engine before it existed here.
  exec_seq_[m.engine.value()].expected = m.exec_seq;
  std::vector<wire::ExecuteMsg> held;
  std::vector<wire::ExecuteMsg> rest;
  for (auto& ex : held_peer_execs_) {
    (ex.engine == m.engine ? held : rest).push_back(std::move(ex));
  }
  held_peer_execs_ = std::move(rest);
  for (auto& ex : held) apply_execute(std::move(ex), out);
  pump_gate(out);
  out.push_back(wire::encode_migrate_ack({m.engine}));
}

}  // namespace cosmos::node
