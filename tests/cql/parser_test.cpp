#include "cql/parser.h"

#include <gtest/gtest.h>

#include "cql/lexer.h"

namespace cosmos::cql {
namespace {

using stream::Predicate;
using stream::WindowSpec;

TEST(Parser, PaperQueryQ1) {
  const auto q = parse_query(
      "SELECT * FROM R [Now], S [Now] "
      "WHERE R.b = S.b AND R.a > 10 AND S.c > 10");
  EXPECT_TRUE(q.select_all);
  ASSERT_EQ(q.sources.size(), 2u);
  EXPECT_EQ(q.sources[0].stream, "R");
  EXPECT_EQ(q.sources[0].alias, "R");
  EXPECT_EQ(q.sources[0].window, WindowSpec::now());
  EXPECT_EQ(q.where->kind(), Predicate::Kind::kAnd);
}

TEST(Parser, PaperQueryQ3) {
  const auto q = parse_query(
      "SELECT S2.* "
      "FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10");
  ASSERT_EQ(q.sources.size(), 2u);
  EXPECT_EQ(q.sources[0].alias, "S1");
  EXPECT_EQ(q.sources[0].window, WindowSpec::range_millis(30 * 60'000));
  EXPECT_EQ(q.sources[1].window, WindowSpec::now());
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_TRUE(q.select[0].is_wildcard());
  EXPECT_EQ(q.select[0].alias, "S2");
}

TEST(Parser, PaperQueryQ4SelectList) {
  const auto q = parse_query(
      "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp "
      "FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight");
  ASSERT_EQ(q.select.size(), 4u);
  EXPECT_EQ(q.select[0].alias, "S1");
  EXPECT_EQ(q.select[0].field, "snowHeight");
  EXPECT_EQ(q.sources[0].window, WindowSpec::range_millis(3'600'000));
}

TEST(Parser, WindowUnits) {
  EXPECT_EQ(parse_query("SELECT * FROM S [Range 2 Seconds]").sources[0].window,
            WindowSpec::range_millis(2'000));
  EXPECT_EQ(parse_query("SELECT * FROM S [Range 5 Ms]").sources[0].window,
            WindowSpec::range_millis(5));
  EXPECT_EQ(parse_query("SELECT * FROM S [Unbounded]").sources[0].window,
            WindowSpec::unbounded());
  // No window defaults to [Now].
  EXPECT_EQ(parse_query("SELECT * FROM S").sources[0].window,
            WindowSpec::now());
}

TEST(Parser, BareColumnResolvesWithSingleSource) {
  const auto q = parse_query("SELECT snowHeight FROM Station1 [Now] S1 "
                             "WHERE snowHeight > 3");
  EXPECT_EQ(q.select[0].alias, "S1");
  EXPECT_EQ(q.select[0].field, "snowHeight");
}

TEST(Parser, BareColumnAmbiguousWithTwoSources) {
  EXPECT_THROW(parse_query("SELECT x FROM A [Now], B [Now]"), ParseError);
}

TEST(Parser, ConstantOnLeftIsFlipped) {
  const auto q = parse_query("SELECT * FROM S WHERE 10 < S.a");
  std::vector<stream::PredicatePtr> conj;
  ASSERT_TRUE(stream::collect_conjuncts(q.where, conj));
  ASSERT_EQ(conj.size(), 1u);
  EXPECT_EQ(conj[0]->to_string(), "S.a > 10");
}

TEST(Parser, OrAndNotAndParens) {
  const auto q =
      parse_query("SELECT * FROM S WHERE NOT (S.a > 1 OR S.b < 2) AND S.c = 3");
  EXPECT_EQ(q.where->kind(), Predicate::Kind::kAnd);
}

TEST(Parser, StringLiteral) {
  const auto q = parse_query("SELECT * FROM S WHERE S.name = 'alpha'");
  EXPECT_EQ(q.where->to_string(), "S.name = alpha");
}

TEST(Parser, PreservesTextAndIds) {
  const std::string text = "SELECT * FROM S";
  const auto q = parse_query(text, QueryId{7}, NodeId{9});
  EXPECT_EQ(q.text, text);
  EXPECT_EQ(q.id, QueryId{7});
  EXPECT_EQ(q.proxy, NodeId{9});
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_query("FROM S"), ParseError);                 // no SELECT
  EXPECT_THROW(parse_query("SELECT *"), ParseError);               // no FROM
  EXPECT_THROW(parse_query("SELECT * FROM S WHERE"), ParseError);  // empty pred
  EXPECT_THROW(parse_query("SELECT * FROM S [Range]"), ParseError);
  EXPECT_THROW(parse_query("SELECT * FROM S [Range 5]"), ParseError);  // unit
  EXPECT_THROW(parse_query("SELECT * FROM S WHERE 1 > 2"), ParseError);
  EXPECT_THROW(parse_query("SELECT * FROM S extra garbage ,"), ParseError);
}

TEST(Parser, RoundTripThroughToCql) {
  const auto q = parse_query(
      "SELECT S2.*, S1.snowHeight "
      "FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight");
  const auto q2 = parse_query(q.to_cql());
  EXPECT_EQ(q2.sources.size(), q.sources.size());
  EXPECT_EQ(q2.select.size(), q.select.size());
  EXPECT_EQ(q2.where->to_string(), q.where->to_string());
}

}  // namespace
}  // namespace cosmos::cql
