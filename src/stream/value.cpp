#include "stream/value.h"

namespace cosmos::stream {

double Value::as_double() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  throw std::logic_error{"Value: string has no numeric view"};
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const auto* d = std::get_if<double>(&v_)) {
    return static_cast<std::int64_t>(*d);
  }
  throw std::logic_error{"Value: string has no numeric view"};
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  throw std::logic_error{"Value: not a string"};
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kDouble: return std::to_string(as_double());
    default: return as_string();
  }
}

}  // namespace cosmos::stream
