#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON emitted by the obs tracer.

Usage:
    check_trace.py TRACE.json [--min-pids N] [--require-names a,b,c]
                   [--require-cats x,y]
    check_trace.py --self-test

Checks, in order:
  1. the file parses as JSON and has a "traceEvents" array;
  2. every event carries the trace-event required fields for its phase:
     ph in {X, i, M}; name/pid/tid/ts on X and i; dur >= 0 on X;
     process_name metadata rows carry args.name;
  3. timestamps are rebased (some event starts at ts 0) and none are
     negative;
  4. at least --min-pids distinct pids appear on non-metadata events
     (a merged federated trace must show the driver AND the workers);
  5. every --require-names / --require-cats entry appears on some
     non-metadata event.

Exit codes: 0 = valid, 1 = a check failed, 2 = unreadable/malformed file.
Every failure prints a one-line diagnosis, never a bare traceback.
"""
import argparse
import json
import sys


def validate(data, min_pids, require_names, require_cats):
    """Returns a list of failure messages (empty = trace is valid)."""
    failures = []
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ['missing "traceEvents" key (not a Chrome trace?)']
    events = data["traceEvents"]
    if not isinstance(events, list):
        return ['"traceEvents" is not an array']
    if not events:
        return ["traceEvents is empty"]

    pids = set()
    names = set()
    cats = set()
    min_ts = None
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            failures.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            failures.append(f"{where}: unexpected ph {ph!r}")
            continue
        if ph == "M":
            if ev.get("name") != "process_name" or \
                    "name" not in ev.get("args", {}):
                failures.append(f"{where}: metadata row lacks "
                                f"args.name (got {ev.get('args')!r})")
            continue
        for field in ("name", "pid", "tid", "ts"):
            if field not in ev:
                failures.append(f"{where}: missing {field!r}")
        if "ts" in ev:
            ts = ev["ts"]
            if ts < 0:
                failures.append(f"{where}: negative ts {ts}")
            min_ts = ts if min_ts is None else min(min_ts, ts)
        if ph == "X":
            if "dur" not in ev:
                failures.append(f"{where}: complete event missing 'dur'")
            elif ev["dur"] < 0:
                failures.append(f"{where}: negative dur {ev['dur']}")
        pids.add(ev.get("pid"))
        names.add(ev.get("name"))
        if "cat" in ev:
            cats.add(ev["cat"])

    if min_ts is not None and min_ts != 0:
        failures.append(f"timestamps not rebased: earliest ts is {min_ts}, "
                        f"want 0")
    if len(pids) < min_pids:
        failures.append(f"only {len(pids)} distinct pid(s) "
                        f"({sorted(pids)}), want >= {min_pids} — "
                        f"worker spans missing from the merged trace?")
    for want in require_names:
        if want and want not in names:
            failures.append(f"required event name {want!r} absent")
    for want in require_cats:
        if want and want not in cats:
            failures.append(f"required category {want!r} absent")
    return failures


def self_test():
    """Exercises every failure mode; run by CI alongside the real check."""
    def trace(events):
        return {"traceEvents": events}

    def x(name="work", cat="driver", pid=0, tid=1, ts=0, dur=5):
        return {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
                "pid": pid, "tid": tid}

    def meta(pid, label):
        return {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": label}}

    good = trace([meta(0, "driver"), meta(1, "worker 0"),
                  x(ts=0), x(name="task", cat="shard", pid=1, ts=3),
                  {"name": "migration", "cat": "driver", "ph": "i",
                   "ts": 4, "pid": 0, "tid": 1, "s": "t"}])

    cases = [
        ("valid trace passes", good, dict(min_pids=2,
                                          require_names=["migration"],
                                          require_cats=["shard"]), 0),
        ("not a trace object", [1, 2], {}, 1),
        ("empty traceEvents", trace([]), {}, 1),
        ("bad phase", trace([dict(x(), ph="Q")]), {}, 1),
        ("missing dur on X", trace([{k: v for k, v in x().items()
                                     if k != "dur"}]), {}, 1),
        ("missing pid", trace([{k: v for k, v in x().items()
                                if k != "pid"}]), {}, 1),
        ("negative ts", trace([x(ts=-2), x(ts=0)]), {}, 1),
        ("not rebased", trace([x(ts=100)]), {}, 1),
        ("too few pids", good, dict(min_pids=5), 1),
        ("required name absent", good,
         dict(require_names=["no_such_span"]), 1),
        ("required cat absent", good,
         dict(require_cats=["no_such_cat"]), 1),
        ("metadata without args.name",
         trace([x(), {"name": "process_name", "ph": "M", "pid": 0,
                      "tid": 0, "args": {}}]), 1, 1),
    ]
    bad = 0
    for label, data, opts, want in cases:
        opts = opts if isinstance(opts, dict) else {}
        failures = validate(data,
                            min_pids=opts.get("min_pids", 1),
                            require_names=opts.get("require_names", []),
                            require_cats=opts.get("require_cats", []))
        got = 1 if failures else 0
        if got != want:
            print(f"!! {label}: got {got}, want {want} ({failures})")
            bad += 1
        else:
            print(f"ok {label}")
    if bad:
        print(f"\nself-test FAILED ({bad} case(s))")
        return 1
    print(f"self-test passed ({len(cases)} cases)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", nargs="?")
    ap.add_argument("--min-pids", type=int, default=1,
                    help="minimum distinct pids on span events (default 1; "
                         "use 1+workers for a merged federated trace)")
    ap.add_argument("--require-names", default="",
                    help="comma-separated event names that must appear")
    ap.add_argument("--require-cats", default="",
                    help="comma-separated categories that must appear")
    ap.add_argument("--self-test", action="store_true",
                    help="run the script's own unit tests and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.trace:
        ap.error("TRACE.json is required (or use --self-test)")

    try:
        with open(args.trace) as f:
            data = json.load(f)
    except OSError as e:
        print(f"!! cannot read {args.trace}: {e.strerror}")
        return 2
    except json.JSONDecodeError as e:
        print(f"!! {args.trace} is not valid JSON: {e}")
        return 2

    failures = validate(
        data, args.min_pids,
        [n.strip() for n in args.require_names.split(",") if n.strip()],
        [c.strip() for c in args.require_cats.split(",") if c.strip()])
    for f in failures:
        print(f"!! {f}")
    if not failures:
        n = len(data["traceEvents"])
        print(f"ok {args.trace}: {n} events valid")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
