#include "sim/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace cosmos::sim {

WorkloadGenerator::WorkloadGenerator(const net::Deployment& deployment,
                                     WorkloadParams params, std::uint64_t seed)
    : deployment_(&deployment),
      params_(params),
      rng_(seed),
      space_({}, {}),
      zipf_(params.num_substreams, params.zipf_theta) {
  if (deployment.sources.empty() || deployment.processors.empty()) {
    throw std::invalid_argument{"WorkloadGenerator: empty deployment"};
  }
  if (params.interest_min == 0 || params.interest_min > params.interest_max ||
      params.interest_max > params.num_substreams) {
    throw std::invalid_argument{"WorkloadGenerator: bad interest band"};
  }

  // Substreams randomly distributed over sources, rates uniform [min,max].
  std::vector<NodeId> origin(params.num_substreams);
  std::vector<double> rate(params.num_substreams);
  for (std::size_t i = 0; i < params.num_substreams; ++i) {
    origin[i] =
        deployment.sources[rng_.next_below(deployment.sources.size())];
    rate[i] = rng_.next_double(params.rate_min, params.rate_max);
  }
  space_ = query::SubstreamSpace{std::move(origin), std::move(rate)};

  // Per-group permutations give each group its own hot substreams. With
  // source affinity, a group's permutation is (noisily) ordered by a
  // group-specific preference over sources, so the hot region concentrates
  // on a few deployments — the zipf ranks then favor those sources'
  // substreams.
  permutations_.resize(params.groups);
  const double jitter_span =
      (1.0 - params.source_affinity) *
      static_cast<double>(deployment.sources.size());
  std::unordered_map<NodeId, std::size_t> source_index;
  for (std::size_t i = 0; i < deployment.sources.size(); ++i) {
    source_index.emplace(deployment.sources[i], i);
  }
  for (auto& perm : permutations_) {
    perm.resize(params.num_substreams);
    for (std::uint32_t i = 0; i < params.num_substreams; ++i) perm[i] = i;
    rng_.shuffle(perm);
    if (params.source_affinity > 0.0) {
      std::vector<std::size_t> pref(deployment.sources.size());
      for (std::size_t i = 0; i < pref.size(); ++i) pref[i] = i;
      rng_.shuffle(pref);  // the group's source preference order
      std::vector<double> key(params.num_substreams);
      for (std::uint32_t s = 0; s < params.num_substreams; ++s) {
        const auto src = source_index.at(
            space_.origin(SubstreamId{s}));
        key[s] = static_cast<double>(pref[src]) +
                 rng_.next_double(0.0, std::max(1e-9, jitter_span));
      }
      std::stable_sort(perm.begin(), perm.end(),
                       [&key](std::uint32_t a, std::uint32_t b) {
                         return key[a] < key[b];
                       });
    }
  }
}

query::InterestProfile WorkloadGenerator::make_query() {
  query::InterestProfile p;
  p.query = QueryId{next_query_id_++};
  p.proxy =
      deployment_->processors[rng_.next_below(deployment_->processors.size())];
  p.interest = BitVector{params_.num_substreams};

  const std::size_t group = rng_.next_below(permutations_.size());
  group_of_.push_back(group);
  const auto& perm = permutations_[group];
  const auto want = static_cast<std::size_t>(rng_.next_range(
      static_cast<std::int64_t>(params_.interest_min),
      static_cast<std::int64_t>(params_.interest_max)));
  std::size_t have = 0;
  while (have < want) {
    const std::size_t sub = perm[zipf_.sample(rng_)];
    if (!p.interest.test(sub)) {
      p.interest.set(sub);
      ++have;
    }
  }

  const double frac = rng_.next_double(params_.output_fraction_min,
                                       params_.output_fraction_max);
  output_fraction_.push_back(frac);
  const double input = p.input_rate(space_);
  p.output_rate = frac * input;
  p.load = query::kLoadPerByteRate * input;
  p.state_size = params_.state_per_input_rate * input;
  return p;
}

std::vector<query::InterestProfile> WorkloadGenerator::make_queries(
    std::size_t count) {
  std::vector<query::InterestProfile> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(make_query());
  return out;
}

std::vector<SubstreamId> WorkloadGenerator::perturb_rates(std::size_t count,
                                                          double factor) {
  if (factor <= 0) {
    throw std::invalid_argument{"perturb_rates: factor must be positive"};
  }
  std::vector<SubstreamId> affected;
  affected.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const SubstreamId s{static_cast<SubstreamId::value_type>(
        rng_.next_below(space_.size()))};
    space_.set_rate(s, space_.rate(s) * factor);
    affected.push_back(s);
  }
  return affected;
}

std::vector<SensorReading> make_skewed_trace(const SkewedTraceParams& params,
                                             Rng& rng) {
  if (params.stations == 0 || params.total_tuples == 0 ||
      params.duration_ms <= 0) {
    throw std::invalid_argument{"make_skewed_trace: empty trace"};
  }
  // Zipf rate weights, shuffled over stations so hotness is not tied to
  // station numbering.
  std::vector<double> weight(params.stations);
  std::vector<std::size_t> rank(params.stations);
  for (std::size_t i = 0; i < params.stations; ++i) rank[i] = i;
  rng.shuffle(rank);
  for (std::size_t i = 0; i < params.stations; ++i) {
    weight[rank[i]] =
        1.0 / std::pow(static_cast<double>(i + 1), params.zipf_theta);
  }

  const std::size_t segments = params.perturb_pattern.size() + 1;
  const double seg_ms =
      static_cast<double>(params.duration_ms) / static_cast<double>(segments);
  const std::size_t seg_tuples =
      std::max<std::size_t>(1, params.total_tuples / segments);

  std::vector<SensorReading> out;
  out.reserve(params.total_tuples + params.stations * segments);
  std::vector<double> snow(params.stations);
  for (auto& s : snow) s = 20.0 + rng.next_double(-5.0, 5.0);

  for (std::size_t seg = 0; seg < segments; ++seg) {
    if (seg > 0) {
      // Perturbation event at the segment boundary (Fig 10's I/D): scale a
      // random station subset's rates several-fold.
      const bool up = params.perturb_pattern[seg - 1] != 'D';
      for (std::size_t k = 0;
           k < std::min(params.perturb_stations, params.stations); ++k) {
        const auto st = static_cast<std::size_t>(
            rng.next_below(params.stations));
        weight[st] = up ? weight[st] * params.perturb_factor
                        : weight[st] / params.perturb_factor;
      }
    }
    double total_w = 0.0;
    for (const double w : weight) total_w += w;
    const double seg_start = static_cast<double>(seg) * seg_ms;

    // Per-station evenly spaced arrivals with jitter; the merge below
    // restores global order.
    const std::size_t seg_first = out.size();
    for (std::size_t st = 0; st < params.stations; ++st) {
      const auto n = static_cast<std::size_t>(
          static_cast<double>(seg_tuples) * weight[st] / total_w + 0.5);
      const double period = seg_ms / static_cast<double>(n + 1);
      for (std::size_t i = 0; i < n; ++i) {
        const double jitter = rng.next_double(0.0, 0.9 * period);
        const auto ts = static_cast<stream::Timestamp>(
            seg_start + static_cast<double>(i) * period + jitter);
        snow[st] = std::max(0.0, snow[st] + rng.next_double(-1.5, 1.5));
        const double temp = -5.0 + rng.next_double(-2.0, 2.0);
        stream::Tuple t;
        t.ts = ts;
        t.values = {stream::Value{snow[st]}, stream::Value{temp},
                    stream::Value{static_cast<std::int64_t>(st)},
                    stream::Value{static_cast<std::int64_t>(ts)}};
        out.push_back({st, std::move(t)});
      }
    }
    std::stable_sort(out.begin() + static_cast<std::ptrdiff_t>(seg_first),
                     out.end(),
                     [](const SensorReading& a, const SensorReading& b) {
                       return a.tuple.ts != b.tuple.ts
                                  ? a.tuple.ts < b.tuple.ts
                                  : a.station < b.station;
                     });
  }
  return out;
}

std::vector<pubsub::Subscription> make_fanout_subscriptions(
    const FanoutParams& params, Rng& rng) {
  using stream::CmpOp;
  using stream::FieldRef;
  using stream::Predicate;
  using stream::Value;
  const ZipfDistribution station_zipf{std::max<std::size_t>(1, params.stations),
                                      params.zipf_theta};
  // Range centers draw from a Zipf-ranked grid over the temperature band
  // the trace emits, so popular thresholds cluster like popular stations.
  constexpr std::size_t kGrid = 64;
  const ZipfDistribution grid_zipf{kGrid, params.zipf_theta};
  const auto zipf_station = [&]() -> std::int64_t {
    return static_cast<std::int64_t>(station_zipf.sample(rng));
  };
  // make_skewed_trace: temperature = -5 + U(-2, 2).
  constexpr double kTempLo = -7.0;
  constexpr double kTempSpan = 4.0;

  std::vector<pubsub::Subscription> out;
  out.reserve(params.subscribers);
  for (std::size_t i = 0; i < params.subscribers; ++i) {
    pubsub::Subscription sub;
    sub.id = SubscriptionId{static_cast<SubscriptionId::value_type>(i)};
    sub.subscriber = NodeId{static_cast<NodeId::value_type>(
        rng.next_below(std::max<std::size_t>(1, params.homes)))};
    sub.streams = {params.stream};
    if (rng.next_bool(0.3)) sub.projection = {"snowHeight"};

    const double kind = rng.next_double();
    if (kind < params.eq_fraction) {
      // Station-targeted: the equality anchor the per-column hash serves,
      // with a cold-snap threshold (pass probability ~0 to ~0.7) in the
      // residual.
      sub.filter = Predicate::conj(
          {Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kEq,
                          Value{zipf_station()}),
           Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kLe,
                          Value{rng.next_double(kTempLo, -4.2)})});
    } else if (kind < params.eq_fraction + params.range_fraction) {
      // Two-sided band — merges into one stabbed interval.
      const double lo =
          kTempLo + kTempSpan * static_cast<double>(grid_zipf.sample(rng)) /
                        static_cast<double>(kGrid);
      sub.filter = Predicate::conj(
          {Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kGe,
                          Value{lo}),
           Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kLt,
                          Value{lo + params.band_width})});
    } else {
      // Unindexable remainder: exercises the scan-list fallback.
      switch (rng.next_below(3)) {
        case 0:  // top-level OR over two hot stations, cold-snap gated
          sub.filter = Predicate::conj(
              {Predicate::disj(
                   {Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kEq,
                                   Value{zipf_station()}),
                    Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kEq,
                                   Value{zipf_station()})}),
               Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kLe,
                              Value{rng.next_double(kTempLo, -4.2)})});
          break;
        case 1:  // NOT tree over the cold tail
          sub.filter = Predicate::negate(
              Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kGt,
                             Value{rng.next_double(kTempLo, -6.8)}));
          break;
        default:  // lenient: attribute the stream lacks — never matches
          sub.filter = Predicate::cmp(FieldRef{"", "humidity"}, CmpOp::kGt,
                                      Value{rng.next_double(0.0, 1.0)});
          break;
      }
    }
    out.push_back(std::move(sub));
  }
  return out;
}

void WorkloadGenerator::refresh_profiles(
    std::vector<query::InterestProfile>& profiles) const {
  for (auto& p : profiles) {
    const double input = p.input_rate(space_);
    const double frac = p.query.value() < output_fraction_.size()
                            ? output_fraction_[p.query.value()]
                            : 0.15;
    p.output_rate = frac * input;
    p.load = query::kLoadPerByteRate * input;
    p.state_size = params_.state_per_input_rate * input;
  }
}

}  // namespace cosmos::sim
