#include "cql/parser.h"

#include <cmath>

#include "cql/lexer.h"

namespace cosmos::cql {
namespace {

using query::QuerySpec;
using query::SelectItem;
using query::SourceRef;
using stream::CmpOp;
using stream::FieldRef;
using stream::Predicate;
using stream::PredicatePtr;
using stream::Value;
using stream::WindowSpec;

class Parser {
 public:
  explicit Parser(const std::string& text) : tokens_(tokenize(text)) {}

  QuerySpec parse() {
    QuerySpec q;
    expect_keyword("SELECT");
    parse_select_list(q);
    expect_keyword("FROM");
    parse_source_list(q);
    if (peek().is_keyword("WHERE")) {
      advance();
      q.where = parse_or();
    }
    if (peek().kind != TokenKind::kEnd) {
      throw ParseError{"trailing input '" + peek().text + "'", peek().offset};
    }
    return q;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  void expect_keyword(const char* kw) {
    if (!peek().is_keyword(kw)) {
      throw ParseError{std::string{"expected "} + kw, peek().offset};
    }
    advance();
  }
  void expect_symbol(const char* s) {
    if (!peek().is_symbol(s)) {
      throw ParseError{std::string{"expected '"} + s + "'", peek().offset};
    }
    advance();
  }
  std::string expect_ident() {
    if (peek().kind != TokenKind::kIdent) {
      throw ParseError{"expected identifier", peek().offset};
    }
    return advance().text;
  }

  void parse_select_list(QuerySpec& q) {
    if (peek().is_symbol("*")) {
      advance();
      q.select_all = true;
      return;
    }
    while (true) {
      std::string first = expect_ident();
      if (peek().is_symbol(".")) {
        advance();
        if (peek().is_symbol("*")) {
          advance();
          q.select.push_back({first, ""});
        } else {
          q.select.push_back({first, expect_ident()});
        }
      } else {
        // Bare field: alias resolved later (empty alias = unique source).
        q.select.push_back({"", first});
      }
      if (!peek().is_symbol(",")) break;
      advance();
    }
  }

  WindowSpec parse_window() {
    expect_symbol("[");
    WindowSpec w;
    if (peek().is_keyword("NOW")) {
      advance();
      w = WindowSpec::now();
    } else if (peek().is_keyword("UNBOUNDED")) {
      advance();
      w = WindowSpec::unbounded();
    } else if (peek().is_keyword("RANGE")) {
      advance();
      if (peek().kind != TokenKind::kNumber) {
        throw ParseError{"expected window length", peek().offset};
      }
      const double amount = advance().number;
      std::int64_t unit_ms = 1;
      const Token& u = peek();
      if (u.is_keyword("HOUR") || u.is_keyword("HOURS")) {
        unit_ms = 3'600'000;
        advance();
      } else if (u.is_keyword("MINUTE") || u.is_keyword("MINUTES")) {
        unit_ms = 60'000;
        advance();
      } else if (u.is_keyword("SECOND") || u.is_keyword("SECONDS")) {
        unit_ms = 1'000;
        advance();
      } else if (u.is_keyword("MS") || u.is_keyword("MILLISECONDS")) {
        unit_ms = 1;
        advance();
      } else {
        throw ParseError{"expected time unit", u.offset};
      }
      w = WindowSpec::range_millis(
          static_cast<std::int64_t>(std::llround(amount * unit_ms)));
    } else {
      throw ParseError{"expected NOW, RANGE or UNBOUNDED", peek().offset};
    }
    expect_symbol("]");
    return w;
  }

  void parse_source_list(QuerySpec& q) {
    while (true) {
      SourceRef src;
      src.stream = expect_ident();
      src.window = peek().is_symbol("[") ? parse_window() : WindowSpec::now();
      if (peek().is_keyword("AS")) advance();
      src.alias =
          peek().kind == TokenKind::kIdent ? advance().text : src.stream;
      q.sources.push_back(std::move(src));
      if (!peek().is_symbol(",")) break;
      advance();
    }
    // Resolve bare select fields now that aliases are known.
    for (auto& item : q.select) {
      if (item.alias.empty()) {
        if (q.sources.size() != 1) {
          throw ParseError{"unqualified column '" + item.field +
                               "' with multiple sources",
                           0};
        }
        item.alias = q.sources[0].alias;
      }
    }
  }

  PredicatePtr parse_or() {
    std::vector<PredicatePtr> terms{parse_and()};
    while (peek().is_keyword("OR")) {
      advance();
      terms.push_back(parse_and());
    }
    return Predicate::disj(std::move(terms));
  }

  PredicatePtr parse_and() {
    std::vector<PredicatePtr> terms{parse_primary()};
    while (peek().is_keyword("AND")) {
      advance();
      terms.push_back(parse_primary());
    }
    return Predicate::conj(std::move(terms));
  }

  PredicatePtr parse_primary() {
    if (peek().is_keyword("NOT")) {
      advance();
      return Predicate::negate(parse_primary());
    }
    if (peek().is_symbol("(")) {
      advance();
      auto inner = parse_or();
      expect_symbol(")");
      return inner;
    }
    return parse_comparison();
  }

  struct Operand {
    bool is_field = false;
    FieldRef field;
    Value value;
  };

  Operand parse_operand() {
    if (peek().kind == TokenKind::kNumber) {
      const Token& t = advance();
      if (t.text.find('.') == std::string::npos) {
        return {false, {}, Value{static_cast<std::int64_t>(t.number)}};
      }
      return {false, {}, Value{t.number}};
    }
    if (peek().kind == TokenKind::kString) {
      return {false, {}, Value{advance().text}};
    }
    std::string first = expect_ident();
    if (peek().is_symbol(".")) {
      advance();
      return {true, {first, expect_ident()}, {}};
    }
    return {true, {"", first}, {}};
  }

  CmpOp parse_cmp_op() {
    const Token& t = peek();
    CmpOp op;
    if (t.is_symbol("<")) {
      op = CmpOp::kLt;
    } else if (t.is_symbol("<=")) {
      op = CmpOp::kLe;
    } else if (t.is_symbol(">")) {
      op = CmpOp::kGt;
    } else if (t.is_symbol(">=")) {
      op = CmpOp::kGe;
    } else if (t.is_symbol("=")) {
      op = CmpOp::kEq;
    } else if (t.is_symbol("!=")) {
      op = CmpOp::kNe;
    } else {
      throw ParseError{"expected comparison operator", t.offset};
    }
    advance();
    return op;
  }

  PredicatePtr parse_comparison() {
    const Operand lhs = parse_operand();
    const CmpOp op = parse_cmp_op();
    const Operand rhs = parse_operand();
    if (lhs.is_field && rhs.is_field) {
      return Predicate::cmp(lhs.field, op, rhs.field);
    }
    if (lhs.is_field) return Predicate::cmp(lhs.field, op, rhs.value);
    if (rhs.is_field) {
      return Predicate::cmp(rhs.field, stream::flip(op), lhs.value);
    }
    throw ParseError{"comparison needs at least one field", peek().offset};
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

query::QuerySpec parse_query(const std::string& text, QueryId id,
                             NodeId proxy) {
  Parser parser{text};
  query::QuerySpec q = parser.parse();
  q.id = id;
  q.proxy = proxy;
  q.text = text;
  query::validate(q);
  return q;
}

}  // namespace cosmos::cql
