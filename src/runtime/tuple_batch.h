// The unit of bulk data movement in the execution runtime: a batch of
// tuples on one stream, stored column-separated — timestamps in their own
// contiguous array (the hottest column: ordering checks and window math
// touch nothing else) and values flattened row-major in one arena. Moving
// one TupleBatch across a shard queue costs one synchronization regardless
// of how many tuples it carries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stream/schema.h"

namespace cosmos::runtime {

class TupleBatch {
 public:
  TupleBatch() = default;
  explicit TupleBatch(std::string stream) : stream_(std::move(stream)) {}

  [[nodiscard]] const std::string& stream() const noexcept { return stream_; }
  /// Number of rows (tuples).
  [[nodiscard]] std::size_t size() const noexcept { return ts_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ts_.empty(); }
  /// Number of value columns; fixed by the first appended row.
  [[nodiscard]] std::size_t width() const noexcept {
    return width_ == kNoWidth ? 0 : width_;
  }

  /// Appends a tuple; throws std::invalid_argument if its value count
  /// differs from the batch width.
  void push_back(const stream::Tuple& t);
  /// Move-aware append: the tuple's values are moved into the arena
  /// (string payloads transfer instead of copying).
  void push_back(stream::Tuple&& t);
  /// Appends a row from parts, moving the values in. The batch-at-a-time
  /// operator paths assemble output rows with this to avoid a Tuple copy.
  void push_row(stream::Timestamp ts, std::vector<stream::Value>&& values);

  [[nodiscard]] stream::Timestamp ts(std::size_t row) const {
    return ts_.at(row);
  }
  [[nodiscard]] const stream::Value& at(std::size_t row,
                                        std::size_t col) const;
  /// Materializes one row as a Tuple (copies the values).
  [[nodiscard]] stream::Tuple row(std::size_t i) const;
  /// Same, reusing `out`'s storage (the engine fast path's scratch tuple).
  void materialize(std::size_t i, stream::Tuple& out) const;

  /// Raw column views for the compiled batch-evaluation hot path: the
  /// timestamp array and the row-major value arena (row i's values start at
  /// values_data() + i * width()). Valid until the next mutation.
  [[nodiscard]] const stream::Timestamp* ts_data() const noexcept {
    return ts_.data();
  }
  [[nodiscard]] const stream::Value* values_data() const noexcept {
    return values_.data();
  }

  /// First/last row timestamps; batch must be non-empty.
  [[nodiscard]] stream::Timestamp first_ts() const { return ts_.at(0); }
  [[nodiscard]] stream::Timestamp last_ts() const {
    return ts_.at(ts_.size() - 1);
  }
  /// True if row timestamps are non-decreasing (what engines require).
  [[nodiscard]] bool timestamps_ordered() const noexcept;

  /// Splits into consecutive chunks of at most `max_rows` rows each; row
  /// order is preserved, so concatenating the chunks round-trips.
  [[nodiscard]] std::vector<TupleBatch> split(std::size_t max_rows) const;

  /// Appends all rows of `other` (the merge half of split/merge). Stream
  /// and width must match unless this batch is empty, in which case it
  /// adopts them.
  void append(const TupleBatch& other);

  /// New batch holding the given rows (ascending indices => row order,
  /// hence timestamp order, is preserved).
  [[nodiscard]] TupleBatch select(const std::vector<std::uint32_t>& rows) const;

  void clear() noexcept {
    ts_.clear();
    values_.clear();
    width_ = kNoWidth;
  }

  friend bool operator==(const TupleBatch&, const TupleBatch&) = default;

 private:
  static constexpr std::size_t kNoWidth = SIZE_MAX;

  std::string stream_;
  std::size_t width_ = kNoWidth;
  std::vector<stream::Timestamp> ts_;
  std::vector<stream::Value> values_;  ///< size() * width(), row-major
};

}  // namespace cosmos::runtime
