// Quickstart: parse a CQL query, run it on the stream engine, and watch
// results arrive.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cql/parser.h"
#include "query/plan.h"
#include "sim/sensor_trace.h"
#include "stream/engine.h"

using namespace cosmos;

int main() {
  // 1. An engine with two sensor streams.
  stream::Engine engine;
  engine.register_stream("Station1", sim::sensor_schema());
  engine.register_stream("Station2", sim::sensor_schema());

  // 2. A continuous query in the paper's CQL dialect (Table 1, Q3).
  const auto q = cql::parse_query(
      "SELECT S2.* "
      "FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
      QueryId{3});
  std::printf("query: %s\n", q.to_cql().c_str());

  // 3. Compile it; results are published on a derived stream.
  query::CompiledQuery plan{engine, q, "q3.results"};
  std::size_t results = 0;
  engine.attach("q3.results", [&results](const stream::Tuple& t) {
    if (++results <= 5) {
      std::printf("  result #%zu @t=%lld: snowHeight=%.1f\n", results,
                  static_cast<long long>(t.ts), t.at(0).as_double());
    }
  });

  // 4. Feed a synthetic SensorScope-style trace.
  sim::SensorTraceParams params;
  params.stations = 2;
  params.readings_per_station = 200;
  Rng rng{42};
  for (const auto& r : sim::make_sensor_trace(params, rng)) {
    engine.publish(sim::station_stream_name(r.station), r.tuple);
  }

  std::printf("total results: %zu (from %zu readings per station)\n", results,
              params.readings_per_station);
  return 0;
}
