// The driver half of a federated run: Cosmos::run_federated and its state
// (Cosmos::Fed). Each worker is a cosmos_noded process reached over one
// wire::FrameChannel; the channel's reader thread funnels every inbound
// frame into a small mutex-guarded inbox the driver thread waits on.
//
// Determinism argument, mirroring run(): routing happens on the driver in
// chunk/run order, execute frames for one engine all travel one FIFO
// channel to one worker whose runtime pins the engine to one shard, and p2
// result delivery runs on the driver thread in per-channel arrival order —
// so per-query result sequences are byte-identical to push() at any worker
// count. The per-chunk match barrier of run() is relaxed to a bounded
// window of in-flight chunks: a chunk's match responses are awaited only
// when the window is full (or at a migration / end of trace), never later
// than max_inflight_chunks chunks behind the dispatch frontier.
#include "cosmos/cosmos.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "obs/trace.h"
#include "wire/channel.h"
#include "wire/messages.h"
#include "wire/socket.h"

namespace cosmos::middleware {

struct Cosmos::Fed {
  Fed(Cosmos& system, const FederationOptions& opts)
      : sys(system), options(opts), trace(opts.trace_path) {
    trace.add_process_name(0, "driver");
    e2e = &reg.histogram("e2e_latency_ns");
  }

  ~Fed() {
    // Stop treating closes as faults, then tear the channels down (close
    // joins each channel's reader, so after this loop no callback can
    // touch the inbox state above).
    {
      std::lock_guard lock{mu};
      expect_close = true;
    }
    for (auto& w : workers) {
      if (w.channel) w.channel->close();
    }
  }
  Fed(const Fed&) = delete;
  Fed& operator=(const Fed&) = delete;

  Cosmos& sys;
  const FederationOptions& options;
  /// Declared before `workers` (members die in reverse order): the session
  /// destructor drains span rings and writes the merged Chrome trace file,
  /// and must run only after the channel reader threads have joined.
  obs::TraceSession trace;
  /// Driver-side registry; e2e points at its ingest-to-delivery histogram.
  obs::MetricsRegistry reg;
  obs::Histogram* e2e = nullptr;

  // --- inbox: reader threads write, the driver thread waits (guard: mu).
  std::mutex mu;
  std::condition_variable cv;
  std::string error;  ///< first worker fault; sticky, fails every wait
  std::size_t hello_acks = 0;
  std::map<std::uint64_t, std::size_t> flush_acks;  ///< seq -> ack count
  std::unordered_map<std::uint64_t, wire::MatchResponseMsg> match_responses;
  std::vector<wire::ResultEventMsg> results_inbox;  ///< arrival order
  std::optional<wire::StateHandoffMsg> handoff;
  std::uint64_t handoff_wire_bytes = 0;  ///< frame size of the handoff
  std::optional<NodeId> migrate_ack;
  std::vector<pubsub::TrafficStats> traffic_reports;
  std::vector<wire::StatsSampleMsg> samples_inbox;  ///< arrival order
  bool expect_close = false;  ///< set before kBye: closes are then orderly

  // --- driver-thread-only state.
  std::unordered_map<std::string, std::size_t> worker_of_stream;
  std::unordered_map<NodeId, std::size_t> worker_of_engine;
  std::uint64_t next_job = 0;
  std::uint64_t next_flush_seq = 0;
  std::size_t next_migration = 0;

  /// One dispatched run awaiting (or exempt from) its match response.
  struct PendingRun {
    std::shared_ptr<const runtime::TupleBatch> run;
    std::uint64_t job = 0;
    bool awaiting = false;  ///< false: zero subscriptions, nothing to match
  };
  struct PendingChunk {
    std::vector<PendingRun> runs;
    stream::Timestamp last_ts = 0;
    std::uint64_t ingest_ns = 0;  ///< Chunk::ingest_ns, echoed on executes
  };
  std::deque<PendingChunk> pending;

  RunReport report;

  // Declared last so channel destruction (which joins the reader threads)
  // precedes destruction of everything the reader callbacks capture.
  struct Worker {
    std::string endpoint;
    std::unique_ptr<wire::FrameChannel> channel;
  };
  std::vector<Worker> workers;

  // --- reader-side handlers -----------------------------------------------

  void fail(std::size_t i, const std::string& what) {
    std::lock_guard lock{mu};
    if (error.empty()) {
      error = "worker " + std::to_string(i) + " (" + workers[i].endpoint +
              "): " + what;
    }
  }

  void on_frame(std::size_t i, wire::Frame frame) {
    try {
      switch (frame.type) {
        case wire::FrameType::kHelloAck: {
          (void)wire::decode_hello_ack(frame);
          std::lock_guard lock{mu};
          ++hello_acks;
          break;
        }
        case wire::FrameType::kMatchResponse: {
          auto m = wire::decode_match_response(frame);
          std::lock_guard lock{mu};
          match_responses.emplace(m.job, std::move(m));
          break;
        }
        case wire::FrameType::kResult: {
          auto m = wire::decode_result(frame);
          std::lock_guard lock{mu};
          for (auto& ev : m.events) results_inbox.push_back(std::move(ev));
          break;
        }
        case wire::FrameType::kFlushAck: {
          const auto m = wire::decode_flush_ack(frame);
          std::lock_guard lock{mu};
          ++flush_acks[m.seq];
          break;
        }
        case wire::FrameType::kStateHandoff: {
          const std::uint64_t wire_bytes =
              frame.payload.size() + wire::kFrameHeaderBytes;
          auto m = wire::decode_state_handoff(frame);
          std::lock_guard lock{mu};
          handoff = std::move(m);
          handoff_wire_bytes = wire_bytes;
          break;
        }
        case wire::FrameType::kMigrateAck: {
          const auto m = wire::decode_migrate_ack(frame);
          std::lock_guard lock{mu};
          migrate_ack = m.engine;
          break;
        }
        case wire::FrameType::kTrafficReport: {
          auto m = wire::decode_traffic_report(frame);
          std::lock_guard lock{mu};
          traffic_reports.push_back(std::move(m.traffic));
          break;
        }
        case wire::FrameType::kStatsSample: {
          auto m = wire::decode_stats_sample(frame);
          std::lock_guard lock{mu};
          samples_inbox.push_back(std::move(m));
          break;
        }
        case wire::FrameType::kError:
          fail(i, wire::decode_error(frame).message);
          break;
        default:
          fail(i, std::string{"unexpected frame "} +
                      wire::to_string(frame.type));
          break;
      }
    } catch (const std::exception& e) {
      fail(i, e.what());
    }
    cv.notify_all();
  }

  void on_close(std::size_t i, const std::string& err) {
    {
      std::lock_guard lock{mu};
      if (!expect_close && error.empty()) {
        error = "worker " + std::to_string(i) + " (" + workers[i].endpoint +
                "): " +
                (err.empty() ? std::string{"disconnected mid-session"} : err);
      }
    }
    cv.notify_all();
  }

  // --- driver-side plumbing -----------------------------------------------

  /// Waits until `pred` holds or any worker faulted (then throws — every
  /// wait in the protocol is fault-aware, so a dead peer never hangs us).
  template <typename Pred>
  void wait_for(std::unique_lock<std::mutex>& lock, Pred pred) {
    cv.wait(lock, [&] { return !error.empty() || pred(); });
    if (!error.empty()) {
      throw std::runtime_error{"Cosmos federation: " + error};
    }
  }

  void send(std::size_t w, wire::Frame frame) {
    workers[w].channel->send(std::move(frame));
  }

  void broadcast(const wire::Frame& frame) {
    for (std::size_t w = 0; w < workers.size(); ++w) send(w, frame);
  }

  std::int64_t link_delay(std::size_t i) const {
    return i < options.link_delay_ms.size() ? options.link_delay_ms[i] : 0;
  }

  void connect_all() {
    workers.reserve(options.workers.size());
    for (std::size_t i = 0; i < options.workers.size(); ++i) {
      Worker w;
      w.endpoint = options.workers[i];
      wire::FrameChannel::Options copts;
      copts.send_queue_capacity = options.queue_capacity;
      copts.send_delay_ms = link_delay(i);
      w.channel = std::make_unique<wire::FrameChannel>(
          wire::connect_to(wire::Endpoint::parse(w.endpoint)), copts);
      workers.push_back(std::move(w));
    }
    for (std::size_t i = 0; i < workers.size(); ++i) {
      workers[i].channel->start_reader(
          [this, i](wire::Frame f) { on_frame(i, std::move(f)); },
          [this, i](const std::string& err) { on_close(i, err); });
    }
    for (std::size_t i = 0; i < workers.size(); ++i) {
      wire::HelloMsg hello;
      hello.worker_index = static_cast<std::uint32_t>(i);
      hello.shards = static_cast<std::uint32_t>(
          options.worker_shards == 0 ? 1 : options.worker_shards);
      hello.send_delay_ms = link_delay(i);
      hello.stats_sample_every_ms = options.stats_sample_every_ms;
      hello.trace = options.trace_path.empty() ? 0 : 1;
      send(i, wire::encode_hello(hello));
    }
    std::unique_lock lock{mu};
    wait_for(lock, [&] { return hello_acks >= workers.size(); });
  }

  /// Ships everything a worker needs to be the driver's twin: the exact
  /// topology (same doubles -> same overlay tree), every source stream's
  /// advertisement, every p1 subscription under its driver-assigned id,
  /// and each unit's deployment to the worker that will host its engine.
  void replicate() {
    const auto& lat = sys.broker_.latency_matrix();
    wire::TopologyMsg topo;
    topo.participants = sys.broker_.participants();
    topo.members = lat.members();
    topo.dense = lat.dense();
    topo.use_index = true;
    broadcast(wire::encode_topology(topo));

    // Result streams stay driver-side: workers host the engines that emit
    // them and ship the tuples back raw; p2 matching/delivery (and its
    // traffic accounting) happens on the driver's own broker.
    std::set<std::string> result_streams;
    for (const auto& [uid, unit] : sys.units_) {
      result_streams.insert(unit.result_stream);
    }

    for (auto* part : sys.broker_.partitions()) {
      if (result_streams.contains(part->stream())) continue;
      wire::RegisterStreamMsg reg;
      reg.stream = part->stream();
      reg.publisher = part->publisher();
      reg.schema = part->schema();
      broadcast(wire::encode_register_stream(reg));
      // Static stream ownership: the publisher node's index modulo the
      // worker count, the same deterministic spread run() uses for shards.
      worker_of_stream.emplace(part->stream(),
                               part->publisher().value() % workers.size());
    }

    for (const auto& [uid, unit] : sys.units_) {
      for (const auto sid : unit.p1_subs) {
        const auto* sub = sys.broker_.subscription(sid);
        if (sub == nullptr) {
          throw std::logic_error{"Cosmos: unit holds a dangling p1 sub"};
        }
        // Broadcast: only the stream's owner ever matches it, but having
        // the full subscription table everywhere means a migrated engine's
        // destination needs no extra registration traffic.
        broadcast(wire::encode_subscribe({*sub}));
      }
    }

    for (const auto& [uid, unit] : sys.units_) {
      const std::size_t host_worker = unit.host.value() % workers.size();
      worker_of_engine[unit.host] = host_worker;
      wire::DeployUnitMsg deploy;
      deploy.unit_id = unit.id;
      deploy.host = unit.host;
      deploy.result_stream = unit.result_stream;
      deploy.spec = unit.spec;
      send(host_worker, wire::encode_deploy_unit(deploy));
    }

    // Barrier: surfaces registration/deployment faults before any data
    // flows (per-channel FIFO already orders the frames themselves).
    flush_all();
  }

  void await_flush(std::uint64_t seq, std::size_t acks_needed) {
    std::unique_lock lock{mu};
    wait_for(lock, [&] {
      const auto it = flush_acks.find(seq);
      return it != flush_acks.end() && it->second >= acks_needed;
    });
    flush_acks.erase(seq);
  }

  void flush_worker(std::size_t w) {
    const std::uint64_t seq = next_flush_seq++;
    send(w, wire::encode_flush({seq}));
    await_flush(seq, 1);
  }

  void flush_all() {
    const std::uint64_t seq = next_flush_seq++;
    for (std::size_t w = 0; w < workers.size(); ++w) {
      send(w, wire::encode_flush({seq}));
    }
    await_flush(seq, workers.size());
  }

  /// p2 leg: result tuples the readers collected, delivered on the driver
  /// thread in arrival order (per engine that is emission order — one
  /// engine lives on one worker, whose channel is FIFO).
  void drain_deliver() {
    std::vector<wire::ResultEventMsg> batch;
    {
      std::lock_guard lock{mu};
      batch.swap(results_inbox);
    }
    if (batch.empty()) return;
    const double cpu0 = thread_cpu_seconds();
    const obs::Span span{"deliver", "driver", batch.size()};
    const std::uint64_t now = now_ns();
    for (const auto& ev : batch) {
      // Close the end-to-end measurement here: p2 delivery completes on
      // the driver thread, and worker/driver now_ns share a clock epoch
      // (same host, CLOCK_MONOTONIC), so ingest stamps compare directly.
      if (ev.ingest_ns != 0 && now > ev.ingest_ns) {
        e2e->record(now - ev.ingest_ns);
      }
      sys.deliver_result(ev.stream, ev.tuple);
    }
    report.driver.deliver_cpu_seconds += thread_cpu_seconds() - cpu0;
  }

  // --- chunk pipeline ------------------------------------------------------

  void dispatch(runtime::Chunk&& chunk) {
    const double cpu0 = thread_cpu_seconds();
    const obs::Span span{"dispatch", "driver", chunk.runs.size()};
    PendingChunk pc;
    pc.last_ts = chunk.last_ts;
    pc.ingest_ns = chunk.ingest_ns;
    pc.runs.reserve(chunk.runs.size());
    for (runtime::TupleBatch& run : chunk.runs) {
      auto* part = sys.broker_.partition(run.stream());
      if (part == nullptr) {
        // Same contract as push(): publishing an unadvertised stream is a
        // caller error, not a silent drop.
        throw std::invalid_argument{
            "BrokerNetwork: publish to unadvertised " + run.stream()};
      }
      PendingRun pr;
      pr.run = std::make_shared<const runtime::TupleBatch>(std::move(run));
      // The driver's partition holds exactly the p1 subscriptions the
      // owner worker's does, so the skip-when-unsubscribed fast path can
      // be decided locally without a round trip.
      if (part->subscription_count() > 0) {
        const auto oit = worker_of_stream.find(pr.run->stream());
        if (oit == worker_of_stream.end()) {
          throw std::invalid_argument{
              "Cosmos: federated trace event on non-source stream " +
              pr.run->stream()};
        }
        pr.job = next_job++;
        pr.awaiting = true;
        send(oit->second, wire::encode_match_request({pr.job, *pr.run}));
      }
      pc.runs.push_back(std::move(pr));
    }
    pending.push_back(std::move(pc));
    ++report.chunks;
    report.driver.dispatch_cpu_seconds += thread_cpu_seconds() - cpu0;
  }

  /// Awaits the oldest in-flight chunk's match responses, routes them into
  /// per-engine executes, and broadcasts the chunk watermark.
  void complete_front() {
    PendingChunk chunk = std::move(pending.front());
    pending.pop_front();

    std::vector<wire::MatchResponseMsg> responses(chunk.runs.size());
    {
      const TimePoint wait0 = Clock::now();
      const obs::Span span{"match_wait", "driver", chunk.runs.size()};
      std::unique_lock lock{mu};
      wait_for(lock, [&] {
        for (const auto& pr : chunk.runs) {
          if (pr.awaiting && !match_responses.contains(pr.job)) return false;
        }
        return true;
      });
      report.driver.match_wait_seconds += seconds_since(wait0);
      for (std::size_t i = 0; i < chunk.runs.size(); ++i) {
        if (!chunk.runs[i].awaiting) continue;
        auto node = match_responses.extract(chunk.runs[i].job);
        responses[i] = std::move(node.mapped());
      }
    }

    route_and_execute(chunk, responses);
    // Watermark after the chunk's executes (FIFO orders it behind them on
    // every channel): join-state pruning then only drops tuples no future
    // in-order arrival can pair with, so results are unchanged.
    broadcast(wire::encode_watermark({chunk.last_ts}));
  }

  /// The route stage of run(), verbatim but frame-producing: union of
  /// matched rows per subscriber engine (a tuple reaches an engine once
  /// however many subscriptions matched), per-engine batches in run order.
  void route_and_execute(const PendingChunk& chunk,
                         std::vector<wire::MatchResponseMsg>& responses) {
    const double route_cpu0 = thread_cpu_seconds();
    std::optional<obs::Span> route_span;
    route_span.emplace("route", "driver", chunk.runs.size());
    std::map<NodeId, std::vector<wire::Frame>> per_node;  // ordered dispatch
    std::map<NodeId, std::vector<char>> mask_of;
    for (std::size_t i = 0; i < chunk.runs.size(); ++i) {
      const auto& run = *chunk.runs[i].run;
      mask_of.clear();
      for (auto& [sub_id, rows] : responses[i].deliveries) {
        const auto* sub = sys.broker_.subscription(sub_id);
        if (sub == nullptr) {
          throw wire::Error{
              "Cosmos federation: match response names unknown subscription"};
        }
        if (sys.p2_owner_.contains(sub_id)) continue;
        auto& mask =
            mask_of.try_emplace(sub->subscriber, run.size(), char{0})
                .first->second;
        for (const auto row : rows) {
          if (row >= mask.size()) {
            throw wire::Error{"Cosmos federation: matched row out of range"};
          }
          mask[row] = 1;
        }
      }
      for (const auto& [node, mask] : mask_of) {
        const auto eit = sys.engines_.find(node);
        if (eit == sys.engines_.end() ||
            !eit->second->has_stream(run.stream())) {
          continue;
        }
        std::size_t matched_rows = 0;
        for (const char m : mask) matched_rows += m != 0;
        if (matched_rows == 0) continue;
        wire::ExecuteMsg exec;
        exec.engine = node;
        exec.ingest_ns = chunk.ingest_ns;
        if (matched_rows < run.size()) {
          std::vector<std::uint32_t> rows;
          rows.reserve(matched_rows);
          for (std::uint32_t r = 0; r < mask.size(); ++r) {
            if (mask[r] != 0) rows.push_back(r);
          }
          exec.batch = run.select(rows);
        } else {
          exec.batch = run;
        }
        per_node[node].push_back(wire::encode_execute(exec));
      }
    }
    route_span.reset();
    report.driver.route_cpu_seconds += thread_cpu_seconds() - route_cpu0;

    const double dispatch_cpu0 = thread_cpu_seconds();
    const obs::Span dispatch_span{"dispatch", "driver", per_node.size()};
    for (auto& [node, frames] : per_node) {
      const std::size_t w = worker_of_engine.at(node);
      for (auto& f : frames) send(w, std::move(f));
    }
    report.driver.dispatch_cpu_seconds += thread_cpu_seconds() - dispatch_cpu0;
  }

  // --- live migration ------------------------------------------------------

  void run_migrations_due(stream::Timestamp now) {
    while (next_migration < options.migrations.size() &&
           options.migrations[next_migration].at_ms <= now) {
      migrate(options.migrations[next_migration]);
      ++next_migration;
    }
  }

  /// Drain -> serialize -> handoff: quiesce the source worker, pull the
  /// engine's serialized join state off it, and redeploy units + state on
  /// the destination. In-flight window must be empty first — otherwise a
  /// pending chunk could still route executes to the source.
  void migrate(const FederationOptions::Migration& m) {
    const auto wit = worker_of_engine.find(m.engine);
    if (wit == worker_of_engine.end()) {
      throw std::invalid_argument{"Cosmos: migration of unknown engine " +
                                  std::to_string(m.engine.value())};
    }
    const std::size_t src = wit->second;
    const std::size_t dst = m.to_worker % workers.size();
    if (src == dst) return;

    const obs::Span span{"migrate", "driver", m.engine.value()};
    obs::Tracer::instance().instant("migration", "driver", m.engine.value());

    while (!pending.empty()) complete_front();
    flush_worker(src);
    drain_deliver();

    send(src, wire::encode_migrate_out({m.engine}));
    wire::StateHandoffMsg handed;
    std::uint64_t handed_bytes = 0;
    {
      std::unique_lock lock{mu};
      wait_for(lock, [&] { return handoff.has_value(); });
      handed = std::move(*handoff);
      handoff.reset();
      handed_bytes = handoff_wire_bytes;
    }
    if (handed.engine != m.engine) {
      throw std::runtime_error{
          "Cosmos federation: state handoff for an unexpected engine"};
    }

    wire::MigrateInMsg in;
    in.engine = m.engine;
    for (const auto& [uid, unit] : sys.units_) {
      if (unit.host != m.engine) continue;
      in.units.push_back({unit.id, unit.host, unit.result_stream, unit.spec});
    }
    in.state = std::move(handed.units);
    send(dst, wire::encode_migrate_in(in));
    {
      std::unique_lock lock{mu};
      wait_for(lock, [&] { return migrate_ack.has_value(); });
      migrate_ack.reset();
    }

    wit->second = dst;
    ++report.federation.migrations;
    report.federation.state_bytes_migrated += handed_bytes;
  }

  /// Folds every received kStatsSample into the report timeline (ordered
  /// by (now_ms, worker)) and hands worker spans to the trace session,
  /// re-homed under pid = worker index + 1.
  void harvest_samples() {
    std::vector<wire::StatsSampleMsg> batch;
    {
      std::lock_guard lock{mu};
      batch.swap(samples_inbox);
    }
    for (auto& s : batch) {
      WorkerSample sample;
      sample.worker = s.worker_index;
      sample.now_ms = s.now_ms;
      sample.metrics = std::move(s.metrics);
      report.federation.samples.push_back(std::move(sample));
      if (!s.spans.empty()) {
        const std::uint32_t pid = s.worker_index + 1;
        for (auto& span : s.spans) span.pid = pid;
        trace.add_process_name(pid,
                               "worker " + std::to_string(s.worker_index));
        trace.add_foreign(std::move(s.spans));
      }
    }
    std::stable_sort(report.federation.samples.begin(),
                     report.federation.samples.end(),
                     [](const WorkerSample& a, const WorkerSample& b) {
                       return a.now_ms != b.now_ms ? a.now_ms < b.now_ms
                                                   : a.worker < b.worker;
                     });
  }

  // --- end of session ------------------------------------------------------

  /// Worker p1 matching shares + the driver's own p2 delivery share = the
  /// totals the in-process broker would have accounted.
  void collect_traffic() {
    {
      std::lock_guard lock{mu};
      traffic_reports.clear();
    }
    broadcast(wire::encode_traffic_request());
    pubsub::TrafficStats merged;
    {
      std::unique_lock lock{mu};
      wait_for(lock, [&] { return traffic_reports.size() >= workers.size(); });
      for (const auto& t : traffic_reports) merged.merge(t);
    }
    merged.merge(sys.broker_.traffic());
    report.federation.matched_traffic = std::move(merged);
  }

  void shutdown() {
    {
      std::lock_guard lock{mu};
      expect_close = true;
    }
    for (std::size_t w = 0; w < workers.size(); ++w) {
      try {
        send(w, wire::encode_bye());
      } catch (const std::exception&) {
        // Channel already dead; its fault was or will be reported.
      }
      workers[w].channel->close();
    }
    for (const auto& w : workers) {
      WireLinkStats link;
      link.endpoint = w.endpoint;
      link.bytes_sent = w.channel->bytes_sent();
      link.bytes_received = w.channel->bytes_received();
      link.frames_sent = w.channel->frames_sent();
      link.frames_received = w.channel->frames_received();
      report.federation.links.push_back(std::move(link));
    }
  }

  RunReport run(const std::vector<runtime::TraceEvent>& events) {
    connect_all();
    replicate();

    const std::size_t results_before = sys.results_delivered_;
    const std::size_t window =
        options.max_inflight_chunks == 0 ? 1 : options.max_inflight_chunks;
    const TimePoint ingest_start = Clock::now();
    const double driver_cpu_start = thread_cpu_seconds();

    runtime::Driver driver{
        {options.batch_size, options.tick_ms},
        [&](runtime::Chunk&& chunk) {
          run_migrations_due(chunk.first_ts);
          dispatch(std::move(chunk));
          while (pending.size() >= window) complete_front();
          drain_deliver();  // keep the p2 inbox bounded in practice
        }};
    for (const auto& ev : events) driver.push(ev.stream, ev.tuple);
    driver.finish();

    while (!pending.empty()) complete_front();
    // Flush acks follow each worker's last results on its FIFO channel, so
    // after this barrier the inbox holds every result of the run.
    flush_all();
    drain_deliver();
    report.ingest_seconds = seconds_since(ingest_start);
    report.driver_cpu_seconds = thread_cpu_seconds() - driver_cpu_start;

    collect_traffic();
    // After the final flush barrier every worker's closing sample (sent
    // ahead of its flush ack on the FIFO channel) is already in the inbox.
    harvest_samples();
    shutdown();

    report.tuples = driver.tuples();
    report.results_delivered = sys.results_delivered_ - results_before;
    report.federation.workers = workers.size();
    report.e2e_latency = e2e->snapshot();
    report.metrics = reg.snapshot();
    return std::move(report);
  }
};

Cosmos::RunReport Cosmos::run_federated(
    const std::vector<runtime::TraceEvent>& events,
    const FederationOptions& options) {
  if (options.workers.empty()) {
    throw std::invalid_argument{"Cosmos: run_federated needs >= 1 worker"};
  }
  Fed fed{*this, options};
  return fed.run(events);
}

}  // namespace cosmos::middleware
