// Shared vocabulary of the adaptation subsystem: live, load-aware operator
// migration across runtime shards — the in-process analogue of the paper's
// Section 3 query migration. Where coord::Hierarchy::adapt() re-optimizes
// the *placement plan* offline, src/adapt/ reacts to *observed* load while
// a trace is executing: a LoadMonitor samples per-engine counters from the
// runtime every driver chunk, a MigrationPlanner trades critical-path
// reduction against migration cost (operator state size, as in Algorithm 3
// / query::Interest::state_size), and a Migrator re-pins engines between
// chunks via drain + map update, preserving per-engine input order so
// results stay byte-identical to the unadapted run.
#pragma once

#include <cstddef>
#include <cstdint>

#include "stream/schema.h"

namespace cosmos::adapt {

/// Knobs of the adaptation loop (surfaced through Cosmos::RunOptions).
struct AdaptOptions {
  bool enabled = false;
  /// Sampling / decision period, in stream time (the driver's virtual
  /// clock): one adaptation opportunity per `adapt_every_ms` of trace.
  stream::Timestamp adapt_every_ms = 5 * 60'000;
  /// Trigger: plan migrations when max/mean shard load exceeds this.
  double imbalance_threshold = 1.25;
  /// EWMA smoothing of per-engine load samples (1 = latest sample only).
  double ewma_alpha = 0.5;
  /// Modeled seconds of migration cost per byte of operator state — what a
  /// distributed shard would pay to ship the state over the wire. The
  /// planner subtracts it from a move's critical-path gain.
  double migration_cost_per_byte = 1e-9;
  /// Moves whose net gain (seconds per interval) is below this are not
  /// worth the churn.
  double min_gain_seconds = 1e-4;
  std::size_t max_moves_per_round = 4;
  /// Bytes of operator state per buffered window tuple (join buffers hold
  /// whole tuples; this converts counts to bytes for the cost model).
  double bytes_per_state_tuple = 64.0;
};

/// One planned engine re-pin.
struct Move {
  std::uint64_t engine = 0;  ///< opaque engine id (Runtime Task::engine_id)
  std::size_t from = 0;
  std::size_t to = 0;
  double gain_seconds = 0.0;  ///< modeled critical-path reduction
  double state_bytes = 0.0;   ///< planning-time state estimate
};

/// What adaptation did during one run(); reported next to RunStats.
struct AdaptationReport {
  std::size_t samples = 0;  ///< load samples taken
  std::size_t rounds = 0;   ///< samples where the threshold tripped & moved
  std::size_t moves = 0;    ///< engine re-pins executed
  /// Operator state resident in migrated engines at migration time,
  /// measured after the source shard drained (what a distributed
  /// implementation would have shipped).
  double state_bytes_migrated = 0.0;
  double imbalance_before = 0.0;  ///< max/mean at the first triggered round
  double imbalance_after = 0.0;   ///< modeled max/mean after the last round
  /// Driver wall time spent draining source shards before re-pins.
  double migration_stall_seconds = 0.0;
};

}  // namespace cosmos::adapt
