// Whole-pipeline integration tests: workload -> coordinator tree ->
// distribution -> cost evaluation -> adaptation, plus determinism.
#include <gtest/gtest.h>

#include "coord/hierarchy.h"
#include "sim/baselines.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "sim/workload.h"

namespace cosmos {
namespace {

struct World {
  net::Topology topo;
  net::Deployment deployment;
  std::unique_ptr<coord::CoordinatorTree> tree;
  std::unique_ptr<sim::WorkloadGenerator> workload;

  explicit World(std::uint64_t seed) {
    Rng rng{seed};
    net::TransitStubParams tp;
    tp.transit_domains = 3;
    tp.transit_nodes_per_domain = 2;
    tp.stub_domains_per_transit = 2;
    tp.stub_nodes_per_domain = 18;
    topo = net::make_transit_stub(tp, rng);
    net::DeploymentParams dp;
    dp.num_sources = 10;
    dp.num_processors = 32;
    deployment = net::make_deployment(topo, dp, rng);
    tree = std::make_unique<coord::CoordinatorTree>(deployment, 4, rng);
    sim::WorkloadParams wp;
    wp.num_substreams = 1200;
    wp.groups = 5;
    wp.interest_min = 10;
    wp.interest_max = 25;
    workload = std::make_unique<sim::WorkloadGenerator>(deployment, wp,
                                                        seed + 1);
  }
};

TEST(EndToEnd, FullPipelineIsDeterministic) {
  // Same seeds => byte-identical placements, costs and timings structure.
  std::unordered_map<QueryId, NodeId> p1, p2;
  double c1 = 0, c2 = 0;
  for (int run = 0; run < 2; ++run) {
    World w{123};
    auto profiles = w.workload->make_queries(400);
    coord::HierarchicalDistributor dist{w.deployment, *w.tree,
                                        w.workload->space(),
                                        coord::HierarchyParams{}, 77};
    dist.distribute(profiles);
    const sim::CostModel cost{w.topo, w.deployment};
    std::unordered_map<QueryId, query::InterestProfile> pmap;
    for (const auto& p : profiles) pmap.emplace(p.query, p);
    const double c =
        cost.pairwise_cost(dist.placement(), pmap, w.workload->space())
            .total();
    if (run == 0) {
      p1 = dist.placement();
      c1 = c;
    } else {
      p2 = dist.placement();
      c2 = c;
    }
  }
  EXPECT_EQ(p1, p2);
  EXPECT_DOUBLE_EQ(c1, c2);
}

TEST(EndToEnd, DistributeInsertAdaptLifecycle) {
  World w{5};
  auto profiles = w.workload->make_queries(500);
  coord::HierarchicalDistributor dist{w.deployment, *w.tree,
                                      w.workload->space(),
                                      coord::HierarchyParams{}, 9};
  dist.distribute(profiles);
  ASSERT_EQ(dist.placement().size(), 500u);

  // Online phase: insert, remove, perturb, adapt.
  const auto extra = w.workload->make_queries(100);
  for (const auto& p : extra) dist.insert_query(p);
  EXPECT_EQ(dist.placement().size(), 600u);
  for (std::size_t i = 0; i < 50; ++i) dist.remove_query(profiles[i].query);
  EXPECT_EQ(dist.placement().size(), 550u);

  w.workload->perturb_rates(100, 3.0);
  dist.refresh_statistics();
  const auto report = dist.adapt();
  EXPECT_EQ(dist.placement().size(), 550u);
  EXPECT_LE(report.migrated_queries, 550u);
  for (const auto& [q, node] : dist.placement()) {
    EXPECT_TRUE(w.deployment.is_processor(node));
  }
}

TEST(EndToEnd, HierarchicalWithinReachOfCentralized) {
  // The decentralized scheme should stay within a modest factor of the
  // centralized mapping on the paper's cost metric.
  World w{31};
  const auto profiles = w.workload->make_queries(600);
  coord::HierarchicalDistributor dist{w.deployment, *w.tree,
                                      w.workload->space(),
                                      coord::HierarchyParams{}, 3};
  dist.distribute(profiles);
  Rng crng{4};
  const auto central = sim::centralized_placement(
      profiles, w.deployment, w.workload->space(), {}, {}, true, crng);
  const sim::CostModel cost{w.topo, w.deployment};
  std::unordered_map<QueryId, query::InterestProfile> pmap;
  for (const auto& p : profiles) pmap.emplace(p.query, p);
  const double hier =
      cost.pairwise_cost(dist.placement(), pmap, w.workload->space()).total();
  const double cen =
      cost.pairwise_cost(central.placement, pmap, w.workload->space()).total();
  EXPECT_LT(hier, 1.25 * cen);
}

// Property sweep: across seeds, the pipeline ends load-feasible within the
// (1+alpha) cap at leaf granularity (allowing group-coarsening slack).
class EndToEndProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndProperty, LoadStaysNearFairShare) {
  World w{GetParam()};
  const auto profiles = w.workload->make_queries(400);
  coord::HierarchicalDistributor dist{w.deployment, *w.tree,
                                      w.workload->space(),
                                      coord::HierarchyParams{}, GetParam()};
  dist.distribute(profiles);
  const auto loads = dist.processor_loads();
  double total = 0;
  for (const double l : loads) total += l;
  const double fair = total / static_cast<double>(loads.size());
  for (const double l : loads) EXPECT_LE(l, 3.0 * fair);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndProperty,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace cosmos
