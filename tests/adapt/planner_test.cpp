// MigrationPlanner: trigger condition, greedy move selection, the
// state-size cost term, round caps, and determinism. Pure logic — no
// runtime involved.
#include <gtest/gtest.h>

#include "adapt/planner.h"

namespace cosmos::adapt {
namespace {

EngineLoad engine(std::uint64_t id, std::size_t shard, double cpu,
                  double state_bytes = 0.0) {
  EngineLoad e;
  e.engine = id;
  e.shard = shard;
  e.cpu_seconds = cpu;
  e.state_bytes = state_bytes;
  return e;
}

AdaptOptions options() {
  AdaptOptions o;
  o.enabled = true;
  o.imbalance_threshold = 1.25;
  o.migration_cost_per_byte = 1e-9;
  o.min_gain_seconds = 1e-4;
  return o;
}

TEST(MigrationPlanner, BalancedLoadPlansNothing) {
  const MigrationPlanner planner{options()};
  const auto plan = planner.plan(
      {engine(1, 0, 1.0), engine(2, 1, 1.0), engine(3, 2, 1.0),
       engine(4, 3, 1.0)},
      4);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_DOUBLE_EQ(plan.imbalance_before, 1.0);
  EXPECT_DOUBLE_EQ(plan.imbalance_after, 1.0);
}

TEST(MigrationPlanner, MovesBestEngineOffTheHotShard) {
  const MigrationPlanner planner{options()};
  // Shard 0 carries 3.0 of the 4.0 total; moving engine 2 (1.0) yields a
  // larger critical-path gain than moving engine 1 (2.0).
  const auto plan = planner.plan(
      {engine(1, 0, 2.0), engine(2, 0, 1.0), engine(3, 1, 0.5),
       engine(4, 2, 0.5)},
      3);
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].engine, 2u);
  EXPECT_EQ(plan.moves[0].from, 0u);
  EXPECT_DOUBLE_EQ(plan.moves[0].gain_seconds, 1.0);
  EXPECT_GT(plan.imbalance_before, 2.0);
  EXPECT_LT(plan.imbalance_after, plan.imbalance_before);
}

TEST(MigrationPlanner, ExpensiveStateTiltsTheChoice) {
  auto opts = options();
  opts.migration_cost_per_byte = 1e-3;
  const MigrationPlanner planner{opts};
  // Engine 2 would be the better balance move, but its state costs 0.9s
  // to ship (900 bytes x 1e-3); engine 1's smaller gain is now the best
  // net move.
  const auto plan = planner.plan(
      {engine(1, 0, 2.0, 10.0), engine(2, 0, 1.0, 900.0),
       engine(3, 1, 0.5), engine(4, 2, 0.5)},
      3);
  ASSERT_FALSE(plan.moves.empty());
  EXPECT_EQ(plan.moves[0].engine, 1u);
}

TEST(MigrationPlanner, ProhibitiveStateCostPlansNothing) {
  auto opts = options();
  opts.migration_cost_per_byte = 1.0;  // any state outweighs any gain
  const MigrationPlanner planner{opts};
  const auto plan = planner.plan(
      {engine(1, 0, 2.0, 50.0), engine(2, 0, 1.0, 50.0),
       engine(3, 1, 0.1, 50.0)},
      2);
  EXPECT_TRUE(plan.moves.empty());
  // Imbalance is still reported — the trigger fired, migration just
  // wasn't worth it.
  EXPECT_GT(plan.imbalance_before, 1.25);
}

TEST(MigrationPlanner, RespectsMoveCap) {
  auto opts = options();
  opts.max_moves_per_round = 2;
  const MigrationPlanner planner{opts};
  const auto plan = planner.plan(
      {engine(1, 0, 1.0), engine(2, 0, 1.0), engine(3, 0, 1.0),
       engine(4, 0, 1.0), engine(5, 0, 1.0), engine(6, 0, 1.0),
       engine(7, 0, 1.0), engine(8, 0, 1.0)},
      4);
  EXPECT_LE(plan.moves.size(), 2u);
  EXPECT_FALSE(plan.moves.empty());
}

TEST(MigrationPlanner, SingleShardPlansNothing) {
  const MigrationPlanner planner{options()};
  EXPECT_TRUE(planner.plan({engine(1, 0, 5.0)}, 1).moves.empty());
}

TEST(MigrationPlanner, IdleEnginesNeverMove) {
  const MigrationPlanner planner{options()};
  const auto plan = planner.plan(
      {engine(1, 0, 3.0), engine(2, 0, 0.0), engine(3, 1, 0.1)}, 2);
  for (const auto& move : plan.moves) EXPECT_NE(move.engine, 2u);
}

TEST(MigrationPlanner, PlansAreDeterministic) {
  const MigrationPlanner planner{options()};
  const std::vector<EngineLoad> loads{
      engine(1, 0, 1.0), engine(2, 0, 1.0), engine(3, 0, 1.0),
      engine(4, 1, 0.2), engine(5, 2, 0.2)};
  const auto a = planner.plan(loads, 3);
  const auto b = planner.plan(loads, 3);
  ASSERT_EQ(a.moves.size(), b.moves.size());
  for (std::size_t i = 0; i < a.moves.size(); ++i) {
    EXPECT_EQ(a.moves[i].engine, b.moves[i].engine);
    EXPECT_EQ(a.moves[i].from, b.moves[i].from);
    EXPECT_EQ(a.moves[i].to, b.moves[i].to);
  }
}

}  // namespace
}  // namespace cosmos::adapt
