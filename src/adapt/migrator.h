// Executes planned engine moves between driver chunks: drain + re-pin.
// Draining the source shard guarantees no task of the migrating engine is
// in flight; updating the dispatcher's engine→shard map then redirects all
// later chunks to the target shard, whose FIFO queue preserves the
// engine's input order. The engine itself never moves in memory (shards
// share the address space) — what migrates is execution ownership, and the
// measured state bytes quantify what a distributed shard would have had to
// ship.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "adapt/adapt.h"
#include "runtime/runtime.h"

namespace cosmos::adapt {

class Migrator {
 public:
  /// Reads an engine's resident operator state in bytes. Called only after
  /// the engine's source shard has drained (and from the dispatcher
  /// thread), so it may safely walk live operator buffers.
  using StateProbe = std::function<double(std::uint64_t engine)>;

  /// `shard_of` is the live engine→shard pinning the dispatcher consults;
  /// apply() mutates it, so both must run on the dispatcher thread.
  Migrator(runtime::Runtime& rt,
           std::unordered_map<std::uint64_t, std::size_t>& shard_of,
           StateProbe measured_state);

  /// Executes `moves`, accumulating counters into `report` (moves,
  /// measured state bytes, drain wall time). Source shards are drained
  /// once each even when several moves leave the same shard.
  void apply(const std::vector<Move>& moves, AdaptationReport& report);

 private:
  runtime::Runtime* rt_;
  std::unordered_map<std::uint64_t, std::size_t>* shard_of_;
  StateProbe measured_state_;
};

}  // namespace cosmos::adapt
