#include "runtime/runtime.h"

#include <map>
#include <memory>
#include <stdexcept>

#include "common/clock.h"
#include "obs/trace.h"
#include "stream/engine.h"

namespace cosmos::runtime {
namespace {

/// Worker-thread-local ingest stamp of the task being executed; read by
/// engine result taps via current_task_ingest_ns().
thread_local std::uint64_t t_current_ingest_ns = 0;

}  // namespace

std::uint64_t current_task_ingest_ns() noexcept {
  return t_current_ingest_ns;
}

Runtime::Runtime(RuntimeOptions options) {
  const std::size_t n = std::max<std::size_t>(1, options.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(options.queue_capacity));
  }
}

Runtime::~Runtime() { stop(); }

void Runtime::start() {
  if (started_) throw std::logic_error{"Runtime: already started"};
  started_ = true;
  for (auto& shard : shards_) {
    shard->worker = std::thread{[this, s = shard.get()] { worker_loop(*s); }};
  }
}

void Runtime::dispatch(std::size_t shard, Task task) {
  auto& sh = *shards_.at(shard);
  // Count the submission before pushing so drain() can never observe
  // completed > submitted for an in-flight task; roll back if the push
  // fails, or a later drain() would wait forever.
  {
    std::lock_guard lock{sh.drain_mu};
    ++sh.submitted;
  }
  if (!sh.queue.try_push(task)) {
    // Queue full: block (backpressure) and account the stall.
    const obs::Span span{"stall", "driver", shard};
    const auto t0 = Clock::now();
    if (!sh.queue.push(std::move(task))) {
      {
        std::lock_guard lock{sh.drain_mu};
        --sh.submitted;
      }
      throw std::logic_error{"Runtime: dispatch after stop"};
    }
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<DurationNs>(Clock::now() - t0).count());
    std::lock_guard lock{sh.stats_mu};
    sh.stats.stall_ns += ns;
  }
  const std::size_t depth = sh.queue.depth();
  std::lock_guard lock{sh.stats_mu};
  sh.stats.max_queue_depth = std::max(sh.stats.max_queue_depth, depth);
}

void Runtime::worker_loop(Shard& shard) {
  while (auto task = shard.queue.pop()) {
    // Thread CPU time, not wall time: busy_ns must stay meaningful when
    // shards outnumber cores (wall time would absorb preemption).
    const double cpu0 = thread_cpu_seconds();
    std::uint64_t tuples = 0;
    std::uint64_t runs_done = 0;
    const bool is_match = static_cast<bool>(task->match);
    t_current_ingest_ns = task->ingest_ns;
    std::string failure;
    try {
      const obs::Span span{is_match ? "match" : "task", "shard",
                           task->engine_id};
      if (is_match) {
        task->match();
      } else {
        for (const TupleBatch& run : task->runs) {
          task->engine->publish_batch(run.stream(), run);
          tuples += run.size();
          ++runs_done;
        }
        for (const RunSlice& slice : task->slices) {
          // A slice selecting every row replays the shared run directly —
          // no per-row copy at all on the common all-rows-match path.
          if (slice.rows.empty() || slice.rows.size() == slice.run->size()) {
            task->engine->publish_batch(slice.run->stream(), *slice.run);
            tuples += slice.run->size();
          } else {
            const TupleBatch selected = slice.run->select(slice.rows);
            task->engine->publish_batch(selected.stream(), selected);
            tuples += selected.size();
          }
          ++runs_done;
        }
      }
    } catch (const std::exception& e) {
      // Must not escape the thread (std::terminate); record and keep the
      // shard draining so drain()/stop() still complete.
      failure = e.what();
    }
    t_current_ingest_ns = 0;
    const auto ns =
        static_cast<std::uint64_t>((thread_cpu_seconds() - cpu0) * 1e9);
    {
      std::lock_guard lock{shard.stats_mu};
      if (!failure.empty() && shard.error.empty()) {
        shard.error = std::move(failure);
      }
      shard.stats.busy_ns += ns;
      shard.stats.tuples += tuples;
      shard.stats.batches += runs_done;
      ++shard.stats.tasks;
      if (is_match) {
        shard.stats.match_ns += ns;
        ++shard.stats.match_tasks;
      }
      auto& es = shard.engine_stats[task->engine_id];
      es.engine = task->engine_id;
      es.tuples += tuples;
      es.batches += runs_done;
      es.busy_ns += ns;
      if (is_match) es.match_ns += ns;
    }
    {
      std::lock_guard lock{shard.drain_mu};
      ++shard.completed;
    }
    shard.drain_cv.notify_all();
  }
}

void Runtime::drain() {
  for (auto& shard : shards_) {
    std::unique_lock lock{shard->drain_mu};
    shard->drain_cv.wait(
        lock, [&s = *shard] { return s.completed >= s.submitted; });
  }
}

void Runtime::drain_shard(std::size_t shard) {
  auto& sh = *shards_.at(shard);
  std::unique_lock lock{sh.drain_mu};
  sh.drain_cv.wait(lock, [&sh] { return sh.completed >= sh.submitted; });
}

void Runtime::stop() {
  if (!started_) {
    // Never started: nothing queued can run; just mark the queues closed.
    for (auto& shard : shards_) shard->queue.close();
    return;
  }
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  started_ = false;
}

std::optional<std::string> Runtime::first_error() const {
  for (const auto& shard : shards_) {
    std::lock_guard lock{shard->stats_mu};
    if (!shard->error.empty()) return shard->error;
  }
  return std::nullopt;
}

RuntimeStats Runtime::stats() const {
  RuntimeStats out;
  out.shards.reserve(shards_.size());
  // Merge per-engine rows across shards: after a migration an engine has
  // history on more than one shard, but callers want one cumulative row.
  std::map<std::uint64_t, EngineStats> merged;
  for (const auto& shard : shards_) {
    std::lock_guard lock{shard->stats_mu};
    out.shards.push_back(shard->stats);
    for (const auto& [id, es] : shard->engine_stats) {
      auto& row = merged[id];
      row.engine = id;
      row.tuples += es.tuples;
      row.batches += es.batches;
      row.busy_ns += es.busy_ns;
      row.match_ns += es.match_ns;
    }
  }
  out.engines.reserve(merged.size());
  for (auto& [id, es] : merged) out.engines.push_back(es);
  return out;
}

}  // namespace cosmos::runtime
