// End-to-end determinism of live migration: Cosmos::run() with adaptation
// ON must deliver per-query result sequences byte-identical to adaptation
// OFF and to the synchronous push() mode, at any shard count — migration
// changes where engines execute, never what they compute. Exercised on a
// skewed trace with every engine deliberately pinned to one shard so the
// adaptation loop is guaranteed to trigger.
#include <gtest/gtest.h>

#include <memory>

#include <map>
#include <string>
#include <vector>

#include "cosmos/cosmos.h"
#include "net/topology.h"
#include "sim/workload.h"

namespace cosmos::middleware {
namespace {

constexpr std::size_t kStations = 8;
constexpr std::size_t kEngines = 4;
constexpr std::size_t kSources = 2;

struct Fixture {
  std::vector<NodeId> all;
  net::LatencyMatrix lat;

  Fixture() {
    Rng rng{11};
    const auto topo = net::make_wide_area_mesh(kSources + kEngines, 3, rng);
    for (std::size_t i = 0; i < kSources + kEngines; ++i) {
      all.push_back(NodeId{static_cast<NodeId::value_type>(i)});
    }
    lat = net::LatencyMatrix{topo, all};
  }

  using ResultLog = std::map<QueryId, std::vector<std::string>>;

  std::unique_ptr<Cosmos> make(ResultLog& log) {
    auto sys = std::make_unique<Cosmos>(all, lat);
    for (std::size_t st = 0; st < kStations; ++st) {
      sys->register_source(sim::station_stream_name(st), sim::sensor_schema(),
                          all[st % kSources]);
    }
    for (std::size_t i = 0; i < kEngines; ++i) {
      query::QuerySpec spec;
      spec.id = QueryId{static_cast<QueryId::value_type>(i)};
      spec.proxy = all[kSources + (i + 1) % kEngines];
      spec.sources = {
          {sim::station_stream_name(2 * i), "S1",
           stream::WindowSpec::range_millis(40 * 60'000)},
          {sim::station_stream_name(2 * i + 1), "S2",
           stream::WindowSpec::range_millis(10 * 60'000)}};
      spec.select = {{"S1", "snowHeight"},
                     {"S1", "timestamp"},
                     {"S2", "snowHeight"}};
      spec.where = stream::Predicate::cmp(
          stream::FieldRef{"S1", "snowHeight"}, stream::CmpOp::kGt,
          stream::FieldRef{"S2", "snowHeight"});
      sys->submit(spec, all[kSources + i],
                 [&log](QueryId q, const stream::Tuple& t) {
                   std::string line = std::to_string(t.ts);
                   for (const auto& v : t.values) line += "|" + v.to_string();
                   log[q].push_back(std::move(line));
                 });
    }
    return sys;
  }

  static std::vector<runtime::TraceEvent> trace() {
    sim::SkewedTraceParams tp;
    tp.stations = kStations;
    tp.total_tuples = 4'000;
    tp.duration_ms = 2 * 3'600'000;
    tp.zipf_theta = 0.8;
    tp.perturb_pattern = "I";
    tp.perturb_stations = 1;
    Rng rng{23};
    std::vector<runtime::TraceEvent> events;
    for (const auto& r : sim::make_skewed_trace(tp, rng)) {
      events.push_back({sim::station_stream_name(r.station), r.tuple});
    }
    return events;
  }

  static Cosmos::RunOptions run_options(std::size_t shards, bool adapt_on) {
    Cosmos::RunOptions opts;
    opts.shards = shards;
    opts.batch_size = 64;
    opts.queue_capacity = 8;
    opts.tick_ms = 10 * 60'000;
    if (adapt_on) {
      opts.adapt.enabled = true;
      opts.adapt.adapt_every_ms = 5 * 60'000;
      opts.adapt.imbalance_threshold = 1.05;
      opts.adapt.ewma_alpha = 1.0;
      opts.adapt.min_gain_seconds = 0.0;
      // Pack every engine onto shard 0: maximal imbalance, so the loop
      // must migrate.
      for (std::size_t i = 0; i < kEngines; ++i) {
        opts.pin[NodeId{static_cast<NodeId::value_type>(kSources + i)}] = 0;
      }
    }
    return opts;
  }
};

TEST(AdaptRun, ResultsIdenticalWithAdaptationOnOffAndPush) {
  Fixture f;
  const auto events = Fixture::trace();

  Fixture::ResultLog push_log;
  auto push_sys = f.make(push_log);
  for (const auto& ev : events) push_sys->push(ev.stream, ev.tuple);
  ASSERT_FALSE(push_log.empty());

  for (const std::size_t shards : {1, 4, 8}) {
    Fixture::ResultLog off_log;
    auto off_sys = f.make(off_log);
    const auto off = off_sys->run(events, Fixture::run_options(shards, false));
    EXPECT_EQ(off.adaptation.moves, 0u);
    EXPECT_EQ(off_log, push_log) << "adapt off, shards=" << shards;

    Fixture::ResultLog on_log;
    auto on_sys = f.make(on_log);
    const auto on = on_sys->run(events, Fixture::run_options(shards, true));
    EXPECT_EQ(on_log, push_log) << "adapt on, shards=" << shards;
    if (shards > 1) {
      // Everything started on shard 0 and the threshold is hair-trigger:
      // the loop must have actually migrated engines.
      EXPECT_GE(on.adaptation.moves, 1u) << "shards=" << shards;
      EXPECT_GE(on.adaptation.samples, 1u);
      EXPECT_GE(on.adaptation.rounds, 1u);
      EXPECT_GE(on.adaptation.imbalance_before,
                on.adaptation.imbalance_after);
    } else {
      // Single shard: adaptation stays dormant even when enabled.
      EXPECT_EQ(on.adaptation.moves, 0u);
      EXPECT_EQ(on.adaptation.samples, 0u);
    }
  }
}

TEST(AdaptRun, PinOptionControlsInitialPlacement) {
  Fixture f;
  const auto events = Fixture::trace();
  Fixture::ResultLog log;
  auto sys = f.make(log);
  auto opts = Fixture::run_options(4, false);
  for (std::size_t i = 0; i < kEngines; ++i) {
    opts.pin[NodeId{static_cast<NodeId::value_type>(kSources + i)}] = 2;
  }
  const auto report = sys->run(events, opts);
  // All engines pinned to shard 2: only that shard executed tuples.
  for (std::size_t s = 0; s < report.stats.shards.size(); ++s) {
    if (s == 2) {
      EXPECT_GT(report.stats.shards[s].tuples, 0u);
    } else {
      EXPECT_EQ(report.stats.shards[s].tuples, 0u);
    }
  }
  // Per-engine counters cover every executed tuple.
  std::uint64_t engine_total = 0;
  for (const auto& e : report.stats.engines) engine_total += e.tuples;
  EXPECT_EQ(engine_total, report.stats.total_tuples());
}

TEST(AdaptRun, MigrationReportsStateBytes) {
  Fixture f;
  const auto events = Fixture::trace();
  Fixture::ResultLog log;
  auto sys = f.make(log);
  const auto report = sys->run(events, Fixture::run_options(4, true));
  ASSERT_GE(report.adaptation.moves, 1u);
  // Engines hold window-join state while the trace flows, so migrating
  // them mid-trace must account a positive state volume.
  EXPECT_GT(report.adaptation.state_bytes_migrated, 0.0);
  EXPECT_GE(report.adaptation.migration_stall_seconds, 0.0);
}

}  // namespace
}  // namespace cosmos::middleware
