#include "pubsub/broker_partition.h"

#include <set>
#include <stdexcept>
#include <unordered_map>

namespace cosmos::pubsub {

void TrafficStats::merge(const TrafficStats& other) {
  bytes += other.bytes;
  weighted_cost += other.weighted_cost;
  messages_sent += other.messages_sent;
  for (const auto& [link, t] : other.links) {
    auto& row = links[link];
    row.bytes += t.bytes;
    row.weighted_cost += t.weighted_cost;
    row.messages_sent += t.messages_sent;
  }
}

std::size_t Overlay::index_of(NodeId n) const {
  const auto it = index.find(n);
  if (it == index.end()) {
    throw std::invalid_argument{"BrokerNetwork: not a participant"};
  }
  return it->second;
}

BrokerPartition::BrokerPartition(const Overlay& overlay, std::string stream,
                                 NodeId publisher, stream::Schema schema)
    : overlay_(&overlay),
      stream_(std::move(stream)),
      publisher_(publisher),
      publisher_idx_(overlay.index_of(publisher)),
      schema_(std::move(schema)) {}

void BrokerPartition::add_subscription(const Subscription* sub) {
  // Compile once per subscribe. Lenient: a filter referencing attributes
  // this stream lacks throws std::invalid_argument per evaluated row, which
  // filter_matches turns into "no match" — the interpreter's contract
  // (Subscription::matches) row for row.
  subs_.push_back({sub, overlay_->index_of(sub->subscriber),
                   stream::CompiledPredicate::compile_lenient(
                       sub->filter, {{"", &schema_, SIZE_MAX}})});
}

void BrokerPartition::remove_subscription(SubscriptionId id) {
  std::erase_if(subs_,
                [id](const MatchedSub& m) { return m.sub->id == id; });
}

bool BrokerPartition::filter_matches(
    const MatchedSub& entry, const stream::CompiledPredicate::Row& row) {
  if (!entry.filter.may_throw()) return entry.filter.eval(&row);
  try {
    return entry.filter.eval(&row);
  } catch (const std::invalid_argument&) {
    return false;  // filter references attributes this message lacks
  }
}

void BrokerPartition::match(const stream::Tuple& tuple,
                            const DeliveryCallback& callback) {
  if (subs_.empty()) return;
  const stream::CompiledPredicate::Row row{tuple.ts, tuple.values.data(),
                                           tuple.values.size()};
  std::vector<const MatchedSub*> matched;
  for (const auto& entry : subs_) {
    if (filter_matches(entry, row)) matched.push_back(&entry);
  }
  if (matched.empty()) return;
  Message message{stream_, &schema_, tuple};
  route(message, publisher_idx_, SIZE_MAX, matched, callback);
}

void BrokerPartition::match_batch(const runtime::TupleBatch& batch,
                                  std::vector<BatchDelivery>& deliveries) {
  if (batch.empty()) return;
  // Validate ordering up front, before any matching or accounting: a batch
  // violating the per-stream timestamp rule must fail atomically, not after
  // half of its rows already generated traffic.
  if (!batch.timestamps_ordered()) {
    for (std::size_t r = 1; r < batch.size(); ++r) {
      if (batch.ts(r) < batch.ts(r - 1)) {
        throw std::invalid_argument{
            "BrokerPartition: out-of-order batch on stream " + stream_ +
            ": ts " + std::to_string(batch.ts(r)) + " after ts " +
            std::to_string(batch.ts(r - 1))};
      }
    }
  }
  // No subscriptions: nothing can match, route, or be accounted — skip the
  // per-row materialization entirely (as the scalar path does).
  if (subs_.empty()) return;

  // Stage 1 — compiled matching, column-at-a-time: evaluate every
  // subscription's compiled filter over the whole batch (no row
  // materialization, no string lookups), producing one ascending row list
  // per subscription. This is also exactly the BatchDelivery row set.
  const std::size_t first_delivery = deliveries.size();
  std::vector<std::vector<std::uint32_t>> rows_of(subs_.size());
  {
    const stream::Timestamp* ts = batch.ts_data();
    const stream::Value* vals = batch.values_data();
    const std::size_t width = batch.width();
    stream::CompiledPredicate::Row row{0, nullptr, width};
    for (std::size_t s = 0; s < subs_.size(); ++s) {
      const MatchedSub& entry = subs_[s];
      if (!entry.filter.may_throw()) {
        entry.filter.filter_batch(batch, nullptr, rows_of[s]);
        continue;
      }
      for (std::uint32_t r = 0; r < batch.size(); ++r) {
        row.ts = ts[r];
        row.values = vals + std::size_t{r} * width;
        if (filter_matches(entry, row)) rows_of[s].push_back(r);
      }
    }
  }

  // Stage 2 — per-row routing and accounting, identical to row-count
  // scalar match() calls (deliveries appear in first-match order); rows no
  // subscription matched are never materialized.
  std::unordered_map<SubscriptionId, std::size_t> delivery_of;
  std::vector<std::size_t> cursor(subs_.size(), 0);
  Message message{stream_, &schema_, {}};
  std::vector<const MatchedSub*> matched;
  for (std::uint32_t row = 0; row < batch.size(); ++row) {
    matched.clear();
    for (std::size_t s = 0; s < subs_.size(); ++s) {
      const auto& rows = rows_of[s];
      if (cursor[s] >= rows.size() || rows[cursor[s]] != row) continue;
      ++cursor[s];
      matched.push_back(&subs_[s]);
      auto [dit, fresh] = delivery_of.try_emplace(
          subs_[s].sub->id, deliveries.size() - first_delivery);
      if (fresh) deliveries.push_back({subs_[s].sub, &batch, {}});
      deliveries[first_delivery + dit->second].rows.push_back(row);
    }
    if (matched.empty()) continue;
    batch.materialize(row, message.tuple);
    route(message, publisher_idx_, SIZE_MAX, matched,
          [](const Subscription&, const Message&) {});
  }
}

void BrokerPartition::route(const Message& message, std::size_t at,
                            std::size_t came_from,
                            const std::vector<const MatchedSub*>& matched,
                            const DeliveryCallback& callback) {
  // Local delivery.
  for (const auto* m : matched) {
    if (m->home == at) callback(*m->sub, message);
  }
  // Forward to each neighbor leading to at least one interested
  // subscription, with attributes pruned to the union of their projections
  // (early projection; one copy per link regardless of fan-out behind it).
  for (const auto nb : overlay_->adj[at]) {
    if (nb == came_from) continue;
    std::set<std::string> attrs;
    bool wants_all = false;
    bool any = false;
    for (const auto* m : matched) {
      if (m->home == at || overlay_->next_hop[at][m->home] != nb) continue;
      any = true;
      if (m->sub->projection.empty()) {
        wants_all = true;
      } else {
        attrs.insert(m->sub->projection.begin(), m->sub->projection.end());
      }
    }
    if (!any) continue;
    const double bytes =
        message_bytes(message, wants_all ? std::set<std::string>{} : attrs);
    const double latency = overlay_->lat->latency(overlay_->participants[at],
                                                  overlay_->participants[nb]);
    traffic_.bytes += bytes;
    traffic_.weighted_cost += bytes * latency;
    ++traffic_.messages_sent;
    auto& link = traffic_.links[{overlay_->participants[at],
                                 overlay_->participants[nb]}];
    link.bytes += bytes;
    link.weighted_cost += bytes * latency;
    ++link.messages_sent;
    route(message, nb, at, matched, callback);
  }
}

}  // namespace cosmos::pubsub
