#include "net/shortest_paths.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace cosmos::net {
namespace {

Topology line(std::size_t n, double lat = 1.0) {
  Topology t{n};
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.add_edge(NodeId{static_cast<NodeId::value_type>(i)},
               NodeId{static_cast<NodeId::value_type>(i + 1)}, lat);
  }
  return t;
}

TEST(Dijkstra, LineGraphDistances) {
  const auto t = line(5, 2.0);
  const auto tree = dijkstra(t, NodeId{0});
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(tree.dist[i], 2.0 * static_cast<double>(i));
  }
}

TEST(Dijkstra, PicksShorterOfTwoRoutes) {
  Topology t{4};
  t.add_edge(NodeId{0}, NodeId{1}, 1.0);
  t.add_edge(NodeId{1}, NodeId{3}, 1.0);
  t.add_edge(NodeId{0}, NodeId{2}, 5.0);
  t.add_edge(NodeId{2}, NodeId{3}, 5.0);
  const auto tree = dijkstra(t, NodeId{0});
  EXPECT_DOUBLE_EQ(tree.dist[3], 2.0);
  const auto path = tree.path_to(NodeId{3});
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], NodeId{0});
  EXPECT_EQ(path[1], NodeId{1});
  EXPECT_EQ(path[2], NodeId{3});
}

TEST(Dijkstra, UnreachableIsInfinite) {
  Topology t{3};
  t.add_edge(NodeId{0}, NodeId{1}, 1.0);
  const auto tree = dijkstra(t, NodeId{0});
  EXPECT_EQ(tree.dist[2], std::numeric_limits<double>::infinity());
  EXPECT_TRUE(tree.path_to(NodeId{2}).empty());
}

TEST(Dijkstra, SourcePathIsItself) {
  const auto t = line(3);
  const auto tree = dijkstra(t, NodeId{1});
  EXPECT_DOUBLE_EQ(tree.dist[1], 0.0);
  const auto path = tree.path_to(NodeId{1});
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], NodeId{1});
}

TEST(Dijkstra, RejectsBadSource) {
  const auto t = line(3);
  EXPECT_THROW(dijkstra(t, NodeId{99}), std::invalid_argument);
}

// Property: triangle inequality holds over random graphs.
class DijkstraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraProperty, TriangleInequality) {
  Rng rng{GetParam()};
  const std::size_t n = 30;
  Topology t{n};
  // Random connected graph: spanning chain + chords.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.add_edge(NodeId{static_cast<NodeId::value_type>(i)},
               NodeId{static_cast<NodeId::value_type>(i + 1)},
               rng.next_double(1.0, 10.0));
  }
  for (int c = 0; c < 30; ++c) {
    const auto a = static_cast<NodeId::value_type>(rng.next_below(n));
    const auto b = static_cast<NodeId::value_type>(rng.next_below(n));
    if (a != b && !t.has_edge(NodeId{a}, NodeId{b})) {
      t.add_edge(NodeId{a}, NodeId{b}, rng.next_double(1.0, 10.0));
    }
  }
  std::vector<ShortestPathTree> trees;
  for (std::size_t i = 0; i < n; ++i) {
    trees.push_back(dijkstra(t, NodeId{static_cast<NodeId::value_type>(i)}));
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      EXPECT_NEAR(trees[a].dist[b], trees[b].dist[a], 1e-9);  // symmetry
      for (std::size_t c = 0; c < n; ++c) {
        EXPECT_LE(trees[a].dist[b],
                  trees[a].dist[c] + trees[c].dist[b] + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cosmos::net
