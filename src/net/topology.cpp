#include "net/topology.h"

#include <algorithm>
#include <stdexcept>

namespace cosmos::net {

void Topology::add_edge(NodeId u, NodeId v, double latency_ms) {
  if (u == v) throw std::invalid_argument{"Topology: self loop"};
  if (u.value() >= adj_.size() || v.value() >= adj_.size()) {
    throw std::invalid_argument{"Topology: node id out of range"};
  }
  if (latency_ms <= 0.0) {
    throw std::invalid_argument{"Topology: latency must be positive"};
  }
  if (has_edge(u, v)) return;  // idempotent
  adj_[u.value()].push_back({v, latency_ms});
  adj_[v.value()].push_back({u, latency_ms});
}

bool Topology::has_edge(NodeId u, NodeId v) const noexcept {
  const auto& nbrs = adj_[u.value()];
  return std::any_of(nbrs.begin(), nbrs.end(),
                     [v](const Edge& e) { return e.to == v; });
}

std::size_t Topology::edge_count() const noexcept {
  std::size_t degree_sum = 0;
  for (const auto& nbrs : adj_) degree_sum += nbrs.size();
  return degree_sum / 2;
}

bool Topology::connected() const {
  if (adj_.empty()) return true;
  std::vector<char> seen(adj_.size(), 0);
  std::vector<std::uint32_t> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const auto u = stack.back();
    stack.pop_back();
    for (const auto& e : adj_[u]) {
      if (!seen[e.to.value()]) {
        seen[e.to.value()] = 1;
        ++visited;
        stack.push_back(e.to.value());
      }
    }
  }
  return visited == adj_.size();
}

namespace {

/// Connects `members` with a random ring plus random chords, drawing
/// latencies from [lat_min, lat_max).
void wire_domain(Topology& topo, const std::vector<NodeId>& members,
                 double lat_min, double lat_max, double extra_edge_prob,
                 Rng& rng) {
  if (members.size() < 2) return;
  std::vector<NodeId> order = members;
  rng.shuffle(order);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const NodeId u = order[i];
    const NodeId v = order[(i + 1) % order.size()];
    if (u != v) topo.add_edge(u, v, rng.next_double(lat_min, lat_max));
  }
  // Random chords for path diversity.
  for (std::size_t i = 0; i + 2 < order.size(); ++i) {
    for (std::size_t j = i + 2; j < order.size(); ++j) {
      if (i == 0 && j + 1 == order.size()) continue;  // ring edge
      if (rng.next_bool(extra_edge_prob / static_cast<double>(order.size()))) {
        topo.add_edge(order[i], order[j], rng.next_double(lat_min, lat_max));
      }
    }
  }
}

}  // namespace

Topology make_transit_stub(const TransitStubParams& p, Rng& rng) {
  if (p.transit_domains == 0 || p.transit_nodes_per_domain == 0) {
    throw std::invalid_argument{"make_transit_stub: empty backbone"};
  }
  Topology topo{p.total_nodes()};

  const std::size_t transit_total =
      p.transit_domains * p.transit_nodes_per_domain;

  // Transit nodes: ids [0, transit_total), grouped by domain.
  std::vector<std::vector<NodeId>> transit_domain(p.transit_domains);
  for (std::size_t d = 0; d < p.transit_domains; ++d) {
    for (std::size_t i = 0; i < p.transit_nodes_per_domain; ++i) {
      transit_domain[d].push_back(
          NodeId{static_cast<NodeId::value_type>(d * p.transit_nodes_per_domain + i)});
    }
    wire_domain(topo, transit_domain[d], p.intra_transit_lat_min,
                p.intra_transit_lat_max, p.extra_edge_prob, rng);
  }

  // Inter-domain backbone: ring over domains plus one random chord pair each.
  for (std::size_t d = 0; d < p.transit_domains; ++d) {
    const std::size_t e = (d + 1) % p.transit_domains;
    if (d == e) continue;
    const NodeId u =
        transit_domain[d][rng.next_below(transit_domain[d].size())];
    const NodeId v =
        transit_domain[e][rng.next_below(transit_domain[e].size())];
    topo.add_edge(u, v,
                  rng.next_double(p.inter_transit_lat_min,
                                  p.inter_transit_lat_max));
  }
  if (p.transit_domains > 2) {
    for (std::size_t d = 0; d < p.transit_domains; ++d) {
      const std::size_t e = rng.next_below(p.transit_domains);
      if (e == d) continue;
      const NodeId u =
          transit_domain[d][rng.next_below(transit_domain[d].size())];
      const NodeId v =
          transit_domain[e][rng.next_below(transit_domain[e].size())];
      if (u != v && !topo.has_edge(u, v)) {
        topo.add_edge(u, v,
                      rng.next_double(p.inter_transit_lat_min,
                                      p.inter_transit_lat_max));
      }
    }
  }

  // Stub domains: ids laid out after all transit nodes.
  NodeId::value_type next_id = static_cast<NodeId::value_type>(transit_total);
  for (std::size_t t = 0; t < transit_total; ++t) {
    const NodeId transit_node{static_cast<NodeId::value_type>(t)};
    for (std::size_t sd = 0; sd < p.stub_domains_per_transit; ++sd) {
      std::vector<NodeId> members;
      members.reserve(p.stub_nodes_per_domain);
      for (std::size_t i = 0; i < p.stub_nodes_per_domain; ++i) {
        members.push_back(NodeId{next_id++});
      }
      wire_domain(topo, members, p.intra_stub_lat_min, p.intra_stub_lat_max,
                  p.extra_edge_prob, rng);
      // Gateway link(s) from the stub domain to its transit node.
      const NodeId gateway = members[rng.next_below(members.size())];
      topo.add_edge(gateway, transit_node,
                    rng.next_double(p.stub_transit_lat_min,
                                    p.stub_transit_lat_max));
    }
  }
  return topo;
}

Topology make_wide_area_mesh(std::size_t node_count, std::size_t sites,
                             Rng& rng) {
  if (node_count == 0) throw std::invalid_argument{"mesh: empty"};
  if (sites == 0 || sites > node_count) {
    throw std::invalid_argument{"mesh: bad site count"};
  }
  Topology topo{node_count};
  std::vector<std::size_t> site_of(node_count);
  for (std::size_t i = 0; i < node_count; ++i) site_of[i] = i % sites;

  // Per-site-pair base latency simulates geographic distance; individual
  // links jitter around it.
  std::vector<std::vector<double>> base(sites, std::vector<double>(sites, 0));
  for (std::size_t a = 0; a < sites; ++a) {
    for (std::size_t b = a + 1; b < sites; ++b) {
      base[a][b] = base[b][a] = rng.next_double(40.0, 250.0);
    }
  }
  for (std::size_t i = 0; i < node_count; ++i) {
    for (std::size_t j = i + 1; j < node_count; ++j) {
      double lat;
      if (site_of[i] == site_of[j]) {
        lat = rng.next_double(1.0, 8.0);
      } else {
        const double b = base[site_of[i]][site_of[j]];
        lat = b * rng.next_double(0.85, 1.15);
      }
      topo.add_edge(NodeId{static_cast<NodeId::value_type>(i)},
                    NodeId{static_cast<NodeId::value_type>(j)}, lat);
    }
  }
  return topo;
}

}  // namespace cosmos::net
