#include "pubsub/broker_network.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/sensor_trace.h"

namespace cosmos::pubsub {
namespace {

struct Fixture {
  net::Topology topo{4};
  std::vector<NodeId> all{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};
  net::LatencyMatrix lat;

  Fixture() {
    // Line 0 -10- 1 -100- 2 -10- 3.
    topo.add_edge(NodeId{0}, NodeId{1}, 10.0);
    topo.add_edge(NodeId{1}, NodeId{2}, 100.0);
    topo.add_edge(NodeId{2}, NodeId{3}, 10.0);
    lat = net::LatencyMatrix{topo, all};
  }

  static stream::Tuple reading(stream::Timestamp ts, double height) {
    return {ts,
            {stream::Value{height}, stream::Value{-3.0},
             stream::Value{std::int64_t{0}}, stream::Value{ts}}};
  }
};

TEST(BrokerNetwork, DeliversToMatchingSubscriber) {
  Fixture f;
  BrokerNetwork net{f.all, f.lat};
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  Subscription sub;
  sub.subscriber = NodeId{3};
  sub.streams = {"S"};
  sub.filter = stream::Predicate::cmp({"", "snowHeight"}, stream::CmpOp::kGe,
                                      stream::Value{10.0});
  net.subscribe(std::move(sub));

  int delivered = 0;
  net.publish("S", Fixture::reading(1, 20.0),
              [&](const Subscription&, const Message&) { ++delivered; });
  net.publish("S", Fixture::reading(2, 5.0),
              [&](const Subscription&, const Message&) { ++delivered; });
  EXPECT_EQ(delivered, 1);  // early filtering dropped the second tuple
}

TEST(BrokerNetwork, FilteredTuplesGenerateNoTraffic) {
  Fixture f;
  BrokerNetwork net{f.all, f.lat};
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  Subscription sub;
  sub.subscriber = NodeId{3};
  sub.streams = {"S"};
  sub.filter = stream::Predicate::cmp({"", "snowHeight"}, stream::CmpOp::kGe,
                                      stream::Value{10.0});
  net.subscribe(std::move(sub));
  net.publish("S", Fixture::reading(1, 5.0),
              [](const Subscription&, const Message&) {});
  EXPECT_EQ(net.traffic().bytes, 0.0);
}

TEST(BrokerNetwork, SharedLinkCountedOnce) {
  Fixture f;
  BrokerNetwork net{f.all, f.lat};
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  for (const NodeId n : {NodeId{2}, NodeId{3}}) {
    Subscription sub;
    sub.subscriber = n;
    sub.streams = {"S"};
    net.subscribe(std::move(sub));
  }
  int delivered = 0;
  net.publish("S", Fixture::reading(1, 20.0),
              [&](const Subscription&, const Message&) { ++delivered; });
  EXPECT_EQ(delivered, 2);
  // Links used: 0-1, 1-2, 2-3 = exactly 3 messages (not 5 as unicast).
  EXPECT_EQ(net.traffic().messages_sent, 3u);
}

TEST(BrokerNetwork, ProjectionShrinksTraffic) {
  Fixture f;
  BrokerNetwork net1{f.all, f.lat};
  net1.advertise("S", NodeId{0}, sim::sensor_schema());
  Subscription all_attrs;
  all_attrs.subscriber = NodeId{3};
  all_attrs.streams = {"S"};
  net1.subscribe(std::move(all_attrs));
  net1.publish("S", Fixture::reading(1, 20.0),
               [](const Subscription&, const Message&) {});

  BrokerNetwork net2{f.all, f.lat};
  net2.advertise("S", NodeId{0}, sim::sensor_schema());
  Subscription one_attr;
  one_attr.subscriber = NodeId{3};
  one_attr.streams = {"S"};
  one_attr.projection = {"snowHeight"};
  net2.subscribe(std::move(one_attr));
  net2.publish("S", Fixture::reading(1, 20.0),
               [](const Subscription&, const Message&) {});
  EXPECT_LT(net2.traffic().bytes, net1.traffic().bytes);
}

TEST(BrokerNetwork, UnsubscribeStopsDelivery) {
  Fixture f;
  BrokerNetwork net{f.all, f.lat};
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  Subscription sub;
  sub.subscriber = NodeId{2};
  sub.streams = {"S"};
  const auto id = net.subscribe(std::move(sub));
  net.unsubscribe(id);
  int delivered = 0;
  net.publish("S", Fixture::reading(1, 20.0),
              [&](const Subscription&, const Message&) { ++delivered; });
  EXPECT_EQ(delivered, 0);
}

TEST(BrokerNetwork, RejectsUnknowns) {
  Fixture f;
  BrokerNetwork net{f.all, f.lat};
  EXPECT_THROW(net.publish("nope", Fixture::reading(1, 1.0),
                           [](const Subscription&, const Message&) {}),
               std::invalid_argument);
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  EXPECT_THROW(net.advertise("S", NodeId{1}, sim::sensor_schema()),
               std::invalid_argument);
  EXPECT_THROW(net.schema("other"), std::out_of_range);
}

TEST(Subscription, CoversRelation) {
  Subscription wide;
  wide.streams = {"A", "B"};
  wide.filter = stream::Predicate::cmp({"", "x"}, stream::CmpOp::kGt,
                                       stream::Value{1});
  Subscription narrow;
  narrow.streams = {"A"};
  narrow.filter = stream::Predicate::conj(
      {stream::Predicate::cmp({"", "x"}, stream::CmpOp::kGt,
                              stream::Value{1}),
       stream::Predicate::cmp({"", "y"}, stream::CmpOp::kLt,
                              stream::Value{5})});
  EXPECT_TRUE(covers(wide, narrow));
  EXPECT_FALSE(covers(narrow, wide));
  EXPECT_TRUE(covers(wide, wide));
}

TEST(Subscription, MessageBytes) {
  const auto schema = sim::sensor_schema();
  Message m{"S", &schema, Fixture::reading(1, 20.0)};
  EXPECT_DOUBLE_EQ(message_bytes(m, {}), 16.0 + 4 * 8.0);
  EXPECT_DOUBLE_EQ(message_bytes(m, {"snowHeight"}), 16.0 + 8.0);
}

}  // namespace
}  // namespace cosmos::pubsub
