// Figure 11 — Prototype study: COSMOS vs operator placement.
//
// 30 wide-area nodes (PlanetLab stand-in), 5 of them data sources carrying
// 100 sensors' readings; 250/1000/4000 random selection+join queries over
// the sensor streams. COSMOS routes everything through the pub/sub broker
// overlay; the baseline builds a global operator graph (shared selections)
// and places operators with a latency-aware optimizer, shipping data
// client-server.
//
// (a) communication cost (bytes*ms of actual tuple traffic, normalized to
//     COSMOS = 1), (b) optimizer running time (normalized to the largest).
// Expected shape: comparable communication cost; COSMOS runs far faster at
// large query counts.
#include <cstdio>

#include "bench_common.h"
#include "cosmos/cosmos.h"
#include "cql/parser.h"
#include "opplace/operator_placement.h"
#include "sim/sensor_trace.h"

using namespace cosmos;
using namespace cosmos::bench;

namespace {

/// Random selection+join query over two distinct stations (Section 4.2:
/// 1-3 selection predicates, join on timestamp via windows).
query::QuerySpec random_query(QueryId id, NodeId proxy, std::size_t stations,
                              Rng& rng) {
  const std::size_t a = rng.next_below(stations);
  std::size_t b = rng.next_below(stations);
  while (b == a) b = rng.next_below(stations);
  std::string text = "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, "
                     "S2.timestamp FROM ";
  text += sim::station_stream_name(a) + " [Range " +
          std::to_string(5 + rng.next_below(25)) + " Minutes] S1, " +
          sim::station_stream_name(b) + " [Now] S2 WHERE " +
          "S1.snowHeight > S2.snowHeight";
  const std::size_t extra = rng.next_below(3);
  for (std::size_t i = 0; i < extra; ++i) {
    text += " AND S" + std::to_string(1 + rng.next_below(2)) +
            ".snowHeight >= " + std::to_string(5 + rng.next_below(20));
  }
  return cql::parse_query(text, id, proxy);
}

}  // namespace

int main() {
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  const std::size_t kNodes = 30;
  const std::size_t kSources = 5;
  const std::size_t kStations = 20;  // sensor streams, spread over sources
  const std::size_t readings =
      std::max<std::size_t>(30, static_cast<std::size_t>(200 * scale));

  Rng rng{seed};
  const auto topo = net::make_wide_area_mesh(kNodes, 6, rng);
  std::vector<NodeId> all;
  for (std::size_t i = 0; i < kNodes; ++i) {
    all.push_back(NodeId{static_cast<NodeId::value_type>(i)});
  }
  const net::LatencyMatrix lat{topo, all};
  const std::vector<NodeId> sources(all.begin(), all.begin() + kSources);
  const std::vector<NodeId> processors(all.begin() + kSources, all.end());

  sim::SensorTraceParams tp;
  tp.stations = kStations;
  tp.readings_per_station = readings;
  Rng trng{seed + 1};
  const auto trace = sim::make_sensor_trace(tp, trng);

  std::printf("# Fig 11: prototype study (scale=%.2f seed=%llu nodes=%zu "
              "stations=%zu readings=%zu)\n",
              scale, static_cast<unsigned long long>(seed), kNodes, kStations,
              readings);
  std::printf("%9s %16s %16s %12s %12s | %12s %12s %10s\n", "queries",
              "cosmos-cost", "opplace-cost", "cos-opt-s", "opp-opt-s",
              "cosmos-units", "shared-sels", "ratio");

  for (const std::size_t nq :
       {std::max<std::size_t>(25, static_cast<std::size_t>(250 * scale)),
        std::max<std::size_t>(100, static_cast<std::size_t>(1000 * scale)),
        std::max<std::size_t>(400, static_cast<std::size_t>(4000 * scale))}) {
    Rng qrng{seed + 2};
    std::vector<query::QuerySpec> specs;
    for (std::size_t i = 0; i < nq; ++i) {
      specs.push_back(random_query(
          QueryId{static_cast<QueryId::value_type>(i)},
          processors[qrng.next_below(processors.size())], kStations, qrng));
    }

    // --- COSMOS ---
    middleware::Cosmos cosmos_sys{all, lat};
    for (std::size_t st = 0; st < kStations; ++st) {
      cosmos_sys.register_source(sim::station_stream_name(st),
                                 sim::sensor_schema(),
                                 sources[st % kSources]);
    }
    // Placement: greedy latency-aware host choice with caps (the full
    // hierarchical machinery is exercised in the simulation benches; the
    // prototype uses the same greedy rule the leaf coordinators apply).
    const Stopwatch cosmos_watch;
    std::vector<std::size_t> chosen_host(specs.size());
    std::vector<double> load(processors.size(), 0.0);
    const double cap =
        1.1 * static_cast<double>(nq) / static_cast<double>(processors.size());
    std::size_t delivered = 0;
    for (const auto& spec : specs) {
      std::size_t best = 0;
      double best_cost = 1e300;
      for (std::size_t p = 0; p < processors.size(); ++p) {
        if (load[p] + 1.0 > cap) continue;
        double c = lat.latency(processors[p], spec.proxy);
        for (const auto& src : spec.sources) {
          const std::size_t st = std::stoul(src.stream.substr(7)) - 1;
          c += lat.latency(processors[p], sources[st % kSources]);
        }
        if (c < best_cost) {
          best_cost = c;
          best = p;
        }
      }
      load[best] += 1.0;
      chosen_host[spec.id.value()] = best;
    }
    const double cosmos_opt_s = cosmos_watch.seconds();
    for (const auto& spec : specs) {
      cosmos_sys.submit(spec, processors[chosen_host[spec.id.value()]],
                        [&delivered](QueryId, const stream::Tuple&) {
                          ++delivered;
                        });
    }
    for (const auto& r : trace) {
      cosmos_sys.push(sim::station_stream_name(r.station), r.tuple);
    }
    const double cosmos_cost = cosmos_sys.traffic().weighted_cost;

    // --- Operator placement baseline ---
    std::map<std::string, opplace::SourceStream> opp_sources;
    for (std::size_t st = 0; st < kStations; ++st) {
      opp_sources.emplace(
          sim::station_stream_name(st),
          opplace::SourceStream{sources[st % kSources], sim::sensor_schema()});
    }
    opplace::OperatorPlacementSystem opp{opp_sources, processors, lat};
    Rng orng{seed + 3};
    opp.deploy(specs, orng);
    for (const auto& r : trace) {
      opp.push(sim::station_stream_name(r.station), r.tuple);
    }

    std::printf("%9zu %16.4e %16.4e %12.4f %12.4f | %12zu %12zu %10.2f\n", nq,
                cosmos_cost, opp.traffic().weighted_cost, cosmos_opt_s,
                opp.stats().optimize_seconds, cosmos_sys.deployed_units(),
                opp.stats().selection_signatures,
                opp.traffic().weighted_cost / std::max(1.0, cosmos_cost));
    std::fflush(stdout);
  }
  return 0;
}
