#include "pubsub/subscription.h"

#include <algorithm>

namespace cosmos::pubsub {

bool Subscription::matches(const stream::Schema& schema,
                           const stream::Tuple& tuple) const {
  const std::vector<stream::Binding> env{{"", &schema, &tuple}};
  try {
    return filter->eval(env);
  } catch (const std::invalid_argument&) {
    return false;  // filter references attributes this message lacks
  }
}

double message_bytes(const Message& message,
                     const std::set<std::string>& attrs) {
  constexpr double kHeader = 16.0;
  double bytes = kHeader;
  for (std::size_t i = 0; i < message.schema->size(); ++i) {
    const auto& field = message.schema->field(i);
    if (!attrs.empty() && !attrs.contains(field.name)) continue;
    if (field.type == stream::ValueType::kString) {
      bytes += static_cast<double>(
          message.tuple.at(i).as_string().size());
    } else {
      bytes += 8.0;
    }
  }
  return bytes;
}

namespace {

/// Conjuncts of a filter, or nullopt if not a pure conjunction.
std::optional<std::vector<stream::PredicatePtr>> conjuncts(
    const stream::PredicatePtr& p) {
  std::vector<stream::PredicatePtr> out;
  if (!stream::collect_conjuncts(p, out)) return std::nullopt;
  return out;
}

}  // namespace

bool covers(const Subscription& a, const Subscription& b) {
  // Stream coverage.
  if (!std::includes(a.streams.begin(), a.streams.end(), b.streams.begin(),
                     b.streams.end())) {
    return false;
  }
  // Projection coverage (empty = all attributes).
  if (!a.projection.empty()) {
    if (b.projection.empty()) return false;
    if (!std::includes(a.projection.begin(), a.projection.end(),
                       b.projection.begin(), b.projection.end())) {
      return false;
    }
  }
  // Filter coverage: every conjunct of a must appear in b (a is weaker).
  const auto ca = conjuncts(a.filter);
  const auto cb = conjuncts(b.filter);
  if (!ca || !cb) return false;
  std::set<std::string> b_set;
  for (const auto& p : *cb) b_set.insert(p->to_string());
  for (const auto& p : *ca) {
    if (!b_set.contains(p->to_string())) return false;
  }
  return true;
}

}  // namespace cosmos::pubsub
