// Massive-fanout subscription-matching bench: the attribute-predicate
// index (SubscriptionIndex inside BrokerPartition) vs the linear
// every-filter-every-row scan, swept over subscription counts.
//
// The workload is sim::make_fanout_subscriptions — Zipf-distributed
// station equalities, temperature bands, and a small unindexable remainder
// — matched against a Zipf-skewed station trace published on one stream.
// The station domain and band selectivity scale with the population
// (constant per-station subscriber density, constant per-band match
// probability): more users watch more stations, so population size is the
// only variable the sweep changes and per-row delivery work stays flat
// while the linear matcher's cost grows with the subscription count. For
// each population size both matchers process the identical batch sequence;
// the bench aborts if their deliveries, delivered-row checksums, or
// per-link traffic differ (the linear matcher is the oracle, kept behind
// BrokerNetwork::Options{use_index = false}).
//
// The gated metric is the matched-throughput ratio at 10k subscriptions
// (acceptance bar: >= 10x with selective filters) plus its monotone growth
// from 1k to 10k; absolutes (rows/s) are reported for the previous-run
// artifact comparison. --smoke shrinks rows and skips the 100k population
// to fit the CI budget.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/topology.h"
#include "pubsub/broker_network.h"
#include "runtime/tuple_batch.h"
#include "sim/workload.h"

using namespace cosmos;
using namespace cosmos::bench;

namespace {

struct MatchRun {
  double cpu_s = 0.0;
  std::size_t deliveries = 0;
  std::size_t delivered_rows = 0;
  std::uint64_t checksum = 0;  ///< order-sensitive (sub id, row ts) fold
  pubsub::TrafficStats traffic;
};

MatchRun run_matcher(bool use_index, const std::vector<NodeId>& nodes,
                     const net::LatencyMatrix& lat,
                     const std::vector<pubsub::Subscription>& subs,
                     const std::vector<runtime::TupleBatch>& batches) {
  pubsub::BrokerNetwork net{nodes, lat,
                            pubsub::BrokerNetwork::Options{use_index}};
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  for (const auto& sub : subs) net.subscribe(sub);

  MatchRun out;
  const double t0 = thread_cpu_seconds();
  for (const auto& batch : batches) {
    net.publish_batch("S", batch, [&out](const pubsub::BatchDelivery& d) {
      ++out.deliveries;
      out.delivered_rows += d.rows.size();
      for (const auto r : d.rows) {
        out.checksum = out.checksum * 1099511628211ULL +
                       (static_cast<std::uint64_t>(d.sub->id.value()) << 20 ^
                        static_cast<std::uint64_t>(d.source->ts(r)));
      }
    });
  }
  out.cpu_s = thread_cpu_seconds() - t0;
  out.traffic = net.traffic();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint64_t seed = env_seed(42);
  const std::size_t rows = smoke ? 6'000 : 20'000;
  constexpr std::size_t kBatchRows = 512;
  std::vector<std::size_t> populations{100, 1'000, 10'000};
  if (!smoke) populations.push_back(100'000);

  std::printf("# subscription-match scale bench (%s): %zu trace rows, "
              "batch=%zu, linear scan is the oracle\n",
              smoke ? "smoke" : "full", rows, kBatchRows);

  // 4-node line overlay (publisher at one end, subscribers spread over all
  // four homes) — the matching cost under test is overlay-independent.
  net::Topology topo{4};
  topo.add_edge(NodeId{0}, NodeId{1}, 10.0);
  topo.add_edge(NodeId{1}, NodeId{2}, 100.0);
  topo.add_edge(NodeId{2}, NodeId{3}, 10.0);
  const std::vector<NodeId> nodes{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};
  const net::LatencyMatrix lat{topo, nodes};

  std::vector<std::pair<std::string, double>> metrics;
  bool identical = true;
  double prev_speedup = 0.0;
  double monotone_1k_10k = 0.0;
  for (const std::size_t n : populations) {
    sim::FanoutParams fp;
    fp.subscribers = n;
    // Density-constant scaling: per-station subscriber count and per-band
    // match probability are population-independent.
    fp.stations = std::max<std::size_t>(500, n / 5);
    fp.band_width = 0.01 * 10'000.0 / static_cast<double>(n);
    Rng sub_rng{seed + 1};
    const auto subs = sim::make_fanout_subscriptions(fp, sub_rng);

    Rng trace_rng{seed};
    sim::SkewedTraceParams tp;
    tp.stations = fp.stations;
    tp.total_tuples = rows;
    tp.duration_ms = static_cast<std::int64_t>(rows) * 50;
    const auto trace = sim::make_skewed_trace(tp, trace_rng);
    std::vector<runtime::TupleBatch> batches;
    batches.emplace_back("S");
    for (const auto& reading : trace) {
      if (batches.back().size() == kBatchRows) batches.emplace_back("S");
      batches.back().push_back(reading.tuple);
    }

    const MatchRun linear = run_matcher(false, nodes, lat, subs, batches);
    const MatchRun indexed = run_matcher(true, nodes, lat, subs, batches);
    if (indexed.deliveries != linear.deliveries ||
        indexed.delivered_rows != linear.delivered_rows ||
        indexed.checksum != linear.checksum ||
        !(indexed.traffic == linear.traffic)) {
      std::fprintf(stderr,
                   "!! matchers disagree at %zu subs: deliveries %zu/%zu "
                   "rows %zu/%zu checksum %llu/%llu\n",
                   n, indexed.deliveries, linear.deliveries,
                   indexed.delivered_rows, linear.delivered_rows,
                   static_cast<unsigned long long>(indexed.checksum),
                   static_cast<unsigned long long>(linear.checksum));
      identical = false;
    }
    const double linear_tput = static_cast<double>(rows) / linear.cpu_s;
    const double index_tput = static_cast<double>(rows) / indexed.cpu_s;
    const double speedup = linear.cpu_s / indexed.cpu_s;
    std::printf("subs=%-7zu matched_rows=%-8zu linear=%8.0f rows/s  "
                "index=%9.0f rows/s  speedup=%6.1fx\n",
                n, linear.delivered_rows, linear_tput, index_tput, speedup);

    const std::string tag =
        n >= 1000 ? std::to_string(n / 1000) + "k" : std::to_string(n);
    metrics.emplace_back("match_index_speedup_" + tag, speedup);
    if (n == 1'000) prev_speedup = speedup;
    if (n == 10'000) {
      monotone_1k_10k = speedup / prev_speedup;
      metrics.emplace_back("match_index_rows_per_s_10k", index_tput);
      metrics.emplace_back("match_linear_rows_per_s_10k", linear_tput);
    }
  }
  metrics.emplace_back("match_monotone_1k_10k", monotone_1k_10k);
  metrics.emplace_back("results_identical", identical ? 1.0 : 0.0);
  write_bench_json("match_scale", metrics);
  if (!identical) return 1;
  return 0;
}
