#include "obs/metrics.h"

#include <algorithm>

namespace cosmos::obs {
namespace {

/// Sorted-vector lookup shared by the snapshot accessors.
template <typename Vec>
auto find_entry(const Vec& v, const std::string& name) ->
    typename Vec::const_iterator {
  const auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  return it != v.end() && it->first == name ? it : v.end();
}

/// Merges `other` into the sorted-by-name vector `into`, combining
/// same-name entries with `combine(mine, theirs)`.
template <typename Vec, typename Combine>
void merge_sorted(Vec& into, const Vec& other, Combine combine) {
  for (const auto& [name, value] : other) {
    const auto it = std::lower_bound(
        into.begin(), into.end(), name,
        [](const auto& e, const std::string& n) { return e.first < n; });
    if (it != into.end() && it->first == name) {
      combine(it->second, value);
    } else {
      into.insert(it, {name, value});
    }
  }
}

}  // namespace

const std::uint64_t* MetricsSnapshot::counter(const std::string& name) const {
  const auto it = find_entry(counters, name);
  return it == counters.end() ? nullptr : &it->second;
}

const double* MetricsSnapshot::gauge(const std::string& name) const {
  const auto it = find_entry(gauges, name);
  return it == gauges.end() ? nullptr : &it->second;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  const auto it = find_entry(histograms, name);
  return it == histograms.end() ? nullptr : &it->second;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  merge_sorted(counters, other.counters,
               [](std::uint64_t& mine, std::uint64_t theirs) {
                 mine += theirs;
               });
  merge_sorted(gauges, other.gauges,
               [](double& mine, double theirs) { mine = theirs; });
  merge_sorted(histograms, other.histograms,
               [](HistogramSnapshot& mine, const HistogramSnapshot& theirs) {
                 mine.merge(theirs);
               });
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock{mu_};
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock{mu_};
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock{mu_};
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock{mu_};
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.push_back({name, c->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.push_back({name, g->value()});
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back({name, h->snapshot()});
  }
  return s;
}

}  // namespace cosmos::obs
