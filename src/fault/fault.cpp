#include "fault/fault.h"

#include <array>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"

namespace cosmos::fault {
namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::runtime_error{"fault: bad spec \"" + spec + "\": " + why};
}

FaultKind parse_kind(const std::string& spec, const std::string& word) {
  if (word == "drop") return FaultKind::kDrop;
  if (word == "delay") return FaultKind::kDelay;
  if (word == "dup") return FaultKind::kDuplicate;
  if (word == "reorder") return FaultKind::kReorder;
  if (word == "trickle") return FaultKind::kTrickle;
  if (word == "corrupt") return FaultKind::kCorrupt;
  if (word == "partition") return FaultKind::kPartition;
  if (word == "hang") return FaultKind::kHang;
  bad_spec(spec, "unknown fault kind \"" + word + "\"");
}

std::uint64_t parse_u64(const std::string& spec, const std::string& word) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(word, &used);
    if (used != word.size()) throw std::invalid_argument{word};
    return v;
  } catch (const std::exception&) {
    bad_spec(spec, "bad number \"" + word + "\"");
  }
}

/// Applies to the spec's window [after, after+for)?
bool armed(const FaultSpec& s, std::uint64_t frame_index) {
  if (frame_index < s.after_frames) return false;
  if (s.for_frames == UINT64_MAX) return true;
  return frame_index - s.after_frames < s.for_frames;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kTrickle: return "trickle";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHang: return "hang";
  }
  return "?";
}

const char* to_string(Direction dir) {
  return dir == Direction::kSend ? "send" : "recv";
}

std::string FaultSpec::to_string() const {
  std::ostringstream out;
  out << fault::to_string(dir) << ':' << fault::to_string(kind) << "@after="
      << after_frames;
  if (for_frames != UINT64_MAX) out << ",for=" << for_frames;
  if (kind == FaultKind::kDelay || kind == FaultKind::kTrickle) {
    out << ",ms=" << ms;
  }
  if (kind == FaultKind::kCorrupt) out << ",seed=" << seed;
  return out.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream rules{spec};
  std::string rule;
  while (std::getline(rules, rule, ';')) {
    if (rule.empty()) continue;
    const auto colon = rule.find(':');
    if (colon == std::string::npos) bad_spec(spec, "rule needs dir:kind");
    const std::string dir = rule.substr(0, colon);
    FaultSpec s;
    if (dir == "send") {
      s.dir = Direction::kSend;
    } else if (dir == "recv") {
      s.dir = Direction::kRecv;
    } else {
      bad_spec(spec, "direction must be send or recv, got \"" + dir + "\"");
    }
    const auto at = rule.find('@', colon);
    s.kind = parse_kind(
        spec, rule.substr(colon + 1,
                          at == std::string::npos ? std::string::npos
                                                  : at - colon - 1));
    if (at != std::string::npos) {
      std::istringstream kvs{rule.substr(at + 1)};
      std::string kv;
      while (std::getline(kvs, kv, ',')) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) bad_spec(spec, "option needs key=value");
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "after") {
          s.after_frames = parse_u64(spec, value);
        } else if (key == "for") {
          s.for_frames = parse_u64(spec, value);
        } else if (key == "ms") {
          s.ms = static_cast<std::int64_t>(parse_u64(spec, value));
        } else if (key == "seed") {
          s.seed = parse_u64(spec, value);
        } else {
          bad_spec(spec, "unknown option \"" + key + "\"");
        }
      }
    }
    plan.specs.push_back(s);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& s : specs) {
    if (!out.empty()) out += ';';
    out += s.to_string();
  }
  return out;
}

SendAction LinkFault::on_send() {
  const std::uint64_t index = sent_++;
  SendAction action;
  action.frame_index = index;
  for (const auto& s : plan_.specs) {
    if (s.dir != Direction::kSend || !armed(s, index)) continue;
    switch (s.kind) {
      case FaultKind::kDrop:
      case FaultKind::kPartition:
        action.drop = true;
        break;
      case FaultKind::kDelay:
        action.extra_delay_ms += s.ms;
        break;
      case FaultKind::kDuplicate:
        action.duplicate = true;
        break;
      case FaultKind::kReorder:
        // Hold back the first armed frame; it is released right after the
        // next frame goes out, producing one deterministic swap per window.
        if (index == s.after_frames) action.reorder_hold = true;
        break;
      case FaultKind::kTrickle:
        // Pacing, not latency: every armed frame keeps a minimum gap from
        // the previous write, so the link's throughput collapses to one
        // frame per `ms` instead of just shifting departures.
        if (s.ms > action.pace_ms) action.pace_ms = s.ms;
        break;
      case FaultKind::kCorrupt:
        action.corrupt = true;
        action.corrupt_seed = s.seed;
        break;
      case FaultKind::kHang:
        action.hang = true;
        break;
    }
  }
  return action;
}

RecvAction LinkFault::on_recv() {
  const std::uint64_t index = received_++;
  RecvAction action;
  for (const auto& s : plan_.specs) {
    if (s.dir != Direction::kRecv || !armed(s, index)) continue;
    switch (s.kind) {
      case FaultKind::kDrop:
      case FaultKind::kPartition:
        action.drop = true;
        break;
      case FaultKind::kHang:
        action.hang = true;
        break;
      default:
        // Delay/dup/reorder/trickle/corrupt only make sense where the bytes
        // are produced; a recv rule naming them is inert.
        break;
    }
  }
  return action;
}

std::size_t corrupt_frame_bytes(std::vector<std::uint8_t>& encoded,
                                std::uint64_t seed,
                                std::uint64_t frame_index) {
  // Candidate offsets whose flip the strict decoder must reject: the four
  // magic bytes, the two version bytes, and the length MSB (any flip there
  // claims a payload past the 1 GiB cap).
  static constexpr std::array<std::size_t, 7> kDetectable{0, 1, 2, 3,
                                                          4, 5, 11};
  std::uint64_t state = seed ^ (frame_index * 0x9E3779B97F4A7C15ull);
  const std::uint64_t pick = split_mix64(state);
  const std::size_t offset = kDetectable[pick % kDetectable.size()];
  if (offset < encoded.size()) encoded[offset] ^= 0xA5;
  return offset;
}

}  // namespace cosmos::fault
