// Compiled predicate programs: the batch-execution counterpart of the
// interpreted Predicate tree (predicate.h).
//
// The interpreter resolves every FieldRef by string against the bound
// schemas on every row, dispatches through a virtual eval() per node, and
// chases shared_ptr children — fine for analysis (containment, merging,
// coverage), far too slow for the per-tuple hot path. CompiledPredicate
// does all of that work once, at operator/subscription build time:
//
//  - every FieldRef is resolved against the binding schemas to a
//    (binding index, column index) slot — or to the row timestamp for the
//    "timestamp" pseudo-field and for the plan's appended virtual
//    timestamp column;
//  - comparisons against constants are specialized by the constant's
//    ValueType (numeric vs string), with the numeric constant pre-split
//    into exact-int and double forms;
//  - the tree is flattened into a contiguous short-circuit program (a
//    register machine with conditional jumps), evaluated with no virtual
//    dispatch, no string lookups and no shared_ptr traffic.
//
// The interpreter remains the semantic oracle: for any row, eval() returns
// exactly what Predicate::eval would, including throw behaviour
// (std::logic_error on string-vs-numeric comparisons, std::out_of_range on
// rows narrower than the schema). Unresolvable fields are reported at
// *compile* time by compile() (strict — what operators use, since the plan
// binds full schemas), or deferred to a per-row std::invalid_argument by
// compile_lenient() (what subscription matching uses, mirroring the
// interpreter's resolve-at-eval behaviour row for row).
//
// Programs are schema-relative — slots, constants and jump targets only;
// no pointers into the engine — so a distributed deployment can serialize
// a compiled subscription or operator program as-is.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stream/predicate.h"
#include "stream/schema.h"

namespace cosmos::runtime {
class TupleBatch;
}

namespace cosmos::stream {

/// Compile-time binding: the schema a predicate alias is evaluated
/// against (the static half of the interpreter's Binding).
struct BindingSpec {
  std::string alias;
  const Schema* schema = nullptr;
  /// Index of a schema column that is *not* physically present in the
  /// rows handed to eval and must be read from the row timestamp instead
  /// — the plan's appended "<alias>.timestamp" column when batch
  /// evaluation runs directly over raw source batches. SIZE_MAX = none.
  std::size_t virtual_ts_col = SIZE_MAX;
};

/// Where a compiled field read comes from: a value column of one binding,
/// or that binding's row timestamp (col == kTsCol).
struct FieldSlot {
  static constexpr std::uint32_t kTsCol = UINT32_MAX;
  std::uint32_t binding = 0;
  std::uint32_t col = kTsCol;

  friend bool operator==(const FieldSlot&, const FieldSlot&) = default;
};

/// Compile-time mirror of resolve_field (predicate.h): the slot `ref`
/// would read under `bindings`, or nullopt when unresolvable. Follows the
/// interpreter's resolution order exactly: bindings are scanned in order,
/// a non-empty alias must match, a schema column wins over the
/// "timestamp" pseudo-field, and a matched alias with a missing field
/// stops the scan.
[[nodiscard]] std::optional<FieldSlot> resolve_slot(
    const FieldRef& ref, const std::vector<BindingSpec>& bindings) noexcept;

/// Declared ValueType of a slot (timestamp slots are kInt).
[[nodiscard]] ValueType slot_type(const FieldSlot& slot,
                                  const std::vector<BindingSpec>& bindings);

class CompiledPredicate {
 public:
  /// One binding's row at eval time. `width` is the number of physical
  /// value columns; reads beyond it throw std::out_of_range (the
  /// interpreter's Tuple::at behaviour).
  struct Row {
    Timestamp ts = 0;
    const Value* values = nullptr;
    std::size_t width = 0;
  };

  /// Default: the empty program, which evaluates to true (always_true).
  CompiledPredicate() = default;

  /// Compiles `p` against `bindings`; throws std::invalid_argument at
  /// compile time for unresolvable fields or null binding schemas.
  [[nodiscard]] static CompiledPredicate compile(
      const PredicatePtr& p, const std::vector<BindingSpec>& bindings);

  /// Like compile(), but an unresolvable field compiles into an
  /// instruction that throws std::invalid_argument when (and only when)
  /// short-circuit evaluation reaches it — row-for-row identical to the
  /// interpreter, which resolves lazily. may_throw() reports whether any
  /// such instruction was emitted.
  [[nodiscard]] static CompiledPredicate compile_lenient(
      const PredicatePtr& p, const std::vector<BindingSpec>& bindings);

  [[nodiscard]] bool may_throw() const noexcept { return may_throw_; }
  /// Number of program instructions (tests and diagnostics).
  [[nodiscard]] std::size_t program_size() const noexcept {
    return code_.size();
  }

  /// Evaluates against one row per binding (rows[i] <-> bindings[i]).
  [[nodiscard]] bool eval(const Row* rows) const;

  /// eval() with the subscription-matching contract folded in: a kThrow
  /// instruction (the lenient compilation of an unresolvable field)
  /// evaluates to false instead of throwing — observationally identical
  /// to eval() under a catch(std::invalid_argument){return false;}
  /// handler, without paying an exception unwind per row. Type errors
  /// (std::logic_error) and narrow rows (std::out_of_range) still
  /// propagate exactly like eval().
  [[nodiscard]] bool eval_unresolved_false(const Row* rows) const;

  [[nodiscard]] bool eval(const Tuple& t) const {
    const Row r{t.ts, t.values.data(), t.values.size()};
    return eval(&r);
  }
  [[nodiscard]] bool eval(const Tuple& a, const Tuple& b) const {
    const Row rows[2] = {{a.ts, a.values.data(), a.values.size()},
                         {b.ts, b.values.data(), b.values.size()}};
    return eval(rows);
  }

  /// Single-binding batch filter: evaluates the rows of `batch` listed in
  /// `sel` (every row when nullptr) and appends the ids of passing rows to
  /// `out` in ascending order — the selection-vector convention of the
  /// batch operator paths.
  void filter_batch(const runtime::TupleBatch& batch,
                    const std::vector<std::uint32_t>* sel,
                    std::vector<std::uint32_t>& out) const;

  /// filter_batch() over eval_unresolved_false (what subscription
  /// matching runs for may_throw() filters).
  void filter_batch_unresolved_false(const runtime::TupleBatch& batch,
                                     const std::vector<std::uint32_t>* sel,
                                     std::vector<std::uint32_t>& out) const;

 private:
  enum class Op : std::uint8_t {
    kTrue,         // reg = true
    kCmpConstNum,  // reg = slot(a) <cmp> numeric constant
    kCmpConstStr,  // reg = slot(a) <cmp> string constant
    kCmpField,     // reg = slot(a) <cmp> slot(b)
    kTimeBand,     // reg = 0 <= int(a) - int(b) <= band
    kNot,          // reg = !reg
    kJumpIfFalse,  // if (!reg) pc = target
    kJumpIfTrue,   // if (reg) pc = target
    kIntProbe,     // int(a) for its throw side effect only (reg untouched):
                   // keeps a partially-unresolved TimeBand throwing in the
                   // interpreter's operand order
    kThrow,        // throw std::invalid_argument{messages[aux]}
  };
  struct Instr {
    Op op = Op::kTrue;
    CmpOp cmp = CmpOp::kEq;
    bool const_is_int = false;  // kCmpConstNum: exact int-int path valid
    FieldSlot a;
    FieldSlot b;
    std::uint32_t target = 0;   // jump target (instruction index)
    std::uint32_t aux = 0;      // strings_/messages_ index
    std::int64_t inum = 0;      // kCmpConstNum int form / kTimeBand band
    double num = 0.0;           // kCmpConstNum double form
  };

  friend class PredicateCompiler;

  static CompiledPredicate compile_impl(const PredicatePtr& p,
                                        const std::vector<BindingSpec>& b,
                                        bool lenient);

  template <bool kUnresolvedFalse>
  [[nodiscard]] bool eval_impl(const Row* rows) const;
  template <bool kUnresolvedFalse>
  void filter_batch_impl(const runtime::TupleBatch& batch,
                         const std::vector<std::uint32_t>* sel,
                         std::vector<std::uint32_t>& out) const;

  std::vector<Instr> code_;
  std::vector<std::string> strings_;   // kCmpConstStr operands
  std::vector<std::string> messages_;  // kThrow messages
  bool may_throw_ = false;
};

/// One single-column compare-against-constant conjunct of a filter: the
/// unit the pub/sub attribute-predicate index can serve (an equality probe
/// or a range stab on that column). `position` identifies the conjunct in
/// FilterSplit::conjuncts so index builders can exclude anchored conjuncts
/// from the residual they re-check per candidate.
struct ConstConjunct {
  std::size_t position = 0;
  FieldSlot slot;
  CmpOp op = CmpOp::kEq;
  Value constant;
};

/// Decomposition of a filter's top-level conjunction for index placement
/// (the single-binding analogue of split_equi_conjuncts). `conjuncts`
/// preserves the interpreter's evaluation order; `indexable` lists the
/// ==/</<=/>/>= constant conjuncts whose declared column type class
/// matches the constant's (kNe prunes nothing and is excluded, as are
/// class-mismatched compares, which throw rather than match).
/// `statically_safe` reports that no comparison anywhere in the tree can
/// throw on schema-conforming rows — the gate that entitles an index to
/// probe an anchor conjunct ahead of the interpreter's short-circuit
/// order (see statically_well_typed). Non-conjunctive filters report
/// conjunctive == false with everything else empty.
struct FilterSplit {
  bool conjunctive = false;
  bool statically_safe = false;
  std::vector<PredicatePtr> conjuncts;
  std::vector<ConstConjunct> indexable;
};
[[nodiscard]] FilterSplit split_const_conjuncts(
    const PredicatePtr& p, const std::vector<BindingSpec>& bindings);

/// True when no comparison node in `p` can throw on rows conforming to the
/// bound schemas: every FieldRef resolves, every compare's declared type
/// classes agree (string with string, numeric with numeric), and TimeBand
/// operands are numeric. Reordering the conjuncts of a statically
/// well-typed conjunction cannot change which rows throw (none do).
[[nodiscard]] bool statically_well_typed(
    const PredicatePtr& p, const std::vector<BindingSpec>& bindings);

/// One hash-joinable equality conjunct of a join predicate: the two value
/// columns (one per side) that must compare equal.
struct EquiKey {
  FieldSlot left;
  FieldSlot right;
};

/// Splits a join predicate over bindings [left, right] into equality
/// conjuncts a hash index can serve and the residual predicate re-checked
/// per candidate. A conjunct becomes a key iff it is a top-level
/// CompareField '=' whose sides statically resolve to *different*
/// bindings, resolve to the same slots under both binding orders (empty
/// aliases scan bindings in order, so ambiguous names must not flip
/// sides), and have hash-compatible declared types (both string or both
/// numeric — cross int/double equality hashes through double). Everything
/// else — non-conjunctive trees included — lands in `residual`.
struct JoinSplit {
  std::vector<EquiKey> keys;
  PredicatePtr residual;  // always_true() when nothing remains
};
[[nodiscard]] JoinSplit split_equi_conjuncts(
    const PredicatePtr& p, const std::vector<BindingSpec>& bindings);

}  // namespace cosmos::stream
