#include "graph/query_graph.h"

#include <gtest/gtest.h>

namespace cosmos::graph {
namespace {

QueryVertex qv(double weight) {
  QueryVertex v;
  v.weight = weight;
  return v;
}

TEST(QueryGraph, AddVertexAndEdge) {
  QueryGraph g;
  const auto a = g.add_vertex(qv(1.0));
  const auto b = g.add_vertex(qv(2.0));
  g.add_edge(a, b, 5.0);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  ASSERT_EQ(g.neighbors(a).size(), 1u);
  EXPECT_EQ(g.neighbors(a)[0].to, b);
  EXPECT_DOUBLE_EQ(g.neighbors(a)[0].weight, 5.0);
  EXPECT_DOUBLE_EQ(g.neighbors(b)[0].weight, 5.0);  // symmetric
}

TEST(QueryGraph, AddEdgeAccumulates) {
  QueryGraph g;
  const auto a = g.add_vertex(qv(1));
  const auto b = g.add_vertex(qv(1));
  g.add_edge(a, b, 2.0);
  g.add_edge(a, b, 3.0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(a)[0].weight, 5.0);
}

TEST(QueryGraph, SetEdgeOverwrites) {
  QueryGraph g;
  const auto a = g.add_vertex(qv(1));
  const auto b = g.add_vertex(qv(1));
  g.set_edge(a, b, 2.0);
  g.set_edge(a, b, 7.0);
  EXPECT_DOUBLE_EQ(g.neighbors(a)[0].weight, 7.0);
  EXPECT_DOUBLE_EQ(g.neighbors(b)[0].weight, 7.0);
}

TEST(QueryGraph, ZeroWeightEdgesIgnored) {
  QueryGraph g;
  const auto a = g.add_vertex(qv(1));
  const auto b = g.add_vertex(qv(1));
  g.add_edge(a, b, 0.0);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(QueryGraph, RejectsSelfEdge) {
  QueryGraph g;
  const auto a = g.add_vertex(qv(1));
  EXPECT_THROW(g.add_edge(a, a, 1.0), std::invalid_argument);
}

TEST(QueryGraph, TotalQueryWeightSkipsNVertices) {
  QueryGraph g;
  g.add_vertex(qv(1.5));
  QueryVertex n;
  n.kind = QVertexKind::kNetwork;
  n.weight = 100.0;  // should not count
  g.add_vertex(n);
  EXPECT_DOUBLE_EQ(g.total_query_weight(), 1.5);
}

TEST(QueryGraph, EnsureNetworkVertexIsIdempotent) {
  QueryGraph g;
  const auto a = g.ensure_network_vertex(NodeId{5});
  const auto b = g.ensure_network_vertex(NodeId{5});
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.find_network_vertex(NodeId{5}), a);
  EXPECT_EQ(g.find_network_vertex(NodeId{6}), QueryGraph::kNone);
}

TEST(ProxyRates, AddMergeToward) {
  ProxyRates a;
  a.add(NodeId{1}, 2.0);
  a.add(NodeId{1}, 3.0);
  a.add(NodeId{2}, 1.0);
  EXPECT_DOUBLE_EQ(a.toward(NodeId{1}), 5.0);
  EXPECT_DOUBLE_EQ(a.toward(NodeId{3}), 0.0);
  EXPECT_DOUBLE_EQ(a.total(), 6.0);
  ProxyRates b;
  b.add(NodeId{2}, 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.toward(NodeId{2}), 5.0);
}

}  // namespace
}  // namespace cosmos::graph
