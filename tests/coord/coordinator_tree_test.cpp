#include "coord/coordinator_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "net/topology.h"

namespace cosmos::coord {
namespace {

net::Deployment make_deployment_fixture(std::size_t processors,
                                        std::uint64_t seed) {
  Rng rng{seed};
  net::TransitStubParams tp;
  tp.transit_domains = 2;
  tp.transit_nodes_per_domain = 2;
  tp.stub_domains_per_transit = 3;
  tp.stub_nodes_per_domain = 20;
  const auto topo = net::make_transit_stub(tp, rng);
  net::DeploymentParams dp;
  dp.num_sources = 8;
  dp.num_processors = processors;
  return net::make_deployment(topo, dp, rng);
}

TEST(CoordinatorTree, CoversAllProcessorsExactlyOnce) {
  const auto d = make_deployment_fixture(40, 1);
  Rng rng{2};
  CoordinatorTree tree{d, 4, rng};
  const auto& root = tree.node(tree.root());
  EXPECT_EQ(root.descendants.size(), 40u);
  std::set<NodeId> seen{root.descendants.begin(), root.descendants.end()};
  EXPECT_EQ(seen.size(), 40u);
  EXPECT_DOUBLE_EQ(root.capability, 40.0);
}

TEST(CoordinatorTree, ClusterSizesWithinBand) {
  const auto d = make_deployment_fixture(64, 3);
  Rng rng{4};
  const std::size_t k = 4;
  CoordinatorTree tree{d, k, rng};
  for (std::uint32_t i = 0; i < tree.size(); ++i) {
    const auto& n = tree.node(i);
    if (n.level == 0 || i == tree.root()) continue;
    EXPECT_GE(n.children.size(), k) << "node " << i;
    EXPECT_LE(n.children.size(), 3 * k - 1) << "node " << i;
  }
}

TEST(CoordinatorTree, ParentPointersConsistent) {
  const auto d = make_deployment_fixture(30, 5);
  Rng rng{6};
  CoordinatorTree tree{d, 3, rng};
  for (std::uint32_t i = 0; i < tree.size(); ++i) {
    for (const auto c : tree.node(i).children) {
      EXPECT_EQ(tree.node(c).parent, i);
      EXPECT_EQ(tree.node(c).level, tree.node(i).level - 1);
    }
  }
  EXPECT_EQ(tree.node(tree.root()).parent, UINT32_MAX);
}

TEST(CoordinatorTree, LeafLookup) {
  const auto d = make_deployment_fixture(20, 7);
  Rng rng{8};
  CoordinatorTree tree{d, 4, rng};
  for (const NodeId p : d.processors) {
    const auto leaf = tree.leaf_of(p);
    EXPECT_EQ(tree.node(leaf).site, p);
    EXPECT_EQ(tree.node(leaf).level, 0);
    EXPECT_TRUE(tree.covers(tree.root(), p));
  }
  EXPECT_THROW(tree.leaf_of(d.sources[0]), std::invalid_argument);
  EXPECT_EQ(tree.find_leaf(d.sources[0]), UINT32_MAX);
}

TEST(CoordinatorTree, MedianIsClusterMember) {
  const auto d = make_deployment_fixture(36, 9);
  Rng rng{10};
  CoordinatorTree tree{d, 4, rng};
  for (std::uint32_t i = 0; i < tree.size(); ++i) {
    const auto& n = tree.node(i);
    if (n.children.empty()) continue;
    bool site_is_child_site = false;
    for (const auto c : n.children) {
      if (tree.node(c).site == n.site) site_is_child_site = true;
    }
    EXPECT_TRUE(site_is_child_site) << "median must come from the cluster";
  }
}

TEST(CoordinatorTree, SmallerKGivesTallerTree) {
  const auto d = make_deployment_fixture(64, 11);
  Rng r1{12}, r2{12};
  CoordinatorTree t2{d, 2, r1};
  CoordinatorTree t8{d, 8, r2};
  EXPECT_GT(t2.height(), t8.height());
}

TEST(CoordinatorTree, RejectsBadParams) {
  const auto d = make_deployment_fixture(10, 13);
  Rng rng{14};
  EXPECT_THROW(CoordinatorTree(d, 1, rng), std::invalid_argument);
}

TEST(CoordinatorTree, SingleProcessorDegenerateCase) {
  const auto d = make_deployment_fixture(1, 15);
  Rng rng{16};
  CoordinatorTree tree{d, 4, rng};
  EXPECT_GE(tree.height(), 1);
  EXPECT_EQ(tree.node(tree.root()).descendants.size(), 1u);
}

TEST(CoordinatorTree, NodesAtLevelPartition) {
  const auto d = make_deployment_fixture(50, 17);
  Rng rng{18};
  CoordinatorTree tree{d, 4, rng};
  const auto leaves = tree.nodes_at_level(0);
  EXPECT_EQ(leaves.size(), 50u);
  std::size_t covered = 0;
  for (const auto l1 : tree.nodes_at_level(1)) {
    covered += tree.node(l1).children.size();
  }
  EXPECT_EQ(covered, 50u);
}

}  // namespace
}  // namespace cosmos::coord
