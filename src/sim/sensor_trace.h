// Synthetic SensorScope-style sensor traces (stand-in for the paper's real
// snow-monitoring readings). Each station emits an autocorrelated
// snowHeight series plus temperature, at a fixed period.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "stream/schema.h"

namespace cosmos::sim {

struct SensorTraceParams {
  std::size_t stations = 2;
  std::size_t readings_per_station = 100;
  std::int64_t period_ms = 60'000;  ///< one reading per station per period
  double snow_base = 20.0;          ///< cm
  double snow_drift = 1.5;          ///< random-walk step scale
  double temp_base = -5.0;          ///< Celsius
};

struct SensorReading {
  std::size_t station;  ///< 0-based station index
  stream::Tuple tuple;  ///< values aligned with sensor_schema()
};

/// Schema of every station stream: (snowHeight double, temperature double,
/// stationId int, timestamp int).
[[nodiscard]] stream::Schema sensor_schema();

/// Stream name used for a station ("Station1", "Station2", ...).
[[nodiscard]] std::string station_stream_name(std::size_t station);

/// Readings in global timestamp order (interleaved across stations).
[[nodiscard]] std::vector<SensorReading> make_sensor_trace(
    const SensorTraceParams& params, Rng& rng);

}  // namespace cosmos::sim
