#include "stream/value.h"

#include <gtest/gtest.h>

namespace cosmos::stream {
namespace {

TEST(Value, TypesAndViews) {
  EXPECT_EQ(Value{std::int64_t{5}}.type(), ValueType::kInt);
  EXPECT_EQ(Value{2.5}.type(), ValueType::kDouble);
  EXPECT_EQ(Value{"abc"}.type(), ValueType::kString);
  EXPECT_EQ(Value{7}.as_int(), 7);
  EXPECT_DOUBLE_EQ(Value{7}.as_double(), 7.0);
  EXPECT_EQ(Value{"xyz"}.as_string(), "xyz");
}

TEST(Value, CrossTypeNumericComparison) {
  EXPECT_EQ(Value{3}.compare(Value{3.0}), 0);
  EXPECT_LT(Value{3}.compare(Value{3.5}), 0);
  EXPECT_GT(Value{4.1}.compare(Value{4}), 0);
}

TEST(Value, StringComparison) {
  EXPECT_LT(Value{"apple"}.compare(Value{"banana"}), 0);
  EXPECT_EQ(Value{"x"}.compare(Value{"x"}), 0);
}

TEST(Value, MixedStringNumericThrows) {
  EXPECT_THROW(Value{"a"}.compare(Value{1}), std::logic_error);
  EXPECT_THROW(Value{1}.compare(Value{"a"}), std::logic_error);
  EXPECT_THROW(Value{"a"}.as_double(), std::logic_error);
  EXPECT_THROW(Value{1}.as_string(), std::logic_error);
}

TEST(Value, Equality) {
  EXPECT_EQ(Value{5}, Value{5.0});
  EXPECT_FALSE(Value{5} == Value{6});
}

TEST(Value, ToString) {
  EXPECT_EQ(Value{5}.to_string(), "5");
  EXPECT_EQ(Value{"hi"}.to_string(), "hi");
}

}  // namespace
}  // namespace cosmos::stream
