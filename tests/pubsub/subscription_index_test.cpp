// Unit tests for the attribute-predicate SubscriptionIndex: placement
// policy (equality hash vs merged interval bands vs scan-list fallback),
// probe candidates against a brute-force anchor check, residual coverage,
// and incremental remove/re-add maintenance.
#include "pubsub/subscription_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "runtime/tuple_batch.h"
#include "stream/predicate.h"

namespace cosmos::pubsub {
namespace {

using stream::CmpOp;
using stream::CompiledPredicate;
using stream::FieldRef;
using stream::Predicate;
using stream::PredicatePtr;
using stream::Schema;
using stream::Tuple;
using stream::Value;
using stream::ValueType;

Schema station_schema() {
  return Schema{{{"snowHeight", ValueType::kDouble},
                 {"temperature", ValueType::kDouble},
                 {"stationId", ValueType::kInt},
                 {"label", ValueType::kString}}};
}

CompiledPredicate lenient(const PredicatePtr& p, const Schema& s) {
  return CompiledPredicate::compile_lenient(p, {{"", &s, SIZE_MAX}});
}

TEST(SubscriptionIndex, PlacementPolicy) {
  const Schema s = station_schema();
  SubscriptionIndex idx{&s};

  // Equality anchor wins even with ranges present.
  const auto eq_and_range = Predicate::conj(
      {Predicate::cmp(FieldRef{"", "snowHeight"}, CmpOp::kGt, Value{5.0}),
       Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kEq, Value{3})});
  EXPECT_EQ(idx.add(0, eq_and_range, lenient(eq_and_range, s)),
            SubscriptionIndex::Placement::kEquality);
  EXPECT_NE(idx.residual(0), nullptr);  // the range conjunct remains

  // Pure band: both sides merge into one interval, no residual left.
  const auto band = Predicate::conj(
      {Predicate::cmp(FieldRef{"", "snowHeight"}, CmpOp::kGe, Value{10.0}),
       Predicate::cmp(FieldRef{"", "snowHeight"}, CmpOp::kLt, Value{12.0})});
  EXPECT_EQ(idx.add(1, band, lenient(band, s)),
            SubscriptionIndex::Placement::kRange);
  EXPECT_EQ(idx.residual(1), nullptr);

  // String equality is indexable; string ranges are not.
  const auto str_eq =
      Predicate::cmp(FieldRef{"", "label"}, CmpOp::kEq, Value{"alp"});
  EXPECT_EQ(idx.add(2, str_eq, lenient(str_eq, s)),
            SubscriptionIndex::Placement::kEquality);
  const auto str_range =
      Predicate::cmp(FieldRef{"", "label"}, CmpOp::kLt, Value{"m"});
  EXPECT_EQ(idx.add(3, str_range, lenient(str_range, s)),
            SubscriptionIndex::Placement::kScan);

  // Unindexable shapes: OR, lenient may-throw, catch-all, type clash.
  const auto ors = Predicate::disj(
      {Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kEq, Value{1}),
       Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kEq, Value{2})});
  EXPECT_EQ(idx.add(4, ors, lenient(ors, s)),
            SubscriptionIndex::Placement::kScan);
  const auto unresolved =
      Predicate::cmp(FieldRef{"", "humidity"}, CmpOp::kGt, Value{0.5});
  EXPECT_EQ(idx.add(5, unresolved, lenient(unresolved, s)),
            SubscriptionIndex::Placement::kScan);
  const auto always = Predicate::always_true();
  EXPECT_EQ(idx.add(6, always, lenient(always, s)),
            SubscriptionIndex::Placement::kScan);
  const auto clash = Predicate::conj(
      {Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kEq, Value{1}),
       Predicate::cmp(FieldRef{"", "label"}, CmpOp::kGt, Value{3.0})});
  EXPECT_EQ(idx.add(7, clash, lenient(clash, s)),
            SubscriptionIndex::Placement::kScan);

  EXPECT_EQ(idx.equality_entries(), 2u);
  EXPECT_EQ(idx.range_entries(), 1u);
  EXPECT_EQ(idx.scan_slots(),
            (std::vector<SubscriptionIndex::Slot>{3, 4, 5, 6, 7}));
}

TEST(SubscriptionIndex, TimestampAnchor) {
  const Schema s = station_schema();
  SubscriptionIndex idx{&s};
  const auto p =
      Predicate::cmp(FieldRef{"", "timestamp"}, CmpOp::kGe, Value{100});
  EXPECT_EQ(idx.add(0, p, lenient(p, s)),
            SubscriptionIndex::Placement::kRange);
  std::vector<SubscriptionIndex::Slot> out;
  const Value vals[4] = {Value{1.0}, Value{1.0}, Value{0}, Value{"x"}};
  idx.probe({99, vals, 4}, out);
  EXPECT_TRUE(out.empty());
  idx.probe({100, vals, 4}, out);
  EXPECT_EQ(out, (std::vector<SubscriptionIndex::Slot>{0}));
}

/// Brute-force differential: random anchored filters, random rows; the
/// probe's candidates joined with their residuals must reproduce full
/// filter evaluation exactly, scalar and batched.
TEST(SubscriptionIndex, ProbeCandidatesMatchBruteForce) {
  const Schema s = station_schema();
  Rng rng{2024};
  for (int round = 0; round < 20; ++round) {
    SubscriptionIndex idx{&s};
    std::vector<PredicatePtr> filters;
    std::vector<CompiledPredicate> compiled;
    const std::size_t n = 40;
    for (std::size_t i = 0; i < n; ++i) {
      PredicatePtr p;
      switch (rng.next_below(5)) {
        case 0:
          p = Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kEq,
                             Value{rng.next_range(0, 5)});
          break;
        case 1: {
          const double lo = rng.next_double(-2.0, 2.0);
          p = Predicate::conj(
              {Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kGe,
                              Value{lo}),
               Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kLe,
                              Value{lo + rng.next_double(0.0, 1.0)})});
          break;
        }
        case 2:
          p = Predicate::cmp(FieldRef{"", "snowHeight"},
                             rng.next_bool(0.5) ? CmpOp::kGt : CmpOp::kLe,
                             Value{rng.next_double(-2.0, 2.0)});
          break;
        case 3:
          p = Predicate::conj(
              {Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kEq,
                              Value{rng.next_range(0, 5)}),
               Predicate::cmp(FieldRef{"", "snowHeight"}, CmpOp::kGt,
                              Value{rng.next_double(-2.0, 2.0)})});
          break;
        default:
          p = Predicate::cmp(FieldRef{"", "label"}, CmpOp::kEq,
                             Value{std::string(
                                 1, static_cast<char>(
                                        'a' + rng.next_below(3)))});
          break;
      }
      filters.push_back(p);
      compiled.push_back(lenient(p, s));
      const auto placed = idx.add(static_cast<SubscriptionIndex::Slot>(i), p,
                                  compiled.back());
      ASSERT_NE(placed, SubscriptionIndex::Placement::kScan);
    }

    runtime::TupleBatch batch{"S"};
    for (int r = 0; r < 64; ++r) {
      batch.push_back(Tuple{
          static_cast<stream::Timestamp>(r),
          {Value{rng.next_double(-2.0, 2.0)}, Value{rng.next_double(-2.0, 2.0)},
           Value{rng.next_range(0, 5)},
           Value{std::string(1, static_cast<char>('a' + rng.next_below(3)))}}});
    }

    // Scalar probes row by row.
    std::vector<SubscriptionIndex::Slot> cand;
    for (std::size_t r = 0; r < batch.size(); ++r) {
      const Tuple row = batch.row(r);
      const CompiledPredicate::Row cr{row.ts, row.values.data(),
                                      row.values.size()};
      cand.clear();
      idx.probe(cr, cand);
      std::vector<bool> matched(n, false);
      for (const auto slot : cand) {
        const auto* res = idx.residual(slot);
        if (res == nullptr || res->eval(&cr)) matched[slot] = true;
      }
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(matched[i], compiled[i].eval(&cr))
            << "round " << round << " row " << r << " filter "
            << filters[i]->to_string();
      }
    }

    // Batched probes, whole batch at once.
    std::vector<std::vector<std::uint32_t>> cands(n);
    std::vector<SubscriptionIndex::Slot> touched;
    idx.probe_batch(batch, cands, touched);
    std::vector<std::vector<std::uint32_t>> rows_of(n);
    for (const auto slot : touched) {
      if (const auto* res = idx.residual(slot)) {
        res->filter_batch(batch, &cands[slot], rows_of[slot]);
      } else {
        rows_of[slot] = cands[slot];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::uint32_t> expect;
      compiled[i].filter_batch(batch, nullptr, expect);
      EXPECT_EQ(rows_of[i], expect) << filters[i]->to_string();
    }
  }
}

TEST(SubscriptionIndex, RemoveIsIncrementalAndSlotsAreReusable) {
  const Schema s = station_schema();
  SubscriptionIndex idx{&s};
  const auto eq =
      Predicate::cmp(FieldRef{"", "stationId"}, CmpOp::kEq, Value{7});
  const auto band = Predicate::conj(
      {Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kGe, Value{-1.0}),
       Predicate::cmp(FieldRef{"", "temperature"}, CmpOp::kLt, Value{1.0})});
  idx.add(0, eq, lenient(eq, s));
  idx.add(1, band, lenient(band, s));
  idx.add(2, eq, lenient(eq, s));

  const Value vals[4] = {Value{0.0}, Value{0.0}, Value{7}, Value{"x"}};
  const CompiledPredicate::Row row{5, vals, 4};
  std::vector<SubscriptionIndex::Slot> out;
  idx.probe(row, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<SubscriptionIndex::Slot>{0, 1, 2}));

  idx.remove(0);
  EXPECT_EQ(idx.equality_entries(), 1u);
  out.clear();
  idx.probe(row, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<SubscriptionIndex::Slot>{1, 2}));
  idx.remove(1);
  EXPECT_EQ(idx.range_entries(), 0u);
  idx.remove(1);  // unknown slot: no-op

  // Re-adding a freed slot with a different shape relocates it.
  const auto unresolved =
      Predicate::cmp(FieldRef{"", "nope"}, CmpOp::kGt, Value{0});
  EXPECT_EQ(idx.add(0, unresolved, lenient(unresolved, s)),
            SubscriptionIndex::Placement::kScan);
  out.clear();
  idx.probe(row, out);
  EXPECT_EQ(out, (std::vector<SubscriptionIndex::Slot>{2}));
  EXPECT_EQ(idx.scan_slots(), (std::vector<SubscriptionIndex::Slot>{0}));
}

}  // namespace
}  // namespace cosmos::pubsub
