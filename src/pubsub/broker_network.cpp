#include "pubsub/broker_network.h"

#include <limits>
#include <queue>
#include <stdexcept>

namespace cosmos::pubsub {

BrokerNetwork::BrokerNetwork(std::vector<NodeId> participants,
                             const net::LatencyMatrix& lat)
    : participants_(std::move(participants)), lat_(&lat) {
  const std::size_t n = participants_.size();
  if (n == 0) throw std::invalid_argument{"BrokerNetwork: no participants"};
  for (std::size_t i = 0; i < n; ++i) {
    if (!index_.emplace(participants_[i], i).second) {
      throw std::invalid_argument{"BrokerNetwork: duplicate participant"};
    }
  }

  // Latency-minimal spanning tree (Prim).
  adj_.resize(n);
  std::vector<char> in_tree(n, 0);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> parent(n, SIZE_MAX);
  best[0] = 0;
  for (std::size_t it = 0; it < n; ++it) {
    std::size_t u = SIZE_MAX;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_tree[i] && (u == SIZE_MAX || best[i] < best[u])) u = i;
    }
    in_tree[u] = 1;
    if (parent[u] != SIZE_MAX) {
      adj_[u].push_back(parent[u]);
      adj_[parent[u]].push_back(u);
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double d = lat_->latency(participants_[u], participants_[v]);
      if (d < best[v]) {
        best[v] = d;
        parent[v] = u;
      }
    }
  }

  // Tree routing tables: BFS from each node.
  next_hop_.assign(n, std::vector<std::size_t>(n, SIZE_MAX));
  for (std::size_t src = 0; src < n; ++src) {
    std::queue<std::size_t> q;
    std::vector<char> seen(n, 0);
    seen[src] = 1;
    for (const auto nb : adj_[src]) {
      next_hop_[src][nb] = nb;
      seen[nb] = 1;
      q.push(nb);
    }
    std::vector<std::size_t> via(n, SIZE_MAX);
    for (const auto nb : adj_[src]) via[nb] = nb;
    while (!q.empty()) {
      const auto u = q.front();
      q.pop();
      for (const auto v : adj_[u]) {
        if (seen[v]) continue;
        seen[v] = 1;
        via[v] = via[u];
        next_hop_[src][v] = via[v];
        q.push(v);
      }
    }
  }
  subs_at_.resize(n);
}

std::size_t BrokerNetwork::index_of(NodeId n) const {
  const auto it = index_.find(n);
  if (it == index_.end()) {
    throw std::invalid_argument{"BrokerNetwork: not a participant"};
  }
  return it->second;
}

std::size_t BrokerNetwork::next_hop(std::size_t from, std::size_t to) const {
  return next_hop_[from][to];
}

void BrokerNetwork::advertise(const std::string& stream, NodeId publisher,
                              stream::Schema schema) {
  const auto idx = index_of(publisher);
  (void)idx;
  if (!adverts_.emplace(stream, Advert{publisher, std::move(schema)}).second) {
    throw std::invalid_argument{"BrokerNetwork: stream already advertised: " +
                                stream};
  }
}

const stream::Schema& BrokerNetwork::schema(const std::string& stream) const {
  const auto it = adverts_.find(stream);
  if (it == adverts_.end()) {
    throw std::out_of_range{"BrokerNetwork: unknown stream " + stream};
  }
  return it->second.schema;
}

SubscriptionId BrokerNetwork::subscribe(Subscription sub) {
  const auto home = index_of(sub.subscriber);
  const SubscriptionId id{next_sub_id_++};
  sub.id = id;
  subs_at_[home].push_back(id);
  for (const auto& s : sub.streams) by_stream_[s].push_back(id);
  subscriptions_.emplace(id, std::move(sub));
  return id;
}

void BrokerNetwork::unsubscribe(SubscriptionId id) {
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return;
  const auto home = index_of(it->second.subscriber);
  std::erase(subs_at_[home], id);
  for (const auto& s : it->second.streams) std::erase(by_stream_[s], id);
  subscriptions_.erase(it);
}

std::vector<NodeId> BrokerNetwork::neighbors(NodeId n) const {
  std::vector<NodeId> out;
  for (const auto nb : adj_[index_of(n)]) out.push_back(participants_[nb]);
  return out;
}

void BrokerNetwork::publish(const std::string& stream,
                            const stream::Tuple& tuple,
                            const DeliveryCallback& callback) {
  const auto it = adverts_.find(stream);
  if (it == adverts_.end()) {
    throw std::invalid_argument{"BrokerNetwork: publish to unadvertised " +
                                stream};
  }
  Message message{stream, &it->second.schema, tuple};
  // Match every interested subscription once per tuple; routing then only
  // consults the matched set (this is what the per-broker routing tables
  // built by subscription propagation amount to).
  std::vector<MatchedSub> matched;
  if (const auto sit = by_stream_.find(stream); sit != by_stream_.end()) {
    for (const auto id : sit->second) {
      const auto& sub = subscriptions_.at(id);
      if (sub.matches(*message.schema, message.tuple)) {
        matched.push_back({&sub, index_of(sub.subscriber)});
      }
    }
  }
  if (matched.empty()) return;
  route(message, index_of(it->second.publisher), SIZE_MAX, matched, callback);
}

void BrokerNetwork::publish_batch(const std::string& stream,
                                  const runtime::TupleBatch& batch,
                                  const BatchDeliveryCallback& callback) {
  const auto it = adverts_.find(stream);
  if (it == adverts_.end()) {
    throw std::invalid_argument{"BrokerNetwork: publish to unadvertised " +
                                stream};
  }
  const auto publisher = index_of(it->second.publisher);
  const auto* interested = [&]() -> const std::vector<SubscriptionId>* {
    const auto sit = by_stream_.find(stream);
    return sit == by_stream_.end() ? nullptr : &sit->second;
  }();
  // No subscriptions: nothing can match, route, or be accounted — skip the
  // per-row materialization entirely (as the scalar path effectively does).
  if (interested == nullptr || interested->empty()) return;

  // Accumulate per-subscription row lists in first-match order; matching
  // and routing run per row so the traffic accounting is byte-identical to
  // row-count scalar publishes.
  std::vector<BatchDelivery> deliveries;
  std::unordered_map<SubscriptionId, std::size_t> delivery_of;
  Message message{stream, &it->second.schema, {}};
  std::vector<MatchedSub> matched;
  for (std::uint32_t row = 0; row < batch.size(); ++row) {
    batch.materialize(row, message.tuple);
    matched.clear();
    for (const auto id : *interested) {
      const auto& sub = subscriptions_.at(id);
      if (sub.matches(*message.schema, message.tuple)) {
        matched.push_back({&sub, index_of(sub.subscriber)});
        auto [dit, fresh] = delivery_of.try_emplace(id, deliveries.size());
        if (fresh) deliveries.push_back({&sub, &batch, {}});
        deliveries[dit->second].rows.push_back(row);
      }
    }
    if (matched.empty()) continue;
    route(message, publisher, SIZE_MAX, matched,
          [](const Subscription&, const Message&) {});
  }
  for (const auto& d : deliveries) callback(d);
}

void BrokerNetwork::route(const Message& message, std::size_t at,
                          std::size_t came_from,
                          const std::vector<MatchedSub>& matched,
                          const DeliveryCallback& callback) {
  // Local delivery.
  for (const auto& m : matched) {
    if (m.home == at) callback(*m.sub, message);
  }
  // Forward to each neighbor leading to at least one interested
  // subscription, with attributes pruned to the union of their projections
  // (early projection; one copy per link regardless of fan-out behind it).
  for (const auto nb : adj_[at]) {
    if (nb == came_from) continue;
    std::set<std::string> attrs;
    bool wants_all = false;
    bool any = false;
    for (const auto& m : matched) {
      if (m.home == at || next_hop_[at][m.home] != nb) continue;
      any = true;
      if (m.sub->projection.empty()) {
        wants_all = true;
      } else {
        attrs.insert(m.sub->projection.begin(), m.sub->projection.end());
      }
    }
    if (!any) continue;
    const double bytes =
        message_bytes(message, wants_all ? std::set<std::string>{} : attrs);
    const double latency = lat_->latency(participants_[at], participants_[nb]);
    traffic_.bytes += bytes;
    traffic_.weighted_cost += bytes * latency;
    ++traffic_.messages_sent;
    route(message, nb, at, matched, callback);
  }
}

}  // namespace cosmos::pubsub
