// FaultPlan / LinkFault: the deterministic fault-injection schedule. These
// tests pin down the contract the transport relies on — spec parsing
// round-trips, schedule windows arm and disarm on exact frame counts, the
// plan replays identically for identical traffic, and header corruption
// always lands on a byte the strict decoder is guaranteed to reject.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "wire/codec.h"
#include "wire/messages.h"

namespace cosmos::fault {
namespace {

TEST(FaultPlan, ParsesAndPrintsSpecs) {
  const auto plan = FaultPlan::parse(
      "send:drop@after=3,for=2;recv:delay@ms=20;send:corrupt@seed=7");
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kDrop);
  EXPECT_EQ(plan.specs[0].dir, Direction::kSend);
  EXPECT_EQ(plan.specs[0].after_frames, 3u);
  EXPECT_EQ(plan.specs[0].for_frames, 2u);
  EXPECT_EQ(plan.specs[1].kind, FaultKind::kDelay);
  EXPECT_EQ(plan.specs[1].dir, Direction::kRecv);
  EXPECT_EQ(plan.specs[1].ms, 20);
  EXPECT_EQ(plan.specs[2].kind, FaultKind::kCorrupt);
  EXPECT_EQ(plan.specs[2].seed, 7u);

  // to_string round-trips through parse.
  const auto again = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.to_string(), plan.to_string());

  EXPECT_TRUE(FaultPlan{}.empty());
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("send"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("sideways:drop"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("send:gremlins"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("send:drop@after"),
               std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("send:drop@bogus=1"),
               std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("send:drop@after=xyz"),
               std::runtime_error);
}

TEST(LinkFault, ScheduleWindowArmsAndDisarmsOnExactCounts) {
  LinkFault fault{FaultPlan::parse("send:drop@after=2,for=3")};
  std::vector<bool> dropped;
  for (int i = 0; i < 8; ++i) dropped.push_back(fault.on_send().drop);
  // Frames 0,1 pass; 2,3,4 drop; 5.. pass again.
  EXPECT_EQ(dropped, (std::vector<bool>{false, false, true, true, true,
                                        false, false, false}));
  EXPECT_EQ(fault.frames_seen(Direction::kSend), 8u);
  EXPECT_EQ(fault.frames_seen(Direction::kRecv), 0u);
}

TEST(LinkFault, DirectionsCountIndependently) {
  LinkFault fault{FaultPlan::parse("send:partition@after=1;recv:drop@for=2")};
  // Send: frame 0 passes, everything after vanishes (partition is sticky).
  EXPECT_FALSE(fault.on_send().drop);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(fault.on_send().drop);
  // Recv counts on its own clock: frames 0,1 drop, then the link heals.
  EXPECT_TRUE(fault.on_recv().drop);
  EXPECT_TRUE(fault.on_recv().drop);
  EXPECT_FALSE(fault.on_recv().drop);
  // Send-only kinds never leak into recv actions.
  LinkFault send_only{FaultPlan::parse("send:dup;send:corrupt;send:reorder")};
  const auto r = send_only.on_recv();
  EXPECT_FALSE(r.drop);
  EXPECT_FALSE(r.hang);
}

TEST(LinkFault, ReorderHoldsExactlyTheArmedFrame) {
  LinkFault fault{FaultPlan::parse("send:reorder@after=2")};
  std::vector<bool> held;
  for (int i = 0; i < 5; ++i) held.push_back(fault.on_send().reorder_hold);
  // Only frame 2 is held; the transport releases it after frame 3 — a
  // single A,B swap, not a rolling shuffle.
  EXPECT_EQ(held, (std::vector<bool>{false, false, true, false, false}));
}

TEST(LinkFault, DelayDupTrickleActionsCarryTheirParameters) {
  LinkFault fault{
      FaultPlan::parse("send:delay@ms=35;send:dup@for=1;send:trickle@ms=10")};
  const auto first = fault.on_send();
  EXPECT_EQ(first.extra_delay_ms, 35);
  EXPECT_TRUE(first.duplicate);
  EXPECT_EQ(first.pace_ms, 10);
  const auto second = fault.on_send();
  EXPECT_FALSE(second.duplicate);  // dup window was one frame
  EXPECT_EQ(second.extra_delay_ms, 35);
  EXPECT_EQ(second.frame_index, 1u);

  LinkFault hang{FaultPlan::parse("send:hang@after=1")};
  EXPECT_FALSE(hang.on_send().hang);
  EXPECT_TRUE(hang.on_send().hang);
}

TEST(CorruptFrameBytes, AlwaysLandsOnAHeaderByteTheDecoderRejects) {
  // Whatever (seed, frame_index) picks, the flip must hit magic, version,
  // or the length MSB — bytes whose corruption decode_frame_header is
  // guaranteed to reject. A flip the decoder could miss would turn a
  // detection test into silent data damage.
  const auto clean = wire::encode_frame(wire::encode_watermark({42}));
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    for (std::uint64_t index = 0; index < 32; ++index) {
      auto bytes = clean;
      const std::size_t off = corrupt_frame_bytes(bytes, seed, index);
      EXPECT_LT(off, wire::kFrameHeaderBytes);
      EXPECT_NE(bytes[off], clean[off]);
      std::uint8_t header[wire::kFrameHeaderBytes];
      std::copy_n(bytes.data(), wire::kFrameHeaderBytes, header);
      wire::FrameType type{};
      EXPECT_THROW((void)wire::decode_frame_header(header, type),
                   wire::Error)
          << "seed=" << seed << " index=" << index << " offset=" << off;
    }
  }
}

TEST(LinkFault, ReplaysIdenticallyForIdenticalTraffic) {
  const auto plan =
      FaultPlan::parse("send:drop@after=4,for=3;send:corrupt@after=10,seed=3");
  LinkFault a{plan};
  LinkFault b{plan};
  for (int i = 0; i < 40; ++i) {
    const auto sa = a.on_send();
    const auto sb = b.on_send();
    EXPECT_EQ(sa.drop, sb.drop) << i;
    EXPECT_EQ(sa.corrupt, sb.corrupt) << i;
    EXPECT_EQ(sa.corrupt_seed, sb.corrupt_seed) << i;
  }
}

}  // namespace
}  // namespace cosmos::fault
