// Federation chaos differential: a worker SIGKILLed mid-trace must be
// respawned on the same endpoint, replayed from the last checkpoint, and
// resumed — with per-query result sequences byte-identical to the
// synchronous push() mode. Exercised across seeds, worker counts and both
// execute-shipping topologies (star and peer links), which makes this the
// end-to-end regression for the whole recovery tail: stale-socket rebind,
// registration replay, checkpointed state re-handoff, data-log replay and
// the sites' per-engine seq dedup.
//
// Also here (they need real cosmos_noded processes): the peer-link traffic
// accounting guarantee — with peer_links on, execute batches travel
// worker-to-worker and the driver ships ~no execute bytes — and the
// NodeProcess supervision contract (poll / terminate / kill / exit_status).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <vector>

#include "cosmos/cosmos.h"
#include "node/spawn.h"
#include "support/random_workload.h"

namespace cosmos::middleware {
namespace {

using testsupport::ResultLog;
using testsupport::build_system;
using testsupport::make_workload;

struct Fleet {
  std::vector<node::NodeProcess> procs;
  std::vector<std::string> endpoints;
};

Fleet spawn_fleet(std::size_t n, const std::string& tag) {
  static int counter = 0;
  Fleet fleet;
  const std::string noded = node::default_noded_path();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string endpoint = "unix:/tmp/cosmos_chaos_" + tag + "_" +
                                 std::to_string(::getpid()) + "_" +
                                 std::to_string(counter++) + ".sock";
    fleet.procs.push_back(node::spawn_noded(noded, endpoint));
    fleet.endpoints.push_back(endpoint);
  }
  return fleet;
}

TEST(FederationChaos, KillRespawnResumeMatchesPush) {
  // COSMOS_CHAOS_TRACE, when set, collects the first configuration's
  // merged Chrome trace for CI validation (tools/check_trace.py).
  const char* trace_env = std::getenv("COSMOS_CHAOS_TRACE");
  bool trace_written = false;

  for (const std::uint64_t seed : {2, 5}) {
    const auto w = make_workload(seed);

    ResultLog push_log;
    {
      auto sys = build_system(w, push_log);
      for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
    }

    struct Config {
      std::size_t workers;
      bool peer_links;
      stream::Timestamp checkpoint_every_ms;
    };
    for (const Config cfg :
         {Config{2, false, 0}, Config{2, true, 60'000}, Config{4, false, 0},
          Config{4, true, 0}}) {
      auto fleet = spawn_fleet(cfg.workers, "kill");
      ResultLog fed_log;
      auto sys = build_system(w, fed_log);

      Cosmos::FederationOptions opts;
      opts.workers = fleet.endpoints;
      opts.batch_size = 16;  // small chunks: the kill lands mid-trace
      opts.tick_ms = 20 * 60'000;
      opts.peer_links = cfg.peer_links;
      opts.recovery.enabled = true;
      opts.recovery.noded_path = node::default_noded_path();
      opts.recovery.checkpoint_every_ms = cfg.checkpoint_every_ms;
      if (trace_env != nullptr && !trace_written) {
        opts.trace_path = trace_env;
        trace_written = true;
      }
      // SIGKILL one worker, once, at a deterministic chunk boundary. The
      // driver must detect the dead peer, respawn the daemon on the very
      // same endpoint (stale socket file and all), replay, and resume.
      const std::size_t victim = 1 % cfg.workers;
      bool killed = false;
      opts.on_chunk = [&](std::size_t chunk) {
        if (chunk == 2 && !killed) {
          fleet.procs[victim].kill();
          killed = true;
        }
      };

      const auto report = sys->run_federated(w.events, opts);

      ASSERT_TRUE(killed) << "trace too short to land the kill: seed="
                          << seed << " workers=" << cfg.workers;
      EXPECT_EQ(report.federation.recoveries, 1u);
      EXPECT_EQ(report.tuples, w.events.size());
      ASSERT_EQ(fed_log, push_log)
          << "chaos differential mismatch: seed=" << seed
          << " workers=" << cfg.workers
          << " peer_links=" << cfg.peer_links
          << " checkpoint_every_ms=" << cfg.checkpoint_every_ms;

      // The victim died on our SIGKILL; everyone else (including the
      // respawned daemon, owned by the driver) ends orderly.
      EXPECT_EQ(fleet.procs[victim].exit_status(), -SIGKILL);
      for (std::size_t i = 0; i < fleet.procs.size(); ++i) {
        if (i != victim) EXPECT_EQ(fleet.procs[i].wait(), 0);
      }
    }
  }
}

TEST(FederationChaos, KillSameWorkerTwiceRecoversTwice) {
  // Double failure, same slot: the victim's *respawn* is SIGKILLed a few
  // chunks after the first recovery completes. The second recovery must
  // replay on top of the first (registration log and data log are still
  // coherent), bounded only by max_recoveries.
  const auto w = make_workload(2);
  ResultLog push_log;
  {
    auto sys = build_system(w, push_log);
    for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
  }

  auto fleet = spawn_fleet(2, "twice");
  ResultLog fed_log;
  auto sys = build_system(w, fed_log);

  Cosmos::FederationOptions opts;
  opts.workers = fleet.endpoints;
  opts.batch_size = 16;
  opts.tick_ms = 20 * 60'000;
  opts.recovery.enabled = true;
  opts.recovery.noded_path = node::default_noded_path();
  const std::size_t victim = 1;
  pid_t respawn_pid = -1;
  std::size_t respawn_chunk = 0;
  std::size_t kills = 0;
  opts.on_respawn = [&](std::size_t worker, pid_t pid) {
    if (worker == victim) respawn_pid = pid;
  };
  opts.on_chunk = [&](std::size_t chunk) {
    if (chunk == 2 && kills == 0) {
      fleet.procs[victim].kill();
      ++kills;
      respawn_chunk = chunk;
    } else if (kills == 1 && respawn_pid > 0 && chunk >= respawn_chunk + 2) {
      node::kill_and_reap(respawn_pid);
      ++kills;
    }
  };

  const auto report = sys->run_federated(w.events, opts);

  ASSERT_EQ(kills, 2u) << "trace too short to land both kills";
  EXPECT_EQ(report.federation.recoveries, 2u);
  ASSERT_EQ(fed_log, push_log) << "double-kill differential mismatch";
  for (std::size_t i = 0; i < fleet.procs.size(); ++i) {
    if (i != victim) EXPECT_EQ(fleet.procs[i].wait(), 0);
  }
}

TEST(FederationChaos, KillDuringRecoveryReplayRecoversBoth) {
  // Double failure, overlapping: worker 0 dies while worker 1's recovery
  // is mid-replay (the on_respawn hook fires between respawn and replay).
  // The second death queues behind the first recovery and is dispatched
  // right after it completes — the wait_for loop's no-recursion contract.
  const auto w = make_workload(5);
  ResultLog push_log;
  {
    auto sys = build_system(w, push_log);
    for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
  }

  auto fleet = spawn_fleet(2, "overlap");
  ResultLog fed_log;
  auto sys = build_system(w, fed_log);

  Cosmos::FederationOptions opts;
  opts.workers = fleet.endpoints;
  opts.batch_size = 16;
  opts.tick_ms = 20 * 60'000;
  opts.recovery.enabled = true;
  opts.recovery.noded_path = node::default_noded_path();
  bool killed_first = false;
  bool killed_second = false;
  opts.on_chunk = [&](std::size_t chunk) {
    if (chunk == 2 && !killed_first) {
      fleet.procs[1].kill();
      killed_first = true;
    }
  };
  opts.on_respawn = [&](std::size_t worker, pid_t) {
    if (worker == 1 && !killed_second) {
      fleet.procs[0].kill();
      killed_second = true;
    }
  };

  const auto report = sys->run_federated(w.events, opts);

  ASSERT_TRUE(killed_first && killed_second);
  EXPECT_EQ(report.federation.recoveries, 2u);
  ASSERT_EQ(fed_log, push_log) << "overlapping-kill differential mismatch";
}

TEST(FederationChaos, PeerLinksKeepExecuteBytesOffDriver) {
  const auto w = make_workload(3);
  ResultLog push_log;
  {
    auto sys = build_system(w, push_log);
    for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
  }

  for (const bool peer : {false, true}) {
    auto fleet = spawn_fleet(2, peer ? "peer" : "star");
    ResultLog fed_log;
    auto sys = build_system(w, fed_log);
    Cosmos::FederationOptions opts;
    opts.workers = fleet.endpoints;
    opts.batch_size = 32;
    opts.tick_ms = 20 * 60'000;
    opts.peer_links = peer;
    const auto report = sys->run_federated(w.events, opts);

    ASSERT_EQ(fed_log, push_log) << "peer_links=" << peer;
    if (peer) {
      // No recovery replay happened, so the driver shipped *zero* execute
      // bytes: batches traveled worker-to-worker over peer links.
      EXPECT_EQ(report.federation.driver_execute_bytes, 0u);
      EXPECT_GT(report.federation.peer_frames, 0u);
      EXPECT_GT(report.federation.peer_bytes, 0u);
    } else {
      EXPECT_GT(report.federation.driver_execute_bytes, 0u);
      EXPECT_EQ(report.federation.peer_frames, 0u);
      EXPECT_EQ(report.federation.peer_bytes, 0u);
    }
    for (auto& p : fleet.procs) EXPECT_EQ(p.wait(), 0);
  }
}

TEST(FederationChaos, DaemonRebindsEndpointAfterSigkill) {
  // The daemon-level face of the stale-socket fix: kill -9 leaves the
  // bound socket file behind; a respawn on the same endpoint must bind,
  // listen, and serve.
  const std::string endpoint = "unix:/tmp/cosmos_chaos_rebind_" +
                               std::to_string(::getpid()) + ".sock";
  const std::string noded = node::default_noded_path();
  auto first = node::spawn_noded(noded, endpoint);
  first.kill();
  EXPECT_EQ(first.exit_status(), -SIGKILL);

  auto second = node::spawn_noded(noded, endpoint);
  const auto w = make_workload(1);
  ResultLog push_log;
  {
    auto sys = build_system(w, push_log);
    for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
  }
  ResultLog fed_log;
  auto sys = build_system(w, fed_log);
  Cosmos::FederationOptions opts;
  opts.workers = {endpoint};
  const auto report = sys->run_federated(w.events, opts);
  EXPECT_EQ(report.tuples, w.events.size());
  ASSERT_EQ(fed_log, push_log);
  EXPECT_EQ(second.wait(), 0);
}

TEST(FederationChaos, NodeProcessSupervisionContract) {
  const std::string endpoint = "unix:/tmp/cosmos_chaos_super_" +
                               std::to_string(::getpid()) + ".sock";
  auto proc = node::spawn_noded(node::default_noded_path(), endpoint);
  ASSERT_TRUE(proc.running());
  // Still serving: nothing to reap yet.
  EXPECT_EQ(proc.poll(), std::nullopt);
  EXPECT_EQ(proc.exit_status(), std::nullopt);

  // Graceful stop: SIGTERM with a bounded grace period. cosmos_noded has
  // no SIGTERM handler, so it dies on the signal — the point is terminate()
  // returns promptly and records the status.
  const int status = proc.terminate(2'000);
  EXPECT_EQ(status, -SIGTERM);
  EXPECT_EQ(proc.exit_status(), -SIGTERM);
  // Idempotent after the reap.
  EXPECT_EQ(proc.poll(), std::optional<int>{-SIGTERM});
  EXPECT_EQ(proc.terminate(), -SIGTERM);
  EXPECT_EQ(proc.wait(), -SIGTERM);
}

}  // namespace
}  // namespace cosmos::middleware
