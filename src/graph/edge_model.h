// Edge-weight estimation for query graphs.
//
// Builds the query graph from q-vertex payloads (fine queries or coarse
// groups — both carry an interest bit-vector and per-proxy output rates) and
// re-estimates edge weights when vertices collapse during coarsening
// (Algorithm 1, "Re-estimate the weights of the edges connected to w").
// Using the union interest bit-vectors makes a coarse edge weight the true
// rate of the union interest rather than a double-counting sum.
#pragma once

#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bit_vector.h"
#include "common/rng.h"
#include "graph/query_graph.h"
#include "query/interest.h"

namespace cosmos::graph {

/// Derives edge weights from substream statistics.
class EdgeModel {
 public:
  explicit EdgeModel(const query::SubstreamSpace& space);

  [[nodiscard]] const query::SubstreamSpace& space() const noexcept {
    return *space_;
  }

  /// Overlap rate between two (possibly coarse) q-vertices: the rate of
  /// substreams both are interested in (the paper's q-q edge weight).
  [[nodiscard]] double qq_weight(const QueryVertex& a,
                                 const QueryVertex& b) const;

  /// q-vertex <-> n-vertex rate: source component (rate of q's interest
  /// originating at n's node) plus result component (q's output rate toward
  /// that node if it is a member's proxy).
  [[nodiscard]] double qn_weight(const QueryVertex& q,
                                 const QueryVertex& n) const;

  /// Substreams originating at `node` (empty mask if none).
  [[nodiscard]] const BitVector& source_mask(NodeId node) const;

  /// Per-source-node input rates of a vertex's interest.
  [[nodiscard]] std::vector<std::pair<NodeId, double>> rate_by_source(
      const QueryVertex& q) const;

 private:
  const query::SubstreamSpace* space_;
  std::unordered_map<NodeId, BitVector> masks_;
  BitVector empty_mask_;
};

/// Converts an interest profile into a (fine) q-vertex payload.
[[nodiscard]] QueryVertex to_query_vertex(const query::InterestProfile& p);

/// Controls query-graph construction cost (see DESIGN.md, "Overlap edges").
struct QueryGraphBuildParams {
  /// Use exact all-pairs overlap edges when #q-vertices <= this.
  std::size_t exact_pair_threshold = 1500;
  /// Otherwise: keep at most this many overlap edges per q-vertex...
  std::size_t max_overlap_degree = 12;
  /// ...chosen among this many candidates proposed by the inverted
  /// substream->vertex index.
  std::size_t candidate_sample = 40;
};

/// Builds a query graph: one q-vertex per payload, n-vertices for every
/// referenced source/proxy node, q-n rate edges, q-q overlap edges.
/// `clu_of` (may be null) labels n-vertices with the covering child cluster
/// index (-1 = not covered).
[[nodiscard]] QueryGraph build_query_graph(
    std::span<const QueryVertex> items, const EdgeModel& model,
    const QueryGraphBuildParams& params,
    const std::function<int(NodeId)>* clu_of, Rng& rng);

}  // namespace cosmos::graph
