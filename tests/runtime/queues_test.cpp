#include "runtime/queues.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace cosmos::runtime {
namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> q{4};
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(BoundedQueue, TryPushLeavesValueOnFullQueue) {
  BoundedQueue<std::string> q{1};
  std::string a = "first";
  ASSERT_TRUE(q.try_push(a));
  std::string b = "second";
  EXPECT_FALSE(q.try_push(b));
  EXPECT_EQ(b, "second");  // not consumed by the failed push
  EXPECT_EQ(q.pop(), "first");
}

TEST(BoundedQueue, BackpressureBlocksInsteadOfDropping) {
  // A producer pushes more items than the queue holds while a slow consumer
  // drains; every item must arrive, in order — blocked, never dropped.
  constexpr std::size_t kItems = 200;
  BoundedQueue<std::size_t> q{2};
  std::atomic<std::size_t> produced{0};
  std::thread producer{[&] {
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_TRUE(q.push(i));
      produced.fetch_add(1, std::memory_order_relaxed);
    }
  }};
  // Give the producer a chance to hit the full queue.
  while (produced.load(std::memory_order_relaxed) < 2) std::this_thread::yield();
  EXPECT_LE(q.depth(), 2u);
  std::vector<std::size_t> got;
  for (std::size_t i = 0; i < kItems; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    got.push_back(*v);
  }
  producer.join();
  ASSERT_EQ(got.size(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
  // The producer could never overshoot the bound.
  EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> q{8};
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q{2};
  std::optional<int> result{42};
  std::thread consumer{[&] { result = q.pop(); }};
  q.close();
  consumer.join();
  EXPECT_EQ(result, std::nullopt);
}

TEST(MpscBuffer, DrainsEverythingInPerProducerOrder) {
  MpscBuffer<std::pair<int, int>> buf;  // (producer, seq)
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&buf, p] {
      for (int i = 0; i < kPerProducer; ++i) buf.push({p, i});
    });
  }
  for (auto& t : producers) t.join();
  std::vector<std::pair<int, int>> out;
  buf.drain_into(out);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::vector<int> next(kProducers, 0);
  for (const auto& [p, seq] : out) EXPECT_EQ(seq, next[p]++);
  buf.drain_into(out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace cosmos::runtime
