// Pairwise overlay latencies among a designated subset of "relevant" nodes
// (sources and processors). The query distribution algorithms never see the
// full router-level topology — only end-to-end latencies between the nodes
// that host application roles, matching the paper's loose-coupling goal
// (Section 3.1: "we do not have the knowledge of the overlay network
// topology of the Pub/Sub component").
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "net/topology.h"

namespace cosmos::net {

class LatencyMatrix {
 public:
  LatencyMatrix() = default;

  /// Runs Dijkstra from each member; O(|members| * E log V).
  LatencyMatrix(const Topology& topo, const std::vector<NodeId>& members);

  /// Rebuilds a matrix from its dense() serialization — members in order
  /// plus the row-major |members|^2 latency block. Used by federation nodes
  /// to reconstruct the driver's matrix bit-exactly (same doubles, same
  /// overlay tree). Throws std::invalid_argument on a size mismatch.
  LatencyMatrix(std::vector<NodeId> members, const std::vector<double>& dense);

  /// End-to-end latency (ms). Both nodes must be members.
  [[nodiscard]] double latency(NodeId a, NodeId b) const;

  [[nodiscard]] bool contains(NodeId n) const noexcept {
    return index_.contains(n);
  }
  [[nodiscard]] const std::vector<NodeId>& members() const noexcept {
    return members_;
  }

  /// The member minimizing total latency to all of `subset` (the paper's
  /// "median", Section 3.3). `subset` entries must be members.
  [[nodiscard]] NodeId median(const std::vector<NodeId>& subset) const;

  /// Row-major |members|^2 latency block, indexed like members(). The wire
  /// serialization of this matrix.
  [[nodiscard]] std::vector<double> dense() const;

 private:
  std::vector<NodeId> members_;
  std::unordered_map<NodeId, std::size_t> index_;
  std::vector<std::vector<double>> dist_;  // dist_[i][j] over member indices
};

}  // namespace cosmos::net
