#include "stream/schema.h"

#include <gtest/gtest.h>

namespace cosmos::stream {
namespace {

TEST(Schema, IndexOf) {
  Schema s{{{"a", ValueType::kInt}, {"b", ValueType::kDouble}}};
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.index_of("a"), 0u);
  EXPECT_EQ(s.index_of("b"), 1u);
  EXPECT_FALSE(s.index_of("c").has_value());
}

TEST(Schema, RejectsDuplicateFields) {
  EXPECT_THROW(Schema({{"a", ValueType::kInt}, {"a", ValueType::kInt}}),
               std::invalid_argument);
}

TEST(Schema, JoinPrefixesAliases) {
  Schema l{{{"x", ValueType::kInt}}};
  Schema r{{{"x", ValueType::kDouble}, {"y", ValueType::kInt}}};
  const Schema j = Schema::join(l, "L", r, "R");
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(j.index_of("L.x"), 0u);
  EXPECT_EQ(j.index_of("R.x"), 1u);
  EXPECT_EQ(j.index_of("R.y"), 2u);
}

TEST(Tuple, AtBoundsChecked) {
  Tuple t;
  t.values = {Value{1}};
  EXPECT_EQ(t.at(0).as_int(), 1);
  EXPECT_THROW(t.at(1), std::out_of_range);
}

}  // namespace
}  // namespace cosmos::stream
