// End-to-end middleware tests: submission, merging, p1/p2 subscription
// wiring, traffic accounting.
#include "cosmos/cosmos.h"

#include <gtest/gtest.h>

#include <memory>

#include "cql/parser.h"
#include "net/topology.h"
#include "sim/sensor_trace.h"

namespace cosmos::middleware {
namespace {

struct Fixture {
  net::Topology topo{5};
  std::vector<NodeId> all{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3},
                          NodeId{4}};
  net::LatencyMatrix lat;

  Fixture() {
    topo.add_edge(NodeId{0}, NodeId{1}, 10.0);
    topo.add_edge(NodeId{1}, NodeId{2}, 100.0);
    topo.add_edge(NodeId{2}, NodeId{3}, 5.0);
    topo.add_edge(NodeId{2}, NodeId{4}, 5.0);
    lat = net::LatencyMatrix{topo, all};
  }

  std::unique_ptr<Cosmos> make(bool share = true) {
    auto sys = std::make_unique<Cosmos>(all, lat, share);
    sys->register_source("Station1", sim::sensor_schema(), NodeId{0});
    sys->register_source("Station2", sim::sensor_schema(), NodeId{0});
    return sys;
  }

  void feed(Cosmos& sys, std::size_t readings, std::uint64_t seed) {
    sim::SensorTraceParams p;
    p.stations = 2;
    p.readings_per_station = readings;
    Rng rng{seed};
    for (const auto& r : sim::make_sensor_trace(p, rng)) {
      sys.push(sim::station_stream_name(r.station), r.tuple);
    }
  }

  static query::QuerySpec q3(NodeId proxy) {
    return cql::parse_query(
        "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 "
        "WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
        QueryId{3}, proxy);
  }
  static query::QuerySpec q4(NodeId proxy) {
    return cql::parse_query(
        "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp "
        "FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 "
        "WHERE S1.snowHeight > S2.snowHeight",
        QueryId{4}, proxy);
  }
};

TEST(Cosmos, SingleQueryDeliversResults) {
  Fixture f;
  auto sys = f.make();
  std::size_t results = 0;
  sys->submit(Fixture::q3(NodeId{3}), NodeId{1},
             [&](QueryId q, const stream::Tuple& t) {
               EXPECT_EQ(q, QueryId{3});
               EXPECT_EQ(t.values.size(), 4u);  // S2.* has 4 columns
               ++results;
             });
  f.feed(*sys, 100, 8);
  EXPECT_GT(results, 0u);
  EXPECT_GT(sys->traffic().bytes, 0.0);
}

TEST(Cosmos, MergesOverlappingQueriesOnSameHost) {
  Fixture f;
  auto sys = f.make();
  sys->submit(Fixture::q3(NodeId{3}), NodeId{1},
             [](QueryId, const stream::Tuple&) {});
  sys->submit(Fixture::q4(NodeId{4}), NodeId{1},
             [](QueryId, const stream::Tuple&) {});
  EXPECT_EQ(sys->submitted_queries(), 2u);
  EXPECT_EQ(sys->deployed_units(), 1u);  // folded into Q5
}

TEST(Cosmos, DoesNotMergeAcrossHosts) {
  Fixture f;
  auto sys = f.make();
  sys->submit(Fixture::q3(NodeId{3}), NodeId{1},
             [](QueryId, const stream::Tuple&) {});
  sys->submit(Fixture::q4(NodeId{4}), NodeId{2},
             [](QueryId, const stream::Tuple&) {});
  EXPECT_EQ(sys->deployed_units(), 2u);
}

TEST(Cosmos, MergedResultsMatchUnmergedResults) {
  Fixture f;
  std::size_t shared3 = 0, shared4 = 0, solo3 = 0, solo4 = 0;
  {
    auto sys = f.make(true);
    sys->submit(Fixture::q3(NodeId{3}), NodeId{1},
               [&](QueryId, const stream::Tuple&) { ++shared3; });
    sys->submit(Fixture::q4(NodeId{4}), NodeId{1},
               [&](QueryId, const stream::Tuple&) { ++shared4; });
    ASSERT_EQ(sys->deployed_units(), 1u);
    f.feed(*sys, 120, 8);
  }
  {
    auto sys = f.make(false);
    sys->submit(Fixture::q3(NodeId{3}), NodeId{1},
               [&](QueryId, const stream::Tuple&) { ++solo3; });
    sys->submit(Fixture::q4(NodeId{4}), NodeId{1},
               [&](QueryId, const stream::Tuple&) { ++solo4; });
    ASSERT_EQ(sys->deployed_units(), 2u);
    f.feed(*sys, 120, 8);
  }
  EXPECT_GT(solo3, 0u);
  EXPECT_EQ(shared3, solo3);
  EXPECT_EQ(shared4, solo4);
}

TEST(Cosmos, SharingReducesTraffic) {
  Fixture f;
  auto shared = f.make(true);
  auto solo = f.make(false);
  for (auto* sys : {shared.get(), solo.get()}) {
    sys->submit(Fixture::q3(NodeId{3}), NodeId{1},
                [](QueryId, const stream::Tuple&) {});
    sys->submit(Fixture::q4(NodeId{4}), NodeId{1},
                [](QueryId, const stream::Tuple&) {});
    f.feed(*sys, 120, 8);
  }
  EXPECT_LT(shared->traffic().bytes, solo->traffic().bytes);
}

TEST(Cosmos, RejectsDuplicateIds) {
  Fixture f;
  auto sys = f.make();
  sys->submit(Fixture::q3(NodeId{3}), NodeId{1},
             [](QueryId, const stream::Tuple&) {});
  EXPECT_THROW(sys->submit(Fixture::q3(NodeId{3}), NodeId{2},
                          [](QueryId, const stream::Tuple&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cosmos::middleware
