#include "stream/operators.h"

#include <functional>
#include <stdexcept>

#include "runtime/tuple_batch.h"

namespace cosmos::stream {
namespace {

/// Value a slot reads from a materialized tuple (side implied by caller);
/// `scratch` backs timestamp slots.
const Value& slot_value(const Tuple& t, const FieldSlot& s, Value& scratch) {
  if (s.col == FieldSlot::kTsCol) {
    scratch = Value{static_cast<std::int64_t>(t.ts)};
    return scratch;
  }
  return t.values.at(s.col);
}

}  // namespace

FilterOp::FilterOp(std::string alias, const Schema* schema,
                   PredicatePtr predicate, Sink sink,
                   std::size_t virtual_ts_col)
    : alias_(std::move(alias)),
      schema_(schema),
      predicate_(std::move(predicate)),
      sink_(std::move(sink)) {
  if (schema_ == nullptr || predicate_ == nullptr || !sink_) {
    throw std::invalid_argument{"FilterOp: null schema/predicate/sink"};
  }
  compiled_ = CompiledPredicate::compile(
      predicate_, {{alias_, schema_, virtual_ts_col}});
}

void FilterOp::push(const Tuple& t) {
  ++seen_;
  if (compiled_.eval(t)) {
    ++passed_;
    sink_(t);
  }
}

void FilterOp::push_batch(const runtime::TupleBatch& batch,
                          const std::vector<std::uint32_t>* sel,
                          std::vector<std::uint32_t>& out) {
  seen_ += sel != nullptr ? sel->size() : batch.size();
  const std::size_t before = out.size();
  compiled_.filter_batch(batch, sel, out);
  passed_ += out.size() - before;
}

ProjectOp::ProjectOp(std::vector<std::size_t> keep_indices, Sink sink,
                     std::size_t virtual_ts_col)
    : keep_(std::move(keep_indices)),
      sink_(std::move(sink)),
      virtual_ts_col_(virtual_ts_col) {
  if (!sink_) throw std::invalid_argument{"ProjectOp: null sink"};
}

void ProjectOp::push(const Tuple& t) {
  Tuple out;
  out.ts = t.ts;
  out.values.reserve(keep_.size());
  for (const std::size_t i : keep_) out.values.push_back(t.at(i));
  sink_(out);
}

void ProjectOp::push_batch(const runtime::TupleBatch& batch,
                           const std::vector<std::uint32_t>* sel,
                           runtime::TupleBatch& out) {
  const std::size_t width = batch.width();
  const Value* values = batch.values_data();
  const auto project_row = [&](std::uint32_t r) {
    if (r >= batch.size()) {
      throw std::out_of_range{"ProjectOp: selected row " + std::to_string(r) +
                              " out of range"};
    }
    const Timestamp ts = batch.ts_data()[r];
    // push_row move-iterates the elements out but leaves the vector (and
    // its capacity) behind, so the scratch row costs no per-row alloc.
    row_scratch_.clear();
    row_scratch_.reserve(keep_.size());
    const Value* row = values + std::size_t{r} * width;
    for (const std::size_t k : keep_) {
      if (k == virtual_ts_col_) {
        row_scratch_.emplace_back(static_cast<std::int64_t>(ts));
      } else if (k < width) {
        row_scratch_.push_back(row[k]);
      } else {
        throw std::out_of_range{"ProjectOp: column " + std::to_string(k) +
                                " out of range"};
      }
    }
    out.push_row(ts, std::move(row_scratch_));
  };
  if (sel == nullptr) {
    for (std::uint32_t r = 0; r < batch.size(); ++r) project_row(r);
  } else {
    for (const std::uint32_t r : *sel) project_row(r);
  }
}

WindowJoinOp::WindowJoinOp(Side left, Side right, PredicatePtr predicate,
                           Sink sink)
    : WindowJoinOp(std::move(left), std::move(right), std::move(predicate),
                   std::move(sink), Options{}) {}

WindowJoinOp::WindowJoinOp(Side left, Side right, PredicatePtr predicate,
                           Sink sink, Options options)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)),
      sink_(std::move(sink)),
      options_(options) {
  if (left_.schema == nullptr || right_.schema == nullptr ||
      predicate_ == nullptr || !sink_) {
    throw std::invalid_argument{"WindowJoinOp: null argument"};
  }
  // Compile-time plan: resolve every field, split out hash-joinable
  // equality conjuncts, and build one probe program per incoming direction
  // (the evaluation env is [incoming side, other side], so the binding
  // order flips with the direction).
  const std::vector<BindingSpec> lr{{left_.alias, left_.schema, SIZE_MAX},
                                    {right_.alias, right_.schema, SIZE_MAX}};
  const std::vector<BindingSpec> rl{{right_.alias, right_.schema, SIZE_MAX},
                                    {left_.alias, left_.schema, SIZE_MAX}};
  JoinSplit split = split_equi_conjuncts(predicate_, lr);
  full_left_in_ = CompiledPredicate::compile(predicate_, lr);
  full_right_in_ = CompiledPredicate::compile(predicate_, rl);
  residual_left_in_ = CompiledPredicate::compile(split.residual, lr);
  residual_right_in_ = CompiledPredicate::compile(split.residual, rl);
  keys_ = std::move(split.keys);
  hash_enabled_ = options_.use_hash_index && !keys_.empty();
}

void WindowJoinOp::push_left(const Tuple& t) {
  push_one(t, /*is_left=*/true, nullptr);
}

void WindowJoinOp::push_right(const Tuple& t) {
  push_one(t, /*is_left=*/false, nullptr);
}

void WindowJoinOp::push_batch_left(const runtime::TupleBatch& batch,
                                   const std::vector<std::uint32_t>* sel,
                                   bool lift_append_ts,
                                   runtime::TupleBatch& out) {
  push_batch_side(batch, sel, lift_append_ts, /*is_left=*/true, out);
}

void WindowJoinOp::push_batch_right(const runtime::TupleBatch& batch,
                                    const std::vector<std::uint32_t>* sel,
                                    bool lift_append_ts,
                                    runtime::TupleBatch& out) {
  push_batch_side(batch, sel, lift_append_ts, /*is_left=*/false, out);
}

void WindowJoinOp::push_batch_side(const runtime::TupleBatch& batch,
                                   const std::vector<std::uint32_t>* sel,
                                   bool lift_append_ts, bool is_left,
                                   runtime::TupleBatch& out) {
  const auto one = [&](std::uint32_t r) {
    Tuple t = batch.row(r);
    if (lift_append_ts) {
      t.values.emplace_back(static_cast<std::int64_t>(t.ts));
    }
    push_one(std::move(t), is_left, &out);
  };
  if (sel == nullptr) {
    for (std::uint32_t r = 0; r < batch.size(); ++r) one(r);
  } else {
    for (const std::uint32_t r : *sel) one(r);
  }
}

void WindowJoinOp::advance_watermark(Timestamp watermark) {
  if (watermark <= watermark_) return;
  watermark_ = watermark;
  prune_side(left_rt_, left_.window, /*is_left=*/true);
  prune_side(right_rt_, right_.window, /*is_left=*/false);
}

WindowJoinOp::State WindowJoinOp::export_state() const {
  State s;
  s.watermark = watermark_;
  s.left.assign(left_rt_.buf.begin(), left_rt_.buf.end());
  s.right.assign(right_rt_.buf.begin(), right_rt_.buf.end());
  return s;
}

void WindowJoinOp::import_state(State state) {
  watermark_ = state.watermark;
  const auto load = [this](std::vector<Tuple>&& tuples, SideRuntime& rt,
                           bool is_left) {
    rt.buf.clear();
    rt.index.clear();
    rt.first_seq = 0;
    rt.next_seq = 0;
    for (Tuple& t : tuples) {
      // Same insert path as push_one, sans probe: buckets end up holding
      // ascending seqs, which prune_side's pop-front relies on.
      if (hash_enabled_) {
        rt.index[key_hash(t, is_left)].push_back(rt.next_seq);
      }
      ++rt.next_seq;
      rt.buf.push_back(std::move(t));
    }
  };
  load(std::move(state.left), left_rt_, /*is_left=*/true);
  load(std::move(state.right), right_rt_, /*is_left=*/false);
}

void WindowJoinOp::prune_side(SideRuntime& s, const WindowSpec& window,
                              bool is_left) {
  while (!s.buf.empty() && !window.contains(s.buf.front().ts, watermark_)) {
    if (hash_enabled_) {
      // The evicted tuple is the globally oldest buffered one, so its seq
      // is the front of its bucket.
      const auto it = s.index.find(key_hash(s.buf.front(), is_left));
      it->second.pop_front();
      if (it->second.empty()) s.index.erase(it);
    }
    s.buf.pop_front();
    ++s.first_seq;
  }
}

std::size_t WindowJoinOp::key_hash(const Tuple& t, bool of_left) const {
  std::size_t h = 0x9e3779b97f4a7c15ull;
  Value scratch;
  for (const EquiKey& k : keys_) {
    const Value& v = slot_value(t, of_left ? k.left : k.right, scratch);
    // Cross-type numeric equality (int 3 == double 3.0) must hash equal:
    // numerics hash through their double view, strings through the bytes.
    const std::size_t hv =
        v.type() == ValueType::kString
            ? std::hash<std::string>{}(v.as_string())
            : std::hash<double>{}(v.as_double());
    h ^= hv + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

void WindowJoinOp::push_one(Tuple t, bool is_left,
                            runtime::TupleBatch* batch_out) {
  advance_watermark(t.ts);
  probe(t, is_left, batch_out);
  SideRuntime& own = is_left ? left_rt_ : right_rt_;
  if (hash_enabled_) {
    own.index[key_hash(t, is_left)].push_back(own.next_seq);
  }
  ++own.next_seq;
  own.buf.push_back(std::move(t));
}

void WindowJoinOp::probe(const Tuple& incoming, bool incoming_is_left,
                         runtime::TupleBatch* batch_out) {
  SideRuntime& other = incoming_is_left ? right_rt_ : left_rt_;
  const Side& other_side = incoming_is_left ? right_ : left_;
  if (other.buf.empty()) return;

  if (hash_enabled_) {
    const auto it = other.index.find(key_hash(incoming, incoming_is_left));
    if (it == other.index.end()) return;
    const CompiledPredicate& residual =
        incoming_is_left ? residual_left_in_ : residual_right_in_;
    Value sa;
    Value sb;
    for (const std::uint64_t seq : it->second) {
      const Tuple& cand =
          other.buf[static_cast<std::size_t>(seq - other.first_seq)];
      if (!other_side.window.contains(cand.ts, incoming.ts)) continue;
      // Re-check key equality: the bucket only guarantees equal hashes.
      bool keys_equal = true;
      for (const EquiKey& k : keys_) {
        const FieldSlot& own_slot = incoming_is_left ? k.left : k.right;
        const FieldSlot& other_slot = incoming_is_left ? k.right : k.left;
        if (!(slot_value(incoming, own_slot, sa) ==
              slot_value(cand, other_slot, sb))) {
          keys_equal = false;
          break;
        }
      }
      if (!keys_equal) continue;
      if (!residual.eval(incoming, cand)) continue;
      emit(incoming_is_left ? incoming : cand,
           incoming_is_left ? cand : incoming, batch_out);
    }
    return;
  }

  const CompiledPredicate& full =
      incoming_is_left ? full_left_in_ : full_right_in_;
  for (const Tuple& cand : other.buf) {
    if (!other_side.window.contains(cand.ts, incoming.ts)) continue;
    if (!full.eval(incoming, cand)) continue;
    emit(incoming_is_left ? incoming : cand,
         incoming_is_left ? cand : incoming, batch_out);
  }
}

void WindowJoinOp::emit(const Tuple& lt, const Tuple& rt,
                        runtime::TupleBatch* batch_out) {
  ++emitted_;
  const Timestamp ts = std::max(lt.ts, rt.ts);
  if (batch_out != nullptr) {
    // Scratch row reused across emits: push_row drains the elements but
    // the vector keeps its capacity.
    row_scratch_.clear();
    row_scratch_.reserve(lt.values.size() + rt.values.size());
    row_scratch_.insert(row_scratch_.end(), lt.values.begin(),
                        lt.values.end());
    row_scratch_.insert(row_scratch_.end(), rt.values.begin(),
                        rt.values.end());
    batch_out->push_row(ts, std::move(row_scratch_));
    return;
  }
  Tuple out;
  out.ts = ts;
  out.values.reserve(lt.values.size() + rt.values.size());
  out.values.insert(out.values.end(), lt.values.begin(), lt.values.end());
  out.values.insert(out.values.end(), rt.values.begin(), rt.values.end());
  sink_(out);
}

}  // namespace cosmos::stream
