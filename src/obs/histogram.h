// Log-bucketed latency histogram: the fixed-memory, constant-time
// percentile primitive of the observability layer (src/obs/).
//
// Bucketing: values below 8 get one exact bucket each; above that, each
// power-of-two octave is split into 8 sub-buckets by the three bits below
// the most significant bit. Worst-case relative error of a reported
// percentile is therefore 1/16 of the bucket width — bounded by ~6% of the
// value — at 496 buckets total, independent of the value range (full u64).
// Recording is one relaxed atomic increment, cheap enough for per-tuple
// hot paths; percentile extraction walks the bucket array (reporting-time
// only).
//
// Histogram is the concurrent recorder (atomic buckets, stable address in
// a MetricsRegistry); HistogramSnapshot is the plain value type reports
// and wire frames carry, with merge() for fleet-wide aggregation.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cosmos::obs {

/// Sub-buckets per power-of-two octave (3 bits of mantissa).
inline constexpr std::uint64_t kSubBuckets = 8;
/// Bucket count covering the full u64 range: 8 exact small-value buckets
/// plus 8 per octave for msb in [3, 63].
inline constexpr std::size_t kBucketCount = ((63 - 2) << 3) + 8;

/// Bucket index of `v` (monotone in v).
[[nodiscard]] constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  // Position of the most significant set bit (>= 3 here).
  const int msb = 63 - std::countl_zero(v);
  const std::uint64_t sub = (v >> (msb - 3)) & 7;
  return static_cast<std::size_t>(((msb - 2) << 3) + sub);
}

/// Smallest value that lands in bucket `i` (inverse of bucket_index).
[[nodiscard]] constexpr std::uint64_t bucket_lower(std::size_t i) noexcept {
  if (i < kSubBuckets) return i;
  const int msb = static_cast<int>(i >> 3) + 2;
  const std::uint64_t sub = i & 7;
  return (std::uint64_t{1} << msb) | (sub << (msb - 3));
}

/// Representative value reported for bucket `i`: its midpoint, so the
/// quantization error is at most half a bucket width in either direction.
[[nodiscard]] constexpr std::uint64_t bucket_mid(std::size_t i) noexcept {
  const std::uint64_t lo = bucket_lower(i);
  const std::uint64_t hi =
      i + 1 < kBucketCount ? bucket_lower(i + 1) : lo + (lo >> 3);
  return lo + (hi - lo) / 2;
}

/// Plain (single-threaded) histogram value: sparse non-empty buckets in
/// index order. The shape RunReport, bench JSON and the kStatsSample frame
/// carry; also usable directly as a recorder off the hot path.
struct HistogramSnapshot {
  /// (bucket index, count) pairs, ascending by index, counts > 0.
  std::vector<std::pair<std::uint16_t, std::uint64_t>> buckets;
  std::uint64_t count = 0;  ///< total recorded values
  std::uint64_t sum = 0;    ///< sum of recorded values (for mean())

  void record(std::uint64_t v);
  void merge(const HistogramSnapshot& other);

  [[nodiscard]] bool empty() const noexcept { return count == 0; }
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Value at percentile `p` in [0, 100] (the bucket midpoint whose
  /// cumulative count first reaches p% of the total); 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;
};

/// Concurrent recorder: relaxed atomic increments, safe from any thread.
/// Lives at a stable address inside a MetricsRegistry so hot paths hold a
/// direct pointer and never look names up.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Point-in-time copy; exact when no recorder is concurrently active,
  /// a consistent-enough sample otherwise (counts never decrease).
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace cosmos::obs
