#include "sim/baselines.h"

#include <chrono>

namespace cosmos::sim {

Placement naive_placement(std::span<const query::InterestProfile> profiles) {
  Placement out;
  out.reserve(profiles.size());
  for (const auto& p : profiles) out.emplace(p.query, p.proxy);
  return out;
}

Placement random_placement(std::span<const query::InterestProfile> profiles,
                           const net::Deployment& deployment, Rng& rng) {
  Placement out;
  out.reserve(profiles.size());
  for (const auto& p : profiles) {
    out.emplace(p.query, deployment.processors[rng.next_below(
                             deployment.processors.size())]);
  }
  return out;
}

CentralizedResult centralized_placement(
    std::span<const query::InterestProfile> profiles,
    const net::Deployment& deployment, const query::SubstreamSpace& space,
    const graph::MappingParams& mapping,
    const graph::QueryGraphBuildParams& build, bool refine, Rng& rng) {
  const auto start = std::chrono::steady_clock::now();

  graph::EdgeModel model{space};
  std::vector<graph::QueryVertex> items;
  items.reserve(profiles.size());
  for (const auto& p : profiles) items.push_back(graph::to_query_vertex(p));
  graph::QueryGraph qg =
      graph::build_query_graph(items, model, build, nullptr, rng);

  // Global network graph: all processors assignable, all sources anchors.
  graph::NetworkGraph ng;
  for (const NodeId p : deployment.processors) {
    ng.add_vertex({"proc", deployment.capability[p.value()], true, p});
  }
  for (const NodeId s : deployment.sources) {
    ng.add_vertex({"src", 0.0, false, s});
  }
  ng.finalize_vertices();
  for (graph::NetworkGraph::VertexIndex a = 0; a < ng.size(); ++a) {
    for (graph::NetworkGraph::VertexIndex b = a + 1; b < ng.size(); ++b) {
      ng.set_distance(
          a, b, deployment.latencies.latency(ng.vertex(a).node,
                                             ng.vertex(b).node));
    }
  }
  // Anchor n-vertices of the query graph to their network-graph twins: in
  // the centralized view every node is present, so clu can index directly.
  for (graph::QueryGraph::VertexIndex i = 0; i < qg.size(); ++i) {
    auto& v = qg.vertex(i);
    if (!v.is_n()) continue;
    const auto k = ng.find_by_node(v.node);
    v.clu = k != graph::NetworkGraph::kNone && ng.vertex(k).assignable
                ? static_cast<int>(k)
                : -1;
  }

  graph::MappingParams params = mapping;
  params.refine = refine;
  const auto result = graph::map_query_graph(qg, ng, params, rng);

  CentralizedResult out;
  out.wec = result.wec;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    out.placement.emplace(profiles[i].query,
                          ng.vertex(result.assignment[i]).node);
  }
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

}  // namespace cosmos::sim
