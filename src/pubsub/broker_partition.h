// One stream's slice of the broker network: the subscription index, the
// per-tuple matching, the overlay routing + traffic accounting for exactly
// one advertised stream.
//
// Partitions are the unit of parallelism for subscription matching: every
// stream's routing state (its advert, the subscriptions interested in it,
// and its traffic counters) is independent of every other stream's, so a
// partition can be driven by whatever thread currently owns it — in
// Cosmos::run() that is the runtime shard owning the stream's publishing
// engine — with no locks at all. The ownership protocol is the runtime's
// drain discipline: at most one thread calls into a partition at a time,
// and ownership hand-offs (engine migration, driver-side result delivery)
// happen only across a shard drain, which establishes the happens-before
// edge. (The per-batch scratch buffers below rely on the same discipline.)
//
// Matching is sublinear in subscription count: subscriptions live in
// stable slots whose compiled filters are decomposed into a
// SubscriptionIndex (subscription_index.h) — per-column constant hash
// probes and sorted-interval stabs produce per-row candidate sets, and
// only candidates run their compiled residual. Constructing the partition
// with use_index = false forces the linear scan over every slot instead;
// the two paths produce byte-identical deliveries and traffic on
// schema-conforming rows (the differential oracle the pubsub churn test
// and bench_match_scale drive).
//
// The BrokerNetwork facade builds partitions, routes subscribe/unsubscribe
// updates into them, and merges their traffic stats back into one view.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/latency_matrix.h"
#include "pubsub/subscription.h"
#include "pubsub/subscription_index.h"
#include "runtime/tuple_batch.h"
#include "stream/compiled_predicate.h"

namespace cosmos::pubsub {

/// Traffic of one directed overlay link (accounted on the from->to hop).
struct LinkTraffic {
  double bytes = 0.0;
  double weighted_cost = 0.0;  ///< bytes * link latency (byte*ms)
  std::size_t messages_sent = 0;

  friend bool operator==(const LinkTraffic&, const LinkTraffic&) = default;
};

struct TrafficStats {
  double bytes = 0.0;
  double weighted_cost = 0.0;  ///< sum of bytes * link latency (byte*ms)
  std::size_t messages_sent = 0;
  /// Per directed overlay link (from, to) breakdown of the totals — what
  /// link-level tests assert and hot-link analysis reads.
  std::map<std::pair<NodeId, NodeId>, LinkTraffic> links;

  /// Accumulates `other` into this (the facade's partition merge).
  void merge(const TrafficStats& other);

  friend bool operator==(const TrafficStats&, const TrafficStats&) = default;
};

/// Batched delivery: the rows of a published batch one subscription
/// matched, as ascending indices into the source batch (select() them to
/// materialize the subscriber's view).
struct BatchDelivery {
  const Subscription* sub = nullptr;
  const runtime::TupleBatch* source = nullptr;
  std::vector<std::uint32_t> rows;
};

/// Immutable overlay shared by every partition: the latency-minimal
/// spanning tree over the participants and its routing tables. Built once
/// by the BrokerNetwork constructor; read-only afterwards, so concurrent
/// partitions never contend on it.
struct Overlay {
  std::vector<NodeId> participants;
  std::unordered_map<NodeId, std::size_t> index;
  const net::LatencyMatrix* lat = nullptr;
  std::vector<std::vector<std::size_t>> adj;       ///< tree adjacency
  std::vector<std::vector<std::size_t>> next_hop;  ///< routing table

  /// Index of `n`; throws std::invalid_argument for non-participants.
  [[nodiscard]] std::size_t index_of(NodeId n) const;
};

class BrokerPartition {
 public:
  using DeliveryCallback =
      std::function<void(const Subscription&, const Message&)>;

  /// `use_index` = false keeps every subscription on the linear scan path
  /// — the differential oracle configuration.
  BrokerPartition(const Overlay& overlay, std::string stream, NodeId publisher,
                  stream::Schema schema, bool use_index = true);

  // index_ resolves filters against &schema_: the partition must stay at
  // one address for its whole life (BrokerNetwork holds it by unique_ptr).
  BrokerPartition(const BrokerPartition&) = delete;
  BrokerPartition& operator=(const BrokerPartition&) = delete;

  [[nodiscard]] const std::string& stream() const noexcept { return stream_; }
  [[nodiscard]] NodeId publisher() const noexcept { return publisher_; }
  [[nodiscard]] const stream::Schema& schema() const noexcept {
    return schema_;
  }

  /// Facade bookkeeping: (de)registers a subscription interested in this
  /// stream. `sub` must stay valid while registered. The subscription's
  /// filter is compiled against the partition schema here — once per
  /// subscribe — so matching never resolves a field by string again; a
  /// filter referencing attributes this stream lacks compiles leniently
  /// and matches nothing, exactly like the interpreted fallback. The
  /// filter is also decomposed into the attribute-predicate index (unless
  /// use_index is off); slots of removed subscriptions are reused, and
  /// index maintenance is incremental in both directions.
  void add_subscription(const Subscription* sub);
  void remove_subscription(SubscriptionId id);
  [[nodiscard]] std::size_t subscription_count() const noexcept {
    return live_count_;
  }
  /// Index placement diagnostics (tests and bench_match_scale).
  [[nodiscard]] const SubscriptionIndex& index() const noexcept {
    return index_;
  }

  /// Scalar path: matches one tuple against the index, routes one copy per
  /// overlay link toward the matched subscribers (attributes pruned to the
  /// union of their projections), accounts the traffic, and delivers via
  /// `callback` at each subscriber's home broker.
  void match(const stream::Tuple& tuple, const DeliveryCallback& callback);

  /// Batched path: per-row matching and link accounting identical to
  /// size() scalar match() calls, but one BatchDelivery per matching
  /// subscription carrying all of its rows at once (appended to
  /// `deliveries` in first-match order). Rows must be timestamp-ordered;
  /// violations throw std::invalid_argument naming the stream and both
  /// timestamps before any row is matched or accounted.
  void match_batch(const runtime::TupleBatch& batch,
                   std::vector<BatchDelivery>& deliveries);

  [[nodiscard]] const TrafficStats& traffic() const noexcept {
    return traffic_;
  }
  void reset_traffic() noexcept { traffic_ = {}; }

 private:
  struct MatchedSub {
    const Subscription* sub = nullptr;  ///< nullptr = free slot
    std::size_t home = 0;
    /// Filter compiled against the partition schema (single "" binding).
    stream::CompiledPredicate filter;
  };

  [[nodiscard]] static bool filter_matches(
      const MatchedSub& entry, const stream::CompiledPredicate::Row& row);
  /// Stage 1 of match_batch: fills rows_of_[slot] for every live slot with
  /// the ascending row ids its filter matched, and active_ with the slots
  /// that matched anything (ascending).
  void match_rows(const runtime::TupleBatch& batch);
  void route(const Message& message, std::size_t at, std::size_t came_from,
             const std::vector<const MatchedSub*>& matched,
             const DeliveryCallback& callback);

  const Overlay* overlay_;
  std::string stream_;
  NodeId publisher_;
  std::size_t publisher_idx_;
  stream::Schema schema_;
  bool use_index_;
  /// Subscription slot table: stable slot ids (freed slots are reused, not
  /// erased) so the index can reference subscriptions by position.
  std::vector<MatchedSub> subs_;
  std::vector<SubscriptionIndex::Slot> free_slots_;
  /// id -> live slot(s); multimap because direct partition driving does
  /// not enforce the facade's id uniqueness.
  std::unordered_multimap<SubscriptionId, SubscriptionIndex::Slot> slot_of_;
  std::size_t live_count_ = 0;
  SubscriptionIndex index_;
  TrafficStats traffic_;

  // Per-call scratch (a partition is driven by one thread at a time; see
  // the ownership note above). Buffers are reused across rows and batches
  // instead of reallocated per row.
  std::vector<std::vector<std::uint32_t>> cand_rows_;   ///< per slot
  std::vector<std::vector<std::uint32_t>> rows_of_;     ///< per slot
  std::vector<std::vector<SubscriptionIndex::Slot>> row_subs_;  ///< per row
  std::vector<SubscriptionIndex::Slot> touched_;
  std::vector<SubscriptionIndex::Slot> active_;
  std::vector<SubscriptionIndex::Slot> matched_slots_;
  std::vector<const MatchedSub*> matched_;
  std::set<std::string> route_attrs_;  ///< projection-union scratch
};

}  // namespace cosmos::pubsub
