#include "cql/lexer.h"

#include <gtest/gtest.h>

namespace cosmos::cql {
namespace {

TEST(Lexer, KeywordsCaseInsensitive) {
  const auto toks = tokenize("select FROM Where and");
  ASSERT_EQ(toks.size(), 5u);  // incl. end
  EXPECT_TRUE(toks[0].is_keyword("SELECT"));
  EXPECT_TRUE(toks[1].is_keyword("FROM"));
  EXPECT_TRUE(toks[2].is_keyword("WHERE"));
  EXPECT_TRUE(toks[3].is_keyword("AND"));
  EXPECT_EQ(toks[4].kind, TokenKind::kEnd);
}

TEST(Lexer, IdentifiersKeepCase) {
  const auto toks = tokenize("snowHeight Station1");
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "snowHeight");
  EXPECT_EQ(toks[1].text, "Station1");
}

TEST(Lexer, Numbers) {
  const auto toks = tokenize("10 3.5");
  EXPECT_EQ(toks[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(toks[0].number, 10.0);
  EXPECT_DOUBLE_EQ(toks[1].number, 3.5);
}

TEST(Lexer, NegativeNumberAfterOperator) {
  const auto toks = tokenize("a > -5");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[2].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(toks[2].number, -5.0);
}

TEST(Lexer, Strings) {
  const auto toks = tokenize("'hello world'");
  EXPECT_EQ(toks[0].kind, TokenKind::kString);
  EXPECT_EQ(toks[0].text, "hello world");
  EXPECT_THROW(tokenize("'unterminated"), ParseError);
}

TEST(Lexer, OperatorsAndSymbols) {
  const auto toks = tokenize("<= >= != <> < > = ( ) [ ] , . *");
  EXPECT_TRUE(toks[0].is_symbol("<="));
  EXPECT_TRUE(toks[1].is_symbol(">="));
  EXPECT_TRUE(toks[2].is_symbol("!="));
  EXPECT_TRUE(toks[3].is_symbol("!="));  // <> normalized
  EXPECT_TRUE(toks[4].is_symbol("<"));
  EXPECT_TRUE(toks[13].is_symbol("*"));
}

TEST(Lexer, RejectsGarbage) {
  EXPECT_THROW(tokenize("a % b"), ParseError);
}

TEST(Lexer, OffsetsTrackPosition) {
  const auto toks = tokenize("ab  cd");
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[1].offset, 4u);
}

}  // namespace
}  // namespace cosmos::cql
