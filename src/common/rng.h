// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the repository flows through Rng so that every
// experiment is reproducible from a single 64-bit seed. The engine is
// xoshiro256**, seeded via SplitMix64 (the recommended seeding procedure).
#pragma once

#include <cstdint>
#include <vector>

namespace cosmos {

/// SplitMix64 step; used for seeding and as a cheap hash of a seed.
[[nodiscard]] std::uint64_t split_mix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator with convenience distributions.
///
/// Not a std::uniform_random_bit_generator on purpose: standard-library
/// distributions are implementation-defined, which would break determinism
/// across toolchains. All distributions here are hand-rolled and portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] std::int64_t next_range(std::int64_t lo,
                                        std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double next_double(double lo, double hi) noexcept;

  /// Bernoulli trial.
  [[nodiscard]] bool next_bool(double p_true) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel subtasks).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace cosmos
