// Forced mid-trace migration on the raw runtime: an engine is re-pinned
// between dispatches while batches are in flight, and its tap must still
// observe every tuple exactly once, in order. Runs under TSan in CI (the
// adapt label) — the drain + re-pin handoff is the racy part being proved.
#include <gtest/gtest.h>

#include <vector>

#include "adapt/migrator.h"
#include "runtime/runtime.h"
#include "runtime/tuple_batch.h"
#include "stream/engine.h"

namespace cosmos::adapt {
namespace {

runtime::TupleBatch batch(stream::Timestamp first_ts, std::size_t n) {
  runtime::TupleBatch b{"S"};
  for (std::size_t i = 0; i < n; ++i) {
    b.push_back(stream::Tuple{
        first_ts + static_cast<stream::Timestamp>(i),
        {stream::Value{static_cast<double>(first_ts) +
                       static_cast<double>(i)}}});
  }
  return b;
}

TEST(Migrator, DrainAndRePinLosesAndReordersNothing) {
  stream::Engine engine;
  engine.register_stream("S", stream::Schema{{{"v",
                                               stream::ValueType::kDouble}}});
  std::vector<stream::Timestamp> seen;
  engine.attach("S", [&seen](const stream::Tuple& t) { seen.push_back(t.ts); });

  runtime::Runtime rt{{2, 4}};
  rt.start();
  std::unordered_map<std::uint64_t, std::size_t> shard_of{{7, 0}};

  constexpr std::size_t kBatches = 40;
  constexpr std::size_t kRows = 25;
  std::size_t dispatched = 0;
  const auto dispatch_next = [&] {
    runtime::Runtime::Task task;
    task.engine = &engine;
    task.engine_id = 7;
    task.runs.push_back(
        batch(static_cast<stream::Timestamp>(dispatched * kRows), kRows));
    rt.dispatch(shard_of.at(7), std::move(task));
    ++dispatched;
  };

  for (std::size_t i = 0; i < kBatches / 2; ++i) dispatch_next();

  double probed = 0.0;
  AdaptationReport report;
  Migrator migrator{rt, shard_of, [&probed](std::uint64_t engine_id) {
                      EXPECT_EQ(engine_id, 7u);
                      probed += 1.0;
                      return 64.0;
                    }};
  migrator.apply({{7, 0, 1, 0.5, 64.0}}, report);
  EXPECT_EQ(shard_of.at(7), 1u);
  EXPECT_EQ(report.moves, 1u);
  EXPECT_DOUBLE_EQ(report.state_bytes_migrated, 64.0);
  EXPECT_DOUBLE_EQ(probed, 1.0);
  EXPECT_GE(report.migration_stall_seconds, 0.0);

  for (std::size_t i = kBatches / 2; i < kBatches; ++i) dispatch_next();
  rt.drain();
  rt.stop();
  ASSERT_FALSE(rt.first_error().has_value()) << *rt.first_error();

  // Exactly once, in order: the engine's input sequence survived the
  // migration verbatim.
  ASSERT_EQ(seen.size(), kBatches * kRows);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<stream::Timestamp>(i));
  }

  // Both shards executed part of the engine's history, and the merged
  // per-engine row accounts for all of it.
  const auto stats = rt.stats();
  EXPECT_GT(stats.shards[0].tuples, 0u);
  EXPECT_GT(stats.shards[1].tuples, 0u);
  const auto* row = stats.engine(7);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->tuples, kBatches * kRows);
  EXPECT_EQ(row->batches, kBatches);
}

TEST(Migrator, MoveToCurrentShardIsANoOp) {
  stream::Engine engine;
  engine.register_stream("S", stream::Schema{{{"v",
                                               stream::ValueType::kDouble}}});
  runtime::Runtime rt{{2, 4}};
  rt.start();
  std::unordered_map<std::uint64_t, std::size_t> shard_of{{1, 0}};
  AdaptationReport report;
  bool probed = false;
  Migrator migrator{rt, shard_of, [&probed](std::uint64_t) {
                      probed = true;
                      return 1.0;
                    }};
  migrator.apply({{1, 0, 0, 0.0, 0.0}}, report);  // to == current shard
  migrator.apply({{99, 0, 1, 0.0, 0.0}}, report);  // unknown engine
  EXPECT_EQ(report.moves, 0u);
  EXPECT_FALSE(probed);
  EXPECT_EQ(shard_of.at(1), 0u);
  rt.stop();
}

TEST(Migrator, SharedSourceShardDrainsOnce) {
  stream::Engine a;
  stream::Engine b;
  a.register_stream("S", stream::Schema{{{"v", stream::ValueType::kDouble}}});
  b.register_stream("S", stream::Schema{{{"v", stream::ValueType::kDouble}}});
  runtime::Runtime rt{{3, 4}};
  rt.start();
  std::unordered_map<std::uint64_t, std::size_t> shard_of{{1, 0}, {2, 0}};
  for (int i = 0; i < 4; ++i) {
    runtime::Runtime::Task ta;
    ta.engine = &a;
    ta.engine_id = 1;
    ta.runs.push_back(batch(i * 10, 10));
    rt.dispatch(0, std::move(ta));
    runtime::Runtime::Task tb;
    tb.engine = &b;
    tb.engine_id = 2;
    tb.runs.push_back(batch(i * 10, 10));
    rt.dispatch(0, std::move(tb));
  }
  AdaptationReport report;
  Migrator migrator{rt, shard_of, {}};
  migrator.apply({{1, 0, 1, 0.0, 0.0}, {2, 0, 2, 0.0, 0.0}}, report);
  EXPECT_EQ(report.moves, 2u);
  EXPECT_EQ(shard_of.at(1), 1u);
  EXPECT_EQ(shard_of.at(2), 2u);
  EXPECT_DOUBLE_EQ(report.state_bytes_migrated, 0.0);  // null probe
  rt.drain();
  rt.stop();
  EXPECT_FALSE(rt.first_error().has_value());
}

}  // namespace
}  // namespace cosmos::adapt
