#include "runtime/tuple_batch.h"

#include <gtest/gtest.h>

namespace cosmos::runtime {
namespace {

using stream::Tuple;
using stream::Value;

TupleBatch make_batch(std::size_t rows) {
  TupleBatch b{"S"};
  for (std::size_t i = 0; i < rows; ++i) {
    b.push_back(Tuple{static_cast<stream::Timestamp>(10 * i),
                      {Value{static_cast<std::int64_t>(i)},
                       Value{0.5 * static_cast<double>(i)}}});
  }
  return b;
}

TEST(TupleBatch, AppendAndAccess) {
  const auto b = make_batch(3);
  EXPECT_EQ(b.stream(), "S");
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.width(), 2u);
  EXPECT_EQ(b.ts(1), 10);
  EXPECT_EQ(b.at(2, 0), Value{2});
  EXPECT_EQ(b.first_ts(), 0);
  EXPECT_EQ(b.last_ts(), 20);
  EXPECT_THROW(b.at(3, 0), std::out_of_range);
  EXPECT_THROW(b.at(0, 2), std::out_of_range);
}

TEST(TupleBatch, RowMaterializationRoundTrips) {
  const auto b = make_batch(4);
  Tuple scratch;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const Tuple t = b.row(i);
    b.materialize(i, scratch);
    EXPECT_EQ(t.ts, scratch.ts);
    EXPECT_EQ(t.values, scratch.values);
    EXPECT_EQ(t.values.size(), 2u);
  }
}

TEST(TupleBatch, WidthMismatchThrows) {
  TupleBatch b{"S"};
  b.push_back(Tuple{0, {Value{1}}});
  EXPECT_THROW(b.push_back(Tuple{1, {Value{1}, Value{2}}}),
               std::invalid_argument);
}

TEST(TupleBatch, SplitMergeRoundTrip) {
  const auto original = make_batch(10);
  for (const std::size_t chunk_rows : {1, 3, 4, 10, 99}) {
    const auto chunks = original.split(chunk_rows);
    std::size_t total = 0;
    for (const auto& c : chunks) {
      EXPECT_LE(c.size(), chunk_rows);
      total += c.size();
    }
    EXPECT_EQ(total, original.size());
    TupleBatch merged;
    for (const auto& c : chunks) merged.append(c);
    EXPECT_EQ(merged, original);
  }
}

TEST(TupleBatch, SplitOfEmptyIsEmpty) {
  const TupleBatch b{"S"};
  EXPECT_TRUE(b.split(4).empty());
  EXPECT_THROW(make_batch(2).split(0), std::invalid_argument);
}

TEST(TupleBatch, AppendRejectsMismatch) {
  auto a = make_batch(2);
  TupleBatch other{"T"};
  other.push_back(Tuple{5, {Value{1}, Value{2}}});
  EXPECT_THROW(a.append(other), std::invalid_argument);
  TupleBatch narrow{"S"};
  narrow.push_back(Tuple{5, {Value{1}}});
  EXPECT_THROW(a.append(narrow), std::invalid_argument);
}

TEST(TupleBatch, SelectPreservesRowOrder) {
  const auto b = make_batch(5);
  const auto picked = b.select({1, 3, 4});
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked.ts(0), 10);
  EXPECT_EQ(picked.ts(2), 40);
  EXPECT_EQ(picked.at(1, 0), Value{3});
  EXPECT_TRUE(picked.timestamps_ordered());
  EXPECT_THROW(b.select({7}), std::out_of_range);
}

TEST(TupleBatch, TimestampOrderDetection) {
  TupleBatch b{"S"};
  b.push_back(Tuple{5, {Value{1}}});
  b.push_back(Tuple{5, {Value{2}}});
  b.push_back(Tuple{9, {Value{3}}});
  EXPECT_TRUE(b.timestamps_ordered());
  b.push_back(Tuple{7, {Value{4}}});
  EXPECT_FALSE(b.timestamps_ordered());
}

}  // namespace
}  // namespace cosmos::runtime
