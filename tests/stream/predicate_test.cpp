#include "stream/predicate.h"

#include <gtest/gtest.h>

namespace cosmos::stream {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  Schema schema_{{{"a", ValueType::kInt}, {"b", ValueType::kDouble}}};
  Tuple tuple_{100, {Value{10}, Value{2.5}}};
  std::vector<Binding> env_{{"S", &schema_, &tuple_}};
};

TEST_F(PredicateTest, CompareConst) {
  EXPECT_TRUE(Predicate::cmp({"S", "a"}, CmpOp::kGt, Value{5})->eval(env_));
  EXPECT_FALSE(Predicate::cmp({"S", "a"}, CmpOp::kGt, Value{10})->eval(env_));
  EXPECT_TRUE(Predicate::cmp({"S", "a"}, CmpOp::kGe, Value{10})->eval(env_));
  EXPECT_TRUE(Predicate::cmp({"S", "b"}, CmpOp::kLt, Value{3.0})->eval(env_));
  EXPECT_TRUE(Predicate::cmp({"S", "a"}, CmpOp::kEq, Value{10})->eval(env_));
  EXPECT_TRUE(Predicate::cmp({"S", "a"}, CmpOp::kNe, Value{11})->eval(env_));
}

TEST_F(PredicateTest, EmptyAliasMatchesAnyBinding) {
  EXPECT_TRUE(Predicate::cmp({"", "a"}, CmpOp::kEq, Value{10})->eval(env_));
}

TEST_F(PredicateTest, TimestampPseudoField) {
  EXPECT_TRUE(
      Predicate::cmp({"S", "timestamp"}, CmpOp::kEq, Value{100})->eval(env_));
}

TEST_F(PredicateTest, UnknownFieldThrows) {
  EXPECT_THROW(Predicate::cmp({"S", "zz"}, CmpOp::kEq, Value{1})->eval(env_),
               std::invalid_argument);
  EXPECT_THROW(Predicate::cmp({"T", "a"}, CmpOp::kEq, Value{1})->eval(env_),
               std::invalid_argument);
}

TEST_F(PredicateTest, CompareFieldAcrossBindings) {
  Schema s2{{{"c", ValueType::kInt}}};
  Tuple t2{100, {Value{9}}};
  std::vector<Binding> env{{"S", &schema_, &tuple_}, {"T", &s2, &t2}};
  EXPECT_TRUE(
      Predicate::cmp({"S", "a"}, CmpOp::kGt, FieldRef{"T", "c"})->eval(env));
  EXPECT_FALSE(
      Predicate::cmp({"S", "a"}, CmpOp::kLt, FieldRef{"T", "c"})->eval(env));
}

TEST_F(PredicateTest, Junctions) {
  auto t = Predicate::cmp({"S", "a"}, CmpOp::kGt, Value{5});
  auto f = Predicate::cmp({"S", "a"}, CmpOp::kGt, Value{50});
  EXPECT_FALSE(Predicate::conj({t, f})->eval(env_));
  EXPECT_TRUE(Predicate::disj({t, f})->eval(env_));
  EXPECT_TRUE(Predicate::negate(f)->eval(env_));
  EXPECT_TRUE(Predicate::always_true()->eval(env_));
}

TEST_F(PredicateTest, EmptyConjIsTrue) {
  EXPECT_EQ(Predicate::conj({})->kind(), Predicate::Kind::kTrue);
  EXPECT_EQ(Predicate::disj({})->kind(), Predicate::Kind::kTrue);
}

TEST_F(PredicateTest, SingleChildCollapses) {
  auto t = Predicate::cmp({"S", "a"}, CmpOp::kGt, Value{5});
  EXPECT_EQ(Predicate::conj({t}).get(), t.get());
}

TEST_F(PredicateTest, TimeBand) {
  Schema s2{{{"c", ValueType::kInt}}};
  Tuple older{40, {Value{0}}};
  std::vector<Binding> env{{"S", &schema_, &tuple_}, {"T", &s2, &older}};
  // S.ts=100, T.ts=40 -> delta 60
  EXPECT_TRUE(Predicate::time_band({"S", "timestamp"}, {"T", "timestamp"}, 60)
                  ->eval(env));
  EXPECT_FALSE(Predicate::time_band({"S", "timestamp"}, {"T", "timestamp"}, 59)
                   ->eval(env));
  // Negative delta fails.
  EXPECT_FALSE(Predicate::time_band({"T", "timestamp"}, {"S", "timestamp"}, 500)
                   ->eval(env));
}

TEST_F(PredicateTest, CollectConjuncts) {
  auto c1 = Predicate::cmp({"S", "a"}, CmpOp::kGt, Value{1});
  auto c2 = Predicate::cmp({"S", "b"}, CmpOp::kLt, Value{9});
  std::vector<PredicatePtr> out;
  EXPECT_TRUE(collect_conjuncts(Predicate::conj({c1, c2}), out));
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  EXPECT_FALSE(collect_conjuncts(Predicate::disj({c1, c2}), out));
  out.clear();
  EXPECT_TRUE(collect_conjuncts(Predicate::always_true(), out));
  EXPECT_TRUE(out.empty());
}

TEST_F(PredicateTest, ApplyCmpAndFlip) {
  EXPECT_TRUE(apply_cmp(CmpOp::kLe, 0));
  EXPECT_TRUE(apply_cmp(CmpOp::kLe, -1));
  EXPECT_FALSE(apply_cmp(CmpOp::kLe, 1));
  EXPECT_EQ(flip(CmpOp::kLt), CmpOp::kGt);
  EXPECT_EQ(flip(CmpOp::kGe), CmpOp::kLe);
  EXPECT_EQ(flip(CmpOp::kEq), CmpOp::kEq);
}

TEST_F(PredicateTest, ToStringRoundTrip) {
  auto p = Predicate::conj({Predicate::cmp({"S", "a"}, CmpOp::kGt, Value{5}),
                            Predicate::cmp({"S", "b"}, CmpOp::kLe, Value{2.5})});
  EXPECT_EQ(p->to_string(), "(S.a > 5 AND S.b <= 2.500000)");
}

}  // namespace
}  // namespace cosmos::stream
