#include "node/serve.h"

#include <exception>
#include <utility>
#include <vector>

#include "node/site.h"
#include "wire/channel.h"
#include "wire/messages.h"

namespace cosmos::node {

bool serve_connection(wire::Socket socket) {
  wire::FrameChannel channel{std::move(socket)};
  try {
    // The session opens with kHello: it carries the shard count the Site's
    // runtime should use and the emulated one-way delay this side applies
    // to its own outgoing frames.
    auto first = channel.recv();
    if (!first) return true;  // connected, then closed: nothing to serve
    const auto hello = wire::decode_hello(*first);
    channel.set_send_delay_ms(hello.send_delay_ms);
    Site site{{hello.shards == 0 ? 1 : hello.shards, 64}};
    std::vector<wire::Frame> out;
    bool keep_going = site.handle(*first, out);
    for (auto& f : out) channel.send(std::move(f));
    while (keep_going) {
      auto frame = channel.recv();
      if (!frame) break;  // clean peer close
      out.clear();
      keep_going = site.handle(*frame, out);
      for (auto& f : out) channel.send(std::move(f));
    }
    channel.close();
    return true;
  } catch (const std::exception& e) {
    // Best effort: tell the driver why before tearing the session down. A
    // send failure here means the peer is already gone.
    try {
      channel.send(wire::encode_error({e.what()}));
    } catch (...) {
    }
    channel.close();
    return false;
  }
}

}  // namespace cosmos::node
