// The query graph QG = {Vq, Eq, Wq} of Section 3.1.2.
//
// Two vertex kinds: q-vertices (a query, or after coarsening a group of
// queries) weighted by estimated load, and n-vertices (data sources and
// proxies) with zero weight. Edges:
//   q–n : the data rate the query pulls from that source / pushes to that
//         proxy,
//   q–q : the rate of data both queries are interested in (the pub/sub
//         sharing term that penalizes placing overlapping queries far
//         apart).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bit_vector.h"
#include "common/ids.h"

namespace cosmos::graph {

enum class QVertexKind { kQuery, kNetwork };

/// Output rate toward each member query's proxy. Kept per proxy (not
/// lumped) so coarsened vertices still know where their results go.
struct ProxyRates {
  std::vector<std::pair<NodeId, double>> rates;

  void add(NodeId proxy, double rate);
  [[nodiscard]] double toward(NodeId node) const noexcept;
  void merge(const ProxyRates& other);
  [[nodiscard]] double total() const noexcept;
};

struct QueryVertex {
  QVertexKind kind = QVertexKind::kQuery;
  /// Estimated load (q-vertices); n-vertices weigh 0 (Section 3.1.2).
  double weight = 0.0;
  /// Physical node represented (n-vertices only).
  NodeId node;
  /// Child-cluster index of the current coordinator covering `node`;
  /// -1 = unknown / not covered (the paper's clu field, Algorithm 1).
  int clu = -1;
  /// Union of member queries' substream interest (q-vertices).
  BitVector interest;
  /// Result-stream rate of member queries toward each proxy (bytes/s).
  ProxyRates proxy_rates;
  /// Total operator state (bytes) — migration cost in Algorithm 3.
  double state_size = 0.0;
  /// Member query ids (one for fine vertices, several after coarsening).
  std::vector<QueryId> queries;
  /// Coordinator owning the finer-grained detail (the paper's vertex tag).
  CoordinatorId tag;

  [[nodiscard]] bool is_n() const noexcept {
    return kind == QVertexKind::kNetwork;
  }
};

struct QueryEdge {
  std::uint32_t to;
  double weight;
};

class QueryGraph {
 public:
  using VertexIndex = std::uint32_t;
  static constexpr VertexIndex kNone = UINT32_MAX;

  VertexIndex add_vertex(QueryVertex v);

  [[nodiscard]] std::size_t size() const noexcept { return vertices_.size(); }
  [[nodiscard]] const QueryVertex& vertex(VertexIndex i) const {
    return vertices_.at(i);
  }
  [[nodiscard]] QueryVertex& vertex(VertexIndex i) { return vertices_.at(i); }

  /// Adds weight to the (symmetric) edge, creating it if absent.
  /// Zero-weight requests are ignored. Self-edges are rejected.
  void add_edge(VertexIndex a, VertexIndex b, double weight);
  /// Overwrites the edge weight (creating the edge if needed).
  void set_edge(VertexIndex a, VertexIndex b, double weight);

  [[nodiscard]] const std::vector<QueryEdge>& neighbors(
      VertexIndex i) const {
    return adj_.at(i);
  }

  /// Sum of q-vertex weights (W_q^v in Eqn 3.1).
  [[nodiscard]] double total_query_weight() const noexcept;
  [[nodiscard]] std::size_t edge_count() const noexcept;

  /// Index of the n-vertex anchored at `node`, or kNone.
  [[nodiscard]] VertexIndex find_network_vertex(NodeId node) const noexcept;
  /// Adds (or returns) the n-vertex for `node`.
  VertexIndex ensure_network_vertex(NodeId node);

 private:
  std::vector<QueryVertex> vertices_;
  std::vector<std::vector<QueryEdge>> adj_;
};

}  // namespace cosmos::graph
