// Role assignment over a topology: which nodes are data sources, which are
// stream processors, and which are plain routers (Section 4.1: 100 sources,
// 256 processors, the rest routers).
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "net/latency_matrix.h"
#include "net/topology.h"

namespace cosmos::net {

enum class NodeRole { kRouter, kSource, kProcessor };

struct Deployment {
  std::vector<NodeRole> role;       ///< indexed by NodeId
  std::vector<NodeId> sources;      ///< nodes with role kSource
  std::vector<NodeId> processors;   ///< nodes with role kProcessor
  std::vector<double> capability;   ///< CPU capability c_i, indexed by NodeId;
                                    ///< 0 for routers and pure sources
  LatencyMatrix latencies;          ///< over sources + processors

  [[nodiscard]] bool is_processor(NodeId n) const noexcept {
    return role[n.value()] == NodeRole::kProcessor;
  }
  [[nodiscard]] bool is_source(NodeId n) const noexcept {
    return role[n.value()] == NodeRole::kSource;
  }
  [[nodiscard]] double total_capability() const noexcept;
};

struct DeploymentParams {
  std::size_t num_sources = 100;
  std::size_t num_processors = 256;
  /// Per-processor capability band; the paper assumes known relative CPU
  /// speeds c_i. Homogeneous by default (min == max == 1).
  double capability_min = 1.0;
  double capability_max = 1.0;
};

/// Picks disjoint random source/processor sets among the topology's nodes
/// and precomputes the latency matrix over them.
[[nodiscard]] Deployment make_deployment(const Topology& topo,
                                         const DeploymentParams& params,
                                         Rng& rng);

}  // namespace cosmos::net
