#include "pubsub/broker_network.h"

#include <limits>
#include <queue>
#include <stdexcept>

namespace cosmos::pubsub {

BrokerNetwork::BrokerNetwork(std::vector<NodeId> participants,
                             const net::LatencyMatrix& lat, Options options)
    : options_(options) {
  overlay_.participants = std::move(participants);
  overlay_.lat = &lat;
  const std::size_t n = overlay_.participants.size();
  if (n == 0) throw std::invalid_argument{"BrokerNetwork: no participants"};
  for (std::size_t i = 0; i < n; ++i) {
    if (!overlay_.index.emplace(overlay_.participants[i], i).second) {
      throw std::invalid_argument{"BrokerNetwork: duplicate participant"};
    }
  }

  // Latency-minimal spanning tree (Prim).
  overlay_.adj.resize(n);
  std::vector<char> in_tree(n, 0);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> parent(n, SIZE_MAX);
  best[0] = 0;
  for (std::size_t it = 0; it < n; ++it) {
    std::size_t u = SIZE_MAX;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_tree[i] && (u == SIZE_MAX || best[i] < best[u])) u = i;
    }
    in_tree[u] = 1;
    if (parent[u] != SIZE_MAX) {
      overlay_.adj[u].push_back(parent[u]);
      overlay_.adj[parent[u]].push_back(u);
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double d =
          overlay_.lat->latency(overlay_.participants[u],
                                overlay_.participants[v]);
      if (d < best[v]) {
        best[v] = d;
        parent[v] = u;
      }
    }
  }

  // Tree routing tables: BFS from each node.
  overlay_.next_hop.assign(n, std::vector<std::size_t>(n, SIZE_MAX));
  for (std::size_t src = 0; src < n; ++src) {
    std::queue<std::size_t> q;
    std::vector<char> seen(n, 0);
    seen[src] = 1;
    for (const auto nb : overlay_.adj[src]) {
      overlay_.next_hop[src][nb] = nb;
      seen[nb] = 1;
      q.push(nb);
    }
    std::vector<std::size_t> via(n, SIZE_MAX);
    for (const auto nb : overlay_.adj[src]) via[nb] = nb;
    while (!q.empty()) {
      const auto u = q.front();
      q.pop();
      for (const auto v : overlay_.adj[u]) {
        if (seen[v]) continue;
        seen[v] = 1;
        via[v] = via[u];
        overlay_.next_hop[src][v] = via[v];
        q.push(v);
      }
    }
  }
}

void BrokerNetwork::advertise(const std::string& stream, NodeId publisher,
                              stream::Schema schema) {
  auto partition = std::make_unique<BrokerPartition>(
      overlay_, stream, publisher, std::move(schema), options_.use_index);
  // Subscriptions may predate the advertisement; replay them into the new
  // partition's index.
  if (const auto sit = by_stream_.find(stream); sit != by_stream_.end()) {
    for (const auto id : sit->second) {
      partition->add_subscription(&subscriptions_.at(id));
    }
  }
  if (!partitions_.emplace(stream, std::move(partition)).second) {
    throw std::invalid_argument{"BrokerNetwork: stream already advertised: " +
                                stream};
  }
}

const stream::Schema& BrokerNetwork::schema(const std::string& stream) const {
  const auto it = partitions_.find(stream);
  if (it == partitions_.end()) {
    throw std::out_of_range{"BrokerNetwork: unknown stream " + stream};
  }
  return it->second->schema();
}

BrokerPartition* BrokerNetwork::partition(const std::string& stream) noexcept {
  const auto it = partitions_.find(stream);
  return it == partitions_.end() ? nullptr : it->second.get();
}

std::vector<BrokerPartition*> BrokerNetwork::partitions() {
  std::vector<BrokerPartition*> out;
  out.reserve(partitions_.size());
  for (const auto& [name, p] : partitions_) out.push_back(p.get());
  return out;
}

SubscriptionId BrokerNetwork::subscribe(Subscription sub) {
  sub.id = SubscriptionId{next_sub_id_++};
  const SubscriptionId id = sub.id;
  install(std::move(sub));
  return id;
}

void BrokerNetwork::subscribe_as(Subscription sub) {
  if (!sub.id.valid()) {
    throw std::invalid_argument{"BrokerNetwork: subscribe_as without an id"};
  }
  if (subscriptions_.contains(sub.id)) {
    throw std::invalid_argument{"BrokerNetwork: subscription id already taken"};
  }
  if (sub.id.value() >= next_sub_id_) next_sub_id_ = sub.id.value() + 1;
  install(std::move(sub));
}

void BrokerNetwork::install(Subscription sub) {
  (void)overlay_.index_of(sub.subscriber);  // validate the home broker exists
  const SubscriptionId id = sub.id;
  const auto streams = sub.streams;  // copied: sub is moved into the map
  const auto [it, inserted] = subscriptions_.emplace(id, std::move(sub));
  (void)inserted;
  for (const auto& s : streams) {
    by_stream_[s].push_back(id);
    if (const auto pit = partitions_.find(s); pit != partitions_.end()) {
      pit->second->add_subscription(&it->second);
    }
  }
}

const Subscription* BrokerNetwork::subscription(
    SubscriptionId id) const noexcept {
  const auto it = subscriptions_.find(id);
  return it == subscriptions_.end() ? nullptr : &it->second;
}

void BrokerNetwork::unsubscribe(SubscriptionId id) {
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return;
  for (const auto& s : it->second.streams) {
    std::erase(by_stream_[s], id);
    if (const auto pit = partitions_.find(s); pit != partitions_.end()) {
      pit->second->remove_subscription(id);
    }
  }
  subscriptions_.erase(it);
}

std::vector<NodeId> BrokerNetwork::neighbors(NodeId n) const {
  std::vector<NodeId> out;
  for (const auto nb : overlay_.adj[overlay_.index_of(n)]) {
    out.push_back(overlay_.participants[nb]);
  }
  return out;
}

void BrokerNetwork::publish(const std::string& stream,
                            const stream::Tuple& tuple,
                            const DeliveryCallback& callback) {
  auto* part = partition(stream);
  if (part == nullptr) {
    throw std::invalid_argument{"BrokerNetwork: publish to unadvertised " +
                                stream};
  }
  part->match(tuple, callback);
}

void BrokerNetwork::publish_batch(const std::string& stream,
                                  const runtime::TupleBatch& batch,
                                  const BatchDeliveryCallback& callback) {
  auto* part = partition(stream);
  if (part == nullptr) {
    throw std::invalid_argument{"BrokerNetwork: publish to unadvertised " +
                                stream};
  }
  std::vector<BatchDelivery> deliveries;
  part->match_batch(batch, deliveries);
  for (const auto& d : deliveries) callback(d);
}

TrafficStats BrokerNetwork::traffic() const {
  TrafficStats out;
  for (const auto& [name, p] : partitions_) out.merge(p->traffic());
  return out;
}

void BrokerNetwork::reset_traffic() noexcept {
  for (const auto& [name, p] : partitions_) p->reset_traffic();
}

}  // namespace cosmos::pubsub
