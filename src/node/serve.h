// Serving a worker's connections. Two layers:
//
//  - serve_connection(): one driver session on one already-accepted socket
//    (star topology only). Factored out of tools/cosmos_noded so tests can
//    serve a session on an in-process thread against a real socket pair
//    without spawning the binary.
//
//  - NodeServer: the full daemon — keeps the listener open for the whole
//    driver session and classifies every inbound connection by its first
//    frame: kHello starts the (single) driver session, kPeerHello starts a
//    peer-link receive loop feeding the same Site (acknowledged with
//    kPeerHelloAck, so a dialer can tell a *serving* peer from a listener
//    backlog that merely accepted the connect). Outbound peer links are
//    dialed lazily from the driver-distributed kPeerTable when the Site
//    ships an execute to another worker; a dead peer link is re-dialed once
//    per ship (a respawned worker re-binds the same endpoint). When both
//    attempts fail the pair is declared down: the worker reports kPeerDown
//    to the driver, which replays the lost shipments from its data log and
//    re-routes the pair's future traffic through the star — a partitioned
//    or hung peer link degrades, it does not wedge or silently drop.
#pragma once

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "wire/channel.h"
#include "wire/messages.h"
#include "wire/socket.h"

namespace cosmos::node {

class Site;

/// Serves frames on `socket` until kBye, peer close or failure. The first
/// frame must be kHello; it fixes the session's runtime shard count and
/// emulated send delay. On any error a best-effort kError frame is sent
/// before returning. Returns true for an orderly end (kBye or clean peer
/// close), false when the session died on an error.
bool serve_connection(wire::Socket socket);

/// The daemon's connection fabric around one Site. Not movable; the
/// listener is borrowed and stays open (and accepting peer dials) until
/// the driver session ends.
class NodeServer {
 public:
  struct Options {
    /// Deterministic fault schedule applied to this worker's driver
    /// channel (its own sends through `send:` rules, inbound driver frames
    /// through `recv:` rules). Empty = no faults.
    fault::FaultPlan driver_fault;
    /// Fault schedule for every *outbound* peer link. One persistent
    /// schedule per destination worker: its frame counters survive
    /// re-dials, so an injected partition stays a partition instead of
    /// resetting on every reconnect.
    fault::FaultPlan peer_fault;
  };

  explicit NodeServer(wire::Listener& listener,
                      Options options = {});  // out of line: Site is
                                              // incomplete here
  ~NodeServer();
  NodeServer(const NodeServer&) = delete;
  NodeServer& operator=(const NodeServer&) = delete;

  /// Accepts and serves until the driver session (the connection opening
  /// with kHello) ends, then tears every link down. Returns true for an
  /// orderly session end, false when it died on an error.
  bool run();

 private:
  struct PeerIn {
    wire::Socket sock;
    std::thread th;
  };

  void accept_loop();
  void drive_session(wire::Socket sock, wire::Frame hello_frame);
  void peer_in_loop(wire::Socket& sock);
  /// Blocks until the driver session's Site exists (nullptr on shutdown).
  Site* wait_site();
  /// Lazy-dial + send on the peer link to `worker`; one re-dial on
  /// failure, then the frame is dropped.
  /// One outbound peer link. `dead` is flipped by the channel's reader at
  /// EOF, the instant the peer dies — ship() checks it *before* enqueueing,
  /// because FrameChannel::send only enqueues and the sender thread's
  /// later EPIPE would drop the frame silently. Frames lost in the death
  /// instant itself are re-sent by the driver's data-log replay (their
  /// route decisions predate the recovery), so eager detection here plus
  /// the replay together leave no silent-drop window.
  struct PeerOut {
    std::unique_ptr<wire::FrameChannel> ch;
    std::shared_ptr<std::atomic<bool>> dead;
  };
  void ship(std::uint32_t worker, wire::Frame frame);
  PeerOut dial_peer(std::uint32_t worker);
  /// Declares the outbound link to `worker` dead (under peer_out_mu_):
  /// future ships to it are skipped and a kPeerDown naming the pair goes to
  /// the driver (once), which replays + re-routes through the star.
  void mark_peer_down(std::uint32_t worker, const std::string& reason);
  /// Folds the channel's counters into the retired totals and drops it.
  void retire_peer_out(PeerOut& slot);
  /// {frames, bytes} sent over peer links (live channels + retired ones).
  std::pair<std::uint64_t, std::uint64_t> peer_traffic();
  void shutdown();

  wire::Listener& listener_;
  Options options_;
  std::thread accept_thread_;

  std::mutex mu_;
  std::condition_variable site_cv_;
  std::condition_variable done_cv_;
  Site* site_ = nullptr;                    ///< set while the session runs
  std::unique_ptr<Site> site_owned_;        ///< destroyed after peers join
  std::unique_ptr<wire::FrameChannel> driver_channel_;
  std::thread driver_thread_;
  bool driver_started_ = false;
  bool driver_done_ = false;
  bool driver_ok_ = true;
  bool shutting_down_ = false;
  wire::PeerTableMsg table_;
  std::list<PeerIn> peer_ins_;

  /// Written once in drive_session (before any ship can happen).
  std::uint32_t worker_index_ = 0;
  std::int64_t send_delay_ms_ = 0;
  /// Liveness knobs from the driver's kHello; peer-out links inherit them.
  std::int64_t heartbeat_every_ms_ = 0;
  std::int64_t liveness_deadline_ms_ = 0;

  std::mutex peer_out_mu_;
  std::map<std::uint32_t, PeerOut> peer_out_;
  /// Per-destination fault schedules (counters persist across re-dials).
  std::map<std::uint32_t, fault::LinkFaultPtr> peer_faults_;
  /// Destinations declared dead; the driver owns their traffic now.
  std::set<std::uint32_t> peer_down_;
  std::uint64_t retired_peer_frames_ = 0;  ///< counters of dropped channels
  std::uint64_t retired_peer_bytes_ = 0;
};

}  // namespace cosmos::node
