// node::Site driven frame-by-frame in process (no sockets): the daemon's
// protocol surface — topology/registration/deployment, match requests,
// execute + flush + result shipping, watermarks, and the migrate-out ->
// migrate-in state round trip (differential against a site that never
// migrated).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "cql/parser.h"
#include "node/site.h"
#include "wire/messages.h"

namespace cosmos::node {
namespace {

using wire::Frame;
using wire::FrameType;

stream::Schema x_schema() {
  return stream::Schema{{stream::Field{"x", stream::ValueType::kDouble}}};
}

wire::TopologyMsg four_node_topology() {
  wire::TopologyMsg topo;
  std::vector<double> dense(16, 10.0);
  for (std::size_t i = 0; i < 4; ++i) {
    topo.participants.emplace_back(static_cast<NodeId::value_type>(i));
    topo.members.emplace_back(static_cast<NodeId::value_type>(i));
    dense[i * 4 + i] = 0.0;
  }
  topo.dense = std::move(dense);
  return topo;
}

runtime::TupleBatch make_batch(
    const std::string& stream,
    std::vector<std::pair<stream::Timestamp, double>> rows) {
  runtime::TupleBatch b{stream};
  for (auto& [ts, x] : rows) {
    stream::Tuple t;
    t.ts = ts;
    t.values = {stream::Value{x}};
    b.push_back(std::move(t));
  }
  return b;
}

/// Feeds frames into one Site and collects shipped result lines in order.
struct Harness {
  Site site{{1, 16}};
  std::vector<std::string> results;
  std::vector<Frame> last_out;
  /// Driver-side seq frontier per engine: the site applies an engine's
  /// executes strictly in seq order, so the harness assigns them the way
  /// the federation driver does.
  std::map<std::uint64_t, std::uint64_t> next_seq;

  void exec(NodeId engine, const runtime::TupleBatch& batch) {
    wire::ExecuteMsg m;
    m.engine = engine;
    m.batch = batch;
    m.seq = next_seq[engine.value()]++;
    feed(wire::encode_execute(m));
  }

  void feed(const Frame& f) {
    last_out.clear();
    EXPECT_TRUE(site.handle(f, last_out));
    for (const auto& out : last_out) {
      if (out.type != FrameType::kResult) continue;
      for (const auto& ev : wire::decode_result(out).events) {
        std::string line = ev.stream + ":" + std::to_string(ev.tuple.ts);
        for (const auto& v : ev.tuple.values) line += "|" + v.to_string();
        results.push_back(std::move(line));
      }
    }
  }

  /// Frames of the last feed() with the given type.
  std::vector<Frame> of_type(FrameType t) const {
    std::vector<Frame> out;
    for (const auto& f : last_out) {
      if (f.type == t) out.push_back(f);
    }
    return out;
  }

  void register_streams() {
    feed(wire::encode_topology(four_node_topology()));
    feed(wire::encode_register_stream({"a", NodeId{0}, x_schema()}));
    feed(wire::encode_register_stream({"b", NodeId{1}, x_schema()}));
  }

  void deploy_join_unit() {
    const auto spec = cql::parse_query(
        "SELECT S1.x, S2.x FROM a [Range 1 Hours] S1, b [Range 1 Hours] S2 "
        "WHERE S1.x >= S2.x",
        QueryId{1}, NodeId{3});
    feed(wire::encode_deploy_unit({0, NodeId{2}, "cosmos.result.0.v1", spec}));
  }
};

TEST(Site, MatchRequestReturnsPerSubscriptionRows) {
  Harness h;
  h.register_streams();

  pubsub::Subscription sub;
  sub.id = SubscriptionId{7};
  sub.subscriber = NodeId{2};
  sub.streams = {"a"};
  h.feed(wire::encode_subscribe({sub}));

  h.feed(wire::encode_match_request(
      {42, make_batch("a", {{0, 1.0}, {5, 2.0}, {9, 3.0}})}));
  const auto responses = h.of_type(FrameType::kMatchResponse);
  ASSERT_EQ(responses.size(), 1u);
  const auto resp = wire::decode_match_response(responses[0]);
  EXPECT_EQ(resp.job, 42u);
  ASSERT_EQ(resp.deliveries.size(), 1u);
  EXPECT_EQ(resp.deliveries[0].first, SubscriptionId{7});
  EXPECT_EQ(resp.deliveries[0].second,
            (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Site, ExecuteFlushShipsJoinResults) {
  Harness h;
  h.register_streams();
  h.deploy_join_unit();
  EXPECT_EQ(h.site.deployed_units(), 1u);
  EXPECT_TRUE(h.site.hosts_engine(NodeId{2}));

  h.exec(NodeId{2}, make_batch("a", {{1000, 5.0}}));
  h.exec(NodeId{2}, make_batch("b", {{2000, 4.0}}));
  h.feed(wire::encode_flush({1}));
  ASSERT_EQ(h.of_type(FrameType::kFlushAck).size(), 1u);
  // 5.0 >= 4.0: exactly one join result.
  ASSERT_EQ(h.results.size(), 1u);
  EXPECT_NE(h.results[0].find("cosmos.result.0.v1"), std::string::npos);
}

TEST(Site, UnexpectedFrameAndUnknownEngineThrow) {
  Harness h;
  // Data before topology: protocol violation, not a crash.
  std::vector<Frame> out;
  EXPECT_THROW(
      (void)h.site.handle(
          wire::encode_match_request({1, make_batch("a", {{0, 1.0}})}), out),
      wire::Error);
  h.register_streams();
  EXPECT_THROW(
      (void)h.site.handle(
          wire::encode_execute({NodeId{2}, make_batch("a", {{0, 1.0}})}), out),
      wire::Error);
  EXPECT_THROW(
      (void)h.site.handle(wire::encode_match_response({1, {}}), out),
      wire::Error);
}

TEST(Site, ByeDrainsAndStops) {
  Harness h;
  h.register_streams();
  h.deploy_join_unit();
  h.exec(NodeId{2}, make_batch("a", {{0, 2.0}}));
  h.exec(NodeId{2}, make_batch("b", {{0, 1.0}}));
  std::vector<Frame> out;
  EXPECT_FALSE(h.site.handle(wire::encode_bye(), out));
  // The pre-bye executes' join result is on the wire by the time bye
  // returns. It may ride the bye's own frames or an earlier execute's:
  // every handle() ships whatever the shard finished meanwhile, and the
  // shard can beat the serve thread to that point.
  std::size_t shipped = h.results.size();
  for (const auto& f : out) {
    if (f.type != FrameType::kResult) continue;
    shipped += wire::decode_result(f).events.size();
  }
  EXPECT_EQ(shipped, 1u);
}

/// The migration differential: site A runs the first half, migrates out;
/// site B imports and runs the second half. Their concatenated results
/// must equal a control site that ran the whole trace in place — i.e. the
/// serialized handoff carries the complete join state.
TEST(Site, MigrateOutInPreservesJoinState) {
  // Interleaved halves; the join window spans the migration point.
  const auto first_a = make_batch("a", {{0, 5.0}, {60'000, 7.0}});
  const auto first_b = make_batch("b", {{90'000, 6.0}});
  const auto second_b = make_batch("b", {{120'000, 4.0}});
  const auto second_a = make_batch("a", {{180'000, 3.0}});

  Harness control;
  control.register_streams();
  control.deploy_join_unit();
  for (const auto* b : {&first_a, &first_b, &second_b, &second_a}) {
    control.exec(NodeId{2}, *b);
  }
  control.feed(wire::encode_flush({1}));
  ASSERT_FALSE(control.results.empty());

  Harness a;
  a.register_streams();
  a.deploy_join_unit();
  a.exec(NodeId{2}, first_a);
  a.exec(NodeId{2}, first_b);

  a.feed(wire::encode_migrate_out({NodeId{2}}));
  const auto handoffs = a.of_type(FrameType::kStateHandoff);
  ASSERT_EQ(handoffs.size(), 1u);
  auto handoff = wire::decode_state_handoff(handoffs[0]);
  EXPECT_EQ(handoff.engine, NodeId{2});
  ASSERT_EQ(handoff.units.size(), 1u);
  std::size_t state_tuples = 0;
  for (const auto& j : handoff.units[0].joins) {
    state_tuples += j.left.size() + j.right.size();
  }
  EXPECT_GT(state_tuples, 0u);  // live window state actually travelled
  EXPECT_FALSE(a.site.hosts_engine(NodeId{2}));
  EXPECT_EQ(a.site.deployed_units(), 0u);

  Harness b;
  b.register_streams();  // topology + advertisements, but no deployment
  const auto spec = cql::parse_query(
      "SELECT S1.x, S2.x FROM a [Range 1 Hours] S1, b [Range 1 Hours] S2 "
      "WHERE S1.x >= S2.x",
      QueryId{1}, NodeId{3});
  wire::MigrateInMsg in;
  in.engine = NodeId{2};
  in.units.push_back({0, NodeId{2}, "cosmos.result.0.v1", spec});
  in.state = std::move(handoff.units);
  in.exec_seq = a.next_seq[NodeId{2}.value()];  // resume at the source's cut
  b.feed(wire::encode_migrate_in(in));
  b.next_seq[NodeId{2}.value()] = in.exec_seq;
  ASSERT_EQ(b.of_type(FrameType::kMigrateAck).size(), 1u);
  EXPECT_TRUE(b.site.hosts_engine(NodeId{2}));

  b.exec(NodeId{2}, second_b);
  b.exec(NodeId{2}, second_a);
  b.feed(wire::encode_flush({2}));

  std::vector<std::string> stitched = a.results;
  stitched.insert(stitched.end(), b.results.begin(), b.results.end());
  EXPECT_EQ(stitched, control.results);
}

/// Re-migration: an engine that moved away can move back (the site must
/// have forgotten it completely, or re-registration would throw).
TEST(Site, MigrateBackAfterMigrateOut) {
  Harness h;
  h.register_streams();
  h.deploy_join_unit();
  h.exec(NodeId{2}, make_batch("a", {{0, 5.0}}));
  h.feed(wire::encode_migrate_out({NodeId{2}}));
  auto handoff =
      wire::decode_state_handoff(h.of_type(FrameType::kStateHandoff)[0]);

  const auto spec = cql::parse_query(
      "SELECT S1.x, S2.x FROM a [Range 1 Hours] S1, b [Range 1 Hours] S2 "
      "WHERE S1.x >= S2.x",
      QueryId{1}, NodeId{3});
  wire::MigrateInMsg in;
  in.engine = NodeId{2};
  in.units.push_back({0, NodeId{2}, "cosmos.result.0.v1", spec});
  in.state = std::move(handoff.units);
  in.exec_seq = h.next_seq[NodeId{2}.value()];  // resume at the cut
  h.feed(wire::encode_migrate_in(in));
  ASSERT_EQ(h.of_type(FrameType::kMigrateAck).size(), 1u);

  h.exec(NodeId{2}, make_batch("b", {{1000, 4.0}}));
  h.feed(wire::encode_flush({3}));
  EXPECT_EQ(h.results.size(), 1u);  // the pre-migration left row joined
}

TEST(Site, WatermarkPrunesWithoutChangingResults) {
  Harness h;
  h.register_streams();
  h.deploy_join_unit();
  h.exec(NodeId{2}, make_batch("a", {{0, 9.0}}));
  // Push stream time far past the 1h window: the watermark prunes the row.
  h.feed(wire::encode_watermark({8 * 3'600'000}));
  h.feed(wire::encode_flush({1}));
  h.exec(NodeId{2}, make_batch("b", {{8 * 3'600'000 + 1, 1.0}}));
  h.feed(wire::encode_flush({2}));
  // The pruned left row must not join with the late right row.
  EXPECT_TRUE(h.results.empty());
}

/// Peer-link ordering: executes arriving out of seq order over
/// apply_peer_execute are held back and applied in order, and a replayed
/// duplicate seq is dropped — the invariant that keeps results
/// byte-identical when batches travel multiple channels.
TEST(Site, PeerExecutesReorderBySeqAndDropDuplicates) {
  Harness control;
  control.register_streams();
  control.deploy_join_unit();
  control.exec(NodeId{2}, make_batch("a", {{1000, 5.0}}));
  control.exec(NodeId{2}, make_batch("b", {{2000, 4.0}}));
  control.feed(wire::encode_flush({1}));
  ASSERT_EQ(control.results.size(), 1u);

  Harness h;
  h.register_streams();
  h.deploy_join_unit();
  std::vector<Frame> emitted;
  h.site.set_emit([&](Frame f) { emitted.push_back(std::move(f)); });

  wire::ExecuteMsg e0;
  e0.engine = NodeId{2};
  e0.batch = make_batch("a", {{1000, 5.0}});
  e0.seq = 0;
  wire::ExecuteMsg e1;
  e1.engine = NodeId{2};
  e1.batch = make_batch("b", {{2000, 4.0}});
  e1.seq = 1;

  h.site.apply_peer_execute(e1);  // early: held back until seq 0 lands
  h.site.apply_peer_execute(e0);
  h.site.apply_peer_execute(e0);  // replayed duplicate: dropped
  h.site.apply_peer_execute(e1);  // replayed duplicate: dropped

  // Flush floors at the driver frontier (seq 2): the ack must wait for
  // both peer executes, and with the emit sink installed the results ride
  // emitted frames.
  std::vector<Frame> out;
  EXPECT_TRUE(
      h.site.handle(wire::encode_flush({9, {{NodeId{2}, 2}}}), out));
  std::vector<std::string> lines;
  bool acked = false;
  for (const auto& f : emitted) {
    if (f.type == FrameType::kFlushAck) acked = true;
    if (f.type != FrameType::kResult) continue;
    for (const auto& ev : wire::decode_result(f).events) {
      std::string line = ev.stream + ":" + std::to_string(ev.tuple.ts);
      for (const auto& v : ev.tuple.values) line += "|" + v.to_string();
      lines.push_back(std::move(line));
    }
  }
  EXPECT_TRUE(acked);
  EXPECT_EQ(lines, control.results);
}

}  // namespace
}  // namespace cosmos::node
