#include "stream/operators.h"

#include <stdexcept>

namespace cosmos::stream {

FilterOp::FilterOp(std::string alias, const Schema* schema,
                   PredicatePtr predicate, Sink sink)
    : alias_(std::move(alias)),
      schema_(schema),
      predicate_(std::move(predicate)),
      sink_(std::move(sink)) {
  if (schema_ == nullptr || predicate_ == nullptr || !sink_) {
    throw std::invalid_argument{"FilterOp: null schema/predicate/sink"};
  }
}

void FilterOp::push(const Tuple& t) {
  ++seen_;
  const std::vector<Binding> env{{alias_, schema_, &t}};
  if (predicate_->eval(env)) {
    ++passed_;
    sink_(t);
  }
}

ProjectOp::ProjectOp(std::vector<std::size_t> keep_indices, Sink sink)
    : keep_(std::move(keep_indices)), sink_(std::move(sink)) {
  if (!sink_) throw std::invalid_argument{"ProjectOp: null sink"};
}

void ProjectOp::push(const Tuple& t) {
  Tuple out;
  out.ts = t.ts;
  out.values.reserve(keep_.size());
  for (const std::size_t i : keep_) out.values.push_back(t.at(i));
  sink_(out);
}

WindowJoinOp::WindowJoinOp(Side left, Side right, PredicatePtr predicate,
                           Sink sink)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)),
      sink_(std::move(sink)) {
  if (left_.schema == nullptr || right_.schema == nullptr ||
      predicate_ == nullptr || !sink_) {
    throw std::invalid_argument{"WindowJoinOp: null argument"};
  }
}

void WindowJoinOp::push_left(const Tuple& t) {
  probe(t, /*incoming_is_left=*/true);
  left_buf_.push_back(t);
}

void WindowJoinOp::push_right(const Tuple& t) {
  probe(t, /*incoming_is_left=*/false);
  right_buf_.push_back(t);
}

void WindowJoinOp::prune(std::deque<Tuple>& buf, const WindowSpec& window,
                         Timestamp now) {
  while (!buf.empty() && !window.contains(buf.front().ts, now)) {
    buf.pop_front();
  }
}

void WindowJoinOp::probe(const Tuple& incoming, bool incoming_is_left) {
  auto& other_buf = incoming_is_left ? right_buf_ : left_buf_;
  const auto& other_side = incoming_is_left ? right_ : left_;
  const auto& own_side = incoming_is_left ? left_ : right_;
  prune(other_buf, other_side.window, incoming.ts);

  for (const Tuple& other : other_buf) {
    if (!other_side.window.contains(other.ts, incoming.ts)) continue;
    const Tuple& lt = incoming_is_left ? incoming : other;
    const Tuple& rt = incoming_is_left ? other : incoming;
    const std::vector<Binding> env{{own_side.alias, own_side.schema, &incoming},
                                   {other_side.alias, other_side.schema,
                                    &other}};
    if (!predicate_->eval(env)) continue;
    Tuple out;
    out.ts = std::max(lt.ts, rt.ts);
    out.values.reserve(lt.values.size() + rt.values.size());
    out.values.insert(out.values.end(), lt.values.begin(), lt.values.end());
    out.values.insert(out.values.end(), rt.values.begin(), rt.values.end());
    ++emitted_;
    sink_(out);
  }
}

}  // namespace cosmos::stream
