// The COSMOS middleware facade: the system of Section 2, end to end.
//
// A federation of processors over a content-based pub/sub. Sources
// advertise their streams; users submit CQL queries through a proxy; the
// middleware places each query on a processor (the caller supplies the
// placement, usually from coord::HierarchicalDistributor), merges queries
// with overlapping results into one covering query per processor
// (Section 2.1), generates the p1 subscriptions that pull source data into
// the processor's engine and the p2 subscriptions that carry (split) result
// streams back to the proxies, and runs the query plans.
//
// All traffic flows through the pubsub::BrokerNetwork, whose accounting is
// the prototype-study metric (Fig 11).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "adapt/adapt.h"
#include "net/latency_matrix.h"
#include "obs/metrics.h"
#include "pubsub/broker_network.h"
#include "query/containment.h"
#include "query/plan.h"
#include "query/query_spec.h"
#include "runtime/driver.h"
#include "runtime/queues.h"
#include "runtime/runtime.h"
#include "runtime/stats.h"
#include "stream/engine.h"

namespace cosmos::middleware {

class Cosmos {
 public:
  /// Result tuples of a query, delivered at its proxy.
  using ResultCallback =
      std::function<void(QueryId, const stream::Tuple&)>;

  /// `nodes` are all participants (sources and processors); `lat` must
  /// cover them. `enable_result_sharing` toggles the Section 2.1 merging
  /// (disabled = the paper's Non-Share configuration, Fig 4a).
  Cosmos(std::vector<NodeId> nodes, const net::LatencyMatrix& lat,
         bool enable_result_sharing = true);

  // Engine result taps capture `this` and the broker hands out interior
  // pointers, so an instance must stay at one address (heap-allocate to
  // pass ownership around).
  Cosmos(const Cosmos&) = delete;
  Cosmos& operator=(const Cosmos&) = delete;

  /// Registers a source stream published at `node`.
  void register_source(const std::string& stream, stream::Schema schema,
                       NodeId node);

  /// Deploys `spec` on processor `host`. If a mergeable query already runs
  /// there, the two are folded into one covering query and both users are
  /// re-wired onto the shared result stream.
  void submit(const query::QuerySpec& spec, NodeId host, ResultCallback cb);

  // --- Ingest modes -------------------------------------------------------
  //
  // push() is the synchronous mode: each call matches, routes, executes the
  // query plans, and delivers results before returning, all on the calling
  // thread. Simple and exactly ordered — the mode every correctness test
  // and the paper-figure benches use.
  //
  // run() is the runtime-backed mode: a whole trace is replayed through the
  // sharded execution runtime (src/runtime/). The calling thread becomes
  // the ingest driver — it batches the trace into global-order-preserving
  // chunks (runtime::Driver) and pipelines each chunk through three
  // stages: *match* (every run is shipped to the shard owning its stream's
  // broker partition, which runs subscription matching and traffic
  // accounting off the driver thread; accounting is identical to push()),
  // *route* (the driver turns the pre-matched deliveries into per-engine
  // row slices of the shared runs), and *dispatch* (slices go to the
  // worker thread owning each processor's engine). Engines are pinned to
  // shards, shard queues are FIFO and bounded (backpressure, never drops),
  // and result delivery runs on the driver thread, so result callbacks
  // never run concurrently and per-query result sequences are identical to
  // push() at any shard count. A Cosmos instance must not be mutated
  // (submit etc.) while run() is executing.

  /// Feeds one source tuple into the system (global timestamp order).
  void push(const std::string& stream, const stream::Tuple& tuple);

  struct RunOptions {
    std::size_t shards = 1;
    std::size_t batch_size = 256;       ///< max tuples per driver chunk
    std::size_t queue_capacity = 64;    ///< per-shard queue, in tasks
    stream::Timestamp tick_ms = 60'000; ///< virtual-clock bound per chunk
    /// Live load-aware operator migration (src/adapt/): off by default;
    /// when enabled (and shards > 1), per-engine load is sampled every
    /// adapt.adapt_every_ms of stream time and engines are re-pinned
    /// between chunks when shard imbalance crosses the threshold. Results
    /// are identical either way — migration only changes *where* an
    /// engine runs, never the order of its input.
    adapt::AdaptOptions adapt;
    /// Explicit initial engine→shard pinning by hosting node (values taken
    /// mod shards). Nodes absent from the map fall back to the default
    /// deterministic round-robin. Benches use this to set up worst-case /
    /// oracle static placements.
    std::unordered_map<NodeId, std::size_t> pin;
    /// When non-empty, span tracing is enabled for this run and a Chrome
    /// trace-event JSON (Perfetto-loadable) is written here at the end:
    /// driver pipeline stages, shard task execution, stalls and adaptation
    /// migrations. Empty (the default) costs nothing on any path.
    std::string trace_path;
  };
  /// Where the driver's serial time goes, stage by stage of the chunk
  /// pipeline (match → route → dispatch, plus p2 result delivery). Since
  /// PR 3, subscription matching runs inside the shards: the driver's
  /// share of it is only the wall-clock wait at the per-chunk match
  /// barrier, which costs no driver CPU and overlaps shard execution.
  struct DriverBreakdown {
    /// Wall time parked at the match barrier (not CPU; overlaps shards).
    double match_wait_seconds = 0.0;
    /// CPU turning shard-produced deliveries into per-engine run slices.
    double route_cpu_seconds = 0.0;
    /// CPU cutting chunks into match tasks and handing tasks to queues.
    double dispatch_cpu_seconds = 0.0;
    /// CPU delivering result tuples to user callbacks (the p2 leg).
    double deliver_cpu_seconds = 0.0;
  };
  /// Driver-side byte/frame counters of one worker channel (federation).
  struct WireLinkStats {
    std::string endpoint;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    /// Frames the channel discarded without transmitting (close-drain
    /// deadline tail, frames queued behind a send error, injected
    /// drop/partition faults) — non-zero values are reported, not
    /// swallowed.
    std::uint64_t frames_dropped = 0;
    /// First send-side error the channel recorded ("" = none), e.g. a
    /// liveness-deadline trip or the close-drain deadline.
    std::string error;
  };
  /// One worker-shipped registry snapshot (kStatsSample frame): the
  /// fleet-wide observability timeline of a federated run.
  struct WorkerSample {
    std::size_t worker = 0;            ///< shipping worker's index
    stream::Timestamp now_ms = 0;      ///< stream time at sampling
    obs::MetricsSnapshot metrics;      ///< the worker's local registry
  };
  struct FederationStats {
    std::size_t workers = 0;  ///< 0 = the run was not federated
    std::vector<WireLinkStats> links;
    std::size_t migrations = 0;  ///< scripted handoffs executed
    /// Workers that died mid-run and were respawned + resumed (requires
    /// FederationOptions::Recovery::enabled).
    std::size_t recoveries = 0;
    /// Peer links declared dead (kPeerDown): the pair's traffic fell back
    /// to star routing through the driver for the rest of the run.
    std::size_t peer_fallbacks = 0;
    /// kSeqGap reports answered with a data-log replay (executes lost on a
    /// live-but-lossy link, re-sent directly by the driver).
    std::size_t seq_gap_replays = 0;
    /// FederationOptions::faults entries installed on worker channels.
    std::size_t faults_injected = 0;
    /// Frames/bytes the workers sent over worker-to-worker peer links
    /// (kPeerHello + peer-shipped kExecute), summed across the fleet.
    std::uint64_t peer_frames = 0;
    std::uint64_t peer_bytes = 0;
    /// Bytes of kExecute frames the *driver* sent. With peer_links on this
    /// is ~0 — batches travel worker-to-worker and the driver only ships
    /// compact kRouteDecision frames (recovery replay is the exception).
    std::uint64_t driver_execute_bytes = 0;
    /// Serialized join-state bytes actually shipped in kStateHandoff
    /// frames (measured on the wire, not modeled).
    std::uint64_t state_bytes_migrated = 0;
    /// Broker traffic merged across the federation: each worker's p1
    /// matching share plus the driver's p2 result delivery — the same
    /// total the in-process broker would account.
    pubsub::TrafficStats matched_traffic;
    /// Periodic worker registry snapshots, merged driver-side into one
    /// timeline ordered by (now_ms, worker). Populated when
    /// FederationOptions::stats_sample_every_ms > 0 (plus one final sample
    /// per worker at end of session).
    std::vector<WorkerSample> samples;
    /// Run journal accounting (FederationOptions::journal). Bytes and
    /// fsyncs the journal writer issued during the run — the durable-run
    /// overhead bench_federation reports per tuple.
    std::uint64_t journal_bytes = 0;
    std::uint64_t journal_fsyncs = 0;
    /// Resume diagnostics (resume_federated only). rollbacks = newer
    /// segments skipped during recovery (corrupt or uncommitted);
    /// journal_records_dropped = partial-chunk executes + torn/corrupt
    /// tail records discarded; resume_skipped_events = trace events not
    /// re-ingested because the journal's cut already covered them.
    std::uint64_t journal_rollbacks = 0;
    bool journal_torn_tail = false;
    std::uint64_t journal_records_dropped = 0;
    std::size_t resume_skipped_events = 0;
    /// In-memory data-log retention: entries appended over the run vs the
    /// peak held at once. With retention/checkpointing on, peak stays
    /// bounded by the checkpoint-to-checkpoint window instead of growing
    /// with the whole trace (peak == appended when nothing truncates).
    std::size_t data_log_appended = 0;
    std::size_t data_log_peak_entries = 0;
  };

  struct RunReport {
    std::size_t tuples = 0;             ///< trace events ingested
    std::size_t chunks = 0;             ///< driver chunks dispatched
    std::size_t results_delivered = 0;  ///< user callbacks invoked
    double ingest_seconds = 0.0;        ///< wall time: replay + drain
    double drain_seconds = 0.0;         ///< wall time waiting on shards at EOT
    /// CPU seconds the driver thread spent in run(): chunk cutting,
    /// routing, dispatch, result delivery — blocking waits excluded. The
    /// serial stage of the pipeline; max(this, slowest shard busy) is the
    /// parallel critical path.
    double driver_cpu_seconds = 0.0;
    DriverBreakdown driver;             ///< where the serial time went
    runtime::RuntimeStats stats;        ///< per-shard + per-engine counters
    adapt::AdaptationReport adaptation; ///< what the adapt loop did (if on)
    FederationStats federation;         ///< wire stats (run_federated only)
    /// End-to-end tuple latency, ingest to p2 delivery: one sample per
    /// delivered result, measured from its input chunk's ingest stamp
    /// (nanoseconds; see e2e_percentile_us for reporting).
    obs::HistogramSnapshot e2e_latency;
    /// The run's metrics registry at the end: driver-side counters and
    /// histograms (includes the e2e latency histogram under
    /// "e2e_latency_ns").
    obs::MetricsSnapshot metrics;

    [[nodiscard]] double e2e_percentile_us(double p) const noexcept {
      return static_cast<double>(e2e_latency.percentile(p)) / 1000.0;
    }
  };

  /// Replays `events` (non-decreasing global timestamp order) through the
  /// sharded runtime. See the mode comparison above.
  RunReport run(const std::vector<runtime::TraceEvent>& events,
                const RunOptions& options);
  RunReport run(const std::vector<runtime::TraceEvent>& events) {
    return run(events, RunOptions{});
  }

  // --- Federation mode ----------------------------------------------------
  //
  // run_federated() is run() stretched across real processes: each worker
  // is a cosmos_noded daemon reached over a wire::FrameChannel (TCP or
  // Unix-domain), hosting a slice of the engines and matching the source
  // streams it owns. The driver replicates the topology, schemas, p1
  // subscriptions and unit deployments over registration frames, then
  // pipelines driver chunks exactly like run(): match requests go to each
  // stream's owner worker, responses are routed *on the driver* into
  // per-engine row selections (so routing policy lives in one place),
  // pre-routed batches go to each engine's worker, and result tuples come
  // back for p2 delivery on the driver thread. Per-channel FIFO plays the
  // role of shard-queue FIFO, so per-query result sequences stay
  // byte-identical to push() — the federation differential tests assert it
  // across worker counts and live migrations. The per-chunk match barrier
  // is relaxed to a bounded in-flight window (max_inflight_chunks).

  struct FederationOptions {
    /// Worker endpoints ("unix:/path" or "tcp:host:port"), one per
    /// already-listening cosmos_noded process (node::spawn_noded starts
    /// them; wire::connect_to absorbs the startup race).
    std::vector<std::string> workers;
    std::size_t batch_size = 256;        ///< max tuples per driver chunk
    stream::Timestamp tick_ms = 60'000;  ///< virtual-clock bound per chunk
    /// Chunks whose match responses may still be outstanding before the
    /// driver waits — the relaxed match barrier. 1 = run()'s strict
    /// per-chunk barrier.
    std::size_t max_inflight_chunks = 4;
    std::size_t worker_shards = 1;    ///< each worker runtime's shard count
    std::size_t queue_capacity = 64;  ///< per-channel send queue, in frames
    /// Emulated one-way link delay per worker, ms (empty = all zero);
    /// applied to both directions of that worker's channel.
    std::vector<std::int64_t> link_delay_ms;
    /// One scripted live migration: at virtual time `at_ms`, the units
    /// hosted at `engine` drain on their current worker, serialize their
    /// join state, and resume on `to_worker` — the wire analogue of the
    /// adapt subsystem's engine re-pins.
    struct Migration {
      stream::Timestamp at_ms = 0;
      NodeId engine;
      std::size_t to_worker = 0;
    };
    std::vector<Migration> migrations;  ///< in at_ms order
    /// When non-empty, enables span tracing on the driver *and* every
    /// worker (via kHello), merges worker-shipped spans into one timeline
    /// and writes a single Chrome trace-event JSON here — driver lanes at
    /// pid 0, worker i's at pid i+1.
    std::string trace_path;
    /// Stream-time period of worker registry sampling (kStatsSample
    /// frames -> RunReport::federation.samples); <= 0 disables periodic
    /// samples. Workers still ship one final sample at end of session
    /// when tracing or sampling is on.
    stream::Timestamp stats_sample_every_ms = 0;
    /// Peer-link mode: the driver distributes the fleet endpoint table
    /// (kPeerTable), match-owner workers retain their batches, and the
    /// driver's route stage sends compact kRouteDecision frames — execute
    /// batches then travel worker-to-worker instead of bouncing through
    /// the driver. Results are byte-identical either way (per-engine seq
    /// ordering replaces single-channel FIFO); false keeps the star path
    /// as the differential oracle.
    bool peer_links = false;
    /// Worker restart recovery. When enabled, the driver retains every
    /// registration frame and a data log since the last checkpoint; on
    /// dead-worker detection it respawns the daemon on the same endpoint
    /// (node::spawn_noded), replays the registrations, re-hands-off each
    /// hosted engine's checkpointed state (kMigrateIn at the checkpoint's
    /// execute seq), replays the logged executes — the sites' seq dedup
    /// absorbs duplicates — and resumes the run.
    struct Recovery {
      bool enabled = false;
      /// cosmos_noded binary to respawn; empty = $COSMOS_NODED_PATH.
      std::string noded_path;
      /// Give up (sticky session error) past this many recoveries.
      std::size_t max_recoveries = 4;
      /// Stream-time period between recovery checkpoints (flush + per-
      /// engine keep-state handoff). <= 0: only the initial (empty-state)
      /// checkpoint is taken, so recovery replays from the top of the run.
      stream::Timestamp checkpoint_every_ms = 0;
    };
    Recovery recovery;
    /// Liveness (protocol v3). Both ends of every driver<->worker channel
    /// originate kHeartbeat probes when send-idle and declare the peer
    /// dead after `deadline_ms` of total silence: the driver hands a
    /// silent worker to recovery (or fails the session), a worker whose
    /// driver went silent errors out and exits instead of lingering, and
    /// outbound peer links inherit the same knobs. The deadline also paces
    /// the driver's stalled-wait re-sends (lost match requests, flushes,
    /// traffic requests) and the sites' kSeqGap starvation reports, so no
    /// federated wait can block unboundedly on a silent peer.
    /// heartbeat_every_ms <= 0 disables origination; deadline_ms <= 0
    /// disables detection and re-sends (pre-v3 behavior).
    struct Liveness {
      std::int64_t heartbeat_every_ms = 500;
      std::int64_t deadline_ms = 30'000;
    };
    Liveness liveness;
    /// Durable run journal (src/journal): when `dir` is non-empty the
    /// driver persists its recovery state — registration frames, routed
    /// executes, periodic engine-state checkpoints, delivered-result
    /// floors — to an append-only segment file per checkpoint epoch, so a
    /// kill -9'd *driver* restarts with Cosmos::resume_federated and the
    /// combined output stays byte-identical to push(). Independent of
    /// Recovery (worker restart): either works without the other.
    struct Journal {
      std::string dir;  ///< empty = journaling off
      /// Mirrors journal::Fsync (own copy so cosmos.h need not pull the
      /// journal headers into every consumer).
      enum class Fsync : std::uint8_t { kNever, kCommit, kChunk, kEvery };
      /// Process death never loses write()n data; fsync is for machine
      /// crashes. Default syncs checkpoint commits only.
      Fsync fsync = Fsync::kCommit;
      /// Stream-time period between journal checkpoints (same keep-mode
      /// kMigrateOut cut as Recovery's). <= 0: only the initial commit is
      /// taken, so resume replays from the top of the run.
      stream::Timestamp checkpoint_every_ms = 0;
    };
    Journal journal;
    /// Bounded in-memory retention of the driver's data_log and delivered
    /// buffers. A checkpoint already truncates both to its cut; this knob
    /// additionally advances the all-workers-acked floor *between*
    /// checkpoints (a flush barrier at chunk boundaries, no state pull),
    /// pruning data-log entries every worker proved applied. <= 0 leaves
    /// pruning to checkpoints alone.
    struct Retention {
      stream::Timestamp floor_every_ms = 0;
    };
    Retention retention;
    /// Deterministic network fault injection: at stream time `at_ms`
    /// (applied at the next chunk boundary, like migrations) the
    /// fault::FaultPlan parsed from `plan` is installed on the driver's
    /// channel to `worker` with fresh frame counters. `send:` rules act on
    /// driver->worker frames, `recv:` rules on worker->driver frames. A
    /// recovery respawn gets a fresh, fault-free channel. Worker-side
    /// schedules (own channel / peer links) are spawned via cosmos_noded
    /// --fault-driver / --fault-peer instead.
    struct FaultEvent {
      stream::Timestamp at_ms = 0;
      std::size_t worker = 0;
      std::string plan;  ///< fault::FaultPlan::parse spec
    };
    std::vector<FaultEvent> faults;  ///< in at_ms order
    /// Test hook: invoked after each driver chunk is dispatched, with the
    /// 0-based chunk index. The chaos tests use it to SIGKILL a worker at
    /// a deterministic point mid-trace.
    std::function<void(std::size_t chunk)> on_chunk;
    /// Test hook: invoked on the driver thread right after recovery
    /// respawns `worker` as process `pid`, before the replay — the
    /// double-failure chaos tests use it to land a second failure at a
    /// deterministic recovery point.
    std::function<void(std::size_t worker, pid_t pid)> on_respawn;
  };

  /// Replays `events` across the worker processes in `options`. Throws
  /// std::runtime_error when a worker faults or disconnects mid-run (the
  /// session never hangs on a dead peer). The returned report's
  /// `federation` member carries the wire-level stats.
  RunReport run_federated(const std::vector<runtime::TraceEvent>& events,
                          const FederationOptions& options);

  /// Restarts a journaled federated run after a driver crash. Recovers the
  /// newest valid checkpoint from `options.journal.dir` (truncating a torn
  /// tail; rolling back past a corrupt segment; throwing a typed
  /// journal::Error when nothing is recoverable), spawns a fresh worker
  /// fleet on the journaled endpoints, replays the journaled registrations
  /// and executes through the ordinary seq-dedup machinery, suppresses the
  /// results the crashed run already delivered, and resumes ingesting
  /// `events` — the same full trace the original run was given — from the
  /// journaled cut. Options recorded in the journal (worker count,
  /// batch_size, tick_ms, worker_shards, peer_links) override `options`;
  /// scripted migrations and fault schedules are cleared (their stream-time
  /// cues may predate the cut). The pre-crash and resumed runs' combined
  /// deliveries are byte-identical to push().
  RunReport resume_federated(const std::vector<runtime::TraceEvent>& events,
                             const FederationOptions& options);

  /// Link traffic merged across the broker's per-stream partitions. Must
  /// not be called while run() is executing (partitions are then owned by
  /// the shards).
  [[nodiscard]] pubsub::TrafficStats traffic() const {
    return broker_.traffic();
  }
  void reset_traffic() noexcept { broker_.reset_traffic(); }

  /// Number of deployed (merged) execution units; <= submitted queries.
  [[nodiscard]] std::size_t deployed_units() const noexcept {
    return units_.size();
  }
  [[nodiscard]] std::size_t submitted_queries() const noexcept {
    return queries_.size();
  }
  [[nodiscard]] pubsub::BrokerNetwork& broker() noexcept { return broker_; }

 private:
  /// The driver half of a federated run (defined in federation.cpp): the
  /// worker channels, reader-shared response state, the in-flight chunk
  /// window and the migration protocol.
  struct Fed;

  struct Unit {
    std::uint32_t id = 0;
    NodeId host;
    query::QuerySpec spec;  ///< the covering query actually running
    std::vector<QueryId> members;
    std::string result_stream;
    std::unique_ptr<query::CompiledQuery> plan;
    std::vector<SubscriptionId> p1_subs;
    std::size_t result_tap = 0;
  };
  struct UserQuery {
    query::QuerySpec spec;
    ResultCallback callback;
    std::uint32_t unit = UINT32_MAX;
    SubscriptionId p2_sub;
    /// Cached projection of the unit's result columns onto this query's.
    std::vector<std::size_t> p2_keep;
  };

  /// A result tuple emitted by a shard engine, pending p2 delivery on the
  /// driver thread.
  struct ResultEvent {
    std::string stream;
    stream::Tuple tuple;
    /// Ingest stamp of the chunk that produced this result (0 if unknown);
    /// the driver records now_ns() - ingest_ns at p2 delivery.
    std::uint64_t ingest_ns = 0;
  };

  stream::Engine& engine_at(NodeId host);
  void deploy_unit(Unit& unit);
  void teardown_unit(Unit& unit);
  void wire_member(UserQuery& uq, Unit& unit);
  /// p2 leg: routes a result-stream tuple to its member queries' callbacks.
  void deliver_result(const std::string& result_stream,
                      const stream::Tuple& tuple);
  /// Pipelines one driver chunk through match → route → dispatch: ships
  /// each run to the shard owning its stream's broker partition for
  /// subscription matching, waits for the chunk's match barrier, then
  /// turns the pre-matched deliveries into per-engine run slices and hands
  /// them to the engines' shards. `shard_of` is keyed by NodeId::value()
  /// (the runtime's opaque engine id) so the adaptation subsystem can
  /// share the map; it also pins partition owners (publisher nodes).
  void dispatch_chunk(
      runtime::Chunk&& chunk, runtime::Runtime& rt,
      const std::unordered_map<std::uint64_t, std::size_t>& shard_of,
      RunReport& report);
  /// Total window extent (ms) of the units hosted at `node` — the state
  /// model's input for planning-time migration cost.
  [[nodiscard]] double host_window_extent_ms(NodeId node) const;
  /// Live join-state bytes of the units hosted at `node`, *measured*: the
  /// serialized size of the state a migration would actually ship (the
  /// wire handoff payload), not a tuples-times-constant estimate. Only
  /// safe while no shard worker is executing that node's engine (the
  /// migrator calls it post-drain).
  [[nodiscard]] double host_state_bytes(NodeId node) const;

  std::vector<NodeId> nodes_;
  pubsub::BrokerNetwork broker_;
  std::map<NodeId, std::unique_ptr<stream::Engine>> engines_;
  std::map<std::uint32_t, Unit> units_;
  std::unordered_map<QueryId, UserQuery> queries_;
  /// p2 subscription id -> owning query (for delivery dispatch).
  std::unordered_map<SubscriptionId, QueryId> p2_owner_;
  std::uint32_t next_unit_id_ = 0;
  std::uint32_t unit_version_ = 0;
  bool enable_result_sharing_ = true;
  /// Non-null while run() is active: shard engines park result tuples here
  /// instead of delivering inline (delivery happens on the driver thread).
  /// Set before workers start and cleared after they join, so shard threads
  /// always observe the run-mode value.
  runtime::MpscBuffer<ResultEvent>* active_results_ = nullptr;
  std::size_t results_delivered_ = 0;
};

}  // namespace cosmos::middleware
