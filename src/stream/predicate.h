// Boolean predicate expressions over one or two bound tuples.
//
// Predicates serve three masters: query execution (filter/join operators),
// pub/sub subscription filters, and the containment/merging analysis in
// src/query. They are immutable trees shared via shared_ptr.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "stream/schema.h"
#include "stream/value.h"

namespace cosmos::stream {

enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

[[nodiscard]] const char* to_string(CmpOp op) noexcept;
/// a <op> b given compare() result sign.
[[nodiscard]] bool apply_cmp(CmpOp op, int cmp_sign) noexcept;
/// The op with operands swapped: a op b  <=>  b op' a.
[[nodiscard]] CmpOp flip(CmpOp op) noexcept;

/// Reference to a field of an aliased stream, e.g. S1.snowHeight.
/// An empty alias matches whatever single binding is in scope.
struct FieldRef {
  std::string alias;
  std::string field;

  [[nodiscard]] std::string to_string() const {
    return alias.empty() ? field : alias + "." + field;
  }
  friend bool operator==(const FieldRef&, const FieldRef&) = default;
};

/// Evaluation context: one tuple per alias. `timestamp` is exposed as the
/// pseudo-field "timestamp" if the schema does not define it.
struct Binding {
  std::string alias;
  const Schema* schema = nullptr;
  const Tuple* tuple = nullptr;
};

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

/// Immutable predicate node.
class Predicate {
 public:
  enum class Kind {
    kTrue,
    kCompareConst,
    kCompareField,
    kTimeBand,
    kAnd,
    kOr,
    kNot
  };

  virtual ~Predicate() = default;
  [[nodiscard]] virtual Kind kind() const noexcept = 0;
  /// Evaluates against the bound tuples; throws std::invalid_argument if a
  /// referenced alias/field is missing.
  [[nodiscard]] virtual bool eval(const std::vector<Binding>& env) const = 0;
  [[nodiscard]] virtual std::string to_string() const = 0;

  // ---- factories ----
  [[nodiscard]] static PredicatePtr always_true();
  /// field <op> constant
  [[nodiscard]] static PredicatePtr cmp(FieldRef lhs, CmpOp op, Value rhs);
  /// field <op> field (join predicate)
  [[nodiscard]] static PredicatePtr cmp(FieldRef lhs, CmpOp op, FieldRef rhs);
  /// 0 <= newer - older <= band_ms  (both resolved as integral timestamps).
  /// This is how window constraints are re-imposed on merged result streams
  /// (paper Section 2.1, subscriptions p3_2/p4_2).
  [[nodiscard]] static PredicatePtr time_band(FieldRef newer, FieldRef older,
                                              std::int64_t band_ms);
  [[nodiscard]] static PredicatePtr conj(std::vector<PredicatePtr> children);
  [[nodiscard]] static PredicatePtr disj(std::vector<PredicatePtr> children);
  [[nodiscard]] static PredicatePtr negate(PredicatePtr child);
};

/// field <op> const leaf; exposed for analysis (containment, pub/sub).
class CompareConst final : public Predicate {
 public:
  CompareConst(FieldRef lhs, CmpOp op, Value rhs)
      : lhs_(std::move(lhs)), op_(op), rhs_(std::move(rhs)) {}
  [[nodiscard]] Kind kind() const noexcept override {
    return Kind::kCompareConst;
  }
  [[nodiscard]] bool eval(const std::vector<Binding>& env) const override;
  [[nodiscard]] std::string to_string() const override;

  [[nodiscard]] const FieldRef& lhs() const noexcept { return lhs_; }
  [[nodiscard]] CmpOp op() const noexcept { return op_; }
  [[nodiscard]] const Value& rhs() const noexcept { return rhs_; }

 private:
  FieldRef lhs_;
  CmpOp op_;
  Value rhs_;
};

/// field <op> field leaf.
class CompareField final : public Predicate {
 public:
  CompareField(FieldRef lhs, CmpOp op, FieldRef rhs)
      : lhs_(std::move(lhs)), op_(op), rhs_(std::move(rhs)) {}
  [[nodiscard]] Kind kind() const noexcept override {
    return Kind::kCompareField;
  }
  [[nodiscard]] bool eval(const std::vector<Binding>& env) const override;
  [[nodiscard]] std::string to_string() const override;

  [[nodiscard]] const FieldRef& lhs() const noexcept { return lhs_; }
  [[nodiscard]] CmpOp op() const noexcept { return op_; }
  [[nodiscard]] const FieldRef& rhs() const noexcept { return rhs_; }

 private:
  FieldRef lhs_;
  CmpOp op_;
  FieldRef rhs_;
};

/// 0 <= newer - older <= band_ms.
class TimeBand final : public Predicate {
 public:
  TimeBand(FieldRef newer, FieldRef older, std::int64_t band_ms)
      : newer_(std::move(newer)), older_(std::move(older)), band_ms_(band_ms) {}
  [[nodiscard]] Kind kind() const noexcept override { return Kind::kTimeBand; }
  [[nodiscard]] bool eval(const std::vector<Binding>& env) const override;
  [[nodiscard]] std::string to_string() const override;

  [[nodiscard]] const FieldRef& newer() const noexcept { return newer_; }
  [[nodiscard]] const FieldRef& older() const noexcept { return older_; }
  [[nodiscard]] std::int64_t band_ms() const noexcept { return band_ms_; }

 private:
  FieldRef newer_;
  FieldRef older_;
  std::int64_t band_ms_;
};

class BoolJunction final : public Predicate {
 public:
  BoolJunction(Kind kind, std::vector<PredicatePtr> children)
      : kind_(kind), children_(std::move(children)) {}
  [[nodiscard]] Kind kind() const noexcept override { return kind_; }
  [[nodiscard]] bool eval(const std::vector<Binding>& env) const override;
  [[nodiscard]] std::string to_string() const override;
  [[nodiscard]] const std::vector<PredicatePtr>& children() const noexcept {
    return children_;
  }

 private:
  Kind kind_;
  std::vector<PredicatePtr> children_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr child) : child_(std::move(child)) {}
  [[nodiscard]] Kind kind() const noexcept override { return Kind::kNot; }
  [[nodiscard]] bool eval(const std::vector<Binding>& env) const override {
    return !child_->eval(env);
  }
  [[nodiscard]] std::string to_string() const override {
    return "NOT (" + child_->to_string() + ")";
  }
  [[nodiscard]] const PredicatePtr& child() const noexcept { return child_; }

 private:
  PredicatePtr child_;
};

/// Looks up a field value in the environment. Handles the implicit
/// "timestamp" pseudo-field. Throws std::invalid_argument when unresolvable.
[[nodiscard]] Value resolve_field(const FieldRef& ref,
                                  const std::vector<Binding>& env);

/// Collects all CompareConst leaves of a conjunction-only tree; returns
/// false if the tree contains OR/NOT (non-conjunctive).
bool collect_conjuncts(const PredicatePtr& p,
                       std::vector<PredicatePtr>& out) noexcept;

}  // namespace cosmos::stream
