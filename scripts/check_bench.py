#!/usr/bin/env python3
"""Gate bench regressions against a committed baseline.

Usage:
    check_bench.py CURRENT.json BASELINE.json --metrics m1,m2 [--tolerance 0.2]

Both files are the flat {"metric": number} JSON written by
bench::write_bench_json. For each named metric the current value must be at
least (1 - tolerance) x the baseline value (higher = better; gate on
ratio-style metrics such as speedups, which are stable across hardware,
rather than absolute tuples/s).
"""
import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--metrics", required=True,
                    help="comma-separated metric names to gate on")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional regression (default 0.20)")
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    failed = False
    for name in args.metrics.split(","):
        name = name.strip()
        if name not in baseline:
            print(f"!! {name}: missing from baseline (typo in --metrics, "
                  f"or stale baseline?)")
            failed = True
            continue
        if name not in current:
            print(f"!! {name}: missing from current results")
            failed = True
            continue
        floor = (1.0 - args.tolerance) * baseline[name]
        ok = current[name] >= floor
        print(f"{'ok' if ok else '!!'} {name}: current={current[name]:.4g} "
              f"baseline={baseline[name]:.4g} floor={floor:.4g}")
        failed |= not ok
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
