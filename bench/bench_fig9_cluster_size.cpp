// Figure 9 — Effect of the cluster size parameter k.
//
// (a) communication cost of the initial distribution for k in {2,4,8,16}
// (b) online insertion throughput at the root coordinator.
// Expected shape: larger k -> better distribution quality (fewer coarsening
// levels) but lower insertion throughput (the root weighs more children).
#include <cstdio>

#include "bench_common.h"

using namespace cosmos;
using namespace cosmos::bench;

int main() {
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  const std::size_t nq =
      std::max<std::size_t>(500, static_cast<std::size_t>(30'000 * scale));
  const std::size_t probes =
      std::max<std::size_t>(200, static_cast<std::size_t>(5'000 * scale));

  std::printf("# Fig 9: cluster size parameter (scale=%.2f seed=%llu "
              "queries=%zu)\n",
              scale, static_cast<unsigned long long>(seed), nq);
  std::printf("%4s %8s %16s %22s\n", "k", "height", "comm-cost",
              "insert-throughput(q/s)");
  for (const std::size_t k : {2, 4, 8, 16}) {
    SimSetup setup{scale, k, seed};
    const auto profiles = setup.workload->make_queries(nq);
    auto d = setup.make_distributor(seed + 1);
    d.distribute(profiles);
    const double cost = setup.pairwise_total(d.placement(), d.profiles());

    const auto inserts = setup.workload->make_queries(probes);
    const Stopwatch watch;
    for (const auto& p : inserts) d.insert_query(p);
    const double secs = watch.seconds();
    std::printf("%4zu %8d %16.4e %22.0f\n", k, setup.tree->height(), cost,
                static_cast<double>(probes) / secs);
    std::fflush(stdout);
  }
  return 0;
}
