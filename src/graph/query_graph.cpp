#include "graph/query_graph.h"

#include <stdexcept>

namespace cosmos::graph {

void ProxyRates::add(NodeId proxy, double rate) {
  for (auto& [node, r] : rates) {
    if (node == proxy) {
      r += rate;
      return;
    }
  }
  rates.emplace_back(proxy, rate);
}

double ProxyRates::toward(NodeId node) const noexcept {
  for (const auto& [proxy, r] : rates) {
    if (proxy == node) return r;
  }
  return 0.0;
}

void ProxyRates::merge(const ProxyRates& other) {
  for (const auto& [proxy, r] : other.rates) add(proxy, r);
}

double ProxyRates::total() const noexcept {
  double sum = 0.0;
  for (const auto& [proxy, r] : rates) sum += r;
  return sum;
}

QueryGraph::VertexIndex QueryGraph::add_vertex(QueryVertex v) {
  vertices_.push_back(std::move(v));
  adj_.emplace_back();
  return static_cast<VertexIndex>(vertices_.size() - 1);
}

void QueryGraph::add_edge(VertexIndex a, VertexIndex b, double weight) {
  if (a == b) throw std::invalid_argument{"QueryGraph: self edge"};
  if (a >= size() || b >= size()) {
    throw std::invalid_argument{"QueryGraph: vertex out of range"};
  }
  if (weight == 0.0) return;
  for (auto& e : adj_[a]) {
    if (e.to == b) {
      e.weight += weight;
      for (auto& r : adj_[b]) {
        if (r.to == a) {
          r.weight += weight;
          return;
        }
      }
    }
  }
  adj_[a].push_back({b, weight});
  adj_[b].push_back({a, weight});
}

void QueryGraph::set_edge(VertexIndex a, VertexIndex b, double weight) {
  if (a == b) throw std::invalid_argument{"QueryGraph: self edge"};
  for (auto& e : adj_[a]) {
    if (e.to == b) {
      e.weight = weight;
      for (auto& r : adj_[b]) {
        if (r.to == a) r.weight = weight;
      }
      return;
    }
  }
  adj_[a].push_back({b, weight});
  adj_[b].push_back({a, weight});
}

double QueryGraph::total_query_weight() const noexcept {
  double total = 0.0;
  for (const auto& v : vertices_) {
    if (!v.is_n()) total += v.weight;
  }
  return total;
}

std::size_t QueryGraph::edge_count() const noexcept {
  std::size_t degree_sum = 0;
  for (const auto& nbrs : adj_) degree_sum += nbrs.size();
  return degree_sum / 2;
}

QueryGraph::VertexIndex QueryGraph::find_network_vertex(
    NodeId node) const noexcept {
  for (VertexIndex i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].is_n() && vertices_[i].node == node) return i;
  }
  return kNone;
}

QueryGraph::VertexIndex QueryGraph::ensure_network_vertex(NodeId node) {
  const VertexIndex existing = find_network_vertex(node);
  if (existing != kNone) return existing;
  QueryVertex v;
  v.kind = QVertexKind::kNetwork;
  v.node = node;
  return add_vertex(std::move(v));
}

}  // namespace cosmos::graph
