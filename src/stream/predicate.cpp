#include "stream/predicate.h"

#include <stdexcept>

namespace cosmos::stream {

const char* to_string(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
  }
  return "?";
}

bool apply_cmp(CmpOp op, int cmp_sign) noexcept {
  switch (op) {
    case CmpOp::kLt: return cmp_sign < 0;
    case CmpOp::kLe: return cmp_sign <= 0;
    case CmpOp::kGt: return cmp_sign > 0;
    case CmpOp::kGe: return cmp_sign >= 0;
    case CmpOp::kEq: return cmp_sign == 0;
    case CmpOp::kNe: return cmp_sign != 0;
  }
  return false;
}

CmpOp flip(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;  // Eq/Ne are symmetric
  }
}

Value resolve_field(const FieldRef& ref, const std::vector<Binding>& env) {
  for (const Binding& b : env) {
    if (!ref.alias.empty() && ref.alias != b.alias) continue;
    if (b.schema == nullptr || b.tuple == nullptr) {
      throw std::invalid_argument{"resolve_field: unbound alias " + b.alias};
    }
    if (const auto idx = b.schema->index_of(ref.field)) {
      return b.tuple->at(*idx);
    }
    if (ref.field == "timestamp") return Value{b.tuple->ts};
    if (!ref.alias.empty()) break;  // alias matched but field missing
  }
  throw std::invalid_argument{"resolve_field: cannot resolve " +
                              ref.to_string()};
}

namespace {

class TruePredicate final : public Predicate {
 public:
  [[nodiscard]] Kind kind() const noexcept override { return Kind::kTrue; }
  [[nodiscard]] bool eval(const std::vector<Binding>&) const override {
    return true;
  }
  [[nodiscard]] std::string to_string() const override { return "TRUE"; }
};

}  // namespace

PredicatePtr Predicate::always_true() {
  static const auto instance = std::make_shared<TruePredicate>();
  return instance;
}

PredicatePtr Predicate::cmp(FieldRef lhs, CmpOp op, Value rhs) {
  return std::make_shared<CompareConst>(std::move(lhs), op, std::move(rhs));
}

PredicatePtr Predicate::cmp(FieldRef lhs, CmpOp op, FieldRef rhs) {
  return std::make_shared<CompareField>(std::move(lhs), op, std::move(rhs));
}

PredicatePtr Predicate::time_band(FieldRef newer, FieldRef older,
                                  std::int64_t band_ms) {
  return std::make_shared<TimeBand>(std::move(newer), std::move(older),
                                    band_ms);
}

bool TimeBand::eval(const std::vector<Binding>& env) const {
  const std::int64_t tn = resolve_field(newer_, env).as_int();
  const std::int64_t to = resolve_field(older_, env).as_int();
  const std::int64_t delta = tn - to;
  return delta >= 0 && delta <= band_ms_;
}

std::string TimeBand::to_string() const {
  return "0 <= " + newer_.to_string() + " - " + older_.to_string() +
         " <= " + std::to_string(band_ms_);
}

PredicatePtr Predicate::conj(std::vector<PredicatePtr> children) {
  if (children.empty()) return always_true();
  if (children.size() == 1) return children.front();
  return std::make_shared<BoolJunction>(Kind::kAnd, std::move(children));
}

PredicatePtr Predicate::disj(std::vector<PredicatePtr> children) {
  if (children.empty()) return always_true();
  if (children.size() == 1) return children.front();
  return std::make_shared<BoolJunction>(Kind::kOr, std::move(children));
}

PredicatePtr Predicate::negate(PredicatePtr child) {
  return std::make_shared<NotPredicate>(std::move(child));
}

bool CompareConst::eval(const std::vector<Binding>& env) const {
  return apply_cmp(op_, resolve_field(lhs_, env).compare(rhs_));
}

std::string CompareConst::to_string() const {
  return lhs_.to_string() + " " + cosmos::stream::to_string(op_) + " " +
         rhs_.to_string();
}

bool CompareField::eval(const std::vector<Binding>& env) const {
  return apply_cmp(op_,
                   resolve_field(lhs_, env).compare(resolve_field(rhs_, env)));
}

std::string CompareField::to_string() const {
  return lhs_.to_string() + " " + cosmos::stream::to_string(op_) + " " +
         rhs_.to_string();
}

bool BoolJunction::eval(const std::vector<Binding>& env) const {
  if (kind_ == Kind::kAnd) {
    for (const auto& c : children_) {
      if (!c->eval(env)) return false;
    }
    return true;
  }
  for (const auto& c : children_) {
    if (c->eval(env)) return true;
  }
  return false;
}

std::string BoolJunction::to_string() const {
  std::string out = "(";
  const char* sep = kind_ == Kind::kAnd ? " AND " : " OR ";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i != 0) out += sep;
    out += children_[i]->to_string();
  }
  return out + ")";
}

bool collect_conjuncts(const PredicatePtr& p,
                       std::vector<PredicatePtr>& out) noexcept {
  switch (p->kind()) {
    case Predicate::Kind::kTrue:
      return true;
    case Predicate::Kind::kCompareConst:
    case Predicate::Kind::kCompareField:
    case Predicate::Kind::kTimeBand:
      out.push_back(p);
      return true;
    case Predicate::Kind::kAnd: {
      const auto& junction = static_cast<const BoolJunction&>(*p);
      for (const auto& c : junction.children()) {
        if (!collect_conjuncts(c, out)) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace cosmos::stream
