// Driver-crash durability differential: a federated driver SIGKILLed at a
// deterministic chunk boundary must be restartable with
// Cosmos::resume_federated from its on-disk journal, and the pre-crash plus
// resumed runs' combined per-query result sequences must be byte-identical
// to the synchronous push() oracle — across seeds, worker counts, star and
// peer-link routing, and with mid-run checkpoints rolling journal segments.
//
// Harness shape: the push() baseline is computed first (single-threaded),
// then the test fork()s. The child runs the federated driver with
// journaling on, appending every delivered result to a shared file (each
// line write()n before the callback returns, so kill -9 loses nothing),
// and SIGKILLs itself from the on_chunk hook. The parent reaps the child,
// kills + reaps the worker fleet (NodeProcess::kill is the endpoint-free
// barrier), then resumes from the journal in-process and compares the
// concatenation.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cosmos/cosmos.h"
#include "cql/parser.h"
#include "journal/journal.h"
#include "node/spawn.h"
#include "sim/workload.h"
#include "support/random_workload.h"

namespace cosmos::middleware {
namespace {

using testsupport::ResultLog;
using testsupport::RandomWorkload;
using testsupport::build_system;
using testsupport::make_workload;
using testsupport::station;

struct Fleet {
  std::vector<node::NodeProcess> procs;
  std::vector<std::string> endpoints;
};

Fleet spawn_fleet(std::size_t n, const std::string& tag) {
  static int counter = 0;
  Fleet fleet;
  const std::string noded = node::default_noded_path();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string endpoint = "unix:/tmp/cosmos_durtest_" + tag + "_" +
                                 std::to_string(::getpid()) + "_" +
                                 std::to_string(counter++) + ".sock";
    fleet.procs.push_back(node::spawn_noded(noded, endpoint));
    fleet.endpoints.push_back(endpoint);
  }
  return fleet;
}

/// build_system with a caller-supplied delivery callback (the shared
/// helper hard-wires an in-memory ResultLog; the crash child needs a
/// file-backed one).
std::unique_ptr<Cosmos> build_system_cb(
    const RandomWorkload& w,
    const std::function<void(QueryId, const stream::Tuple&)>& cb) {
  auto sys = std::make_unique<Cosmos>(w.nodes, w.lat);
  for (std::size_t st = 0; st < w.stations; ++st) {
    sys->register_source(station(st), sim::sensor_schema(), w.nodes[st % 2]);
  }
  std::size_t qid = 0;
  for (const auto& [text, host, proxy] : w.queries) {
    const QueryId id{static_cast<QueryId::value_type>(qid++)};
    sys->submit(cql::parse_query(text, id, proxy), host, cb);
  }
  return sys;
}

std::string result_line(const stream::Tuple& t) {
  std::string line = std::to_string(t.ts);
  for (const auto& v : t.values) line += "|" + v.to_string();
  return line;
}

/// Reads the child's crash-surviving result file back into a ResultLog.
/// Format: one "<query id>\t<result line>\n" per delivered tuple.
ResultLog read_result_file(const std::string& path) {
  ResultLog log;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto tab = line.find('\t');
    if (tab == std::string::npos) {
      ADD_FAILURE() << "malformed result line: " << line;
      continue;
    }
    const auto q = static_cast<QueryId::value_type>(
        std::strtoull(line.substr(0, tab).c_str(), nullptr, 10));
    log[QueryId{q}].push_back(line.substr(tab + 1));
  }
  return log;
}

std::string fresh_dir(const std::string& what) {
  std::string tmpl = "/tmp/cosmos_dur_" + what + "_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    throw std::runtime_error{"mkdtemp failed"};
  }
  return tmpl;
}

struct CrashConfig {
  std::uint64_t seed = 1;
  std::size_t workers = 2;
  bool peer_links = false;
  /// SIGKILL after this chunk dispatches. Must exceed the in-flight window
  /// (pinned to 2 below): a chunk's resume marker is journaled only when it
  /// *retires*, so an earlier kill would resume from the initial commit and
  /// never exercise a nonzero cut.
  std::size_t kill_chunk = 5;
  stream::Timestamp checkpoint_ms = 0;  ///< journal checkpoint cadence
};

/// The full kill -9 + resume differential for one configuration. Child exit
/// protocol: death by SIGKILL = the crash landed; exit 77 = the trace was
/// too short to reach kill_chunk (a config bug worth failing loudly on).
void run_crash_resume_case(const CrashConfig& cfg, const std::string& tag) {
  SCOPED_TRACE("seed=" + std::to_string(cfg.seed) +
               " workers=" + std::to_string(cfg.workers) +
               " peer=" + std::to_string(cfg.peer_links) +
               " ckpt_ms=" + std::to_string(cfg.checkpoint_ms));
  const auto w = make_workload(cfg.seed);

  ResultLog push_log;
  {
    auto sys = build_system(w, push_log);
    for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
  }

  const std::string journal_dir = fresh_dir(tag);
  const std::string results_path = journal_dir + "/pre_crash_results.txt";
  auto fleet = spawn_fleet(cfg.workers, tag);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // --- crash child: journaled federated run, suicide at kill_chunk.
    std::ofstream out(results_path, std::ios::app);
    auto sys = build_system_cb(w, [&](QueryId q, const stream::Tuple& t) {
      out << q.value() << '\t' << result_line(t) << '\n' << std::flush;
    });
    Cosmos::FederationOptions opts;
    opts.workers = fleet.endpoints;
    opts.batch_size = 16;  // small chunks: the kill lands mid-trace
    opts.tick_ms = 20 * 60'000;
    opts.max_inflight_chunks = 2;
    opts.peer_links = cfg.peer_links;
    opts.journal.dir = journal_dir;
    opts.journal.checkpoint_every_ms = cfg.checkpoint_ms;
    opts.on_chunk = [&](std::size_t chunk) {
      if (chunk == cfg.kill_chunk) ::kill(::getpid(), SIGKILL);
    };
    try {
      (void)sys->run_federated(w.events, opts);
    } catch (...) {
      ::_exit(76);
    }
    ::_exit(77);  // ran to completion: the kill never landed
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child did not die on its own SIGKILL (status " << status << ")";

  // The orphaned fleet must be fully gone before resume re-binds the same
  // endpoints — NodeProcess::kill's reap is that barrier.
  for (auto& p : fleet.procs) p.kill();

  const ResultLog pre_crash = read_result_file(results_path);

  // COSMOS_DURABILITY_JOURNAL, when set, exports the first crashed run's
  // journal segments (pre-resume, exactly as the kill left them) for CI to
  // upload as an artifact.
  if (const char* exp = std::getenv("COSMOS_DURABILITY_JOURNAL")) {
    static bool exported = false;
    if (!exported) {
      exported = true;
      std::error_code ec;
      std::filesystem::create_directories(exp, ec);
      for (const auto& entry :
           std::filesystem::directory_iterator(journal_dir, ec)) {
        std::filesystem::copy_file(
            entry.path(), std::filesystem::path(exp) / entry.path().filename(),
            std::filesystem::copy_options::overwrite_existing, ec);
      }
    }
  }

  ResultLog resumed;
  Cosmos::RunReport report;
  {
    auto sys = build_system(w, resumed);
    Cosmos::FederationOptions opts;
    opts.journal.dir = journal_dir;
    // resume_federated spawns its own fleet on the journaled endpoints;
    // point it at the test build's daemon binary.
    opts.recovery.noded_path = node::default_noded_path();
    report = sys->resume_federated(w.events, opts);
  }
  EXPECT_GT(report.federation.resume_skipped_events, 0u);
  EXPECT_GT(report.federation.journal_bytes, 0u);

  // Byte-identity of the concatenation, per query.
  ResultLog combined = pre_crash;
  for (const auto& [q, lines] : resumed) {
    auto& dst = combined[q];
    dst.insert(dst.end(), lines.begin(), lines.end());
  }
  ASSERT_EQ(combined, push_log) << "crash+resume differential mismatch";

  std::error_code ec;
  std::filesystem::remove_all(journal_dir, ec);
}

TEST(FederationDurability, CrashAtChunkBoundaryResumesByteIdentical) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
      CrashConfig cfg;
      cfg.seed = seed;
      cfg.workers = workers;
      run_crash_resume_case(cfg, "star");
      if (HasFatalFailure()) return;
    }
  }
}

TEST(FederationDurability, CrashResumesByteIdenticalOverPeerLinks) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    CrashConfig cfg;
    cfg.seed = seed;
    cfg.workers = 2;
    cfg.peer_links = true;
    run_crash_resume_case(cfg, "peer");
    if (HasFatalFailure()) return;
  }
  CrashConfig cfg;
  cfg.seed = 3;
  cfg.workers = 4;
  cfg.peer_links = true;
  run_crash_resume_case(cfg, "peer4");
}

TEST(FederationDurability, LateCrashResumesFromRolledCheckpointSegment) {
  // Mid-run checkpoints roll journal segments; a late kill then resumes
  // from a rolled cut (replaying only the last epoch), not from the top.
  CrashConfig cfg;
  cfg.seed = 4;
  cfg.workers = 2;
  cfg.kill_chunk = 6;
  cfg.checkpoint_ms = 2 * 20 * 60'000;  // every ~2 chunks of stream time
  run_crash_resume_case(cfg, "rolled");
}

TEST(FederationDurability, ResumeOfCompletedRunDeliversNothingNew) {
  // Resume is idempotent at the limit: a journal whose run finished has
  // every result under the delivered floor, so the resumed run re-ingests
  // the empty trace suffix and suppresses all replay re-emissions.
  const auto w = make_workload(5);
  ResultLog push_log;
  {
    auto sys = build_system(w, push_log);
    for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
  }

  const std::string journal_dir = fresh_dir("completed");
  auto fleet = spawn_fleet(2, "completed");
  ResultLog fed_log;
  {
    auto sys = build_system(w, fed_log);
    Cosmos::FederationOptions opts;
    opts.workers = fleet.endpoints;
    opts.batch_size = 16;
    opts.tick_ms = 20 * 60'000;
    opts.journal.dir = journal_dir;
    const auto report = sys->run_federated(w.events, opts);
    EXPECT_GT(report.federation.journal_bytes, 0u);
    EXPECT_GT(report.federation.journal_fsyncs, 0u);
  }
  ASSERT_EQ(fed_log, push_log);
  for (auto& p : fleet.procs) p.kill();

  ResultLog resumed;
  {
    auto sys = build_system(w, resumed);
    Cosmos::FederationOptions opts;
    opts.journal.dir = journal_dir;
    opts.recovery.noded_path = node::default_noded_path();
    const auto report = sys->resume_federated(w.events, opts);
    EXPECT_EQ(report.federation.resume_skipped_events, w.events.size());
  }
  EXPECT_TRUE(resumed.empty()) << "completed-run resume re-delivered results";

  std::error_code ec;
  std::filesystem::remove_all(journal_dir, ec);
}

TEST(FederationDurability, ResumeWithoutJournalDirThrows) {
  const auto w = make_workload(1);
  ResultLog log;
  auto sys = build_system(w, log);
  Cosmos::FederationOptions opts;
  EXPECT_THROW((void)sys->resume_federated(w.events, opts),
               std::invalid_argument);
}

TEST(FederationDurability, ResumeOfCorruptJournalThrowsTyped) {
  // End-to-end face of the corruption matrix: resume_federated surfaces
  // recover()'s typed error instead of spawning anything.
  const std::string journal_dir = fresh_dir("corrupt");
  {
    journal::Meta meta;
    meta.endpoints = {"unix:/tmp/never_dialed.sock"};
    auto jw = journal::Writer::create(journal_dir, meta,
                                      journal::Writer::Options{});
    jw->commit_checkpoint({});
  }
  // Stamp a wrong format version into the only segment's header.
  const std::string seg = journal_dir + "/seg-00000001.cjl";
  {
    std::fstream f(seg, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(4);
    const char bad = static_cast<char>(journal::kFormatVersion + 9);
    f.write(&bad, 1);
  }

  const auto w = make_workload(1);
  ResultLog log;
  auto sys = build_system(w, log);
  Cosmos::FederationOptions opts;
  opts.journal.dir = journal_dir;
  try {
    (void)sys->resume_federated(w.events, opts);
    FAIL() << "resume of a version-skewed journal did not throw";
  } catch (const journal::Error& e) {
    EXPECT_EQ(e.code(), journal::ErrorCode::kBadVersion);
  }
  std::error_code ec;
  std::filesystem::remove_all(journal_dir, ec);
}

}  // namespace
}  // namespace cosmos::middleware
