#include "node/spawn.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <stdexcept>
#include <thread>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

namespace cosmos::node {

NodeProcess& NodeProcess::operator=(NodeProcess&& other) noexcept {
  if (this != &other) {
    kill();
    pid_ = std::exchange(other.pid_, -1);
    listen_address_ = std::move(other.listen_address_);
    exit_code_ = other.exit_code_;
    waited_ = std::exchange(other.waited_, false);
  }
  return *this;
}

NodeProcess::~NodeProcess() { (void)terminate(); }

namespace {

int decode_status(int status) {
  return WIFEXITED(status)     ? WEXITSTATUS(status)
         : WIFSIGNALED(status) ? -WTERMSIG(status)
                               : -1;
}

}  // namespace

int NodeProcess::wait() {
  if (waited_ || pid_ <= 0) return exit_code_;
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0) {
    if (errno != EINTR) {
      status = 0;
      break;
    }
  }
  exit_code_ = decode_status(status);
  waited_ = true;
  pid_ = -1;
  return exit_code_;
}

std::optional<int> NodeProcess::poll() {
  if (waited_) return exit_code_;
  if (pid_ <= 0) return std::nullopt;
  int status = 0;
  pid_t got = 0;
  while ((got = ::waitpid(pid_, &status, WNOHANG)) < 0) {
    if (errno != EINTR) return std::nullopt;
  }
  if (got == 0) return std::nullopt;  // still running
  exit_code_ = decode_status(status);
  waited_ = true;
  pid_ = -1;
  return exit_code_;
}

int NodeProcess::terminate(int grace_ms) {
  if (waited_ || pid_ <= 0) return exit_code_;
  ::kill(pid_, SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(grace_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto code = poll()) return *code;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill();  // grace expired: SIGKILL reaps promptly
  return exit_code_;
}

void NodeProcess::kill() {
  if (waited_ || pid_ <= 0) return;
  ::kill(pid_, SIGKILL);
  (void)wait();
}

void kill_and_reap(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno == EINTR) continue;
    break;  // ECHILD: another owner already reaped it — equally gone
  }
}

NodeProcess spawn_noded(const std::string& noded_path,
                        const std::string& listen_address,
                        const std::vector<std::string>& extra_args) {
  if (::access(noded_path.c_str(), X_OK) != 0) {
    throw std::runtime_error{"spawn_noded: not an executable: " + noded_path};
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error{"spawn_noded: fork failed"};
  }
  if (pid == 0) {
    std::vector<char*> child_argv;
    child_argv.push_back(const_cast<char*>(noded_path.c_str()));
    child_argv.push_back(const_cast<char*>("--listen"));
    child_argv.push_back(const_cast<char*>(listen_address.c_str()));
    for (const auto& arg : extra_args) {
      child_argv.push_back(const_cast<char*>(arg.c_str()));
    }
    child_argv.push_back(nullptr);
    ::execv(noded_path.c_str(), child_argv.data());
    _exit(127);  // exec failed; access() above makes this unlikely
  }
  return NodeProcess{pid, listen_address};
}

}  // namespace cosmos::node
