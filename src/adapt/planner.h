// Cost-based migration planning, the in-process Algorithm 3: when shard
// load imbalance crosses the threshold, greedily pick engine moves off the
// hottest shard onto the coolest, each move weighed as
//   net = critical-path reduction − state_bytes × migration_cost_per_byte,
// and stop when no move clears the minimum net gain. Purely functional
// over the monitor's loads — deterministic and unit-testable without a
// runtime.
#pragma once

#include <cstddef>
#include <vector>

#include "adapt/adapt.h"
#include "adapt/load_monitor.h"

namespace cosmos::adapt {

struct PlanResult {
  std::vector<Move> moves;
  double imbalance_before = 0.0;
  /// Modeled max/mean after the proposed moves (equals `imbalance_before`
  /// when no move was planned).
  double imbalance_after = 0.0;
};

class MigrationPlanner {
 public:
  explicit MigrationPlanner(const AdaptOptions& options)
      : options_(options) {}

  /// Plans up to max_moves_per_round moves over `shards` shards. Returns
  /// no moves when imbalance is below threshold, fewer than two shards
  /// exist, or no candidate clears the net-gain bar. Ties break toward the
  /// smallest engine id, keeping plans deterministic.
  [[nodiscard]] PlanResult plan(const std::vector<EngineLoad>& loads,
                                std::size_t shards) const;

 private:
  AdaptOptions options_;
};

}  // namespace cosmos::adapt
