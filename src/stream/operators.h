// Push-based streaming operators: filter, project, sliding-window join.
//
// Operators form a tree; each operator pushes produced tuples into its
// downstream consumer. Tuples are timestamp-ordered per input stream
// (enforced by the engine).
//
// Every operator has two entry shapes sharing one state:
//  - the scalar path (push/push_left/push_right) — one tuple in, sink
//    callbacks out; what push() mode and the unit tests drive;
//  - the batch path (push_batch*) — a whole runtime::TupleBatch plus a
//    selection vector (ascending row ids; nullptr = all rows) in, refined
//    selections or output batches out, with no per-row std::function hops.
// Predicates are compiled once at construction (stream/compiled_predicate.h):
// field references resolve to column slots at build time, so construction
// throws std::invalid_argument on fields the bound schemas cannot resolve.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "stream/compiled_predicate.h"
#include "stream/predicate.h"
#include "stream/schema.h"
#include "stream/window.h"

namespace cosmos::runtime {
class TupleBatch;
}

namespace cosmos::stream {

/// Downstream consumer of produced tuples (scalar path).
using Sink = std::function<void(const Tuple&)>;

/// Single-input filter: forwards tuples satisfying the predicate.
class FilterOp {
 public:
  /// `alias` is the name the predicate uses to reference this input.
  /// `virtual_ts_col` (when not SIZE_MAX) names the schema column that is
  /// absent from batch rows and evaluates to the row timestamp instead —
  /// the plan's appended "<alias>.timestamp" column, letting the batch
  /// path run directly over raw source batches without lifting them.
  /// Compiles the predicate at construction; throws std::invalid_argument
  /// on null arguments or unresolvable fields.
  FilterOp(std::string alias, const Schema* schema, PredicatePtr predicate,
           Sink sink, std::size_t virtual_ts_col = SIZE_MAX);

  void push(const Tuple& t);

  /// Batch path: evaluates the rows listed in `sel` (all rows when
  /// nullptr) and appends passing row ids to `out` in ascending order.
  /// The sink is not invoked — batch chaining is wired by the caller.
  void push_batch(const runtime::TupleBatch& batch,
                  const std::vector<std::uint32_t>* sel,
                  std::vector<std::uint32_t>& out);

  [[nodiscard]] std::size_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::size_t passed() const noexcept { return passed_; }

 private:
  std::string alias_;
  const Schema* schema_;
  PredicatePtr predicate_;
  CompiledPredicate compiled_;
  Sink sink_;
  std::size_t seen_ = 0;
  std::size_t passed_ = 0;
};

/// Single-input projection onto a subset of fields (by input index).
class ProjectOp {
 public:
  /// `virtual_ts_col`: as for FilterOp — a keep index equal to it reads
  /// the row timestamp on the batch path (scalar tuples carry the column
  /// physically).
  ProjectOp(std::vector<std::size_t> keep_indices, Sink sink,
            std::size_t virtual_ts_col = SIZE_MAX);

  void push(const Tuple& t);

  /// Batch path: appends the projection of the selected rows to `out`
  /// (the sink is not invoked).
  void push_batch(const runtime::TupleBatch& batch,
                  const std::vector<std::uint32_t>* sel,
                  runtime::TupleBatch& out);

 private:
  std::vector<std::size_t> keep_;
  Sink sink_;
  std::size_t virtual_ts_col_;
  std::vector<Value> row_scratch_;  ///< reused per batch row (no per-row alloc)
};

/// Two-input sliding-window join. On arrival of a tuple from one side it is
/// matched against the other side's window contents under the join
/// predicate; output tuples concatenate left then right values and carry the
/// newer timestamp.
///
/// Input contract: each side's tuples arrive in non-decreasing timestamp
/// order (the engine's per-stream rule), and no tuple is older than the
/// max timestamp already seen across *both* sides — the watermark. This is
/// exactly what the middleware guarantees (Cosmos::push documents global
/// order; runtime::Driver throws on violations). A standalone caller that
/// regresses one side's event time behind the other side's may find
/// watermark-pruned state no longer matching, where the old arrival-driven
/// prune would have (under-pruned) state still joining.
///
/// At construction the predicate's equality conjuncts over opposite sides
/// are extracted (split_equi_conjuncts) and each side keeps a hash index on
/// its key columns; probes then touch only key-equal candidates and re-check
/// the window plus the compiled residual predicate, falling back to the
/// O(window) scan (with the full compiled predicate) when no equality
/// conjunct exists or Options::use_hash_index is off. Both buffers are
/// pruned eagerly whenever the watermark — the max timestamp seen on either
/// input — advances, so an idle opposite side no longer pins stale state
/// (state_size feeds the migration planner's cost model).
class WindowJoinOp {
 public:
  struct Side {
    std::string alias;
    const Schema* schema = nullptr;
    WindowSpec window;
  };
  struct Options {
    /// Off forces the scanning probe everywhere — the semantic oracle the
    /// hash path is differentially tested (and benched) against.
    bool use_hash_index = true;
  };

  WindowJoinOp(Side left, Side right, PredicatePtr predicate, Sink sink);
  WindowJoinOp(Side left, Side right, PredicatePtr predicate, Sink sink,
               Options options);

  void push_left(const Tuple& t);
  void push_right(const Tuple& t);

  /// Batch path: pushes every selected row of `batch` (in order) through
  /// the same probe-then-insert machinery, appending join outputs to `out`
  /// instead of invoking the sink. When `lift_append_ts` is set the rows
  /// are raw source rows one column narrower than the side schema, whose
  /// lifted form appends the row timestamp — the plan's lift, fused into
  /// the join's own materialization.
  void push_batch_left(const runtime::TupleBatch& batch,
                       const std::vector<std::uint32_t>* sel,
                       bool lift_append_ts, runtime::TupleBatch& out);
  void push_batch_right(const runtime::TupleBatch& batch,
                        const std::vector<std::uint32_t>* sel,
                        bool lift_append_ts, runtime::TupleBatch& out);

  /// Advances the watermark (max input timestamp seen so far) and prunes
  /// both windows against it. Called implicitly by every push; exposed so
  /// an external clock can expire state on idle inputs too.
  void advance_watermark(Timestamp watermark);

  /// Serializable snapshot of the operator's live state: the watermark and
  /// both window buffers in arrival (== timestamp) order. This is the
  /// payload a migration ships; the hash index and sequence counters are
  /// derived state that import_state rebuilds by replaying the insert path,
  /// so export → import on an identically-constructed operator reproduces
  /// bit-identical future behavior.
  struct State {
    Timestamp watermark = INT64_MIN;
    std::vector<Tuple> left;
    std::vector<Tuple> right;
  };
  [[nodiscard]] State export_state() const;
  /// Replaces all live state with `state`. Tuples must be in the order
  /// export_state produced (arrival order); nothing is re-pruned here.
  void import_state(State state);

  [[nodiscard]] std::size_t left_state_size() const noexcept {
    return left_rt_.buf.size();
  }
  [[nodiscard]] std::size_t right_state_size() const noexcept {
    return right_rt_.buf.size();
  }
  [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }
  /// Number of extracted equality conjuncts (0 = scanning probe).
  [[nodiscard]] std::size_t equi_key_count() const noexcept {
    return keys_.size();
  }

 private:
  struct SideRuntime {
    std::deque<Tuple> buf;        ///< arrival order == timestamp order
    std::uint64_t first_seq = 0;  ///< seq of buf.front()
    std::uint64_t next_seq = 0;   ///< seq the next insert receives
    /// Equi-key hash -> ascending seqs of buffered tuples with that hash.
    std::unordered_map<std::size_t, std::deque<std::uint64_t>> index;
  };

  void push_one(Tuple t, bool is_left, runtime::TupleBatch* batch_out);
  void push_batch_side(const runtime::TupleBatch& batch,
                       const std::vector<std::uint32_t>* sel,
                       bool lift_append_ts, bool is_left,
                       runtime::TupleBatch& out);
  void probe(const Tuple& incoming, bool incoming_is_left,
             runtime::TupleBatch* batch_out);
  void emit(const Tuple& lt, const Tuple& rt, runtime::TupleBatch* batch_out);
  void prune_side(SideRuntime& s, const WindowSpec& window, bool is_left);
  [[nodiscard]] std::size_t key_hash(const Tuple& t, bool of_left) const;

  Side left_;
  Side right_;
  PredicatePtr predicate_;
  Sink sink_;
  Options options_;
  std::vector<EquiKey> keys_;
  /// Probe programs per incoming direction (bindings [incoming, other]):
  /// the full predicate for the scanning probe, the post-equi residual for
  /// the hash probe.
  CompiledPredicate full_left_in_;
  CompiledPredicate full_right_in_;
  CompiledPredicate residual_left_in_;
  CompiledPredicate residual_right_in_;
  bool hash_enabled_ = false;
  Timestamp watermark_ = INT64_MIN;
  SideRuntime left_rt_;
  SideRuntime right_rt_;
  std::vector<Value> row_scratch_;  ///< reused per emitted row
  std::size_t emitted_ = 0;
};

}  // namespace cosmos::stream
