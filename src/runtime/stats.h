// Per-shard and per-engine execution counters, the runtime's observability
// surface. Snapshots are taken by Runtime::stats(); aggregate helpers
// answer the two capacity-planning questions: how much total work ran
// (total_*) and how long the slowest shard was busy (max_busy_seconds —
// the parallel critical path the throughput bench reports). The per-engine
// slice is the data source of the adaptation subsystem (src/adapt/): the
// load monitor reads cumulative per-engine counters and differentiates
// across samples.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cosmos::runtime {

/// Cumulative counters for one engine (identified by the opaque
/// Task::engine_id the dispatcher supplies). Counters follow the engine
/// across migrations: Runtime::stats() merges a given id's history over
/// every shard it ever ran on.
struct EngineStats {
  std::uint64_t engine = 0;   ///< Task::engine_id this row aggregates
  std::uint64_t tuples = 0;   ///< tuples executed for this engine
  std::uint64_t batches = 0;  ///< batches (runs) executed
  std::uint64_t busy_ns = 0;  ///< worker thread CPU time in its tasks
  /// Portion of busy_ns spent in match-stage tasks (Task::match hooks) the
  /// dispatcher attributed to this id — for broker partitions, the id is
  /// the stream's publishing node, so the row follows the partition when
  /// adaptation migrates it across shards.
  std::uint64_t match_ns = 0;
};

struct ShardStats {
  std::uint64_t tuples = 0;   ///< tuples executed by this shard
  std::uint64_t batches = 0;  ///< batches (runs) executed
  std::uint64_t tasks = 0;    ///< queue entries consumed
  std::uint64_t busy_ns = 0;  ///< worker thread CPU time executing tasks
  /// Portion of busy_ns spent in match-stage tasks (Task::match hooks):
  /// subscription matching this shard ran on behalf of the ingest driver.
  std::uint64_t match_ns = 0;
  std::uint64_t match_tasks = 0;  ///< match-stage queue entries consumed
  /// Producer time spent blocked in dispatch() because this shard's queue
  /// was full — the backpressure signal.
  std::uint64_t stall_ns = 0;
  std::size_t max_queue_depth = 0;  ///< high-water mark of the input queue
};

/// A consistent point-in-time view of the runtime's counters. Each shard's
/// rows are read under that shard's stats mutex, so every per-shard and
/// per-engine value is internally consistent; the whole-runtime snapshot is
/// exact whenever the runtime is quiescent (after drain()/stop(), or
/// between chunks in the single-dispatcher discipline).
struct RuntimeStats {
  std::vector<ShardStats> shards;
  /// Per-engine rows, sorted by engine id (deterministic iteration); one
  /// row per engine id ever dispatched, merged across shards.
  std::vector<EngineStats> engines;

  /// Row for `engine`, or nullptr if it never ran. Binary search over the
  /// id-sorted rows: per-engine-per-sample callers (the load monitor's
  /// sampling loop) stay O(log n) as the engine population grows.
  [[nodiscard]] const EngineStats* engine(std::uint64_t id) const noexcept {
    const auto it = std::lower_bound(
        engines.begin(), engines.end(), id,
        [](const EngineStats& e, std::uint64_t v) { return e.engine < v; });
    return it != engines.end() && it->engine == id ? &*it : nullptr;
  }

  [[nodiscard]] std::uint64_t total_tuples() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s.tuples;
    return n;
  }
  [[nodiscard]] std::uint64_t total_batches() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s.batches;
    return n;
  }
  [[nodiscard]] double total_busy_seconds() const noexcept {
    std::uint64_t ns = 0;
    for (const auto& s : shards) ns += s.busy_ns;
    return static_cast<double>(ns) * 1e-9;
  }
  [[nodiscard]] double max_busy_seconds() const noexcept {
    std::uint64_t ns = 0;
    for (const auto& s : shards) ns = std::max(ns, s.busy_ns);
    return static_cast<double>(ns) * 1e-9;
  }
  [[nodiscard]] double total_stall_seconds() const noexcept {
    std::uint64_t ns = 0;
    for (const auto& s : shards) ns += s.stall_ns;
    return static_cast<double>(ns) * 1e-9;
  }
  /// Shard CPU spent in match-stage tasks across all shards — the work the
  /// broker-partition pipeline moved off the ingest driver.
  [[nodiscard]] double total_match_seconds() const noexcept {
    std::uint64_t ns = 0;
    for (const auto& s : shards) ns += s.match_ns;
    return static_cast<double>(ns) * 1e-9;
  }
};

}  // namespace cosmos::runtime
