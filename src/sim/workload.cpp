#include "sim/workload.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace cosmos::sim {

WorkloadGenerator::WorkloadGenerator(const net::Deployment& deployment,
                                     WorkloadParams params, std::uint64_t seed)
    : deployment_(&deployment),
      params_(params),
      rng_(seed),
      space_({}, {}),
      zipf_(params.num_substreams, params.zipf_theta) {
  if (deployment.sources.empty() || deployment.processors.empty()) {
    throw std::invalid_argument{"WorkloadGenerator: empty deployment"};
  }
  if (params.interest_min == 0 || params.interest_min > params.interest_max ||
      params.interest_max > params.num_substreams) {
    throw std::invalid_argument{"WorkloadGenerator: bad interest band"};
  }

  // Substreams randomly distributed over sources, rates uniform [min,max].
  std::vector<NodeId> origin(params.num_substreams);
  std::vector<double> rate(params.num_substreams);
  for (std::size_t i = 0; i < params.num_substreams; ++i) {
    origin[i] =
        deployment.sources[rng_.next_below(deployment.sources.size())];
    rate[i] = rng_.next_double(params.rate_min, params.rate_max);
  }
  space_ = query::SubstreamSpace{std::move(origin), std::move(rate)};

  // Per-group permutations give each group its own hot substreams. With
  // source affinity, a group's permutation is (noisily) ordered by a
  // group-specific preference over sources, so the hot region concentrates
  // on a few deployments — the zipf ranks then favor those sources'
  // substreams.
  permutations_.resize(params.groups);
  const double jitter_span =
      (1.0 - params.source_affinity) *
      static_cast<double>(deployment.sources.size());
  std::unordered_map<NodeId, std::size_t> source_index;
  for (std::size_t i = 0; i < deployment.sources.size(); ++i) {
    source_index.emplace(deployment.sources[i], i);
  }
  for (auto& perm : permutations_) {
    perm.resize(params.num_substreams);
    for (std::uint32_t i = 0; i < params.num_substreams; ++i) perm[i] = i;
    rng_.shuffle(perm);
    if (params.source_affinity > 0.0) {
      std::vector<std::size_t> pref(deployment.sources.size());
      for (std::size_t i = 0; i < pref.size(); ++i) pref[i] = i;
      rng_.shuffle(pref);  // the group's source preference order
      std::vector<double> key(params.num_substreams);
      for (std::uint32_t s = 0; s < params.num_substreams; ++s) {
        const auto src = source_index.at(
            space_.origin(SubstreamId{s}));
        key[s] = static_cast<double>(pref[src]) +
                 rng_.next_double(0.0, std::max(1e-9, jitter_span));
      }
      std::stable_sort(perm.begin(), perm.end(),
                       [&key](std::uint32_t a, std::uint32_t b) {
                         return key[a] < key[b];
                       });
    }
  }
}

query::InterestProfile WorkloadGenerator::make_query() {
  query::InterestProfile p;
  p.query = QueryId{next_query_id_++};
  p.proxy =
      deployment_->processors[rng_.next_below(deployment_->processors.size())];
  p.interest = BitVector{params_.num_substreams};

  const std::size_t group = rng_.next_below(permutations_.size());
  group_of_.push_back(group);
  const auto& perm = permutations_[group];
  const auto want = static_cast<std::size_t>(rng_.next_range(
      static_cast<std::int64_t>(params_.interest_min),
      static_cast<std::int64_t>(params_.interest_max)));
  std::size_t have = 0;
  while (have < want) {
    const std::size_t sub = perm[zipf_.sample(rng_)];
    if (!p.interest.test(sub)) {
      p.interest.set(sub);
      ++have;
    }
  }

  const double frac = rng_.next_double(params_.output_fraction_min,
                                       params_.output_fraction_max);
  output_fraction_.push_back(frac);
  const double input = p.input_rate(space_);
  p.output_rate = frac * input;
  p.load = query::kLoadPerByteRate * input;
  p.state_size = params_.state_per_input_rate * input;
  return p;
}

std::vector<query::InterestProfile> WorkloadGenerator::make_queries(
    std::size_t count) {
  std::vector<query::InterestProfile> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(make_query());
  return out;
}

std::vector<SubstreamId> WorkloadGenerator::perturb_rates(std::size_t count,
                                                          double factor) {
  if (factor <= 0) {
    throw std::invalid_argument{"perturb_rates: factor must be positive"};
  }
  std::vector<SubstreamId> affected;
  affected.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const SubstreamId s{static_cast<SubstreamId::value_type>(
        rng_.next_below(space_.size()))};
    space_.set_rate(s, space_.rate(s) * factor);
    affected.push_back(s);
  }
  return affected;
}

void WorkloadGenerator::refresh_profiles(
    std::vector<query::InterestProfile>& profiles) const {
  for (auto& p : profiles) {
    const double input = p.input_rate(space_);
    const double frac = p.query.value() < output_fraction_.size()
                            ? output_fraction_[p.query.value()]
                            : 0.15;
    p.output_rate = frac * input;
    p.load = query::kLoadPerByteRate * input;
    p.state_size = params_.state_per_input_rate * input;
  }
}

}  // namespace cosmos::sim
