#include "common/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace cosmos {
namespace {

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfDistribution(0, 0.8), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -0.1), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution z{100, 0.8};
  double sum = 0.0;
  for (std::size_t r = 0; r < 100; ++r) sum += z.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, PmfMonotoneDecreasing) {
  ZipfDistribution z{50, 0.8};
  for (std::size_t r = 1; r < 50; ++r) {
    EXPECT_GE(z.pmf(r - 1), z.pmf(r) - 1e-15);
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfDistribution z{10, 0.0};
  for (std::size_t r = 0; r < 10; ++r) EXPECT_NEAR(z.pmf(r), 0.1, 1e-12);
}

TEST(Zipf, SamplesInRange) {
  ZipfDistribution z{37, 0.8};
  Rng rng{5};
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(z.sample(rng), 37u);
}

TEST(Zipf, EmpiricalFrequenciesTrackPmf) {
  const std::size_t n = 20;
  ZipfDistribution z{n, 0.8};
  Rng rng{31};
  std::vector<int> counts(n, 0);
  const int samples = 200'000;
  for (int i = 0; i < samples; ++i) ++counts[z.sample(rng)];
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / samples, z.pmf(r), 0.01)
        << "rank " << r;
  }
  // Skew: rank 0 clearly hotter than the tail.
  EXPECT_GT(counts[0], 3 * counts[n - 1]);
}

}  // namespace
}  // namespace cosmos
