// Per-shard execution counters, the runtime's observability surface.
// Snapshots are taken by Runtime::stats(); aggregate helpers answer the
// two capacity-planning questions: how much total work ran (total_*) and
// how long the slowest shard was busy (max_busy_seconds — the parallel
// critical path the throughput bench reports).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cosmos::runtime {

struct ShardStats {
  std::uint64_t tuples = 0;   ///< tuples executed by this shard
  std::uint64_t batches = 0;  ///< batches (runs) executed
  std::uint64_t tasks = 0;    ///< queue entries consumed
  std::uint64_t busy_ns = 0;  ///< worker thread CPU time executing tasks
  /// Producer time spent blocked in dispatch() because this shard's queue
  /// was full — the backpressure signal.
  std::uint64_t stall_ns = 0;
  std::size_t max_queue_depth = 0;  ///< high-water mark of the input queue
};

struct RuntimeStats {
  std::vector<ShardStats> shards;

  [[nodiscard]] std::uint64_t total_tuples() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s.tuples;
    return n;
  }
  [[nodiscard]] std::uint64_t total_batches() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s.batches;
    return n;
  }
  [[nodiscard]] double total_busy_seconds() const noexcept {
    std::uint64_t ns = 0;
    for (const auto& s : shards) ns += s.busy_ns;
    return static_cast<double>(ns) * 1e-9;
  }
  [[nodiscard]] double max_busy_seconds() const noexcept {
    std::uint64_t ns = 0;
    for (const auto& s : shards) ns = std::max(ns, s.busy_ns);
    return static_cast<double>(ns) * 1e-9;
  }
  [[nodiscard]] double total_stall_seconds() const noexcept {
    std::uint64_t ns = 0;
    for (const auto& s : shards) ns += s.stall_ns;
    return static_cast<double>(ns) * 1e-9;
  }
};

}  // namespace cosmos::runtime
