#include "common/bit_vector.h"

#include <bit>
#include <cassert>

namespace cosmos {

BitVector::BitVector(std::size_t bits)
    : bits_(bits), words_((bits + kWordBits - 1) / kWordBits, 0) {}

void BitVector::set(std::size_t i) noexcept {
  assert(i < bits_);
  words_[i / kWordBits] |= (std::uint64_t{1} << (i % kWordBits));
}

void BitVector::reset(std::size_t i) noexcept {
  assert(i < bits_);
  words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
}

bool BitVector::test(std::size_t i) const noexcept {
  assert(i < bits_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1U;
}

std::size_t BitVector::count() const noexcept {
  std::size_t n = 0;
  for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVector::intersects(const BitVector& other) const noexcept {
  assert(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

std::size_t BitVector::intersection_count(
    const BitVector& other) const noexcept {
  assert(bits_ == other.bits_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return n;
}

double BitVector::weighted_intersection(
    const BitVector& other, std::span<const double> weights) const noexcept {
  assert(bits_ == other.bits_);
  assert(weights.size() >= bits_);
  double sum = 0.0;
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi] & other.words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      sum += weights[wi * kWordBits + static_cast<std::size_t>(bit)];
      w &= w - 1;
    }
  }
  return sum;
}

double BitVector::weighted_count(
    std::span<const double> weights) const noexcept {
  assert(weights.size() >= bits_);
  double sum = 0.0;
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      sum += weights[wi * kWordBits + static_cast<std::size_t>(bit)];
      w &= w - 1;
    }
  }
  return sum;
}

void BitVector::merge(const BitVector& other) noexcept {
  assert(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

std::vector<std::size_t> BitVector::set_bits() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(wi * kWordBits + static_cast<std::size_t>(bit));
      w &= w - 1;
    }
  }
  return out;
}

}  // namespace cosmos
