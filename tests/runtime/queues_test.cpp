#include "runtime/queues.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace cosmos::runtime {
namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> q{4};
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(BoundedQueue, TryPushLeavesValueOnFullQueue) {
  BoundedQueue<std::string> q{1};
  std::string a = "first";
  ASSERT_TRUE(q.try_push(a));
  std::string b = "second";
  EXPECT_FALSE(q.try_push(b));
  EXPECT_EQ(b, "second");  // not consumed by the failed push
  EXPECT_EQ(q.pop(), "first");
}

TEST(BoundedQueue, BackpressureBlocksInsteadOfDropping) {
  // A producer pushes more items than the queue holds while a slow consumer
  // drains; every item must arrive, in order — blocked, never dropped.
  constexpr std::size_t kItems = 200;
  BoundedQueue<std::size_t> q{2};
  std::atomic<std::size_t> produced{0};
  std::thread producer{[&] {
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_TRUE(q.push(i));
      produced.fetch_add(1, std::memory_order_relaxed);
    }
  }};
  // Give the producer a chance to hit the full queue.
  while (produced.load(std::memory_order_relaxed) < 2) std::this_thread::yield();
  EXPECT_LE(q.depth(), 2u);
  std::vector<std::size_t> got;
  for (std::size_t i = 0; i < kItems; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    got.push_back(*v);
  }
  producer.join();
  ASSERT_EQ(got.size(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
  // The producer could never overshoot the bound.
  EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> q{8};
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q{2};
  std::optional<int> result{42};
  std::thread consumer{[&] { result = q.pop(); }};
  q.close();
  consumer.join();
  EXPECT_EQ(result, std::nullopt);
}

TEST(BoundedQueue, CloseWakesBlockedProducers) {
  // Producers parked on a full queue must unblock on close() and report
  // the rejected push — the runtime's shutdown path with a slow shard.
  constexpr int kProducers = 3;
  BoundedQueue<int> q{1};
  ASSERT_TRUE(q.push(0));  // fill the queue so every producer blocks
  std::atomic<int> rejected{0};
  std::atomic<int> started{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      started.fetch_add(1);
      if (!q.push(100 + p)) rejected.fetch_add(1);
    });
  }
  while (started.load() < kProducers) std::this_thread::yield();
  q.close();
  for (auto& t : producers) t.join();
  // Every blocked producer was woken and its value discarded, not queued.
  EXPECT_EQ(rejected.load(), kProducers);
  EXPECT_EQ(q.pop(), 0);              // pre-close item still drains
  EXPECT_EQ(q.pop(), std::nullopt);   // then the closed queue ends
}

TEST(BoundedQueue, CloseWakesAllBlockedConsumers) {
  constexpr int kConsumers = 4;
  BoundedQueue<int> q{2};
  std::atomic<int> ended{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      if (q.pop() == std::nullopt) ended.fetch_add(1);
    });
  }
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(ended.load(), kConsumers);
}

TEST(BoundedQueue, CloseIsIdempotentAndSticky) {
  BoundedQueue<int> q{2};
  q.close();
  q.close();  // second close must be harmless
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(1));
  int v = 2;
  EXPECT_FALSE(q.try_push(v));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(MpscBuffer, DrainAfterCloseKeepsBufferedItems) {
  MpscBuffer<int> buf;
  EXPECT_TRUE(buf.push(1));
  EXPECT_TRUE(buf.push(2));
  buf.close();
  EXPECT_FALSE(buf.push(3));  // rejected and dropped
  EXPECT_TRUE(buf.closed());
  std::vector<int> out;
  buf.drain_into(out);  // pre-close items survive the close
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  buf.drain_into(out);
  EXPECT_TRUE(out.empty());
}

TEST(MpscBuffer, ConcurrentProducersRaceClose) {
  // Producers racing a close: every push either lands (and is drained) or
  // reports rejection — nothing is lost or duplicated.
  MpscBuffer<int> buf;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (buf.push(p * kPerProducer + i)) accepted.fetch_add(1);
      }
    });
  }
  buf.close();
  for (auto& t : producers) t.join();
  std::vector<int> out;
  buf.drain_into(out);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(accepted.load()));
  EXPECT_LE(accepted.load(), kProducers * kPerProducer);
}

TEST(MpscBuffer, DrainsEverythingInPerProducerOrder) {
  MpscBuffer<std::pair<int, int>> buf;  // (producer, seq)
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&buf, p] {
      for (int i = 0; i < kPerProducer; ++i) buf.push({p, i});
    });
  }
  for (auto& t : producers) t.join();
  std::vector<std::pair<int, int>> out;
  buf.drain_into(out);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::vector<int> next(kProducers, 0);
  for (const auto& [p, seq] : out) EXPECT_EQ(seq, next[p]++);
  buf.drain_into(out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace cosmos::runtime
