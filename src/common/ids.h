// Strongly-typed identifiers used across the COSMOS code base.
//
// Every entity in the system (network node, processor, stream, substream,
// query, coordinator, subscription) is referred to by a small integral id.
// Raw integers invite bugs (passing a query id where a node id is expected),
// so each id is a distinct type with explicit construction.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace cosmos {

/// CRTP-free tagged id. `Tag` makes each instantiation a distinct type.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalidValue =
      std::numeric_limits<value_type>::max();

  constexpr Id() noexcept = default;
  constexpr explicit Id(value_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalidValue;
  }

  static constexpr Id invalid() noexcept { return Id{}; }

  friend constexpr bool operator==(Id a, Id b) noexcept = default;
  friend constexpr auto operator<=>(Id a, Id b) noexcept = default;

 private:
  value_type value_ = kInvalidValue;
};

struct NodeTag {};
struct StreamTag {};
struct SubstreamTag {};
struct QueryTag {};
struct CoordinatorTag {};
struct SubscriptionTag {};
struct OperatorTag {};

/// A node in the physical/overlay network (router, processor or source).
using NodeId = Id<NodeTag>;
/// A named data stream (e.g. "Station1").
using StreamId = Id<StreamTag>;
/// A partition of a stream; queries express interest per substream.
using SubstreamId = Id<SubstreamTag>;
/// A continuous query registered with the middleware.
using QueryId = Id<QueryTag>;
/// A logical coordinator role in the hierarchy.
using CoordinatorId = Id<CoordinatorTag>;
/// A pub/sub subscription.
using SubscriptionId = Id<SubscriptionTag>;
/// An operator in the operator-placement baseline's global operator graph.
using OperatorId = Id<OperatorTag>;

}  // namespace cosmos

namespace std {
template <typename Tag>
struct hash<cosmos::Id<Tag>> {
  size_t operator()(cosmos::Id<Tag> id) const noexcept {
    return std::hash<typename cosmos::Id<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
