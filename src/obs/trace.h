// Per-thread lock-free span tracer, exported as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing — see docs/observability.md).
//
// Design:
//  - One process-global Tracer with a relaxed-atomic enabled flag. When
//    disabled (the default), a Span costs one relaxed load and nothing
//    else — no clock read, no buffer write — so instrumentation can stay
//    compiled into hot paths permanently.
//  - Each recording thread owns a fixed-capacity SPSC ring buffer,
//    registered on first use. The owning thread is the only writer; the
//    single drain caller (driver/serve thread) is the only reader. Release/
//    acquire on the ring indices is the entire synchronization — recording
//    never takes a lock, never allocates, and drops (counted) rather than
//    blocks when the reader falls behind.
//  - Span names and categories must be string literals (or otherwise
//    outlive the session): the ring stores the pointers; strings are only
//    materialized at drain time.
//
// Session discipline: begin_session()/end_session() must run while no
// traced thread is recording (the runtime is constructed/joined around
// them in practice). drain() may run concurrently with recorders — that is
// the point: federated workers drain incrementally and ship spans in
// kStatsSample frames while their shards keep executing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace cosmos::obs {

/// A drained span (or instant event), detached from any thread buffer:
/// the unit the Chrome JSON writer and the kStatsSample frame carry.
struct CollectedSpan {
  std::string name;
  std::string cat;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;  ///< 0 and instant=true for point events
  std::uint64_t arg = 0;     ///< one numeric argument (engine/shard/worker)
  std::uint32_t tid = 0;     ///< recording thread, unique per process
  std::uint32_t pid = 0;     ///< process lane: 0 driver, worker_index+1
  bool instant = false;
};

class Tracer {
 public:
  /// The process-global tracer every Span records into.
  [[nodiscard]] static Tracer& instance();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Clears all buffers from a previous session and enables recording.
  /// Must not run concurrently with recorders or drain().
  void begin_session();
  /// Disables recording and returns everything still buffered. Must not
  /// run concurrently with recorders or drain().
  [[nodiscard]] std::vector<CollectedSpan> end_session();

  /// Records one completed span (called by ~Span; callers use Span).
  void record(const char* name, const char* cat, std::uint64_t start_ns,
              std::uint64_t dur_ns, std::uint64_t arg) noexcept;
  /// Records a point event at now_ns() (no-op when disabled).
  void instant(const char* name, const char* cat,
               std::uint64_t arg = 0) noexcept;

  /// Moves out everything recorded so far (single caller at a time;
  /// safe to run while recorders are active).
  [[nodiscard]] std::vector<CollectedSpan> drain();

  /// Events dropped because a thread's ring was full (cumulative for the
  /// current session).
  [[nodiscard]] std::uint64_t dropped() const noexcept;

 private:
  /// One recorded event as stored in the ring: name/cat as raw pointers
  /// (must be literals), materialized to strings only at drain time.
  struct Slot {
    const char* name = nullptr;
    const char* cat = nullptr;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint64_t arg = 0;
    bool instant = false;
  };

  struct ThreadBuffer {
    explicit ThreadBuffer(std::uint32_t tid_, std::size_t capacity)
        : tid(tid_), slots(capacity) {}
    const std::uint32_t tid;
    std::vector<Slot> slots;  ///< capacity is a power of two
    std::atomic<std::uint64_t> head{0};  ///< writer-owned publish index
    std::atomic<std::uint64_t> tail{0};  ///< reader-owned consume index
    std::atomic<std::uint64_t> dropped{0};
  };

  Tracer() = default;
  ThreadBuffer* local();
  void push(const Slot& slot) noexcept;

  std::atomic<bool> enabled_{false};
  /// Bumped by begin_session so cached thread-local buffer pointers from
  /// an earlier session are never dereferenced.
  std::atomic<std::uint64_t> session_{0};
  mutable std::mutex reg_mu_;  ///< guards buffers_ (registration + drain)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 1;
};

/// RAII scope: measures construction-to-destruction and records it as one
/// complete ("X") trace event. Zero-cost when tracing is disabled.
class Span {
 public:
  Span(const char* name, const char* cat, std::uint64_t arg = 0) noexcept
      : name_(name),
        cat_(cat),
        arg_(arg),
        start_ns_(Tracer::instance().enabled() ? now_ns() : 0) {}
  ~Span() {
    if (start_ns_ != 0) {
      Tracer::instance().record(name_, cat_, start_ns_, now_ns() - start_ns_,
                                arg_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t arg_;
  std::uint64_t start_ns_;
};

/// Serializes spans as Chrome trace-event JSON ("traceEvents" array of
/// ph:"X"/"i" events, ts/dur in microseconds, timestamps rebased to the
/// earliest span). `process_names` adds process_name metadata rows (pid ->
/// label) so Perfetto shows "driver" / "worker N" lanes.
void write_chrome_trace(
    const std::string& path, const std::vector<CollectedSpan>& spans,
    const std::vector<std::pair<std::uint32_t, std::string>>& process_names);

/// RAII trace session for one run: begins a session on construction when
/// `path` is non-empty, and on destruction drains the global tracer,
/// merges any foreign (worker-shipped) spans and writes the JSON file.
/// Inactive (all methods no-ops) when `path` is empty.
class TraceSession {
 public:
  explicit TraceSession(std::string path);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  [[nodiscard]] bool active() const noexcept { return !path_.empty(); }
  /// Adds spans collected elsewhere (federated workers) to the export.
  void add_foreign(std::vector<CollectedSpan> spans);
  void add_process_name(std::uint32_t pid, std::string name);

 private:
  std::string path_;
  std::vector<CollectedSpan> foreign_;
  std::vector<std::pair<std::uint32_t, std::string>> process_names_;
};

}  // namespace cosmos::obs
