// Hu–Blake optimal load diffusion (Section 3.7, reference [14]).
//
// Given per-node load imbalances b_i (load minus balanced target, summing to
// ~0) on a connected weighted graph, computes the edge flows m_ij that
// rebalance the load while minimizing the Euclidean norm of transferred
// load. The flows derive from the potential solution of the weighted
// Laplacian system  L λ = b,  with  m_ij = c_ij (λ_i − λ_j). Solved with
// conjugate gradients (L is symmetric positive semi-definite; b is projected
// onto the solvable subspace by removing its mean).
#pragma once

#include <cstddef>
#include <vector>

namespace cosmos::coord {

struct DiffusionEdge {
  std::size_t a, b;
  double conductance = 1.0;
};

struct DiffusionFlow {
  std::size_t from, to;
  double amount;  ///< strictly positive
};

/// `imbalance[i]` = current load minus target load of node i. Returns flows
/// with positive amounts (direction folded into from/to). Throws
/// std::invalid_argument on malformed input. If the graph is disconnected,
/// balances each component around its own mean.
[[nodiscard]] std::vector<DiffusionFlow> solve_diffusion(
    std::size_t node_count, const std::vector<DiffusionEdge>& edges,
    const std::vector<double>& imbalance, double tolerance = 1e-9,
    std::size_t max_iterations = 10'000);

}  // namespace cosmos::coord
