// CQL-style window specifications over streams.
#pragma once

#include <cstdint>
#include <string>

#include "stream/schema.h"

namespace cosmos::stream {

/// [Now] keeps only tuples with the current timestamp; [Range w] keeps the
/// last `w` milliseconds; [Unbounded] keeps everything.
struct WindowSpec {
  enum class Kind { kNow, kRange, kUnbounded };

  Kind kind = Kind::kNow;
  /// Window extent in milliseconds (kRange only).
  std::int64_t range_ms = 0;

  [[nodiscard]] static WindowSpec now() noexcept { return {Kind::kNow, 0}; }
  [[nodiscard]] static WindowSpec range_millis(std::int64_t ms) noexcept {
    return {Kind::kRange, ms};
  }
  [[nodiscard]] static WindowSpec unbounded() noexcept {
    return {Kind::kUnbounded, 0};
  }

  /// True if a tuple stamped `tuple_ts` is inside the window at time `now`.
  [[nodiscard]] bool contains(Timestamp tuple_ts, Timestamp now) const noexcept {
    switch (kind) {
      case Kind::kNow: return tuple_ts == now;
      case Kind::kRange: return tuple_ts <= now && now - tuple_ts <= range_ms;
      case Kind::kUnbounded: return tuple_ts <= now;
    }
    return false;
  }

  /// Effective extent in ms (0 for Now, +inf-like max for Unbounded).
  [[nodiscard]] std::int64_t extent_ms() const noexcept {
    switch (kind) {
      case Kind::kNow: return 0;
      case Kind::kRange: return range_ms;
      case Kind::kUnbounded: return INT64_MAX;
    }
    return 0;
  }

  /// True if this window keeps at least every tuple `other` keeps.
  [[nodiscard]] bool covers(const WindowSpec& other) const noexcept {
    return extent_ms() >= other.extent_ms();
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const WindowSpec&, const WindowSpec&) = default;
};

inline std::string WindowSpec::to_string() const {
  switch (kind) {
    case Kind::kNow: return "[Now]";
    case Kind::kRange: {
      if (range_ms % 3'600'000 == 0) {
        return "[Range " + std::to_string(range_ms / 3'600'000) + " Hour]";
      }
      if (range_ms % 60'000 == 0) {
        return "[Range " + std::to_string(range_ms / 60'000) + " Minutes]";
      }
      return "[Range " + std::to_string(range_ms) + " Ms]";
    }
    case Kind::kUnbounded: return "[Unbounded]";
  }
  return "[?]";
}

}  // namespace cosmos::stream
