// Network topology model and a Transit-Stub generator.
//
// The paper's simulation uses a 4096-node topology produced by the
// Transit-Stub model of the GT-ITM topology generator (Section 4.1). GT-ITM
// is not available offline, so we implement an equivalent generator: a small
// backbone of interconnected transit domains, with stub domains hanging off
// each transit node. Link latencies are drawn per link class so that
// intra-stub links are fast and inter-transit-domain links are slow, which is
// the property the placement algorithms exploit.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace cosmos::net {

struct Edge {
  NodeId to;
  double latency_ms = 0.0;
};

/// Undirected weighted graph stored as adjacency lists. Invariant: for every
/// edge (u,v) there is a symmetric entry (v,u) with the same latency.
class Topology {
 public:
  Topology() = default;
  explicit Topology(std::size_t node_count) : adj_(node_count) {}

  [[nodiscard]] std::size_t node_count() const noexcept { return adj_.size(); }
  [[nodiscard]] const std::vector<Edge>& neighbors(NodeId n) const noexcept {
    return adj_[n.value()];
  }

  /// Adds the symmetric pair of directed entries.
  /// Precondition: u != v, latency_ms > 0, both ids in range.
  void add_edge(NodeId u, NodeId v, double latency_ms);

  /// True if an edge (u,v) exists.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] std::size_t edge_count() const noexcept;

  /// True if every node can reach every other node.
  [[nodiscard]] bool connected() const;

 private:
  std::vector<std::vector<Edge>> adj_;
};

/// Parameters for the transit-stub generator. Defaults approximate the
/// paper's 4096-node GT-ITM configuration.
struct TransitStubParams {
  std::size_t transit_domains = 4;        ///< backbone domains
  std::size_t transit_nodes_per_domain = 4;
  std::size_t stub_domains_per_transit = 3;
  std::size_t stub_nodes_per_domain = 85;
  /// Probability of an extra intra-domain edge beyond the connecting ring.
  double extra_edge_prob = 0.3;

  // Latency bands per link class, in milliseconds.
  double intra_stub_lat_min = 1.0, intra_stub_lat_max = 5.0;
  double stub_transit_lat_min = 5.0, stub_transit_lat_max = 20.0;
  double intra_transit_lat_min = 20.0, intra_transit_lat_max = 50.0;
  double inter_transit_lat_min = 50.0, inter_transit_lat_max = 150.0;

  [[nodiscard]] std::size_t total_nodes() const noexcept {
    const std::size_t transit = transit_domains * transit_nodes_per_domain;
    return transit + transit * stub_domains_per_transit * stub_nodes_per_domain;
  }
};

/// Generates a connected transit-stub topology. Node ids are laid out as all
/// transit nodes first (grouped by domain), then all stub nodes (grouped by
/// their attachment transit node, then by stub domain).
[[nodiscard]] Topology make_transit_stub(const TransitStubParams& params,
                                         Rng& rng);

/// Generates a synthetic wide-area overlay of `node_count` fully-connected
/// hosts grouped into `sites` geographic sites (PlanetLab stand-in for the
/// prototype study). Intra-site latencies are small; inter-site latencies are
/// drawn from a wide-area band.
[[nodiscard]] Topology make_wide_area_mesh(std::size_t node_count,
                                           std::size_t sites, Rng& rng);

}  // namespace cosmos::net
