// One stream's slice of the broker network: the subscription index, the
// per-tuple matching, the overlay routing + traffic accounting for exactly
// one advertised stream.
//
// Partitions are the unit of parallelism for subscription matching: every
// stream's routing state (its advert, the subscriptions interested in it,
// and its traffic counters) is independent of every other stream's, so a
// partition can be driven by whatever thread currently owns it — in
// Cosmos::run() that is the runtime shard owning the stream's publishing
// engine — with no locks at all. The ownership protocol is the runtime's
// drain discipline: at most one thread calls into a partition at a time,
// and ownership hand-offs (engine migration, driver-side result delivery)
// happen only across a shard drain, which establishes the happens-before
// edge.
//
// The BrokerNetwork facade builds partitions, routes subscribe/unsubscribe
// updates into them, and merges their traffic stats back into one view.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/latency_matrix.h"
#include "pubsub/subscription.h"
#include "runtime/tuple_batch.h"
#include "stream/compiled_predicate.h"

namespace cosmos::pubsub {

/// Traffic of one directed overlay link (accounted on the from->to hop).
struct LinkTraffic {
  double bytes = 0.0;
  double weighted_cost = 0.0;  ///< bytes * link latency (byte*ms)
  std::size_t messages_sent = 0;

  friend bool operator==(const LinkTraffic&, const LinkTraffic&) = default;
};

struct TrafficStats {
  double bytes = 0.0;
  double weighted_cost = 0.0;  ///< sum of bytes * link latency (byte*ms)
  std::size_t messages_sent = 0;
  /// Per directed overlay link (from, to) breakdown of the totals — what
  /// link-level tests assert and hot-link analysis reads.
  std::map<std::pair<NodeId, NodeId>, LinkTraffic> links;

  /// Accumulates `other` into this (the facade's partition merge).
  void merge(const TrafficStats& other);

  friend bool operator==(const TrafficStats&, const TrafficStats&) = default;
};

/// Batched delivery: the rows of a published batch one subscription
/// matched, as ascending indices into the source batch (select() them to
/// materialize the subscriber's view).
struct BatchDelivery {
  const Subscription* sub = nullptr;
  const runtime::TupleBatch* source = nullptr;
  std::vector<std::uint32_t> rows;
};

/// Immutable overlay shared by every partition: the latency-minimal
/// spanning tree over the participants and its routing tables. Built once
/// by the BrokerNetwork constructor; read-only afterwards, so concurrent
/// partitions never contend on it.
struct Overlay {
  std::vector<NodeId> participants;
  std::unordered_map<NodeId, std::size_t> index;
  const net::LatencyMatrix* lat = nullptr;
  std::vector<std::vector<std::size_t>> adj;       ///< tree adjacency
  std::vector<std::vector<std::size_t>> next_hop;  ///< routing table

  /// Index of `n`; throws std::invalid_argument for non-participants.
  [[nodiscard]] std::size_t index_of(NodeId n) const;
};

class BrokerPartition {
 public:
  using DeliveryCallback =
      std::function<void(const Subscription&, const Message&)>;

  BrokerPartition(const Overlay& overlay, std::string stream, NodeId publisher,
                  stream::Schema schema);

  [[nodiscard]] const std::string& stream() const noexcept { return stream_; }
  [[nodiscard]] NodeId publisher() const noexcept { return publisher_; }
  [[nodiscard]] const stream::Schema& schema() const noexcept {
    return schema_;
  }

  /// Facade bookkeeping: (de)registers a subscription interested in this
  /// stream. `sub` must stay valid while registered. The subscription's
  /// filter is compiled against the partition schema here — once per
  /// subscribe — so matching never resolves a field by string again; a
  /// filter referencing attributes this stream lacks compiles leniently
  /// and matches nothing, exactly like the interpreted fallback.
  void add_subscription(const Subscription* sub);
  void remove_subscription(SubscriptionId id);
  [[nodiscard]] std::size_t subscription_count() const noexcept {
    return subs_.size();
  }

  /// Scalar path: matches one tuple against the index, routes one copy per
  /// overlay link toward the matched subscribers (attributes pruned to the
  /// union of their projections), accounts the traffic, and delivers via
  /// `callback` at each subscriber's home broker.
  void match(const stream::Tuple& tuple, const DeliveryCallback& callback);

  /// Batched path: per-row matching and link accounting identical to
  /// size() scalar match() calls, but one BatchDelivery per matching
  /// subscription carrying all of its rows at once (appended to
  /// `deliveries` in first-match order). Rows must be timestamp-ordered;
  /// violations throw std::invalid_argument naming the stream and both
  /// timestamps before any row is matched or accounted.
  void match_batch(const runtime::TupleBatch& batch,
                   std::vector<BatchDelivery>& deliveries);

  [[nodiscard]] const TrafficStats& traffic() const noexcept {
    return traffic_;
  }
  void reset_traffic() noexcept { traffic_ = {}; }

 private:
  struct MatchedSub {
    const Subscription* sub;
    std::size_t home;
    /// Filter compiled against the partition schema (single "" binding).
    stream::CompiledPredicate filter;
  };

  [[nodiscard]] static bool filter_matches(
      const MatchedSub& entry, const stream::CompiledPredicate::Row& row);
  void route(const Message& message, std::size_t at, std::size_t came_from,
             const std::vector<const MatchedSub*>& matched,
             const DeliveryCallback& callback);

  const Overlay* overlay_;
  std::string stream_;
  NodeId publisher_;
  std::size_t publisher_idx_;
  stream::Schema schema_;
  /// Subscription index: every live subscription interested in this
  /// stream, with its home broker pre-resolved.
  std::vector<MatchedSub> subs_;
  TrafficStats traffic_;
};

}  // namespace cosmos::pubsub
