// In-memory retention boundedness: the driver's replay data log must not
// grow with the trace when retention floors are enabled — independent of
// journaling. A floor is a fleet-wide flush ack: once every worker has
// applied execute seq s, entries below s can never be replayed and are
// pruned. The differential half of each case proves pruning never changes
// delivered results.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cosmos/cosmos.h"
#include "node/spawn.h"
#include "support/random_workload.h"

namespace cosmos::middleware {
namespace {

using testsupport::ResultLog;
using testsupport::build_system;
using testsupport::make_workload;

struct Fleet {
  std::vector<node::NodeProcess> procs;
  std::vector<std::string> endpoints;
};

Fleet spawn_fleet(std::size_t n, const std::string& tag) {
  static int counter = 0;
  Fleet fleet;
  const std::string noded = node::default_noded_path();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string endpoint = "unix:/tmp/cosmos_rettest_" + tag + "_" +
                                 std::to_string(::getpid()) + "_" +
                                 std::to_string(counter++) + ".sock";
    fleet.procs.push_back(node::spawn_noded(noded, endpoint));
    fleet.endpoints.push_back(endpoint);
  }
  return fleet;
}

TEST(FederationRetention, FloorsBoundTheDataLog) {
  const auto w = make_workload(3);
  ResultLog push_log;
  {
    auto sys = build_system(w, push_log);
    for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
  }

  // peer_links forces data logging (replay source for lossy peer sends),
  // which is exactly the buffer retention has to bound.
  auto run = [&](stream::Timestamp floor_every_ms, ResultLog& log) {
    auto fleet = spawn_fleet(2, floor_every_ms > 0 ? "floor" : "nofloor");
    auto sys = build_system(w, log);
    Cosmos::FederationOptions opts;
    opts.workers = fleet.endpoints;
    opts.batch_size = 16;
    opts.tick_ms = 20 * 60'000;
    opts.peer_links = true;
    opts.retention.floor_every_ms = floor_every_ms;
    const auto report = sys->run_federated(w.events, opts);
    for (auto& p : fleet.procs) EXPECT_EQ(p.wait(), 0);
    return report;
  };

  ResultLog unbounded_log;
  const auto unbounded = run(0, unbounded_log);
  ASSERT_EQ(unbounded_log, push_log);
  ASSERT_GT(unbounded.federation.data_log_appended, 0u);
  // No floors: the log holds every entry ever appended at the end.
  EXPECT_EQ(unbounded.federation.data_log_peak_entries,
            unbounded.federation.data_log_appended);

  ResultLog bounded_log;
  const auto bounded = run(60'000, bounded_log);
  ASSERT_EQ(bounded_log, push_log) << "retention pruning changed results";
  // Same trace, same routing: appends are identical; only the peak moves.
  EXPECT_EQ(bounded.federation.data_log_appended,
            unbounded.federation.data_log_appended);
  EXPECT_LT(bounded.federation.data_log_peak_entries,
            bounded.federation.data_log_appended)
      << "retention floors never pruned the data log";
}

TEST(FederationRetention, FloorsComposeWithWorkerRecovery) {
  // Recovery needs the data log *from the last checkpoint*, not forever:
  // with checkpoints cutting regularly and floors pruning below the acked
  // frontier, a mid-trace worker kill must still replay correctly.
  const auto w = make_workload(6);
  ResultLog push_log;
  {
    auto sys = build_system(w, push_log);
    for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
  }

  auto fleet = spawn_fleet(2, "recov");
  ResultLog fed_log;
  auto sys = build_system(w, fed_log);
  Cosmos::FederationOptions opts;
  opts.workers = fleet.endpoints;
  opts.batch_size = 16;
  opts.tick_ms = 20 * 60'000;
  opts.recovery.enabled = true;
  opts.recovery.noded_path = node::default_noded_path();
  opts.recovery.checkpoint_every_ms = 20 * 60'000;
  opts.retention.floor_every_ms = 60'000;
  bool killed = false;
  opts.on_chunk = [&](std::size_t chunk) {
    if (chunk == 3 && !killed) {
      fleet.procs[1].kill();
      killed = true;
    }
  };
  const auto report = sys->run_federated(w.events, opts);

  ASSERT_TRUE(killed) << "trace too short to land the kill";
  EXPECT_EQ(report.federation.recoveries, 1u);
  ASSERT_EQ(fed_log, push_log)
      << "retention + recovery differential mismatch";
}

}  // namespace
}  // namespace cosmos::middleware
