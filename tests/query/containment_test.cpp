// Containment and result-stream merging tests, centered on the paper's
// Q3/Q4 -> Q5 example (Table 1, Section 2.1).
#include "query/containment.h"

#include <gtest/gtest.h>

#include "cql/parser.h"

namespace cosmos::query {
namespace {

QuerySpec q3() {
  return cql::parse_query(
      "SELECT S2.* "
      "FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
      QueryId{3});
}

QuerySpec q4() {
  return cql::parse_query(
      "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp "
      "FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight",
      QueryId{4});
}

TEST(Containment, Q4DoesNotContainQ3BecauseOfProjection) {
  // Q4's window and predicate cover Q3's, but Q4 projects specific columns
  // while Q3 wants all of S2.
  EXPECT_FALSE(contains(q4(), q3()));
}

TEST(Containment, WiderWindowAndWeakerPredicateContains) {
  const auto wide = cql::parse_query(
      "SELECT * FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight");
  EXPECT_TRUE(contains(wide, q3()));
  EXPECT_TRUE(contains(wide, q4()));
  EXPECT_FALSE(contains(q3(), wide));  // narrower window cannot contain
}

TEST(Containment, SelfContainment) {
  EXPECT_TRUE(contains(q3(), q3()));
  EXPECT_TRUE(contains(q4(), q4()));
}

TEST(Containment, AliasRenamingIsHandled) {
  const auto a = cql::parse_query(
      "SELECT * FROM Station1 [Now] X, Station2 [Now] Y "
      "WHERE X.snowHeight > Y.snowHeight");
  const auto b = cql::parse_query(
      "SELECT * FROM Station1 [Now] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10");
  EXPECT_TRUE(contains(a, b));
  EXPECT_FALSE(contains(b, a));
}

TEST(Containment, DifferentStreamsNeverContain) {
  const auto a = cql::parse_query("SELECT * FROM A [Now] X");
  const auto b = cql::parse_query("SELECT * FROM B [Now] X");
  EXPECT_FALSE(contains(a, b));
}

TEST(Equivalent, ConjunctOrderIrrelevant) {
  const auto a = cql::parse_query("SELECT * FROM S WHERE S.a > 1 AND S.b < 2");
  const auto b = cql::parse_query("SELECT * FROM S WHERE S.b < 2 AND S.a > 1");
  EXPECT_TRUE(equivalent(a.where, b.where));
  const auto c = cql::parse_query("SELECT * FROM S WHERE S.a > 1");
  EXPECT_FALSE(equivalent(a.where, c.where));
}

TEST(Equivalent, FlippedFieldComparison) {
  const auto a = cql::parse_query("SELECT * FROM S, T WHERE S.a > T.b");
  const auto b = cql::parse_query("SELECT * FROM S, T WHERE T.b < S.a");
  EXPECT_TRUE(equivalent(a.where, b.where));
}

class MergeQ3Q4 : public ::testing::Test {
 protected:
  void SetUp() override {
    auto m = merge_queries(q3(), q4(), QueryId{5});
    ASSERT_TRUE(m.has_value());
    merged_ = std::move(*m);
  }
  MergedQuery merged_;
};

TEST_F(MergeQ3Q4, MergedIsQ5Shape) {
  // Q5: windows are the wider ones; WHERE keeps only the common conjunct.
  const auto& q5 = merged_.merged;
  ASSERT_EQ(q5.sources.size(), 2u);
  EXPECT_EQ(q5.source_by_alias("S1")->window,
            stream::WindowSpec::range_millis(3'600'000));
  EXPECT_EQ(q5.source_by_alias("S2")->window, stream::WindowSpec::now());
  std::vector<stream::PredicatePtr> conj;
  ASSERT_TRUE(stream::collect_conjuncts(q5.where, conj));
  ASSERT_EQ(conj.size(), 1u);
  EXPECT_EQ(conj[0]->to_string(), "S1.snowHeight > S2.snowHeight");
}

TEST_F(MergeQ3Q4, MergedContainsBothInputs) {
  EXPECT_TRUE(contains(merged_.merged, q3()));
  EXPECT_TRUE(contains(merged_.merged, q4()));
}

TEST_F(MergeQ3Q4, MergedSelectCoversPaperQ5) {
  // Paper Q5 selects S2.*, S1.snowHeight, S1.timestamp.
  const auto& sel = merged_.merged.select;
  EXPECT_FALSE(merged_.merged.select_all);
  const auto has = [&sel](const std::string& alias, const std::string& field) {
    for (const auto& item : sel) {
      if (item.alias == alias && item.field == field) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("S2", ""));  // S2.*
  EXPECT_TRUE(has("S1", "snowHeight"));
  EXPECT_TRUE(has("S1", "timestamp"));
}

TEST_F(MergeQ3Q4, SplitForQ3CarriesResidualAndBand) {
  // p3_2 = { -30min <= S1.ts - S2.ts <= 0  AND  S1.snowHeight >= 10 }.
  const auto& split = merged_.split_a;
  EXPECT_EQ(split.original, QueryId{3});
  ASSERT_EQ(split.residual_filters.size(), 1u);
  EXPECT_EQ(split.residual_filters[0]->to_string(), "S1.snowHeight >= 10");
  ASSERT_EQ(split.window_bands.size(), 1u);
  EXPECT_EQ(split.window_bands[0].alias, "S1");
  EXPECT_EQ(split.window_bands[0].band_ms, 30 * 60'000);
  ASSERT_EQ(split.select.size(), 1u);
  EXPECT_TRUE(split.select[0].is_wildcard());
}

TEST_F(MergeQ3Q4, SplitForQ4IsPureProjection) {
  // Q4 matches the merged window and predicate: no residual, no band.
  const auto& split = merged_.split_b;
  EXPECT_EQ(split.original, QueryId{4});
  EXPECT_TRUE(split.residual_filters.empty());
  EXPECT_TRUE(split.window_bands.empty());
  EXPECT_EQ(split.select.size(), 4u);
}

TEST(Merge, RejectsDifferentJoinPredicates) {
  const auto a = cql::parse_query(
      "SELECT * FROM A [Now] X, B [Now] Y WHERE X.u = Y.u");
  const auto b = cql::parse_query(
      "SELECT * FROM A [Now] X, B [Now] Y WHERE X.v = Y.v");
  EXPECT_FALSE(merge_queries(a, b, QueryId{9}).has_value());
}

TEST(Merge, RejectsDifferentStreams) {
  const auto a = cql::parse_query("SELECT * FROM A [Now] X");
  const auto b = cql::parse_query("SELECT * FROM B [Now] X");
  EXPECT_FALSE(merge_queries(a, b, QueryId{9}).has_value());
}

TEST(Merge, IdenticalQueriesMergeTrivially) {
  const auto m = merge_queries(q4(), q4(), QueryId{9});
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->split_a.residual_filters.empty());
  EXPECT_TRUE(m->split_b.residual_filters.empty());
  EXPECT_TRUE(m->split_a.window_bands.empty());
}

TEST(Merge, SingleStreamSelectionMerge) {
  const auto a = cql::parse_query(
      "SELECT * FROM S [Now] S WHERE S.a > 10 AND S.b < 5");
  const auto b =
      cql::parse_query("SELECT * FROM S [Now] S WHERE S.a > 10 AND S.c = 1");
  const auto m = merge_queries(a, b, QueryId{9});
  ASSERT_TRUE(m.has_value());
  std::vector<stream::PredicatePtr> conj;
  ASSERT_TRUE(stream::collect_conjuncts(m->merged.where, conj));
  ASSERT_EQ(conj.size(), 1u);  // only the common S.a > 10 survives
  EXPECT_EQ(conj[0]->to_string(), "S.a > 10");
  EXPECT_EQ(m->split_a.residual_filters.size(), 1u);
  EXPECT_EQ(m->split_b.residual_filters.size(), 1u);
}

}  // namespace
}  // namespace cosmos::query
