// In-process stream engine: a registry of named streams with schemas and a
// tuple bus. Query plans (built in src/query) subscribe taps to input
// streams and publish result tuples to derived streams.
//
// This is the stand-in for the GSN engine the paper deploys on PlanetLab.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "stream/schema.h"

namespace cosmos::runtime {
class TupleBatch;
}

namespace cosmos::stream {

class Engine {
 public:
  using Tap = std::function<void(const Tuple&)>;
  /// Batch-aware consumer: receives a whole TupleBatch at once.
  using BatchTap = std::function<void(const runtime::TupleBatch&)>;

  /// Registers a stream; throws std::invalid_argument on duplicate name.
  void register_stream(const std::string& name, Schema schema);

  [[nodiscard]] bool has_stream(const std::string& name) const noexcept {
    return streams_.contains(name);
  }
  /// Throws std::out_of_range for unknown streams.
  [[nodiscard]] const Schema& schema(const std::string& name) const;

  /// Attaches a consumer to a stream; returns a tap id usable in detach().
  std::size_t attach(const std::string& name, Tap tap);
  /// Attaches a dual-mode consumer under one tap id: publish() feeds
  /// `scalar` per tuple, publish_batch() feeds `batch` once per batch with
  /// no per-row materialization — the batch-at-a-time operator pipelines
  /// of query plans enter here. Both callbacks must be non-null.
  std::size_t attach(const std::string& name, BatchTap batch, Tap scalar);
  void detach(const std::string& name, std::size_t tap_id);

  /// Pushes a tuple to every tap of the stream. Ordering is per-stream:
  /// tuples on one stream must arrive in non-decreasing timestamp order
  /// (window semantics depend on it), and violations throw
  /// std::invalid_argument naming the stream and both timestamps. Streams
  /// are independent — equal or interleaved timestamps across different
  /// streams never throw.
  void publish(const std::string& name, const Tuple& t);

  /// Batched fast path: publishes every row of `batch` (whose stream name
  /// must equal `name`) with one stream lookup, one ordering check against
  /// the previous publish, and one tap-list snapshot for the whole batch —
  /// so a tap attached mid-batch first sees the next batch. Rows must be
  /// timestamp-ordered within the batch (per-stream rule above).
  /// Batch-aware taps each receive the whole batch (in attach order,
  /// before any scalar tap); scalar taps then see the rows materialized
  /// one by one. Each tap still observes its rows in batch order, so
  /// per-consumer sequences are identical to size() publish() calls.
  void publish_batch(const std::string& name,
                     const runtime::TupleBatch& batch);

  /// Total tuples published per stream (for tests and stats).
  [[nodiscard]] std::size_t published_count(const std::string& name) const;

 private:
  struct TapEntry {
    std::size_t id = 0;
    Tap scalar;     ///< always present
    BatchTap batch; ///< null for scalar-only taps
  };
  struct StreamState {
    Schema schema;
    Timestamp last_ts = INT64_MIN;
    std::size_t published = 0;
    std::size_t next_tap_id = 0;
    std::vector<TapEntry> taps;
  };
  StreamState& state(const std::string& name);
  std::unordered_map<std::string, StreamState> streams_;
};

}  // namespace cosmos::stream
