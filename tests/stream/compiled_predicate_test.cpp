// Fuzz-style differential harness for CompiledPredicate: random predicate
// trees over every node kind, evaluated row-for-row against the
// interpreted Predicate::eval oracle — outcomes must agree exactly,
// including which exception type escapes (std::invalid_argument for
// unresolved fields in lenient mode, std::logic_error for string-vs-
// numeric comparisons). Strict compilation must reject unresolvable
// fields at compile time.
#include "stream/compiled_predicate.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/tuple_batch.h"
#include "stream/predicate.h"

namespace cosmos::stream {
namespace {

Schema left_schema() {
  return Schema{{{"a", ValueType::kInt},
                 {"b", ValueType::kDouble},
                 {"s", ValueType::kString}}};
}
Schema right_schema() {
  return Schema{{{"x", ValueType::kInt},
                 {"y", ValueType::kDouble},
                 {"t", ValueType::kString}}};
}

/// Candidate field refs: resolvable ones (both aliases, empty alias, the
/// "timestamp" pseudo-field) and unresolvable ones (bogus field, bogus
/// alias) to exercise the lenient/throw path.
FieldRef random_ref(Rng& rng) {
  switch (rng.next_below(12)) {
    case 0: return {"S1", "a"};
    case 1: return {"S1", "b"};
    case 2: return {"S1", "s"};
    case 3: return {"S2", "x"};
    case 4: return {"S2", "y"};
    case 5: return {"S2", "t"};
    case 6: return {"", "a"};            // empty alias, first binding
    case 7: return {"", "y"};            // empty alias, second binding
    case 8: return {"S1", "timestamp"};  // pseudo-field
    case 9: return {"", "timestamp"};    // pseudo-field, first binding
    case 10: return {"S1", "nope"};      // unresolvable field
    default: return {"S9", "a"};         // unresolvable alias
  }
}

Value random_const(Rng& rng) {
  switch (rng.next_below(3)) {
    case 0: return Value{rng.next_range(-5, 5)};
    case 1: return Value{rng.next_double(-5.0, 5.0)};
    default: return Value{std::string(1, static_cast<char>(
                              'a' + rng.next_below(4)))};
  }
}

CmpOp random_cmp(Rng& rng) {
  constexpr CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                            CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
  return kOps[rng.next_below(6)];
}

PredicatePtr random_tree(Rng& rng, int depth) {
  const std::uint64_t pick = rng.next_below(depth > 0 ? 10 : 5);
  switch (pick) {
    case 0: return Predicate::always_true();
    case 1:
    case 2: return Predicate::cmp(random_ref(rng), random_cmp(rng),
                                  random_const(rng));
    case 3: return Predicate::cmp(random_ref(rng), random_cmp(rng),
                                  random_ref(rng));
    case 4: return Predicate::time_band(random_ref(rng), random_ref(rng),
                                        rng.next_range(0, 100));
    case 5:
    case 6: {
      std::vector<PredicatePtr> kids;
      const std::size_t n = 2 + rng.next_below(3);
      for (std::size_t i = 0; i < n; ++i) {
        kids.push_back(random_tree(rng, depth - 1));
      }
      return pick == 5 ? Predicate::conj(std::move(kids))
                       : Predicate::disj(std::move(kids));
    }
    default:
      return Predicate::negate(random_tree(rng, depth - 1));
  }
}

/// Random tuple for a 3-column (int, double, string) schema; occasionally
/// deviates from the declared column type — both evaluators dispatch on
/// the actual runtime type and must still agree.
Tuple random_tuple(Rng& rng, Timestamp ts) {
  Tuple t;
  t.ts = ts;
  const auto cell = [&](int declared) -> Value {
    if (rng.next_below(8) == 0) {  // type deviation
      declared = static_cast<int>(rng.next_below(3));
    }
    switch (declared) {
      case 0: return Value{rng.next_range(-5, 5)};
      case 1: return Value{rng.next_double(-5.0, 5.0)};
      default: return Value{std::string(1, static_cast<char>(
                                'a' + rng.next_below(4)))};
    }
  };
  t.values = {cell(0), cell(1), cell(2)};
  return t;
}

enum class Outcome { kTrue, kFalse, kInvalidArg, kOutOfRange, kLogicError };

const char* name(Outcome o) {
  switch (o) {
    case Outcome::kTrue: return "true";
    case Outcome::kFalse: return "false";
    case Outcome::kInvalidArg: return "invalid_argument";
    case Outcome::kOutOfRange: return "out_of_range";
    case Outcome::kLogicError: return "logic_error";
  }
  return "?";
}

template <typename Fn>
Outcome run(Fn&& fn) {
  try {
    return fn() ? Outcome::kTrue : Outcome::kFalse;
  } catch (const std::invalid_argument&) {
    return Outcome::kInvalidArg;
  } catch (const std::out_of_range&) {
    return Outcome::kOutOfRange;
  } catch (const std::logic_error&) {
    return Outcome::kLogicError;
  }
}

TEST(CompiledPredicateFuzz, AgreesWithInterpreterRowForRow) {
  const Schema ls = left_schema();
  const Schema rs = right_schema();
  const std::vector<BindingSpec> bindings{{"S1", &ls, SIZE_MAX},
                                          {"S2", &rs, SIZE_MAX}};
  Rng rng{20260728};
  std::size_t checked = 0;
  std::size_t threw = 0;
  for (int tree = 0; tree < 300; ++tree) {
    const PredicatePtr p = random_tree(rng, 3);
    CompiledPredicate compiled;
    try {
      compiled = CompiledPredicate::compile_lenient(p, bindings);
    } catch (const std::exception& e) {
      ADD_FAILURE() << "lenient compile threw on " << p->to_string() << ": "
                    << e.what();
      continue;
    }
    for (int row = 0; row < 25; ++row) {
      const Tuple lt = random_tuple(rng, rng.next_range(0, 50));
      const Tuple rt = random_tuple(rng, rng.next_range(0, 50));
      const std::vector<Binding> env{{"S1", &ls, &lt}, {"S2", &rs, &rt}};
      const Outcome want = run([&] { return p->eval(env); });
      const Outcome got = run([&] { return compiled.eval(lt, rt); });
      ASSERT_EQ(got, want) << "predicate " << p->to_string() << "\nwant "
                           << name(want) << " got " << name(got);
      ++checked;
      if (want != Outcome::kTrue && want != Outcome::kFalse) ++threw;
    }
    // Strict compilation: exactly the trees whose lenient program can
    // throw an unresolved-field error must be rejected at compile time.
    if (compiled.may_throw()) {
      EXPECT_THROW((void)CompiledPredicate::compile(p, bindings),
                   std::invalid_argument)
          << p->to_string();
    } else {
      EXPECT_NO_THROW((void)CompiledPredicate::compile(p, bindings))
          << p->to_string();
    }
  }
  EXPECT_GT(checked, 5000u);
  // The generator must actually exercise the throwing paths.
  EXPECT_GT(threw, 0u);
}

TEST(CompiledPredicateFuzz, FilterBatchMatchesPerRowEval) {
  const Schema ls = left_schema();
  const std::vector<BindingSpec> bindings{{"S1", &ls, SIZE_MAX}};
  Rng rng{424242};
  std::size_t nonempty = 0;
  for (int tree = 0; tree < 120; ++tree) {
    const PredicatePtr p = random_tree(rng, 2);
    const auto compiled = CompiledPredicate::compile_lenient(p, bindings);
    if (compiled.may_throw()) continue;  // throwing rows can't batch-filter

    runtime::TupleBatch batch{"S"};
    std::vector<Tuple> tuples;
    for (int i = 0; i < 40; ++i) {
      tuples.push_back(random_tuple(rng, i));
      batch.push_back(tuples.back());
    }
    std::vector<std::uint32_t> want;
    bool threw = false;
    for (std::uint32_t r = 0; r < tuples.size(); ++r) {
      const std::vector<Binding> env{{"S1", &ls, &tuples[r]}};
      try {
        if (p->eval(env)) want.push_back(r);
      } catch (const std::exception&) {
        threw = true;
        break;
      }
    }
    if (threw) continue;  // e.g. string-vs-numeric on a deviant cell

    std::vector<std::uint32_t> got;
    compiled.filter_batch(batch, nullptr, got);
    ASSERT_EQ(got, want) << p->to_string();
    if (!want.empty()) ++nonempty;

    // Selection-vector path: filtering a subset must equal the subset of
    // the full result.
    std::vector<std::uint32_t> sel;
    for (std::uint32_t r = 0; r < tuples.size(); r += 2) sel.push_back(r);
    std::vector<std::uint32_t> want_sel;
    for (const auto r : want) {
      if (r % 2 == 0) want_sel.push_back(r);
    }
    std::vector<std::uint32_t> got_sel;
    compiled.filter_batch(batch, &sel, got_sel);
    EXPECT_EQ(got_sel, want_sel) << p->to_string();
  }
  EXPECT_GT(nonempty, 10u);
}

TEST(CompiledPredicate, VirtualTimestampColumnReadsRowTimestamp) {
  // Lifted schema whose last column is the plan-appended timestamp; batch
  // rows are raw (one column narrower) and the slot must read the row ts.
  const Schema lifted{{{"S.v", ValueType::kInt},
                       {"S.timestamp", ValueType::kInt}}};
  const std::vector<BindingSpec> bindings{{"", &lifted, 1}};
  const auto compiled = CompiledPredicate::compile(
      Predicate::cmp(FieldRef{"", "S.timestamp"}, CmpOp::kGe, Value{100}),
      bindings);

  runtime::TupleBatch raw{"S"};
  raw.push_back(Tuple{50, {Value{1}}});
  raw.push_back(Tuple{100, {Value{2}}});
  raw.push_back(Tuple{150, {Value{3}}});
  std::vector<std::uint32_t> out;
  compiled.filter_batch(raw, nullptr, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 2}));

  // The same program over a physically lifted tuple reads the same value.
  const Tuple lifted_tuple{150, {Value{3}, Value{150}}};
  EXPECT_TRUE(compiled.eval(lifted_tuple));
}

TEST(CompiledPredicate, StrictCompileThrowsOnUnresolvedField) {
  const Schema ls = left_schema();
  const std::vector<BindingSpec> bindings{{"S1", &ls, SIZE_MAX}};
  EXPECT_THROW(
      (void)CompiledPredicate::compile(
          Predicate::cmp(FieldRef{"S1", "missing"}, CmpOp::kEq, Value{1}),
          bindings),
      std::invalid_argument);
  EXPECT_THROW(
      (void)CompiledPredicate::compile(
          Predicate::cmp(FieldRef{"S9", "a"}, CmpOp::kEq, Value{1}),
          bindings),
      std::invalid_argument);
  // Null binding schema is a compile-time error in either mode.
  const std::vector<BindingSpec> null_bindings{{"S1", nullptr, SIZE_MAX}};
  EXPECT_THROW((void)CompiledPredicate::compile_lenient(
                   Predicate::always_true(), null_bindings),
               std::invalid_argument);
}

TEST(CompiledPredicate, LenientThrowOnlyWhenShortCircuitReachesLeaf) {
  const Schema ls = left_schema();
  const std::vector<BindingSpec> bindings{{"S1", &ls, SIZE_MAX}};
  // a > 0 AND missing > 0: rows failing the first conjunct never reach the
  // unresolved leaf — exactly the interpreter's behaviour.
  const auto p = Predicate::conj(
      {Predicate::cmp(FieldRef{"S1", "a"}, CmpOp::kGt, Value{0}),
       Predicate::cmp(FieldRef{"S1", "missing"}, CmpOp::kGt, Value{0})});
  const auto compiled = CompiledPredicate::compile_lenient(p, bindings);
  EXPECT_TRUE(compiled.may_throw());
  const Tuple fails_first{0, {Value{-1}, Value{0.0}, Value{"z"}}};
  EXPECT_FALSE(compiled.eval(fails_first));
  const Tuple passes_first{0, {Value{1}, Value{0.0}, Value{"z"}}};
  EXPECT_THROW((void)compiled.eval(passes_first), std::invalid_argument);
}

TEST(EquiSplit, ExtractsTypeCompatibleCrossSideEqualities) {
  const Schema ls = left_schema();
  const Schema rs = right_schema();
  const std::vector<BindingSpec> bindings{{"L", &ls, SIZE_MAX},
                                          {"R", &rs, SIZE_MAX}};
  const auto p = Predicate::conj(
      {Predicate::cmp(FieldRef{"L", "a"}, CmpOp::kEq, FieldRef{"R", "x"}),
       Predicate::cmp(FieldRef{"L", "s"}, CmpOp::kEq, FieldRef{"R", "t"}),
       Predicate::cmp(FieldRef{"L", "b"}, CmpOp::kGt, FieldRef{"R", "y"})});
  const auto split = split_equi_conjuncts(p, bindings);
  ASSERT_EQ(split.keys.size(), 2u);
  EXPECT_EQ(split.keys[0].left, (FieldSlot{0, 0}));   // L.a
  EXPECT_EQ(split.keys[0].right, (FieldSlot{1, 0}));  // R.x
  EXPECT_EQ(split.keys[1].left, (FieldSlot{0, 2}));   // L.s
  EXPECT_EQ(split.keys[1].right, (FieldSlot{1, 2}));  // R.t
  EXPECT_EQ(split.residual->to_string(), "L.b > R.y");
}

TEST(EquiSplit, RejectsUnsuitableConjuncts) {
  const Schema ls = left_schema();
  const Schema rs = right_schema();
  const std::vector<BindingSpec> bindings{{"L", &ls, SIZE_MAX},
                                          {"R", &rs, SIZE_MAX}};
  // String vs numeric columns: the interpreter throws per pair, so a hash
  // key may not absorb it.
  auto split = split_equi_conjuncts(
      Predicate::cmp(FieldRef{"L", "a"}, CmpOp::kEq, FieldRef{"R", "t"}),
      bindings);
  EXPECT_TRUE(split.keys.empty());
  // Same-side equality is a filter, not a join key.
  split = split_equi_conjuncts(
      Predicate::cmp(FieldRef{"L", "a"}, CmpOp::kEq, FieldRef{"L", "b"}),
      bindings);
  EXPECT_TRUE(split.keys.empty());
  // Non-conjunctive trees are untouched.
  split = split_equi_conjuncts(
      Predicate::disj(
          {Predicate::cmp(FieldRef{"L", "a"}, CmpOp::kEq, FieldRef{"R", "x"}),
           Predicate::always_true()}),
      bindings);
  EXPECT_TRUE(split.keys.empty());
  EXPECT_EQ(split.residual->kind(), Predicate::Kind::kOr);
}

TEST(EquiSplit, RejectsRefsThatFlipSidesWithBindingOrder) {
  // Both schemas expose "v": an empty-alias ref resolves to whichever
  // binding is scanned first, so it cannot anchor a hash key.
  const Schema ls{{{"v", ValueType::kInt}, {"w", ValueType::kInt}}};
  const Schema rs{{{"v", ValueType::kInt}, {"u", ValueType::kInt}}};
  const std::vector<BindingSpec> bindings{{"L", &ls, SIZE_MAX},
                                          {"R", &rs, SIZE_MAX}};
  const auto split = split_equi_conjuncts(
      Predicate::cmp(FieldRef{"", "v"}, CmpOp::kEq, FieldRef{"R", "u"}),
      bindings);
  EXPECT_TRUE(split.keys.empty());
  // An unambiguous empty-alias ref still qualifies.
  const auto ok = split_equi_conjuncts(
      Predicate::cmp(FieldRef{"", "w"}, CmpOp::kEq, FieldRef{"", "u"}),
      bindings);
  ASSERT_EQ(ok.keys.size(), 1u);
  EXPECT_EQ(ok.keys[0].left, (FieldSlot{0, 1}));   // L.w
  EXPECT_EQ(ok.keys[0].right, (FieldSlot{1, 1}));  // R.u
}

TEST(ConstSplit, ExtractsSingleColumnConstantConjuncts) {
  const Schema ls = left_schema();
  const std::vector<BindingSpec> bindings{{"", &ls, SIZE_MAX}};
  const auto p = Predicate::conj(
      {Predicate::cmp(FieldRef{"", "a"}, CmpOp::kEq, Value{3}),
       Predicate::cmp(FieldRef{"", "b"}, CmpOp::kGe, Value{1.5}),
       Predicate::cmp(FieldRef{"", "b"}, CmpOp::kLt, Value{2.5}),
       Predicate::cmp(FieldRef{"", "a"}, CmpOp::kNe, Value{9}),       // kNe
       Predicate::cmp(FieldRef{"", "a"}, CmpOp::kGt, FieldRef{"", "b"})});
  const auto split = split_const_conjuncts(p, bindings);
  EXPECT_TRUE(split.conjunctive);
  EXPECT_TRUE(split.statically_safe);
  ASSERT_EQ(split.conjuncts.size(), 5u);
  ASSERT_EQ(split.indexable.size(), 3u);  // kNe and field-field excluded
  EXPECT_EQ(split.indexable[0].position, 0u);
  EXPECT_EQ(split.indexable[0].slot, (FieldSlot{0, 0}));
  EXPECT_EQ(split.indexable[0].op, CmpOp::kEq);
  EXPECT_EQ(split.indexable[1].position, 1u);
  EXPECT_EQ(split.indexable[1].op, CmpOp::kGe);
  EXPECT_EQ(split.indexable[2].position, 2u);
  EXPECT_EQ(split.indexable[2].op, CmpOp::kLt);
}

TEST(ConstSplit, TimestampPseudoFieldAnchorsOnTsSlot) {
  const Schema ls = left_schema();
  const std::vector<BindingSpec> bindings{{"", &ls, SIZE_MAX}};
  const auto split = split_const_conjuncts(
      Predicate::cmp(FieldRef{"", "timestamp"}, CmpOp::kGe, Value{100}),
      bindings);
  ASSERT_EQ(split.indexable.size(), 1u);
  EXPECT_EQ(split.indexable[0].slot.col, FieldSlot::kTsCol);
}

TEST(ConstSplit, RejectsMismatchedClassesAndNonConjunctions) {
  const Schema ls = left_schema();
  const std::vector<BindingSpec> bindings{{"", &ls, SIZE_MAX}};
  // String column vs numeric constant throws rather than matches: not
  // indexable, and the whole tree is statically unsafe.
  auto split = split_const_conjuncts(
      Predicate::conj(
          {Predicate::cmp(FieldRef{"", "a"}, CmpOp::kEq, Value{1}),
           Predicate::cmp(FieldRef{"", "s"}, CmpOp::kGt, Value{0.5})}),
      bindings);
  EXPECT_TRUE(split.conjunctive);
  EXPECT_FALSE(split.statically_safe);
  EXPECT_EQ(split.indexable.size(), 1u);
  // String-string comparisons are safe and (for ==) indexable.
  split = split_const_conjuncts(
      Predicate::cmp(FieldRef{"", "s"}, CmpOp::kEq, Value{"x"}), bindings);
  EXPECT_TRUE(split.statically_safe);
  ASSERT_EQ(split.indexable.size(), 1u);
  // An unresolvable ref anywhere makes the tree unsafe.
  split = split_const_conjuncts(
      Predicate::conj(
          {Predicate::cmp(FieldRef{"", "a"}, CmpOp::kEq, Value{1}),
           Predicate::cmp(FieldRef{"", "missing"}, CmpOp::kGt, Value{0})}),
      bindings);
  EXPECT_FALSE(split.statically_safe);
  // Top-level OR: non-conjunctive, nothing extractable.
  split = split_const_conjuncts(
      Predicate::disj(
          {Predicate::cmp(FieldRef{"", "a"}, CmpOp::kEq, Value{1}),
           Predicate::cmp(FieldRef{"", "a"}, CmpOp::kEq, Value{2})}),
      bindings);
  EXPECT_FALSE(split.conjunctive);
  EXPECT_TRUE(split.conjuncts.empty());
  EXPECT_TRUE(split.indexable.empty());
}

TEST(ConstSplit, StaticallyWellTypedWalksNestedTrees) {
  const Schema ls = left_schema();
  const std::vector<BindingSpec> bindings{{"", &ls, SIZE_MAX}};
  // A type clash buried under NOT inside an OR is still detected.
  const auto bad = Predicate::conj(
      {Predicate::cmp(FieldRef{"", "a"}, CmpOp::kGt, Value{0}),
       Predicate::disj(
           {Predicate::cmp(FieldRef{"", "b"}, CmpOp::kLt, Value{1.0}),
            Predicate::negate(Predicate::cmp(FieldRef{"", "s"}, CmpOp::kGt,
                                             Value{3}))})});
  EXPECT_FALSE(statically_well_typed(bad, bindings));
  const auto good = Predicate::conj(
      {Predicate::time_band(FieldRef{"", "timestamp"}, FieldRef{"", "a"},
                            500),
       Predicate::cmp(FieldRef{"", "s"}, CmpOp::kEq, FieldRef{"", "s"})});
  EXPECT_TRUE(statically_well_typed(good, bindings));
  // TimeBand over a string operand would throw std::logic_error per row.
  EXPECT_FALSE(statically_well_typed(
      Predicate::time_band(FieldRef{"", "timestamp"}, FieldRef{"", "s"}, 500),
      bindings));
}

TEST(CompiledPredicate, EvalUnresolvedFalseMatchesCatchSemantics) {
  const Schema ls = left_schema();
  const std::vector<BindingSpec> bindings{{"S1", &ls, SIZE_MAX}};
  const auto p = Predicate::conj(
      {Predicate::cmp(FieldRef{"S1", "a"}, CmpOp::kGt, Value{0}),
       Predicate::cmp(FieldRef{"S1", "missing"}, CmpOp::kGt, Value{0})});
  const auto compiled = CompiledPredicate::compile_lenient(p, bindings);
  const Tuple fails_first{0, {Value{-1}, Value{0.0}, Value{"z"}}};
  const Tuple reaches_throw{0, {Value{1}, Value{0.0}, Value{"z"}}};
  const CompiledPredicate::Row r0{fails_first.ts, fails_first.values.data(),
                                  3};
  const CompiledPredicate::Row r1{reaches_throw.ts,
                                  reaches_throw.values.data(), 3};
  EXPECT_FALSE(compiled.eval_unresolved_false(&r0));
  EXPECT_FALSE(compiled.eval_unresolved_false(&r1));  // no throw
  // Type errors still propagate exactly like eval().
  const auto typed = CompiledPredicate::compile_lenient(
      Predicate::cmp(FieldRef{"S1", "s"}, CmpOp::kGt, Value{1}), bindings);
  const CompiledPredicate::Row rs{0, reaches_throw.values.data(), 3};
  EXPECT_THROW((void)typed.eval_unresolved_false(&rs), std::logic_error);
  // Batch form agrees with the scalar form row for row.
  runtime::TupleBatch batch{"S"};
  batch.push_back(fails_first);
  batch.push_back(reaches_throw);
  std::vector<std::uint32_t> out;
  compiled.filter_batch_unresolved_false(batch, nullptr, out);
  EXPECT_TRUE(out.empty());
  const auto resolvable = CompiledPredicate::compile_lenient(
      Predicate::cmp(FieldRef{"S1", "a"}, CmpOp::kGt, Value{0}), bindings);
  resolvable.filter_batch_unresolved_false(batch, nullptr, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1}));
}

}  // namespace
}  // namespace cosmos::stream
