// The Fig. 5 / Table 2 worked example of Section 3.1.2.
//
// Two sources s1, s2 (no capability) and two equal processors n1, n2 on a
// line s1 -2- n1 -5- n2 -2- s2. Four queries:
//   Q1: 10 B/s from s1, result 1 B/s to n1, load 0.1
//   Q2: 10 B/s from s2, result 1 B/s to n1, load 0.1
//   Q3:  5 B/s from s1, result 1 B/s to n2, load 0.1
//   Q4:  5 B/s from s2, result 1 B/s to n2, load 0.1
// Q3's requested data is contained in Q1's, so the q-q edge Q1--Q3 carries
// weight 5 (equal to the s1--Q3 edge), exactly as the paper prescribes.
//
// Table 2's qualitative claim: mapping all queries to their proxies
// (scheme 1) is worst; the sharing-oblivious optimum (scheme 2) is beaten
// by scheme 3, which co-locates the overlapping Q1 and Q3. Algorithm 2 must
// find scheme 3.
#include <gtest/gtest.h>

#include "graph/edge_model.h"
#include "graph/mapping.h"

namespace cosmos::graph {
namespace {

constexpr NodeId kS1{0}, kS2{1}, kN1{2}, kN2{3};

struct PaperExample {
  query::SubstreamSpace space;
  std::vector<query::InterestProfile> profiles;
  QueryGraph qg;
  NetworkGraph ng;

  PaperExample()
      : space{// substream 0: the 5 B/s slice of s1 both Q1 and Q3 want;
              // substream 1: the rest of Q1's s1 data; 2..4 live at s2,
              // with Q4's substream disjoint from Q2's (only the Q1-Q3
              // overlap edge exists, as in the paper's figure).
              {kS1, kS1, kS2, kS2, kS2},
              {5.0, 5.0, 5.0, 5.0, 5.0}} {
    const auto mk = [this](QueryId id, std::initializer_list<int> bits,
                           NodeId proxy) {
      query::InterestProfile p;
      p.query = id;
      p.proxy = proxy;
      p.interest = BitVector{5};
      for (const int b : bits) p.interest.set(static_cast<std::size_t>(b));
      p.output_rate = 1.0;
      p.load = 0.1;
      profiles.push_back(std::move(p));
    };
    mk(QueryId{1}, {0, 1}, kN1);  // Q1: 10 from s1
    mk(QueryId{2}, {2, 3}, kN1);  // Q2: 10 from s2
    mk(QueryId{3}, {0}, kN2);     // Q3: 5 from s1 (inside Q1's interest)
    mk(QueryId{4}, {4}, kN2);     // Q4: 5 from s2, disjoint from Q2

    EdgeModel model{space};
    std::vector<QueryVertex> items;
    for (const auto& p : profiles) items.push_back(to_query_vertex(p));
    Rng rng{1};
    qg = build_query_graph(items, model, {}, nullptr, rng);

    ng.add_vertex({"n1", 1.0, true, kN1});
    ng.add_vertex({"n2", 1.0, true, kN2});
    ng.add_vertex({"s1", 0.0, false, kS1});
    ng.add_vertex({"s2", 0.0, false, kS2});
    ng.finalize_vertices();
    // Line: s1 -2- n1 -5- n2 -2- s2 (shortest-path closure).
    ng.set_distance(2, 0, 2.0);   // s1-n1
    ng.set_distance(0, 1, 5.0);   // n1-n2
    ng.set_distance(1, 3, 2.0);   // n2-s2
    ng.set_distance(2, 1, 7.0);   // s1-n2
    ng.set_distance(0, 3, 7.0);   // n1-s2
    ng.set_distance(2, 3, 9.0);   // s1-s2
    // Pin n-vertices of the query graph onto the network graph.
    for (QueryGraph::VertexIndex i = 0; i < qg.size(); ++i) {
      auto& v = qg.vertex(i);
      if (!v.is_n()) continue;
      const auto k = ng.find_by_node(v.node);
      v.clu = ng.vertex(k).assignable ? static_cast<int>(k) : -1;
    }
  }

  /// Assignment for a scheme: q1..q4 -> processor vertex (0=n1, 1=n2).
  std::vector<NetworkGraph::VertexIndex> scheme(
      std::initializer_list<int> targets) const {
    std::vector<NetworkGraph::VertexIndex> a(qg.size());
    std::size_t qi = 0;
    for (QueryGraph::VertexIndex i = 0; i < qg.size(); ++i) {
      if (qg.vertex(i).is_n()) {
        a[i] = ng.find_by_node(qg.vertex(i).node);
      } else {
        a[i] = static_cast<NetworkGraph::VertexIndex>(*(targets.begin() + qi));
        ++qi;
      }
    }
    return a;
  }
};

TEST(PaperExample, GraphHasOverlapEdgeQ1Q3) {
  PaperExample ex;
  // Vertex order: q-vertices first, in profile order (Q1..Q4).
  double q1q3 = 0.0, s1q3 = 0.0;
  const auto s1_vertex = ex.qg.find_network_vertex(kS1);
  for (const auto& e : ex.qg.neighbors(2)) {  // Q3
    if (e.to == 0) q1q3 = e.weight;
    if (e.to == s1_vertex) s1q3 = e.weight;
  }
  EXPECT_DOUBLE_EQ(q1q3, 5.0);
  EXPECT_DOUBLE_EQ(q1q3, s1q3);  // the paper's construction rule
}

TEST(PaperExample, Table2SchemeOrdering) {
  PaperExample ex;
  // Scheme 1: queries at their proxies (Q1,Q2->n1; Q3,Q4->n2).
  const double wec1 =
      weighted_edge_cut(ex.qg, ex.ng, ex.scheme({0, 0, 1, 1}));
  // Scheme 2: sharing-oblivious optimum (Q1,Q4->n1; Q2,Q3->n2).
  const double wec2 =
      weighted_edge_cut(ex.qg, ex.ng, ex.scheme({0, 1, 1, 0}));
  // Scheme 3: co-locate the overlapping pair (Q1,Q3->n1; Q2,Q4->n2).
  const double wec3 =
      weighted_edge_cut(ex.qg, ex.ng, ex.scheme({0, 1, 0, 1}));
  EXPECT_GT(wec1, wec2);
  EXPECT_GT(wec2, wec3);
  // Concrete values for this instance (documents the arithmetic).
  EXPECT_DOUBLE_EQ(wec1, 160.0);
  EXPECT_DOUBLE_EQ(wec2, 145.0);
  EXPECT_DOUBLE_EQ(wec3, 70.0);
}

TEST(PaperExample, Algorithm2FindsScheme3) {
  PaperExample ex;
  Rng rng{2};
  const auto result = map_query_graph(ex.qg, ex.ng, {}, rng);
  EXPECT_TRUE(result.load_feasible);
  EXPECT_DOUBLE_EQ(result.wec, 70.0);
  // Q1 and Q3 co-located on n1; Q2 and Q4 on n2.
  EXPECT_EQ(result.assignment[0], result.assignment[2]);
  EXPECT_EQ(result.assignment[1], result.assignment[3]);
  EXPECT_NE(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(ex.ng.vertex(result.assignment[0]).node, kN1);
}

TEST(PaperExample, LoadBalancedAtPointTwo) {
  PaperExample ex;
  Rng rng{3};
  const auto result = map_query_graph(ex.qg, ex.ng, {}, rng);
  const auto loads = load_per_vertex(ex.qg, ex.ng, result.assignment);
  EXPECT_NEAR(loads[0], 0.2, 1e-9);
  EXPECT_NEAR(loads[1], 0.2, 1e-9);
}

}  // namespace
}  // namespace cosmos::graph
