#include "sim/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/topology.h"

namespace cosmos::sim {
namespace {

net::Deployment deployment_fixture(std::uint64_t seed) {
  Rng rng{seed};
  net::TransitStubParams tp;
  tp.transit_domains = 2;
  tp.transit_nodes_per_domain = 2;
  tp.stub_domains_per_transit = 2;
  tp.stub_nodes_per_domain = 10;
  const auto topo = net::make_transit_stub(tp, rng);
  net::DeploymentParams dp;
  dp.num_sources = 6;
  dp.num_processors = 12;
  return net::make_deployment(topo, dp, rng);
}

TEST(Workload, SubstreamRatesInBand) {
  const auto d = deployment_fixture(1);
  WorkloadParams p;
  p.num_substreams = 500;
  WorkloadGenerator g{d, p, 2};
  for (std::size_t i = 0; i < g.space().size(); ++i) {
    const SubstreamId s{static_cast<SubstreamId::value_type>(i)};
    EXPECT_GE(g.space().rate(s), p.rate_min);
    EXPECT_LT(g.space().rate(s), p.rate_max);
    EXPECT_TRUE(d.is_source(g.space().origin(s)));
  }
}

TEST(Workload, QueryInterestSizeInBand) {
  const auto d = deployment_fixture(3);
  WorkloadParams p;
  p.num_substreams = 500;
  p.interest_min = 20;
  p.interest_max = 40;
  WorkloadGenerator g{d, p, 4};
  for (int i = 0; i < 50; ++i) {
    const auto q = g.make_query();
    EXPECT_GE(q.interest.count(), 20u);
    EXPECT_LE(q.interest.count(), 40u);
    EXPECT_TRUE(d.is_processor(q.proxy));
    EXPECT_GT(q.load, 0.0);
    EXPECT_GT(q.output_rate, 0.0);
    EXPECT_LT(q.output_rate, q.input_rate(g.space()));
  }
}

TEST(Workload, SequentialQueryIds) {
  const auto d = deployment_fixture(5);
  WorkloadParams p;
  p.num_substreams = 200;
  p.interest_min = 5;
  p.interest_max = 10;
  WorkloadGenerator g{d, p, 6};
  const auto qs = g.make_queries(10);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(qs[i].query.value(), i);
  }
}

TEST(Workload, GroupsHaveDistinctHotSpots) {
  // With strong zipf skew, queries from the same generator still differ in
  // hot substreams across groups; verify global coverage is broad.
  const auto d = deployment_fixture(7);
  WorkloadParams p;
  p.num_substreams = 1000;
  p.groups = 5;
  p.interest_min = 30;
  p.interest_max = 60;
  WorkloadGenerator g{d, p, 8};
  BitVector covered{1000};
  for (int i = 0; i < 100; ++i) covered.merge(g.make_query().interest);
  // Zipf over 5 distinct permutations covers much more than one hot set.
  EXPECT_GT(covered.count(), 300u);
}

TEST(Workload, ZipfSkewMakesSubstreamsPopular) {
  const auto d = deployment_fixture(9);
  WorkloadParams p;
  p.num_substreams = 500;
  p.groups = 1;
  p.interest_min = 20;
  p.interest_max = 20;
  WorkloadGenerator g{d, p, 10};
  std::vector<int> popularity(500, 0);
  for (int i = 0; i < 200; ++i) {
    for (const auto b : g.make_query().interest.set_bits()) {
      ++popularity[b];
    }
  }
  std::sort(popularity.rbegin(), popularity.rend());
  // Hottest substream appears in far more queries than the median one.
  EXPECT_GT(popularity[0], 10 * std::max(1, popularity[250]));
}

TEST(Workload, PerturbRatesScalesAndRefreshes) {
  const auto d = deployment_fixture(11);
  WorkloadParams p;
  p.num_substreams = 100;
  p.interest_min = 50;
  p.interest_max = 60;
  WorkloadGenerator g{d, p, 12};
  auto qs = g.make_queries(5);
  const double load_before = qs[0].load;
  const auto affected = g.perturb_rates(100, 2.0);
  EXPECT_EQ(affected.size(), 100u);
  g.refresh_profiles(qs);
  EXPECT_GT(qs[0].load, load_before);
  EXPECT_THROW(g.perturb_rates(1, 0.0), std::invalid_argument);
}

TEST(SkewedTrace, OrderedSkewedAndDeterministic) {
  SkewedTraceParams p;
  p.stations = 10;
  p.total_tuples = 5'000;
  p.duration_ms = 3'600'000;
  p.zipf_theta = 0.9;
  p.perturb_pattern = "ID";
  Rng rng{5};
  const auto trace = make_skewed_trace(p, rng);
  ASSERT_FALSE(trace.empty());
  // Roughly the requested volume (rounding per station/segment).
  EXPECT_GT(trace.size(), p.total_tuples * 8 / 10);
  EXPECT_LT(trace.size(), p.total_tuples * 12 / 10);
  // Globally timestamp-ordered within the duration, all stations valid.
  std::vector<std::size_t> per_station(p.stations, 0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_LT(trace[i].station, p.stations);
    ++per_station[trace[i].station];
    EXPECT_GE(trace[i].tuple.ts, 0);
    EXPECT_LT(trace[i].tuple.ts, p.duration_ms);
    if (i > 0) EXPECT_GE(trace[i].tuple.ts, trace[i - 1].tuple.ts);
  }
  // Zipf skew: the busiest station clearly out-publishes the quietest.
  const auto [lo, hi] =
      std::minmax_element(per_station.begin(), per_station.end());
  EXPECT_GT(*hi, 2 * std::max<std::size_t>(1, *lo));
  // Same params + seed => identical trace.
  Rng rng2{5};
  const auto again = make_skewed_trace(p, rng2);
  ASSERT_EQ(again.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(again[i].station, trace[i].station);
    EXPECT_EQ(again[i].tuple.ts, trace[i].tuple.ts);
  }
}

TEST(SkewedTrace, PerturbationShiftsLoadBetweenSegments) {
  SkewedTraceParams p;
  p.stations = 6;
  p.total_tuples = 6'000;
  p.duration_ms = 2'000'000;
  p.zipf_theta = 0.3;
  p.perturb_pattern = "I";
  p.perturb_stations = 1;
  p.perturb_factor = 8.0;
  Rng rng{7};
  const auto trace = make_skewed_trace(p, rng);
  // Count per-station tuples in each half (segment boundary at midpoint).
  const auto half = p.duration_ms / 2;
  std::vector<double> first(p.stations, 0), second(p.stations, 0);
  for (const auto& r : trace) {
    (r.tuple.ts < half ? first : second)[r.station] += 1.0;
  }
  // Some station's share must have changed substantially across the
  // boundary (the 8x 'I' perturbation).
  double total1 = 0, total2 = 0;
  for (std::size_t s = 0; s < p.stations; ++s) {
    total1 += first[s];
    total2 += second[s];
  }
  double max_shift = 0.0;
  for (std::size_t s = 0; s < p.stations; ++s) {
    max_shift = std::max(
        max_shift, std::abs(first[s] / total1 - second[s] / total2));
  }
  EXPECT_GT(max_shift, 0.15);
  EXPECT_THROW(make_skewed_trace(SkewedTraceParams{.stations = 0}, rng),
               std::invalid_argument);
}

TEST(Workload, DeterministicAcrossSeeds) {
  const auto d = deployment_fixture(13);
  WorkloadParams p;
  p.num_substreams = 300;
  p.interest_min = 10;
  p.interest_max = 20;
  WorkloadGenerator g1{d, p, 99}, g2{d, p, 99};
  const auto a = g1.make_query();
  const auto b = g2.make_query();
  EXPECT_EQ(a.interest, b.interest);
  EXPECT_EQ(a.proxy, b.proxy);
  EXPECT_DOUBLE_EQ(a.load, b.load);
}

}  // namespace
}  // namespace cosmos::sim
