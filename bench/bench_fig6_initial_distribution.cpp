// Figure 6 — Initial query distribution.
//
// (a) Weighted communication cost of Centralized / Hierarchical / Greedy /
//     Naive as the number of queries grows.
// (b) Response time and total time of the centralized vs hierarchical
//     mapping algorithms.
//
// Expected shape (paper): Naive worst by a wide margin; Greedy in between;
// Hierarchical ~= Centralized; hierarchical response and total time far
// below centralized.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace cosmos;
using namespace cosmos::bench;

int main() {
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  SimSetup setup{scale, /*cluster_k=*/4, seed};

  std::vector<std::size_t> query_counts;
  for (const std::size_t q : {5'000, 10'000, 20'000, 30'000, 40'000, 60'000}) {
    query_counts.push_back(
        std::max<std::size_t>(200, static_cast<std::size_t>(q * scale)));
  }

  std::printf("# Fig 6: initial query distribution (scale=%.2f seed=%llu)\n",
              scale, static_cast<unsigned long long>(seed));
  std::printf("# procs=%zu sources=%zu substreams=%zu\n",
              setup.deployment.processors.size(),
              setup.deployment.sources.size(), setup.workload->space().size());
  std::printf(
      "%10s %14s %14s %14s %14s | %12s %12s %12s\n", "queries", "naive",
      "greedy", "hierarchical", "centralized", "cen_total_s", "hie_total_s",
      "hie_resp_s");

  for (const std::size_t nq : query_counts) {
    SimSetup fresh{scale, 4, seed};  // identical workload per row
    const auto profiles = fresh.workload->make_queries(nq);
    const auto pmap = to_map(profiles);

    const double naive =
        fresh.pairwise_total(sim::naive_placement(profiles), pmap);

    Rng g_rng{seed + 2};
    const auto greedy = sim::centralized_placement(
        profiles, fresh.deployment, fresh.workload->space(), {}, {},
        /*refine=*/false, g_rng);
    const double greedy_cost = fresh.pairwise_total(greedy.placement, pmap);

    auto dist = fresh.make_distributor(seed + 3);
    const auto timing = dist.distribute(profiles);
    const double hier = fresh.pairwise_total(dist.placement(), pmap);

    Rng c_rng{seed + 4};
    const auto central = sim::centralized_placement(
        profiles, fresh.deployment, fresh.workload->space(), {}, {},
        /*refine=*/true, c_rng);
    const double central_cost = fresh.pairwise_total(central.placement, pmap);

    std::printf("%10zu %14.3e %14.3e %14.3e %14.3e | %12.3f %12.3f %12.3f\n",
                nq, naive, greedy_cost, hier, central_cost, central.seconds,
                timing.total_seconds, timing.response_seconds);
    std::fflush(stdout);
  }
  return 0;
}
