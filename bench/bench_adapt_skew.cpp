// Adaptation under skew: live operator migration (src/adapt/) on a
// Zipf-skewed, rate-perturbed station workload (the Fig 10 scenario as an
// executable trace). Each processor hosts one windowed join over two
// stations; station rates are heavily skewed and the hot set shifts
// mid-trace, so a static engine→shard pinning leaves one shard on the
// critical path. Configurations:
//   push        — synchronous single-thread baseline (result identity)
//   run:rr      — default round-robin pinning (also the measurement pass
//                 that derives per-engine load from the new per-engine
//                 RuntimeStats)
//   run:worst   — static worst-case pinning: heaviest engines packed onto
//                 the same shards (sorted fill), adaptation off
//   run:adapt   — same worst-case start, adaptation ON: the LoadMonitor /
//                 MigrationPlanner / Migrator loop re-pins engines between
//                 chunks
//   run:oracle  — static LPT placement using measured loads (what offline
//                 re-optimization with perfect foresight would pick)
// The headline number is critical-path tuples/s = tuples / max(driver CPU,
// slowest shard CPU); the acceptance bar is run:adapt >= 1.5x run:worst,
// with per-query result sequences identical across every configuration.
//
// --smoke runs a scaled-down trace and is the CI regression gate: metrics
// land in BENCH_adapt_skew.json and scripts/check_bench.py compares them
// against bench/baselines/BENCH_adapt_skew.json.
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_common.h"
#include "cosmos/cosmos.h"

using namespace cosmos;
using namespace cosmos::bench;

namespace {

/// Windowed join over stations (2i, 2i+1): a wide window on the first
/// alias (the scan work), a short one on the second, and both-alias
/// predicates so nothing is pushed below the join.
query::QuerySpec make_join_query(QueryId id, NodeId proxy, std::size_t s1,
                                 std::size_t s2) {
  query::QuerySpec spec;
  spec.id = id;
  spec.proxy = proxy;
  spec.sources = {{sim::station_stream_name(s1), "S1",
                   stream::WindowSpec::range_millis(3 * 3'600'000)},
                  {sim::station_stream_name(s2), "S2",
                   stream::WindowSpec::range_millis(45 * 60'000)}};
  spec.select = {{"S1", "snowHeight"},
                 {"S1", "timestamp"},
                 {"S2", "snowHeight"},
                 {"S2", "timestamp"}};
  // The band is deliberately tight: since PR 4 compiled the operator hot
  // path, a 90s band emitted so many results that the driver's serial p2
  // delivery dominated every configuration's critical path and drowned the
  // shard-load signal this bench exists to measure. The probe work (the
  // skewed, migratable load) scans the full window either way.
  spec.where = stream::Predicate::conj(
      {stream::Predicate::time_band({"S2", "timestamp"}, {"S1", "timestamp"},
                                    15'000),
       stream::Predicate::cmp(stream::FieldRef{"S1", "snowHeight"},
                              stream::CmpOp::kGt,
                              stream::FieldRef{"S2", "snowHeight"}),
       stream::Predicate::cmp(stream::FieldRef{"S1", "temperature"},
                              stream::CmpOp::kGt,
                              stream::FieldRef{"S2", "temperature"})});
  return spec;
}

struct Row {
  std::string name;
  double wall_s = 0.0;
  double crit_s = 0.0;
  std::map<QueryId, std::size_t> per_query;
  middleware::Cosmos::RunReport report;
};

void print_row(const Row& row, std::size_t tuples) {
  std::size_t results = 0;
  for (const auto& [q, n] : row.per_query) results += n;
  std::printf("%-11s %8.3f %11.0f %8.3f %11.0f %9zu %8.3f %8.3f %6zu %8.1f\n",
              row.name.c_str(), row.wall_s,
              static_cast<double>(tuples) / row.wall_s, row.crit_s,
              row.crit_s > 0 ? static_cast<double>(tuples) / row.crit_s : 0.0,
              results, row.report.driver_cpu_seconds,
              row.report.stats.max_busy_seconds(),
              row.report.adaptation.moves,
              row.report.adaptation.state_bytes_migrated / 1024.0);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double scale = env_scale(smoke ? 0.5 : 1.0);
  const std::uint64_t seed = env_seed(42);

  const std::size_t kStations = 24;
  const std::size_t kEngines = 12;  // one join query per processor
  const std::size_t kSources = 4;
  const std::size_t kShards = 4;
  const auto tuples_target =
      std::max<std::size_t>(6'000, static_cast<std::size_t>(48'000 * scale));

  Rng rng{seed};
  const std::size_t kNodes = kSources + kEngines;
  const auto topo = net::make_wide_area_mesh(kNodes, 4, rng);
  std::vector<NodeId> all;
  for (std::size_t i = 0; i < kNodes; ++i) {
    all.push_back(NodeId{static_cast<NodeId::value_type>(i)});
  }
  const net::LatencyMatrix lat{topo, all};
  const std::vector<NodeId> sources(all.begin(), all.begin() + kSources);
  const std::vector<NodeId> processors(all.begin() + kSources, all.end());

  sim::SkewedTraceParams tp;
  tp.stations = kStations;
  tp.total_tuples = tuples_target;
  tp.duration_ms = 4 * 3'600'000;
  tp.zipf_theta = 0.5;
  tp.perturb_pattern = "ID";
  tp.perturb_stations = 2;
  tp.perturb_factor = 4.0;
  Rng trng{seed + 1};
  const auto trace = sim::make_skewed_trace(tp, trng);
  std::vector<runtime::TraceEvent> events;
  events.reserve(trace.size());
  for (const auto& r : trace) {
    events.push_back({sim::station_stream_name(r.station), r.tuple});
  }

  const auto build = [&](std::map<QueryId, std::size_t>& per_query) {
    auto sys = std::make_unique<middleware::Cosmos>(all, lat);
    for (std::size_t st = 0; st < kStations; ++st) {
      sys->register_source(sim::station_stream_name(st), sim::sensor_schema(),
                           sources[st % kSources]);
    }
    for (std::size_t i = 0; i < kEngines; ++i) {
      sys->submit(make_join_query(
                      QueryId{static_cast<QueryId::value_type>(i)},
                      processors[(i + 3) % kEngines], 2 * i, 2 * i + 1),
                  processors[i],
                  [&per_query](QueryId q, const stream::Tuple&) {
                    ++per_query[q];
                  });
    }
    return sys;
  };

  middleware::Cosmos::RunOptions base;
  base.shards = kShards;
  base.batch_size = 256;
  base.queue_capacity = 64;
  base.tick_ms = 15 * 60'000;

  adapt::AdaptOptions adapt_on;
  adapt_on.enabled = true;
  adapt_on.adapt_every_ms = 10 * 60'000;
  adapt_on.imbalance_threshold = 1.15;
  adapt_on.ewma_alpha = 0.5;

  std::printf("# adapt skew (smoke=%d scale=%.2f seed=%llu stations=%zu "
              "engines=%zu shards=%zu tuples=%zu cores=%u)\n",
              smoke ? 1 : 0, scale, static_cast<unsigned long long>(seed),
              kStations, kEngines, kShards, events.size(),
              std::thread::hardware_concurrency());
  std::printf("%-11s %8s %11s %8s %11s %9s %8s %8s %6s %8s\n", "config",
              "wall-s", "wall-tup/s", "crit-s", "crit-tup/s", "results",
              "driver-s", "shard-s", "moves", "mig-KiB");

  std::vector<Row> rows;
  rows.reserve(8);  // run_config hands out pointers into `rows`
  const auto run_config =
      [&](const std::string& name, const middleware::Cosmos::RunOptions& opts) {
        Row row;
        row.name = name;
        auto sys = build(row.per_query);
        const Stopwatch watch;
        row.report = sys->run(events, opts);
        row.wall_s = watch.seconds();
        row.crit_s = std::max(row.report.driver_cpu_seconds,
                              row.report.stats.max_busy_seconds());
        print_row(row, events.size());
        rows.push_back(std::move(row));
        return &rows.back();
      };

  {
    Row row;
    row.name = "push";
    auto sys = build(row.per_query);
    const Stopwatch watch;
    for (const auto& ev : events) sys->push(ev.stream, ev.tuple);
    row.wall_s = watch.seconds();
    row.crit_s = row.wall_s;
    print_row(row, events.size());
    rows.push_back(std::move(row));
  }

  // Measurement pass: default round-robin pinning, adaptation off. Its
  // per-engine counters drive the worst-case and oracle pinnings below.
  const Row* rr = run_config("run:rr", base);

  std::vector<std::pair<std::uint64_t, NodeId>> by_busy;  // busy_ns desc
  for (const auto node : processors) {
    const auto* es = rr->report.stats.engine(node.value());
    by_busy.emplace_back(es != nullptr ? es->busy_ns : 0, node);
  }
  std::sort(by_busy.begin(), by_busy.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first
                              : a.second.value() < b.second.value();
  });

  // Worst-case static pinning: sorted fill over shards 0..S-2 — the
  // heaviest engines share a shard and one worker sits idle. This is the
  // Fig 10 failure mode the adaptation exists for: a placement that was
  // (or looked) fine under old rates is badly concentrated under the
  // observed ones.
  middleware::Cosmos::RunOptions worst = base;
  {
    const std::size_t used = kShards - 1;
    const std::size_t per = (kEngines + used - 1) / used;
    for (std::size_t i = 0; i < by_busy.size(); ++i) {
      worst.pin[by_busy[i].second] = i / per;
    }
  }
  // Oracle static pinning: LPT over the measured loads (offline
  // re-optimization with perfect foresight of this trace).
  middleware::Cosmos::RunOptions oracle = base;
  {
    std::vector<std::uint64_t> load(kShards, 0);
    for (const auto& [busy, node] : by_busy) {
      const auto s = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      oracle.pin[node] = s;
      load[s] += busy;
    }
  }
  middleware::Cosmos::RunOptions adapted = worst;
  adapted.adapt = adapt_on;

  const Row* worst_row = run_config("run:worst", worst);
  const Row* adapt_row = run_config("run:adapt", adapted);
  const Row* oracle_row = run_config("run:oracle", oracle);

  bool identical = true;
  for (const auto& row : rows) {
    if (row.per_query != rows[0].per_query) {
      identical = false;
      std::printf("!! per-query result mismatch: %s vs %s\n", row.name.c_str(),
                  rows[0].name.c_str());
    }
  }
  std::printf("per-query result counts identical across configs: %s\n",
              identical ? "yes" : "NO");

  const double speedup = worst_row->crit_s / adapt_row->crit_s;
  const auto& ar = adapt_row->report.adaptation;
  std::printf("adapt vs worst-static: %.2fx crit-path (oracle static: %.2fx); "
              "moves=%zu state=%.1fKiB imbalance %.2f -> %.2f\n",
              speedup, worst_row->crit_s / oracle_row->crit_s, ar.moves,
              ar.state_bytes_migrated / 1024.0, ar.imbalance_before,
              ar.imbalance_after);

  write_bench_json(
      "adapt_skew",
      {{"tuples", static_cast<double>(events.size())},
       {"shards", static_cast<double>(kShards)},
       {"crit_tuples_per_s_rr",
        static_cast<double>(events.size()) / rr->crit_s},
       {"crit_tuples_per_s_worst",
        static_cast<double>(events.size()) / worst_row->crit_s},
       {"crit_tuples_per_s_adapt",
        static_cast<double>(events.size()) / adapt_row->crit_s},
       {"crit_tuples_per_s_oracle",
        static_cast<double>(events.size()) / oracle_row->crit_s},
       {"adapt_vs_worst_crit_speedup", speedup},
       {"adapt_moves", static_cast<double>(ar.moves)},
       {"adapt_state_bytes_migrated", ar.state_bytes_migrated},
       {"results_identical", identical ? 1.0 : 0.0}});

  if (!identical) return 1;
  const double bar = smoke ? 1.2 : 1.5;
  if (speedup < bar) {
    std::printf("!! adaptation speedup %.2fx below the %.2fx bar\n", speedup,
                bar);
    return 1;
  }
  return 0;
}
