// cosmos_noded: one federation worker process. Binds a listener, serves
// exactly one driver session (Hello ... Bye) and exits — process lifetime
// is session lifetime, which keeps supervision trivial (the driver spawns
// one daemon per worker per run and reaps it afterwards). The listener
// stays open for the whole session: peer workers dial it for worker-to-
// worker execute shipping, including freshly respawned workers mid-run.
//
// Usage: cosmos_noded --listen unix:/tmp/worker0.sock
//        cosmos_noded --listen tcp:127.0.0.1:0
//
// Prints "COSMOS_NODED_READY <endpoint>" on stdout once the listener is
// bound (with the resolved port for tcp:...:0), then blocks in accept.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "node/serve.h"
#include "wire/socket.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen <unix:/path | tcp:host:port>\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (listen.empty()) return usage(argv[0]);

  try {
    cosmos::wire::Listener listener{cosmos::wire::Endpoint::parse(listen)};
    std::printf("COSMOS_NODED_READY %s\n",
                listener.endpoint().to_string().c_str());
    std::fflush(stdout);
    cosmos::node::NodeServer server{listener};
    return server.run() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cosmos_noded: %s\n", e.what());
    return 1;
  }
}
