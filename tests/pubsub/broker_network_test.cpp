#include "pubsub/broker_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "net/topology.h"
#include "sim/sensor_trace.h"

namespace cosmos::pubsub {
namespace {

struct Fixture {
  net::Topology topo{4};
  std::vector<NodeId> all{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};
  net::LatencyMatrix lat;

  Fixture() {
    // Line 0 -10- 1 -100- 2 -10- 3.
    topo.add_edge(NodeId{0}, NodeId{1}, 10.0);
    topo.add_edge(NodeId{1}, NodeId{2}, 100.0);
    topo.add_edge(NodeId{2}, NodeId{3}, 10.0);
    lat = net::LatencyMatrix{topo, all};
  }

  static stream::Tuple reading(stream::Timestamp ts, double height) {
    return {ts,
            {stream::Value{height}, stream::Value{-3.0},
             stream::Value{std::int64_t{0}}, stream::Value{ts}}};
  }
};

TEST(BrokerNetwork, DeliversToMatchingSubscriber) {
  Fixture f;
  BrokerNetwork net{f.all, f.lat};
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  Subscription sub;
  sub.subscriber = NodeId{3};
  sub.streams = {"S"};
  sub.filter = stream::Predicate::cmp({"", "snowHeight"}, stream::CmpOp::kGe,
                                      stream::Value{10.0});
  net.subscribe(std::move(sub));

  int delivered = 0;
  net.publish("S", Fixture::reading(1, 20.0),
              [&](const Subscription&, const Message&) { ++delivered; });
  net.publish("S", Fixture::reading(2, 5.0),
              [&](const Subscription&, const Message&) { ++delivered; });
  EXPECT_EQ(delivered, 1);  // early filtering dropped the second tuple
}

TEST(BrokerNetwork, FilteredTuplesGenerateNoTraffic) {
  Fixture f;
  BrokerNetwork net{f.all, f.lat};
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  Subscription sub;
  sub.subscriber = NodeId{3};
  sub.streams = {"S"};
  sub.filter = stream::Predicate::cmp({"", "snowHeight"}, stream::CmpOp::kGe,
                                      stream::Value{10.0});
  net.subscribe(std::move(sub));
  net.publish("S", Fixture::reading(1, 5.0),
              [](const Subscription&, const Message&) {});
  EXPECT_EQ(net.traffic().bytes, 0.0);
}

TEST(BrokerNetwork, SharedLinkCountedOnce) {
  Fixture f;
  BrokerNetwork net{f.all, f.lat};
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  for (const NodeId n : {NodeId{2}, NodeId{3}}) {
    Subscription sub;
    sub.subscriber = n;
    sub.streams = {"S"};
    net.subscribe(std::move(sub));
  }
  int delivered = 0;
  net.publish("S", Fixture::reading(1, 20.0),
              [&](const Subscription&, const Message&) { ++delivered; });
  EXPECT_EQ(delivered, 2);
  // Links used: 0-1, 1-2, 2-3 = exactly 3 messages (not 5 as unicast).
  EXPECT_EQ(net.traffic().messages_sent, 3u);
}

TEST(BrokerNetwork, ProjectionShrinksTraffic) {
  Fixture f;
  BrokerNetwork net1{f.all, f.lat};
  net1.advertise("S", NodeId{0}, sim::sensor_schema());
  Subscription all_attrs;
  all_attrs.subscriber = NodeId{3};
  all_attrs.streams = {"S"};
  net1.subscribe(std::move(all_attrs));
  net1.publish("S", Fixture::reading(1, 20.0),
               [](const Subscription&, const Message&) {});

  BrokerNetwork net2{f.all, f.lat};
  net2.advertise("S", NodeId{0}, sim::sensor_schema());
  Subscription one_attr;
  one_attr.subscriber = NodeId{3};
  one_attr.streams = {"S"};
  one_attr.projection = {"snowHeight"};
  net2.subscribe(std::move(one_attr));
  net2.publish("S", Fixture::reading(1, 20.0),
               [](const Subscription&, const Message&) {});
  EXPECT_LT(net2.traffic().bytes, net1.traffic().bytes);
}

TEST(BrokerNetwork, UnsubscribeStopsDelivery) {
  Fixture f;
  BrokerNetwork net{f.all, f.lat};
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  Subscription sub;
  sub.subscriber = NodeId{2};
  sub.streams = {"S"};
  const auto id = net.subscribe(std::move(sub));
  net.unsubscribe(id);
  int delivered = 0;
  net.publish("S", Fixture::reading(1, 20.0),
              [&](const Subscription&, const Message&) { ++delivered; });
  EXPECT_EQ(delivered, 0);
}

TEST(BrokerNetwork, RejectsUnknowns) {
  Fixture f;
  BrokerNetwork net{f.all, f.lat};
  EXPECT_THROW(net.publish("nope", Fixture::reading(1, 1.0),
                           [](const Subscription&, const Message&) {}),
               std::invalid_argument);
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  EXPECT_THROW(net.advertise("S", NodeId{1}, sim::sensor_schema()),
               std::invalid_argument);
  EXPECT_THROW(net.schema("other"), std::out_of_range);
}

TEST(Subscription, CoversRelation) {
  Subscription wide;
  wide.streams = {"A", "B"};
  wide.filter = stream::Predicate::cmp({"", "x"}, stream::CmpOp::kGt,
                                       stream::Value{1});
  Subscription narrow;
  narrow.streams = {"A"};
  narrow.filter = stream::Predicate::conj(
      {stream::Predicate::cmp({"", "x"}, stream::CmpOp::kGt,
                              stream::Value{1}),
       stream::Predicate::cmp({"", "y"}, stream::CmpOp::kLt,
                              stream::Value{5})});
  EXPECT_TRUE(covers(wide, narrow));
  EXPECT_FALSE(covers(narrow, wide));
  EXPECT_TRUE(covers(wide, wide));
}

// --- publish_batch edge cases -----------------------------------------
// The batched path must be indistinguishable from N scalar publishes in
// both deliveries and per-link traffic accounting (the invariant the
// runtime's shard-side matching relies on).

runtime::TupleBatch make_batch(
    const std::vector<std::pair<stream::Timestamp, double>>& rows) {
  runtime::TupleBatch batch{"S"};
  for (const auto& [ts, height] : rows) {
    batch.push_back(Fixture::reading(ts, height));
  }
  return batch;
}

Subscription height_sub(NodeId home, double min_height) {
  Subscription sub;
  sub.subscriber = home;
  sub.streams = {"S"};
  sub.filter = stream::Predicate::cmp({"", "snowHeight"}, stream::CmpOp::kGe,
                                      stream::Value{min_height});
  return sub;
}

TEST(BrokerNetworkBatch, EmptyBatchIsANoOp) {
  Fixture f;
  BrokerNetwork net{f.all, f.lat};
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  net.subscribe(height_sub(NodeId{3}, 0.0));
  std::size_t deliveries = 0;
  net.publish_batch("S", runtime::TupleBatch{"S"},
                    [&](const BatchDelivery&) { ++deliveries; });
  EXPECT_EQ(deliveries, 0u);
  EXPECT_EQ(net.traffic().bytes, 0.0);
  EXPECT_EQ(net.traffic().messages_sent, 0u);
}

TEST(BrokerNetworkBatch, SingleRowBatchEqualsScalarPublishPerLink) {
  Fixture f;
  const auto tuple = Fixture::reading(7, 25.0);

  BrokerNetwork scalar{f.all, f.lat};
  scalar.advertise("S", NodeId{0}, sim::sensor_schema());
  scalar.subscribe(height_sub(NodeId{3}, 10.0));
  std::size_t scalar_deliveries = 0;
  scalar.publish("S", tuple,
                 [&](const Subscription&, const Message&) {
                   ++scalar_deliveries;
                 });

  BrokerNetwork batched{f.all, f.lat};
  batched.advertise("S", NodeId{0}, sim::sensor_schema());
  batched.subscribe(height_sub(NodeId{3}, 10.0));
  std::size_t rows_delivered = 0;
  batched.publish_batch("S", make_batch({{7, 25.0}}),
                        [&](const BatchDelivery& d) {
                          rows_delivered += d.rows.size();
                        });

  EXPECT_EQ(scalar_deliveries, 1u);
  EXPECT_EQ(rows_delivered, 1u);
  // Full per-link equality, not just the totals.
  EXPECT_EQ(batched.traffic(), scalar.traffic());
  EXPECT_FALSE(batched.traffic().links.empty());
}

TEST(BrokerNetworkBatch, ZeroMatchingSubscriptionsProduceNothing) {
  Fixture f;
  // Case 1: subscriptions exist but reject every row.
  BrokerNetwork net{f.all, f.lat};
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  net.subscribe(height_sub(NodeId{2}, 1000.0));  // nothing is that high
  std::size_t deliveries = 0;
  net.publish_batch("S", make_batch({{1, 5.0}, {2, 9.0}, {3, 12.0}}),
                    [&](const BatchDelivery&) { ++deliveries; });
  EXPECT_EQ(deliveries, 0u);
  EXPECT_EQ(net.traffic().bytes, 0.0);
  EXPECT_TRUE(net.traffic().links.empty());

  // Case 2: no subscriptions at all (the early-out path).
  BrokerNetwork bare{f.all, f.lat};
  bare.advertise("S", NodeId{0}, sim::sensor_schema());
  bare.publish_batch("S", make_batch({{1, 5.0}}),
                     [&](const BatchDelivery&) { ++deliveries; });
  EXPECT_EQ(deliveries, 0u);
  EXPECT_EQ(bare.traffic().messages_sent, 0u);
}

TEST(BrokerNetworkBatch, RejectsOutOfOrderTimestampsAtomically) {
  Fixture f;
  BrokerNetwork net{f.all, f.lat};
  net.advertise("S", NodeId{0}, sim::sensor_schema());
  net.subscribe(height_sub(NodeId{3}, 0.0));
  std::size_t deliveries = 0;
  try {
    net.publish_batch("S", make_batch({{5, 20.0}, {3, 21.0}}),
                      [&](const BatchDelivery&) { ++deliveries; });
    FAIL() << "out-of-order batch must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("S"), std::string::npos);
    EXPECT_NE(what.find("3"), std::string::npos);
    EXPECT_NE(what.find("5"), std::string::npos);
  }
  // The failure is atomic: no row was matched, delivered, or accounted.
  EXPECT_EQ(deliveries, 0u);
  EXPECT_EQ(net.traffic().bytes, 0.0);
  EXPECT_EQ(net.traffic().messages_sent, 0u);
}

TEST(BrokerNetworkBatch, TrafficAccountingEquivalentToScalarPerLink) {
  Fixture f;
  // Mixed subscription population: different homes, filters, projections
  // — shared links, projection unions and partial matches all in play.
  const auto populate = [&](BrokerNetwork& net) {
    net.advertise("S", NodeId{0}, sim::sensor_schema());
    net.subscribe(height_sub(NodeId{3}, 10.0));
    net.subscribe(height_sub(NodeId{2}, 20.0));
    Subscription projected = height_sub(NodeId{1}, 0.0);
    projected.projection = {"snowHeight"};
    net.subscribe(std::move(projected));
  };
  const std::vector<std::pair<stream::Timestamp, double>> rows{
      {1, 5.0}, {2, 15.0}, {3, 25.0}, {4, 8.0}, {5, 30.0}};

  BrokerNetwork scalar{f.all, f.lat};
  populate(scalar);
  std::vector<std::string> scalar_deliveries;
  for (const auto& [ts, height] : rows) {
    scalar.publish("S", Fixture::reading(ts, height),
                   [&](const Subscription& sub, const Message& m) {
                     scalar_deliveries.push_back(
                         std::to_string(sub.id.value()) + "@" +
                         std::to_string(m.tuple.ts));
                   });
  }

  BrokerNetwork batched{f.all, f.lat};
  populate(batched);
  std::vector<std::string> batch_deliveries;
  batched.publish_batch("S", make_batch(rows), [&](const BatchDelivery& d) {
    for (const auto row : d.rows) {
      batch_deliveries.push_back(std::to_string(d.sub->id.value()) + "@" +
                                 std::to_string(d.source->ts(row)));
    }
  });

  // Same (subscription, row) delivery set...
  std::sort(scalar_deliveries.begin(), scalar_deliveries.end());
  std::sort(batch_deliveries.begin(), batch_deliveries.end());
  EXPECT_EQ(batch_deliveries, scalar_deliveries);
  ASSERT_FALSE(batch_deliveries.empty());
  // ...and byte-identical accounting on every directed link.
  const auto st = scalar.traffic();
  const auto bt = batched.traffic();
  EXPECT_EQ(bt, st);
  ASSERT_FALSE(bt.links.empty());
  for (const auto& [link, t] : st.links) {
    const auto it = bt.links.find(link);
    ASSERT_NE(it, bt.links.end());
    EXPECT_DOUBLE_EQ(it->second.bytes, t.bytes);
    EXPECT_DOUBLE_EQ(it->second.weighted_cost, t.weighted_cost);
    EXPECT_EQ(it->second.messages_sent, t.messages_sent);
  }
}

TEST(Subscription, MessageBytes) {
  const auto schema = sim::sensor_schema();
  Message m{"S", &schema, Fixture::reading(1, 20.0)};
  EXPECT_DOUBLE_EQ(message_bytes(m, {}), 16.0 + 4 * 8.0);
  EXPECT_DOUBLE_EQ(message_bytes(m, {"snowHeight"}), 16.0 + 8.0);
}

}  // namespace
}  // namespace cosmos::pubsub
