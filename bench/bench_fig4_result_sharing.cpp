// Figure 4 / Section 2.1 — result-stream sharing.
//
// Runs Q3 and Q4 (Table 1) at the SAME processor over the same sensor
// trace, in two configurations: Non-Share (two independent result streams
// s3 and s4) and Share (the merged Q5 runs once; s5 is split back into the
// two user results by their p2 subscriptions). Result correctness is
// asserted (identical delivery counts); the broker traffic shows the
// saving on the path shared by both consumers.
#include <cstdio>

#include "cosmos/cosmos.h"
#include "cql/parser.h"
#include "net/topology.h"
#include "sim/sensor_trace.h"

using namespace cosmos;

int main() {
  // The paper's Fig 4 overlay: source - n1 (host) - n2 (relay) with the
  // two user proxies n3, n4 hanging off the relay. The host->relay segment
  // is the long shared path the merged stream saves.
  net::Topology topo{5};
  topo.add_edge(NodeId{0}, NodeId{1}, 10.0);   // source - n1
  topo.add_edge(NodeId{1}, NodeId{2}, 120.0);  // n1 - n2 (wide-area)
  topo.add_edge(NodeId{2}, NodeId{3}, 5.0);    // n2 - n3
  topo.add_edge(NodeId{2}, NodeId{4}, 5.0);    // n2 - n4
  std::vector<NodeId> all;
  for (std::uint32_t i = 0; i < 5; ++i) all.push_back(NodeId{i});
  const net::LatencyMatrix lat{topo, all};

  sim::SensorTraceParams tp;
  tp.stations = 2;
  tp.readings_per_station = 300;
  Rng trng{8};
  const auto trace = sim::make_sensor_trace(tp, trng);

  const char* q3_text =
      "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10";
  const char* q4_text =
      "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp "
      "FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 "
      "WHERE S1.snowHeight > S2.snowHeight";

  const auto run = [&](bool share) {
    middleware::Cosmos sys{all, lat, /*enable_result_sharing=*/share};
    sys.register_source("Station1", sim::sensor_schema(), NodeId{0});
    sys.register_source("Station2", sim::sensor_schema(), NodeId{0});
    std::size_t r3 = 0, r4 = 0;
    const NodeId host{1}, proxy3{3}, proxy4{4};
    sys.submit(cql::parse_query(q3_text, QueryId{3}, proxy3), host,
               [&r3](QueryId, const stream::Tuple&) { ++r3; });
    sys.submit(cql::parse_query(q4_text, QueryId{4}, proxy4), host,
               [&r4](QueryId, const stream::Tuple&) { ++r4; });
    for (const auto& r : trace) {
      sys.push(sim::station_stream_name(r.station), r.tuple);
    }
    std::printf("%-10s units=%zu  traffic=%.0f bytes  weighted=%.3e byte*ms  "
                "results: Q3=%zu Q4=%zu\n",
                share ? "Share" : "Non-Share", sys.deployed_units(),
                sys.traffic().bytes, sys.traffic().weighted_cost, r3, r4);
    return sys.traffic().weighted_cost;
  };

  std::printf("# Fig 4: result stream delivery, Non-Share vs Share "
              "(identical placement)\n");
  const double non_share = run(false);
  const double shared = run(true);
  std::printf("sharing saves %.1f%% of weighted traffic\n",
              100.0 * (non_share - shared) / non_share);
  return 0;
}
