#include "graph/coarsen.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

namespace cosmos::graph {
namespace {

/// Merges payloads of u and v into a new vertex (Algorithm 1 lines 8-14).
QueryVertex merge_vertices(const QueryVertex& u, const QueryVertex& v) {
  QueryVertex w;
  w.weight = u.weight + v.weight;
  w.state_size = u.state_size + v.state_size;
  w.queries = u.queries;
  w.queries.insert(w.queries.end(), v.queries.begin(), v.queries.end());
  if (!u.interest.empty()) {
    w.interest = u.interest;
    if (!v.interest.empty()) w.interest.merge(v.interest);
  } else {
    w.interest = v.interest;
  }
  w.proxy_rates = u.proxy_rates;
  w.proxy_rates.merge(v.proxy_rates);
  if (u.is_n() || v.is_n()) {
    w.kind = QVertexKind::kNetwork;
    const QueryVertex& nv = u.is_n() ? u : v;
    w.node = nv.node;
    w.clu = u.is_n() ? u.clu : v.clu;  // paper line 14
    if (u.is_n() && v.is_n() && u.clu != v.clu) {
      throw std::logic_error{"coarsen: merged n-vertices from two clusters"};
    }
  } else {
    w.kind = QVertexKind::kQuery;
  }
  // A coarser tag is only meaningful if both sides agree; otherwise the new
  // vertex spans coordinators and the finer detail lives in `members`.
  w.tag = u.tag == v.tag ? u.tag : CoordinatorId::invalid();
  return w;
}

/// May vertices a and b collapse? (paper lines 6-7, plus the remote-anchor
/// rule documented in the header.)
bool may_collapse(const QueryVertex& a, const QueryVertex& b) {
  if (a.is_n() && b.is_n()) return a.clu >= 0 && a.clu == b.clu;
  if (a.is_n()) return a.clu >= 0;
  if (b.is_n()) return b.clu >= 0;
  return true;
}

/// Coarse edge weight between merged vertices (re-estimation).
double estimate_weight(const EdgeModel* model, const QueryVertex& a,
                       const QueryVertex& b, double fallback_sum) {
  if (model == nullptr) return fallback_sum;
  const bool aq = !a.queries.empty();
  const bool bq = !b.queries.empty();
  double w = 0.0;
  if (aq && bq) w += model->qq_weight(a, b);
  if (b.is_n() && aq) w += model->qn_weight(a, b);
  if (a.is_n() && bq) w += model->qn_weight(b, a);
  return w;
}

}  // namespace

CoarsenResult coarsen(const QueryGraph& fine, std::size_t vmax,
                      const EdgeModel* model, Rng& rng) {
  if (vmax == 0) throw std::invalid_argument{"coarsen: vmax must be > 0"};

  CoarsenResult out;
  // Working copy state: current graph + membership in *original* indices.
  const QueryGraph* cur = &fine;
  QueryGraph storage;
  std::vector<std::vector<QueryGraph::VertexIndex>> cur_members(fine.size());
  for (QueryGraph::VertexIndex i = 0; i < fine.size(); ++i) {
    cur_members[i] = {i};
  }

  while (cur->size() > vmax) {
    ++out.rounds;
    const std::size_t n = cur->size();
    std::vector<QueryGraph::VertexIndex> order(n);
    for (QueryGraph::VertexIndex i = 0; i < n; ++i) order[i] = i;
    rng.shuffle(order);

    std::vector<char> matched(n, 0);
    std::vector<std::pair<QueryGraph::VertexIndex, QueryGraph::VertexIndex>>
        pairs;
    std::size_t remaining = n;

    for (const auto u : order) {
      if (remaining <= vmax) break;
      if (matched[u]) continue;
      matched[u] = 1;  // u is consumed whether or not it finds a partner
      const QueryVertex& uv = cur->vertex(u);
      QueryGraph::VertexIndex best = QueryGraph::kNone;
      double best_w = -1.0;
      for (const auto& e : cur->neighbors(u)) {
        if (matched[e.to]) continue;
        if (!may_collapse(uv, cur->vertex(e.to))) continue;
        if (e.weight > best_w) {
          best_w = e.weight;
          best = e.to;
        }
      }
      if (best == QueryGraph::kNone) continue;
      matched[best] = 1;
      pairs.emplace_back(u, best);
      --remaining;
    }

    if (pairs.empty() && remaining > vmax) {
      // Matching stalled (disconnected q-vertices): force-merge the two
      // lightest q-vertices so the root coordinator always gets a graph
      // it can hold.
      QueryGraph::VertexIndex a = QueryGraph::kNone, b = QueryGraph::kNone;
      double wa = std::numeric_limits<double>::infinity(), wb = wa;
      for (QueryGraph::VertexIndex i = 0; i < n; ++i) {
        if (cur->vertex(i).is_n()) continue;
        const double w = cur->vertex(i).weight;
        if (w < wa) {
          b = a;
          wb = wa;
          a = i;
          wa = w;
        } else if (w < wb) {
          b = i;
          wb = w;
        }
      }
      if (a == QueryGraph::kNone || b == QueryGraph::kNone) break;
      pairs.emplace_back(a, b);
      ++out.forced_merges;
    }
    if (pairs.empty()) break;

    // Rebuild the coarser graph.
    std::vector<QueryGraph::VertexIndex> remap(n, QueryGraph::kNone);
    QueryGraph next;
    std::vector<std::vector<QueryGraph::VertexIndex>> next_members;
    std::vector<char> in_pair(n, 0);
    for (const auto& [a, b] : pairs) in_pair[a] = in_pair[b] = 1;

    for (const auto& [a, b] : pairs) {
      const auto w = next.add_vertex(
          merge_vertices(cur->vertex(a), cur->vertex(b)));
      remap[a] = remap[b] = w;
      std::vector<QueryGraph::VertexIndex> mem = cur_members[a];
      mem.insert(mem.end(), cur_members[b].begin(), cur_members[b].end());
      next_members.push_back(std::move(mem));
    }
    for (QueryGraph::VertexIndex i = 0; i < n; ++i) {
      if (in_pair[i]) continue;
      remap[i] = next.add_vertex(cur->vertex(i));
      next_members.push_back(cur_members[i]);
    }

    // Fine edge sums per coarse pair (fallback weights).
    std::map<std::pair<QueryGraph::VertexIndex, QueryGraph::VertexIndex>,
             double>
        sums;
    for (QueryGraph::VertexIndex i = 0; i < n; ++i) {
      for (const auto& e : cur->neighbors(i)) {
        if (e.to <= i) continue;  // each fine edge once
        auto key = std::minmax(remap[i], remap[e.to]);
        if (key.first == key.second) continue;  // internal edge vanishes
        sums[{key.first, key.second}] += e.weight;
      }
    }
    for (const auto& [key, sum] : sums) {
      const double w = estimate_weight(model, next.vertex(key.first),
                                       next.vertex(key.second), sum);
      if (w > 0) next.set_edge(key.first, key.second, w);
    }

    storage = std::move(next);
    cur = &storage;
    cur_members = std::move(next_members);
  }

  if (cur == &fine) {
    out.graph = fine;  // already small enough: copy through
  } else {
    out.graph = std::move(storage);
  }
  out.members = std::move(cur_members);
  out.coarse_of.assign(fine.size(), QueryGraph::kNone);
  for (QueryGraph::VertexIndex c = 0; c < out.members.size(); ++c) {
    for (const auto f : out.members[c]) out.coarse_of[f] = c;
  }
  return out;
}

}  // namespace cosmos::graph
