#include "journal/crc32.h"

#include <array>

namespace cosmos::journal {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* data,
                           std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    state = kTable[(state ^ data[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  return crc32_finish(crc32_update(kCrc32Seed, data, size));
}

}  // namespace cosmos::journal
