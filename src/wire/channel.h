// FrameChannel: one federation connection with the same bounded-queue
// discipline the in-process shard queues have.
//
// Sending goes through a runtime::BoundedQueue<Frame> drained by a
// dedicated sender thread, so send() exerts exactly the backpressure that
// Runtime::dispatch() exerts on a full shard queue — the driver blocks
// instead of buffering without limit, and per-channel FIFO order is
// preserved (which is what keeps per-engine input order, and hence result
// byte-identity, across processes). An optional per-frame delay emulates a
// one-way link latency in *pipelined* fashion: each frame departs at
// enqueue time + delay, so consecutive frames overlap in flight like they
// would on a real link instead of serializing the delays.
//
// Liveness (protocol v3): the sender thread doubles as the channel's
// watchdog. When the channel is send-idle for heartbeat_every_ms it emits
// a kHeartbeat directly onto the socket; when nothing has been *received*
// for liveness_deadline_ms it declares the peer dead — the socket is shut
// down, which surfaces on the read side as a thrown wire::Error naming the
// deadline, so the same mark-dead/recovery machinery that handles EOF
// handles silence. A SIGSTOPped or partitioned peer is therefore an error
// within a bounded time, never a hang.
//
// Fault injection: an optional fault::LinkFault is consulted for every
// frame in each direction and the channel applies the returned action
// (drop, duplicate, reorder, corrupt, extra delay, pacing, hang) — the
// deterministic-chaos hook; see src/fault/fault.h.
//
// Receiving has two modes sharing one socket:
//  - recv(): blocking pull of the next frame (the daemon's serve loop);
//  - start_reader(on_frame, on_close): a dedicated reader thread invoking
//    the callback per frame (the driver side, which must never stop
//    draining the socket — that invariant is the transport's deadlock
//    freedom argument: both endpoints always have a reader running).
//
// Byte/frame counters are atomic and readable from any thread; they are
// what RunReport's per-link wire stats surface.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "fault/fault.h"
#include "runtime/queues.h"
#include "wire/socket.h"

namespace cosmos::wire {

class FrameChannel {
 public:
  struct Options {
    /// Send-queue capacity in frames (the bounded-queue backpressure knob,
    /// mirroring RunOptions::queue_capacity).
    std::size_t send_queue_capacity = 64;
    /// Emulated one-way link latency applied to every outgoing frame.
    std::int64_t send_delay_ms = 0;
    /// Upper bound on how long close() waits for queued frames to drain
    /// onto the socket. Within the deadline every queued frame is
    /// delivered (so a final kStatsSample/kFlushAck ordered before close
    /// survives a shutdown race); past it the socket is shut down to
    /// unblock a sender wedged on a dead or stalled peer, and the
    /// remaining frames are dropped (counted in frames_dropped(), named in
    /// send_error()). <= 0: wait forever (old behavior).
    std::int64_t close_drain_ms = 5'000;
    /// Emit a kHeartbeat whenever the channel has been send-idle this
    /// long. 0 disables origination (an echoing peer never originates).
    std::int64_t heartbeat_every_ms = 0;
    /// Declare the peer dead when nothing was received for this long.
    /// 0 disables the watchdog.
    std::int64_t liveness_deadline_ms = 0;
    /// Deterministic fault schedule for this link (nullptr = none).
    fault::LinkFaultPtr fault;
  };

  /// Takes ownership of a connected socket and starts the sender thread.
  FrameChannel(Socket socket, Options options);
  explicit FrameChannel(Socket socket) : FrameChannel(std::move(socket),
                                                      Options{}) {}
  ~FrameChannel();
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  /// Enqueues a frame; blocks while the send queue is full. Throws
  /// wire::Error if the channel is closed or the sender hit a socket error.
  void send(Frame frame);

  /// Blocking receive (serve-loop mode; do not mix with start_reader).
  /// Returns nullopt on clean peer close. Throws wire::Error on transport
  /// or codec failures — including a liveness-deadline trip, which arrives
  /// here as a thrown Error naming the silence, never as a silent EOF.
  [[nodiscard]] std::optional<Frame> recv();

  /// Reader-thread mode: `on_frame` runs on the reader thread per frame;
  /// `on_close` runs once when the peer closes or errors (the what()
  /// string is passed, empty for a clean close).
  using FrameHandler = std::function<void(Frame)>;
  using CloseHandler = std::function<void(const std::string& error)>;
  void start_reader(FrameHandler on_frame, CloseHandler on_close);

  /// Flushes queued frames (bounded by Options::close_drain_ms), shuts the
  /// socket down and joins the threads. Safe to call repeatedly and from
  /// either side of a peer close.
  void close();

  /// First sender-side error, if any ("" = none) — send() rethrows it.
  [[nodiscard]] std::string send_error() const;

  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_sent() const noexcept {
    return frames_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_received() const noexcept {
    return frames_received_.load(std::memory_order_relaxed);
  }
  /// Frames this channel discarded without transmitting: the tail dropped
  /// at the close-drain deadline, frames queued behind a send error, and
  /// injected drop/partition faults. Teardown reports non-zero values.
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept {
    return frames_dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t send_delay_ms() const noexcept {
    return send_delay_ms_.load(std::memory_order_relaxed);
  }
  /// Applies to frames enqueued after the call. The daemon side learns its
  /// emulated link delay from the kHello frame, after the channel exists.
  void set_send_delay_ms(std::int64_t delay_ms) noexcept {
    send_delay_ms_.store(delay_ms, std::memory_order_relaxed);
  }
  /// Arms (or re-arms) heartbeat origination and the silence watchdog.
  /// The daemon side learns both knobs from kHello, after the channel
  /// exists; takes effect at the watchdog's next tick.
  void set_liveness(std::int64_t heartbeat_every_ms,
                    std::int64_t liveness_deadline_ms) noexcept {
    heartbeat_every_ms_.store(heartbeat_every_ms, std::memory_order_relaxed);
    liveness_deadline_ms_.store(liveness_deadline_ms,
                                std::memory_order_relaxed);
  }
  /// Installs (or replaces) the link's fault schedule. Applies to frames
  /// processed after the call — the driver uses this to arm stream-time
  /// keyed fault events at chunk boundaries.
  void set_fault(fault::LinkFaultPtr fault);
  [[nodiscard]] fault::LinkFaultPtr fault() const;

  /// True once the liveness watchdog declared the peer dead.
  [[nodiscard]] bool liveness_expired() const noexcept {
    return liveness_expired_.load(std::memory_order_relaxed);
  }

 private:
  struct Outgoing {
    Frame frame;
    std::chrono::steady_clock::time_point enqueued;
    std::int64_t delay_ms = 0;  ///< snapshot of send_delay_ms_ at enqueue
  };
  void sender_loop();
  /// Dedicated silence-deadline enforcer. It must not live on the sender
  /// thread: a sender wedged in send_all() against a stopped peer would
  /// never tick, and the wedge is exactly the failure the deadline exists
  /// to detect.
  void watchdog_loop();
  /// One queue item through the fault schedule and onto the socket.
  /// Returns false when the sender must exit (error or hang).
  bool transmit(Outgoing item, std::optional<Outgoing>& held);
  void write_encoded(FrameType type, const std::vector<std::uint8_t>& buf);
  void record_send_error(const std::string& what);
  /// Counts everything still queued (and a held reorder frame) as dropped.
  void drain_dropped(std::optional<Outgoing>& held);
  void note_received(std::size_t payload_bytes);
  /// Park until close(): the injected-hang behavior — the socket stays
  /// open, frames just stop moving.
  void park_until_closed();

  Options options_;
  std::atomic<std::int64_t> send_delay_ms_{0};
  std::atomic<std::int64_t> heartbeat_every_ms_{0};
  std::atomic<std::int64_t> liveness_deadline_ms_{0};
  Socket socket_;
  runtime::BoundedQueue<Outgoing> send_queue_;
  std::thread sender_;
  std::thread reader_;
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  std::atomic<bool> closed_{false};
  std::atomic<bool> liveness_expired_{false};
  mutable std::mutex error_mu_;
  std::string send_error_;
  mutable std::mutex fault_mu_;
  fault::LinkFaultPtr fault_;
  /// Signaled when sender_loop returns; close() waits on it with the drain
  /// deadline (std::thread has no timed join).
  std::mutex sender_done_mu_;
  std::condition_variable sender_done_cv_;
  bool sender_done_ = false;
  /// steady_clock nanos of the last socket write / last received frame —
  /// the heartbeat and watchdog clocks.
  std::atomic<std::int64_t> last_send_ns_{0};
  std::atomic<std::int64_t> last_recv_ns_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
};

}  // namespace cosmos::wire
