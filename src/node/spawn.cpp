#include "node/spawn.h"

#include <cerrno>
#include <csignal>
#include <stdexcept>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

namespace cosmos::node {

NodeProcess& NodeProcess::operator=(NodeProcess&& other) noexcept {
  if (this != &other) {
    kill();
    pid_ = std::exchange(other.pid_, -1);
    listen_address_ = std::move(other.listen_address_);
    exit_code_ = other.exit_code_;
    waited_ = std::exchange(other.waited_, false);
  }
  return *this;
}

NodeProcess::~NodeProcess() { kill(); }

int NodeProcess::wait() {
  if (waited_ || pid_ <= 0) return exit_code_;
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0) {
    if (errno != EINTR) {
      status = 0;
      break;
    }
  }
  exit_code_ = WIFEXITED(status)     ? WEXITSTATUS(status)
               : WIFSIGNALED(status) ? -WTERMSIG(status)
                                     : -1;
  waited_ = true;
  pid_ = -1;
  return exit_code_;
}

void NodeProcess::kill() {
  if (waited_ || pid_ <= 0) return;
  ::kill(pid_, SIGKILL);
  (void)wait();
}

NodeProcess spawn_noded(const std::string& noded_path,
                        const std::string& listen_address) {
  if (::access(noded_path.c_str(), X_OK) != 0) {
    throw std::runtime_error{"spawn_noded: not an executable: " + noded_path};
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error{"spawn_noded: fork failed"};
  }
  if (pid == 0) {
    ::execl(noded_path.c_str(), noded_path.c_str(), "--listen",
            listen_address.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed; access() above makes this unlikely
  }
  return NodeProcess{pid, listen_address};
}

}  // namespace cosmos::node
