// Wide-area federation scenario (the prototype study's setting): 30 nodes
// across continents, 5 data sources, hundreds of random monitoring
// queries distributed hierarchically; compares the resulting communication
// cost against naive proxy placement.
//
// Part 2 then executes a small monitoring slice for real across worker
// *processes*: a driver plus three cosmos_noded daemons over Unix-domain
// sockets, each driver<->worker link emulating the wide-area latency the
// matrix reports for that worker's node.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "coord/hierarchy.h"
#include "cosmos/cosmos.h"
#include "cql/parser.h"
#include "node/spawn.h"
#include "sim/baselines.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "sim/sensor_trace.h"
#include "sim/workload.h"

using namespace cosmos;

namespace {

/// Part 2: the same monitoring story, but executed — CQL joins over
/// sensor stations replayed through run_federated across three spawned
/// worker processes with per-link wide-area delays.
void run_federated_slice() {
  const std::size_t kNodes = 8;
  const std::size_t kStations = 4;
  Rng rng{7};
  const auto topo = net::make_wide_area_mesh(kNodes, 4, rng);
  std::vector<NodeId> all;
  for (std::size_t i = 0; i < kNodes; ++i) {
    all.push_back(NodeId{static_cast<NodeId::value_type>(i)});
  }
  const net::LatencyMatrix lat{topo, all};

  middleware::Cosmos sys{all, lat};
  for (std::size_t st = 0; st < kStations; ++st) {
    sys.register_source(sim::station_stream_name(st), sim::sensor_schema(),
                        all[st % 2]);
  }
  std::map<QueryId, std::size_t> results;
  const auto sink = [&results](QueryId q, const stream::Tuple&) {
    ++results[q];
  };
  // Avalanche-watch joins: recent deep snow on one station against a
  // neighbour's colder reading (the paper's snow-monitoring flavor).
  const char* texts[] = {
      "SELECT S1.snowHeight, S2.snowHeight FROM Station1 [Range 120 Minutes]"
      " S1, Station2 [Range 30 Minutes] S2 WHERE S1.snowHeight >"
      " S2.snowHeight",
      "SELECT S1.temperature, S2.temperature FROM Station3 [Range 90"
      " Minutes] S1, Station4 [Range 30 Minutes] S2 WHERE S2.temperature <"
      " S1.temperature",
      "SELECT S1.snowHeight, S2.timestamp FROM Station2 [Range 60 Minutes]"
      " S1, Station3 [Range 60 Minutes] S2 WHERE S1.snowHeight >="
      " S2.snowHeight",
  };
  for (std::size_t i = 0; i < 3; ++i) {
    const auto spec = cql::parse_query(
        texts[i], QueryId{static_cast<QueryId::value_type>(i)},
        /*proxy=*/all[5 + i % 3]);
    sys.submit(spec, /*host=*/all[2 + i], sink);
  }

  sim::SensorTraceParams tp;
  tp.stations = kStations;
  tp.readings_per_station = 240;
  Rng trng{11};
  const auto trace = sim::make_sensor_trace(tp, trng);
  std::vector<runtime::TraceEvent> events;
  for (const auto& r : trace) {
    events.push_back({sim::station_stream_name(r.station), r.tuple});
  }

  const std::size_t kWorkers = 3;
  std::vector<node::NodeProcess> procs;
  middleware::Cosmos::FederationOptions opts;
  const std::string noded = node::default_noded_path();
  for (std::size_t i = 0; i < kWorkers; ++i) {
    const std::string endpoint = "unix:/tmp/cosmos_planetlab_" +
                                 std::to_string(::getpid()) + "_" +
                                 std::to_string(i) + ".sock";
    procs.push_back(node::spawn_noded(noded, endpoint));
    opts.workers.push_back(endpoint);
    // Emulate the wide-area hop the matrix reports between the driver's
    // node and this worker's (capped so the demo stays snappy).
    opts.link_delay_ms.push_back(static_cast<std::int64_t>(
        std::min(15.0, lat.latency(all[0], all[2 + i]))));
  }
  opts.batch_size = 128;
  opts.tick_ms = 6 * 3'600'000;  // few, large chunks: delay is per barrier
  opts.max_inflight_chunks = 4;
  // COSMOS_TRACE=/path/out.json captures the whole federated run as one
  // Chrome trace (driver + workers merged); load it in Perfetto or
  // chrome://tracing. Sampling ships worker registry snapshots alongside.
  if (const char* trace = std::getenv("COSMOS_TRACE")) {
    opts.trace_path = trace;
    opts.stats_sample_every_ms = 3'600'000;  // hourly, stream time
  }
  // A scripted mid-run migration: engine all[2]'s units hand their join
  // state from worker 0 to worker 1 — visible as a "migrate" span plus a
  // "migration" instant in the trace.
  opts.migrations.push_back({events[events.size() / 2].tuple.ts, all[2], 1});

  const auto report = sys.run_federated(events, opts);
  std::size_t total = 0;
  for (const auto& [q, n] : results) total += n;
  std::printf("federated slice: %zu tuples over %zu workers -> %zu results "
              "(%zu chunks, %.3fs)\n",
              report.tuples, report.federation.workers, total, report.chunks,
              report.ingest_seconds);
  std::printf("  e2e tuple latency: p50=%.0fus p95=%.0fus p99=%.0fus over "
              "%llu deliveries\n",
              report.e2e_percentile_us(50.0), report.e2e_percentile_us(95.0),
              report.e2e_percentile_us(99.0),
              static_cast<unsigned long long>(report.e2e_latency.count));
  if (!opts.trace_path.empty()) {
    std::printf("  trace written to %s (%zu worker stats samples)\n",
                opts.trace_path.c_str(), report.federation.samples.size());
  }
  for (std::size_t i = 0; i < report.federation.links.size(); ++i) {
    const auto& link = report.federation.links[i];
    std::printf("  link %zu: delay %lld ms, %llu frames / %llu bytes out, "
                "%llu frames / %llu bytes in\n",
                i, static_cast<long long>(opts.link_delay_ms[i]),
                static_cast<unsigned long long>(link.frames_sent),
                static_cast<unsigned long long>(link.bytes_sent),
                static_cast<unsigned long long>(link.frames_received),
                static_cast<unsigned long long>(link.bytes_received));
  }
  for (auto& p : procs) {
    if (p.wait() != 0) std::printf("  !! worker exited non-zero\n");
  }
}

}  // namespace

int main() {
  Rng rng{2026};
  net::TransitStubParams tp;
  tp.transit_domains = 3;
  tp.transit_nodes_per_domain = 2;
  tp.stub_domains_per_transit = 3;
  tp.stub_nodes_per_domain = 30;
  const auto topo = net::make_transit_stub(tp, rng);
  net::DeploymentParams dp;
  dp.num_sources = 5;
  dp.num_processors = 30;
  const auto deployment = net::make_deployment(topo, dp, rng);

  coord::CoordinatorTree tree{deployment, /*k=*/3, rng};
  std::printf("coordinator tree: height %d over %zu processors\n",
              tree.height(), deployment.processors.size());

  sim::WorkloadParams wp;
  wp.num_substreams = 2000;
  wp.groups = 6;
  wp.interest_min = 10;
  wp.interest_max = 30;
  sim::WorkloadGenerator workload{deployment, wp, 7};
  const auto profiles = workload.make_queries(600);

  coord::HierarchicalDistributor dist{deployment, tree, workload.space(),
                                      coord::HierarchyParams{}, 9};
  const auto timing = dist.distribute(profiles);

  const sim::CostModel cost{topo, deployment};
  std::unordered_map<QueryId, query::InterestProfile> pmap;
  for (const auto& p : profiles) pmap.emplace(p.query, p);
  const double hier =
      cost.pairwise_cost(dist.placement(), pmap, workload.space()).total();
  const double naive =
      cost.pairwise_cost(sim::naive_placement(profiles), pmap,
                         workload.space())
          .total();

  std::printf("distributed %zu queries in %.3fs (critical path %.3fs)\n",
              profiles.size(), timing.total_seconds, timing.response_seconds);
  std::printf("weighted comm cost: COSMOS %.4e vs naive %.4e (%.1f%% saved)\n",
              hier, naive, 100.0 * (naive - hier) / naive);
  std::printf("load stddev: %.4f\n",
              sim::load_stddev(dist.placement(), pmap, deployment));

  try {
    run_federated_slice();
  } catch (const std::exception& e) {
    // No cosmos_noded available (running outside the build tree without
    // COSMOS_NODED_PATH): the placement study above already ran.
    std::printf("federated slice skipped: %s\n", e.what());
  }
  return 0;
}
