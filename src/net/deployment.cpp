#include "net/deployment.h"

#include <numeric>
#include <stdexcept>

namespace cosmos::net {

double Deployment::total_capability() const noexcept {
  return std::accumulate(capability.begin(), capability.end(), 0.0);
}

Deployment make_deployment(const Topology& topo, const DeploymentParams& p,
                           Rng& rng) {
  const std::size_t n = topo.node_count();
  if (p.num_sources + p.num_processors > n) {
    throw std::invalid_argument{"make_deployment: more roles than nodes"};
  }
  if (p.capability_min <= 0 || p.capability_max < p.capability_min) {
    throw std::invalid_argument{"make_deployment: bad capability band"};
  }

  std::vector<NodeId> pool(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool[i] = NodeId{static_cast<NodeId::value_type>(i)};
  }
  rng.shuffle(pool);

  Deployment d;
  d.role.assign(n, NodeRole::kRouter);
  d.capability.assign(n, 0.0);
  d.sources.assign(pool.begin(),
                   pool.begin() + static_cast<std::ptrdiff_t>(p.num_sources));
  d.processors.assign(
      pool.begin() + static_cast<std::ptrdiff_t>(p.num_sources),
      pool.begin() +
          static_cast<std::ptrdiff_t>(p.num_sources + p.num_processors));
  for (const NodeId s : d.sources) d.role[s.value()] = NodeRole::kSource;
  for (const NodeId proc : d.processors) {
    d.role[proc.value()] = NodeRole::kProcessor;
    d.capability[proc.value()] =
        p.capability_min == p.capability_max
            ? p.capability_min
            : rng.next_double(p.capability_min, p.capability_max);
  }

  std::vector<NodeId> relevant = d.sources;
  relevant.insert(relevant.end(), d.processors.begin(), d.processors.end());
  d.latencies = LatencyMatrix{topo, relevant};
  return d;
}

}  // namespace cosmos::net
