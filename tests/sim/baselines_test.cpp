#include "sim/baselines.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/cost_model.h"
#include "sim/workload.h"

namespace cosmos::sim {
namespace {

struct Fixture {
  net::Topology topo;
  net::Deployment deployment;
  std::unique_ptr<WorkloadGenerator> workload;

  explicit Fixture(std::uint64_t seed) {
    Rng rng{seed};
    net::TransitStubParams tp;
    tp.transit_domains = 2;
    tp.transit_nodes_per_domain = 2;
    tp.stub_domains_per_transit = 2;
    tp.stub_nodes_per_domain = 12;
    topo = net::make_transit_stub(tp, rng);
    net::DeploymentParams dp;
    dp.num_sources = 6;
    dp.num_processors = 16;
    deployment = net::make_deployment(topo, dp, rng);
    WorkloadParams wp;
    wp.num_substreams = 1500;  // sparse subscribership: placement matters
    wp.groups = 4;
    wp.interest_min = 10;
    wp.interest_max = 20;
    workload = std::make_unique<WorkloadGenerator>(deployment, wp, seed + 1);
  }
};

TEST(Baselines, NaivePlacesAtProxy) {
  Fixture f{1};
  const auto profiles = f.workload->make_queries(30);
  const auto placement = naive_placement(profiles);
  for (const auto& p : profiles) {
    EXPECT_EQ(placement.at(p.query), p.proxy);
  }
}

TEST(Baselines, RandomPlacesOnProcessors) {
  Fixture f{2};
  const auto profiles = f.workload->make_queries(50);
  Rng rng{3};
  const auto placement = random_placement(profiles, f.deployment, rng);
  EXPECT_EQ(placement.size(), 50u);
  for (const auto& [q, node] : placement) {
    EXPECT_TRUE(f.deployment.is_processor(node));
  }
}

TEST(Baselines, CentralizedPlacesAllAndReportsWec) {
  Fixture f{4};
  const auto profiles = f.workload->make_queries(120);
  Rng rng{5};
  const auto result = centralized_placement(profiles, f.deployment,
                                            f.workload->space(), {}, {},
                                            /*refine=*/true, rng);
  EXPECT_EQ(result.placement.size(), 120u);
  EXPECT_GT(result.wec, 0.0);
  EXPECT_GT(result.seconds, 0.0);
  for (const auto& [q, node] : result.placement) {
    EXPECT_TRUE(f.deployment.is_processor(node));
  }
}

TEST(Baselines, RefinementNotWorseThanGreedy) {
  Fixture f{6};
  const auto profiles = f.workload->make_queries(150);
  Rng r1{7}, r2{7};
  const auto greedy = centralized_placement(profiles, f.deployment,
                                            f.workload->space(), {}, {},
                                            /*refine=*/false, r1);
  const auto refined = centralized_placement(profiles, f.deployment,
                                             f.workload->space(), {}, {},
                                             /*refine=*/true, r2);
  EXPECT_LE(refined.wec, greedy.wec + 1e-9);
}

TEST(Baselines, OrderingOnTrueCommunicationCost) {
  // The paper's Fig 6(a) ordering: Naive >= Greedy >= Centralized, on the
  // true shared-multicast cost.
  Fixture f{8};
  const auto profiles = f.workload->make_queries(200);
  std::unordered_map<QueryId, query::InterestProfile> pmap;
  for (const auto& p : profiles) pmap.emplace(p.query, p);
  const CostModel cost{f.topo, f.deployment};
  const auto eval = [&](const Placement& pl) {
    return cost.pairwise_cost(pl, pmap, f.workload->space()).total();
  };
  Rng r1{9}, r2{9};
  const double naive = eval(naive_placement(profiles));
  const double greedy =
      eval(centralized_placement(profiles, f.deployment, f.workload->space(),
                                 {}, {}, false, r1)
               .placement);
  const double refined =
      eval(centralized_placement(profiles, f.deployment, f.workload->space(),
                                 {}, {}, true, r2)
               .placement);
  EXPECT_LT(greedy, naive);
  EXPECT_LE(refined, greedy * 1.05);  // refinement targets WEC, allow noise
}

}  // namespace
}  // namespace cosmos::sim
