// Figure 8 — Online arrival of new queries.
//
// Starting from 30,000 distributed queries, 1,500 new queries arrive per
// 200-second interval. Series: Random (new queries placed randomly),
// Online (Section 3.6 insertion), Online-Adaptive (insertion + an
// adaptation round per interval).
// Expected shape: Random degrades fastest; Online keeps communication cost
// low but load imbalance creeps up; Online-Adaptive is best on both.
#include <cstdio>

#include "bench_common.h"

using namespace cosmos;
using namespace cosmos::bench;

int main() {
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  const std::size_t initial =
      std::max<std::size_t>(500, static_cast<std::size_t>(30'000 * scale));
  const std::size_t batch =
      std::max<std::size_t>(50, static_cast<std::size_t>(1'500 * scale));
  const int intervals = 10;

  SimSetup setup{scale, 4, seed};
  const auto initial_profiles = setup.workload->make_queries(initial);

  auto random_d = setup.make_distributor(seed + 1);
  auto online_d = setup.make_distributor(seed + 2);
  auto online_adaptive_d = setup.make_distributor(seed + 3);
  random_d.distribute(initial_profiles);
  online_d.distribute(initial_profiles);
  online_adaptive_d.distribute(initial_profiles);

  Rng rrng{seed + 9};

  std::printf("# Fig 8: new query arrival (scale=%.2f seed=%llu initial=%zu "
              "batch=%zu)\n",
              scale, static_cast<unsigned long long>(seed), initial, batch);
  std::printf("%9s %14s %14s %14s | %12s %12s %12s\n", "interval", "random",
              "online", "online-adpt", "rnd-stddev", "onl-stddev",
              "oa-stddev");
  for (int t = 0; t <= intervals; ++t) {
    const auto report = [&](coord::HierarchicalDistributor& d) {
      return setup.pairwise_total(d.placement(), d.profiles());
    };
    std::printf(
        "%9d %14.4e %14.4e %14.4e | %12.4f %12.4f %12.4f\n", t,
        report(random_d), report(online_d), report(online_adaptive_d),
        sim::load_stddev(random_d.placement(), random_d.profiles(),
                         setup.deployment),
        sim::load_stddev(online_d.placement(), online_d.profiles(),
                         setup.deployment),
        sim::load_stddev(online_adaptive_d.placement(),
                         online_adaptive_d.profiles(), setup.deployment));
    std::fflush(stdout);
    if (t == intervals) break;
    const auto batch_profiles = setup.workload->make_queries(batch);
    for (const auto& p : batch_profiles) {
      // Random: ignore interest, pick any processor.
      auto pr = p;
      random_d.insert_query(pr);  // to register profile...
    }
    // Re-place the random distributor's new batch uniformly at random.
    {
      auto placement = random_d.placement();
      auto profs = random_d.profiles();
      std::vector<std::pair<QueryId, NodeId>> pl(placement.begin(),
                                                 placement.end());
      for (auto& [q, node] : pl) {
        if (q.value() >= initial + static_cast<std::size_t>(t) * batch) {
          node = setup.deployment.processors[rrng.next_below(
              setup.deployment.processors.size())];
        }
      }
      std::vector<query::InterestProfile> pvec;
      pvec.reserve(profs.size());
      for (auto& [q, p2] : profs) pvec.push_back(p2);
      random_d.place_at(pl, pvec);
    }
    for (const auto& p : batch_profiles) online_d.insert_query(p);
    for (const auto& p : batch_profiles) online_adaptive_d.insert_query(p);
    online_adaptive_d.adapt();
  }
  return 0;
}
