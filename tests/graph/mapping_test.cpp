#include "graph/mapping.h"

#include <gtest/gtest.h>

namespace cosmos::graph {
namespace {

QueryVertex qv(double weight) {
  QueryVertex v;
  v.weight = weight;
  v.queries = {QueryId{0}};
  return v;
}

QueryVertex nv(NodeId node, int clu) {
  QueryVertex v;
  v.kind = QVertexKind::kNetwork;
  v.node = node;
  v.clu = clu;
  return v;
}

/// Two processors at distance 10, one source anchor at distance 1 / 11.
struct TwoProcFixture {
  NetworkGraph ng;
  TwoProcFixture() {
    ng.add_vertex({"p0", 1.0, true, NodeId{0}});
    ng.add_vertex({"p1", 1.0, true, NodeId{1}});
    ng.add_vertex({"src", 0.0, false, NodeId{2}});
    ng.finalize_vertices();
    ng.set_distance(0, 1, 10.0);
    ng.set_distance(0, 2, 1.0);
    ng.set_distance(1, 2, 11.0);
  }
};

TEST(Mapping, WecOfKnownAssignment) {
  TwoProcFixture f;
  QueryGraph qg;
  const auto q = qg.add_vertex(qv(1.0));
  const auto s = qg.add_vertex(nv(NodeId{2}, -1));
  qg.add_edge(q, s, 4.0);
  std::vector<NetworkGraph::VertexIndex> assignment{0, 2};
  EXPECT_DOUBLE_EQ(weighted_edge_cut(qg, f.ng, assignment), 4.0);
  assignment[0] = 1;
  EXPECT_DOUBLE_EQ(weighted_edge_cut(qg, f.ng, assignment), 44.0);
}

TEST(Mapping, PullsQueryTowardItsSource) {
  TwoProcFixture f;
  QueryGraph qg;
  const auto q = qg.add_vertex(qv(1.0));
  const auto s = qg.add_vertex(nv(NodeId{2}, -1));
  qg.add_edge(q, s, 4.0);
  Rng rng{1};
  const auto result = map_query_graph(qg, f.ng, {}, rng);
  EXPECT_EQ(result.assignment[q], 0u);  // p0 is 1ms from the source
  EXPECT_EQ(result.assignment[s], 2u);  // anchor pinned
  // A single indivisible query cannot satisfy the per-processor cap of
  // (1+alpha) * 1/2 of the total load, so feasibility is not asserted.
  EXPECT_DOUBLE_EQ(result.wec, 4.0);
}

TEST(Mapping, LoadConstraintForcesSpread) {
  TwoProcFixture f;
  // Two heavy queries, both attracted to p0; alpha=0.1 caps each processor
  // at 1.1 * total/2 = 1.1, so they must split.
  QueryGraph qg;
  const auto q1 = qg.add_vertex(qv(1.0));
  const auto q2 = qg.add_vertex(qv(1.0));
  const auto s = qg.add_vertex(nv(NodeId{2}, -1));
  qg.add_edge(q1, s, 4.0);
  qg.add_edge(q2, s, 4.0);
  Rng rng{2};
  const auto result = map_query_graph(qg, f.ng, {}, rng);
  EXPECT_NE(result.assignment[q1], result.assignment[q2]);
  EXPECT_TRUE(result.load_feasible);
}

TEST(Mapping, AlphaSlackAllowsColocation) {
  TwoProcFixture f;
  QueryGraph qg;
  const auto q1 = qg.add_vertex(qv(1.0));
  const auto q2 = qg.add_vertex(qv(0.8));
  const auto s = qg.add_vertex(nv(NodeId{2}, -1));
  qg.add_edge(q1, s, 4.0);
  qg.add_edge(q2, s, 4.0);
  // Strong mutual attraction: worth co-locating if load permits.
  qg.add_edge(q1, q2, 100.0);
  MappingParams params;
  params.alpha = 1.0;  // cap = 2 * 1.8/2 = 1.8 >= 1.8: fits together
  Rng rng{3};
  const auto result = map_query_graph(qg, f.ng, params, rng);
  EXPECT_EQ(result.assignment[q1], result.assignment[q2]);
}

TEST(Mapping, RefinementImprovesGreedy) {
  // A ring of mutually-attracted query pairs placed adversarially by weight
  // order: refinement must not be worse than greedy.
  NetworkGraph ng;
  ng.add_vertex({"p0", 1.0, true, NodeId{0}});
  ng.add_vertex({"p1", 1.0, true, NodeId{1}});
  ng.add_vertex({"p2", 1.0, true, NodeId{2}});
  ng.finalize_vertices();
  ng.set_distance(0, 1, 10);
  ng.set_distance(1, 2, 10);
  ng.set_distance(0, 2, 10);

  QueryGraph qg;
  Rng wrng{4};
  std::vector<QueryGraph::VertexIndex> vs;
  for (int i = 0; i < 12; ++i) {
    vs.push_back(qg.add_vertex(qv(1.0 + 0.01 * i)));
  }
  // Pairs (0,1), (2,3), ... attract strongly.
  for (int i = 0; i < 12; i += 2) qg.add_edge(vs[i], vs[i + 1], 50.0);
  // Weak noise edges.
  for (int i = 0; i < 12; ++i) {
    qg.add_edge(vs[i], vs[(i + 3) % 12], 0.5);
  }
  MappingParams greedy_only;
  greedy_only.refine = false;
  Rng r1{5}, r2{5};
  const auto greedy = map_query_graph(qg, ng, greedy_only, r1);
  const auto refined = map_query_graph(qg, ng, {}, r2);
  EXPECT_LE(refined.wec, greedy.wec);
  // Strongly-paired vertices end up together after refinement.
  int together = 0;
  for (int i = 0; i < 12; i += 2) {
    if (refined.assignment[vs[i]] == refined.assignment[vs[i + 1]]) ++together;
  }
  EXPECT_GE(together, 4);
}

TEST(Mapping, PinnedNVertexWithClu) {
  NetworkGraph ng;
  ng.add_vertex({"p0", 1.0, true, NodeId{0}});
  ng.add_vertex({"p1", 1.0, true, NodeId{1}});
  ng.finalize_vertices();
  ng.set_distance(0, 1, 5);
  QueryGraph qg;
  const auto n = qg.add_vertex(nv(NodeId{1}, 1));
  const auto q = qg.add_vertex(qv(1.0));
  qg.add_edge(q, n, 3.0);
  Rng rng{6};
  const auto result = map_query_graph(qg, ng, {}, rng);
  EXPECT_EQ(result.assignment[n], 1u);
  EXPECT_EQ(result.assignment[q], 1u);  // follows its only attraction
}

TEST(Mapping, ThrowsWithoutCapability) {
  NetworkGraph ng;
  ng.add_vertex({"anchor", 0.0, false, NodeId{0}});
  ng.finalize_vertices();
  QueryGraph qg;
  qg.add_vertex(qv(1.0));
  Rng rng{7};
  EXPECT_THROW(map_query_graph(qg, ng, {}, rng), std::invalid_argument);
}

TEST(Mapping, LoadCapsFollowCapabilities) {
  NetworkGraph ng;
  ng.add_vertex({"fast", 3.0, true, NodeId{0}});
  ng.add_vertex({"slow", 1.0, true, NodeId{1}});
  ng.finalize_vertices();
  ng.set_distance(0, 1, 1);
  QueryGraph qg;
  for (int i = 0; i < 4; ++i) qg.add_vertex(qv(1.0));
  const auto caps = load_caps(qg, ng, 0.1);
  EXPECT_NEAR(caps[0], 1.1 * 3.0 * 4.0 / 4.0, 1e-9);
  EXPECT_NEAR(caps[1], 1.1 * 1.0 * 4.0 / 4.0, 1e-9);
  Rng rng{8};
  const auto result = map_query_graph(qg, ng, {}, rng);
  const auto loads = load_per_vertex(qg, ng, result.assignment);
  EXPECT_LE(loads[0], caps[0] + 1e-9);
  EXPECT_LE(loads[1], caps[1] + 1e-9);
  EXPECT_GE(loads[0], 2.0);  // the fast node carries more
}

TEST(Mapping, RemapGain) {
  TwoProcFixture f;
  QueryGraph qg;
  const auto q = qg.add_vertex(qv(1.0));
  const auto s = qg.add_vertex(nv(NodeId{2}, -1));
  qg.add_edge(q, s, 4.0);
  std::vector<NetworkGraph::VertexIndex> assignment{1, 2};  // q at far p1
  // Moving to p0 saves 4 * (11 - 1) = 40.
  EXPECT_DOUBLE_EQ(remap_gain(qg, f.ng, assignment, q, 0), 40.0);
  EXPECT_DOUBLE_EQ(remap_gain(qg, f.ng, assignment, q, 1), 0.0);
}

// Property: refined WEC never exceeds greedy WEC across random instances.
class MappingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MappingProperty, RefinementNeverHurts) {
  Rng rng{GetParam()};
  NetworkGraph ng;
  const std::size_t procs = 4;
  for (std::size_t i = 0; i < procs; ++i) {
    ng.add_vertex({"p", 1.0, true, NodeId{static_cast<NodeId::value_type>(i)}});
  }
  ng.finalize_vertices();
  for (std::size_t a = 0; a < procs; ++a) {
    for (std::size_t b = a + 1; b < procs; ++b) {
      ng.set_distance(static_cast<NetworkGraph::VertexIndex>(a),
                      static_cast<NetworkGraph::VertexIndex>(b),
                      rng.next_double(1.0, 20.0));
    }
  }
  QueryGraph qg;
  const std::size_t n = 20;
  for (std::size_t i = 0; i < n; ++i) {
    qg.add_vertex(qv(rng.next_double(0.5, 2.0)));
  }
  for (std::size_t i = 0; i < 2 * n; ++i) {
    const auto a = static_cast<QueryGraph::VertexIndex>(rng.next_below(n));
    const auto b = static_cast<QueryGraph::VertexIndex>(rng.next_below(n));
    if (a != b) qg.add_edge(a, b, rng.next_double(0.1, 5.0));
  }
  MappingParams greedy_only;
  greedy_only.refine = false;
  Rng r1{GetParam() + 1}, r2{GetParam() + 1};
  const auto greedy = map_query_graph(qg, ng, greedy_only, r1);
  const auto refined = map_query_graph(qg, ng, {}, r2);
  EXPECT_LE(refined.wec, greedy.wec + 1e-9);
  // WEC reported matches a from-scratch recomputation.
  EXPECT_NEAR(refined.wec,
              weighted_edge_cut(qg, ng, refined.assignment), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace cosmos::graph
