// The node half of the federation: a frame-driven execution site hosting a
// slice of the system — a rebuilt broker overlay (for p1 subscription
// matching of the streams it owns), the engines + compiled query plans of
// the units deployed to it, and a local sharded runtime::Runtime executing
// them. One Site serves one driver session; tools/cosmos_noded wraps it in
// a NodeServer with a FrameChannel, and tests drive it in-process by
// handing it frames directly.
//
// Threading: handle() is single-caller (the serve thread), but peer links
// deliver kExecute frames on their own reader threads via
// apply_peer_execute(), so all site state lives under one internal mutex.
// Broker partitions are only ever touched from handle() — match requests
// run inline there, preserving the single-owner partition discipline —
// while engine work (execute batches, watermarks) is dispatched into the
// runtime's shard queues, each engine pinned to one shard.
//
// Ordering: the driver assigns every execute an absolute per-engine seq
// (route order). The site applies an engine's executes strictly in seq
// order — holding back early arrivals, dropping replayed duplicates — so
// engine input order (and hence result byte-identity) survives executes
// arriving over multiple channels (driver, peer links, recovery replay).
// Watermarks and flushes carry per-engine floors and wait in a FIFO gate
// until every floored execute has been applied: pruning join state early
// could drop tuples an in-flight batch would still join with, and a flush
// ack must follow every result of every execute routed before it. Frames
// produced while the serve thread is not in handle() (a gated flush
// completed by a peer execute) go out through the emit callback; results
// cross shards via an MpscBuffer and are drained under the mutex, so
// per-engine result order is preserved on the (FIFO) driver channel.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/latency_matrix.h"
#include "pubsub/broker_network.h"
#include "query/plan.h"
#include "runtime/queues.h"
#include "runtime/runtime.h"
#include "stream/engine.h"
#include "wire/messages.h"

namespace cosmos::node {

class Site {
 public:
  struct Options {
    std::size_t shards = 1;
    std::size_t queue_capacity = 64;
  };

  explicit Site(Options options);
  ~Site();
  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  /// Handles one inbound frame, appending any frames to send back (in
  /// order) to `out` — unless an emit callback is installed, in which case
  /// every produced frame is emitted before returning (so frames produced
  /// here and frames produced on peer reader threads interleave in one
  /// mutex-ordered sequence). Returns false when the session is over
  /// (kBye). Throws wire::Error on protocol violations and
  /// std::runtime_error when a shard worker faulted — the caller reports
  /// kError and ends the session either way.
  bool handle(const wire::Frame& frame, std::vector<wire::Frame>& out);

  /// Entry point for a kExecute frame that arrived on a peer link (called
  /// from that link's reader thread). Unknown engines are held — a
  /// survivor's shipment can beat the driver's kMigrateIn to a respawned
  /// worker — and re-applied when the engine arrives.
  void apply_peer_execute(wire::ExecuteMsg m);

  /// Sink for frames produced outside a handle() call (gated flush acks,
  /// results completed by peer executes). Must be thread-safe; installed
  /// once before frames flow.
  using EmitFn = std::function<void(wire::Frame)>;
  void set_emit(EmitFn emit) { emit_ = std::move(emit); }
  /// Ships a frame to another worker over a peer link. Invoked *outside*
  /// the site mutex (a ship can block on a peer's backpressure, and two
  /// workers shipping to each other under their site locks would deadlock).
  using ShipFn = std::function<void(std::uint32_t worker, wire::Frame)>;
  void set_peer_ship(ShipFn ship) { ship_ = std::move(ship); }
  /// Supplies {frames, bytes} this worker has sent on its peer links, for
  /// kTrafficReport.
  using PeerTrafficFn =
      std::function<std::pair<std::uint64_t, std::uint64_t>()>;
  void set_peer_traffic(PeerTrafficFn fn) { peer_traffic_ = std::move(fn); }
  /// Invoked when the driver distributes the fleet endpoint table.
  using PeerTableFn = std::function<void(wire::PeerTableMsg)>;
  void set_peer_table_cb(PeerTableFn fn) { peer_table_cb_ = std::move(fn); }

  /// The session hello (valid after the kHello frame was handled; only
  /// meaningful on the serve thread that handled it).
  [[nodiscard]] const wire::HelloMsg& hello() const noexcept { return hello_; }

  /// Units currently deployed here (for tests).
  [[nodiscard]] std::size_t deployed_units() const {
    std::lock_guard lock{mu_};
    return units_.size();
  }
  [[nodiscard]] bool hosts_engine(NodeId node) const {
    std::lock_guard lock{mu_};
    return engines_.contains(node);
  }

 private:
  struct Unit {
    std::uint32_t id = 0;
    NodeId host;
    std::string result_stream;
    query::QuerySpec spec;
    std::unique_ptr<query::CompiledQuery> plan;
    std::size_t result_tap = 0;
  };
  /// Per-engine execute ordering state.
  struct EngineSeq {
    std::uint64_t expected = 0;  ///< next seq to apply
    std::map<std::uint64_t, wire::ExecuteMsg> holdback;  ///< early arrivals
  };
  /// A watermark/flush waiting in the FIFO gate for its floors.
  struct Gated {
    enum class Kind { kWatermark, kFlush } kind = Kind::kWatermark;
    wire::WatermarkMsg wm;
    wire::FlushMsg flush;
    /// When the frame entered the gate: a front entry older than the
    /// session's liveness deadline means its floored executes were lost on
    /// a live-but-lossy path, and the site reports the gap (kSeqGap)
    /// instead of waiting forever.
    std::chrono::steady_clock::time_point since{};
  };
  /// A peer shipment decided under the mutex, sent after it is released.
  struct PeerShip {
    std::uint32_t worker = 0;
    wire::Frame frame;
  };

  bool handle_locked(const wire::Frame& frame, std::vector<wire::Frame>& out,
                     std::vector<PeerShip>& ships);
  void on_topology(const wire::TopologyMsg& m);
  void on_deploy(wire::DeployUnitMsg m);
  void on_match(wire::MatchRequestMsg m, std::vector<wire::Frame>& out);
  void on_route_decision(wire::RouteDecisionMsg m,
                         std::vector<wire::Frame>& out,
                         std::vector<PeerShip>& ships);
  void on_migrate_out(const wire::MigrateOutMsg& m,
                      std::vector<wire::Frame>& out);
  void on_migrate_in(wire::MigrateInMsg m, std::vector<wire::Frame>& out);

  /// Seq-ordered apply: dispatches at `expected`, drains the holdback, then
  /// pumps the gate. Drops seqs below `expected` (recovery replay).
  void apply_execute(wire::ExecuteMsg m, std::vector<wire::Frame>& out);
  /// Dispatches one batch into the engine's shard queue (no seq logic).
  void dispatch_execute(wire::ExecuteMsg m);
  /// True when every floor naming an engine hosted here is satisfied.
  [[nodiscard]] bool floors_met(
      const std::vector<wire::EngineFloor>& floors) const;
  /// Applies gated frames from the front while their floors are met.
  void pump_gate(std::vector<wire::Frame>& out);
  /// Emits a kSeqGap (rate-limited to one per deadline period) when the
  /// front gated frame has been starved of its floors past the session's
  /// liveness deadline — the driver re-sends the missing executes.
  void check_gate_starvation(std::vector<wire::Frame>& out);
  void apply_watermark(const wire::WatermarkMsg& m,
                       std::vector<wire::Frame>& out);
  void apply_flush(const wire::FlushMsg& m, std::vector<wire::Frame>& out);

  /// The engine hosted for `node`, creating + shard-pinning it on first use.
  stream::Engine& engine_at(NodeId node);
  pubsub::BrokerNetwork& broker();
  /// Drains the runtime and rethrows the first worker fault, if any.
  void sync_runtime();
  /// Ships everything in results_ as one kResult frame (if any).
  void ship_results(std::vector<wire::Frame>& out);
  /// Appends a kStatsSample frame (cumulative local runtime counters, plus
  /// collected spans when tracing); no-op unless the hello enabled either.
  void emit_stats_sample(std::vector<wire::Frame>& out);

  Options options_;
  wire::HelloMsg hello_;
  /// Owned copy of the driver's latency matrix; broker_ points into it.
  net::LatencyMatrix lat_;
  std::optional<pubsub::BrokerNetwork> broker_;
  std::map<NodeId, std::unique_ptr<stream::Engine>> engines_;
  std::map<std::uint32_t, Unit> units_;
  runtime::Runtime rt_;
  /// Engine-id (NodeId::value()) -> owning shard; assigned round-robin at
  /// engine creation.
  std::unordered_map<std::uint64_t, std::size_t> shard_of_;
  std::size_t next_shard_ = 0;
  runtime::MpscBuffer<wire::ResultEventMsg> results_;
  std::vector<wire::ResultEventMsg> result_scratch_;
  /// Latest watermark seen (the node's stream-time "now" for samples).
  stream::Timestamp watermark_ms_ = 0;
  /// Stream time of the last emitted kStatsSample; INT64_MIN = none yet.
  stream::Timestamp last_sample_ms_ = INT64_MIN;

  mutable std::mutex mu_;
  /// Engine-id -> execute ordering state; created at deploy (expected 0)
  /// or migrate-in (expected = the handoff's cut point), erased with the
  /// engine on migrate-out.
  std::unordered_map<std::uint64_t, EngineSeq> exec_seq_;
  /// Peer executes for engines not (yet) hosted here; re-applied on
  /// migrate-in.
  std::vector<wire::ExecuteMsg> held_peer_execs_;
  /// Peer-link mode: match-request batches retained by job until the
  /// driver's kRouteDecision slices and frees them.
  std::map<std::uint64_t, runtime::TupleBatch> retained_;
  std::deque<Gated> gate_;
  /// Last kSeqGap emission (epoch = never): the starvation report repeats
  /// at most once per liveness deadline, so a slow driver replay is not
  /// answered with a flood of duplicate gap reports.
  std::chrono::steady_clock::time_point last_gap_emit_{};
  EmitFn emit_;
  ShipFn ship_;
  PeerTrafficFn peer_traffic_;
  PeerTableFn peer_table_cb_;
};

}  // namespace cosmos::node
