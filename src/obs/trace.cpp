#include "obs/trace.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <exception>
#include <iterator>

namespace cosmos::obs {
namespace {

/// Ring capacity per thread (power of two). At ~56 bytes per slot this is
/// ~460 KiB per recording thread, holding several chunk pipelines' worth
/// of spans between drains.
constexpr std::size_t kRingCapacity = 8192;

static_assert((kRingCapacity & (kRingCapacity - 1)) == 0,
              "ring capacity must be a power of two");

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuffer* Tracer::local() {
  struct Cache {
    ThreadBuffer* buf = nullptr;
    std::uint64_t session = 0;
  };
  // Session check: begin_session() frees previous buffers, so a pointer
  // cached under an older session id must be re-registered, never used.
  thread_local Cache cache;
  const std::uint64_t current = session_.load(std::memory_order_acquire);
  if (cache.buf == nullptr || cache.session != current) {
    std::lock_guard lock{reg_mu_};
    buffers_.push_back(
        std::make_unique<ThreadBuffer>(next_tid_++, kRingCapacity));
    cache.buf = buffers_.back().get();
    cache.session = current;
  }
  return cache.buf;
}

void Tracer::push(const Slot& slot) noexcept {
  ThreadBuffer* b = local();
  const std::uint64_t head = b->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = b->tail.load(std::memory_order_acquire);
  if (head - tail >= b->slots.size()) {
    // Drop-newest, never block: tracing must not perturb the traced system.
    b->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b->slots[head & (b->slots.size() - 1)] = slot;
  b->head.store(head + 1, std::memory_order_release);
}

void Tracer::record(const char* name, const char* cat, std::uint64_t start_ns,
                    std::uint64_t dur_ns, std::uint64_t arg) noexcept {
  if (!enabled()) return;
  push({name, cat, start_ns, dur_ns, arg, false});
}

void Tracer::instant(const char* name, const char* cat,
                     std::uint64_t arg) noexcept {
  if (!enabled()) return;
  push({name, cat, now_ns(), 0, arg, true});
}

void Tracer::begin_session() {
  std::lock_guard lock{reg_mu_};
  buffers_.clear();
  next_tid_ = 1;
  // Bump the session before enabling: any thread that recorded in an
  // earlier session re-registers instead of touching a freed buffer.
  session_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

std::vector<CollectedSpan> Tracer::end_session() {
  enabled_.store(false, std::memory_order_release);
  return drain();
}

std::vector<CollectedSpan> Tracer::drain() {
  std::vector<CollectedSpan> out;
  std::lock_guard lock{reg_mu_};
  for (auto& b : buffers_) {
    const std::uint64_t head = b->head.load(std::memory_order_acquire);
    std::uint64_t tail = b->tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      const Slot& s = b->slots[tail & (b->slots.size() - 1)];
      CollectedSpan c;
      c.name = s.name;
      c.cat = s.cat;
      c.start_ns = s.start_ns;
      c.dur_ns = s.dur_ns;
      c.arg = s.arg;
      c.tid = b->tid;
      c.instant = s.instant;
      out.push_back(std::move(c));
    }
    b->tail.store(tail, std::memory_order_release);
  }
  return out;
}

std::uint64_t Tracer::dropped() const noexcept {
  std::lock_guard lock{reg_mu_};
  std::uint64_t n = 0;
  for (const auto& b : buffers_) {
    n += b->dropped.load(std::memory_order_relaxed);
  }
  return n;
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
void write_json_string(std::FILE* f, const std::string& s) {
  std::fputc('"', f);
  for (const char ch : s) {
    switch (ch) {
      case '"': std::fputs("\\\"", f); break;
      case '\\': std::fputs("\\\\", f); break;
      case '\n': std::fputs("\\n", f); break;
      case '\t': std::fputs("\\t", f); break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          std::fprintf(f, "\\u%04x", ch);
        } else {
          std::fputc(ch, f);
        }
    }
  }
  std::fputc('"', f);
}

}  // namespace

void write_chrome_trace(
    const std::string& path, const std::vector<CollectedSpan>& spans,
    const std::vector<std::pair<std::uint32_t, std::string>>& process_names) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace file %s\n", path.c_str());
    return;
  }
  // Rebase to the earliest event so timestamps start near zero; all spans
  // share one steady-clock epoch (common/clock.h now_ns), including spans
  // shipped from worker processes on the same host.
  std::uint64_t base = UINT64_MAX;
  for (const auto& s : spans) base = std::min(base, s.start_ns);
  if (base == UINT64_MAX) base = 0;

  // Deterministic-ish output: one lane at a time, time-ordered within it.
  std::vector<const CollectedSpan*> ordered;
  ordered.reserve(spans.size());
  for (const auto& s : spans) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const CollectedSpan* a, const CollectedSpan* b) {
              if (a->pid != b->pid) return a->pid < b->pid;
              if (a->tid != b->tid) return a->tid < b->tid;
              return a->start_ns < b->start_ns;
            });

  std::fputs("{\"traceEvents\":[", f);
  bool first = true;
  for (const auto& [pid, name] : process_names) {
    if (!first) std::fputc(',', f);
    first = false;
    std::fprintf(f,
                 "\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%u,"
                 "\"tid\":0,\"args\":{\"name\":",
                 pid);
    write_json_string(f, name);
    std::fputs("}}", f);
  }
  for (const auto* s : ordered) {
    if (!first) std::fputc(',', f);
    first = false;
    const double ts_us = static_cast<double>(s->start_ns - base) / 1000.0;
    std::fputs("\n{\"ph\":", f);
    std::fputs(s->instant ? "\"i\"" : "\"X\"", f);
    std::fputs(",\"name\":", f);
    write_json_string(f, s->name);
    std::fputs(",\"cat\":", f);
    write_json_string(f, s->cat.empty() ? std::string{"-"} : s->cat);
    std::fprintf(f, ",\"pid\":%u,\"tid\":%u,\"ts\":%.3f", s->pid, s->tid,
                 ts_us);
    if (s->instant) {
      std::fputs(",\"s\":\"t\"", f);
    } else {
      std::fprintf(f, ",\"dur\":%.3f",
                   static_cast<double>(s->dur_ns) / 1000.0);
    }
    std::fprintf(f, ",\"args\":{\"v\":%llu}}",
                 static_cast<unsigned long long>(s->arg));
  }
  std::fputs("\n],\"displayTimeUnit\":\"ms\"}\n", f);
  std::fclose(f);
}

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
  if (active()) Tracer::instance().begin_session();
}

TraceSession::~TraceSession() {
  if (!active()) return;
  try {
    auto spans = Tracer::instance().end_session();
    spans.insert(spans.end(), std::make_move_iterator(foreign_.begin()),
                 std::make_move_iterator(foreign_.end()));
    write_chrome_trace(path_, spans, process_names_);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs: trace export failed: %s\n", e.what());
  }
}

void TraceSession::add_foreign(std::vector<CollectedSpan> spans) {
  if (!active()) return;
  foreign_.insert(foreign_.end(), std::make_move_iterator(spans.begin()),
                  std::make_move_iterator(spans.end()));
}

void TraceSession::add_process_name(std::uint32_t pid, std::string name) {
  if (!active()) return;
  process_names_.push_back({pid, std::move(name)});
}

}  // namespace cosmos::obs
