// Socket + FrameChannel transport: endpoint parsing, TCP and Unix-domain
// round trips, clean-close vs mid-frame-disconnect semantics, and the
// bounded-queue discipline of FrameChannel (send blocks, never drops; a
// dead peer surfaces as an error, never a hang).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "wire/channel.h"
#include "wire/messages.h"
#include "wire/socket.h"

namespace cosmos::wire {
namespace {

std::string test_socket_path(const char* tag) {
  return "/tmp/cosmos_transport_" + std::string{tag} + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(Endpoint, ParsesAndPrints) {
  const auto uds = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(uds.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(uds.path, "/tmp/x.sock");
  EXPECT_EQ(uds.to_string(), "unix:/tmp/x.sock");

  const auto tcp = Endpoint::parse("tcp:127.0.0.1:9000");
  EXPECT_EQ(tcp.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 9000);
  EXPECT_EQ(tcp.to_string(), "tcp:127.0.0.1:9000");

  EXPECT_THROW((void)Endpoint::parse(""), Error);
  EXPECT_THROW((void)Endpoint::parse("carrier-pigeon:coop"), Error);
}

void round_trip_over(const Endpoint& at) {
  Listener listener{at};
  std::thread server{[&] {
    Socket conn = listener.accept();
    while (auto f = recv_frame(conn)) {
      if (f->type == FrameType::kBye) break;
      send_frame(conn, *f);  // echo
    }
  }};
  Socket client = connect_to(listener.endpoint());
  for (int i = 0; i < 50; ++i) {
    send_frame(client, encode_watermark({i}));
    const auto back = recv_frame(client);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(decode_watermark(*back).watermark, i);
  }
  send_frame(client, encode_bye());
  server.join();
}

TEST(Transport, UnixDomainRoundTrip) {
  round_trip_over(Endpoint::parse("unix:" + test_socket_path("uds")));
}

TEST(Transport, TcpEphemeralPortRoundTrip) {
  const Endpoint at = Endpoint::parse("tcp:127.0.0.1:0");
  Listener listener{at};
  // The listener must report the resolved ephemeral port.
  EXPECT_NE(listener.endpoint().port, 0);
  std::thread server{[&] {
    Socket conn = listener.accept();
    while (auto f = recv_frame(conn)) send_frame(conn, *f);
  }};
  Socket client = connect_to(listener.endpoint());
  send_frame(client, encode_flush({9}));
  const auto back = recv_frame(client);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(decode_flush(*back).seq, 9u);
  client.close();  // EOF ends the server loop
  server.join();
}

TEST(Transport, CleanCloseBetweenFramesIsNotAnError) {
  Listener listener{Endpoint::parse("unix:" + test_socket_path("clean"))};
  std::thread server{[&] {
    Socket conn = listener.accept();
    send_frame(conn, encode_watermark({1}));
    // Orderly close at a frame boundary.
  }};
  Socket client = connect_to(listener.endpoint());
  EXPECT_TRUE(recv_frame(client).has_value());
  EXPECT_FALSE(recv_frame(client).has_value());  // EOF, not a throw
  server.join();
}

TEST(Transport, DisconnectMidFrameThrows) {
  Listener listener{Endpoint::parse("unix:" + test_socket_path("midframe"))};
  std::thread server{[&] {
    Socket conn = listener.accept();
    // Half a header, then hang up: the peer must see a hard error.
    const std::uint8_t partial[5] = {0x4D, 0x53, 0x4F, 0x43, 0x01};
    conn.send_all(partial, sizeof partial);
  }};
  Socket client = connect_to(listener.endpoint());
  EXPECT_THROW((void)recv_frame(client), Error);
  server.join();
}

TEST(FrameChannel, PingPongAndCounters) {
  Listener listener{Endpoint::parse("unix:" + test_socket_path("chan"))};
  std::thread server{[&] {
    FrameChannel serve{listener.accept()};
    while (auto f = serve.recv()) {
      if (f->type == FrameType::kBye) break;
      serve.send(std::move(*f));
    }
    serve.close();
  }};
  FrameChannel client{connect_to(listener.endpoint())};
  std::mutex mu;
  std::condition_variable cv;
  std::vector<stream::Timestamp> got;
  std::atomic<bool> closed{false};
  client.start_reader(
      [&](Frame f) {
        std::lock_guard lock{mu};
        got.push_back(decode_watermark(f).watermark);
        cv.notify_all();
      },
      [&](const std::string&) { closed = true; });
  constexpr std::size_t kFrames = 200;
  for (std::size_t i = 0; i < kFrames; ++i) {
    client.send(encode_watermark({static_cast<stream::Timestamp>(i)}));
  }
  {
    std::unique_lock lock{mu};
    cv.wait(lock, [&] { return got.size() == kFrames; });
  }
  // FIFO: echoed frames arrive in send order.
  for (std::size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(got[i], static_cast<stream::Timestamp>(i));
  }
  EXPECT_EQ(client.frames_sent(), kFrames);
  EXPECT_EQ(client.frames_received(), kFrames);
  EXPECT_GT(client.bytes_sent(), kFrames * kFrameHeaderBytes);
  EXPECT_EQ(client.bytes_sent(), client.bytes_received());  // echo symmetry
  client.send(encode_bye());
  server.join();
  client.close();
}

TEST(FrameChannel, PeerDeathSurfacesAsCloseNotHang) {
  Listener listener{Endpoint::parse("unix:" + test_socket_path("death"))};
  std::thread server{[&] {
    Socket conn = listener.accept();
    // Die without a word mid-session.
    conn.close();
  }};
  FrameChannel client{connect_to(listener.endpoint())};
  std::mutex mu;
  std::condition_variable cv;
  bool closed = false;
  client.start_reader([&](Frame) {},
                      [&](const std::string&) {
                        std::lock_guard lock{mu};
                        closed = true;
                        cv.notify_all();
                      });
  {
    std::unique_lock lock{mu};
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return closed; }));
  }
  server.join();
  // Sends to the dead peer eventually throw instead of blocking forever.
  EXPECT_THROW(
      {
        for (int i = 0; i < 10'000; ++i) client.send(encode_watermark({i}));
      },
      Error);
  client.close();
}

TEST(FrameChannel, CloseDeliversQueuedFramesToSlowReader) {
  // Regression: close() used to shut the socket down with frames still
  // sitting in the send queue, silently dropping a final kStatsSample or
  // kFlushAck. The frames here are big enough that the socket buffer
  // cannot absorb them all, so some are genuinely queued at close().
  Listener listener{Endpoint::parse("unix:" + test_socket_path("drain"))};
  constexpr std::size_t kFrames = 40;
  std::size_t received = 0;
  std::thread server{[&] {
    Socket conn = listener.accept();
    // Slow reader: let the client queue up and close first.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    while (recv_frame(conn).has_value()) ++received;
  }};
  {
    FrameChannel client{connect_to(listener.endpoint())};
    Frame big;
    big.type = FrameType::kStatsSample;
    big.payload.assign(64 * 1024, 0xAB);
    for (std::size_t i = 0; i < kFrames; ++i) client.send(big);
    client.close();  // must drain the queued tail, not drop it
  }
  server.join();
  EXPECT_EQ(received, kFrames);
}

TEST(FrameChannel, CloseIsBoundedAgainstAWedgedPeer) {
  // The flip side of drain-on-close: a peer that stops reading must not
  // turn close() into a hang. Past close_drain_ms the socket is shut down
  // and the remaining frames are dropped.
  Listener listener{Endpoint::parse("unix:" + test_socket_path("wedge"))};
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::thread server{[&] {
    Socket conn = listener.accept();
    // Accept, then never read: the client's sender wedges in send_all.
    std::unique_lock lock{mu};
    cv.wait(lock, [&] { return release; });
  }};
  FrameChannel::Options opts;
  opts.send_queue_capacity = 8;
  opts.close_drain_ms = 200;
  FrameChannel client{connect_to(listener.endpoint()), opts};
  Frame big;
  big.type = FrameType::kExecute;
  big.payload.assign(1024 * 1024, 0x5A);  // far beyond the socket buffer
  for (int i = 0; i < 4; ++i) client.send(big);
  const auto t0 = std::chrono::steady_clock::now();
  client.close();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  {
    std::lock_guard lock{mu};
    release = true;
    cv.notify_all();
  }
  server.join();
}

TEST(Listener, RebindsOverStaleSocketFile) {
  // A SIGKILLed daemon leaves its bound socket file behind; the respawn
  // must be able to bind the same path. Simulate the corpse with a raw
  // bind that is closed without unlinking.
  const std::string path = test_socket_path("stale");
  ::unlink(path.c_str());
  const int corpse = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(corpse, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(corpse, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  ::close(corpse);  // the file at `path` survives, exactly like kill -9

  Listener listener{Endpoint::parse("unix:" + path)};  // must not throw
  std::thread server{[&] {
    Socket conn = listener.accept();
    if (auto f = recv_frame(conn)) send_frame(conn, *f);
  }};
  Socket client = connect_to(listener.endpoint());
  send_frame(client, encode_watermark({7}));
  const auto back = recv_frame(client);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(decode_watermark(*back).watermark, 7);
  server.join();
}

TEST(Listener, RefusesToUnlinkNonSocketFile) {
  // Stale-socket cleanup must never eat a regular file that happens to sit
  // at the endpoint path.
  const std::string path = test_socket_path("notasock");
  ::unlink(path.c_str());
  {
    std::ofstream out{path};
    out << "precious data\n";
  }
  EXPECT_THROW(Listener{Endpoint::parse("unix:" + path)}, Error);
  struct stat st{};
  EXPECT_EQ(::lstat(path.c_str(), &st), 0);  // still there, untouched
  EXPECT_TRUE(S_ISREG(st.st_mode));
  ::unlink(path.c_str());
}

TEST(FrameChannel, SendAfterCloseThrows) {
  Listener listener{Endpoint::parse("unix:" + test_socket_path("closed"))};
  std::thread server{[&] { Socket conn = listener.accept(); }};
  FrameChannel client{connect_to(listener.endpoint())};
  server.join();
  client.close();
  EXPECT_THROW(client.send(encode_watermark({1})), Error);
}

TEST(FrameChannel, OriginatesHeartbeatsWhenSendIdle) {
  Listener listener{Endpoint::parse("unix:" + test_socket_path("hb"))};
  std::mutex mu;
  std::condition_variable cv;
  std::size_t probes = 0;
  std::thread server{[&] {
    Socket conn = listener.accept();
    while (auto f = recv_frame(conn)) {
      if (f->type == FrameType::kBye) break;
      if (f->type == FrameType::kHeartbeat &&
          decode_heartbeat(*f).probe != 0) {
        std::lock_guard lock{mu};
        ++probes;
        cv.notify_all();
      }
    }
  }};
  FrameChannel::Options opts;
  opts.heartbeat_every_ms = 30;
  FrameChannel client{connect_to(listener.endpoint()), opts};
  // The channel is send-idle; probes must flow without any send() call.
  {
    std::unique_lock lock{mu};
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return probes >= 3; }));
  }
  client.send(encode_bye());
  server.join();
  client.close();
}

TEST(FrameChannel, LivenessDeadlineSurfacesAsErrorNotHang) {
  // A peer that accepts and then goes completely silent (the SIGSTOP
  // shape) must become a thrown error within the deadline — on both the
  // recv() path and the reader-callback path.
  Listener listener{Endpoint::parse("unix:" + test_socket_path("silent"))};
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::thread server{[&] {
    Socket conn = listener.accept();
    std::unique_lock lock{mu};  // never sends, never closes
    cv.wait(lock, [&] { return release; });
  }};
  FrameChannel::Options opts;
  opts.liveness_deadline_ms = 150;
  opts.close_drain_ms = 200;
  FrameChannel client{connect_to(listener.endpoint()), opts};
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)client.recv();
    FAIL() << "silent peer did not trip the liveness deadline";
  } catch (const Error& e) {
    EXPECT_NE(std::string{e.what()}.find("liveness deadline"),
              std::string::npos)
        << e.what();
  }
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10));
  EXPECT_TRUE(client.liveness_expired());
  client.close();
  {
    std::lock_guard lock{mu};
    release = true;
    cv.notify_all();
  }
  server.join();
}

TEST(FrameChannel, HeartbeatsHoldOffTheDeadline) {
  // The healthy case: a peer that says nothing *but* echoes probes must
  // never be declared dead.
  Listener listener{Endpoint::parse("unix:" + test_socket_path("echoer"))};
  std::thread server{[&] {
    Socket conn = listener.accept();
    while (auto f = recv_frame(conn)) {
      if (f->type == FrameType::kBye) break;
      if (f->type == FrameType::kHeartbeat &&
          decode_heartbeat(*f).probe != 0) {
        send_frame(conn, encode_heartbeat({0}));
      }
    }
  }};
  FrameChannel::Options opts;
  opts.heartbeat_every_ms = 40;
  opts.liveness_deadline_ms = 200;
  FrameChannel client{connect_to(listener.endpoint()), opts};
  std::atomic<bool> closed{false};
  client.start_reader([](Frame) {},
                      [&](const std::string&) { closed = true; });
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_FALSE(client.liveness_expired());
  EXPECT_FALSE(closed);
  client.send(encode_bye());
  server.join();
  client.close();
}

TEST(FrameChannel, DropFaultCountsDroppedFramesAndPeerSeesNothing) {
  Listener listener{Endpoint::parse("unix:" + test_socket_path("dropf"))};
  std::vector<stream::Timestamp> seen;
  std::thread server{[&] {
    Socket conn = listener.accept();
    while (auto f = recv_frame(conn)) {
      if (f->type == FrameType::kBye) break;
      seen.push_back(decode_watermark(*f).watermark);
    }
  }};
  FrameChannel::Options opts;
  opts.fault = std::make_shared<fault::LinkFault>(
      fault::FaultPlan::parse("send:drop@after=2,for=3"));
  FrameChannel client{connect_to(listener.endpoint()), opts};
  for (int i = 0; i < 8; ++i) client.send(encode_watermark({i}));
  client.send(encode_bye());
  server.join();
  // Frames 2,3,4 vanished; the peer saw the rest in order.
  EXPECT_EQ(seen, (std::vector<stream::Timestamp>{0, 1, 5, 6, 7}));
  EXPECT_EQ(client.frames_dropped(), 3u);
  client.close();
}

TEST(FrameChannel, ReorderFaultSwapsOneFramePair) {
  Listener listener{Endpoint::parse("unix:" + test_socket_path("reorder"))};
  std::vector<stream::Timestamp> seen;
  std::thread server{[&] {
    Socket conn = listener.accept();
    while (auto f = recv_frame(conn)) {
      if (f->type == FrameType::kBye) break;
      seen.push_back(decode_watermark(*f).watermark);
    }
  }};
  FrameChannel::Options opts;
  opts.fault = std::make_shared<fault::LinkFault>(
      fault::FaultPlan::parse("send:reorder@after=1"));
  FrameChannel client{connect_to(listener.endpoint()), opts};
  for (int i = 0; i < 4; ++i) client.send(encode_watermark({i}));
  client.send(encode_bye());
  server.join();
  EXPECT_EQ(seen, (std::vector<stream::Timestamp>{0, 2, 1, 3}));
  client.close();
}

TEST(FrameChannel, DuplicateFaultDeliversTheFrameTwice) {
  Listener listener{Endpoint::parse("unix:" + test_socket_path("dupf"))};
  std::vector<stream::Timestamp> seen;
  std::thread server{[&] {
    Socket conn = listener.accept();
    while (auto f = recv_frame(conn)) {
      if (f->type == FrameType::kBye) break;
      seen.push_back(decode_watermark(*f).watermark);
    }
  }};
  FrameChannel::Options opts;
  opts.fault = std::make_shared<fault::LinkFault>(
      fault::FaultPlan::parse("send:dup@after=1,for=1"));
  FrameChannel client{connect_to(listener.endpoint()), opts};
  for (int i = 0; i < 3; ++i) client.send(encode_watermark({i}));
  client.send(encode_bye());
  server.join();
  EXPECT_EQ(seen, (std::vector<stream::Timestamp>{0, 1, 1, 2}));
  client.close();
}

TEST(FrameChannel, CorruptFaultIsDetectedByThePeerDecoder) {
  Listener listener{Endpoint::parse("unix:" + test_socket_path("corrupt"))};
  std::mutex mu;
  std::condition_variable cv;
  bool threw = false;
  std::thread server{[&] {
    Socket conn = listener.accept();
    try {
      while (recv_frame(conn).has_value()) {
      }
    } catch (const Error&) {
      std::lock_guard lock{mu};
      threw = true;
      cv.notify_all();
    }
  }};
  FrameChannel::Options opts;
  opts.fault = std::make_shared<fault::LinkFault>(
      fault::FaultPlan::parse("send:corrupt@after=2,for=1,seed=7"));
  FrameChannel client{connect_to(listener.endpoint()), opts};
  for (int i = 0; i < 3; ++i) client.send(encode_watermark({i}));
  {
    std::unique_lock lock{mu};
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return threw; }));
  }
  server.join();
  client.close();
}

TEST(FrameChannel, PartitionFaultTripsThePeersDeadline) {
  // One-way partition end to end: A's sends vanish but A's socket stays
  // open. B hears nothing — not even heartbeats — and must declare A dead
  // by deadline instead of waiting forever.
  Listener listener{Endpoint::parse("unix:" + test_socket_path("part"))};
  std::thread server{[&] {
    Socket conn = listener.accept();
    FrameChannel::Options bopts;
    bopts.liveness_deadline_ms = 200;
    bopts.close_drain_ms = 200;
    FrameChannel b{std::move(conn), bopts};
    EXPECT_THROW(
        {
          while (b.recv().has_value()) {
          }
        },
        Error);
    EXPECT_TRUE(b.liveness_expired());
    b.close();
  }};
  FrameChannel::Options aopts;
  aopts.heartbeat_every_ms = 40;  // originated, then blackholed
  aopts.fault = std::make_shared<fault::LinkFault>(
      fault::FaultPlan::parse("send:partition"));
  aopts.close_drain_ms = 200;
  FrameChannel a{connect_to(listener.endpoint()), aopts};
  server.join();
  EXPECT_GT(a.frames_dropped(), 0u);  // the blackholed heartbeats
  a.close();
}

}  // namespace
}  // namespace cosmos::wire
