#include "stream/operators.h"

#include <gtest/gtest.h>

#include <vector>

namespace cosmos::stream {
namespace {

Schema simple_schema() {
  return Schema{{{"v", ValueType::kInt}}};
}

Tuple mk(Timestamp ts, std::int64_t v) { return Tuple{ts, {Value{v}}}; }

TEST(FilterOp, ForwardsMatchesOnly) {
  const Schema s = simple_schema();
  std::vector<Tuple> out;
  FilterOp f{"S", &s, Predicate::cmp({"S", "v"}, CmpOp::kGt, Value{5}),
             [&](const Tuple& t) { out.push_back(t); }};
  f.push(mk(1, 3));
  f.push(mk(2, 7));
  f.push(mk(3, 6));
  EXPECT_EQ(f.seen(), 3u);
  EXPECT_EQ(f.passed(), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].at(0).as_int(), 7);
}

TEST(FilterOp, RejectsNullArguments) {
  const Schema s = simple_schema();
  EXPECT_THROW(FilterOp("S", nullptr, Predicate::always_true(),
                        [](const Tuple&) {}),
               std::invalid_argument);
  EXPECT_THROW(FilterOp("S", &s, nullptr, [](const Tuple&) {}),
               std::invalid_argument);
}

TEST(ProjectOp, KeepsRequestedColumns) {
  std::vector<Tuple> out;
  ProjectOp p{{2, 0}, [&](const Tuple& t) { out.push_back(t); }};
  Tuple t{5, {Value{1}, Value{2}, Value{3}}};
  p.push(t);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values.size(), 2u);
  EXPECT_EQ(out[0].at(0).as_int(), 3);
  EXPECT_EQ(out[0].at(1).as_int(), 1);
  EXPECT_EQ(out[0].ts, 5);
}

class JoinTest : public ::testing::Test {
 protected:
  Schema left_{{{"a", ValueType::kInt}}};
  Schema right_{{{"b", ValueType::kInt}}};
  std::vector<Tuple> out_;

  WindowJoinOp make(WindowSpec lw, WindowSpec rw, PredicatePtr pred) {
    return WindowJoinOp{{"L", &left_, lw},
                        {"R", &right_, rw},
                        std::move(pred),
                        [this](const Tuple& t) { out_.push_back(t); }};
  }
};

TEST_F(JoinTest, EquiJoinWithinWindow) {
  auto j = make(WindowSpec::range_millis(100), WindowSpec::range_millis(100),
                Predicate::cmp({"L", "a"}, CmpOp::kEq, FieldRef{"R", "b"}));
  j.push_left(mk(0, 1));
  j.push_left(mk(10, 2));
  j.push_right(mk(20, 2));  // matches L(10,2)
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].at(0).as_int(), 2);  // L.a
  EXPECT_EQ(out_[0].at(1).as_int(), 2);  // R.b
  EXPECT_EQ(out_[0].ts, 20);
  EXPECT_EQ(j.emitted(), 1u);
}

TEST_F(JoinTest, WindowExpiryPrunesState) {
  auto j = make(WindowSpec::range_millis(50), WindowSpec::range_millis(50),
                Predicate::always_true());
  j.push_left(mk(0, 1));
  j.push_left(mk(100, 2));
  j.push_right(mk(120, 9));  // only L(100) within 50ms
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].at(0).as_int(), 2);
  EXPECT_LE(j.left_state_size(), 2u);
}

TEST_F(JoinTest, NowWindowJoinsSameTimestampOnly) {
  auto j = make(WindowSpec::range_millis(1'000), WindowSpec::now(),
                Predicate::always_true());
  j.push_right(mk(10, 1));
  j.push_left(mk(10, 5));  // R(10) is "now" for ts=10
  EXPECT_EQ(out_.size(), 1u);
  j.push_left(mk(20, 6));  // R(10) expired under Now window
  EXPECT_EQ(out_.size(), 1u);
}

TEST_F(JoinTest, BandPredicateJoin) {
  // The paper's S1.snowHeight > S2.snowHeight shape.
  auto j = make(WindowSpec::range_millis(100), WindowSpec::range_millis(100),
                Predicate::cmp({"L", "a"}, CmpOp::kGt, FieldRef{"R", "b"}));
  j.push_left(mk(0, 10));
  j.push_right(mk(1, 5));   // 10 > 5 -> match
  j.push_right(mk(2, 15));  // 10 > 15 -> no
  EXPECT_EQ(out_.size(), 1u);
}

TEST_F(JoinTest, SymmetricProbing) {
  auto j = make(WindowSpec::range_millis(100), WindowSpec::range_millis(100),
                Predicate::always_true());
  j.push_left(mk(0, 1));
  j.push_right(mk(1, 2));  // pairs with L
  j.push_left(mk(2, 3));   // pairs with R
  EXPECT_EQ(out_.size(), 2u);
  // Output column order is always left-then-right regardless of arrival.
  EXPECT_EQ(out_[1].at(0).as_int(), 3);
  EXPECT_EQ(out_[1].at(1).as_int(), 2);
}

TEST_F(JoinTest, CartesianCountWithinWindow) {
  auto j = make(WindowSpec::range_millis(1'000), WindowSpec::range_millis(1'000),
                Predicate::always_true());
  for (int i = 0; i < 3; ++i) j.push_left(mk(i, i));
  for (int i = 0; i < 4; ++i) j.push_right(mk(10 + i, i));
  EXPECT_EQ(out_.size(), 12u);  // 3 x 4
}

}  // namespace
}  // namespace cosmos::stream
