// Virtual-clock replay driver: turns a globally timestamp-ordered,
// multi-stream trace into chunks the ingest loop hands to the broker and
// shards. A chunk is an ordered list of same-stream runs that preserves
// the global interleaving exactly — concatenating a chunk's runs replays
// the trace verbatim — so batched execution delivers every engine the
// same tuple sequence the synchronous per-tuple path would, and results
// are bit-identical at any shard count or batch size. The virtual clock
// bounds how much stream time one chunk may span (tick_ms), which in a
// live deployment bounds batching latency.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "runtime/tuple_batch.h"
#include "stream/schema.h"

namespace cosmos::runtime {

/// One trace record: a tuple on a named stream.
struct TraceEvent {
  std::string stream;
  stream::Tuple tuple;
};

/// A globally-ordered slice of the trace, split into maximal same-stream
/// runs (each run is one TupleBatch).
struct Chunk {
  std::vector<TupleBatch> runs;
  std::size_t tuples = 0;
  stream::Timestamp first_ts = 0;
  stream::Timestamp last_ts = 0;
  /// Wall stamp (common/clock.h now_ns) taken when the chunk opened — the
  /// start of the end-to-end latency measurement for every tuple in it
  /// (the oldest tuple's ingest time, so reported latency is conservative).
  std::uint64_t ingest_ns = 0;
};

class Driver {
 public:
  struct Options {
    /// Max tuples per chunk (flush trigger).
    std::size_t batch_size = 256;
    /// Max stream time one chunk may span; <= 0 disables the tick bound.
    stream::Timestamp tick_ms = 60'000;
  };
  using Sink = std::function<void(Chunk&&)>;

  Driver(Options options, Sink sink);

  /// Feeds one trace event. Events must arrive in non-decreasing global
  /// timestamp order; violations throw std::invalid_argument naming the
  /// stream and both timestamps. Equal timestamps across streams are fine.
  void push(const std::string& stream, const stream::Tuple& t);

  /// Flushes the open chunk. Call once after the last event.
  void finish();

  [[nodiscard]] std::size_t tuples() const noexcept { return tuples_; }
  [[nodiscard]] std::size_t chunks() const noexcept { return chunks_; }

  /// Convenience: replays a whole trace through a fresh driver.
  static void replay(const std::vector<TraceEvent>& events, Options options,
                     const Sink& sink);

 private:
  void flush();

  Options options_;
  Sink sink_;
  Chunk open_;
  stream::Timestamp last_ts_ = INT64_MIN;
  std::size_t tuples_ = 0;
  std::size_t chunks_ = 0;
};

}  // namespace cosmos::runtime
