#include "pubsub/broker_partition.h"

#include <set>
#include <stdexcept>
#include <unordered_map>

namespace cosmos::pubsub {

void TrafficStats::merge(const TrafficStats& other) {
  bytes += other.bytes;
  weighted_cost += other.weighted_cost;
  messages_sent += other.messages_sent;
  for (const auto& [link, t] : other.links) {
    auto& row = links[link];
    row.bytes += t.bytes;
    row.weighted_cost += t.weighted_cost;
    row.messages_sent += t.messages_sent;
  }
}

std::size_t Overlay::index_of(NodeId n) const {
  const auto it = index.find(n);
  if (it == index.end()) {
    throw std::invalid_argument{"BrokerNetwork: not a participant"};
  }
  return it->second;
}

BrokerPartition::BrokerPartition(const Overlay& overlay, std::string stream,
                                 NodeId publisher, stream::Schema schema)
    : overlay_(&overlay),
      stream_(std::move(stream)),
      publisher_(publisher),
      publisher_idx_(overlay.index_of(publisher)),
      schema_(std::move(schema)) {}

void BrokerPartition::add_subscription(const Subscription* sub) {
  subs_.push_back({sub, overlay_->index_of(sub->subscriber)});
}

void BrokerPartition::remove_subscription(SubscriptionId id) {
  std::erase_if(subs_,
                [id](const MatchedSub& m) { return m.sub->id == id; });
}

void BrokerPartition::match(const stream::Tuple& tuple,
                            const DeliveryCallback& callback) {
  if (subs_.empty()) return;
  Message message{stream_, &schema_, tuple};
  std::vector<MatchedSub> matched;
  for (const auto& entry : subs_) {
    if (entry.sub->matches(schema_, tuple)) matched.push_back(entry);
  }
  if (matched.empty()) return;
  route(message, publisher_idx_, SIZE_MAX, matched, callback);
}

void BrokerPartition::match_batch(const runtime::TupleBatch& batch,
                                  std::vector<BatchDelivery>& deliveries) {
  if (batch.empty()) return;
  // Validate ordering up front, before any matching or accounting: a batch
  // violating the per-stream timestamp rule must fail atomically, not after
  // half of its rows already generated traffic.
  if (!batch.timestamps_ordered()) {
    for (std::size_t r = 1; r < batch.size(); ++r) {
      if (batch.ts(r) < batch.ts(r - 1)) {
        throw std::invalid_argument{
            "BrokerPartition: out-of-order batch on stream " + stream_ +
            ": ts " + std::to_string(batch.ts(r)) + " after ts " +
            std::to_string(batch.ts(r - 1))};
      }
    }
  }
  // No subscriptions: nothing can match, route, or be accounted — skip the
  // per-row materialization entirely (as the scalar path does).
  if (subs_.empty()) return;

  // Accumulate per-subscription row lists in first-match order; matching
  // and routing run per row so the traffic accounting is byte-identical to
  // row-count scalar match() calls.
  const std::size_t first_delivery = deliveries.size();
  std::unordered_map<SubscriptionId, std::size_t> delivery_of;
  Message message{stream_, &schema_, {}};
  std::vector<MatchedSub> matched;
  for (std::uint32_t row = 0; row < batch.size(); ++row) {
    batch.materialize(row, message.tuple);
    matched.clear();
    for (const auto& entry : subs_) {
      if (entry.sub->matches(schema_, message.tuple)) {
        matched.push_back(entry);
        auto [dit, fresh] =
            delivery_of.try_emplace(entry.sub->id,
                                    deliveries.size() - first_delivery);
        if (fresh) deliveries.push_back({entry.sub, &batch, {}});
        deliveries[first_delivery + dit->second].rows.push_back(row);
      }
    }
    if (matched.empty()) continue;
    route(message, publisher_idx_, SIZE_MAX, matched,
          [](const Subscription&, const Message&) {});
  }
}

void BrokerPartition::route(const Message& message, std::size_t at,
                            std::size_t came_from,
                            const std::vector<MatchedSub>& matched,
                            const DeliveryCallback& callback) {
  // Local delivery.
  for (const auto& m : matched) {
    if (m.home == at) callback(*m.sub, message);
  }
  // Forward to each neighbor leading to at least one interested
  // subscription, with attributes pruned to the union of their projections
  // (early projection; one copy per link regardless of fan-out behind it).
  for (const auto nb : overlay_->adj[at]) {
    if (nb == came_from) continue;
    std::set<std::string> attrs;
    bool wants_all = false;
    bool any = false;
    for (const auto& m : matched) {
      if (m.home == at || overlay_->next_hop[at][m.home] != nb) continue;
      any = true;
      if (m.sub->projection.empty()) {
        wants_all = true;
      } else {
        attrs.insert(m.sub->projection.begin(), m.sub->projection.end());
      }
    }
    if (!any) continue;
    const double bytes =
        message_bytes(message, wants_all ? std::set<std::string>{} : attrs);
    const double latency = overlay_->lat->latency(overlay_->participants[at],
                                                  overlay_->participants[nb]);
    traffic_.bytes += bytes;
    traffic_.weighted_cost += bytes * latency;
    ++traffic_.messages_sent;
    auto& link = traffic_.links[{overlay_->participants[at],
                                 overlay_->participants[nb]}];
    link.bytes += bytes;
    link.weighted_cost += bytes * latency;
    ++link.messages_sent;
    route(message, nb, at, matched, callback);
  }
}

}  // namespace cosmos::pubsub
