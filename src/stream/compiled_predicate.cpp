#include "stream/compiled_predicate.h"

#include <stdexcept>

#include "runtime/tuple_batch.h"

namespace cosmos::stream {

std::optional<FieldSlot> resolve_slot(
    const FieldRef& ref, const std::vector<BindingSpec>& bindings) noexcept {
  for (std::uint32_t i = 0; i < bindings.size(); ++i) {
    const BindingSpec& b = bindings[i];
    if (!ref.alias.empty() && ref.alias != b.alias) continue;
    if (b.schema == nullptr) return std::nullopt;
    if (const auto idx = b.schema->index_of(ref.field)) {
      if (*idx == b.virtual_ts_col) return FieldSlot{i, FieldSlot::kTsCol};
      return FieldSlot{i, static_cast<std::uint32_t>(*idx)};
    }
    if (ref.field == "timestamp") return FieldSlot{i, FieldSlot::kTsCol};
    if (!ref.alias.empty()) break;  // alias matched but field missing
  }
  return std::nullopt;
}

ValueType slot_type(const FieldSlot& slot,
                    const std::vector<BindingSpec>& bindings) {
  if (slot.col == FieldSlot::kTsCol) return ValueType::kInt;
  return bindings.at(slot.binding).schema->field(slot.col).type;
}

namespace {

[[nodiscard]] int three_way(std::int64_t a, std::int64_t b) noexcept {
  return a < b ? -1 : (a == b ? 0 : 1);
}
[[nodiscard]] int three_way(double a, double b) noexcept {
  return a < b ? -1 : (a == b ? 0 : 1);
}

[[noreturn]] void throw_string_vs_numeric() {
  throw std::logic_error{"Value: string vs numeric comparison"};
}

[[noreturn]] void throw_row_too_narrow(std::uint32_t col, std::size_t width) {
  throw std::out_of_range{"CompiledPredicate: column " + std::to_string(col) +
                          " out of range (row width " + std::to_string(width) +
                          ")"};
}

}  // namespace

/// Builds a CompiledPredicate program via one post-order walk with jump
/// backpatching. Friend of CompiledPredicate.
class PredicateCompiler {
 public:
  PredicateCompiler(const std::vector<BindingSpec>& bindings, bool lenient)
      : bindings_(bindings), lenient_(lenient) {}

  CompiledPredicate run(const PredicatePtr& p) {
    for (const BindingSpec& b : bindings_) {
      if (b.schema == nullptr) {
        throw std::invalid_argument{
            "CompiledPredicate: null schema for alias '" + b.alias + "'"};
      }
    }
    if (p == nullptr) {
      throw std::invalid_argument{"CompiledPredicate: null predicate"};
    }
    emit(p);
    return std::move(out_);
  }

 private:
  using Op = CompiledPredicate::Op;
  using Instr = CompiledPredicate::Instr;

  void emit(const PredicatePtr& p) {
    switch (p->kind()) {
      case Predicate::Kind::kTrue:
        out_.code_.push_back(Instr{});  // Op::kTrue
        return;
      case Predicate::Kind::kCompareConst:
        emit_cmp_const(static_cast<const CompareConst&>(*p));
        return;
      case Predicate::Kind::kCompareField:
        emit_cmp_field(static_cast<const CompareField&>(*p));
        return;
      case Predicate::Kind::kTimeBand:
        emit_time_band(static_cast<const TimeBand&>(*p));
        return;
      case Predicate::Kind::kAnd:
      case Predicate::Kind::kOr:
        emit_junction(static_cast<const BoolJunction&>(*p));
        return;
      case Predicate::Kind::kNot: {
        emit(static_cast<const NotPredicate&>(*p).child());
        Instr in;
        in.op = Op::kNot;
        out_.code_.push_back(in);
        return;
      }
    }
    throw std::invalid_argument{"CompiledPredicate: unknown node kind"};
  }

  void emit_junction(const BoolJunction& j) {
    const bool is_and = j.kind() == Predicate::Kind::kAnd;
    const auto& children = j.children();
    if (children.empty()) {
      // Interpreter: empty AND is true, empty OR is false. Predicate
      // factories never build these, but stay faithful anyway.
      Instr in;
      out_.code_.push_back(in);  // reg = true
      if (!is_and) {
        Instr neg;
        neg.op = Op::kNot;
        out_.code_.push_back(neg);
      }
      return;
    }
    std::vector<std::uint32_t> patches;
    emit(children.front());
    for (std::size_t i = 1; i < children.size(); ++i) {
      Instr jump;
      jump.op = is_and ? Op::kJumpIfFalse : Op::kJumpIfTrue;
      patches.push_back(static_cast<std::uint32_t>(out_.code_.size()));
      out_.code_.push_back(jump);
      emit(children[i]);
    }
    const auto end = static_cast<std::uint32_t>(out_.code_.size());
    for (const std::uint32_t at : patches) out_.code_[at].target = end;
  }

  /// Resolves `ref`; in lenient mode an unresolvable ref emits a kThrow
  /// carrying the interpreter's resolve_field message and returns nullopt.
  std::optional<FieldSlot> slot_or_throw(const FieldRef& ref) {
    if (auto s = resolve_slot(ref, bindings_)) return s;
    const std::string msg = "resolve_field: cannot resolve " + ref.to_string();
    if (!lenient_) throw std::invalid_argument{msg};
    Instr in;
    in.op = Op::kThrow;
    in.aux = static_cast<std::uint32_t>(out_.messages_.size());
    out_.messages_.push_back(msg);
    out_.code_.push_back(in);
    out_.may_throw_ = true;
    return std::nullopt;
  }

  void emit_cmp_const(const CompareConst& cc) {
    const auto slot = slot_or_throw(cc.lhs());
    if (!slot) return;
    Instr in;
    in.cmp = cc.op();
    in.a = *slot;
    const Value& rhs = cc.rhs();
    if (rhs.type() == ValueType::kString) {
      in.op = Op::kCmpConstStr;
      in.aux = static_cast<std::uint32_t>(out_.strings_.size());
      out_.strings_.push_back(rhs.as_string());
    } else {
      in.op = Op::kCmpConstNum;
      in.const_is_int = rhs.type() == ValueType::kInt;
      if (in.const_is_int) in.inum = rhs.as_int();
      in.num = rhs.as_double();
    }
    out_.code_.push_back(in);
  }

  void emit_cmp_field(const CompareField& cf) {
    // Interpreter resolves lhs first: on a doubly-unresolvable compare the
    // lhs message must win.
    const auto a = slot_or_throw(cf.lhs());
    if (!a) return;
    const auto b = slot_or_throw(cf.rhs());
    if (!b) return;
    Instr in;
    in.op = Op::kCmpField;
    in.cmp = cf.op();
    in.a = *a;
    in.b = *b;
    out_.code_.push_back(in);
  }

  void emit_time_band(const TimeBand& tb) {
    const auto a = slot_or_throw(tb.newer());
    if (!a) return;
    // The interpreter fully evaluates as_int(newer) before resolving
    // older, so a string-typed newer must throw std::logic_error even when
    // older is unresolvable: probe newer before the lenient throw.
    if (lenient_ && !resolve_slot(tb.older(), bindings_)) {
      Instr probe;
      probe.op = Op::kIntProbe;
      probe.a = *a;
      out_.code_.push_back(probe);
    }
    const auto b = slot_or_throw(tb.older());
    if (!b) return;
    Instr in;
    in.op = Op::kTimeBand;
    in.a = *a;
    in.b = *b;
    in.inum = tb.band_ms();
    out_.code_.push_back(in);
  }

  const std::vector<BindingSpec>& bindings_;
  bool lenient_;
  CompiledPredicate out_;
};

CompiledPredicate CompiledPredicate::compile_impl(
    const PredicatePtr& p, const std::vector<BindingSpec>& b, bool lenient) {
  return PredicateCompiler{b, lenient}.run(p);
}

CompiledPredicate CompiledPredicate::compile(
    const PredicatePtr& p, const std::vector<BindingSpec>& bindings) {
  return compile_impl(p, bindings, /*lenient=*/false);
}

CompiledPredicate CompiledPredicate::compile_lenient(
    const PredicatePtr& p, const std::vector<BindingSpec>& bindings) {
  return compile_impl(p, bindings, /*lenient=*/true);
}

namespace {

/// Loads a slot's value for the generic field-field compare; `scratch`
/// backs timestamp slots.
inline const Value& load_value(const CompiledPredicate::Row* rows,
                               const FieldSlot& s, Value& scratch) {
  const CompiledPredicate::Row& r = rows[s.binding];
  if (s.col == FieldSlot::kTsCol) {
    scratch = Value{static_cast<std::int64_t>(r.ts)};
    return scratch;
  }
  if (s.col >= r.width) throw_row_too_narrow(s.col, r.width);
  return r.values[s.col];
}

/// as_int view of a slot (kTimeBand): ints exact, doubles truncated,
/// strings throw — the interpreter's Value::as_int.
inline std::int64_t load_int(const CompiledPredicate::Row* rows,
                             const FieldSlot& s) {
  const CompiledPredicate::Row& r = rows[s.binding];
  if (s.col == FieldSlot::kTsCol) return r.ts;
  if (s.col >= r.width) throw_row_too_narrow(s.col, r.width);
  return r.values[s.col].as_int();
}

}  // namespace

template <bool kUnresolvedFalse>
bool CompiledPredicate::eval_impl(const Row* rows) const {
  bool reg = true;
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    const Instr& in = code_[pc];
    switch (in.op) {
      case Op::kTrue:
        reg = true;
        break;
      case Op::kCmpConstNum: {
        const Row& r = rows[in.a.binding];
        int sign;
        if (in.a.col == FieldSlot::kTsCol) {
          sign = in.const_is_int
                     ? three_way(static_cast<std::int64_t>(r.ts), in.inum)
                     : three_way(static_cast<double>(r.ts), in.num);
        } else {
          if (in.a.col >= r.width) throw_row_too_narrow(in.a.col, r.width);
          const Value& v = r.values[in.a.col];
          switch (v.type()) {
            case ValueType::kInt:
              sign = in.const_is_int
                         ? three_way(v.as_int(), in.inum)
                         : three_way(static_cast<double>(v.as_int()), in.num);
              break;
            case ValueType::kDouble:
              sign = three_way(v.as_double(), in.num);
              break;
            default:
              throw_string_vs_numeric();
          }
        }
        reg = apply_cmp(in.cmp, sign);
        break;
      }
      case Op::kCmpConstStr: {
        const Row& r = rows[in.a.binding];
        if (in.a.col == FieldSlot::kTsCol) throw_string_vs_numeric();
        if (in.a.col >= r.width) throw_row_too_narrow(in.a.col, r.width);
        const Value& v = r.values[in.a.col];
        if (v.type() != ValueType::kString) throw_string_vs_numeric();
        const std::string& a = v.as_string();
        const std::string& b = strings_[in.aux];
        reg = apply_cmp(in.cmp, a < b ? -1 : (a == b ? 0 : 1));
        break;
      }
      case Op::kCmpField: {
        Value sa;
        Value sb;
        const Value& va = load_value(rows, in.a, sa);
        const Value& vb = load_value(rows, in.b, sb);
        reg = apply_cmp(in.cmp, va.compare(vb));
        break;
      }
      case Op::kTimeBand: {
        const std::int64_t delta =
            load_int(rows, in.a) - load_int(rows, in.b);
        reg = delta >= 0 && delta <= in.inum;
        break;
      }
      case Op::kNot:
        reg = !reg;
        break;
      case Op::kIntProbe:
        (void)load_int(rows, in.a);
        break;
      case Op::kJumpIfFalse:
        if (!reg) pc = static_cast<std::size_t>(in.target) - 1;
        break;
      case Op::kJumpIfTrue:
        if (reg) pc = static_cast<std::size_t>(in.target) - 1;
        break;
      case Op::kThrow:
        if constexpr (kUnresolvedFalse) {
          // The subscription contract: an unresolvable field means "this
          // message cannot match", observed by reaching the instruction —
          // exactly where eval() would throw and the caller would catch.
          return false;
        } else {
          throw std::invalid_argument{messages_[in.aux]};
        }
    }
  }
  return reg;
}

bool CompiledPredicate::eval(const Row* rows) const {
  return eval_impl<false>(rows);
}

bool CompiledPredicate::eval_unresolved_false(const Row* rows) const {
  return eval_impl<true>(rows);
}

template <bool kUnresolvedFalse>
void CompiledPredicate::filter_batch_impl(
    const runtime::TupleBatch& batch, const std::vector<std::uint32_t>* sel,
    std::vector<std::uint32_t>& out) const {
  const std::size_t n = batch.size();
  const stream::Timestamp* ts = batch.ts_data();
  const Value* vals = batch.values_data();
  const std::size_t w = batch.width();
  Row row{0, nullptr, w};
  if (sel == nullptr) {
    for (std::uint32_t r = 0; r < n; ++r) {
      row.ts = ts[r];
      row.values = vals + std::size_t{r} * w;
      if (eval_impl<kUnresolvedFalse>(&row)) out.push_back(r);
    }
    return;
  }
  for (const std::uint32_t r : *sel) {
    if (r >= n) {
      throw std::out_of_range{"CompiledPredicate: selected row " +
                              std::to_string(r) + " out of range"};
    }
    row.ts = ts[r];
    row.values = vals + std::size_t{r} * w;
    if (eval_impl<kUnresolvedFalse>(&row)) out.push_back(r);
  }
}

void CompiledPredicate::filter_batch(const runtime::TupleBatch& batch,
                                     const std::vector<std::uint32_t>* sel,
                                     std::vector<std::uint32_t>& out) const {
  filter_batch_impl<false>(batch, sel, out);
}

void CompiledPredicate::filter_batch_unresolved_false(
    const runtime::TupleBatch& batch, const std::vector<std::uint32_t>* sel,
    std::vector<std::uint32_t>& out) const {
  filter_batch_impl<true>(batch, sel, out);
}

namespace {

[[nodiscard]] bool numeric_class(ValueType t) noexcept {
  return t != ValueType::kString;
}

}  // namespace

bool statically_well_typed(const PredicatePtr& p,
                           const std::vector<BindingSpec>& bindings) {
  switch (p->kind()) {
    case Predicate::Kind::kTrue:
      return true;
    case Predicate::Kind::kCompareConst: {
      const auto& cc = static_cast<const CompareConst&>(*p);
      const auto slot = resolve_slot(cc.lhs(), bindings);
      if (!slot) return false;
      return numeric_class(slot_type(*slot, bindings)) ==
             numeric_class(cc.rhs().type());
    }
    case Predicate::Kind::kCompareField: {
      const auto& cf = static_cast<const CompareField&>(*p);
      const auto a = resolve_slot(cf.lhs(), bindings);
      const auto b = resolve_slot(cf.rhs(), bindings);
      if (!a || !b) return false;
      return numeric_class(slot_type(*a, bindings)) ==
             numeric_class(slot_type(*b, bindings));
    }
    case Predicate::Kind::kTimeBand: {
      const auto& tb = static_cast<const TimeBand&>(*p);
      const auto a = resolve_slot(tb.newer(), bindings);
      const auto b = resolve_slot(tb.older(), bindings);
      if (!a || !b) return false;
      return numeric_class(slot_type(*a, bindings)) &&
             numeric_class(slot_type(*b, bindings));
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      for (const auto& c : static_cast<const BoolJunction&>(*p).children()) {
        if (!statically_well_typed(c, bindings)) return false;
      }
      return true;
    }
    case Predicate::Kind::kNot:
      return statically_well_typed(
          static_cast<const NotPredicate&>(*p).child(), bindings);
  }
  return false;
}

FilterSplit split_const_conjuncts(const PredicatePtr& p,
                                  const std::vector<BindingSpec>& bindings) {
  FilterSplit out;
  if (!collect_conjuncts(p, out.conjuncts)) return out;
  out.conjunctive = true;
  out.statically_safe = statically_well_typed(p, bindings);
  for (std::size_t i = 0; i < out.conjuncts.size(); ++i) {
    const PredicatePtr& c = out.conjuncts[i];
    if (c->kind() != Predicate::Kind::kCompareConst) continue;
    const auto& cc = static_cast<const CompareConst&>(*c);
    if (cc.op() == CmpOp::kNe) continue;
    const auto slot = resolve_slot(cc.lhs(), bindings);
    if (!slot) continue;
    if (numeric_class(slot_type(*slot, bindings)) !=
        numeric_class(cc.rhs().type())) {
      continue;  // class-mismatched compares throw, they never prune
    }
    out.indexable.push_back({i, *slot, cc.op(), cc.rhs()});
  }
  return out;
}

JoinSplit split_equi_conjuncts(const PredicatePtr& p,
                               const std::vector<BindingSpec>& bindings) {
  JoinSplit out;
  std::vector<PredicatePtr> conjuncts;
  if (!collect_conjuncts(p, conjuncts)) {
    out.residual = p;  // non-conjunctive: nothing extractable
    return out;
  }
  // Empty-alias refs resolve by scanning bindings in order, so the probe
  // direction (incoming side first) changes the scan order; a key is only
  // sound when both refs land on the same physical slots either way.
  std::vector<BindingSpec> flipped{bindings.rbegin(), bindings.rend()};
  const auto resolve_stable =
      [&](const FieldRef& ref) -> std::optional<FieldSlot> {
    const auto fwd = resolve_slot(ref, bindings);
    if (!fwd) return std::nullopt;
    auto rev = resolve_slot(ref, flipped);
    if (!rev) return std::nullopt;
    rev->binding = static_cast<std::uint32_t>(bindings.size()) - 1 -
                   rev->binding;
    if (*rev != *fwd) return std::nullopt;
    return fwd;
  };

  std::vector<PredicatePtr> residual;
  for (const PredicatePtr& c : conjuncts) {
    if (c->kind() == Predicate::Kind::kCompareField) {
      const auto& cf = static_cast<const CompareField&>(*c);
      if (cf.op() == CmpOp::kEq) {
        const auto a = resolve_stable(cf.lhs());
        const auto b = resolve_stable(cf.rhs());
        if (a && b && a->binding != b->binding) {
          const bool a_str = slot_type(*a, bindings) == ValueType::kString;
          const bool b_str = slot_type(*b, bindings) == ValueType::kString;
          if (a_str == b_str) {
            out.keys.push_back(a->binding == 0 ? EquiKey{*a, *b}
                                               : EquiKey{*b, *a});
            continue;
          }
        }
      }
    }
    residual.push_back(c);
  }
  out.residual = Predicate::conj(std::move(residual));
  return out;
}

}  // namespace cosmos::stream
