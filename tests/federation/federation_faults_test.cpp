// Federation liveness + network-fault differentials. Where the chaos suite
// kills worker processes outright (kill -9: the channel reports EOF), these
// scenarios are the harder half of the failure model: peers that are alive
// but silent (SIGSTOP), links that are up but lossy (drop, corrupt), slow
// (delay), or one-way dead (partition). Every scenario must end with
// per-query result sequences byte-identical to the synchronous push() mode,
// with detections/recoveries/fallbacks counted in RunReport::federation —
// and no federated wait may block unboundedly on a silent peer.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cosmos/cosmos.h"
#include "node/spawn.h"
#include "support/random_workload.h"
#include "wire/messages.h"
#include "wire/socket.h"

namespace cosmos::middleware {
namespace {

using testsupport::ResultLog;
using testsupport::build_system;
using testsupport::make_workload;

struct Fleet {
  std::vector<node::NodeProcess> procs;
  std::vector<std::string> endpoints;
};

Fleet spawn_fleet(std::size_t n, const std::string& tag,
                  const std::vector<std::string>& extra_args = {}) {
  static int counter = 0;
  Fleet fleet;
  const std::string noded = node::default_noded_path();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string endpoint = "unix:/tmp/cosmos_faults_" + tag + "_" +
                                 std::to_string(::getpid()) + "_" +
                                 std::to_string(counter++) + ".sock";
    fleet.procs.push_back(node::spawn_noded(noded, endpoint, extra_args));
    fleet.endpoints.push_back(endpoint);
  }
  return fleet;
}

ResultLog push_baseline(const testsupport::RandomWorkload& w) {
  ResultLog log;
  auto sys = build_system(w, log);
  for (const auto& ev : w.events) sys->push(ev.stream, ev.tuple);
  return log;
}

TEST(FederationFaults, SigstopWorkerDetectedAndRecovered) {
  // A SIGSTOPped worker is the canonical silent failure: the process is
  // alive, its sockets stay open, it just never answers. The liveness
  // watchdog must declare it dead within the deadline and hand it to the
  // same respawn/replay recovery that handles kill -9 — byte-identically.
  const char* trace_env = std::getenv("COSMOS_FAULTS_TRACE");
  bool trace_written = false;

  for (const std::uint64_t seed : {2, 5}) {
    const auto w = make_workload(seed);
    const auto push_log = push_baseline(w);

    struct Config {
      std::size_t workers;
      bool peer_links;
    };
    for (const Config cfg :
         {Config{2, false}, Config{2, true}, Config{4, false},
          Config{4, true}}) {
      auto fleet = spawn_fleet(cfg.workers, "stop");
      ResultLog fed_log;
      auto sys = build_system(w, fed_log);

      Cosmos::FederationOptions opts;
      opts.workers = fleet.endpoints;
      opts.batch_size = 16;  // small chunks: the stop lands mid-trace
      opts.tick_ms = 20 * 60'000;
      opts.peer_links = cfg.peer_links;
      opts.recovery.enabled = true;
      opts.recovery.noded_path = node::default_noded_path();
      opts.liveness.heartbeat_every_ms = 100;
      opts.liveness.deadline_ms = 600;
      if (trace_env != nullptr && !trace_written) {
        opts.trace_path = trace_env;
        trace_written = true;
      }
      const std::size_t victim = 1 % cfg.workers;
      bool stopped = false;
      opts.on_chunk = [&](std::size_t chunk) {
        if (chunk == 2 && !stopped) {
          ::kill(fleet.procs[victim].pid(), SIGSTOP);
          stopped = true;
        }
      };

      const auto report = sys->run_federated(w.events, opts);

      ASSERT_TRUE(stopped) << "trace too short to land the stop: seed="
                           << seed << " workers=" << cfg.workers;
      EXPECT_GE(report.federation.recoveries, 1u);
      EXPECT_EQ(report.tuples, w.events.size());
      ASSERT_EQ(fed_log, push_log)
          << "sigstop differential mismatch: seed=" << seed
          << " workers=" << cfg.workers << " peer_links=" << cfg.peer_links;

      // The stopped orphan still holds the old endpoint; SIGKILL reaps a
      // stopped process without needing SIGCONT first.
      fleet.procs[victim].kill();
      EXPECT_EQ(fleet.procs[victim].exit_status(), -SIGKILL);
      for (std::size_t i = 0; i < fleet.procs.size(); ++i) {
        if (i != victim) EXPECT_EQ(fleet.procs[i].wait(), 0);
      }
    }
  }
}

TEST(FederationFaults, SigstopSigcontUnderDeadlineIsNotAFailure) {
  // The false-positive guard: a worker paused for less than the deadline
  // (GC pause, scheduler hiccup) must NOT be declared dead — the run
  // completes with zero recoveries.
  const auto w = make_workload(3);
  const auto push_log = push_baseline(w);

  auto fleet = spawn_fleet(2, "pause");
  ResultLog fed_log;
  auto sys = build_system(w, fed_log);

  Cosmos::FederationOptions opts;
  opts.workers = fleet.endpoints;
  opts.batch_size = 16;
  opts.tick_ms = 20 * 60'000;
  opts.recovery.enabled = true;
  opts.recovery.noded_path = node::default_noded_path();
  opts.liveness.heartbeat_every_ms = 100;
  opts.liveness.deadline_ms = 2'000;
  bool paused = false;
  opts.on_chunk = [&](std::size_t chunk) {
    if (chunk == 2 && !paused) {
      ::kill(fleet.procs[1].pid(), SIGSTOP);
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      ::kill(fleet.procs[1].pid(), SIGCONT);
      paused = true;
    }
  };

  const auto report = sys->run_federated(w.events, opts);

  ASSERT_TRUE(paused);
  EXPECT_EQ(report.federation.recoveries, 0u);
  ASSERT_EQ(fed_log, push_log);
  for (auto& p : fleet.procs) EXPECT_EQ(p.wait(), 0);
}

TEST(FederationFaults, OneWayPeerPartitionFallsBackToStar) {
  // Peer-link mode with every outbound worker-to-worker link one-way
  // partitioned: the dialed connection opens (the link looks "up") but
  // every sent frame vanishes, so the kPeerHello ack never comes back.
  // The bounded handshake wait — paced by the liveness deadline — times
  // out, the one re-dial burns against the same persistent partition, the
  // worker reports kPeerDown, and the driver star-routes the pair and
  // replays the entries the link swallowed. No worker dies; results stay
  // byte-identical.
  const auto w = make_workload(2);
  const auto push_log = push_baseline(w);

  auto fleet = spawn_fleet(2, "part", {"--fault-peer", "send:partition"});
  ResultLog fed_log;
  auto sys = build_system(w, fed_log);

  Cosmos::FederationOptions opts;
  opts.workers = fleet.endpoints;
  opts.batch_size = 16;
  opts.tick_ms = 20 * 60'000;
  opts.peer_links = true;
  opts.liveness.heartbeat_every_ms = 100;
  opts.liveness.deadline_ms = 500;

  const auto report = sys->run_federated(w.events, opts);

  EXPECT_GE(report.federation.peer_fallbacks, 1u);
  EXPECT_EQ(report.federation.recoveries, 0u);
  ASSERT_EQ(fed_log, push_log) << "peer-partition differential mismatch";
  for (auto& p : fleet.procs) EXPECT_EQ(p.wait(), 0);
}

TEST(FederationFaults, SlowLinkIsNotDeclaredDead) {
  // A trickling/delayed link is slow, not dead: heartbeats and data still
  // flow, so a 100 ms per-frame delay under a 1 s deadline must complete
  // with zero recoveries — the detection is calibrated against silence,
  // not latency.
  const auto w = make_workload(4);
  const auto push_log = push_baseline(w);

  auto fleet = spawn_fleet(2, "slow");
  ResultLog fed_log;
  auto sys = build_system(w, fed_log);

  Cosmos::FederationOptions opts;
  opts.workers = fleet.endpoints;
  opts.batch_size = 16;
  opts.tick_ms = 20 * 60'000;
  opts.liveness.heartbeat_every_ms = 100;
  opts.liveness.deadline_ms = 1'000;
  opts.faults.push_back({0, 1, "send:delay@ms=100"});

  const auto report = sys->run_federated(w.events, opts);

  EXPECT_EQ(report.federation.faults_injected, 1u);
  EXPECT_EQ(report.federation.recoveries, 0u);
  ASSERT_EQ(fed_log, push_log) << "slow-link differential mismatch";
  for (auto& p : fleet.procs) EXPECT_EQ(p.wait(), 0);
}

TEST(FederationFaults, CorruptFrameTriggersRecovery) {
  // One corrupted header byte on the driver->worker link: the worker's
  // strict decoder rejects the frame, reports kError, and dies; the driver
  // treats that incarnation like any dead worker — respawn, replay,
  // byte-identical results.
  const auto w = make_workload(5);
  const auto push_log = push_baseline(w);

  auto fleet = spawn_fleet(2, "corrupt");
  ResultLog fed_log;
  auto sys = build_system(w, fed_log);

  Cosmos::FederationOptions opts;
  opts.workers = fleet.endpoints;
  opts.batch_size = 16;
  opts.tick_ms = 20 * 60'000;
  opts.recovery.enabled = true;
  opts.recovery.noded_path = node::default_noded_path();
  opts.liveness.heartbeat_every_ms = 100;
  opts.liveness.deadline_ms = 2'000;
  opts.faults.push_back({0, 1, "send:corrupt@after=5,for=1,seed=7"});

  const auto report = sys->run_federated(w.events, opts);

  EXPECT_EQ(report.federation.faults_injected, 1u);
  // At least one recovery (the poisoned incarnation), occasionally two:
  // the worker exits on its own schedule after sending kError, and the
  // driver's re-dial can land in the dying process's still-live listener
  // backlog — a reset that costs a second, benign recovery. Bounded by
  // max_recoveries either way; byte identity is the real contract.
  EXPECT_GE(report.federation.recoveries, 1u);
  EXPECT_LE(report.federation.recoveries, 2u);
  ASSERT_EQ(fed_log, push_log) << "corrupt-frame differential mismatch";
  // Worker 1's first incarnation died on the poisoned session (exit 1);
  // its respawn is driver-owned and ends orderly.
  EXPECT_EQ(fleet.procs[0].wait(), 0);
  EXPECT_NE(fleet.procs[1].wait(), 0);
}

TEST(FederationFaults, DuplicatedAndReorderedFramesAreAbsorbed) {
  // Duplication and a single adjacent swap on the driver->worker link:
  // per-engine seq dedup absorbs replays, the site's floor gating restores
  // watermark/flush order, and the flush-ack set dedups double acks — all
  // without declaring anything dead.
  const auto w = make_workload(6);
  const auto push_log = push_baseline(w);

  auto fleet = spawn_fleet(2, "dupre");
  ResultLog fed_log;
  auto sys = build_system(w, fed_log);

  Cosmos::FederationOptions opts;
  opts.workers = fleet.endpoints;
  opts.batch_size = 16;
  opts.tick_ms = 20 * 60'000;
  opts.liveness.heartbeat_every_ms = 100;
  opts.liveness.deadline_ms = 1'000;
  opts.faults.push_back({0, 1, "send:dup@after=0,for=20;send:reorder@after=4"});

  const auto report = sys->run_federated(w.events, opts);

  EXPECT_EQ(report.federation.faults_injected, 1u);
  EXPECT_EQ(report.federation.recoveries, 0u);
  ASSERT_EQ(fed_log, push_log) << "dup/reorder differential mismatch";
  for (auto& p : fleet.procs) EXPECT_EQ(p.wait(), 0);
}

TEST(FederationFaults, WorkerExitsWhenDriverGoesSilent) {
  // The worker side of the liveness pact: a driver that hellos and then
  // goes silent (without closing — the socket stays open) must not leave
  // the daemon lingering forever. The worker's own deadline trips and the
  // process exits with an error.
  const std::string endpoint = "unix:/tmp/cosmos_faults_silentdrv_" +
                               std::to_string(::getpid()) + ".sock";
  auto proc = node::spawn_noded(node::default_noded_path(), endpoint);

  wire::Socket driver = wire::connect_to(wire::Endpoint::parse(endpoint));
  wire::HelloMsg hello;
  hello.worker_index = 0;
  hello.shards = 1;
  hello.heartbeat_every_ms = 50;
  hello.liveness_deadline_ms = 300;
  wire::send_frame(driver, wire::encode_hello(hello));
  const auto ack = wire::recv_frame(driver);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, wire::FrameType::kHelloAck);

  // Go silent; keep the socket open so this is silence, not EOF.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::optional<int> status;
  while (std::chrono::steady_clock::now() < deadline) {
    status = proc.poll();
    if (status.has_value()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(status.has_value())
      << "worker lingered past the liveness deadline";
  EXPECT_NE(*status, 0);  // died on the deadline, not an orderly bye
}

}  // namespace
}  // namespace cosmos::middleware
