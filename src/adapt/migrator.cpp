#include "adapt/migrator.h"

#include <set>

#include "common/clock.h"
#include "obs/trace.h"

namespace cosmos::adapt {

Migrator::Migrator(runtime::Runtime& rt,
                   std::unordered_map<std::uint64_t, std::size_t>& shard_of,
                   StateProbe measured_state)
    : rt_(&rt),
      shard_of_(&shard_of),
      measured_state_(std::move(measured_state)) {}

void Migrator::apply(const std::vector<Move>& moves,
                     AdaptationReport& report) {
  if (moves.empty()) return;
  const TimePoint t0 = Clock::now();
  const obs::Span span{"migrate", "adapt", moves.size()};
  std::set<std::size_t> drained;
  for (const Move& move : moves) {
    // Drain the shard the engine is *currently* on (the plan's `from` is
    // advisory — a stale plan must still never leave in-flight tasks).
    const auto it = shard_of_->find(move.engine);
    if (it == shard_of_->end() || it->second == move.to) continue;
    if (drained.insert(it->second).second) rt_->drain_shard(it->second);
    if (measured_state_) {
      report.state_bytes_migrated += measured_state_(move.engine);
    }
    it->second = move.to;
    ++report.moves;
    obs::Tracer::instance().instant("migration", "adapt", move.engine);
  }
  report.migration_stall_seconds += seconds_since(t0);
}

}  // namespace cosmos::adapt
