#include "stream/engine.h"

#include <gtest/gtest.h>

namespace cosmos::stream {
namespace {

Schema one_field() { return Schema{{{"v", ValueType::kInt}}}; }

TEST(Engine, RegisterAndSchema) {
  Engine e;
  e.register_stream("S", one_field());
  EXPECT_TRUE(e.has_stream("S"));
  EXPECT_FALSE(e.has_stream("T"));
  EXPECT_EQ(e.schema("S").size(), 1u);
  EXPECT_THROW(e.schema("T"), std::out_of_range);
  EXPECT_THROW(e.register_stream("S", one_field()), std::invalid_argument);
}

TEST(Engine, PublishReachesAllTaps) {
  Engine e;
  e.register_stream("S", one_field());
  int a = 0, b = 0;
  e.attach("S", [&](const Tuple&) { ++a; });
  e.attach("S", [&](const Tuple&) { ++b; });
  e.publish("S", Tuple{1, {Value{1}}});
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(e.published_count("S"), 1u);
}

TEST(Engine, DetachStopsDelivery) {
  Engine e;
  e.register_stream("S", one_field());
  int a = 0;
  const auto tap = e.attach("S", [&](const Tuple&) { ++a; });
  e.publish("S", Tuple{1, {Value{1}}});
  e.detach("S", tap);
  e.publish("S", Tuple{2, {Value{1}}});
  EXPECT_EQ(a, 1);
}

TEST(Engine, RejectsOutOfOrderTuples) {
  Engine e;
  e.register_stream("S", one_field());
  e.publish("S", Tuple{10, {Value{1}}});
  e.publish("S", Tuple{10, {Value{2}}});  // equal is fine
  EXPECT_THROW(e.publish("S", Tuple{9, {Value{3}}}), std::invalid_argument);
}

TEST(Engine, TapsMayAttachDuringPublish) {
  Engine e;
  e.register_stream("S", one_field());
  int later = 0;
  e.attach("S", [&](const Tuple&) {
    // Simulates a query whose result consumer registers reactively.
    static bool attached = false;
    if (!attached) {
      attached = true;
      e.attach("S", [&](const Tuple&) { ++later; });
    }
  });
  e.publish("S", Tuple{1, {Value{1}}});
  EXPECT_EQ(later, 0);  // not delivered retroactively
  e.publish("S", Tuple{2, {Value{1}}});
  EXPECT_EQ(later, 1);
}

}  // namespace
}  // namespace cosmos::stream
