// Deterministic network fault injection for the federation transport.
//
// A FaultPlan is a seeded, per-link schedule of frame-level misbehaviors —
// drop, delay, duplicate, reorder, trickle, corrupt, one-way partition,
// hang — keyed by the link's own frame counters, so a plan replays
// identically for a given traffic sequence. LinkFault is the runtime
// instance a FrameChannel (or a raw serve loop) consults on every frame in
// each direction; the channel applies the returned action, the plan never
// touches sockets itself.
//
// Plans parse from a compact spec string so tests and cosmos_noded can
// receive them on the command line:
//
//   spec  := rule (';' rule)*
//   rule  := dir ':' kind ['@' key '=' value (',' key '=' value)*]
//   dir   := 'send' | 'recv'
//   kind  := 'drop' | 'delay' | 'dup' | 'reorder' | 'trickle' | 'corrupt'
//            | 'partition' | 'hang'
//   keys  := after (frames before the rule arms, default 0)
//            for   (frames the rule stays armed, default unbounded)
//            ms    (delay/trickle milliseconds, default 50)
//            seed  (corrupt byte-position RNG seed, default 1)
//
// e.g. "send:partition@after=8" (blackhole all sends from frame 8 on) or
// "send:corrupt@after=5,for=1,seed=7;recv:delay@ms=20".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cosmos::fault {

enum class FaultKind : std::uint8_t {
  kDrop,       ///< discard the frame silently
  kDelay,      ///< extra per-frame latency (the emulated-link-delay kind)
  kDuplicate,  ///< send/deliver the frame twice
  kReorder,    ///< hold one frame back and swap it with its successor
  kTrickle,    ///< slow link: pace frames `ms` apart (throughput, not just
               ///  latency)
  kCorrupt,    ///< flip one seeded byte of the encoded frame
  kPartition,  ///< one-way blackhole: frames vanish, the link stays "up"
  kHang,       ///< stop moving frames entirely but keep the socket open
};

enum class Direction : std::uint8_t { kSend, kRecv };

[[nodiscard]] const char* to_string(FaultKind kind);
[[nodiscard]] const char* to_string(Direction dir);

/// One scheduled misbehavior. Frame indices are 0-based per direction.
struct FaultSpec {
  FaultKind kind = FaultKind::kDrop;
  Direction dir = Direction::kSend;
  std::uint64_t after_frames = 0;  ///< arm once this many frames passed
  std::uint64_t for_frames = UINT64_MAX;  ///< stay armed for this many
  std::int64_t ms = 50;      ///< delay / trickle pacing milliseconds
  std::uint64_t seed = 1;    ///< corrupt-position RNG seed

  [[nodiscard]] std::string to_string() const;
};

/// A link's whole schedule. Parse throws std::runtime_error on bad specs.
struct FaultPlan {
  std::vector<FaultSpec> specs;

  [[nodiscard]] bool empty() const { return specs.empty(); }
  [[nodiscard]] static FaultPlan parse(const std::string& spec);
  [[nodiscard]] std::string to_string() const;
};

/// What the transport should do with one outbound frame.
struct SendAction {
  bool drop = false;        ///< discard (also the partition behavior)
  bool duplicate = false;   ///< transmit twice
  bool hang = false;        ///< park the sender until the channel closes
  bool corrupt = false;     ///< flip a seeded byte of the encoded buffer
  std::uint64_t corrupt_seed = 0;  ///< position RNG seed for this frame
  std::int64_t extra_delay_ms = 0;  ///< added to the channel's link delay
  std::int64_t pace_ms = 0;  ///< trickle: min gap after the previous write
  bool reorder_hold = false;  ///< hold this frame; release after the next
  std::uint64_t frame_index = 0;  ///< 0-based send index of this frame
};

/// What the transport should do with one inbound frame.
struct RecvAction {
  bool drop = false;  ///< read and discard (inbound partition)
  bool hang = false;  ///< stop reading entirely
};

/// Per-link runtime: owns the direction counters, so one LinkFault must be
/// consulted for every frame on its link in order. Thread-safe only in the
/// transport's natural single-sender / single-reader discipline (counters
/// are per-direction).
class LinkFault {
 public:
  explicit LinkFault(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Evaluate (and count) the next outbound frame.
  [[nodiscard]] SendAction on_send();
  /// Evaluate (and count) the next inbound frame.
  [[nodiscard]] RecvAction on_recv();

  [[nodiscard]] std::uint64_t frames_seen(Direction dir) const {
    return dir == Direction::kSend ? sent_ : received_;
  }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

/// Deterministically flips one header byte of an encoded frame, chosen by
/// (seed, frame_index) among positions whose corruption the strict decoder
/// is *guaranteed* to reject — magic, version, or the length MSB. The
/// scenario under test is corruption *detection* (peer throws wire::Error,
/// session dies, recovery takes over), never silent data damage, so the
/// flip must not be able to land in an undetectable content byte.
/// Returns the flipped offset.
std::size_t corrupt_frame_bytes(std::vector<std::uint8_t>& encoded,
                                std::uint64_t seed,
                                std::uint64_t frame_index);

using LinkFaultPtr = std::shared_ptr<LinkFault>;

}  // namespace cosmos::fault
