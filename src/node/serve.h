// One daemon session: wraps a connected socket in a FrameChannel and
// drives a Site from the frames on it. Factored out of tools/cosmos_noded
// so tests can serve a session on an in-process thread against a real
// socket pair without spawning the binary.
#pragma once

#include "wire/socket.h"

namespace cosmos::node {

/// Serves frames on `socket` until kBye, peer close or failure. The first
/// frame must be kHello; it fixes the session's runtime shard count and
/// emulated send delay. On any error a best-effort kError frame is sent
/// before returning. Returns true for an orderly end (kBye or clean peer
/// close), false when the session died on an error.
bool serve_connection(wire::Socket socket);

}  // namespace cosmos::node
