// Crash-consistent on-disk run journal for the federated driver.
//
// The driver is the federation's last single point of failure: PRs 8-9 made
// every *worker* death and link fault survivable, but the recovery state that
// makes that possible — the registration log, the routed-execute data log,
// engine checkpoints and the delivered-results floor — lived only in driver
// memory. The journal persists exactly that state as an append-only segment
// file per checkpoint epoch, so a kill -9'd driver restarts with
// `Cosmos::resume_federated` and produces output byte-identical to `push()`.
//
// Segment format (docs/durability.md has the full walkthrough):
//
//   [16-byte header: u32 magic "CJNL" | u16 format version | u16 reserved |
//    u64 segment sequence]
//   then records, each framed as
//   [u32 body length | u32 CRC-32 of body | body = u8 record type + payload]
//
// All integers little-endian, matching the wire codec; registration and
// execute records are stored as the exact wire frames the driver sent, so
// journal replay and live replay share one codec.
//
// Each segment is *self-contained*: it opens with the run Meta record, the
// cached registration frames, the checkpoint's engine-state records and a
// commit record — then the epoch's post-commit tail (executes, chunk-routed
// markers, delivered floors) appends until the next checkpoint rolls a new
// segment. Recovery scans segments newest-first and resumes from the newest
// one holding a valid commit; anything later is recomputed deterministically.
// A torn tail (partial final write) is truncated at the last whole record; a
// CRC-failed or version-skewed segment rolls back to the previous committed
// segment; if no segment commits, recovery throws a typed journal::Error —
// never a crash, never silent divergence.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "stream/schema.h"
#include "wire/messages.h"

namespace cosmos::journal {

// ---------------------------------------------------------------------------
// Errors.

enum class ErrorCode : std::uint8_t {
  kIo,            ///< open/read/write/fsync syscall failure
  kBadMagic,      ///< segment header magic mismatch (not a journal segment)
  kBadVersion,    ///< journal format or wire protocol version skew
  kBadHeader,     ///< segment shorter than its fixed header
  kCorruptRecord, ///< CRC/length/decode failure inside a record
  kNoCheckpoint,  ///< no segment holds a valid checkpoint commit
};

[[nodiscard]] const char* to_string(ErrorCode code) noexcept;

/// Every journal failure surfaces as this typed error: callers branch on
/// code() (tests assert the exact class of corruption detected) and log
/// what() (which embeds the offending path/offset).
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

// ---------------------------------------------------------------------------
// Format constants.

inline constexpr std::uint32_t kSegmentMagic = 0x4C4E4A43u;  // "CJNL"
inline constexpr std::uint16_t kFormatVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = 16;
/// Upper bound on one record body; recovery rejects larger length claims so
/// a corrupt prefix cannot trigger a giant allocation (mirrors the wire
/// codec's kMaxPayloadBytes discipline).
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

enum class RecordType : std::uint8_t {
  kMeta = 1,             ///< run-wide options snapshot; first record always
  kRegistration = 2,     ///< one registration wire frame, verbatim
  kEngineState = 3,      ///< one engine's checkpointed state + exec seq
  kCheckpointCommit = 4, ///< checkpoint cut is durable from here on
  kExecute = 5,          ///< one routed kExecute wire frame, verbatim
  kChunkRouted = 6,      ///< chunk fully routed: replay barrier + resume cut
  kDelivered = 7,        ///< per-stream delivered counts, written pre-callback
};

/// Durability policy. Process death (kill -9) never loses write()n data —
/// the page cache belongs to the kernel — so fsync only matters for machine
/// crashes. The default syncs at checkpoint commits: the only records whose
/// loss cannot be recomputed deterministically.
enum class Fsync : std::uint8_t {
  kNever,   ///< never fsync (process-death durability only)
  kCommit,  ///< fsync checkpoint commits + segment directory updates
  kChunk,   ///< kCommit + fsync each chunk-routed marker
  kEvery,   ///< fsync after every record (machine-crash paranoid)
};

// ---------------------------------------------------------------------------
// Record payloads.

/// Run-wide options snapshot, journaled first in every segment. resume
/// overrides its FederationOptions from this — a resumed run must re-cut
/// chunks and re-route batches exactly as the original did.
struct Meta {
  std::uint16_t protocol = wire::kProtocolVersion;  ///< wire version echo
  std::uint64_t batch_size = 0;
  stream::Timestamp tick_ms = 0;
  std::uint32_t worker_shards = 1;
  bool peer_links = false;
  std::vector<std::string> endpoints;  ///< endpoints[i] = worker i
};

/// End-of-chunk marker written after a chunk's executes are all journaled.
/// Recovery replays only executes *before* the last marker: a partial
/// chunk's executes are discarded and regenerated by re-ingesting events
/// from `events_through` — chunk cutting and routing are deterministic, so
/// the regenerated tail carries identical sequence numbers.
struct ChunkRouted {
  std::uint64_t chunk_index = 0;    ///< the chunk just routed
  std::uint64_t events_through = 0; ///< trace events consumed through it
  stream::Timestamp last_ts = 0;    ///< its last event timestamp (watermark)
};

/// One engine's state at the checkpoint cut (kMigrateOut keep-mode snapshot).
struct EngineState {
  NodeId engine;
  std::uint32_t worker = 0;   ///< hosting worker at the cut
  std::uint64_t exec_seq = 0; ///< next expected execute seq at the cut
  std::vector<wire::UnitStateMsg> units;
};

/// The checkpoint cut itself. Everything the resumed driver needs to restart
/// the ingest loop at the cut: the commit is written (and fsynced, policy
/// permitting) only after every engine-state record landed.
struct CheckpointCommit {
  std::uint64_t checkpoint_id = 0;
  std::uint64_t events_consumed = 0;  ///< trace events ingested at the cut
  std::uint64_t chunk_index = 0;      ///< next chunk index to dispatch
  stream::Timestamp watermark = 0;
  bool has_watermark = false;
  std::uint64_t engine_states = 0;    ///< engine-state records in this cut
};

/// Per-stream delivered-result counts for one drain batch, journaled
/// *before* the callbacks run: on resume the summed counts are the
/// suppression floor, so a result is never delivered twice. (A crash between
/// the journal write and the callback can under-deliver that one batch —
/// at-most-once on arbitrary crash, exact at chunk boundaries, which is the
/// cut the resume differential exercises. docs/durability.md spells it out.)
struct DeliveredCount {
  std::string stream;
  std::uint64_t count = 0;
};

// ---------------------------------------------------------------------------
// Writer.

/// Append-side of the journal; owned by the federated driver. Not
/// thread-safe — every call site is the driver thread (route, checkpoint and
/// drain all happen there).
class Writer {
 public:
  struct Options {
    Fsync fsync = Fsync::kCommit;
    /// Committed segments kept on disk (current + N-1 predecessors); older
    /// ones unlink at commit time. 2 = current plus one rollback target.
    std::size_t retain_segments = 2;
  };

  /// Fresh run: creates `dir` if needed, removes stale segments from a
  /// previous run in the same directory, opens segment 1 and journals meta.
  [[nodiscard]] static std::unique_ptr<Writer> create(const std::string& dir,
                                                      const Meta& meta,
                                                      const Options& opts);

  /// Resumed run: opens segment `segment_seq` (recover()'s next_segment, so
  /// it never collides with surviving files) and journals meta. The caller
  /// re-journals registrations as it re-broadcasts them; the resume
  /// checkpoint then commits into this same segment, making it
  /// self-contained like any other.
  [[nodiscard]] static std::unique_ptr<Writer> continue_at(
      const std::string& dir, std::uint64_t segment_seq, const Meta& meta,
      const Options& opts);

  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Journals one registration frame verbatim and caches it for replay into
  /// every future segment preamble.
  void registration(const wire::Frame& frame);

  /// Journals one routed execute verbatim (call before moving the batch).
  void execute(const wire::ExecuteMsg& m);

  void chunk_routed(const ChunkRouted& m);

  void delivered(const std::vector<DeliveredCount>& counts);

  /// Starts a checkpoint cut. After the initial commit this opens the next
  /// segment (header + meta + cached registrations) and directs the
  /// engine-state records there; before it (the initial checkpoint of a
  /// fresh or resumed run) the cut commits into the active segment.
  void begin_checkpoint();
  void engine_state(const EngineState& m);
  /// Seals the cut: writes the commit record, fsyncs (policy permitting),
  /// promotes the pending segment to active and prunes old segments.
  void commit_checkpoint(const CheckpointCommit& m);
  /// Abandons a cut begun with begin_checkpoint (a worker died mid-cut and
  /// the driver fell into recovery instead): unlinks the pending segment and
  /// keeps appending to the previous active one.
  void abort_checkpoint();

  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t fsyncs() const noexcept { return fsyncs_; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }
  [[nodiscard]] std::uint64_t segment_seq() const noexcept { return seq_; }

 private:
  Writer(std::string dir, Options opts);

  void open_segment(std::uint64_t seq, bool pending);
  void append(RecordType type, const std::uint8_t* payload, std::size_t size);
  void write_all(int fd, const std::uint8_t* data, std::size_t size,
                 const std::string& path);
  void sync_fd(int fd, const std::string& path);
  void sync_dir();
  void prune_segments();

  std::string dir_;
  Options opts_;
  Meta meta_;

  int fd_ = -1;
  std::string path_;
  std::uint64_t seq_ = 0;
  bool committed_ = false;  ///< active segment holds a commit record

  int pending_fd_ = -1;
  std::string pending_path_;
  std::uint64_t pending_seq_ = 0;

  int dir_fd_ = -1;
  std::vector<std::vector<std::uint8_t>> reg_frames_;  ///< encoded frames
  std::set<std::uint64_t> segments_;  ///< committed segment seqs on disk

  std::uint64_t bytes_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t records_ = 0;
};

// ---------------------------------------------------------------------------
// Recovery.

/// Everything resume_federated needs, reconstructed from the newest segment
/// holding a valid commit. `executes` contains only whole-chunk prefixes
/// (see ChunkRouted); the resume_* fields are the commit's cut advanced
/// through every chunk-routed marker in the tail.
struct RecoveredRun {
  Meta meta;
  std::vector<wire::Frame> registrations;  ///< in original broadcast order
  std::vector<EngineState> engines;
  CheckpointCommit checkpoint;
  std::vector<wire::ExecuteMsg> executes;  ///< post-commit, route order
  std::vector<DeliveredCount> delivered;   ///< summed post-commit floors

  std::uint64_t resume_events = 0;  ///< re-ingest the trace from here
  std::uint64_t resume_chunk = 0;   ///< next chunk index to dispatch
  stream::Timestamp watermark = 0;
  bool has_watermark = false;

  bool torn_tail = false;               ///< partial final record truncated
  std::uint64_t records_dropped = 0;    ///< partial-chunk executes + tail
  std::uint64_t segments_rolled_back = 0;  ///< newer segments skipped
  std::uint64_t next_segment = 1;       ///< pass to Writer::continue_at
};

/// Scans `dir` newest-segment-first and recovers the newest valid
/// checkpoint. Throws journal::Error when nothing is recoverable: kIo if the
/// directory is unreadable, kNoCheckpoint if it holds no segments or none
/// commits, else the newest segment's specific failure (kBadMagic,
/// kBadVersion, kBadHeader, kCorruptRecord).
[[nodiscard]] RecoveredRun recover(const std::string& dir);

}  // namespace cosmos::journal
