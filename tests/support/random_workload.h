// Shared randomized-workload builder for the differential harnesses: the
// in-process one (tests/integration/differential_test.cpp) and the
// multi-process federation one (tests/federation/) replay the *same*
// seeded workloads, so a federation divergence is attributable to the wire
// path alone. Header-only: the test build compiles only *_test.cpp files.
//
// A workload is a Zipf-skewed, rate-perturbed station trace (via
// sim::make_skewed_trace) over a random wide-area mesh, plus a random mix
// of single-stream filters and two-stream windowed joins submitted through
// the CQL parser.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cosmos/cosmos.h"
#include "cql/parser.h"
#include "net/topology.h"
#include "sim/workload.h"

namespace cosmos::middleware::testsupport {

/// One printable line per delivered tuple, in delivery order — the
/// byte-comparable per-query result sequence.
using ResultLog = std::map<QueryId, std::vector<std::string>>;

struct RandomWorkload {
  std::vector<NodeId> nodes;
  net::LatencyMatrix lat;
  std::vector<runtime::TraceEvent> events;
  std::size_t stations = 0;
  /// (CQL text, host, proxy) triples, submitted in order with sequential
  /// query ids.
  std::vector<std::tuple<std::string, NodeId, NodeId>> queries;
};

inline std::string window_clause(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0:
      return "[Now]";
    case 1:
      return "[Range " + std::to_string(1 + rng.next_below(15)) + " Minutes]";
    case 2:
      return "[Range " + std::to_string(20 + rng.next_below(40)) +
             " Minutes]";
    default:
      return "[Range 1 Hours]";
  }
}

inline std::string station(std::size_t idx) {
  return sim::station_stream_name(idx);
}

/// A random single-stream or two-stream windowed query over the station
/// streams; always parses and validates.
inline std::string random_query_text(Rng& rng, std::size_t stations) {
  const std::size_t a = rng.next_below(stations);
  if (rng.next_below(3) == 0) {
    // Single-stream selection with a constant filter.
    const char* field = rng.next_below(2) == 0 ? "snowHeight" : "temperature";
    const char* op = rng.next_below(2) == 0 ? ">" : "<=";
    const double threshold = rng.next_below(2) == 0 ? 20.0 : -4.5;
    const std::string select =
        rng.next_below(2) == 0 ? "*" : "S1.snowHeight, S1.timestamp";
    return "SELECT " + select + " FROM " + station(a) + " " +
           window_clause(rng) + " S1 WHERE S1." + field + " " + op + " " +
           std::to_string(threshold);
  }
  // Two-stream windowed join with a field-field predicate and sometimes a
  // residual constant conjunct.
  std::size_t b = rng.next_below(stations);
  while (b == a) b = rng.next_below(stations);
  std::string text = "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, "
                     "S2.timestamp FROM " +
                     station(a) + " " + window_clause(rng) + " S1, " +
                     station(b) + " [Now] S2 WHERE S1.snowHeight " +
                     (rng.next_below(2) == 0 ? ">" : ">=") + " S2.snowHeight";
  if (rng.next_below(2) == 0) text += " AND S1.temperature < 2.5";
  return text;
}

inline RandomWorkload make_workload(std::uint64_t seed) {
  RandomWorkload w;
  Rng rng{seed * 7919 + 13};

  const std::size_t node_count = 8 + rng.next_below(5);  // 8..12 brokers
  const auto topo = net::make_wide_area_mesh(node_count, 3, rng);
  for (std::size_t i = 0; i < node_count; ++i) {
    w.nodes.push_back(NodeId{static_cast<NodeId::value_type>(i)});
  }
  w.lat = net::LatencyMatrix{topo, w.nodes};

  sim::SkewedTraceParams tp;
  tp.stations = 4 + rng.next_below(4);  // 4..7 streams
  tp.total_tuples = 220 + rng.next_below(120);
  tp.duration_ms = 2 * 3'600'000;
  tp.zipf_theta = 0.4 + 0.1 * static_cast<double>(rng.next_below(7));
  tp.perturb_pattern = (seed % 3 == 0) ? "" : (seed % 3 == 1 ? "I" : "ID");
  tp.perturb_stations = 1 + rng.next_below(2);
  w.stations = tp.stations;
  for (const auto& r : sim::make_skewed_trace(tp, rng)) {
    w.events.push_back({station(r.station), r.tuple});
  }

  const std::size_t query_count = 3 + rng.next_below(4);  // 3..6 queries
  for (std::size_t q = 0; q < query_count; ++q) {
    // Hosts and proxies drawn from the non-source nodes (2..n-1).
    const NodeId host{static_cast<NodeId::value_type>(
        2 + rng.next_below(node_count - 2))};
    const NodeId proxy{static_cast<NodeId::value_type>(
        2 + rng.next_below(node_count - 2))};
    w.queries.emplace_back(random_query_text(rng, w.stations), host, proxy);
  }
  return w;
}

inline std::unique_ptr<Cosmos> build_system(const RandomWorkload& w,
                                            ResultLog& log) {
  auto sys = std::make_unique<Cosmos>(w.nodes, w.lat);
  // Station streams spread over the first two nodes (the sources).
  for (std::size_t st = 0; st < w.stations; ++st) {
    sys->register_source(station(st), sim::sensor_schema(),
                         w.nodes[st % 2]);
  }
  std::size_t qid = 0;
  for (const auto& [text, host, proxy] : w.queries) {
    const QueryId id{static_cast<QueryId::value_type>(qid++)};
    sys->submit(cql::parse_query(text, id, proxy), host,
                [&log](QueryId q, const stream::Tuple& t) {
                  std::string line = std::to_string(t.ts);
                  for (const auto& v : t.values) line += "|" + v.to_string();
                  log[q].push_back(std::move(line));
                });
  }
  return sys;
}

}  // namespace cosmos::middleware::testsupport
