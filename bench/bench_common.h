// Shared scaffolding for the experiment benches: the paper's simulation
// setup (Section 4.1) and result-table printing helpers.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "coord/coordinator_tree.h"
#include "coord/hierarchy.h"
#include "net/deployment.h"
#include "net/topology.h"
#include "sim/baselines.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "sim/workload.h"

namespace cosmos::bench {

/// Elapsed-seconds stopwatch over the shared Clock (common/clock.h).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void reset() noexcept { start_ = Clock::now(); }
  [[nodiscard]] double seconds() const noexcept {
    return seconds_since(start_);
  }

 private:
  TimePoint start_;
};

/// The paper's simulated system (Section 4.1), scaled by `scale` in (0,1]
/// so quick runs stay quick: 4096-node transit-stub topology, 100 sources,
/// 256 processors, 20,000 substreams, g=20 groups, zipf theta=0.8.
struct SimSetup {
  net::Topology topo;
  net::Deployment deployment;
  std::unique_ptr<coord::CoordinatorTree> tree;
  std::unique_ptr<sim::WorkloadGenerator> workload;
  std::unique_ptr<sim::CostModel> cost;

  SimSetup(double scale, std::size_t cluster_k, std::uint64_t seed) {
    Rng rng{seed};
    net::TransitStubParams tp;  // 4096 nodes at scale 1
    tp.stub_nodes_per_domain =
        std::max<std::size_t>(4, static_cast<std::size_t>(85 * scale));
    topo = net::make_transit_stub(tp, rng);
    net::DeploymentParams dp;
    dp.num_sources = std::max<std::size_t>(8, static_cast<std::size_t>(100 * scale));
    dp.num_processors =
        std::max<std::size_t>(8, static_cast<std::size_t>(256 * scale));
    deployment = net::make_deployment(topo, dp, rng);
    tree = std::make_unique<coord::CoordinatorTree>(deployment, cluster_k, rng);
    sim::WorkloadParams wp;
    wp.num_substreams =
        std::max<std::size_t>(200, static_cast<std::size_t>(20'000 * scale));
    wp.groups = 20;
    wp.interest_min = std::max<std::size_t>(10, static_cast<std::size_t>(100 * scale));
    wp.interest_max = std::max<std::size_t>(20, static_cast<std::size_t>(200 * scale));
    workload = std::make_unique<sim::WorkloadGenerator>(deployment, wp, seed + 1);
    cost = std::make_unique<sim::CostModel>(topo, deployment);
  }

  [[nodiscard]] coord::HierarchicalDistributor make_distributor(
      std::uint64_t seed) const {
    return coord::HierarchicalDistributor{deployment, *tree,
                                          workload->space(),
                                          coord::HierarchyParams{}, seed};
  }

  [[nodiscard]] double pairwise_total(
      const std::unordered_map<QueryId, NodeId>& placement,
      const std::unordered_map<QueryId, query::InterestProfile>& profiles)
      const {
    return cost->pairwise_cost(placement, profiles, workload->space()).total();
  }
  [[nodiscard]] double multicast_total(
      const std::unordered_map<QueryId, NodeId>& placement,
      const std::unordered_map<QueryId, query::InterestProfile>& profiles)
      const {
    return cost->communication_cost(placement, profiles, workload->space())
        .total();
  }
};

inline std::unordered_map<QueryId, query::InterestProfile> to_map(
    const std::vector<query::InterestProfile>& profiles) {
  std::unordered_map<QueryId, query::InterestProfile> out;
  out.reserve(profiles.size());
  for (const auto& p : profiles) out.emplace(p.query, p);
  return out;
}

/// Machine-readable bench results: writes BENCH_<name>.json (flat
/// {"metric": value}) in the working directory, so the perf trajectory is
/// tracked across PRs and CI can gate on regressions
/// (scripts/check_bench.py compares against bench/baselines/).
inline void write_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& metrics) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "# could not write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.10g%s\n", metrics[i].first.c_str(),
                 metrics[i].second, i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

/// Reads scale/seed from env (COSMOS_BENCH_SCALE, COSMOS_BENCH_SEED) so the
/// full paper-scale run is one env var away.
inline double env_scale(double fallback) {
  if (const char* s = std::getenv("COSMOS_BENCH_SCALE")) return std::atof(s);
  return fallback;
}
inline std::uint64_t env_seed(std::uint64_t fallback) {
  if (const char* s = std::getenv("COSMOS_BENCH_SEED")) {
    return std::strtoull(s, nullptr, 10);
  }
  return fallback;
}

}  // namespace cosmos::bench
