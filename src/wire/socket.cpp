#include "wire/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace cosmos::wire {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error{what + ": " + std::strerror(errno)};
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error{"wire: unix socket path too long: " + path};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string h = host.empty() ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, h.c_str(), &addr.sin_addr) != 1) {
    throw Error{"wire: cannot parse IPv4 host: " + h};
  }
  return addr;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& address) {
  Endpoint e;
  if (address.starts_with("unix:")) {
    e.kind = Kind::kUnix;
    e.path = address.substr(5);
    if (e.path.empty()) throw Error{"wire: empty unix socket path"};
    return e;
  }
  std::string rest = address;
  if (rest.starts_with("tcp:")) rest = rest.substr(4);
  const auto colon = rest.rfind(':');
  if (colon == std::string::npos) {
    throw Error{"wire: expected tcp:host:port or unix:/path, got: " + address};
  }
  e.kind = Kind::kTcp;
  e.host = rest.substr(0, colon);
  const std::string port = rest.substr(colon + 1);
  char* end = nullptr;
  const long p = std::strtol(port.c_str(), &end, 10);
  if (port.empty() || *end != '\0' || p < 0 || p > 65535) {
    throw Error{"wire: bad tcp port in: " + address};
  }
  e.port = static_cast<std::uint16_t>(p);
  return e;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + (host.empty() ? "127.0.0.1" : host) + ":" +
         std::to_string(port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::send_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("wire: send failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_all(std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("wire: recv failed");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between frames
      throw Error{"wire: peer closed mid-frame (" + std::to_string(got) +
                  " of " + std::to_string(size) + " bytes)"};
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void send_frame(Socket& s, const Frame& frame) {
  const auto buf = encode_frame(frame);
  s.send_all(buf.data(), buf.size());
}

std::optional<Frame> recv_frame(Socket& s) {
  std::uint8_t header[kFrameHeaderBytes];
  if (!s.recv_all(header, sizeof(header))) return std::nullopt;
  Frame frame;
  const std::uint32_t len = decode_frame_header(header, frame.type);
  frame.payload.resize(len);
  if (len > 0 && !s.recv_all(frame.payload.data(), len)) {
    throw Error{"wire: peer closed between frame header and payload"};
  }
  return frame;
}

Listener::Listener(const Endpoint& at) : at_(at) {
  if (at_.kind == Endpoint::Kind::kUnix) {
    // A SIGKILLed worker never unlinks its bound path, and bind() on an
    // existing socket file fails with EADDRINUSE — so a respawned worker
    // must clear the stale file first. Only ever remove a *socket*: a
    // regular file at the path is a caller mistake we refuse to clobber.
    struct stat st{};
    if (::lstat(at_.path.c_str(), &st) == 0) {
      if (!S_ISSOCK(st.st_mode)) {
        throw Error{"wire: refusing to unlink non-socket at " + at_.path};
      }
      ::unlink(at_.path.c_str());
    }
    sock_ = Socket{::socket(AF_UNIX, SOCK_STREAM, 0)};
    if (!sock_.valid()) throw_errno("wire: socket(AF_UNIX)");
    const auto addr = make_unix_addr(at_.path);
    if (::bind(sock_.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("wire: bind " + at_.to_string());
    }
    unlink_on_close_ = true;
  } else {
    sock_ = Socket{::socket(AF_INET, SOCK_STREAM, 0)};
    if (!sock_.valid()) throw_errno("wire: socket(AF_INET)");
    const int one = 1;
    ::setsockopt(sock_.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    auto addr = make_tcp_addr(at_.host, at_.port);
    if (::bind(sock_.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("wire: bind " + at_.to_string());
    }
    if (at_.port == 0) {
      socklen_t len = sizeof(addr);
      if (::getsockname(sock_.fd(), reinterpret_cast<sockaddr*>(&addr),
                        &len) != 0) {
        throw_errno("wire: getsockname");
      }
      at_.port = ntohs(addr.sin_port);
    }
  }
  if (::listen(sock_.fd(), 16) != 0) {
    throw_errno("wire: listen " + at_.to_string());
  }
}

Listener::~Listener() {
  close();
  sock_.close();
}

Socket Listener::accept() {
  while (true) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      if (at_.kind == Endpoint::Kind::kTcp) {
        // Frames are latency-sensitive RPCs; never wait for Nagle.
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      return Socket{fd};
    }
    if (errno == EINTR) continue;
    throw_errno("wire: accept on " + at_.to_string());
  }
}

void Listener::close() noexcept {
  // Shutdown-only: an accept thread may be blocked on this fd, and closing
  // it here would race that thread's read of the descriptor (and could hand
  // a recycled fd number to the accepter). shutdown() wakes the accepter
  // with EINVAL; the fd itself is released in the destructor, which runs
  // only after every accepter has been joined.
  sock_.shutdown_both();
  if (unlink_on_close_) {
    ::unlink(at_.path.c_str());
    unlink_on_close_ = false;
  }
}

Socket connect_to(const Endpoint& to, int timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(timeout_ms);
  int attempts = 0;
  while (true) {
    ++attempts;
    Socket s;
    int rc = -1;
    if (to.kind == Endpoint::Kind::kUnix) {
      s = Socket{::socket(AF_UNIX, SOCK_STREAM, 0)};
      if (!s.valid()) throw_errno("wire: socket(AF_UNIX)");
      const auto addr = make_unix_addr(to.path);
      rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } else {
      s = Socket{::socket(AF_INET, SOCK_STREAM, 0)};
      if (!s.valid()) throw_errno("wire: socket(AF_INET)");
      const auto addr = make_tcp_addr(to.host, to.port);
      rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
      if (rc == 0) {
        const int one = 1;
        ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
    }
    if (rc == 0) return s;
    // The daemon may not have bound its listener yet: retry the races
    // (refused / missing socket file) until the deadline.
    const int last_errno = errno;
    const bool retryable = last_errno == ECONNREFUSED ||
                           last_errno == ENOENT || last_errno == EAGAIN;
    if (!retryable || std::chrono::steady_clock::now() >= deadline) {
      // Name the endpoint, the retry budget actually spent, and the last
      // errno — "refused after exhausting the 10 s budget" and "no route,
      // gave up immediately" must be tellable apart from the message.
      const auto elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      throw Error{"wire: connect to " + to.to_string() + " failed after " +
                  std::to_string(attempts) + " attempt(s) over " +
                  std::to_string(elapsed_ms) + " ms (budget " +
                  std::to_string(timeout_ms) + " ms): " +
                  std::strerror(last_errno) +
                  (retryable ? " [retry budget exhausted]"
                             : " [not retryable]")};
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace cosmos::wire
