#include "wire/channel.h"

#include "obs/trace.h"

namespace cosmos::wire {

FrameChannel::FrameChannel(Socket socket, Options options)
    : options_(options),
      send_delay_ms_(options.send_delay_ms),
      socket_(std::move(socket)),
      send_queue_(options.send_queue_capacity) {
  if (!socket_.valid()) {
    throw Error{"wire: FrameChannel needs a connected socket"};
  }
  sender_ = std::thread([this] { sender_loop(); });
}

FrameChannel::~FrameChannel() { close(); }

void FrameChannel::sender_loop() {
  struct DoneSignal {
    FrameChannel* ch;
    ~DoneSignal() {
      std::lock_guard lock{ch->sender_done_mu_};
      ch->sender_done_ = true;
      ch->sender_done_cv_.notify_all();
    }
  } done_signal{this};
  while (true) {
    auto item = send_queue_.pop();
    if (!item) return;  // queue closed and drained
    try {
      if (item->delay_ms > 0) {
        // Departure at enqueue + delay: frames already "in flight" while
        // this one waits, so the emulated latency pipelines instead of
        // accumulating per frame.
        std::this_thread::sleep_until(
            item->enqueued + std::chrono::milliseconds(item->delay_ms));
      }
      const auto buf = encode_frame(item->frame);
      {
        // to_string returns a static literal, as the tracer requires.
        const obs::Span span{to_string(item->frame.type), "wire_send",
                             buf.size()};
        socket_.send_all(buf.data(), buf.size());
      }
      bytes_sent_.fetch_add(buf.size(), std::memory_order_relaxed);
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      {
        std::lock_guard lock{error_mu_};
        if (send_error_.empty()) send_error_ = e.what();
      }
      send_queue_.close();
      return;
    }
  }
}

void FrameChannel::send(Frame frame) {
  Outgoing out{std::move(frame), std::chrono::steady_clock::now(),
               send_delay_ms_.load(std::memory_order_relaxed)};
  if (!send_queue_.push(std::move(out))) {
    const std::string err = send_error();
    throw Error{err.empty() ? "wire: send on closed channel"
                            : "wire: send failed: " + err};
  }
}

std::optional<Frame> FrameChannel::recv() {
  auto frame = recv_frame(socket_);
  if (frame) {
    bytes_received_.fetch_add(kFrameHeaderBytes + frame->payload.size(),
                              std::memory_order_relaxed);
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    obs::Tracer::instance().instant(to_string(frame->type), "wire_recv",
                                    frame->payload.size());
  }
  return frame;
}

void FrameChannel::start_reader(FrameHandler on_frame, CloseHandler on_close) {
  reader_ = std::thread([this, on_frame = std::move(on_frame),
                         on_close = std::move(on_close)] {
    std::string error;
    try {
      while (auto frame = recv()) on_frame(std::move(*frame));
    } catch (const std::exception& e) {
      error = e.what();
    }
    if (on_close) on_close(error);
  });
}

void FrameChannel::close() {
  if (closed_.exchange(true)) return;
  // Let queued frames flush: close() makes pop() drain-then-stop. The
  // drain is bounded — a sender wedged in send_all() against a dead or
  // stalled peer would otherwise block close() forever; past the deadline
  // the socket shutdown below errors the blocked send and the sender exits
  // on its error path (remaining frames are dropped, which is the best a
  // dead peer allows).
  send_queue_.close();
  if (options_.close_drain_ms > 0) {
    std::unique_lock lock{sender_done_mu_};
    sender_done_cv_.wait_for(lock,
                             std::chrono::milliseconds(options_.close_drain_ms),
                             [&] { return sender_done_; });
    if (!sender_done_) {
      std::lock_guard elock{error_mu_};
      if (send_error_.empty()) {
        send_error_ = "close drain deadline exceeded; tail frames dropped";
      }
    }
  } else if (sender_.joinable()) {
    sender_.join();  // unbounded drain: wait for the queue to empty
  }
  // Unblock a wedged sender and the recv()/reader thread, then reclaim
  // both. On the drained path the queue is already empty, so the shutdown
  // races no pending write.
  socket_.shutdown_both();
  if (sender_.joinable()) sender_.join();
  if (reader_.joinable()) reader_.join();
  socket_.close();
}

std::string FrameChannel::send_error() const {
  std::lock_guard lock{error_mu_};
  return send_error_;
}

}  // namespace cosmos::wire
