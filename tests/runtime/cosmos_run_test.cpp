// End-to-end tests of the runtime-backed Cosmos::run() mode: results must
// be identical to the synchronous push() mode, at any shard count and
// batch size, and traffic accounting must match.
#include <gtest/gtest.h>

#include <memory>

#include "cosmos/cosmos.h"
#include "cql/parser.h"
#include "net/topology.h"
#include "sim/sensor_trace.h"

namespace cosmos::middleware {
namespace {

struct Fixture {
  net::Topology topo{6};
  std::vector<NodeId> all{NodeId{0}, NodeId{1}, NodeId{2},
                          NodeId{3}, NodeId{4}, NodeId{5}};
  net::LatencyMatrix lat;

  Fixture() {
    topo.add_edge(NodeId{0}, NodeId{1}, 10.0);
    topo.add_edge(NodeId{1}, NodeId{2}, 100.0);
    topo.add_edge(NodeId{2}, NodeId{3}, 5.0);
    topo.add_edge(NodeId{2}, NodeId{4}, 5.0);
    topo.add_edge(NodeId{1}, NodeId{5}, 20.0);
    lat = net::LatencyMatrix{topo, all};
  }

  /// Per-query result log: one printable line per delivered tuple, in
  /// delivery order (the per-query result *sequence*, not just a count).
  using ResultLog = std::map<QueryId, std::vector<std::string>>;

  std::unique_ptr<Cosmos> make(ResultLog& log) {
    auto sys = std::make_unique<Cosmos>(all, lat);
    for (std::size_t st = 0; st < 3; ++st) {
      sys->register_source(sim::station_stream_name(st), sim::sensor_schema(),
                          NodeId{st % 2});
    }
    std::size_t qid = 0;
    const auto submit = [&](const std::string& text, NodeId host,
                            NodeId proxy) {
      const QueryId id{static_cast<QueryId::value_type>(qid++)};
      sys->submit(cql::parse_query(text, id, proxy),
                 host, [&log](QueryId q, const stream::Tuple& t) {
                   std::string line = std::to_string(t.ts);
                   for (const auto& v : t.values) {
                     line += "|" + v.to_string();
                   }
                   log[q].push_back(std::move(line));
                 });
    };
    submit(
        "SELECT S1.snowHeight, S2.snowHeight FROM Station1 [Range 30 Minutes] "
        "S1, Station2 [Now] S2 WHERE S1.snowHeight > S2.snowHeight",
        NodeId{2}, NodeId{3});
    submit(
        "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp FROM "
        "Station1 [Range 1 Hour] S1, Station2 [Now] S2 WHERE S1.snowHeight > "
        "S2.snowHeight",
        NodeId{2}, NodeId{4});
    submit(
        "SELECT S2.snowHeight, S3.temperature FROM Station2 [Range 10 Minutes] "
        "S2, Station3 [Range 5 Minutes] S3 WHERE S2.snowHeight >= "
        "S3.snowHeight AND S2.temperature < 0",
        NodeId{4}, NodeId{5});
    return sys;
  }

  static std::vector<runtime::TraceEvent> trace(std::size_t readings) {
    sim::SensorTraceParams p;
    p.stations = 3;
    p.readings_per_station = readings;
    Rng rng{77};
    std::vector<runtime::TraceEvent> events;
    for (const auto& r : sim::make_sensor_trace(p, rng)) {
      events.push_back({sim::station_stream_name(r.station), r.tuple});
    }
    return events;
  }
};

TEST(CosmosRun, MatchesPushModeExactly) {
  Fixture f;
  const auto events = Fixture::trace(80);

  Fixture::ResultLog push_log;
  auto push_sys = f.make(push_log);
  for (const auto& ev : events) push_sys->push(ev.stream, ev.tuple);

  Fixture::ResultLog run_log;
  auto run_sys = f.make(run_log);
  Cosmos::RunOptions opts;
  opts.shards = 1;
  const auto report = run_sys->run(events, opts);

  EXPECT_EQ(report.tuples, events.size());
  EXPECT_GT(report.results_delivered, 0u);
  ASSERT_FALSE(push_log.empty());
  EXPECT_EQ(run_log, push_log);  // identical per-query result sequences
  // Traffic: same messages; bytes identical up to summation order.
  EXPECT_EQ(run_sys->traffic().messages_sent, push_sys->traffic().messages_sent);
  EXPECT_NEAR(run_sys->traffic().bytes, push_sys->traffic().bytes,
              1e-6 * push_sys->traffic().bytes);
}

TEST(CosmosRun, ResultSequencesInvariantAcrossShardCounts) {
  Fixture f;
  const auto events = Fixture::trace(60);
  Fixture::ResultLog logs[3];
  const std::size_t shard_counts[] = {1, 3, 8};
  for (int i = 0; i < 3; ++i) {
    auto sys = f.make(logs[i]);
    Cosmos::RunOptions opts;
    opts.shards = shard_counts[i];
    opts.queue_capacity = 2;  // exercise backpressure
    opts.batch_size = 16;
    const auto report = sys->run(events, opts);
    EXPECT_EQ(report.stats.shards.size(), shard_counts[i]);
    // Every ingested tuple fans out to at least one engine in this
    // workload, so shard-executed tuples can't undercount the trace.
    EXPECT_GE(report.stats.total_tuples(), report.tuples);
  }
  ASSERT_FALSE(logs[0].empty());
  EXPECT_EQ(logs[1], logs[0]);
  EXPECT_EQ(logs[2], logs[0]);
}

TEST(CosmosRun, BatchSizeAndTickDoNotChangeResults) {
  Fixture f;
  const auto events = Fixture::trace(50);
  Fixture::ResultLog base;
  {
    auto sys = f.make(base);
    Cosmos::RunOptions opts;
    opts.shards = 2;
    opts.batch_size = 1;  // degenerate: one tuple per chunk
    sys->run(events, opts);
  }
  for (const auto [batch, tick] :
       {std::pair<std::size_t, stream::Timestamp>{7, 0},
        {256, 60'000},
        {10'000, 3'600'000}}) {
    Fixture::ResultLog log;
    auto sys = f.make(log);
    Cosmos::RunOptions opts;
    opts.shards = 2;
    opts.batch_size = batch;
    opts.tick_ms = tick;
    sys->run(events, opts);
    EXPECT_EQ(log, base) << "batch=" << batch << " tick=" << tick;
  }
  ASSERT_FALSE(base.empty());
}

TEST(CosmosRun, ReportsShardActivity) {
  Fixture f;
  const auto events = Fixture::trace(40);
  Fixture::ResultLog log;
  auto sys = f.make(log);
  Cosmos::RunOptions opts;
  opts.shards = 2;
  const auto report = sys->run(events, opts);
  EXPECT_GT(report.chunks, 0u);
  EXPECT_GT(report.stats.total_tuples(), 0u);
  EXPECT_GT(report.stats.total_batches(), 0u);
  EXPECT_GE(report.ingest_seconds, 0.0);
  // Every dispatched tuple was executed by some shard.
  std::uint64_t sum = 0;
  for (const auto& s : report.stats.shards) sum += s.tuples;
  EXPECT_EQ(sum, report.stats.total_tuples());
}

TEST(CosmosRun, RejectsOutOfOrderTraces) {
  Fixture f;
  Fixture::ResultLog log;
  auto sys = f.make(log);
  std::vector<runtime::TraceEvent> bad;
  bad.push_back({"Station1", stream::Tuple{100, {1.0, -2.0, 0, 100}}});
  bad.push_back({"Station2", stream::Tuple{50, {1.0, -2.0, 1, 50}}});
  EXPECT_THROW(sys->run(bad), std::invalid_argument);
}

TEST(CosmosRun, SystemStaysUsableAfterRunThrows) {
  // A throw mid-run() must unwind cleanly (workers joined, run-mode state
  // cleared): the same instance keeps working in push() mode afterwards.
  Fixture f;
  Fixture::ResultLog log;
  auto sys = f.make(log);
  std::vector<runtime::TraceEvent> bad;
  bad.push_back({"Station1", stream::Tuple{100, {1.0, -2.0, 0, 100}}});
  bad.push_back({"Station1", stream::Tuple{50, {1.0, -2.0, 0, 50}}});
  EXPECT_THROW(sys->run(bad), std::invalid_argument);
  const auto events = Fixture::trace(40);
  for (const auto& ev : events) sys->push(ev.stream, ev.tuple);
  ASSERT_FALSE(log.empty());  // results delivered inline, not into a
                              // dangling run-mode buffer
  Fixture::ResultLog log2;
  auto sys2 = f.make(log2);
  sys2->run(events);  // and a fresh run() still works
  EXPECT_EQ(log2, log);
}

}  // namespace
}  // namespace cosmos::middleware
