#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "runtime/driver.h"
#include "stream/engine.h"

namespace cosmos::runtime {
namespace {

using stream::Engine;
using stream::Schema;
using stream::Tuple;
using stream::Value;
using stream::ValueType;

Schema one_field() { return Schema{{{"v", ValueType::kInt}}}; }

/// Runs the same interleaved workload over `shards` shards and returns the
/// per-engine sequence of observed (ts, value) pairs.
std::vector<std::vector<std::pair<stream::Timestamp, std::int64_t>>>
run_workload(std::size_t shards, std::size_t engines_n,
             std::size_t queue_capacity) {
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<std::vector<std::pair<stream::Timestamp, std::int64_t>>> seen(
      engines_n);
  for (std::size_t e = 0; e < engines_n; ++e) {
    engines.push_back(std::make_unique<Engine>());
    engines[e]->register_stream("S", one_field());
    engines[e]->attach("S", [&seen, e](const Tuple& t) {
      seen[e].emplace_back(t.ts, t.values.at(0).as_int());
    });
  }
  Runtime rt{{shards, queue_capacity}};
  rt.start();
  // 300 batches round-robin over the engines, each engine pinned to the
  // shard (engine index % shards).
  std::int64_t seq = 0;
  for (std::size_t b = 0; b < 300; ++b) {
    const std::size_t e = b % engines_n;
    TupleBatch batch{"S"};
    for (int i = 0; i < 4; ++i) {
      batch.push_back(Tuple{seq, {Value{seq}}});
      ++seq;
    }
    rt.dispatch(e % rt.shards(), Runtime::Task{engines[e].get(), {batch}});
  }
  rt.drain();
  const auto stats = rt.stats();
  EXPECT_EQ(stats.total_tuples(), 1200u);
  EXPECT_EQ(stats.total_batches(), 300u);
  rt.stop();
  return seen;
}

TEST(Runtime, PerShardOrderingPreservedAcrossShardCounts) {
  // The per-engine observation sequence must be identical whether the work
  // runs on one worker or eight — engines are pinned, queues are FIFO.
  const auto base = run_workload(1, 6, 16);
  std::size_t total = 0;
  for (const auto& s : base) total += s.size();
  EXPECT_EQ(total, 1200u);
  for (const auto& s : base) {
    for (std::size_t i = 1; i < s.size(); ++i) {
      EXPECT_LT(s[i - 1].first, s[i].first);  // strictly increasing here
    }
  }
  EXPECT_EQ(run_workload(8, 6, 16), base);
  // Tiny queues force the backpressure path; results must not change.
  EXPECT_EQ(run_workload(8, 6, 1), base);
}

TEST(Runtime, StatsAttributeWorkToTheOwningShard) {
  Engine engine;
  engine.register_stream("S", one_field());
  Runtime rt{{4, 8}};
  rt.start();
  TupleBatch batch{"S"};
  batch.push_back(Tuple{1, {Value{7}}});
  rt.dispatch(2, Runtime::Task{&engine, {batch}});
  rt.drain();
  const auto stats = rt.stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_EQ(stats.shards[2].tuples, 1u);
  EXPECT_EQ(stats.shards[2].tasks, 1u);
  EXPECT_EQ(stats.shards[0].tuples, 0u);
  EXPECT_EQ(engine.published_count("S"), 1u);
}

TEST(Runtime, StopExecutesQueuedTasksBeforeJoining) {
  Engine engine;
  engine.register_stream("S", one_field());
  Runtime rt{{1, 64}};
  rt.start();
  for (std::int64_t i = 0; i < 50; ++i) {
    TupleBatch batch{"S"};
    batch.push_back(Tuple{i, {Value{i}}});
    rt.dispatch(0, Runtime::Task{&engine, {batch}});
  }
  rt.stop();  // close + join must drain the queue first
  EXPECT_EQ(engine.published_count("S"), 50u);
}

TEST(Runtime, MatchTasksRunAndAccountSeparately) {
  // A match task executes its hook on the owning shard's worker and is
  // accounted to the shard's (and id's) match counters — the shard-side
  // stage of the broker matching pipeline.
  Runtime rt{{2, 8}};
  rt.start();
  std::atomic<int> matched{0};
  for (int i = 0; i < 3; ++i) {
    Runtime::Task task;
    task.engine_id = 42;
    task.match = [&matched] { matched.fetch_add(1); };
    rt.dispatch(1, std::move(task));
  }
  rt.drain();
  rt.stop();
  EXPECT_EQ(matched.load(), 3);
  const auto stats = rt.stats();
  EXPECT_EQ(stats.shards[1].match_tasks, 3u);
  EXPECT_EQ(stats.shards[1].tasks, 3u);
  EXPECT_EQ(stats.shards[0].match_tasks, 0u);
  EXPECT_EQ(stats.shards[1].tuples, 0u);  // matching executes no engine work
  const auto* row = stats.engine(42);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->batches, 0u);
  EXPECT_GE(row->busy_ns, row->match_ns);
}

TEST(Runtime, MatchTaskFailureIsCapturedNotFatal) {
  Runtime rt{{1, 4}};
  rt.start();
  Runtime::Task task;
  task.engine_id = 7;
  task.match = [] { throw std::runtime_error{"match exploded"}; };
  rt.dispatch(0, std::move(task));
  rt.drain();  // must not hang on the failed match task
  rt.stop();
  const auto error = rt.first_error();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("match exploded"), std::string::npos);
}

TEST(Runtime, SlicesReplaySelectedRowsInOrder) {
  // An engine task carrying pre-matched slices of a shared run replays
  // exactly the selected rows, in row order; an all-rows slice replays the
  // shared run without copying.
  Engine engine;
  engine.register_stream("S", one_field());
  std::vector<std::int64_t> seen;
  engine.attach("S", [&seen](const Tuple& t) {
    seen.push_back(t.values.at(0).as_int());
  });
  auto run = std::make_shared<TupleBatch>("S");
  for (std::int64_t i = 0; i < 6; ++i) run->push_back(Tuple{i, {Value{i}}});

  Runtime rt{{1, 4}};
  rt.start();
  Runtime::Task task;
  task.engine = &engine;
  task.engine_id = 1;
  task.slices.push_back({run, {0, 2, 5}});  // partial selection
  rt.dispatch(0, std::move(task));
  rt.drain();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{0, 2, 5}));

  seen.clear();
  Runtime::Task all;
  all.engine = &engine;
  all.engine_id = 1;
  all.slices.push_back({run, {}});  // empty rows = every row
  // Timestamps restart at 0; use a fresh engine stream state via a new
  // engine to keep the per-stream ordering rule satisfied.
  Engine engine2;
  engine2.register_stream("S", one_field());
  engine2.attach("S", [&seen](const Tuple& t) {
    seen.push_back(t.values.at(0).as_int());
  });
  all.engine = &engine2;
  rt.dispatch(0, std::move(all));
  rt.drain();
  rt.stop();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5}));
  const auto stats = rt.stats();
  EXPECT_EQ(stats.shards[0].tuples, 9u);
  EXPECT_EQ(stats.shards[0].match_tasks, 0u);
}

TEST(Runtime, AtLeastOneShard) {
  Runtime rt{{0, 0}};
  EXPECT_EQ(rt.shards(), 1u);
}

TEST(Runtime, WorkerErrorIsCapturedNotFatal) {
  // An engine-side throw on a worker thread must not std::terminate the
  // process; the shard records it and keeps draining.
  Engine engine;
  engine.register_stream("S", one_field());
  engine.publish("S", Tuple{100, {Value{0}}});
  Runtime rt{{2, 8}};
  rt.start();
  TupleBatch stale{"S"};
  stale.push_back(Tuple{50, {Value{1}}});  // out of order: throws in-engine
  rt.dispatch(0, Runtime::Task{&engine, {stale}});
  TupleBatch fine{"S"};
  fine.push_back(Tuple{200, {Value{2}}});
  rt.dispatch(0, Runtime::Task{&engine, {fine}});
  rt.drain();  // must not hang on the failed task
  rt.stop();
  const auto error = rt.first_error();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("out-of-order"), std::string::npos);
  EXPECT_EQ(engine.published_count("S"), 2u);  // the later task still ran
}

}  // namespace
}  // namespace cosmos::runtime
