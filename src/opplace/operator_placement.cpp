#include "opplace/operator_placement.h"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "query/containment.h"

namespace cosmos::opplace {
namespace {

using query::QuerySpec;
using stream::Predicate;
using stream::PredicatePtr;

/// Single-alias selection conjuncts of `spec` for `alias`, alias-stripped.
PredicatePtr selection_of(const QuerySpec& spec, const std::string& alias) {
  std::vector<PredicatePtr> all;
  std::vector<PredicatePtr> mine;
  if (!stream::collect_conjuncts(spec.where, all)) {
    return Predicate::always_true();
  }
  const std::unordered_map<std::string, std::string> strip{{alias, ""}};
  for (const auto& p : all) {
    const auto refs = [&]() -> std::vector<stream::FieldRef> {
      switch (p->kind()) {
        case Predicate::Kind::kCompareConst:
          return {static_cast<const stream::CompareConst&>(*p).lhs()};
        case Predicate::Kind::kCompareField: {
          const auto& cf = static_cast<const stream::CompareField&>(*p);
          return {cf.lhs(), cf.rhs()};
        }
        default:
          return {};
      }
    }();
    if (refs.empty()) continue;
    bool only_this = true;
    for (const auto& r : refs) {
      if (r.alias != alias) only_this = false;
    }
    if (only_this) {
      mine.push_back(query::rename_predicate_aliases(p, strip));
    }
  }
  return Predicate::conj(std::move(mine));
}

double tuple_bytes(const stream::Tuple& t) {
  double bytes = 16.0;  // header
  for (const auto& v : t.values) {
    bytes += v.type() == stream::ValueType::kString
                 ? static_cast<double>(v.as_string().size())
                 : 8.0;
  }
  return bytes;
}

}  // namespace

OperatorPlacementSystem::OperatorPlacementSystem(
    std::map<std::string, SourceStream> sources,
    std::vector<NodeId> processors, const net::LatencyMatrix& lat,
    double alpha)
    : sources_(std::move(sources)),
      processors_(std::move(processors)),
      lat_(&lat),
      alpha_(alpha) {
  if (processors_.empty()) {
    throw std::invalid_argument{"OperatorPlacementSystem: no processors"};
  }
}

void OperatorPlacementSystem::deploy(std::span<const query::QuerySpec> queries,
                                     Rng& rng) {
  const auto start = std::chrono::steady_clock::now();

  // ---- Phase 1: global operator graph with shared selections ----
  struct PerQuery {
    const QuerySpec* spec;
    std::vector<std::pair<std::string, std::string>> sig_keys;  // per source
    double input_weight = 0.0;  // placement load proxy
  };
  std::vector<PerQuery> per_query;
  per_query.reserve(queries.size());
  for (const auto& q : queries) {
    PerQuery pq;
    pq.spec = &q;
    for (const auto& src : q.sources) {
      auto filter = selection_of(q, src.alias);
      const std::pair<std::string, std::string> key{src.stream,
                                                    filter->to_string()};
      auto [it, inserted] = signatures_.try_emplace(
          key, Signature{src.stream, std::move(filter), {}});
      (void)it;
      pq.sig_keys.push_back(key);
      pq.input_weight += 1.0;  // one stream's worth of input
    }
    per_query.push_back(std::move(pq));
  }
  stats_.selection_signatures = signatures_.size();
  stats_.evaluation_ops = queries.size();

  // NiagaraCQ-style group optimization: pairwise containment analysis over
  // the collected expression signatures (the paper's phase 1 "optimized
  // global operator graph"). This is the quadratically-growing part of the
  // baseline; the result (coverage relations) would drive group sharing.
  {
    std::vector<const Signature*> sigs;
    sigs.reserve(signatures_.size());
    for (const auto& [key, sig] : signatures_) sigs.push_back(&sig);
    std::size_t coverages = 0;
    for (std::size_t i = 0; i < sigs.size(); ++i) {
      for (std::size_t j = 0; j < sigs.size(); ++j) {
        if (i == j || sigs[i]->stream != sigs[j]->stream) continue;
        std::vector<PredicatePtr> ci, cj;
        if (!stream::collect_conjuncts(sigs[i]->filter, ci) ||
            !stream::collect_conjuncts(sigs[j]->filter, cj)) {
          continue;
        }
        std::set<std::string> j_set;
        for (const auto& p : cj) j_set.insert(p->to_string());
        bool covers = true;
        for (const auto& p : ci) {
          if (!j_set.contains(p->to_string())) covers = false;
        }
        if (covers) ++coverages;
      }
    }
    (void)coverages;
  }

  // ---- Phase 2: place each evaluation operator ----
  // Cost of hosting query q at processor p: sum over inputs of
  // d(source, p) plus d(p, proxy), all equally rate-weighted (the
  // per-signature rates are only known at runtime; the optimizer uses the
  // static estimate, as the baseline papers do).
  const double total_weight = [&] {
    double w = 0;
    for (const auto& pq : per_query) w += pq.input_weight;
    return w;
  }();
  const double cap = (1.0 + alpha_) * total_weight /
                     static_cast<double>(processors_.size());
  std::vector<double> load(processors_.size(), 0.0);

  const auto host_cost = [&](const PerQuery& pq, NodeId p) {
    double c = 0.0;
    for (const auto& src : pq.spec->sources) {
      c += lat_->latency(sources_.at(src.stream).node, p);
    }
    if (pq.spec->proxy.valid()) c += lat_->latency(p, pq.spec->proxy);
    return c;
  };

  std::vector<std::size_t> chosen(per_query.size());
  for (std::size_t i = 0; i < per_query.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_p = 0;
    for (std::size_t p = 0; p < processors_.size(); ++p) {
      if (load[p] + per_query[i].input_weight > cap) continue;
      const double c = host_cost(per_query[i], processors_[p]);
      if (c < best) {
        best = c;
        best_p = p;
      }
    }
    chosen[i] = best_p;
    load[best_p] += per_query[i].input_weight;
  }
  // Local improvement sweeps, to convergence ([3]'s iterative refinement).
  for (int sweep = 0; sweep < 25; ++sweep) {
    bool changed = false;
    std::vector<std::size_t> order(per_query.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    for (const auto i : order) {
      const double cur = host_cost(per_query[i], processors_[chosen[i]]);
      for (std::size_t p = 0; p < processors_.size(); ++p) {
        if (p == chosen[i] ||
            load[p] + per_query[i].input_weight > cap) {
          continue;
        }
        if (host_cost(per_query[i], processors_[p]) < cur) {
          load[chosen[i]] -= per_query[i].input_weight;
          load[p] += per_query[i].input_weight;
          chosen[i] = p;
          changed = true;
          break;
        }
      }
    }
    if (!changed) break;
  }
  stats_.optimize_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();

  // ---- Instantiate plans and consumer lists ----
  for (std::size_t i = 0; i < per_query.size(); ++i) {
    const NodeId host = processors_[chosen[i]];
    DeployedQuery dq;
    dq.spec = *per_query[i].spec;
    dq.host = host;
    auto& engine = engines_[host];
    if (!engine) engine = std::make_unique<stream::Engine>();
    for (const auto& src : dq.spec.sources) {
      if (!engine->has_stream(src.stream)) {
        engine->register_stream(src.stream,
                                sources_.at(src.stream).schema);
      }
    }
    dq.result_stream =
        "opplace.result." + std::to_string(dq.spec.id.value());
    dq.plan = std::make_unique<query::CompiledQuery>(*engine, dq.spec,
                                                     dq.result_stream);
    // Result delivery accounting.
    const NodeId proxy = dq.spec.proxy;
    engine->attach(dq.result_stream,
                   [this, host, proxy](const stream::Tuple& t) {
                     ++results_delivered_;
                     if (proxy.valid() && proxy != host) {
                       const double b = tuple_bytes(t);
                       traffic_.bytes += b;
                       traffic_.weighted_cost +=
                           b * lat_->latency(host, proxy);
                     }
                   });
    host_.emplace(dq.spec.id, host);
    for (const auto& key : per_query[i].sig_keys) {
      auto& sig = signatures_.at(key);
      if (std::find(sig.consumer_hosts.begin(), sig.consumer_hosts.end(),
                    host) == sig.consumer_hosts.end()) {
        sig.consumer_hosts.push_back(host);
      }
    }
    queries_.push_back(std::move(dq));
  }
}

void OperatorPlacementSystem::push(const std::string& stream,
                                   const stream::Tuple& tuple) {
  const auto src_it = sources_.find(stream);
  if (src_it == sources_.end()) {
    throw std::invalid_argument{"OperatorPlacementSystem: unknown stream " +
                                stream};
  }
  const auto& schema = src_it->second.schema;
  const NodeId origin = src_it->second.node;
  const std::vector<stream::Binding> env{{"", &schema, &tuple}};
  const double bytes = tuple_bytes(tuple);

  // Run every shared selection on this stream at the source; ship passing
  // tuples once per (signature, consumer host) pair — client-server, no
  // cross-signature sharing.
  std::set<NodeId> fed;
  for (auto& [key, sig] : signatures_) {
    if (sig.stream != stream) continue;
    if (!sig.filter->eval(env)) continue;
    for (const NodeId host : sig.consumer_hosts) {
      traffic_.bytes += bytes;
      traffic_.weighted_cost += bytes * lat_->latency(origin, host);
      fed.insert(host);
    }
  }
  // Hosts receiving at least one copy evaluate their plans (plans re-apply
  // their own filters, so a single engine publish per host is correct).
  for (const NodeId host : fed) {
    auto& engine = engines_.at(host);
    if (engine->has_stream(stream)) engine->publish(stream, tuple);
  }
}

}  // namespace cosmos::opplace
