// Declarative representation of a continuous query (the CQL subset the
// paper uses: select-project-join over windowed streams).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "stream/predicate.h"
#include "stream/window.h"

namespace cosmos::query {

/// One FROM entry: `Station1 [Range 30 Minutes] S1`.
struct SourceRef {
  std::string stream;  ///< registered stream name
  std::string alias;   ///< binding alias (defaults to stream name)
  stream::WindowSpec window;

  friend bool operator==(const SourceRef&, const SourceRef&) = default;
};

/// One SELECT entry: either `S2.*` (alias wildcard) or `S1.snowHeight`.
struct SelectItem {
  std::string alias;
  std::string field;        ///< empty means alias wildcard (`alias.*`)
  [[nodiscard]] bool is_wildcard() const noexcept { return field.empty(); }
  [[nodiscard]] std::string to_string() const {
    return alias + "." + (field.empty() ? "*" : field);
  }
  friend bool operator==(const SelectItem&, const SelectItem&) = default;
};

struct QuerySpec {
  QueryId id;
  NodeId proxy;  ///< the processor acting as the user's proxy

  std::vector<SourceRef> sources;  ///< 1..n FROM entries
  bool select_all = false;         ///< SELECT *
  std::vector<SelectItem> select;  ///< used when !select_all
  stream::PredicatePtr where = stream::Predicate::always_true();

  std::string text;  ///< original CQL text, if parsed

  [[nodiscard]] const SourceRef* source_by_alias(
      const std::string& alias) const noexcept;
  /// Render back to CQL-like text (canonical form, not necessarily `text`).
  [[nodiscard]] std::string to_cql() const;
};

/// Validation: aliases unique, at least one source, windows well-formed.
/// Throws std::invalid_argument on violation.
void validate(const QuerySpec& q);

}  // namespace cosmos::query
