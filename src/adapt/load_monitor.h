// Per-engine load sampling for the adaptation loop. The monitor reads the
// runtime's cumulative per-engine counters (RuntimeStats::engines) at each
// sampling point, differentiates against the previous sample, and smooths
// the per-interval deltas with an EWMA — so one bursty chunk does not
// trigger a migration, but a persistent hot spot does.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "runtime/stats.h"
#include "stream/schema.h"

namespace cosmos::adapt {

/// Smoothed load of one engine over the recent sampling intervals.
struct EngineLoad {
  std::uint64_t engine = 0;
  std::size_t shard = 0;       ///< current pinning (from the shard map)
  double cpu_seconds = 0.0;    ///< EWMA worker CPU seconds per interval
  double tuples = 0.0;         ///< EWMA tuples per interval
  double tuples_per_ms = 0.0;  ///< EWMA tuple rate in stream time
  double state_bytes = 0.0;    ///< state estimate, filled by the owner
};

class LoadMonitor {
 public:
  explicit LoadMonitor(double ewma_alpha);

  /// Takes one sample: `stats` is the runtime's cumulative snapshot,
  /// `shard_of` the current engine→shard pinning, `now_ms` the stream-time
  /// position (the driver's virtual clock). Engines absent from `shard_of`
  /// are ignored. The first sample establishes the baseline.
  void sample(const runtime::RuntimeStats& stats,
              const std::unordered_map<std::uint64_t, std::size_t>& shard_of,
              stream::Timestamp now_ms);

  /// Per-engine smoothed loads, sorted by engine id. Mutable so the owner
  /// can fill in state estimates before planning.
  [[nodiscard]] std::vector<EngineLoad>& loads() noexcept { return loads_; }
  [[nodiscard]] const std::vector<EngineLoad>& loads() const noexcept {
    return loads_;
  }

  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }

  /// Per-shard smoothed CPU seconds per interval (sum of pinned engines).
  [[nodiscard]] std::vector<double> shard_loads(std::size_t shards) const;

  /// max/mean of `shard_loads` (1 = perfectly balanced; 0 if all idle).
  [[nodiscard]] static double imbalance(const std::vector<double>& loads);

 private:
  struct Prev {
    std::uint64_t tuples = 0;
    std::uint64_t busy_ns = 0;
  };

  double alpha_;
  std::size_t samples_ = 0;
  stream::Timestamp last_ms_ = 0;
  std::unordered_map<std::uint64_t, Prev> prev_;
  std::vector<EngineLoad> loads_;
};

}  // namespace cosmos::adapt
