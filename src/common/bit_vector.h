// Fixed-size dynamic bit vector tuned for query-interest profiles.
//
// The paper (Section 3.2) partitions each stream into substreams and
// represents each query's data interest as a bit vector so that overlap
// between two queries can be estimated with cheap bit operations. This class
// provides exactly that: set/test, popcount, intersection tests, and a
// weighted-intersection accumulator used to compute overlap *rates*.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cosmos {

class BitVector {
 public:
  BitVector() = default;
  /// All-zero vector with `bits` addressable positions.
  explicit BitVector(std::size_t bits);

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }

  void set(std::size_t i) noexcept;
  void reset(std::size_t i) noexcept;
  [[nodiscard]] bool test(std::size_t i) const noexcept;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// True if any bit is set in both vectors. Sizes must match.
  [[nodiscard]] bool intersects(const BitVector& other) const noexcept;

  /// popcount(this AND other). Sizes must match.
  [[nodiscard]] std::size_t intersection_count(
      const BitVector& other) const noexcept;

  /// Sum of weights[i] over all i set in (this AND other).
  /// `weights` must cover at least size() entries.
  [[nodiscard]] double weighted_intersection(
      const BitVector& other, std::span<const double> weights) const noexcept;

  /// Sum of weights[i] over all set i.
  [[nodiscard]] double weighted_count(
      std::span<const double> weights) const noexcept;

  /// this |= other. Sizes must match.
  void merge(const BitVector& other) noexcept;

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> set_bits() const;

  friend bool operator==(const BitVector&, const BitVector&) noexcept = default;

 private:
  static constexpr std::size_t kWordBits = 64;
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace cosmos
