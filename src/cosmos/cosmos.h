// The COSMOS middleware facade: the system of Section 2, end to end.
//
// A federation of processors over a content-based pub/sub. Sources
// advertise their streams; users submit CQL queries through a proxy; the
// middleware places each query on a processor (the caller supplies the
// placement, usually from coord::HierarchicalDistributor), merges queries
// with overlapping results into one covering query per processor
// (Section 2.1), generates the p1 subscriptions that pull source data into
// the processor's engine and the p2 subscriptions that carry (split) result
// streams back to the proxies, and runs the query plans.
//
// All traffic flows through the pubsub::BrokerNetwork, whose accounting is
// the prototype-study metric (Fig 11).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/latency_matrix.h"
#include "pubsub/broker_network.h"
#include "query/containment.h"
#include "query/plan.h"
#include "query/query_spec.h"
#include "stream/engine.h"

namespace cosmos::middleware {

class Cosmos {
 public:
  /// Result tuples of a query, delivered at its proxy.
  using ResultCallback =
      std::function<void(QueryId, const stream::Tuple&)>;

  /// `nodes` are all participants (sources and processors); `lat` must
  /// cover them. `enable_result_sharing` toggles the Section 2.1 merging
  /// (disabled = the paper's Non-Share configuration, Fig 4a).
  Cosmos(std::vector<NodeId> nodes, const net::LatencyMatrix& lat,
         bool enable_result_sharing = true);

  /// Registers a source stream published at `node`.
  void register_source(const std::string& stream, stream::Schema schema,
                       NodeId node);

  /// Deploys `spec` on processor `host`. If a mergeable query already runs
  /// there, the two are folded into one covering query and both users are
  /// re-wired onto the shared result stream.
  void submit(const query::QuerySpec& spec, NodeId host, ResultCallback cb);

  /// Feeds one source tuple into the system (global timestamp order).
  void push(const std::string& stream, const stream::Tuple& tuple);

  [[nodiscard]] const pubsub::TrafficStats& traffic() const noexcept {
    return broker_.traffic();
  }
  void reset_traffic() noexcept { broker_.reset_traffic(); }

  /// Number of deployed (merged) execution units; <= submitted queries.
  [[nodiscard]] std::size_t deployed_units() const noexcept {
    return units_.size();
  }
  [[nodiscard]] std::size_t submitted_queries() const noexcept {
    return queries_.size();
  }
  [[nodiscard]] pubsub::BrokerNetwork& broker() noexcept { return broker_; }

 private:
  struct Unit {
    std::uint32_t id = 0;
    NodeId host;
    query::QuerySpec spec;  ///< the covering query actually running
    std::vector<QueryId> members;
    std::string result_stream;
    std::unique_ptr<query::CompiledQuery> plan;
    std::vector<SubscriptionId> p1_subs;
    std::size_t result_tap = 0;
  };
  struct UserQuery {
    query::QuerySpec spec;
    ResultCallback callback;
    std::uint32_t unit = UINT32_MAX;
    SubscriptionId p2_sub;
    /// Cached projection of the unit's result columns onto this query's.
    std::vector<std::size_t> p2_keep;
  };

  stream::Engine& engine_at(NodeId host);
  void deploy_unit(Unit& unit);
  void teardown_unit(Unit& unit);
  void wire_member(UserQuery& uq, Unit& unit);

  std::vector<NodeId> nodes_;
  pubsub::BrokerNetwork broker_;
  std::map<NodeId, std::unique_ptr<stream::Engine>> engines_;
  std::map<std::uint32_t, Unit> units_;
  std::unordered_map<QueryId, UserQuery> queries_;
  /// p2 subscription id -> owning query (for delivery dispatch).
  std::unordered_map<SubscriptionId, QueryId> p2_owner_;
  std::uint32_t next_unit_id_ = 0;
  std::uint32_t unit_version_ = 0;
  bool enable_result_sharing_ = true;
};

}  // namespace cosmos::middleware
