#include "coord/diffusion.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace cosmos::coord {
namespace {

/// Net load change per node implied by a flow set.
std::vector<double> net_change(std::size_t n,
                               const std::vector<DiffusionFlow>& flows) {
  std::vector<double> delta(n, 0.0);
  for (const auto& f : flows) {
    delta[f.from] -= f.amount;
    delta[f.to] += f.amount;
  }
  return delta;
}

TEST(Diffusion, TwoNodeTransfer) {
  const std::vector<DiffusionEdge> edges{{0, 1, 1.0}};
  const auto flows = solve_diffusion(2, edges, {4.0, -4.0});
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].from, 0u);
  EXPECT_EQ(flows[0].to, 1u);
  EXPECT_NEAR(flows[0].amount, 4.0, 1e-6);
}

TEST(Diffusion, BalancedInputNeedsNoFlow) {
  const std::vector<DiffusionEdge> edges{{0, 1, 1.0}, {1, 2, 1.0}};
  const auto flows = solve_diffusion(3, edges, {0.0, 0.0, 0.0});
  EXPECT_TRUE(flows.empty());
}

TEST(Diffusion, FlowsBalanceArbitraryImbalance) {
  // Complete graph over 5 nodes.
  std::vector<DiffusionEdge> edges;
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a + 1; b < 5; ++b) edges.push_back({a, b, 1.0});
  }
  const std::vector<double> imbalance{5.0, -1.0, -2.0, 3.0, -5.0};
  const auto flows = solve_diffusion(5, edges, imbalance);
  const auto delta = net_change(5, flows);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(delta[i], -imbalance[i], 1e-6) << "node " << i;
  }
}

TEST(Diffusion, ChainGraphPropagates) {
  // Line 0-1-2-3: all surplus at 0, all deficit at 3. Flow must traverse
  // the chain.
  const std::vector<DiffusionEdge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}};
  const auto flows = solve_diffusion(4, edges, {6.0, 0.0, 0.0, -6.0});
  const auto delta = net_change(4, flows);
  EXPECT_NEAR(delta[0], -6.0, 1e-6);
  EXPECT_NEAR(delta[3], 6.0, 1e-6);
  EXPECT_NEAR(delta[1], 0.0, 1e-6);
  // Every chain edge carries 6 units.
  for (const auto& f : flows) EXPECT_NEAR(f.amount, 6.0, 1e-6);
}

TEST(Diffusion, MinimumNormPrefersDirectEdges) {
  // Triangle: surplus at 0, deficit at 1; edge 0-1 exists. The minimal-norm
  // solution sends most load directly, a little via node 2.
  const std::vector<DiffusionEdge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}};
  const auto flows = solve_diffusion(3, edges, {3.0, -3.0, 0.0});
  double direct = 0.0, indirect = 0.0;
  for (const auto& f : flows) {
    if (f.from == 0 && f.to == 1) direct = f.amount;
    if (f.from == 0 && f.to == 2) indirect = f.amount;
  }
  EXPECT_GT(direct, indirect);
  const auto delta = net_change(3, flows);
  EXPECT_NEAR(delta[0], -3.0, 1e-6);
  EXPECT_NEAR(delta[1], 3.0, 1e-6);
}

TEST(Diffusion, NonZeroSumIsProjected) {
  // Total imbalance 2 cannot be removed; the solver balances around the
  // mean (each node ends at +1).
  const std::vector<DiffusionEdge> edges{{0, 1, 1.0}};
  const auto flows = solve_diffusion(2, edges, {2.0, 0.0});
  const auto delta = net_change(2, flows);
  EXPECT_NEAR(delta[0], -1.0, 1e-6);
  EXPECT_NEAR(delta[1], 1.0, 1e-6);
}

TEST(Diffusion, DisconnectedComponentsBalanceSeparately) {
  const std::vector<DiffusionEdge> edges{{0, 1, 1.0}, {2, 3, 1.0}};
  const auto flows = solve_diffusion(4, edges, {2.0, -2.0, 1.0, -1.0});
  const auto delta = net_change(4, flows);
  EXPECT_NEAR(delta[0], -2.0, 1e-6);
  EXPECT_NEAR(delta[2], -1.0, 1e-6);
}

TEST(Diffusion, RejectsMalformedInput) {
  EXPECT_THROW(solve_diffusion(2, {{0, 0, 1.0}}, {0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(solve_diffusion(2, {{0, 5, 1.0}}, {0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(solve_diffusion(2, {{0, 1, -1.0}}, {0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(solve_diffusion(2, {}, {0.0}), std::invalid_argument);
}

// Property: flows always balance the (projected) imbalance, for random
// connected graphs and random imbalances.
class DiffusionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiffusionProperty, ExactBalance) {
  Rng rng{GetParam()};
  const std::size_t n = 2 + rng.next_below(14);
  std::vector<DiffusionEdge> edges;
  for (std::size_t i = 1; i < n; ++i) {
    edges.push_back({rng.next_below(i), i, rng.next_double(0.5, 2.0)});
  }
  for (std::size_t extra = 0; extra < n; ++extra) {
    const std::size_t a = rng.next_below(n);
    const std::size_t b = rng.next_below(n);
    if (a != b) edges.push_back({a, b, rng.next_double(0.5, 2.0)});
  }
  std::vector<double> imbalance(n);
  double sum = 0.0;
  for (auto& x : imbalance) {
    x = rng.next_double(-10.0, 10.0);
    sum += x;
  }
  for (auto& x : imbalance) x -= sum / static_cast<double>(n);
  const auto flows = solve_diffusion(n, edges, imbalance);
  const auto delta = net_change(n, flows);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(delta[i], -imbalance[i], 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffusionProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace cosmos::coord
