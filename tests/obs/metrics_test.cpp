#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cosmos::obs {
namespace {

TEST(MetricsRegistry, GetOrCreateReturnsStableCells) {
  MetricsRegistry reg;
  Counter& c = reg.counter("tuples");
  EXPECT_EQ(&c, &reg.counter("tuples"));  // same name, same cell
  c.add(3);
  reg.counter("tuples").add(2);
  EXPECT_EQ(c.value(), 5u);

  reg.gauge("depth").set(7.5);
  reg.histogram("lat").record(100);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.counter("tuples"), nullptr);
  EXPECT_EQ(*snap.counter("tuples"), 5u);
  ASSERT_NE(snap.gauge("depth"), nullptr);
  EXPECT_EQ(*snap.gauge("depth"), 7.5);
  ASSERT_NE(snap.histogram("lat"), nullptr);
  EXPECT_EQ(snap.histogram("lat")->count, 1u);
  EXPECT_EQ(snap.counter("missing"), nullptr);
  EXPECT_EQ(snap.gauge("missing"), nullptr);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.counter("zebra").add(1);
  reg.counter("alpha").add(2);
  reg.counter("mid").add(3);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zebra");
}

TEST(MetricsSnapshot, MergeAddsCountersAndHistograms) {
  MetricsRegistry a;
  a.counter("shared").add(10);
  a.counter("only_a").add(1);
  a.gauge("g").set(1.0);
  a.histogram("h").record(100);

  MetricsRegistry b;
  b.counter("shared").add(5);
  b.counter("only_b").add(2);
  b.gauge("g").set(2.0);
  b.histogram("h").record(200);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(*merged.counter("shared"), 15u);
  EXPECT_EQ(*merged.counter("only_a"), 1u);
  EXPECT_EQ(*merged.counter("only_b"), 2u);
  EXPECT_EQ(*merged.gauge("g"), 2.0);  // last writer wins
  EXPECT_EQ(merged.histogram("h")->count, 2u);
  // Merged vectors stay name-sorted (lookup depends on it).
  for (std::size_t i = 1; i < merged.counters.size(); ++i) {
    EXPECT_LT(merged.counters[i - 1].first, merged.counters[i].first);
  }
}

TEST(MetricsRegistry, SnapshotWhileRecording) {
  // LoadMonitor-style consumption: snapshots taken while recorders run
  // must be internally consistent (no torn names, count <= final).
  MetricsRegistry reg;
  Counter& c = reg.counter("events");
  std::thread writer{[&c] {
    for (int i = 0; i < 200'000; ++i) c.add();
  }};
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = reg.snapshot();
    const std::uint64_t* v = snap.counter("events");
    ASSERT_NE(v, nullptr);
    EXPECT_GE(*v, last);  // monotone across samples
    last = *v;
  }
  writer.join();
  EXPECT_EQ(c.value(), 200'000u);
}

}  // namespace
}  // namespace cosmos::obs
