#include "node/serve.h"

#include <exception>
#include <utility>
#include <vector>

#include "node/site.h"
#include "wire/channel.h"
#include "wire/messages.h"

namespace cosmos::node {

bool serve_connection(wire::Socket socket) {
  wire::FrameChannel channel{std::move(socket)};
  try {
    // The session opens with kHello: it carries the shard count the Site's
    // runtime should use and the emulated one-way delay this side applies
    // to its own outgoing frames.
    auto first = channel.recv();
    if (!first) return true;  // connected, then closed: nothing to serve
    const auto hello = wire::decode_hello(*first);
    channel.set_send_delay_ms(hello.send_delay_ms);
    Site site{{hello.shards == 0 ? 1 : hello.shards, 64}};
    std::vector<wire::Frame> out;
    bool keep_going = site.handle(*first, out);
    for (auto& f : out) channel.send(std::move(f));
    while (keep_going) {
      auto frame = channel.recv();
      if (!frame) break;  // clean peer close
      out.clear();
      keep_going = site.handle(*frame, out);
      for (auto& f : out) channel.send(std::move(f));
    }
    channel.close();
    return true;
  } catch (const std::exception& e) {
    // Best effort: tell the driver why before tearing the session down. A
    // send failure here means the peer is already gone.
    try {
      channel.send(wire::encode_error({e.what()}));
    } catch (...) {
    }
    channel.close();
    return false;
  }
}

NodeServer::NodeServer(wire::Listener& listener) : listener_(listener) {}

NodeServer::~NodeServer() { shutdown(); }

bool NodeServer::run() {
  accept_thread_ = std::thread([this] { accept_loop(); });
  bool ok = true;
  {
    std::unique_lock lock{mu_};
    done_cv_.wait(lock, [&] { return driver_done_; });
    ok = driver_ok_;
  }
  shutdown();
  return ok;
}

void NodeServer::accept_loop() {
  while (true) {
    wire::Socket sock;
    try {
      sock = listener_.accept();
    } catch (const std::exception&) {
      return;  // listener closed: orderly shutdown
    }
    // First-frame handshake, read inline: both the driver and a dialing
    // peer send their hello immediately after connecting, so this never
    // stalls the loop in practice.
    std::optional<wire::Frame> first;
    try {
      first = wire::recv_frame(sock);
    } catch (const std::exception&) {
      continue;  // connected, then died mid-frame: forget it
    }
    if (!first) continue;
    if (first->type == wire::FrameType::kHello) {
      std::lock_guard lock{mu_};
      if (driver_started_ || shutting_down_) {
        try {
          wire::send_frame(sock,
                           wire::encode_error({"node: driver session "
                                               "already active"}));
        } catch (const std::exception&) {
        }
        continue;
      }
      driver_started_ = true;
      driver_thread_ = std::thread(
          [this, s = std::move(sock), f = std::move(*first)]() mutable {
            drive_session(std::move(s), std::move(f));
          });
    } else if (first->type == wire::FrameType::kPeerHello) {
      wire::PeerHelloMsg ph;
      try {
        ph = wire::decode_peer_hello(*first);
      } catch (const std::exception&) {
        continue;
      }
      if (ph.protocol != wire::kProtocolVersion) {
        try {
          wire::send_frame(
              sock, wire::encode_error(
                        {"node: peer protocol version mismatch: v" +
                         std::to_string(ph.protocol) + " vs v" +
                         std::to_string(wire::kProtocolVersion)}));
        } catch (const std::exception&) {
        }
        continue;
      }
      std::lock_guard lock{mu_};
      if (shutting_down_) continue;
      auto& slot = peer_ins_.emplace_back();
      slot.sock = std::move(sock);
      slot.th = std::thread([this, &slot] { peer_in_loop(slot.sock); });
    }
    // Any other first frame: drop the connection.
  }
}

void NodeServer::drive_session(wire::Socket sock, wire::Frame hello_frame) {
  bool ok = true;
  wire::FrameChannel* channel = nullptr;
  try {
    const auto hello = wire::decode_hello(hello_frame);
    worker_index_ = hello.worker_index;
    send_delay_ms_ = hello.send_delay_ms;
    auto ch = std::make_unique<wire::FrameChannel>(std::move(sock));
    channel = ch.get();
    channel->set_send_delay_ms(hello.send_delay_ms);
    auto site = std::make_unique<Site>(
        Site::Options{hello.shards == 0 ? 1 : hello.shards, 64});
    // Wire every callback before publishing the Site to the peer reader
    // threads: a peer execute must never find a half-initialized sink.
    site->set_emit([channel](wire::Frame f) { channel->send(std::move(f)); });
    site->set_peer_ship(
        [this](std::uint32_t w, wire::Frame f) { ship(w, std::move(f)); });
    site->set_peer_table_cb([this](wire::PeerTableMsg t) {
      std::lock_guard lock{mu_};
      table_ = std::move(t);
    });
    site->set_peer_traffic([this] { return peer_traffic(); });
    {
      std::lock_guard lock{mu_};
      driver_channel_ = std::move(ch);
      site_owned_ = std::move(site);
      site_ = site_owned_.get();
    }
    site_cv_.notify_all();
    std::vector<wire::Frame> out;  // stays empty: the emit sink is installed
    bool keep_going = site_->handle(hello_frame, out);
    while (keep_going) {
      auto frame = channel->recv();
      if (!frame) break;  // clean peer close
      keep_going = site_->handle(*frame, out);
    }
  } catch (const std::exception& e) {
    ok = false;
    if (channel != nullptr) {
      try {
        channel->send(wire::encode_error({e.what()}));
      } catch (...) {
      }
    }
  }
  // The channel and Site stay alive for shutdown(): peer reader threads
  // may still be inside apply_peer_execute / the emit sink until they are
  // joined there.
  std::lock_guard lock{mu_};
  driver_done_ = true;
  driver_ok_ = ok;
  done_cv_.notify_all();
}

Site* NodeServer::wait_site() {
  std::unique_lock lock{mu_};
  site_cv_.wait(lock, [&] { return site_ != nullptr || shutting_down_; });
  return shutting_down_ ? nullptr : site_;
}

void NodeServer::peer_in_loop(wire::Socket& sock) {
  try {
    while (auto frame = wire::recv_frame(sock)) {
      if (frame->type != wire::FrameType::kExecute) {
        continue;  // peer links carry executes only
      }
      auto m = wire::decode_execute(*frame);
      Site* site = wait_site();
      if (site == nullptr) return;
      site->apply_peer_execute(std::move(m));
    }
  } catch (const std::exception&) {
    // A dying peer (or our own shutdown's socket shutdown) lands here; the
    // driver's recovery path owns the consequences.
  }
}

NodeServer::PeerOut NodeServer::dial_peer(std::uint32_t worker) {
  std::string endpoint;
  {
    std::lock_guard lock{mu_};
    if (worker < table_.endpoints.size()) endpoint = table_.endpoints[worker];
  }
  if (endpoint.empty()) return {};
  try {
    auto sock = wire::connect_to(wire::Endpoint::parse(endpoint), 5'000);
    PeerOut out;
    out.ch = std::make_unique<wire::FrameChannel>(std::move(sock));
    out.ch->set_send_delay_ms(send_delay_ms_);
    out.ch->send(
        wire::encode_peer_hello({wire::kProtocolVersion, worker_index_}));
    // The accept side never writes on this connection, so the reader's
    // sole purpose is eager death detection: EOF flips `dead` the moment
    // the peer goes away, and the next ship() re-dials instead of
    // enqueueing into a channel whose sender would drop the frame.
    out.dead = std::make_shared<std::atomic<bool>>(false);
    out.ch->start_reader(
        [](wire::Frame) {},
        [flag = out.dead](const std::string&) { flag->store(true); });
    return out;
  } catch (const std::exception&) {
    return {};
  }
}

void NodeServer::retire_peer_out(PeerOut& slot) {
  retired_peer_frames_ += slot.ch->frames_sent();
  retired_peer_bytes_ += slot.ch->bytes_sent();
  slot.ch->close();
  slot.ch.reset();
  slot.dead.reset();
}

void NodeServer::ship(std::uint32_t worker, wire::Frame frame) {
  std::lock_guard lock{peer_out_mu_};
  // One live attempt + one re-dial: a freshly respawned worker re-binds
  // the same endpoint, so the second attempt covers recovery. A frame
  // dropped in the death instant itself is re-sent by the driver's
  // data-log replay.
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto& slot = peer_out_[worker];
    if (slot.ch && slot.dead->load()) retire_peer_out(slot);
    if (!slot.ch) {
      slot = dial_peer(worker);
      if (!slot.ch) return;
    }
    try {
      slot.ch->send(frame);
      return;
    } catch (const std::exception&) {
      retire_peer_out(slot);
    }
  }
}

std::pair<std::uint64_t, std::uint64_t> NodeServer::peer_traffic() {
  std::lock_guard lock{peer_out_mu_};
  std::uint64_t frames = retired_peer_frames_;
  std::uint64_t bytes = retired_peer_bytes_;
  for (const auto& [w, slot] : peer_out_) {
    if (slot.ch) {
      frames += slot.ch->frames_sent();
      bytes += slot.ch->bytes_sent();
    }
  }
  return {frames, bytes};
}

void NodeServer::shutdown() {
  {
    std::lock_guard lock{mu_};
    if (shutting_down_) {
      // Re-entrant (run() then destructor): nothing left to tear down.
      return;
    }
    shutting_down_ = true;
    site_cv_.notify_all();
  }
  listener_.close();  // accept() throws, accept_loop returns
  if (accept_thread_.joinable()) accept_thread_.join();
  std::list<PeerIn> peers;
  std::thread driver;
  {
    std::lock_guard lock{mu_};
    for (auto& p : peer_ins_) p.sock.shutdown_both();
    peers = std::move(peer_ins_);  // list nodes survive the move; the
                                   // threads' &slot references stay valid
    driver = std::move(driver_thread_);
  }
  for (auto& p : peers) {
    if (p.th.joinable()) p.th.join();
  }
  if (driver.joinable()) driver.join();
  {
    std::lock_guard lock{peer_out_mu_};
    for (auto& [w, slot] : peer_out_) {
      if (slot.ch) slot.ch->close();
    }
    peer_out_.clear();
  }
  // Safe now: every thread that could touch the Site or the driver channel
  // has been joined. close() drains the channel's queued tail (final
  // results / stats sample) within its bounded deadline.
  std::lock_guard lock{mu_};
  site_ = nullptr;
  site_owned_.reset();
  if (driver_channel_) driver_channel_->close();
  driver_channel_.reset();
}

}  // namespace cosmos::node
