#include "pubsub/subscription_index.h"

namespace cosmos::pubsub {

namespace {

using stream::CmpOp;
using stream::ConstConjunct;
using stream::Value;

[[nodiscard]] bool is_lower_op(CmpOp op) noexcept {
  return op == CmpOp::kGt || op == CmpOp::kGe;
}
[[nodiscard]] bool is_range_op(CmpOp op) noexcept {
  return op == CmpOp::kLt || op == CmpOp::kLe || op == CmpOp::kGt ||
         op == CmpOp::kGe;
}

}  // namespace

SubscriptionIndex::Placement SubscriptionIndex::add(
    Slot slot, const stream::PredicatePtr& filter,
    const stream::CompiledPredicate& compiled) {
  const std::vector<stream::BindingSpec> bindings{{"", schema_, SIZE_MAX}};
  stream::FilterSplit split;
  // A may-throw filter resolves fields lazily; reordering its conjuncts
  // would change which rows throw, so it must stay on the scan list.
  if (!compiled.may_throw()) {
    split = stream::split_const_conjuncts(filter, bindings);
  }

  Locator loc;
  std::vector<std::size_t> anchored;  // conjunct positions the anchor covers
  if (split.conjunctive && split.statically_safe) {
    const ConstConjunct* eq = nullptr;
    for (const ConstConjunct& c : split.indexable) {
      if (c.op == CmpOp::kEq) {
        eq = &c;
        break;
      }
    }
    if (eq != nullptr) {
      anchored.push_back(eq->position);
      ColumnIndex& cidx = columns_[eq->slot.col];
      loc.col = eq->slot.col;
      if (eq->constant.type() == stream::ValueType::kString) {
        loc.where = Where::kEqStr;
        loc.str_key = eq->constant.as_string();
        cidx.eq_str[loc.str_key].push_back({slot, eq->constant});
      } else {
        loc.where = Where::kEqNum;
        loc.num_key = eq->constant.as_double();
        cidx.eq_num[loc.num_key].push_back({slot, eq->constant});
      }
      ++eq_count_;
    } else {
      // No equality anchor: the first numeric range conjunct picks the
      // anchor column; every range conjunct on that column merges into
      // one [lo, hi] interval (tightest bounds, strict wins ties).
      const ConstConjunct* first = nullptr;
      for (const ConstConjunct& c : split.indexable) {
        if (is_range_op(c.op) && c.constant.is_numeric()) {
          first = &c;
          break;
        }
      }
      if (first != nullptr) {
        RangeEntry e;
        e.slot = slot;
        for (const ConstConjunct& c : split.indexable) {
          if (!(c.slot == first->slot) || !is_range_op(c.op) ||
              !c.constant.is_numeric()) {
            continue;
          }
          anchored.push_back(c.position);
          if (is_lower_op(c.op)) {
            const CmpOp op = c.op == CmpOp::kGt ? CmpOp::kGt : CmpOp::kGe;
            if (!e.has_lo || c.constant.compare(e.lo) > 0) {
              e.has_lo = true;
              e.lo = c.constant;
              e.lo_op = op;
            } else if (c.constant.compare(e.lo) == 0 && op == CmpOp::kGt) {
              e.lo_op = CmpOp::kGt;
            }
          } else {
            const CmpOp op = c.op == CmpOp::kLt ? CmpOp::kLt : CmpOp::kLe;
            if (!e.has_hi || c.constant.compare(e.hi) < 0) {
              e.has_hi = true;
              e.hi = c.constant;
              e.hi_op = op;
            } else if (c.constant.compare(e.hi) == 0 && op == CmpOp::kLt) {
              e.hi_op = CmpOp::kLt;
            }
          }
        }
        ColumnIndex& cidx = columns_[first->slot.col];
        loc.col = first->slot.col;
        if (e.has_lo && e.has_hi) {
          e.key = e.lo.as_double();
          loc.where = Where::kBands;
          cidx.max_band_width =
              std::max(cidx.max_band_width, e.hi.as_double() - e.key);
          cidx.bands.insert(
              std::upper_bound(cidx.bands.begin(), cidx.bands.end(), e.key,
                               [](double k, const RangeEntry& r) {
                                 return k < r.key;
                               }),
              std::move(e));
        } else if (e.has_lo) {
          e.key = e.lo.as_double();
          loc.where = Where::kLower;
          cidx.lower.insert(
              std::upper_bound(cidx.lower.begin(), cidx.lower.end(), e.key,
                               [](double k, const RangeEntry& r) {
                                 return k < r.key;
                               }),
              std::move(e));
        } else {
          e.key = e.hi.as_double();
          loc.where = Where::kUpper;
          cidx.upper.insert(
              std::upper_bound(cidx.upper.begin(), cidx.upper.end(), e.key,
                               [](double k, const RangeEntry& r) {
                                 return k > r.key;
                               }),
              std::move(e));
        }
        ++range_count_;
      }
    }
  }

  if (anchored.empty()) {
    loc.where = Where::kScan;
    scan_.insert(std::lower_bound(scan_.begin(), scan_.end(), slot), slot);
    locators_[slot] = std::move(loc);
    return Placement::kScan;
  }

  // Residual: the conjuncts the anchor did not cover, in original order.
  std::vector<stream::PredicatePtr> rest;
  rest.reserve(split.conjuncts.size() - anchored.size());
  for (std::size_t i = 0; i < split.conjuncts.size(); ++i) {
    if (std::find(anchored.begin(), anchored.end(), i) == anchored.end()) {
      rest.push_back(split.conjuncts[i]);
    }
  }
  if (!rest.empty()) {
    residuals_.emplace(slot,
                       stream::CompiledPredicate::compile(
                           stream::Predicate::conj(std::move(rest)),
                           bindings));
  }
  const Placement placed = loc.where == Where::kEqNum ||
                                   loc.where == Where::kEqStr
                               ? Placement::kEquality
                               : Placement::kRange;
  locators_[slot] = std::move(loc);
  return placed;
}

void SubscriptionIndex::remove(Slot slot) {
  const auto it = locators_.find(slot);
  if (it == locators_.end()) return;
  const Locator& loc = it->second;
  const auto drop_slot = [slot](auto& entries) {
    std::erase_if(entries,
                  [slot](const auto& e) { return e.slot == slot; });
  };
  switch (loc.where) {
    case Where::kScan: {
      const auto sit = std::lower_bound(scan_.begin(), scan_.end(), slot);
      if (sit != scan_.end() && *sit == slot) scan_.erase(sit);
      break;
    }
    case Where::kEqNum: {
      ColumnIndex& cidx = columns_.at(loc.col);
      const auto bit = cidx.eq_num.find(loc.num_key);
      drop_slot(bit->second);
      if (bit->second.empty()) cidx.eq_num.erase(bit);
      if (cidx.empty()) columns_.erase(loc.col);
      --eq_count_;
      break;
    }
    case Where::kEqStr: {
      ColumnIndex& cidx = columns_.at(loc.col);
      const auto bit = cidx.eq_str.find(loc.str_key);
      drop_slot(bit->second);
      if (bit->second.empty()) cidx.eq_str.erase(bit);
      if (cidx.empty()) columns_.erase(loc.col);
      --eq_count_;
      break;
    }
    case Where::kBands:
    case Where::kLower:
    case Where::kUpper: {
      ColumnIndex& cidx = columns_.at(loc.col);
      // max_band_width is left as-is: stale widths widen the stab window
      // (still a superset), never miss.
      drop_slot(loc.where == Where::kBands
                    ? cidx.bands
                    : loc.where == Where::kLower ? cidx.lower : cidx.upper);
      if (cidx.empty()) columns_.erase(loc.col);
      --range_count_;
      break;
    }
  }
  residuals_.erase(slot);
  locators_.erase(it);
}

void SubscriptionIndex::probe(const stream::CompiledPredicate::Row& row,
                              std::vector<Slot>& out) const {
  for (const auto& [col, cidx] : columns_) {
    if (col == stream::FieldSlot::kTsCol) {
      for_candidates(cidx, Value{static_cast<std::int64_t>(row.ts)},
                     [&out](Slot s) { out.push_back(s); });
    } else if (col < row.width) {
      // Anchors on columns the row lacks match nothing (the oracle throws
      // on such schema-violating rows; see the header's divergence note).
      for_candidates(cidx, row.values[col],
                     [&out](Slot s) { out.push_back(s); });
    }
  }
}

void SubscriptionIndex::probe_batch(
    const runtime::TupleBatch& batch,
    std::vector<std::vector<std::uint32_t>>& candidates,
    std::vector<Slot>& touched) const {
  const stream::Timestamp* ts = batch.ts_data();
  const Value* vals = batch.values_data();
  const std::size_t width = batch.width();
  const auto n = static_cast<std::uint32_t>(batch.size());
  for (const auto& [col, cidx] : columns_) {
    if (col != stream::FieldSlot::kTsCol && col >= width) continue;
    for (std::uint32_t r = 0; r < n; ++r) {
      const auto sink = [&candidates, &touched, r](Slot s) {
        if (candidates[s].empty()) touched.push_back(s);
        candidates[s].push_back(r);
      };
      if (col == stream::FieldSlot::kTsCol) {
        for_candidates(cidx, Value{static_cast<std::int64_t>(ts[r])}, sink);
      } else {
        for_candidates(cidx, vals[std::size_t{r} * width + col], sink);
      }
    }
  }
}

}  // namespace cosmos::pubsub
